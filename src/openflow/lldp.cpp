#include "openflow/lldp.hpp"

#include <algorithm>
#include <cassert>

namespace pleroma::openflow {

std::vector<DiscoveryResult> discoverPartitions(
    const net::Topology& topology, const std::vector<PartitionId>& partitionOf) {
  assert(partitionOf.size() == static_cast<std::size_t>(topology.nodeCount()));

  PartitionId maxPartition = -1;
  for (net::NodeId n = 0; n < topology.nodeCount(); ++n) {
    if (topology.isSwitch(n)) maxPartition = std::max(maxPartition, partitionOf[static_cast<std::size_t>(n)]);
  }
  std::vector<DiscoveryResult> results(static_cast<std::size_t>(maxPartition + 1));
  for (PartitionId p = 0; p <= maxPartition; ++p) {
    results[static_cast<std::size_t>(p)].partition = p;
  }

  auto partOfSwitch = [&](net::NodeId n) { return partitionOf[static_cast<std::size_t>(n)]; };

  for (net::NodeId n = 0; n < topology.nodeCount(); ++n) {
    if (topology.isSwitch(n)) {
      results[static_cast<std::size_t>(partOfSwitch(n))].switches.push_back(n);
    } else {
      const auto att = topology.hostAttachment(n);
      results[static_cast<std::size_t>(partOfSwitch(att.switchNode))].hosts.push_back(n);
    }
  }

  // The LLDP exchange: every switch R (on behalf of its controller) emits a
  // probe on every port; the receiving end classifies the link.
  for (net::LinkId l = 0; l < topology.linkCount(); ++l) {
    const net::Link& link = topology.link(l);
    const net::NodeId a = link.a.node;
    const net::NodeId b = link.b.node;
    if (topology.isHost(a) || topology.isHost(b)) continue;  // hosts drop LLDP
    const PartitionId pa = partOfSwitch(a);
    const PartitionId pb = partOfSwitch(b);
    if (pa == pb) {
      // The foreign-side switch hands the probe to its own controller,
      // which here is also the probing controller: an internal link.
      results[static_cast<std::size_t>(pa)].internalLinks.push_back(l);
    } else {
      // The probe from a's controller arrives at b, whose controller is
      // different: b's controller records (b, port) as a border port toward
      // pa — and symmetrically for the probe in the other direction.
      results[static_cast<std::size_t>(pb)].borderPorts.push_back(
          BorderPort{b, link.b.port, pa});
      results[static_cast<std::size_t>(pa)].borderPorts.push_back(
          BorderPort{a, link.a.port, pb});
    }
  }
  return results;
}

DiscoveryResult discoverPartition(const net::Topology& topology,
                                  const std::vector<PartitionId>& partitionOf,
                                  PartitionId partition) {
  auto all = discoverPartitions(topology, partitionOf);
  assert(partition >= 0 && partition < static_cast<PartitionId>(all.size()));
  return std::move(all[static_cast<std::size_t>(partition)]);
}

}  // namespace pleroma::openflow
