#include "openflow/control_channel.hpp"

#include <algorithm>
#include <vector>

namespace pleroma::openflow {

namespace {
const char* modTraceName(FlowModType type) {
  switch (type) {
    case FlowModType::kAdd: return "flow_mod.add";
    case FlowModType::kModify: return "flow_mod.modify";
    case FlowModType::kDelete: return "flow_mod.delete";
  }
  return "flow_mod";
}
}  // namespace

bool ControlChannel::applyNow(const FlowMod& mod) {
  net::FlowTable& table = network_.flowTable(mod.switchNode);
  switch (mod.type) {
    case FlowModType::kAdd:
      return table.insert(mod.entry);
    case FlowModType::kModify:
      if (table.find(mod.entry.match) == nullptr) return false;
      return table.insertOrReplace(mod.entry);
    case FlowModType::kDelete:
      return table.remove(mod.entry.match);
  }
  return false;
}

bool ControlChannel::applyIdempotent(const FlowMod& mod) {
  net::FlowTable& table = network_.flowTable(mod.switchNode);
  switch (mod.type) {
    case FlowModType::kAdd: {
      // A re-delivered add finds its own entry already installed: success.
      const net::FlowEntry* existing = table.find(mod.entry.match);
      if (existing != nullptr) return *existing == mod.entry;
      return table.insert(mod.entry);
    }
    case FlowModType::kModify: {
      const net::FlowEntry* existing = table.find(mod.entry.match);
      if (existing == nullptr) return false;
      if (*existing == mod.entry) return true;
      return table.insertOrReplace(mod.entry);
    }
    case FlowModType::kDelete:
      // Absent means already deleted (earlier duplicate delivery): success.
      table.remove(mod.entry.match);
      return true;
  }
  return false;
}

void ControlChannel::setSwitchConnected(net::NodeId switchNode, bool connected) {
  if (connected) {
    disconnected_.erase(switchNode);
  } else {
    disconnected_.insert(switchNode);
  }
}

bool ControlChannel::send(const FlowMod& mod) {
  ++stats_.flowModsSent;
  if (obsModsSent_ != nullptr) obsModsSent_->inc();
  modeledInstallTime_ += flowModLatency_;
  switch (mod.type) {
    case FlowModType::kAdd:
      ++stats_.flowAdds;
      break;
    case FlowModType::kModify:
      ++stats_.flowModifies;
      break;
    case FlowModType::kDelete:
      ++stats_.flowDeletes;
      break;
  }
  const bool tracing = tracer_ != nullptr && tracer_->enabled();

  if (!async_) {
    // Synchronous channel: a dropped mod is lost for good (no retry timer
    // can fire without the simulator running); the mirror/switch divergence
    // is the reconciler's to repair.
    const char* result;
    bool ok = false;
    if (!switchConnected(mod.switchNode) || rng_.chance(faults_.dropProbability)) {
      ++stats_.flowModsDropped;
      ++stats_.flowModsAbandoned;
      if (obsModsDropped_ != nullptr) {
        obsModsDropped_->inc();
        obsModsAbandoned_->inc();
      }
      result = "dropped";
    } else {
      ok = applyNow(mod);
      if (obsModsAcked_ != nullptr && ok) obsModsAcked_->inc();
      if (faults_.duplicateProbability > 0.0 &&
          rng_.chance(faults_.duplicateProbability)) {
        ++stats_.flowModsDuplicated;
        applyIdempotent(mod);
      }
      result = ok ? "applied" : "failed";
    }
    if (tracing) {
      const obs::SpanId ctx = tracer_->currentContext();
      const obs::SpanId span =
          tracer_->instant(tracer_->traceIdOf(ctx), ctx, modTraceName(mod.type),
                           network_.simulator().now(), mod.switchNode);
      tracer_->annotate(span, "result", result);
    }
    return ok;
  }

  FlowMod tracked = mod;
  tracked.xid = nextXid_++;
  Pending p;
  p.mod = tracked;
  p.timeout = retry_.initialTimeout;
  if (tracing) {
    const obs::SpanId ctx = tracer_->currentContext();
    p.span = tracer_->begin(tracer_->traceIdOf(ctx), ctx, modTraceName(mod.type),
                            network_.simulator().now(), mod.switchNode);
    tracer_->annotate(p.span, "xid", std::to_string(tracked.xid));
  }
  pending_.emplace(tracked.xid, std::move(p));
  outstanding_[tracked.switchNode].insert(tracked.xid);
  transmitAttempt(tracked.xid, /*isRetransmit=*/false);
  return true;
}

void ControlChannel::transmitAttempt(std::uint64_t xid, bool isRetransmit) {
  const auto it = pending_.find(xid);
  if (it == pending_.end() || it->second.resolved) return;
  const FlowMod& mod = it->second.mod;

  const bool lost =
      !switchConnected(mod.switchNode) || rng_.chance(faults_.dropProbability);
  net::SimTime deliveryBasis = network_.simulator().now();
  if (lost) {
    ++stats_.flowModsDropped;
    if (obsModsDropped_ != nullptr) obsModsDropped_->inc();
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->instant(tracer_->traceIdOf(it->second.span), it->second.span,
                       "flow_mod.drop", deliveryBasis, mod.switchNode);
    }
  } else {
    deliveryBasis = scheduleDelivery(xid, mod, /*chained=*/!isRetransmit);
  }

  if (retry_.maxRetries > 0) {
    armRetryTimer(xid, deliveryBasis);
  } else if (lost) {
    // Fire-and-forget: a lost mod is abandoned immediately.
    ++stats_.flowModsAbandoned;
    if (obsModsAbandoned_ != nullptr) obsModsAbandoned_->inc();
    resolve(xid, false);
  }
}

net::SimTime ControlChannel::scheduleDelivery(std::uint64_t xid,
                                              const FlowMod& mod, bool chained) {
  net::Simulator& sim = network_.simulator();
  net::SimTime when;
  if (chained) {
    // FIFO application: each mod completes flowModLatency after the later
    // of "now" and the previous mod's completion.
    lastScheduled_ = std::max(lastScheduled_, sim.now()) + flowModLatency_;
    when = lastScheduled_;
  } else {
    when = sim.now() + flowModLatency_;
  }
  if (faults_.maxExtraDelay > 0) {
    when += static_cast<net::SimTime>(rng_.uniformInt(
        0, static_cast<std::uint64_t>(faults_.maxExtraDelay)));
  }
  sim.scheduleAt(when, [this, xid, mod] { deliver(xid, mod); });
  if (faults_.duplicateProbability > 0.0 &&
      rng_.chance(faults_.duplicateProbability)) {
    ++stats_.flowModsDuplicated;
    sim.scheduleAt(when + flowModLatency_, [this, xid, mod] { deliver(xid, mod); });
  }
  return when;
}

void ControlChannel::deliver(std::uint64_t xid, const FlowMod& mod) {
  // A switch that lost its control session while the mod was in flight
  // never receives it. With a retry budget the retransmit timer keeps the
  // mod pending; fire-and-forget mods are abandoned here.
  if (!switchConnected(mod.switchNode)) {
    ++stats_.flowModsDropped;
    if (obsModsDropped_ != nullptr) obsModsDropped_->inc();
    const auto lost = pending_.find(xid);
    if (lost != pending_.end() && !lost->second.resolved &&
        retry_.maxRetries == 0) {
      ++stats_.flowModsAbandoned;
      if (obsModsAbandoned_ != nullptr) obsModsAbandoned_->inc();
      resolve(xid, false);
    }
    return;
  }
  const bool ok = applyIdempotent(mod);
  if (!ok) ++stats_.asyncApplyFailures;
  // Ack back to the controller side: resolves the pending entry (late or
  // duplicate deliveries of an already-resolved xid still applied above,
  // but carry no ack).
  const auto it = pending_.find(xid);
  if (it != pending_.end() && !it->second.resolved) resolve(xid, ok);
}

void ControlChannel::armRetryTimer(std::uint64_t xid, net::SimTime basis) {
  const auto it = pending_.find(xid);
  if (it == pending_.end() || it->second.resolved) return;
  network_.simulator().scheduleAt(basis + it->second.timeout, [this, xid] {
    const auto p = pending_.find(xid);
    if (p == pending_.end() || p->second.resolved) return;
    if (p->second.attempts > retry_.maxRetries) {
      ++stats_.flowModsAbandoned;
      if (obsModsAbandoned_ != nullptr) obsModsAbandoned_->inc();
      resolve(xid, false);
      return;
    }
    ++stats_.flowModsRetried;
    if (obsModsRetried_ != nullptr) obsModsRetried_->inc();
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->instant(tracer_->traceIdOf(p->second.span), p->second.span,
                       "flow_mod.retry", network_.simulator().now(),
                       p->second.mod.switchNode);
    }
    ++p->second.attempts;
    p->second.timeout = std::min(p->second.timeout * 2, retry_.maxTimeout);
    transmitAttempt(xid, /*isRetransmit=*/true);
  });
}

void ControlChannel::resolve(std::uint64_t xid, bool ok) {
  const auto it = pending_.find(xid);
  if (it == pending_.end() || it->second.resolved) return;
  it->second.resolved = true;
  it->second.ok = ok;
  const net::NodeId sw = it->second.mod.switchNode;
  if (ok && obsModsAcked_ != nullptr) obsModsAcked_->inc();
  if (it->second.span != obs::kNoSpan && tracer_ != nullptr) {
    tracer_->annotate(it->second.span, "ok", ok ? "true" : "false");
    tracer_->end(it->second.span, network_.simulator().now());
  }

  const auto out = outstanding_.find(sw);
  if (out != outstanding_.end()) {
    out->second.erase(xid);
    if (out->second.empty()) outstanding_.erase(out);
  }

  std::vector<std::uint64_t> fired;
  for (auto& [bid, barrier] : barriers_) {
    if (barrier.switchNode != sw) continue;
    barrier.waitingOn.erase(xid);
    barrier.ok = barrier.ok && ok;
    if (barrier.waitingOn.empty()) fired.push_back(bid);
  }
  for (const std::uint64_t bid : fired) {
    Barrier barrier = std::move(barriers_.at(bid));
    barriers_.erase(bid);
    ++stats_.barrierReplies;
    if (barrier.callback) barrier.callback(barrier.ok);
  }

  pending_.erase(xid);
}

std::uint64_t ControlChannel::sendBarrier(net::NodeId switchNode,
                                          BarrierCallback onReply) {
  ++stats_.barrierRequests;
  if (obsBarrierRequests_ != nullptr) obsBarrierRequests_->inc();
  const std::uint64_t xid = nextXid_++;
  const auto out = outstanding_.find(switchNode);
  if (!async_ || out == outstanding_.end() || out->second.empty()) {
    ++stats_.barrierReplies;
    if (onReply) onReply(true);
    return xid;
  }
  Barrier barrier;
  barrier.switchNode = switchNode;
  barrier.waitingOn = out->second;
  barrier.callback = std::move(onReply);
  barriers_.emplace(xid, std::move(barrier));
  return xid;
}

std::size_t ControlChannel::outstandingMods(net::NodeId switchNode) const {
  const auto it = outstanding_.find(switchNode);
  return it == outstanding_.end() ? 0 : it->second.size();
}

std::size_t ControlChannel::outstandingMods() const {
  std::size_t total = 0;
  for (const auto& [sw, xids] : outstanding_) total += xids.size();
  return total;
}

FlowStatsReply ControlChannel::requestFlowStats(net::NodeId switchNode) {
  ++stats_.flowStatsRequests;
  if (obsFlowStatsRequests_ != nullptr) obsFlowStatsRequests_->inc();
  FlowStatsReply reply;
  reply.switchNode = switchNode;
  reply.xid = nextXid_++;
  if (!switchConnected(switchNode)) return reply;  // ok stays false
  reply.ok = true;
  reply.entries = network_.flowTable(switchNode).entries();
  ++stats_.flowStatsReplies;
  return reply;
}

void ControlChannel::attachObservability(obs::MetricsRegistry& reg,
                                         obs::Tracer* tracer) {
  tracer_ = tracer;
  obsModsSent_ = &reg.counter("ctrl_channel.mods_sent");
  obsModsAcked_ = &reg.counter("ctrl_channel.mods_acked");
  obsModsDropped_ = &reg.counter("ctrl_channel.mods_dropped");
  obsModsRetried_ = &reg.counter("ctrl_channel.mods_retried");
  obsModsAbandoned_ = &reg.counter("ctrl_channel.mods_abandoned");
  obsBarrierRequests_ = &reg.counter("ctrl_channel.barrier_requests");
  obsFlowStatsRequests_ = &reg.counter("ctrl_channel.flow_stats_requests");
}

void ControlChannel::sendPacketOut(const PacketOut& out) {
  ++stats_.packetOuts;
  if (!switchConnected(out.switchNode) || rng_.chance(faults_.dropProbability)) {
    ++stats_.packetOutsDropped;
    return;
  }
  network_.sendOutPort(out.switchNode, out.outPort, out.packet);
}

}  // namespace pleroma::openflow
