#include "openflow/control_channel.hpp"

#include <algorithm>
#include <vector>

namespace pleroma::openflow {

namespace {
const char* modTraceName(FlowModType type) {
  switch (type) {
    case FlowModType::kAdd: return "flow_mod.add";
    case FlowModType::kModify: return "flow_mod.modify";
    case FlowModType::kDelete: return "flow_mod.delete";
  }
  return "flow_mod";
}
}  // namespace

bool ControlChannel::applyNow(const FlowMod& mod) {
  net::FlowTable& table = network_.flowTable(mod.switchNode);
  switch (mod.type) {
    case FlowModType::kAdd:
      return table.insert(mod.entry);
    case FlowModType::kModify:
      if (table.find(mod.entry.match) == nullptr) return false;
      return table.insertOrReplace(mod.entry);
    case FlowModType::kDelete:
      return table.remove(mod.entry.match);
  }
  return false;
}

bool ControlChannel::applyIdempotent(const FlowMod& mod) {
  net::FlowTable& table = network_.flowTable(mod.switchNode);
  switch (mod.type) {
    case FlowModType::kAdd: {
      // A re-delivered add finds its own entry already installed: success.
      const net::FlowEntry* existing = table.find(mod.entry.match);
      if (existing != nullptr) return *existing == mod.entry;
      return table.insert(mod.entry);
    }
    case FlowModType::kModify: {
      const net::FlowEntry* existing = table.find(mod.entry.match);
      if (existing == nullptr) return false;
      if (*existing == mod.entry) return true;
      return table.insertOrReplace(mod.entry);
    }
    case FlowModType::kDelete:
      // Absent means already deleted (earlier duplicate delivery): success.
      table.remove(mod.entry.match);
      return true;
  }
  return false;
}

void ControlChannel::setSwitchConnected(net::NodeId switchNode, bool connected) {
  if (connected) {
    disconnected_.erase(switchNode);
  } else {
    disconnected_.insert(switchNode);
  }
}

void ControlChannel::countSent(const FlowMod& mod) {
  ++stats_.flowModsSent;
  if (obsModsSent_ != nullptr) obsModsSent_->inc();
  modeledInstallTime_ += flowModLatency_;
  switch (mod.type) {
    case FlowModType::kAdd:
      ++stats_.flowAdds;
      break;
    case FlowModType::kModify:
      ++stats_.flowModifies;
      break;
    case FlowModType::kDelete:
      ++stats_.flowDeletes;
      break;
  }
}

bool ControlChannel::send(const FlowMod& mod) {
  if (muted_) return true;  // promotion replay: intent only, no wire traffic
  countSent(mod);
  const bool tracing = tracer_ != nullptr && tracer_->enabled();

  if (!async_) {
    // Synchronous channel: a dropped mod is lost for good (no retry timer
    // can fire without the simulator running); the mirror/switch divergence
    // is the reconciler's to repair.
    const char* result;
    bool ok = false;
    if (!switchConnected(mod.switchNode) || rng_.chance(faults_.dropProbability)) {
      ++stats_.flowModsDropped;
      ++stats_.flowModsAbandoned;
      if (obsModsDropped_ != nullptr) {
        obsModsDropped_->inc();
        obsModsAbandoned_->inc();
      }
      result = "dropped";
    } else {
      ok = applyNow(mod);
      if (obsModsAcked_ != nullptr && ok) obsModsAcked_->inc();
      if (faults_.duplicateProbability > 0.0 &&
          rng_.chance(faults_.duplicateProbability)) {
        ++stats_.flowModsDuplicated;
        applyIdempotent(mod);
      }
      result = ok ? "applied" : "failed";
    }
    if (tracing) {
      const obs::SpanId ctx = tracer_->currentContext();
      const obs::SpanId span =
          tracer_->instant(tracer_->traceIdOf(ctx), ctx, modTraceName(mod.type),
                           network_.simulator().now(), mod.switchNode);
      tracer_->annotate(span, "result", result);
    }
    return ok;
  }

  FlowMod tracked = mod;
  tracked.xid = nextXid_++;
  Pending p;
  p.mod = tracked;
  p.timeout = retry_.initialTimeout;
  if (tracing) {
    const obs::SpanId ctx = tracer_->currentContext();
    p.span = tracer_->begin(tracer_->traceIdOf(ctx), ctx, modTraceName(mod.type),
                            network_.simulator().now(), mod.switchNode);
    tracer_->annotate(p.span, "xid", std::to_string(tracked.xid));
  }
  pending_.emplace(tracked.xid, std::move(p));
  outstanding_[tracked.switchNode].insert(tracked.xid);
  transmitAttempt(tracked.xid, /*isRetransmit=*/false);
  return true;
}

std::size_t ControlChannel::sendBatch(std::span<const FlowMod> mods) {
  if (mods.empty()) return 0;
  if (!batching_) {
    // Degenerate to the single-mod path: same message count, same fault
    // draws, same stats — callers can always route through sendBatch and
    // let this flag decide.
    std::size_t ok = 0;
    for (const FlowMod& mod : mods) ok += send(mod) ? 1 : 0;
    return ok;
  }
  // One batch message per destination switch, in first-appearance order;
  // mod order within a switch's batch is the send order.
  std::vector<net::NodeId> switches;
  std::size_t ok = 0;
  for (const FlowMod& mod : mods) {
    if (std::find(switches.begin(), switches.end(), mod.switchNode) ==
        switches.end()) {
      switches.push_back(mod.switchNode);
    }
  }
  for (const net::NodeId sw : switches) {
    std::vector<FlowMod> group;
    for (const FlowMod& mod : mods) {
      if (mod.switchNode == sw) group.push_back(mod);
    }
    ok += sendBatchToSwitch(sw, std::move(group));
  }
  return ok;
}

std::size_t ControlChannel::sendBatchToSwitch(net::NodeId sw,
                                              std::vector<FlowMod> mods) {
  if (muted_) return mods.size();
  ++stats_.flowModBatches;
  stats_.batchedMods += mods.size();
  for (const FlowMod& mod : mods) countSent(mod);
  const bool tracing = tracer_ != nullptr && tracer_->enabled();

  if (!async_) {
    // One fault draw for the whole message: the batch is delivered or lost
    // as a unit.
    std::size_t ok = 0;
    if (!switchConnected(sw) || rng_.chance(faults_.dropProbability)) {
      stats_.flowModsDropped += mods.size();
      stats_.flowModsAbandoned += mods.size();
      if (obsModsDropped_ != nullptr) {
        obsModsDropped_->inc(mods.size());
        obsModsAbandoned_->inc(mods.size());
      }
    } else {
      for (const FlowMod& mod : mods) ok += applyNow(mod) ? 1 : 0;
      if (obsModsAcked_ != nullptr) obsModsAcked_->inc(ok);
      if (faults_.duplicateProbability > 0.0 &&
          rng_.chance(faults_.duplicateProbability)) {
        ++stats_.flowModsDuplicated;
        for (const FlowMod& mod : mods) applyIdempotent(mod);
      }
    }
    if (tracing) {
      const obs::SpanId ctx = tracer_->currentContext();
      const obs::SpanId span =
          tracer_->instant(tracer_->traceIdOf(ctx), ctx, "flow_mod.batch",
                           network_.simulator().now(), sw);
      tracer_->annotate(span, "mods", std::to_string(mods.size()));
      tracer_->annotate(span, "applied", std::to_string(ok));
    }
    return ok;
  }

  const std::size_t queued = mods.size();
  Pending p;
  p.mod = std::move(mods.front());
  p.rest.assign(std::make_move_iterator(mods.begin() + 1),
                std::make_move_iterator(mods.end()));
  p.mod.xid = nextXid_++;
  p.timeout = retry_.initialTimeout;
  if (tracing) {
    const obs::SpanId ctx = tracer_->currentContext();
    p.span = tracer_->begin(tracer_->traceIdOf(ctx), ctx, "flow_mod.batch",
                            network_.simulator().now(), sw);
    tracer_->annotate(p.span, "xid", std::to_string(p.mod.xid));
    tracer_->annotate(p.span, "mods", std::to_string(queued));
  }
  const std::uint64_t xid = p.mod.xid;
  pending_.emplace(xid, std::move(p));
  outstanding_[sw].insert(xid);
  transmitAttempt(xid, /*isRetransmit=*/false);
  return queued;
}

void ControlChannel::transmitAttempt(std::uint64_t xid, bool isRetransmit) {
  const auto it = pending_.find(xid);
  if (it == pending_.end() || it->second.resolved) return;
  const FlowMod& mod = it->second.mod;
  // The whole message — one mod or a batch — is lost with one draw.
  const std::size_t modCount = 1 + it->second.rest.size();

  const bool lost =
      !switchConnected(mod.switchNode) || rng_.chance(faults_.dropProbability);
  net::SimTime deliveryBasis = network_.simulator().now();
  if (lost) {
    stats_.flowModsDropped += modCount;
    if (obsModsDropped_ != nullptr) obsModsDropped_->inc(modCount);
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->instant(tracer_->traceIdOf(it->second.span), it->second.span,
                       "flow_mod.drop", deliveryBasis, mod.switchNode);
    }
  } else {
    deliveryBasis = scheduleDelivery(xid, it->second, /*chained=*/!isRetransmit);
  }

  if (retry_.maxRetries > 0) {
    armRetryTimer(xid, deliveryBasis);
  } else if (lost) {
    // Fire-and-forget: a lost mod is abandoned immediately.
    stats_.flowModsAbandoned += modCount;
    if (obsModsAbandoned_ != nullptr) obsModsAbandoned_->inc(modCount);
    resolve(xid, false);
  }
}

net::SimTime ControlChannel::scheduleDelivery(std::uint64_t xid,
                                              const Pending& p, bool chained) {
  net::Simulator& sim = network_.simulator();
  // A batch still pays the switch-side TCAM write per mod; what it saves
  // is per-message channel overhead (and fault exposure).
  const net::SimTime installTime =
      flowModLatency_ * static_cast<net::SimTime>(1 + p.rest.size());
  net::SimTime when;
  if (chained) {
    // FIFO application: each message completes its installs after the
    // later of "now" and the previous message's completion.
    lastScheduled_ = std::max(lastScheduled_, sim.now()) + installTime;
    when = lastScheduled_;
  } else {
    when = sim.now() + installTime;
  }
  if (faults_.maxExtraDelay > 0) {
    when += static_cast<net::SimTime>(rng_.uniformInt(
        0, static_cast<std::uint64_t>(faults_.maxExtraDelay)));
  }
  if (p.rest.empty()) {
    const FlowMod mod = p.mod;
    sim.scheduleAt(when, [this, xid, mod] { deliver(xid, mod); });
    if (faults_.duplicateProbability > 0.0 &&
        rng_.chance(faults_.duplicateProbability)) {
      ++stats_.flowModsDuplicated;
      sim.scheduleAt(when + flowModLatency_,
                     [this, xid, mod] { deliver(xid, mod); });
    }
    return when;
  }
  std::vector<FlowMod> mods;
  mods.reserve(1 + p.rest.size());
  mods.push_back(p.mod);
  mods.insert(mods.end(), p.rest.begin(), p.rest.end());
  sim.scheduleAt(when, [this, xid, mods] { deliverBatch(xid, mods); });
  if (faults_.duplicateProbability > 0.0 &&
      rng_.chance(faults_.duplicateProbability)) {
    ++stats_.flowModsDuplicated;
    sim.scheduleAt(when + installTime,
                   [this, xid, mods] { deliverBatch(xid, mods); });
  }
  return when;
}

void ControlChannel::deliverBatch(std::uint64_t xid,
                                  const std::vector<FlowMod>& mods) {
  // Mirrors deliver(): a disconnected switch never receives the message;
  // otherwise every mod applies (at-least-once) and the batch acks once.
  const net::NodeId sw = mods.front().switchNode;
  if (!switchConnected(sw)) {
    stats_.flowModsDropped += mods.size();
    if (obsModsDropped_ != nullptr) obsModsDropped_->inc(mods.size());
    const auto lost = pending_.find(xid);
    if (lost != pending_.end() && !lost->second.resolved &&
        retry_.maxRetries == 0) {
      stats_.flowModsAbandoned += mods.size();
      if (obsModsAbandoned_ != nullptr) obsModsAbandoned_->inc(mods.size());
      resolve(xid, false);
    }
    return;
  }
  bool ok = true;
  for (const FlowMod& mod : mods) {
    const bool applied = applyIdempotent(mod);
    if (!applied) ++stats_.asyncApplyFailures;
    ok = ok && applied;
  }
  const auto it = pending_.find(xid);
  if (it != pending_.end() && !it->second.resolved) resolve(xid, ok);
}

void ControlChannel::deliver(std::uint64_t xid, const FlowMod& mod) {
  // A switch that lost its control session while the mod was in flight
  // never receives it. With a retry budget the retransmit timer keeps the
  // mod pending; fire-and-forget mods are abandoned here.
  if (!switchConnected(mod.switchNode)) {
    ++stats_.flowModsDropped;
    if (obsModsDropped_ != nullptr) obsModsDropped_->inc();
    const auto lost = pending_.find(xid);
    if (lost != pending_.end() && !lost->second.resolved &&
        retry_.maxRetries == 0) {
      ++stats_.flowModsAbandoned;
      if (obsModsAbandoned_ != nullptr) obsModsAbandoned_->inc();
      resolve(xid, false);
    }
    return;
  }
  const bool ok = applyIdempotent(mod);
  if (!ok) ++stats_.asyncApplyFailures;
  // Ack back to the controller side: resolves the pending entry (late or
  // duplicate deliveries of an already-resolved xid still applied above,
  // but carry no ack).
  const auto it = pending_.find(xid);
  if (it != pending_.end() && !it->second.resolved) resolve(xid, ok);
}

void ControlChannel::armRetryTimer(std::uint64_t xid, net::SimTime basis) {
  const auto it = pending_.find(xid);
  if (it == pending_.end() || it->second.resolved) return;
  network_.simulator().scheduleAt(basis + it->second.timeout, [this, xid] {
    const auto p = pending_.find(xid);
    if (p == pending_.end() || p->second.resolved) return;
    if (p->second.attempts > retry_.maxRetries) {
      const std::size_t modCount = 1 + p->second.rest.size();
      stats_.flowModsAbandoned += modCount;
      if (obsModsAbandoned_ != nullptr) obsModsAbandoned_->inc(modCount);
      resolve(xid, false);
      return;
    }
    ++stats_.flowModsRetried;
    if (obsModsRetried_ != nullptr) obsModsRetried_->inc();
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->instant(tracer_->traceIdOf(p->second.span), p->second.span,
                       "flow_mod.retry", network_.simulator().now(),
                       p->second.mod.switchNode);
    }
    ++p->second.attempts;
    p->second.timeout = std::min(p->second.timeout * 2, retry_.maxTimeout);
    transmitAttempt(xid, /*isRetransmit=*/true);
  });
}

void ControlChannel::resolve(std::uint64_t xid, bool ok) {
  const auto it = pending_.find(xid);
  if (it == pending_.end() || it->second.resolved) return;
  it->second.resolved = true;
  it->second.ok = ok;
  const net::NodeId sw = it->second.mod.switchNode;
  if (ok && obsModsAcked_ != nullptr) obsModsAcked_->inc();
  if (it->second.span != obs::kNoSpan && tracer_ != nullptr) {
    tracer_->annotate(it->second.span, "ok", ok ? "true" : "false");
    tracer_->end(it->second.span, network_.simulator().now());
  }

  const auto out = outstanding_.find(sw);
  if (out != outstanding_.end()) {
    out->second.erase(xid);
    if (out->second.empty()) outstanding_.erase(out);
  }

  std::vector<std::uint64_t> fired;
  for (auto& [bid, barrier] : barriers_) {
    if (barrier.switchNode != sw) continue;
    barrier.waitingOn.erase(xid);
    barrier.ok = barrier.ok && ok;
    if (barrier.waitingOn.empty()) fired.push_back(bid);
  }
  for (const std::uint64_t bid : fired) {
    Barrier barrier = std::move(barriers_.at(bid));
    barriers_.erase(bid);
    ++stats_.barrierReplies;
    if (barrier.callback) barrier.callback(barrier.ok);
  }

  pending_.erase(xid);
}

std::uint64_t ControlChannel::sendBarrier(net::NodeId switchNode,
                                          BarrierCallback onReply) {
  if (muted_) {
    // Nothing can be outstanding on a muted channel; reply immediately.
    if (onReply) onReply(true);
    return nextXid_++;
  }
  ++stats_.barrierRequests;
  if (obsBarrierRequests_ != nullptr) obsBarrierRequests_->inc();
  const std::uint64_t xid = nextXid_++;
  const auto out = outstanding_.find(switchNode);
  if (!async_ || out == outstanding_.end() || out->second.empty()) {
    ++stats_.barrierReplies;
    if (onReply) onReply(true);
    return xid;
  }
  Barrier barrier;
  barrier.switchNode = switchNode;
  barrier.waitingOn = out->second;
  barrier.callback = std::move(onReply);
  barriers_.emplace(xid, std::move(barrier));
  return xid;
}

std::size_t ControlChannel::outstandingMods(net::NodeId switchNode) const {
  const auto it = outstanding_.find(switchNode);
  return it == outstanding_.end() ? 0 : it->second.size();
}

std::size_t ControlChannel::outstandingMods() const {
  std::size_t total = 0;
  for (const auto& [sw, xids] : outstanding_) total += xids.size();
  return total;
}

FlowStatsReply ControlChannel::readFlowStats(net::NodeId switchNode) {
  FlowStatsReply reply;
  reply.switchNode = switchNode;
  reply.xid = nextXid_++;
  if (!switchConnected(switchNode)) return reply;  // ok stays false
  reply.ok = true;
  const net::FlowTable& table = network_.flowTable(switchNode);
  reply.entries.reserve(table.size());
  // Template forEach: the lambda is called directly during the bucket scan,
  // with no std::function type-erasure per entry.
  table.forEach([&reply](const net::FlowEntry& e) { reply.entries.push_back(e); });
  ++stats_.flowStatsReplies;
  return reply;
}

FlowStatsReply ControlChannel::requestFlowStats(net::NodeId switchNode) {
  ++stats_.flowStatsRequests;
  if (obsFlowStatsRequests_ != nullptr) obsFlowStatsRequests_->inc();
  return readFlowStats(switchNode);
}

std::vector<FlowStatsReply> ControlChannel::requestFlowStatsBatch(
    std::span<const net::NodeId> switches) {
  ++stats_.flowStatsBatches;
  if (obsFlowStatsRequests_ != nullptr) obsFlowStatsRequests_->inc();
  std::vector<FlowStatsReply> replies;
  replies.reserve(switches.size());
  for (const net::NodeId sw : switches) replies.push_back(readFlowStats(sw));
  return replies;
}

bool ControlChannel::sendEcho(bool peerResponds) {
  ++stats_.echoRequests;
  // Request direction: one drop draw.
  if (faults_.dropProbability > 0.0 && rng_.chance(faults_.dropProbability)) {
    ++stats_.echoesDropped;
    return false;
  }
  if (!peerResponds) return false;  // the peer is dead: no reply exists
  // Reply direction: a second independent draw.
  if (faults_.dropProbability > 0.0 && rng_.chance(faults_.dropProbability)) {
    ++stats_.echoesDropped;
    return false;
  }
  ++stats_.echoReplies;
  return true;
}

bool ControlChannel::sendRoleRequest(net::NodeId switchNode,
                                     ControllerRole role) {
  ++stats_.roleRequests;
  if (!switchConnected(switchNode)) return false;
  roles_[switchNode] = role;
  ++stats_.roleReplies;
  return true;
}

void ControlChannel::attachObservability(obs::MetricsRegistry& reg,
                                         obs::Tracer* tracer) {
  tracer_ = tracer;
  obsModsSent_ = &reg.counter("ctrl_channel.mods_sent");
  obsModsAcked_ = &reg.counter("ctrl_channel.mods_acked");
  obsModsDropped_ = &reg.counter("ctrl_channel.mods_dropped");
  obsModsRetried_ = &reg.counter("ctrl_channel.mods_retried");
  obsModsAbandoned_ = &reg.counter("ctrl_channel.mods_abandoned");
  obsBarrierRequests_ = &reg.counter("ctrl_channel.barrier_requests");
  obsFlowStatsRequests_ = &reg.counter("ctrl_channel.flow_stats_requests");
}

void ControlChannel::sendPacketOut(const PacketOut& out) {
  if (muted_) return;
  ++stats_.packetOuts;
  if (!switchConnected(out.switchNode) || rng_.chance(faults_.dropProbability)) {
    ++stats_.packetOutsDropped;
    return;
  }
  network_.sendOutPort(out.switchNode, out.outPort, out.packet);
}

}  // namespace pleroma::openflow
