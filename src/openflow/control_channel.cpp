#include "openflow/control_channel.hpp"

#include <algorithm>

namespace pleroma::openflow {

bool ControlChannel::applyNow(const FlowMod& mod) {
  net::FlowTable& table = network_.flowTable(mod.switchNode);
  switch (mod.type) {
    case FlowModType::kAdd:
      return table.insert(mod.entry);
    case FlowModType::kModify:
      if (table.find(mod.entry.match) == nullptr) return false;
      return table.insertOrReplace(mod.entry);
    case FlowModType::kDelete:
      return table.remove(mod.entry.match);
  }
  return false;
}

bool ControlChannel::send(const FlowMod& mod) {
  ++stats_.flowModsSent;
  modeledInstallTime_ += flowModLatency_;
  switch (mod.type) {
    case FlowModType::kAdd:
      ++stats_.flowAdds;
      break;
    case FlowModType::kModify:
      ++stats_.flowModifies;
      break;
    case FlowModType::kDelete:
      ++stats_.flowDeletes;
      break;
  }
  if (!async_) return applyNow(mod);

  // FIFO application: each mod completes flowModLatency after the later of
  // "now" and the previous mod's completion.
  net::Simulator& sim = network_.simulator();
  lastScheduled_ = std::max(lastScheduled_, sim.now()) + flowModLatency_;
  sim.scheduleAt(lastScheduled_, [this, mod] { applyNow(mod); });
  return true;
}

void ControlChannel::sendPacketOut(const PacketOut& out) {
  ++stats_.packetOuts;
  network_.sendOutPort(out.switchNode, out.outPort, out.packet);
}

}  // namespace pleroma::openflow
