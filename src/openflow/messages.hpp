// Control-plane message types exchanged between a controller and its
// switches, modelled on the OpenFlow protocol surface PLEROMA uses:
// flow-mod (add / modify / delete), packet-in (punt to controller) and
// packet-out (controller-initiated transmission).
#pragma once

#include <cstdint>
#include <vector>

#include "net/flow_table.hpp"
#include "net/packet.hpp"

namespace pleroma::openflow {

enum class FlowModType { kAdd, kModify, kDelete };

/// OpenFlow controller role towards one switch (OFPT_ROLE_REQUEST). A
/// switch accepts state-changing messages from its master; a promoted
/// standby claims mastership switch by switch before repairing.
enum class ControllerRole { kEqual, kMaster, kSlave };

struct FlowMod {
  FlowModType type = FlowModType::kAdd;
  net::NodeId switchNode = net::kInvalidNode;
  net::FlowEntry entry;  // for kDelete only entry.match is meaningful
  /// Transaction id, assigned by the control channel at send time. Acks,
  /// retransmissions and barriers are tracked per xid (OpenFlow header.xid).
  std::uint64_t xid = 0;
};

struct PacketIn {
  net::NodeId switchNode = net::kInvalidNode;
  net::PortId inPort = net::kInvalidPort;
  net::Packet packet;
};

struct PacketOut {
  net::NodeId switchNode = net::kInvalidNode;
  net::PortId outPort = net::kInvalidPort;  // explicit output action
  net::Packet packet;
};

/// Flow-stats read request (OFPT_STATS_REQUEST / OFPST_FLOW): asks a
/// switch for its installed entries including per-flow counters.
struct FlowStatsRequest {
  net::NodeId switchNode = net::kInvalidNode;
  std::uint64_t xid = 0;
};

/// Reply to a FlowStatsRequest: the switch's actual flow entries with
/// their FlowEntry::matchedPackets counters. `ok` is false when the
/// switch's control session is down (the reply never arrives) — callers
/// must not treat that as an empty table.
struct FlowStatsReply {
  net::NodeId switchNode = net::kInvalidNode;
  std::uint64_t xid = 0;
  bool ok = false;
  std::vector<net::FlowEntry> entries;
};

/// Counters of control-network traffic (the quantity Figs 7g/7h report)
/// plus the fault/recovery accounting of the control-plane fault model.
struct ControlPlaneStats {
  std::uint64_t flowModsSent = 0;
  std::uint64_t flowAdds = 0;
  std::uint64_t flowModifies = 0;
  std::uint64_t flowDeletes = 0;
  std::uint64_t packetIns = 0;
  std::uint64_t packetOuts = 0;
  // ---- batching --------------------------------------------------------
  /// Batch messages sent (each carries >= 1 mods towards one switch).
  std::uint64_t flowModBatches = 0;
  /// Mods that travelled inside a batch message (subset of flowModsSent).
  std::uint64_t batchedMods = 0;
  /// Control messages actually put on the wire for flow-mods: batched mods
  /// cost one message per batch, unbatched mods one message each.
  std::uint64_t flowModMessages() const noexcept {
    return flowModsSent - batchedMods + flowModBatches;
  }
  // ---- fault model / reliability layer ---------------------------------
  /// Flow-mod transmission attempts lost (random drop or disconnected
  /// switch); retransmissions count again.
  std::uint64_t flowModsDropped = 0;
  /// Extra deliveries caused by duplication faults.
  std::uint64_t flowModsDuplicated = 0;
  /// Retransmission attempts issued by the reliability layer.
  std::uint64_t flowModsRetried = 0;
  /// Mods given up on after the retry budget was exhausted (or dropped with
  /// retries disabled). These are exactly what reconciliation must repair.
  std::uint64_t flowModsAbandoned = 0;
  /// Deferred (async) applies that failed at the switch — e.g. a modify of
  /// a missing entry or an add rejected by a full TCAM. Idempotent
  /// re-deliveries of an already-applied mod are not failures.
  std::uint64_t asyncApplyFailures = 0;
  std::uint64_t packetOutsDropped = 0;
  std::uint64_t barrierRequests = 0;
  std::uint64_t barrierReplies = 0;
  /// Flow-stats reads (the Reconciler's data-plane audit channel).
  std::uint64_t flowStatsRequests = 0;
  std::uint64_t flowStatsReplies = 0;
  /// Batched flow-stats sweeps (one multipart request covering many
  /// switches — the promotion audit's read pattern). The per-switch
  /// replies count into flowStatsReplies; the sweep itself is one request.
  std::uint64_t flowStatsBatches = 0;
  // ---- liveness / failover ---------------------------------------------
  /// Echo round trips attempted (OFPT_ECHO_REQUEST; the failover layer's
  /// heartbeat probe).
  std::uint64_t echoRequests = 0;
  /// Echo replies that actually arrived.
  std::uint64_t echoReplies = 0;
  /// Echo requests or replies lost to the fault model (a dead peer's
  /// missing replies are not counted here — only channel loss is).
  std::uint64_t echoesDropped = 0;
  /// Controller-role claims sent (OFPT_ROLE_REQUEST) and their replies.
  std::uint64_t roleRequests = 0;
  std::uint64_t roleReplies = 0;
};

}  // namespace pleroma::openflow
