// Control-plane message types exchanged between a controller and its
// switches, modelled on the OpenFlow protocol surface PLEROMA uses:
// flow-mod (add / modify / delete), packet-in (punt to controller) and
// packet-out (controller-initiated transmission).
#pragma once

#include <cstdint>

#include "net/flow_table.hpp"
#include "net/packet.hpp"

namespace pleroma::openflow {

enum class FlowModType { kAdd, kModify, kDelete };

struct FlowMod {
  FlowModType type = FlowModType::kAdd;
  net::NodeId switchNode = net::kInvalidNode;
  net::FlowEntry entry;  // for kDelete only entry.match is meaningful
};

struct PacketIn {
  net::NodeId switchNode = net::kInvalidNode;
  net::PortId inPort = net::kInvalidPort;
  net::Packet packet;
};

struct PacketOut {
  net::NodeId switchNode = net::kInvalidNode;
  net::PortId outPort = net::kInvalidPort;  // explicit output action
  net::Packet packet;
};

/// Counters of control-network traffic (the quantity Figs 7g/7h report).
struct ControlPlaneStats {
  std::uint64_t flowModsSent = 0;
  std::uint64_t flowAdds = 0;
  std::uint64_t flowModifies = 0;
  std::uint64_t flowDeletes = 0;
  std::uint64_t packetIns = 0;
  std::uint64_t packetOuts = 0;
};

}  // namespace pleroma::openflow
