// Topology discovery (Sec 4.1). Each controller floods LLDP probes through
// the switches it manages: a switch receiving an LLDP probe directly from
// its controller re-emits it on all ports; a switch receiving one from
// another switch punts it back to its controller, which records the link.
// Probes that cross into a differently-controlled partition reach a foreign
// controller — instead of discarding them (the Floodlight default), PLEROMA
// records the receiving (switch, port) tuple as a *border port* towards the
// probing partition.
//
// The simulation executes exactly this exchange over the shared physical
// topology, given the node→partition assignment.
#pragma once

#include <vector>

#include "net/topology.hpp"

namespace pleroma::openflow {

using PartitionId = int;

/// A border gateway port: local switch/port whose link leads into a
/// neighbouring partition.
struct BorderPort {
  net::NodeId switchNode = net::kInvalidNode;
  net::PortId port = net::kInvalidPort;
  PartitionId neighborPartition = -1;
};

/// What one controller learns about its own partition.
struct DiscoveryResult {
  PartitionId partition = -1;
  std::vector<net::NodeId> switches;           ///< switches it controls
  std::vector<net::LinkId> internalLinks;      ///< switch-switch links inside
  std::vector<BorderPort> borderPorts;         ///< ports into neighbours
  std::vector<net::NodeId> hosts;              ///< hosts attached inside
};

/// Runs the LLDP exchange for every partition at once. `partitionOf[node]`
/// assigns each node to a partition (hosts belong to the partition of their
/// access switch and their assignment is ignored).
std::vector<DiscoveryResult> discoverPartitions(
    const net::Topology& topology, const std::vector<PartitionId>& partitionOf);

/// Convenience: the discovery result for a single partition.
DiscoveryResult discoverPartition(const net::Topology& topology,
                                  const std::vector<PartitionId>& partitionOf,
                                  PartitionId partition);

}  // namespace pleroma::openflow
