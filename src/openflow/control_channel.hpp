// The control network between one controller and the switches of its
// partition.
//
// Two modes:
//  * synchronous (default): flow-mods are applied to the switch TCAMs
//    immediately; the per-mod latency is only *accounted* (the modelled
//    reconfiguration delay that Fig 7f reports). The controller processes
//    requests sequentially (Sec 2), so ordering is trivially consistent.
//  * asynchronous: each flow-mod is applied `flowModLatency` of simulated
//    time after it is sent, in send order. Events in flight during a
//    reconfiguration then observe partially updated flow state — the
//    transient the paper's sequential-processing rule bounds but cannot
//    eliminate. Used by the activation-delay bench and consistency tests.
//
// Fault model (control-plane robustness extension): the channel can lose,
// duplicate, or delay flow-mods and packet-outs — per-attempt faults drawn
// from the seeded util::Rng — and individual switches can be disconnected
// (node failure / control-session loss). On top of the lossy channel sits
// an OpenFlow-style reliability layer: every mod carries an xid, applied
// mods are acknowledged, unacknowledged mods are retransmitted with capped
// exponential backoff under the simulator clock, and barrier requests
// complete once every earlier mod to that switch is resolved. Mods that
// exhaust the retry budget are *abandoned* (counted in the stats); the
// controller's anti-entropy pass (ctrl::Reconciler) repairs the resulting
// mirror/switch divergence.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "openflow/messages.hpp"
#include "util/rng.hpp"

namespace pleroma::openflow {

/// Per-attempt fault probabilities of the control channel. All faults are
/// drawn from the channel's seeded Rng, so runs are reproducible.
struct ControlFaultModel {
  /// Probability that one transmission attempt (mod or packet-out) is lost.
  double dropProbability = 0.0;
  /// Probability that a delivered mod is applied a second time.
  double duplicateProbability = 0.0;
  /// Extra per-delivery delay, uniform in [0, maxExtraDelay] (async only).
  net::SimTime maxExtraDelay = 0;

  bool any() const noexcept {
    return dropProbability > 0.0 || duplicateProbability > 0.0 ||
           maxExtraDelay > 0;
  }
};

/// Retransmission policy of the reliability layer (async mode). With
/// maxRetries == 0 the channel is fire-and-forget: a dropped mod is
/// immediately abandoned.
struct RetryPolicy {
  int maxRetries = 0;
  /// First retransmission timeout; doubles per attempt up to maxTimeout.
  net::SimTime initialTimeout = 4 * net::kMillisecond;
  net::SimTime maxTimeout = 32 * net::kMillisecond;
};

class ControlChannel {
 public:
  /// Invoked when a barrier reply arrives: `ok` is false when any mod the
  /// barrier waited on failed or was abandoned.
  using BarrierCallback = std::function<void(bool ok)>;

  /// `flowModLatency` models the switch-side installation cost of one
  /// flow-mod (dominated by TCAM write; ~1 ms on 2014 hardware).
  explicit ControlChannel(net::Network& network,
                          net::SimTime flowModLatency = net::kMillisecond)
      : network_(network), flowModLatency_(flowModLatency) {}

  /// Switches to asynchronous application: mods apply `flowModLatency`
  /// after send, under the network's simulator clock.
  void enableAsyncInstall() { async_ = true; }
  bool asyncInstall() const noexcept { return async_; }

  /// Opt-in flow-mod batching: sendBatch() coalesces the mods for each
  /// switch into one control message (one xid, one fault draw, one
  /// ack/retry unit) instead of one message per mod. Off by default —
  /// batching changes the channel's message and fault-draw sequence, so
  /// seeded runs are only reproducible against themselves.
  void enableBatching(bool on = true) { batching_ = on; }
  bool batchingEnabled() const noexcept { return batching_; }

  /// Mutes the channel: sends become silent no-ops (nothing transmitted,
  /// applied, counted, or drawn from the fault Rng) while reads still work.
  /// Used during standby promotion — the fresh controller replays the
  /// primary's command history to rebuild its *intent* (trees, registry,
  /// installer mirror) without touching the switches, whose TCAMs already
  /// hold the primary's installs; the post-replay reconcile pass then
  /// repairs only the true delta.
  void setMuted(bool on) noexcept { muted_ = on; }
  bool muted() const noexcept { return muted_; }

  // ---- fault injection -------------------------------------------------

  void setFaultModel(const ControlFaultModel& model) { faults_ = model; }
  const ControlFaultModel& faultModel() const noexcept { return faults_; }
  void setRetryPolicy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retryPolicy() const noexcept { return retry_; }
  /// Reseeds the fault Rng (deterministic fault sequences per seed).
  void reseedFaults(std::uint64_t seed) { rng_.reseed(seed); }

  /// Connects / disconnects a switch's control session. Every transmission
  /// attempt towards a disconnected switch is lost.
  void setSwitchConnected(net::NodeId switchNode, bool connected);
  bool switchConnected(net::NodeId switchNode) const {
    return !disconnected_.contains(switchNode);
  }

  // ---- sending ---------------------------------------------------------

  /// Applies (sync) or schedules (async) a flow-mod. Synchronous mode
  /// returns false when the mod is lost by the fault model, an add is
  /// rejected (TCAM full), or a modify/delete targets a missing entry;
  /// asynchronous mode always returns true (failures surface in the stats
  /// and are resolved through acks/retries).
  bool send(const FlowMod& mod);

  /// Sends a group of flow-mods, coalescing them (when batching is
  /// enabled) into one message per destination switch: the batch shares a
  /// single xid, a single drop/duplicate draw, and a single ack — a
  /// barrier after a batched install therefore waits on one xid per
  /// switch. Mod order is preserved within each switch's batch. With
  /// batching disabled this degenerates to send() per mod, byte-identical
  /// to the unbatched path. Returns the number of mods applied (sync) or
  /// queued (async).
  std::size_t sendBatch(std::span<const FlowMod> mods);

  /// Controller-initiated transmission out of a specific switch port.
  /// Subject to the fault model's drop probability.
  void sendPacketOut(const PacketOut& out);

  /// OpenFlow barrier request towards `switchNode`: `onReply` fires once
  /// every flow-mod sent to that switch before the barrier is resolved
  /// (acked, failed, or abandoned), with ok = all succeeded. Returns the
  /// barrier's xid. In synchronous mode (or with nothing outstanding) the
  /// reply fires immediately.
  std::uint64_t sendBarrier(net::NodeId switchNode, BarrierCallback onReply);

  // ---- introspection ---------------------------------------------------

  /// Mods sent to `switchNode` not yet resolved (acked or abandoned).
  std::size_t outstandingMods(net::NodeId switchNode) const;
  /// Total unresolved mods across all switches.
  std::size_t outstandingMods() const;
  /// No mod towards this switch is in flight — its flow table can be
  /// audited without racing the reliability layer.
  bool quiescent(net::NodeId switchNode) const {
    return outstandingMods(switchNode) == 0;
  }

  /// Reads the switch's current flow entries — Algorithm 1's
  /// getCurrentFlowsFromSwitch. In async mode this is the *actual* switch
  /// state, which may lag the controller's mirror.
  const net::FlowTable& flowsOf(net::NodeId switchNode) const {
    return network_.flowTable(switchNode);
  }

  /// OpenFlow flow-stats read: the switch's actual entries with their
  /// per-flow matchedPackets counters. Unlike flowsOf() this goes over the
  /// control session, so a disconnected switch yields ok == false (and the
  /// request is counted in the control-plane stats either way).
  FlowStatsReply requestFlowStats(net::NodeId switchNode);

  /// Batched flow-stats read: one multipart sweep over `switches`, counted
  /// as a single request on the channel. Each switch still answers
  /// individually (a dead control session yields ok == false for its
  /// reply). The promotion audit uses this to snapshot every TCAM in one
  /// round instead of one request per switch.
  std::vector<FlowStatsReply> requestFlowStatsBatch(
      std::span<const net::NodeId> switches);

  // ---- liveness & role (failover support) ------------------------------

  /// One echo round trip over the control network (OFPT_ECHO_REQUEST /
  /// REPLY) — the failover layer's heartbeat towards the primary
  /// controller. Each direction is exposed to one drop draw of the fault
  /// model; `peerResponds` is false when the probed peer is dead (its
  /// reply then never enters the channel). Returns true when the reply
  /// arrives.
  bool sendEcho(bool peerResponds = true);

  /// Claims `role` towards a switch (OFPT_ROLE_REQUEST). Role messages are
  /// control-session RPCs: they fail only when the session is down (no
  /// random loss — OpenFlow runs them over TCP). Returns true on the
  /// switch's reply.
  bool sendRoleRequest(net::NodeId switchNode, ControllerRole role);

  /// The role most recently acknowledged by `switchNode` (kEqual before
  /// any request — OpenFlow's default role).
  ControllerRole roleOf(net::NodeId switchNode) const {
    const auto it = roles_.find(switchNode);
    return it == roles_.end() ? ControllerRole::kEqual : it->second;
  }

  /// Resolves metric handles under "ctrl_channel.*" and (when `tracer` is
  /// non-null) records per-flow-mod trace spans parented by the tracer's
  /// current controller-op context.
  void attachObservability(obs::MetricsRegistry& reg,
                           obs::Tracer* tracer = nullptr);

  const ControlPlaneStats& stats() const noexcept { return stats_; }
  /// Deferred applies that failed at the switch (satellite of the fault
  /// model: previously silently discarded).
  std::uint64_t asyncApplyFailures() const noexcept {
    return stats_.asyncApplyFailures;
  }

  /// Total modelled switch-side installation latency accumulated so far.
  net::SimTime modeledInstallTime() const noexcept { return modeledInstallTime_; }

  /// Resets the modelled-latency accumulator (benches call this around each
  /// measured reconfiguration).
  void resetModeledInstallTime() noexcept { modeledInstallTime_ = 0; }

  net::Network& network() noexcept { return network_; }

 private:
  struct Pending {
    FlowMod mod;
    /// Batch mode: the mods after `mod` travelling in the same message
    /// (same switch, same xid). Empty for a plain single-mod send.
    std::vector<FlowMod> rest;
    int attempts = 1;          // transmission attempts so far
    net::SimTime timeout = 0;  // current RTO
    bool resolved = false;
    bool ok = false;
    obs::SpanId span = obs::kNoSpan;  // open trace span, closed on resolve
  };
  struct Barrier {
    net::NodeId switchNode = net::kInvalidNode;
    std::set<std::uint64_t> waitingOn;
    BarrierCallback callback;
    bool ok = true;
  };

  bool applyNow(const FlowMod& mod);
  /// One switch's share of a flow-stats read, without counting a request
  /// (requestFlowStats and the batched sweep count differently).
  FlowStatsReply readFlowStats(net::NodeId switchNode);
  /// At-least-once apply: re-delivery of an already-applied mod succeeds
  /// (add of an identical entry, delete of an absent entry).
  bool applyIdempotent(const FlowMod& mod);
  /// One switch's share of a batch: a single message / fault-draw /
  /// ack-retry unit. Mods are in send order.
  std::size_t sendBatchToSwitch(net::NodeId sw, std::vector<FlowMod> mods);
  /// Counts a mod in the sent/add/modify/delete stats.
  void countSent(const FlowMod& mod);
  /// One transmission attempt of a pending mod; arms the retry timer.
  void transmitAttempt(std::uint64_t xid, bool isRetransmit);
  /// Returns the absolute delivery time of the scheduled attempt.
  net::SimTime scheduleDelivery(std::uint64_t xid, const Pending& p,
                                bool chained);
  void deliver(std::uint64_t xid, const FlowMod& mod);
  /// Batch delivery: applies every mod of the message, acks once.
  void deliverBatch(std::uint64_t xid, const std::vector<FlowMod>& mods);
  /// Arms the RTO to fire `timeout` after `basis` — the expected delivery
  /// time of the attempt, so FIFO queueing delay is not mistaken for loss.
  void armRetryTimer(std::uint64_t xid, net::SimTime basis);
  void resolve(std::uint64_t xid, bool ok);

  net::Network& network_;
  net::SimTime flowModLatency_;
  net::SimTime modeledInstallTime_ = 0;
  bool async_ = false;
  bool batching_ = false;
  /// Completion time of the last scheduled async mod, so installs on the
  /// same channel never reorder even when sends burst.
  net::SimTime lastScheduled_ = 0;
  bool muted_ = false;
  ControlPlaneStats stats_;

  ControlFaultModel faults_;
  RetryPolicy retry_;
  util::Rng rng_{0x5DC0DE5ULL};
  std::unordered_set<net::NodeId> disconnected_;
  std::unordered_map<net::NodeId, ControllerRole> roles_;
  std::uint64_t nextXid_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::unordered_map<net::NodeId, std::set<std::uint64_t>> outstanding_;
  std::map<std::uint64_t, Barrier> barriers_;

  obs::Counter* obsModsSent_ = nullptr;
  obs::Counter* obsModsAcked_ = nullptr;
  obs::Counter* obsModsDropped_ = nullptr;
  obs::Counter* obsModsRetried_ = nullptr;
  obs::Counter* obsModsAbandoned_ = nullptr;
  obs::Counter* obsBarrierRequests_ = nullptr;
  obs::Counter* obsFlowStatsRequests_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace pleroma::openflow
