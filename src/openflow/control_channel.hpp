// The control network between one controller and the switches of its
// partition.
//
// Two modes:
//  * synchronous (default): flow-mods are applied to the switch TCAMs
//    immediately; the per-mod latency is only *accounted* (the modelled
//    reconfiguration delay that Fig 7f reports). The controller processes
//    requests sequentially (Sec 2), so ordering is trivially consistent.
//  * asynchronous: each flow-mod is applied `flowModLatency` of simulated
//    time after it is sent, in send order. Events in flight during a
//    reconfiguration then observe partially updated flow state — the
//    transient the paper's sequential-processing rule bounds but cannot
//    eliminate. Used by the activation-delay bench and consistency tests.
#pragma once

#include <cstdint>

#include "net/network.hpp"
#include "openflow/messages.hpp"

namespace pleroma::openflow {

class ControlChannel {
 public:
  /// `flowModLatency` models the switch-side installation cost of one
  /// flow-mod (dominated by TCAM write; ~1 ms on 2014 hardware).
  explicit ControlChannel(net::Network& network,
                          net::SimTime flowModLatency = net::kMillisecond)
      : network_(network), flowModLatency_(flowModLatency) {}

  /// Switches to asynchronous application: mods apply `flowModLatency`
  /// after send, under the network's simulator clock.
  void enableAsyncInstall() { async_ = true; }
  bool asyncInstall() const noexcept { return async_; }

  /// Applies (sync) or schedules (async) a flow-mod. Synchronous mode
  /// returns false when an add is rejected (TCAM full) or a modify/delete
  /// targets a missing entry; asynchronous mode is fire-and-forget and
  /// always returns true (failures surface in the table statistics).
  bool send(const FlowMod& mod);

  /// Controller-initiated transmission out of a specific switch port.
  void sendPacketOut(const PacketOut& out);

  /// Reads the switch's current flow entries — Algorithm 1's
  /// getCurrentFlowsFromSwitch. In async mode this is the *actual* switch
  /// state, which may lag the controller's mirror.
  const net::FlowTable& flowsOf(net::NodeId switchNode) const {
    return network_.flowTable(switchNode);
  }

  const ControlPlaneStats& stats() const noexcept { return stats_; }

  /// Total modelled switch-side installation latency accumulated so far.
  net::SimTime modeledInstallTime() const noexcept { return modeledInstallTime_; }

  /// Resets the modelled-latency accumulator (benches call this around each
  /// measured reconfiguration).
  void resetModeledInstallTime() noexcept { modeledInstallTime_ = 0; }

  net::Network& network() noexcept { return network_; }

 private:
  bool applyNow(const FlowMod& mod);

  net::Network& network_;
  net::SimTime flowModLatency_;
  net::SimTime modeledInstallTime_ = 0;
  bool async_ = false;
  /// Completion time of the last scheduled async mod, so installs on the
  /// same channel never reorder even when sends burst.
  net::SimTime lastScheduled_ = 0;
  ControlPlaneStats stats_;
};

}  // namespace pleroma::openflow
