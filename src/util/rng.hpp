// Deterministic pseudo-random utilities used across the PLEROMA
// reproduction: a xoshiro256** engine, bounded integer / real sampling, and
// a Zipf sampler for the hotspot-popularity workloads of the paper (Sec 6.1).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace pleroma::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm).
/// Deterministic given a seed, fast, and good enough statistically for
/// workload generation; satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  /// Re-initialises the state from a 64-bit seed via splitmix64 so that
  /// nearby seeds give unrelated streams.
  void reseed(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniformReal() noexcept;

  /// Uniform double in [lo, hi).
  double uniformReal(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniformReal() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Samples ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^alpha.
/// Used for the paper's zipfian interest-popularity model: rank 0 is the
/// most popular hotspot. Precomputes the CDF once; sampling is a binary
/// search (O(log n)).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  std::size_t sample(Rng& rng) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }
  double alpha() const noexcept { return alpha_; }

 private:
  std::vector<double> cdf_;
  double alpha_ = 1.0;
};

}  // namespace pleroma::util
