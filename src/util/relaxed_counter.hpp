// Counter types for statistics that may be bumped from worker threads
// during parallel run execution (DESIGN.md §10). Two flavours, matching the
// two sharing regimes the sharding invariant produces:
//
//  * RelaxedCounter — multi-writer. Distinct workers may increment the same
//    counter concurrently (e.g. two switches on different shards both bump
//    Network-wide `packetsForwarded`). Uses fetch_add(relaxed): atomicity
//    matters, ordering does not — readers only consume totals after the
//    pool barrier, which publishes with acquire/release.
//  * ShardedCounter — single-writer. Counters owned by per-node state that
//    the sharding invariant assigns to exactly one worker per run (e.g.
//    FlowTable stats). A relaxed load+store increment is data-race-free
//    under that invariant and avoids the lock-prefixed RMW a fetch_add
//    compiles to — which keeps single-thread FlowTable::lookup at its
//    pre-parallel cost (guarded by BM_FlowTableLookup in perf_check).
//
// Both are copyable (snapshot semantics) and convert implicitly to
// std::uint64_t so existing aggregate-struct consumers keep compiling.
#pragma once

#include <atomic>
#include <cstdint>

namespace pleroma::util {

/// Multi-writer statistic counter; see file comment.
class RelaxedCounter {
 public:
  constexpr RelaxedCounter(std::uint64_t v = 0) noexcept : v_(v) {}
  RelaxedCounter(const RelaxedCounter& o) noexcept
      : v_(o.v_.load(std::memory_order_relaxed)) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) noexcept {
    v_.store(o.v_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  operator std::uint64_t() const noexcept { return value(); }  // NOLINT

  RelaxedCounter& operator++() noexcept {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(std::uint64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> v_;
};

/// Single-writer statistic counter; see file comment. The increment is a
/// relaxed load + store, NOT an atomic RMW — callers must guarantee one
/// writer at a time (the per-node sharding invariant does).
class ShardedCounter {
 public:
  constexpr ShardedCounter(std::uint64_t v = 0) noexcept : v_(v) {}
  ShardedCounter(const ShardedCounter& o) noexcept
      : v_(o.v_.load(std::memory_order_relaxed)) {}
  ShardedCounter& operator=(const ShardedCounter& o) noexcept {
    v_.store(o.v_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }
  ShardedCounter& operator=(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  operator std::uint64_t() const noexcept { return value(); }  // NOLINT

  ShardedCounter& operator++() noexcept {
    v_.store(v_.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
    return *this;
  }
  ShardedCounter& operator+=(std::uint64_t d) noexcept {
    v_.store(v_.load(std::memory_order_relaxed) + d,
             std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> v_;
};

}  // namespace pleroma::util
