#include "util/stats.hpp"

#include <cmath>
#include <numeric>

namespace pleroma::util {

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  const double newMean = mean_ + delta * static_cast<double>(other.n_) / total;
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / total;
  mean_ = newMean;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Samples::mean() const noexcept {
  if (values_.empty()) return 0.0;
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double Samples::percentile(double q) const {
  if (values_.empty()) return 0.0;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted[idx];
}

}  // namespace pleroma::util
