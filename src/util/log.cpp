#include "util/log.hpp"

#include <cstdio>
#include <string>

namespace pleroma::util {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* levelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) noexcept { g_level = level; }
LogLevel logLevel() noexcept { return g_level; }

void logLine(LogLevel level, std::string_view message) {
  if (level < g_level) return;
  std::string line = std::string("[") + levelName(level) + "] ";
  line.append(message);
  line.push_back('\n');
  std::fputs(line.c_str(), stderr);
}

}  // namespace pleroma::util
