#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pleroma::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // A state of all zeros is the one invalid state; splitmix64 output makes
  // this astronomically unlikely, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::uniformInt(std::uint64_t lo, std::uint64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t range = hi - lo;
  if (range == max()) return (*this)();
  // Rejection sampling (Lemire-style threshold) to avoid modulo bias.
  const std::uint64_t span = range + 1;
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return lo + v % span;
}

double Rng::uniformReal() noexcept {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniformReal(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniformReal();
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : alpha_(alpha) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf_[k] = acc;
  }
  for (auto& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against FP rounding at the tail
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniformReal();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace pleroma::util
