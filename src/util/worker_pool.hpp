// A persistent pool of worker threads for executing one parallel region at
// a time (fork/join). Built for the simulator's parallel run execution
// (DESIGN.md §10), where regions are short and frequent:
//
//  * Workers are spawned once and persist; a region costs two atomic
//    notifications, not thread creation.
//  * The calling thread participates as worker 0, so a pool of N threads
//    spawns only N-1 background workers and `threads == 1` degenerates to
//    an inline call with no synchronisation at all.
//  * Idle workers block in std::atomic::wait (futex), not a spin loop —
//    the pool must not burn cores it is supposed to be freeing, and must
//    behave on machines with fewer cores than workers.
//
// Memory ordering contract: everything written by the caller before run()
// happens-before every job invocation (release bump of the epoch, acquire
// load in the worker), and everything written inside a job happens-before
// run() returning (release decrement of the pending count, acquire load in
// the caller). Regions never overlap — run() is not reentrant and must
// always be called from the same (owning) thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace pleroma::util {

/// How node shards are placed onto workers (DESIGN.md §13). Placement only
/// decides which worker executes a shard — side effects are replayed in
/// canonical order either way, so any policy is determinism-safe.
enum class ShardPlacement {
  /// Historical `key % workers` striping: adjacent node ids land on
  /// different workers, so every worker touches FlowTables from all over
  /// the topology.
  kStrided,
  /// Contiguous rank ranges per node class: each worker owns a block of
  /// neighbouring switches (and separately of hosts), keeping its working
  /// set of FlowTables resident in its private cache across runs.
  kBlock,
};

class WorkerPool {
 public:
  /// A pool of `threads` workers total, including the calling thread;
  /// values < 1 are clamped to 1 (inline execution, no background threads).
  /// With `pinThreads` set, worker i (including the caller, as worker 0) is
  /// pinned to core i mod hardware_concurrency — best effort, Linux only,
  /// failures are ignored. Pinning the caller mutates the calling thread's
  /// affinity, which is why it is opt-in.
  explicit WorkerPool(int threads, bool pinThreads = false);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int threads() const noexcept { return threads_; }
  bool pinned() const noexcept { return pinThreads_; }

  /// Runs `job(worker)` once per worker (0 <= worker < threads()), the
  /// caller executing worker 0, and returns when all invocations finished.
  void run(const std::function<void(int)>& job);

  /// Runs `fn(i)` for every i in [0, n), distributing indices dynamically
  /// across the workers. Iteration order is unspecified; results must be
  /// written to per-index storage for determinism.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void workerLoop(int index);

  int threads_;
  bool pinThreads_;
  std::vector<std::thread> workers_;
  /// Region generation counter: bumped (release) to start a region, waited
  /// on by idle workers. Odd trick not needed — any change wakes them.
  std::atomic<std::uint64_t> epoch_{0};
  /// Background workers still inside the current region's job.
  std::atomic<int> pending_{0};
  std::atomic<bool> stop_{false};
  const std::function<void(int)>* job_ = nullptr;
};

}  // namespace pleroma::util
