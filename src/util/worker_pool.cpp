#include "util/worker_pool.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pleroma::util {

namespace {

/// Best-effort pin of the current thread to `core` (mod the online core
/// count). Placement is a performance hint only; failures (restricted
/// cpusets, exotic platforms) are silently ignored.
void pinCurrentThread(int core) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core) % hw, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

}  // namespace

WorkerPool::WorkerPool(int threads, bool pinThreads)
    : threads_(threads < 1 ? 1 : threads), pinThreads_(pinThreads) {
  if (pinThreads_) pinCurrentThread(0);  // the caller participates as worker 0
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] {
      if (pinThreads_) pinCurrentThread(i);
      workerLoop(i);
    });
  }
}

WorkerPool::~WorkerPool() {
  stop_.store(true, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::run(const std::function<void(int)>& job) {
  if (threads_ == 1) {
    job(0);
    return;
  }
  job_ = &job;
  pending_.store(threads_ - 1, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  job(0);
  // Wait until every background worker has left the job; the release
  // decrement + this acquire load publish all job writes to the caller.
  int left = pending_.load(std::memory_order_acquire);
  while (left != 0) {
    pending_.wait(left, std::memory_order_relaxed);
    left = pending_.load(std::memory_order_acquire);
  }
  job_ = nullptr;
}

void WorkerPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  run([&](int) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  });
}

void WorkerPool::workerLoop(int index) {
  // The construction-time epoch, not a fresh load: a region may already
  // have been opened between this thread's spawn and its first
  // instruction, and loading here would skip that region's job.
  std::uint64_t seen = 0;
  for (;;) {
    epoch_.wait(seen, std::memory_order_relaxed);
    const std::uint64_t now = epoch_.load(std::memory_order_acquire);
    if (now == seen) continue;  // spurious wake
    seen = now;
    if (stop_.load(std::memory_order_relaxed)) return;
    (*job_)(index);
    if (pending_.fetch_sub(1, std::memory_order_release) == 1) {
      pending_.notify_one();
    }
  }
}

}  // namespace pleroma::util
