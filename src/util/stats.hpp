// Small statistics helpers used by the benchmark harnesses: streaming
// mean/variance (Welford), reservoir-free percentile estimation over stored
// samples, and simple named counters.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pleroma::util {

/// Streaming accumulator: count, mean, variance, min, max (Welford's
/// online algorithm; numerically stable).
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  void merge(const RunningStat& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples and answers percentile queries. Intended for the modest
/// sample counts of the reproduction harnesses (<= a few million).
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  std::size_t count() const noexcept { return values_.size(); }
  double mean() const noexcept;
  /// q in [0, 1]; nearest-rank percentile. Returns 0 for an empty set.
  double percentile(double q) const;
  void clear() noexcept { values_.clear(); }

 private:
  std::vector<double> values_;
};

/// Named monotonically increasing counters (control messages, flow-mods,
/// false positives, ...). Cheap and deterministic; no atomics needed in the
/// single-threaded simulator.
class Counters {
 public:
  void inc(const std::string& name, std::uint64_t by = 1) { map_[name] += by; }
  std::uint64_t get(const std::string& name) const {
    const auto it = map_.find(name);
    return it == map_.end() ? 0 : it->second;
  }
  const std::map<std::string, std::uint64_t>& all() const noexcept { return map_; }
  void clear() noexcept { map_.clear(); }

 private:
  std::map<std::string, std::uint64_t> map_;
};

}  // namespace pleroma::util
