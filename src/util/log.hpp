// Minimal leveled logger. The simulator and controller are single-threaded;
// logging exists for the examples and for debugging test failures, and is
// silent at the default level so benches stay clean.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace pleroma::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void setLogLevel(LogLevel level) noexcept;
LogLevel logLevel() noexcept;

/// Writes one line "[level] message" to stderr if enabled.
void logLine(LogLevel level, std::string_view message);

/// printf-style formatting (libstdc++ 12 has no <format> yet).
template <typename... Args>
void logf(LogLevel level, const char* fmt, Args&&... args) {
  if (level < logLevel()) return;
  if constexpr (sizeof...(Args) == 0) {
    logLine(level, fmt);
  } else {
    char buf[1024];
    std::snprintf(buf, sizeof buf, fmt, args...);
    logLine(level, buf);
  }
}

#define PLEROMA_LOG_DEBUG(...) \
  ::pleroma::util::logf(::pleroma::util::LogLevel::kDebug, __VA_ARGS__)
#define PLEROMA_LOG_INFO(...) \
  ::pleroma::util::logf(::pleroma::util::LogLevel::kInfo, __VA_ARGS__)
#define PLEROMA_LOG_WARN(...) \
  ::pleroma::util::logf(::pleroma::util::LogLevel::kWarn, __VA_ARGS__)
#define PLEROMA_LOG_ERROR(...) \
  ::pleroma::util::logf(::pleroma::util::LogLevel::kError, __VA_ARGS__)

}  // namespace pleroma::util
