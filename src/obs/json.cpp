#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace pleroma::obs {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonValue::set(const std::string& key, JsonValue v) {
  Object& obj = members();
  for (auto& [k, existing] : obj) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj.emplace_back(key, std::move(v));
}

const JsonValue* JsonValue::get(const std::string& key) const noexcept {
  if (!isObject()) return nullptr;
  for (const auto& [k, v] : members()) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void appendNumber(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no inf/nan; null is the least-wrong encoding
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  // Trim to the shortest representation that round-trips.
  for (const int prec : {6, 9, 12, 15}) {
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.*g", prec, d);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == d) {
      out += probe;
      return;
    }
  }
  out += buf;
}

void indentTo(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void JsonValue::dumpTo(std::string& out, int indent, int depth) const {
  if (isNull()) {
    out += "null";
  } else if (isBool()) {
    out += asBool() ? "true" : "false";
  } else if (isInt()) {
    out += std::to_string(std::get<std::int64_t>(value_));
  } else if (isNumber()) {
    appendNumber(out, std::get<double>(value_));
  } else if (isString()) {
    out += '"';
    out += jsonEscape(asString());
    out += '"';
  } else if (isArray()) {
    const Array& a = items();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i) out += ',';
      indentTo(out, indent, depth + 1);
      a[i].dumpTo(out, indent, depth + 1);
    }
    indentTo(out, indent, depth);
    out += ']';
  } else {
    const Object& o = members();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (i) out += ',';
      indentTo(out, indent, depth + 1);
      out += '"';
      out += jsonEscape(o[i].first);
      out += "\":";
      if (indent >= 0) out += ' ';
      o[i].second.dumpTo(out, indent, depth + 1);
    }
    indentTo(out, indent, depth);
    out += '}';
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

// ---- parser ---------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    std::optional<JsonValue> v = value();
    if (v) {
      skipWs();
      if (pos_ != text_.size()) {
        fail("trailing characters after document");
        v.reset();
      }
    }
    if (!v && error != nullptr) *error = error_;
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> value() {
    skipWs();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      std::optional<std::string> s = string();
      if (!s) return std::nullopt;
      return JsonValue(std::move(*s));
    }
    if (literal("true")) return JsonValue(true);
    if (literal("false")) return JsonValue(false);
    if (literal("null")) return JsonValue(nullptr);
    return number();
  }

  std::optional<JsonValue> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty()) {
      fail("expected a value");
      return std::nullopt;
    }
    if (tok.find_first_of(".eE") == std::string_view::npos) {
      std::int64_t i = 0;
      const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (ec == std::errc() && p == tok.data() + tok.size()) return JsonValue(i);
    }
    double d = 0.0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || p != tok.data() + tok.size()) {
      fail("malformed number");
      return std::nullopt;
    }
    return JsonValue(d);
  }

  std::optional<std::string> string() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("malformed \\u escape");
              return std::nullopt;
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs pass through as two
          // 3-byte sequences, which is sufficient for our own output).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> array() {
    consume('[');
    JsonValue out = JsonValue::array();
    skipWs();
    if (consume(']')) return out;
    while (true) {
      std::optional<JsonValue> v = value();
      if (!v) return std::nullopt;
      out.push_back(std::move(*v));
      if (consume(',')) continue;
      if (consume(']')) return out;
      fail("expected ',' or ']'");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> object() {
    consume('{');
    JsonValue out = JsonValue::object();
    skipWs();
    if (consume('}')) return out;
    while (true) {
      skipWs();
      std::optional<std::string> key = string();
      if (!key) return std::nullopt;
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      std::optional<JsonValue> v = value();
      if (!v) return std::nullopt;
      out.set(*key, std::move(*v));
      if (consume(',')) continue;
      if (consume('}')) return out;
      fail("expected ',' or '}'");
      return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error) {
  return Parser(text).run(error);
}

}  // namespace pleroma::obs
