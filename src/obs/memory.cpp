#include "obs/memory.hpp"

#include <cstdio>

#include <unistd.h>

namespace pleroma::obs {

MemoryUsage processMemory() noexcept {
  MemoryUsage usage;
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return usage;
  unsigned long long vmPages = 0;
  unsigned long long rssPages = 0;
  if (std::fscanf(f, "%llu %llu", &vmPages, &rssPages) == 2) {
    const long pageSize = ::sysconf(_SC_PAGESIZE);
    const auto page =
        static_cast<std::size_t>(pageSize > 0 ? pageSize : 4096);
    usage.virtualBytes = static_cast<std::size_t>(vmPages) * page;
    usage.residentBytes = static_cast<std::size_t>(rssPages) * page;
  }
  std::fclose(f);
  return usage;
}

}  // namespace pleroma::obs
