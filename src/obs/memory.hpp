// Resident-memory probe for bench report *metadata*. Real RSS depends on
// the allocator, the kernel and page luck, so it is never placed in a
// compared series (those carry deterministic accounted-bytes like
// Controller::flowStateBytes()); benches record it under metadata keys so
// a human can sanity-check the accounted curve against reality.
#pragma once

#include <cstddef>

namespace pleroma::obs {

struct MemoryUsage {
  std::size_t residentBytes = 0;  ///< RSS
  std::size_t virtualBytes = 0;   ///< VSZ
};

/// Snapshot of the current process's memory, from /proc/self/statm.
/// All-zero when the proc file is unavailable (non-Linux, sandbox).
MemoryUsage processMemory() noexcept;

}  // namespace pleroma::obs
