// MetricsRegistry — named counters, gauges, and log-bucketed latency
// histograms for the running system (tentpole of the observability layer).
//
// Design constraints, in order:
//  * Near-zero hot-path cost. A metric handle is a raw pointer resolved
//    once at attach time; an update is one relaxed atomic load (the family
//    enable flag) plus, when enabled, one relaxed RMW. Components that were
//    never attached skip even that via a null-pointer check.
//  * Mergeable. Registries from independent partitions/threads combine
//    exactly (counters add, histograms add bucket-wise), which is what lets
//    multi-controller benches report fleet-wide percentiles.
//  * Disablement is per *family* — the prefix before the first '.' of the
//    metric name ("flow_table.lookups" belongs to family "flow_table") —
//    so a whole subsystem's instrumentation is switched with one flag.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime. Registration is mutex-guarded; updates are lock-free.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/json.hpp"

namespace pleroma::obs {

class MetricsRegistry;

/// Monotonic counter.
class Counter {
 public:
  void inc(std::uint64_t by = 1) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) noexcept : enabled_(enabled) {}
  std::atomic<std::uint64_t> value_{0};
  const std::atomic<bool>* enabled_;
};

/// Last-write-wins instantaneous value (queue depths, ratios, snapshots).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double by) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + by,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) noexcept : enabled_(enabled) {}
  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_;
};

/// Log-bucketed histogram: geometric buckets with kSubBuckets linear
/// sub-buckets per power of two (~12% relative resolution), plus exact
/// count/sum/min/max. Bucket 0 absorbs values < 1.0 (and all non-positive
/// values); percentile queries answer with the bucket upper bound clamped
/// to the observed [min, max].
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;
  static constexpr int kOctaves = 64;
  static constexpr int kBucketCount = 1 + kOctaves * kSubBuckets;

  void record(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  /// 0.0 when empty.
  double min() const noexcept;
  double max() const noexcept;
  /// Nearest-rank percentile estimate, q in [0, 1]; 0.0 when empty.
  double percentile(double q) const;

  std::uint64_t bucketValue(int index) const {
    return buckets_[static_cast<std::size_t>(index)].load(
        std::memory_order_relaxed);
  }

  /// Bucket geometry, exposed for tests: index 0 covers [0, 1); index
  /// 1 + o*kSubBuckets + s covers [2^o * (1 + s/kSubBuckets),
  /// 2^o * (1 + (s+1)/kSubBuckets)).
  static int bucketIndex(double v) noexcept;
  static double bucketLowerBound(int index) noexcept;
  static double bucketUpperBound(int index) noexcept;

  void merge(const Histogram& other) noexcept;

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>* enabled) noexcept
      : enabled_(enabled) {}
  void reset() noexcept;

  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
  const std::atomic<bool>* enabled_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Gets or creates; names are "family.metric" (family = prefix before
  /// the first '.', or the whole name when there is none).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  void setFamilyEnabled(const std::string& family, bool enabled);
  void setAllFamiliesEnabled(bool enabled);
  bool familyEnabled(const std::string& family) const;
  static std::string familyOf(const std::string& name);

  /// The family's enable flag itself (created on demand, stable for the
  /// registry's lifetime). Hot paths that update several metrics per event
  /// gate the whole block on one relaxed load of this flag instead of
  /// paying the per-metric check on each handle.
  const std::atomic<bool>* familyEnabledFlag(const std::string& family);

  /// Adds every metric of `other` into this registry (creating missing
  /// ones). A name registered as a different metric kind throws.
  void merge(const MetricsRegistry& other);

  /// Zeroes all values; registrations and enable flags are kept.
  void reset();

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, mean, min, max, p50, p90, p99}}}; zero-count metrics included.
  JsonValue toJson() const;
  /// One line per metric, sorted by name.
  std::string toText() const;

 private:
  std::atomic<bool>* familyFlag(const std::string& family);

  mutable std::mutex mu_;  // guards the maps (registration), not the values
  std::map<std::string, std::unique_ptr<std::atomic<bool>>> families_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace pleroma::obs
