// A minimal JSON document model for the observability layer: a tagged
// value (null / bool / integer / double / string / array / object) with a
// serializer and a strict recursive-descent parser. Objects preserve
// insertion order so exported documents lead with their metadata.
//
// This is deliberately not a general-purpose JSON library: no streaming,
// no comments, no UTF-16 surrogate validation beyond pass-through — just
// enough for BENCH_*.json reports, metric snapshots, and trace export,
// with a parser for the schema-validation tests and tools.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace pleroma::obs {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// Insertion-ordered key/value list; keys are unique (set() replaces).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int v) : value_(static_cast<std::int64_t>(v)) {}
  JsonValue(long v) : value_(static_cast<std::int64_t>(v)) {}
  JsonValue(long long v) : value_(static_cast<std::int64_t>(v)) {}
  JsonValue(unsigned v) : value_(static_cast<std::int64_t>(v)) {}
  JsonValue(unsigned long v) : value_(static_cast<std::int64_t>(v)) {}
  JsonValue(unsigned long long v) : value_(static_cast<std::int64_t>(v)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}

  static JsonValue array() { return JsonValue(Array{}); }
  static JsonValue object() { return JsonValue(Object{}); }

  bool isNull() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  bool isBool() const noexcept { return std::holds_alternative<bool>(value_); }
  bool isInt() const noexcept { return std::holds_alternative<std::int64_t>(value_); }
  bool isNumber() const noexcept {
    return isInt() || std::holds_alternative<double>(value_);
  }
  bool isString() const noexcept { return std::holds_alternative<std::string>(value_); }
  bool isArray() const noexcept { return std::holds_alternative<Array>(value_); }
  bool isObject() const noexcept { return std::holds_alternative<Object>(value_); }

  bool asBool() const { return std::get<bool>(value_); }
  std::int64_t asInt() const {
    return isInt() ? std::get<std::int64_t>(value_)
                   : static_cast<std::int64_t>(std::get<double>(value_));
  }
  double asDouble() const {
    return isInt() ? static_cast<double>(std::get<std::int64_t>(value_))
                   : std::get<double>(value_);
  }
  const std::string& asString() const { return std::get<std::string>(value_); }

  Array& items() { return std::get<Array>(value_); }
  const Array& items() const { return std::get<Array>(value_); }
  void push_back(JsonValue v) { items().push_back(std::move(v)); }

  Object& members() { return std::get<Object>(value_); }
  const Object& members() const { return std::get<Object>(value_); }

  /// Sets (or replaces) an object member.
  void set(const std::string& key, JsonValue v);
  /// Member lookup; nullptr when absent or when this is not an object.
  const JsonValue* get(const std::string& key) const noexcept;
  bool contains(const std::string& key) const noexcept { return get(key) != nullptr; }

  /// Serializes; indent < 0 yields compact one-line output.
  std::string dump(int indent = -1) const;

  /// Strict parse of a complete JSON document. On failure returns nullopt
  /// and (when given) describes the problem in *error.
  static std::optional<JsonValue> parse(std::string_view text,
                                        std::string* error = nullptr);

 private:
  void dumpTo(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      value_;
};

/// JSON string escaping (shared with the JSONL trace export).
std::string jsonEscape(std::string_view s);

}  // namespace pleroma::obs
