// Tracer — follows individual events hop-by-hop through the data plane
// (publish → per-switch TCAM match → host delivery) and controller
// operations through the control plane (advertise/subscribe → flow mods →
// acks/retries/abandons).
//
// A trace is a tree of records: every record carries its own span id and
// its parent's, plus the trace id that groups one logical flow (the event
// id for data-plane traces, a fresh id per controller op). Data-plane
// linkage rides inside net::Packet::traceSpan, so each forwarded copy
// parents its next hop and multicast fan-out forms a branching tree.
//
// Cost model: a disabled tracer is one predictable branch per hook;
// callers gate richer argument capture on enabled(). Records live in a
// bounded deque (oldest evicted first) and export as JSONL (one object
// per record) or as the Chrome trace_event format consumed by
// chrome://tracing and Perfetto.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace pleroma::obs {

using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

struct TraceRecord {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  /// Groups the records of one logical flow (event id / controller op id).
  std::uint64_t traceId = 0;
  std::string name;
  std::int64_t start = 0;  ///< virtual time, ns
  std::int64_t end = 0;    ///< == start for instant records
  std::int32_t node = -1;  ///< NodeId for data-plane records, -1 otherwise
  std::vector<std::pair<std::string, std::string>> args;

  bool isInstant() const noexcept { return end == start; }
};

class Tracer {
 public:
  bool enabled() const noexcept { return enabled_; }
  void setEnabled(bool on) noexcept { enabled_ = on; }

  /// Caps the record buffer; the oldest records are evicted beyond it.
  void setCapacity(std::size_t maxRecords);

  /// Fresh trace id for a new logical flow (controller ops).
  std::uint64_t newTraceId() noexcept { return nextTraceId_++; }

  /// Opens a span; returns kNoSpan when disabled (all other calls accept
  /// kNoSpan and no-op on it).
  SpanId begin(std::uint64_t traceId, SpanId parent, std::string name,
               std::int64_t now, std::int32_t node = -1);
  void end(SpanId id, std::int64_t now);
  /// Zero-duration record.
  SpanId instant(std::uint64_t traceId, SpanId parent, std::string name,
                 std::int64_t now, std::int32_t node = -1);
  void annotate(SpanId id, std::string key, std::string value);

  /// Ambient span for layers that cannot thread one through (the control
  /// channel parents its flow-mod records here during a controller op).
  void pushContext(SpanId id) { contextStack_.push_back(id); }
  void popContext() {
    if (!contextStack_.empty()) contextStack_.pop_back();
  }
  SpanId currentContext() const noexcept {
    return contextStack_.empty() ? kNoSpan : contextStack_.back();
  }

  /// Trace id of an open-or-retained record; 0 when unknown/evicted.
  std::uint64_t traceIdOf(SpanId id) const;

  const std::deque<TraceRecord>& records() const noexcept { return records_; }
  std::uint64_t droppedRecords() const noexcept { return dropped_; }
  void clear();

  /// One JSON object per line.
  std::string toJsonl() const;
  /// Chrome trace_event JSON array ("X" complete events and "i" instants,
  /// ts/dur in microseconds, tid = node).
  std::string toChromeTrace() const;
  bool writeJsonl(const std::string& path) const;
  bool writeChromeTrace(const std::string& path) const;

 private:
  TraceRecord* find(SpanId id);
  const TraceRecord* find(SpanId id) const;
  TraceRecord& push(TraceRecord rec);

  bool enabled_ = false;
  std::size_t capacity_ = 1 << 20;
  SpanId nextId_ = 1;
  std::uint64_t nextTraceId_ = 1;
  std::uint64_t dropped_ = 0;
  std::deque<TraceRecord> records_;
  /// id → deque position + evictedCount_ (positions shift on eviction).
  std::unordered_map<SpanId, std::size_t> index_;
  std::size_t evictedCount_ = 0;
  std::vector<SpanId> contextStack_;
};

}  // namespace pleroma::obs
