#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>

namespace pleroma::obs {

void Tracer::setCapacity(std::size_t maxRecords) {
  capacity_ = maxRecords == 0 ? 1 : maxRecords;
  while (records_.size() > capacity_) {
    index_.erase(records_.front().id);
    records_.pop_front();
    ++evictedCount_;
    ++dropped_;
  }
}

TraceRecord* Tracer::find(SpanId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  return &records_[it->second - evictedCount_];
}

const TraceRecord* Tracer::find(SpanId id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  return &records_[it->second - evictedCount_];
}

TraceRecord& Tracer::push(TraceRecord rec) {
  if (records_.size() == capacity_) {
    index_.erase(records_.front().id);
    records_.pop_front();
    ++evictedCount_;
    ++dropped_;
  }
  index_.emplace(rec.id, records_.size() + evictedCount_);
  records_.push_back(std::move(rec));
  return records_.back();
}

SpanId Tracer::begin(std::uint64_t traceId, SpanId parent, std::string name,
                     std::int64_t now, std::int32_t node) {
  if (!enabled_) return kNoSpan;
  TraceRecord rec;
  rec.id = nextId_++;
  rec.parent = parent;
  rec.traceId = traceId;
  rec.name = std::move(name);
  rec.start = now;
  rec.end = now;
  rec.node = node;
  return push(std::move(rec)).id;
}

void Tracer::end(SpanId id, std::int64_t now) {
  if (id == kNoSpan) return;
  if (TraceRecord* rec = find(id)) rec->end = now;
}

SpanId Tracer::instant(std::uint64_t traceId, SpanId parent, std::string name,
                       std::int64_t now, std::int32_t node) {
  return begin(traceId, parent, std::move(name), now, node);
}

void Tracer::annotate(SpanId id, std::string key, std::string value) {
  if (id == kNoSpan) return;
  if (TraceRecord* rec = find(id)) {
    rec->args.emplace_back(std::move(key), std::move(value));
  }
}

std::uint64_t Tracer::traceIdOf(SpanId id) const {
  const TraceRecord* rec = find(id);
  return rec == nullptr ? 0 : rec->traceId;
}

void Tracer::clear() {
  records_.clear();
  index_.clear();
  evictedCount_ = 0;
  dropped_ = 0;
  contextStack_.clear();
}

std::string Tracer::toJsonl() const {
  std::string out;
  for (const TraceRecord& rec : records_) {
    JsonValue obj = JsonValue::object();
    obj.set("id", rec.id);
    obj.set("parent", rec.parent);
    obj.set("trace", rec.traceId);
    obj.set("name", rec.name);
    obj.set("start", rec.start);
    obj.set("end", rec.end);
    obj.set("node", rec.node);
    if (!rec.args.empty()) {
      JsonValue args = JsonValue::object();
      for (const auto& [k, v] : rec.args) args.set(k, v);
      obj.set("args", std::move(args));
    }
    out += obj.dump();
    out += '\n';
  }
  return out;
}

std::string Tracer::toChromeTrace() const {
  JsonValue events = JsonValue::array();
  for (const TraceRecord& rec : records_) {
    JsonValue ev = JsonValue::object();
    ev.set("name", rec.name);
    ev.set("cat", "pleroma");
    ev.set("pid", rec.traceId);
    ev.set("tid", rec.node);
    // trace_event timestamps are microseconds; keep sub-µs as fractions.
    ev.set("ts", static_cast<double>(rec.start) / 1000.0);
    if (rec.isInstant()) {
      ev.set("ph", "i");
      ev.set("s", "t");
    } else {
      ev.set("ph", "X");
      ev.set("dur", static_cast<double>(rec.end - rec.start) / 1000.0);
    }
    JsonValue args = JsonValue::object();
    args.set("span", rec.id);
    args.set("parent", rec.parent);
    for (const auto& [k, v] : rec.args) args.set(k, v);
    ev.set("args", std::move(args));
    events.push_back(std::move(ev));
  }
  JsonValue doc = JsonValue::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ns");
  return doc.dump(2);
}

namespace {
bool writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  return out.good();
}
}  // namespace

bool Tracer::writeJsonl(const std::string& path) const {
  return writeFile(path, toJsonl());
}

bool Tracer::writeChromeTrace(const std::string& path) const {
  return writeFile(path, toChromeTrace());
}

}  // namespace pleroma::obs
