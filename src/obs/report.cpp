#include "obs/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"

#ifndef PLEROMA_GIT_DESCRIBE
#define PLEROMA_GIT_DESCRIBE "unknown"
#endif

namespace pleroma::obs {

Cell::Cell(double v) : json(v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  text = buf;
}

BenchReporter::BenchReporter(std::string name) : name_(std::move(name)) {
  metadata_.set("git_describe", PLEROMA_GIT_DESCRIBE);
  // Parallelism provenance: benches running a WorkerPool overwrite
  // "threads"; "hardware_concurrency" records what the machine offered so
  // scaling numbers can be judged from the artifact alone.
  metadata_.set("threads", 1);
  metadata_.set("hardware_concurrency",
                static_cast<long long>(std::thread::hardware_concurrency()));
}

BenchReporter::~BenchReporter() {
  if (!finished_) finish();
}

void BenchReporter::meta(const std::string& key, JsonValue v) {
  metadata_.set(key, std::move(v));
}

void BenchReporter::beginSeries(std::string name, std::vector<Column> columns) {
  Series s;
  s.name = std::move(name);
  s.columns = std::move(columns);
  series_.push_back(std::move(s));
}

void BenchReporter::row(std::vector<Cell> cells) {
  if (series_.empty()) {
    throw std::logic_error("BenchReporter::row before beginSeries");
  }
  Series& s = series_.back();
  if (cells.size() != s.columns.size()) {
    throw std::logic_error("BenchReporter::row: " + std::to_string(cells.size()) +
                           " cells for " + std::to_string(s.columns.size()) +
                           " columns in series '" + s.name + "'");
  }
  s.rows.push_back(std::move(cells));
}

void BenchReporter::attachMetrics(const MetricsRegistry& reg) {
  metrics_ = reg.toJson();
}

JsonValue BenchReporter::toJson() const {
  JsonValue doc = JsonValue::object();
  doc.set("schema", kBenchSchema);
  doc.set("name", name_);
  doc.set("metadata", metadata_);
  JsonValue series = JsonValue::array();
  for (const Series& s : series_) {
    JsonValue entry = JsonValue::object();
    entry.set("name", s.name);
    JsonValue columns = JsonValue::array();
    for (const Column& c : s.columns) {
      JsonValue col = JsonValue::object();
      col.set("name", c.name);
      col.set("unit", c.unit);
      columns.push_back(std::move(col));
    }
    entry.set("columns", std::move(columns));
    JsonValue rows = JsonValue::array();
    for (const std::vector<Cell>& r : s.rows) {
      JsonValue row = JsonValue::array();
      for (const Cell& cell : r) row.push_back(cell.json);
      rows.push_back(std::move(row));
    }
    entry.set("rows", std::move(rows));
    series.push_back(std::move(entry));
  }
  doc.set("series", std::move(series));
  if (!metrics_.isNull()) doc.set("metrics", metrics_);
  return doc;
}

std::string BenchReporter::outputPath() const {
  const char* dir = std::getenv("PLEROMA_BENCH_DIR");
  std::string path = (dir != nullptr && *dir != '\0') ? dir : ".";
  if (path.back() != '/') path += '/';
  return path + "BENCH_" + name_ + ".json";
}

bool BenchReporter::finish() {
  if (finished_) return true;
  finished_ = true;
  const std::string path = outputPath();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "BenchReporter: cannot open %s\n", path.c_str());
    return false;
  }
  const std::string text = toJson().dump(2);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out << '\n';
  return out.good();
}

bool BenchReporter::validate(const JsonValue& doc, std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (!doc.isObject()) return fail("document is not an object");
  const JsonValue* schema = doc.get("schema");
  if (schema == nullptr || !schema->isString() ||
      schema->asString() != kBenchSchema) {
    return fail(std::string("\"schema\" must be \"") + kBenchSchema + "\"");
  }
  const JsonValue* name = doc.get("name");
  if (name == nullptr || !name->isString() || name->asString().empty()) {
    return fail("\"name\" must be a non-empty string");
  }
  const JsonValue* meta = doc.get("metadata");
  if (meta == nullptr || !meta->isObject()) {
    return fail("\"metadata\" must be an object");
  }
  for (const char* key : {"seed", "topology", "workload", "git_describe",
                          "threads", "hardware_concurrency"}) {
    const JsonValue* v = meta->get(key);
    if (v == nullptr || v->isNull()) {
      return fail(std::string("metadata is missing \"") + key + "\"");
    }
  }
  const JsonValue* series = doc.get("series");
  if (series == nullptr || !series->isArray()) {
    return fail("\"series\" must be an array");
  }
  for (const JsonValue& s : series->items()) {
    if (!s.isObject()) return fail("series entry is not an object");
    const JsonValue* sname = s.get("name");
    if (sname == nullptr || !sname->isString()) {
      return fail("series entry is missing \"name\"");
    }
    const JsonValue* columns = s.get("columns");
    if (columns == nullptr || !columns->isArray() || columns->items().empty()) {
      return fail("series \"" + sname->asString() +
                  "\": \"columns\" must be a non-empty array");
    }
    for (const JsonValue& c : columns->items()) {
      if (!c.isObject() || c.get("name") == nullptr ||
          !c.get("name")->isString() || c.get("unit") == nullptr ||
          !c.get("unit")->isString()) {
        return fail("series \"" + sname->asString() +
                    "\": every column needs string \"name\" and \"unit\"");
      }
    }
    const JsonValue* rows = s.get("rows");
    if (rows == nullptr || !rows->isArray()) {
      return fail("series \"" + sname->asString() + "\": \"rows\" must be an array");
    }
    const std::size_t width = columns->items().size();
    for (const JsonValue& r : rows->items()) {
      if (!r.isArray() || r.items().size() != width) {
        return fail("series \"" + sname->asString() +
                    "\": every row must have " + std::to_string(width) +
                    " cells");
      }
    }
  }
  const JsonValue* metrics = doc.get("metrics");
  if (metrics != nullptr && !metrics->isObject()) {
    return fail("\"metrics\" must be an object when present");
  }
  return true;
}

}  // namespace pleroma::obs
