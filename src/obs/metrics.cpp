#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pleroma::obs {

// ---- Histogram ------------------------------------------------------------

int Histogram::bucketIndex(double v) noexcept {
  if (!(v >= 1.0)) return 0;  // negatives and NaN land in bucket 0 too
  // record() sits on the per-delivery hot path, so read the octave and
  // sub-bucket straight out of the IEEE-754 representation instead of
  // calling frexp/ldexp: for v >= 1, v = 2^octave * (1 + f) with octave the
  // unbiased exponent and f the mantissa fraction, so the sub-bucket
  // floor(f * kSubBuckets) is simply the top log2(kSubBuckets) mantissa
  // bits.
  static_assert((kSubBuckets & (kSubBuckets - 1)) == 0,
                "sub-bucket extraction requires a power of two");
  constexpr int kSubBits = std::bit_width(
      static_cast<unsigned>(kSubBuckets) - 1);
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  const int octave = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
  if (octave >= kOctaves) return kBucketCount - 1;  // also +infinity
  const int sub = static_cast<int>((bits >> (52 - kSubBits)) &
                                   (kSubBuckets - 1));
  return 1 + octave * kSubBuckets + sub;
}

double Histogram::bucketLowerBound(int index) noexcept {
  if (index <= 0) return 0.0;
  const int octave = (index - 1) / kSubBuckets;
  const int sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
}

double Histogram::bucketUpperBound(int index) noexcept {
  if (index < 0) return 0.0;
  if (index >= kBucketCount - 1) return std::ldexp(2.0, kOctaves - 1);
  return bucketLowerBound(index + 1);
}

void Histogram::record(double v) noexcept {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  buckets_[static_cast<std::size_t>(bucketIndex(v))].fetch_add(
      1, std::memory_order_relaxed);
  const std::uint64_t before = count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
  if (before == 0) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
    return;
  }
  double m = min_.load(std::memory_order_relaxed);
  while (v < m && !min_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
  m = max_.load(std::memory_order_relaxed);
  while (v > m && !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::percentile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += bucketValue(i);
    if (seen >= target) {
      return std::clamp(bucketUpperBound(i), min(), max());
    }
  }
  return max();
}

void Histogram::merge(const Histogram& other) noexcept {
  const std::uint64_t otherCount = other.count();
  if (otherCount == 0) return;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t v = other.bucketValue(i);
    if (v != 0) {
      buckets_[static_cast<std::size_t>(i)].fetch_add(v,
                                                      std::memory_order_relaxed);
    }
  }
  const std::uint64_t mineBefore = count_.fetch_add(otherCount,
                                                    std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  const double add = other.sum();
  while (!sum_.compare_exchange_weak(cur, cur + add, std::memory_order_relaxed)) {
  }
  if (mineBefore == 0) {
    min_.store(other.min(), std::memory_order_relaxed);
    max_.store(other.max(), std::memory_order_relaxed);
  } else {
    min_.store(std::min(min_.load(std::memory_order_relaxed), other.min()),
               std::memory_order_relaxed);
    max_.store(std::max(max_.load(std::memory_order_relaxed), other.max()),
               std::memory_order_relaxed);
  }
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// ---- MetricsRegistry ------------------------------------------------------

std::string MetricsRegistry::familyOf(const std::string& name) {
  const std::size_t dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

std::atomic<bool>* MetricsRegistry::familyFlag(const std::string& family) {
  auto& slot = families_[family];
  if (!slot) slot = std::make_unique<std::atomic<bool>>(true);
  return slot.get();
}

const std::atomic<bool>* MetricsRegistry::familyEnabledFlag(
    const std::string& family) {
  std::lock_guard<std::mutex> lock(mu_);
  return familyFlag(family);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot.reset(new Counter(familyFlag(familyOf(name))));
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge(familyFlag(familyOf(name))));
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot.reset(new Histogram(familyFlag(familyOf(name))));
  return *slot;
}

void MetricsRegistry::setFamilyEnabled(const std::string& family, bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  familyFlag(family)->store(enabled, std::memory_order_relaxed);
}

void MetricsRegistry::setAllFamiliesEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, flag] : families_) {
    flag->store(enabled, std::memory_order_relaxed);
  }
}

bool MetricsRegistry::familyEnabled(const std::string& family) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = families_.find(family);
  return it == families_.end() || it->second->load(std::memory_order_relaxed);
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // Snapshot the other registry's handles first so the two locks never
  // overlap (merge(self) is harmless, if pointless).
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    for (const auto& [name, c] : other.counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : other.gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : other.histograms_) {
      histograms.emplace_back(name, h.get());
    }
  }
  for (const auto& [name, c] : counters) {
    counter(name).value_.fetch_add(c->value(), std::memory_order_relaxed);
  }
  for (const auto& [name, g] : gauges) {
    gauge(name).value_.store(gauge(name).value() + g->value(),
                             std::memory_order_relaxed);
  }
  for (const auto& [name, h] : histograms) histogram(name).merge(*h);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->value_.store(0, std::memory_order_relaxed);
  for (auto& [name, g] : gauges_) g->value_.store(0.0, std::memory_order_relaxed);
  for (auto& [name, h] : histograms_) h->reset();
}

JsonValue MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue counters = JsonValue::object();
  for (const auto& [name, c] : counters_) counters.set(name, c->value());
  JsonValue gauges = JsonValue::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, g->value());
  JsonValue histograms = JsonValue::object();
  for (const auto& [name, h] : histograms_) {
    JsonValue entry = JsonValue::object();
    entry.set("count", h->count());
    entry.set("sum", h->sum());
    entry.set("mean", h->mean());
    entry.set("min", h->min());
    entry.set("max", h->max());
    entry.set("p50", h->percentile(0.50));
    entry.set("p90", h->percentile(0.90));
    entry.set("p99", h->percentile(0.99));
    histograms.set(name, std::move(entry));
  }
  JsonValue out = JsonValue::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

std::string MetricsRegistry::toText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof buf, "%s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof buf, "%s %.6g\n", name.c_str(), g->value());
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof buf,
                  "%s count=%llu mean=%.6g min=%.6g p50=%.6g p90=%.6g "
                  "p99=%.6g max=%.6g\n",
                  name.c_str(), static_cast<unsigned long long>(h->count()),
                  h->mean(), h->min(), h->percentile(0.5), h->percentile(0.9),
                  h->percentile(0.99), h->max());
    out += buf;
  }
  return out;
}

}  // namespace pleroma::obs
