// BenchReporter — the single machine-readable sink every bench binary
// writes through. Emits `BENCH_<name>.json` (schema "pleroma-bench-v1"):
//
//   {
//     "schema": "pleroma-bench-v1",
//     "name": "fig7a",
//     "metadata": { "seed": 42, "topology": "...", "workload": "...",
//                   "git_describe": "...", "threads": 1,
//                   "hardware_concurrency": 8, ... },
//     "series": [ { "name": "...",
//                   "columns": [ {"name": "...", "unit": "..."}, ... ],
//                   "rows": [ [ ... ], ... ] }, ... ],
//     "metrics": { ... }                  // optional registry snapshot
//   }
//
// The six metadata keys above are required by validate(); "git_describe",
// "threads" (default 1 — set it when running a WorkerPool) and
// "hardware_concurrency" are pre-filled by the constructor, and benches add
// whatever else describes the run. Rows carry typed JSON values plus the
// exact text the bench printed to its TSV, so the JSON is authoritative
// while the human-readable output stays byte-identical.
//
// Output lands in $PLEROMA_BENCH_DIR (default: current directory).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace pleroma::obs {

class MetricsRegistry;

inline constexpr const char* kBenchSchema = "pleroma-bench-v1";

struct Column {
  std::string name;
  std::string unit;  ///< "" for dimensionless
};

/// One table cell: a typed JSON value plus its text rendering. Implicit
/// conversions cover the common cases; pass {json, text} to control both.
struct Cell {
  JsonValue json;
  std::string text;

  Cell(JsonValue j, std::string t) : json(std::move(j)), text(std::move(t)) {}
  Cell(const char* s) : json(s), text(s) {}
  Cell(std::string s) : text(s) { json = JsonValue(std::move(s)); }
  Cell(bool b) : json(b), text(b ? "true" : "false") {}
  Cell(int v) : Cell(static_cast<long long>(v)) {}
  Cell(long v) : Cell(static_cast<long long>(v)) {}
  Cell(long long v) : json(v), text(std::to_string(v)) {}
  Cell(unsigned v) : Cell(static_cast<unsigned long long>(v)) {}
  Cell(unsigned long v) : Cell(static_cast<unsigned long long>(v)) {}
  Cell(unsigned long long v) : json(v), text(std::to_string(v)) {}
  Cell(double v);  ///< text via "%g"
};

class BenchReporter {
 public:
  /// `name` becomes the "name" field and the BENCH_<name>.json filename.
  explicit BenchReporter(std::string name);
  ~BenchReporter();  // writes the report if finish() was not called

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  /// Sets a metadata value (seed, topology, workload, … — validate()
  /// requires seed/topology/workload/git_describe/threads/
  /// hardware_concurrency; the latter three are pre-filled and only
  /// "threads" commonly needs overriding, by pool-running benches).
  void meta(const std::string& key, JsonValue v);

  /// Starts a new series; subsequent row() calls append to it.
  void beginSeries(std::string name, std::vector<Column> columns);
  /// Appends one row to the current series; cell count must match the
  /// series' column count (mismatches throw std::logic_error).
  void row(std::vector<Cell> cells);

  /// Snapshots a metrics registry into the report's "metrics" member.
  void attachMetrics(const MetricsRegistry& reg);

  JsonValue toJson() const;

  /// $PLEROMA_BENCH_DIR/BENCH_<name>.json ("." when the env var is unset).
  std::string outputPath() const;

  /// Writes the report; returns false on IO failure. Idempotent.
  bool finish();

  /// Structural schema check; on failure explains in *error.
  static bool validate(const JsonValue& doc, std::string* error = nullptr);

 private:
  struct Series {
    std::string name;
    std::vector<Column> columns;
    std::vector<std::vector<Cell>> rows;
  };

  std::string name_;
  JsonValue metadata_ = JsonValue::object();
  std::vector<Series> series_;
  JsonValue metrics_;  // null until attachMetrics
  bool finished_ = false;
};

}  // namespace pleroma::obs
