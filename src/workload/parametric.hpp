// Parametric subscriptions (Sec 1: "subscriptions and advertisements often
// depend on the context...", citing Jayaram et al.'s parametric
// subscriptions and the moving range queries of location-based
// applications). A MovingWindow is a rectangle filter whose centre moves
// through the event space with bounded velocity, reflecting at the domain
// boundary; each step() yields the next rectangle the subscriber must
// re-subscribe with. This produces the sustained reconfiguration churn
// PLEROMA's requirement 1 targets.
#pragma once

#include <vector>

#include "dz/event_space.hpp"
#include "util/rng.hpp"

namespace pleroma::workload {

struct MovingWindowConfig {
  int numAttributes = 2;
  dz::AttributeValue domainMax = 1023;
  /// Half-width of the window along each attribute.
  dz::AttributeValue radius = 100;
  /// Per-step displacement magnitude bounds.
  double minSpeed = 5.0;
  double maxSpeed = 30.0;
  /// Dimensions the window does NOT constrain (whole-domain ranges).
  std::vector<int> unconstrainedDims;
};

class MovingWindow {
 public:
  MovingWindow(MovingWindowConfig config, util::Rng& rng);

  /// The current window rectangle.
  dz::Rectangle current() const;

  /// Advances the centre one step (reflecting at the boundary) and returns
  /// the new rectangle.
  dz::Rectangle step();

  const std::vector<double>& centre() const noexcept { return centre_; }

 private:
  bool constrained(int dim) const;

  MovingWindowConfig config_;
  std::vector<double> centre_;
  std::vector<double> velocity_;
};

/// A fleet of moving windows, convenient for churn experiments.
class MovingWindowFleet {
 public:
  MovingWindowFleet(MovingWindowConfig config, std::size_t count,
                    std::uint64_t seed);

  std::size_t size() const noexcept { return windows_.size(); }
  MovingWindow& window(std::size_t i) { return windows_[i]; }

  /// Steps every window, returning the new rectangles in order.
  std::vector<dz::Rectangle> stepAll();

 private:
  util::Rng rng_;
  std::vector<MovingWindow> windows_;
};

}  // namespace pleroma::workload
