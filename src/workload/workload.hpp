// Workload generation per the paper's experimental setup (Sec 6.1):
// a content-based schema of up to 10 attributes with domain [0, 1023];
// two interest models —
//   * uniform: subscriptions and events drawn independently at random;
//   * interest popularity ("zipfian"): 7 hotspot regions, subscriptions and
//     events generated around hotspots chosen by a zipf distribution.
// For the dimension-selection experiment (Fig 7e) the zipfian model can
// restrict the variance of event values along chosen dimensions and make
// subscriptions unselective there, producing dimensions that are useless
// for in-network filtering.
#pragma once

#include <vector>

#include "dz/event_space.hpp"
#include "util/rng.hpp"

namespace pleroma::workload {

enum class Model { kUniform, kZipfian };

struct WorkloadConfig {
  Model model = Model::kUniform;
  int numAttributes = 2;
  int bitsPerDim = 10;

  /// Average subscription extent along each attribute, as a fraction of the
  /// domain (selectivity knob). The actual width is uniform in
  /// [0.5, 1.5] * selectivity * domain.
  double subscriptionSelectivity = 0.1;
  /// Advertisements are wider than subscriptions by this factor.
  double advertisementWidthFactor = 4.0;

  // --- zipfian model ---
  int numHotspots = 7;
  double zipfAlpha = 1.0;
  /// Extent of a hotspot region as a fraction of the domain.
  double hotspotRadius = 0.08;

  /// Dimensions along which events barely vary and subscriptions are
  /// unselective (span the whole domain): useless for filtering. Used by
  /// the Fig 7e workloads.
  std::vector<int> uninformativeDims;

  std::uint64_t seed = 42;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  const WorkloadConfig& config() const noexcept { return config_; }
  dz::AttributeValue domainMax() const noexcept {
    return (dz::AttributeValue{1} << config_.bitsPerDim) - 1;
  }

  /// One subscription rectangle.
  dz::Rectangle makeSubscription();
  /// One advertisement rectangle (wider than subscriptions).
  dz::Rectangle makeAdvertisement();
  /// One event point.
  dz::Event makeEvent();

  std::vector<dz::Rectangle> makeSubscriptions(std::size_t n);
  std::vector<dz::Rectangle> makeAdvertisements(std::size_t n);
  std::vector<dz::Event> makeEvents(std::size_t n);

  /// The hotspot centres (zipfian model; empty for uniform). Exposed so
  /// tests can verify the clustering.
  const std::vector<dz::Event>& hotspots() const noexcept { return hotspots_; }

  util::Rng& rng() noexcept { return rng_; }

 private:
  dz::Rectangle makeRectangle(double widthFraction);
  bool isUninformative(int dim) const noexcept;
  dz::AttributeValue clampToDomain(double v) const noexcept;

  WorkloadConfig config_;
  util::Rng rng_;
  util::ZipfSampler zipf_;
  std::vector<dz::Event> hotspots_;
};

}  // namespace pleroma::workload
