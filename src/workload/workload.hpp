// Workload generation per the paper's experimental setup (Sec 6.1):
// a content-based schema of up to 10 attributes with domain [0, 1023];
// two interest models —
//   * uniform: subscriptions and events drawn independently at random;
//   * interest popularity ("zipfian"): 7 hotspot regions, subscriptions and
//     events generated around hotspots chosen by a zipf distribution.
// For the dimension-selection experiment (Fig 7e) the zipfian model can
// restrict the variance of event values along chosen dimensions and make
// subscriptions unselective there, producing dimensions that are useless
// for in-network filtering.
#pragma once

#include <vector>

#include "dz/event_space.hpp"
#include "util/rng.hpp"

namespace pleroma::workload {

/// Sampling families:
///   * kUniform / kZipfian — the paper's Sec 6.1 interest models;
///   * kFlashCrowd — subscriptions *and* events concentrate inside one
///     rectangular region of the event space (the crowd), producing the
///     subscription-burst-on-one-dz-region workload of the scenario
///     engine's flash-crowd family;
///   * kWideEventSpace — uniform sampling intended for schemas with many
///     attributes where `uninformativeDims` marks the dimensions that
///     carry no filtering information (the Fig 7e mechanism generalised
///     to uninformative-dimension sweeps).
enum class Model { kUniform, kZipfian, kFlashCrowd, kWideEventSpace };

/// One churn/mobility move: subscription `subIndex` re-homes from its
/// current host slot to `(slot + hostOffset) % numHostSlots`. The offset is
/// drawn in [1, numHostSlots-1], so the new host is always different.
struct ChurnStep {
  std::size_t subIndex = 0;
  std::size_t hostOffset = 1;
};

/// Derives the independent seed of workload phase `phaseIndex` from a
/// scenario-level seed. The derivation is the splitmix64 finalizer applied
/// to `seed + GOLDEN * (phaseIndex + 1)` (GOLDEN = 0x9e3779b97f4a7c15):
/// phase 0 already differs from the raw seed, so no phase shares a stream
/// with another phase or with a generator seeded directly with `seed`.
/// Reports that record (seed, phase index) are therefore reproducible
/// without recording every phase's derived seed.
std::uint64_t derivePhaseSeed(std::uint64_t seed, std::size_t phaseIndex) noexcept;

struct WorkloadConfig {
  Model model = Model::kUniform;
  int numAttributes = 2;
  int bitsPerDim = 10;

  /// Average subscription extent along each attribute, as a fraction of the
  /// domain (selectivity knob). The actual width is uniform in
  /// [0.5, 1.5] * selectivity * domain.
  double subscriptionSelectivity = 0.1;
  /// Advertisements are wider than subscriptions by this factor.
  double advertisementWidthFactor = 4.0;

  // --- zipfian model ---
  int numHotspots = 7;
  double zipfAlpha = 1.0;
  /// Extent of a hotspot region as a fraction of the domain.
  double hotspotRadius = 0.08;

  // --- flash-crowd model ---
  /// Centre of the crowd region, one fraction of the domain per attribute.
  /// Empty = mid-domain (0.5 everywhere); a shorter vector is padded with
  /// 0.5.
  std::vector<double> crowdCentre;
  /// Half-extent of the crowd region as a fraction of the domain.
  double crowdRadius = 0.05;

  /// Dimensions along which events barely vary and subscriptions are
  /// unselective (span the whole domain): useless for filtering. Used by
  /// the Fig 7e workloads and the wide-event-space family.
  std::vector<int> uninformativeDims;

  std::uint64_t seed = 42;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  const WorkloadConfig& config() const noexcept { return config_; }
  dz::AttributeValue domainMax() const noexcept {
    return (dz::AttributeValue{1} << config_.bitsPerDim) - 1;
  }

  /// One subscription rectangle.
  dz::Rectangle makeSubscription();
  /// One advertisement rectangle (wider than subscriptions).
  dz::Rectangle makeAdvertisement();
  /// One event point.
  dz::Event makeEvent();

  std::vector<dz::Rectangle> makeSubscriptions(std::size_t n);
  std::vector<dz::Rectangle> makeAdvertisements(std::size_t n);
  std::vector<dz::Event> makeEvents(std::size_t n);

  /// A deterministic churn/mobility plan: `numMoves` timed unsub+resub
  /// moves over a population of `numSubs` subscriptions spread across
  /// `numHostSlots` hosts. Each step picks a subscription uniformly and a
  /// non-zero host offset, so the re-homed subscription always lands on a
  /// different host (see ChurnStep). Requires numSubs >= 1; with a single
  /// host slot every offset degenerates to 0.
  std::vector<ChurnStep> makeChurnSteps(std::size_t numSubs,
                                        std::size_t numMoves,
                                        std::size_t numHostSlots);

  /// The hotspot centres (zipfian model; empty for uniform). Exposed so
  /// tests can verify the clustering.
  const std::vector<dz::Event>& hotspots() const noexcept { return hotspots_; }

  util::Rng& rng() noexcept { return rng_; }

 private:
  dz::Rectangle makeRectangle(double widthFraction);
  bool isUninformative(int dim) const noexcept;
  dz::AttributeValue clampToDomain(double v) const noexcept;
  double crowdCentreFraction(int dim) const noexcept;

  WorkloadConfig config_;
  util::Rng rng_;
  util::ZipfSampler zipf_;
  std::vector<dz::Event> hotspots_;
};

}  // namespace pleroma::workload
