#include "workload/workload.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "dz/u128.hpp"

namespace pleroma::workload {

std::uint64_t derivePhaseSeed(std::uint64_t seed, std::size_t phaseIndex) noexcept {
  // splitmix64 finalizer (dz::mix64 — identical constants, so recorded
  // phase seeds are unchanged) over seed + GOLDEN * (index + 1); see the
  // header for why phase 0 must not reuse the raw seed.
  return dz::mix64(
      seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(phaseIndex) + 1));
}

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      zipf_(static_cast<std::size_t>(std::max(config_.numHotspots, 1)),
            config_.zipfAlpha) {
  assert(config_.numAttributes >= 1);
  if (config_.model == Model::kZipfian) {
    hotspots_.reserve(static_cast<std::size_t>(config_.numHotspots));
    for (int h = 0; h < config_.numHotspots; ++h) {
      dz::Event centre(static_cast<std::size_t>(config_.numAttributes));
      for (auto& v : centre) v = static_cast<dz::AttributeValue>(rng_.uniformInt(0, domainMax()));
      hotspots_.push_back(std::move(centre));
    }
  }
}

bool WorkloadGenerator::isUninformative(int dim) const noexcept {
  return std::find(config_.uninformativeDims.begin(), config_.uninformativeDims.end(),
                   dim) != config_.uninformativeDims.end();
}

dz::AttributeValue WorkloadGenerator::clampToDomain(double v) const noexcept {
  const double clamped = std::clamp(v, 0.0, static_cast<double>(domainMax()));
  return static_cast<dz::AttributeValue>(std::llround(clamped));
}

double WorkloadGenerator::crowdCentreFraction(int dim) const noexcept {
  const auto d = static_cast<std::size_t>(dim);
  return d < config_.crowdCentre.size() ? config_.crowdCentre[d] : 0.5;
}

dz::Rectangle WorkloadGenerator::makeRectangle(double widthFraction) {
  const auto dmax = static_cast<double>(domainMax());
  dz::Rectangle rect;
  rect.ranges.resize(static_cast<std::size_t>(config_.numAttributes));

  std::size_t hotspot = 0;
  if (config_.model == Model::kZipfian) hotspot = zipf_.sample(rng_);

  for (int d = 0; d < config_.numAttributes; ++d) {
    auto& r = rect.ranges[static_cast<std::size_t>(d)];
    if (isUninformative(d)) {
      // Unselective: the subscription accepts the whole domain here.
      r = dz::Range{0, domainMax()};
      continue;
    }
    const double width =
        std::max(1.0, dmax * widthFraction * rng_.uniformReal(0.5, 1.5));
    double centre;
    if (config_.model == Model::kZipfian) {
      const double c =
          static_cast<double>(hotspots_[hotspot][static_cast<std::size_t>(d)]);
      centre = c + rng_.uniformReal(-1.0, 1.0) * config_.hotspotRadius * dmax;
    } else if (config_.model == Model::kFlashCrowd) {
      centre = (crowdCentreFraction(d) +
                rng_.uniformReal(-1.0, 1.0) * config_.crowdRadius) *
               dmax;
    } else {
      centre = rng_.uniformReal(0.0, dmax);
    }
    const auto lo = clampToDomain(centre - width / 2.0);
    const auto hi = clampToDomain(centre + width / 2.0);
    r = dz::Range{std::min(lo, hi), std::max(lo, hi)};
  }
  return rect;
}

dz::Rectangle WorkloadGenerator::makeSubscription() {
  return makeRectangle(config_.subscriptionSelectivity);
}

dz::Rectangle WorkloadGenerator::makeAdvertisement() {
  return makeRectangle(config_.subscriptionSelectivity *
                       config_.advertisementWidthFactor);
}

dz::Event WorkloadGenerator::makeEvent() {
  const auto dmax = static_cast<double>(domainMax());
  dz::Event e(static_cast<std::size_t>(config_.numAttributes));

  std::size_t hotspot = 0;
  if (config_.model == Model::kZipfian) hotspot = zipf_.sample(rng_);

  for (int d = 0; d < config_.numAttributes; ++d) {
    auto& v = e[static_cast<std::size_t>(d)];
    if (isUninformative(d)) {
      // Events barely vary here: cluster tightly around mid-domain so the
      // dimension carries no information for filtering.
      v = clampToDomain(dmax / 2.0 + rng_.uniformReal(-1.0, 1.0) * 0.005 * dmax);
      continue;
    }
    if (config_.model == Model::kZipfian) {
      const double c =
          static_cast<double>(hotspots_[hotspot][static_cast<std::size_t>(d)]);
      v = clampToDomain(c + rng_.uniformReal(-1.0, 1.0) * config_.hotspotRadius * dmax);
    } else if (config_.model == Model::kFlashCrowd) {
      v = clampToDomain((crowdCentreFraction(d) +
                         rng_.uniformReal(-1.0, 1.0) * config_.crowdRadius) *
                        dmax);
    } else {
      v = static_cast<dz::AttributeValue>(rng_.uniformInt(0, domainMax()));
    }
  }
  return e;
}

std::vector<dz::Rectangle> WorkloadGenerator::makeSubscriptions(std::size_t n) {
  std::vector<dz::Rectangle> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(makeSubscription());
  return out;
}

std::vector<dz::Rectangle> WorkloadGenerator::makeAdvertisements(std::size_t n) {
  std::vector<dz::Rectangle> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(makeAdvertisement());
  return out;
}

std::vector<ChurnStep> WorkloadGenerator::makeChurnSteps(std::size_t numSubs,
                                                         std::size_t numMoves,
                                                         std::size_t numHostSlots) {
  assert(numSubs >= 1);
  std::vector<ChurnStep> steps;
  steps.reserve(numMoves);
  for (std::size_t i = 0; i < numMoves; ++i) {
    ChurnStep s;
    s.subIndex = rng_.uniformInt(0, numSubs - 1);
    s.hostOffset =
        numHostSlots < 2 ? 0 : rng_.uniformInt(1, numHostSlots - 1);
    steps.push_back(s);
  }
  return steps;
}

std::vector<dz::Event> WorkloadGenerator::makeEvents(std::size_t n) {
  std::vector<dz::Event> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(makeEvent());
  return out;
}

}  // namespace pleroma::workload
