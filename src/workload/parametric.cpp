#include "workload/parametric.hpp"

#include <algorithm>
#include <cmath>

namespace pleroma::workload {

MovingWindow::MovingWindow(MovingWindowConfig config, util::Rng& rng)
    : config_(std::move(config)) {
  centre_.resize(static_cast<std::size_t>(config_.numAttributes));
  velocity_.resize(static_cast<std::size_t>(config_.numAttributes));
  const double dmax = static_cast<double>(config_.domainMax);
  for (int d = 0; d < config_.numAttributes; ++d) {
    centre_[static_cast<std::size_t>(d)] = rng.uniformReal(0.0, dmax);
    const double speed = rng.uniformReal(config_.minSpeed, config_.maxSpeed);
    velocity_[static_cast<std::size_t>(d)] = rng.chance(0.5) ? speed : -speed;
  }
}

bool MovingWindow::constrained(int dim) const {
  return std::find(config_.unconstrainedDims.begin(),
                   config_.unconstrainedDims.end(),
                   dim) == config_.unconstrainedDims.end();
}

dz::Rectangle MovingWindow::current() const {
  dz::Rectangle rect;
  const double dmax = static_cast<double>(config_.domainMax);
  for (int d = 0; d < config_.numAttributes; ++d) {
    if (!constrained(d)) {
      rect.ranges.push_back(dz::Range{0, config_.domainMax});
      continue;
    }
    const double c = centre_[static_cast<std::size_t>(d)];
    const double lo = std::clamp(c - config_.radius, 0.0, dmax);
    const double hi = std::clamp(c + config_.radius, 0.0, dmax);
    rect.ranges.push_back(dz::Range{static_cast<dz::AttributeValue>(lo),
                                    static_cast<dz::AttributeValue>(hi)});
  }
  return rect;
}

dz::Rectangle MovingWindow::step() {
  const double dmax = static_cast<double>(config_.domainMax);
  for (int d = 0; d < config_.numAttributes; ++d) {
    if (!constrained(d)) continue;
    auto& c = centre_[static_cast<std::size_t>(d)];
    auto& v = velocity_[static_cast<std::size_t>(d)];
    c += v;
    if (c < 0.0) {
      c = -c;
      v = -v;
    } else if (c > dmax) {
      c = 2.0 * dmax - c;
      v = -v;
    }
  }
  return current();
}

MovingWindowFleet::MovingWindowFleet(MovingWindowConfig config,
                                     std::size_t count, std::uint64_t seed)
    : rng_(seed) {
  windows_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    windows_.emplace_back(config, rng_);
  }
}

std::vector<dz::Rectangle> MovingWindowFleet::stepAll() {
  std::vector<dz::Rectangle> out;
  out.reserve(windows_.size());
  for (auto& w : windows_) out.push_back(w.step());
  return out;
}

}  // namespace pleroma::workload
