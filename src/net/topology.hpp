// The physical network graph: switches, hosts, and bidirectional links with
// latency/bandwidth. Provides the builders used in the paper's evaluation —
// the hierarchical fat-tree of the Stuttgart SDN testbed (Fig 6: switches
// R1..R10, end hosts h1..h8) and the 20-switch fat-tree and ring topologies
// of the Mininet experiments — plus shortest-path computations that the
// controller uses to build spanning trees (Sec 3.2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/types.hpp"

namespace pleroma::net {

enum class NodeKind { kSwitch, kHost };

using LinkId = int;
inline constexpr LinkId kInvalidLink = -1;

struct LinkEnd {
  NodeId node = kInvalidNode;
  PortId port = kInvalidPort;
};

struct Link {
  LinkEnd a;
  LinkEnd b;
  SimTime latency = 50 * kMicrosecond;
  /// Bits per second; 0 means infinite (no transmission delay).
  double bandwidthBps = 0.0;

  LinkEnd peerOf(NodeId node) const noexcept { return a.node == node ? b : a; }
  LinkEnd endOf(NodeId node) const noexcept { return a.node == node ? a : b; }
};

struct Node {
  NodeKind kind = NodeKind::kSwitch;
  std::string name;
  /// portLinks[p-1] is the link attached to port p (ports are 1-based).
  std::vector<LinkId> portLinks;
};

class Topology {
 public:
  NodeId addSwitch(std::string name = {});
  NodeId addHost(std::string name = {});

  /// Connects two nodes with a new link, assigning the next free port on
  /// each side. Returns the link id.
  LinkId connect(NodeId a, NodeId b, SimTime latency = 50 * kMicrosecond,
                 double bandwidthBps = 0.0);

  int nodeCount() const noexcept { return static_cast<int>(nodes_.size()); }
  int linkCount() const noexcept { return static_cast<int>(links_.size()); }
  const Node& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  const Link& link(LinkId id) const { return links_[static_cast<std::size_t>(id)]; }
  bool isSwitch(NodeId id) const { return node(id).kind == NodeKind::kSwitch; }
  bool isHost(NodeId id) const { return node(id).kind == NodeKind::kHost; }

  std::vector<NodeId> switches() const;
  std::vector<NodeId> hosts() const;

  /// The link attached to a node's port, or kInvalidLink.
  LinkId linkAt(NodeId node, PortId port) const;

  /// Other end of the port's link: (peer node, peer port). Requires a link
  /// at that port.
  LinkEnd peer(NodeId node, PortId port) const;

  /// All (port, link) pairs of a node.
  std::vector<std::pair<PortId, LinkId>> portsOf(NodeId node) const;

  /// For a host (degree-1 node): the switch it attaches to, the switch-side
  /// port, and the host-side port.
  struct Attachment {
    NodeId switchNode = kInvalidNode;
    PortId switchPort = kInvalidPort;
    PortId hostPort = kInvalidPort;
  };
  Attachment hostAttachment(NodeId host) const;

  /// Single-source shortest paths by link latency (Dijkstra). Unreachable
  /// nodes keep parentLink = kInvalidLink and infinite distance.
  struct ShortestPaths {
    NodeId source = kInvalidNode;
    std::vector<SimTime> distance;
    std::vector<LinkId> parentLink;  // link towards the source
    std::vector<NodeId> parentNode;
  };
  ShortestPaths shortestPathsFrom(NodeId source) const;

  /// Node sequence of the shortest path src..dst (inclusive); empty when
  /// unreachable.
  std::vector<NodeId> shortestPath(NodeId src, NodeId dst) const;

  // ---- builders ------------------------------------------------------
  // All builders take an optional uniform link bandwidth (bits/second);
  // 0 keeps the default infinite-bandwidth links. Finite bandwidth is what
  // makes the finite link queues of DESIGN.md §15 bind.

  /// The testbed topology of Fig 6: 2 core switches, 4 aggregation, 4 edge
  /// (R1..R10), and 8 end hosts, two per edge switch.
  static Topology testbedFatTree(SimTime linkLatency = 50 * kMicrosecond,
                                 double bandwidthBps = 0.0);

  /// Generic two-level fat-tree: `core` core switches each connected to all
  /// aggregation switches; `edgePerAgg` edge switches per aggregation
  /// switch; `hostsPerEdge` hosts per edge switch.
  static Topology fatTree(int core, int aggregation, int edgePerAgg,
                          int hostsPerEdge, SimTime linkLatency = 50 * kMicrosecond,
                          double bandwidthBps = 0.0);

  /// Canonical k-ary (3-level) fat-tree: (k/2)^2 core switches, k pods of
  /// k/2 aggregation + k/2 edge switches, k/2 hosts per edge switch.
  /// `k` must be even and >= 2. k=4 gives 20 switches / 16 hosts — the
  /// Mininet-scale configuration of Sec 6.1.
  static Topology kAryFatTree(int k, SimTime linkLatency = 50 * kMicrosecond,
                              double bandwidthBps = 0.0);

  /// Ring of `numSwitches` switches, one host per switch (the Mininet ring
  /// configuration of Sec 6.1).
  static Topology ring(int numSwitches, SimTime linkLatency = 50 * kMicrosecond,
                       double bandwidthBps = 0.0);

  /// Line of `numSwitches` switches, one host per switch; handy in tests.
  static Topology line(int numSwitches, SimTime linkLatency = 50 * kMicrosecond,
                       double bandwidthBps = 0.0);

  /// Random connected switch graph: a random spanning tree plus
  /// `extraLinks` additional random switch-switch links (no duplicates or
  /// self-loops), one host per switch. Deterministic per seed. Used by the
  /// property tests to exercise routing on irregular topologies.
  static Topology randomConnected(int numSwitches, int extraLinks,
                                  std::uint64_t seed,
                                  SimTime linkLatency = 50 * kMicrosecond,
                                  double bandwidthBps = 0.0);

 private:
  PortId allocatePort(NodeId node, LinkId link);

  std::vector<Node> nodes_;
  std::vector<Link> links_;
};

/// Cache-topology-aware shard placement (util::ShardPlacement::kBlock): a
/// per-node worker index, assigning each node class contiguous rank ranges —
/// switches split into `workers` equal blocks by switch rank, hosts
/// likewise by host rank. Ranking per class (rather than raw node id) keeps
/// the blocks balanced on builder layouts where switch ids cluster low
/// (fat-trees): raw-id blocks would put every switch on worker 0. Returned
/// vector is indexed by NodeId; workers < 1 yields all-zero placement.
std::vector<int> blockShardPlacement(const Topology& topo, int workers);

}  // namespace pleroma::net
