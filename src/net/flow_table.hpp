// A TCAM-style flow table (Sec 3.3.2). Each entry matches the destination
// IP against a CIDR prefix (the dz embedding) at a priority; the instruction
// set is a list of output actions, optionally rewriting the destination
// address before output (used on terminal switches to readdress events to
// the subscriber host). Lookup selects the matching entry with the highest
// priority (ties: longer prefix), mirroring OpenFlow semantics. Match
// prefixes are unique within a table, as the controller maintains one flow
// per dz per switch.
//
// Storage (DESIGN.md §13) is length-partitioned SoA: per installed prefix
// length, one contiguous array of 24-byte probe records (masked dz::U128
// key, priority, arena slot) — kept sorted and binary-searched with
// branchless 128-bit compares while the bucket is small, switched to flat
// open-addressing linear probing once it grows past kSortedMax. Either way
// a lookup probe is a scan of a cache-line-packed key array; the full
// FlowEntry (whose 1–2-action list is stored inline, spill-free) lives in a
// pointer-stable per-table arena and is touched only on the winning hit.
// Per-entry matchedPackets counters sit in their own SoA column so lookup's
// counter bump never dirties an entry cache line. Lookup cost is one probe
// per distinct installed prefix length — constant-time in table size, which
// is also the hardware-TCAM property Fig 7a demonstrates.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "dz/ip_encoding.hpp"
#include "net/types.hpp"
#include "obs/metrics.hpp"
#include "util/relaxed_counter.hpp"

namespace pleroma::net {

/// One output action: emit on `port`, optionally rewriting the destination
/// address first (OpenFlow set-field + output).
struct FlowAction {
  PortId port = kInvalidPort;
  std::optional<dz::Ipv6Address> setDestination;

  friend bool operator==(const FlowAction&, const FlowAction&) = default;
};

/// Small-buffer action list: the dominant 1–2-action case (unicast forward,
/// forward+rewrite) is stored inline in the FlowEntry — no heap pointer to
/// chase on the forwarding path — and only wider fan-out entries spill to a
/// heap block. Vector-compatible surface for the operations the codebase
/// uses: push_back, erase, iteration, indexing, assignment from
/// vector/initializer_list, equality.
class ActionList {
 public:
  using value_type = FlowAction;
  using iterator = FlowAction*;
  using const_iterator = const FlowAction*;

  static constexpr std::uint32_t kInlineCapacity = 2;

  ActionList() noexcept = default;
  ActionList(std::initializer_list<FlowAction> il) { assign(il.begin(), il.size()); }
  ActionList(const ActionList& o) { assign(o.data(), o.size_); }
  ActionList(ActionList&& o) noexcept { moveFrom(o); }
  explicit ActionList(const std::vector<FlowAction>& v) { assign(v.data(), v.size()); }
  ~ActionList() { release(); }

  ActionList& operator=(const ActionList& o) {
    if (this != &o) {
      clear();
      assign(o.data(), o.size_);
    }
    return *this;
  }
  ActionList& operator=(ActionList&& o) noexcept {
    if (this != &o) {
      release();
      moveFrom(o);
    }
    return *this;
  }
  ActionList& operator=(std::initializer_list<FlowAction> il) {
    clear();
    assign(il.begin(), il.size());
    return *this;
  }
  ActionList& operator=(const std::vector<FlowAction>& v) {
    clear();
    assign(v.data(), v.size());
    return *this;
  }
  ActionList& operator=(std::vector<FlowAction>&& v) {
    clear();
    assign(v.data(), v.size());
    return *this;
  }

  FlowAction* data() noexcept {
    return cap_ == kInlineCapacity ? reinterpret_cast<FlowAction*>(store_.raw)
                                   : store_.heap;
  }
  const FlowAction* data() const noexcept {
    return cap_ == kInlineCapacity
               ? reinterpret_cast<const FlowAction*>(store_.raw)
               : store_.heap;
  }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  iterator begin() noexcept { return data(); }
  iterator end() noexcept { return data() + size_; }
  const_iterator begin() const noexcept { return data(); }
  const_iterator end() const noexcept { return data() + size_; }

  FlowAction& operator[](std::size_t i) noexcept { return data()[i]; }
  const FlowAction& operator[](std::size_t i) const noexcept { return data()[i]; }
  FlowAction& back() noexcept { return data()[size_ - 1]; }
  const FlowAction& back() const noexcept { return data()[size_ - 1]; }

  void push_back(const FlowAction& a) {
    if (size_ == cap_) grow(cap_ * 2);
    data()[size_++] = a;
  }

  iterator erase(const_iterator pos) {
    FlowAction* p = data() + (pos - data());
    std::memmove(p, p + 1,
                 static_cast<std::size_t>(end() - p - 1) * sizeof(FlowAction));
    --size_;
    return p;
  }

  void clear() noexcept { size_ = 0; }

  friend bool operator==(const ActionList& a, const ActionList& b) {
    if (a.size_ != b.size_) return false;
    for (std::uint32_t i = 0; i < a.size_; ++i) {
      if (!(a.data()[i] == b.data()[i])) return false;
    }
    return true;
  }

 private:
  void assign(const FlowAction* src, std::size_t n) {
    if (n > cap_) grow(static_cast<std::uint32_t>(n));
    std::memcpy(data(), src, n * sizeof(FlowAction));
    size_ = static_cast<std::uint32_t>(n);
  }
  void grow(std::uint32_t newCap) {
    FlowAction* block = new FlowAction[newCap];
    std::memcpy(block, data(), size_ * sizeof(FlowAction));
    release();
    store_.heap = block;
    cap_ = newCap;
  }
  void release() noexcept {
    if (cap_ != kInlineCapacity) delete[] store_.heap;
  }
  /// Steals o's storage (heap block or inline copy); leaves o empty.
  void moveFrom(ActionList& o) noexcept {
    size_ = o.size_;
    cap_ = o.cap_;
    if (o.cap_ == kInlineCapacity) {
      std::memcpy(store_.raw, o.store_.raw, o.size_ * sizeof(FlowAction));
    } else {
      store_.heap = o.store_.heap;
      o.cap_ = kInlineCapacity;
    }
    o.size_ = 0;
  }

  std::uint32_t size_ = 0;
  std::uint32_t cap_ = kInlineCapacity;
  /// Inline storage is raw bytes, not FlowAction objects — the type is
  /// trivially copyable (asserted below) and managed purely via memcpy, so
  /// the union keeps a trivial default constructor.
  union Store {
    alignas(FlowAction) std::byte raw[sizeof(FlowAction) * kInlineCapacity];
    FlowAction* heap;
  };
  Store store_{};
};

// The inline buffer is managed with memcpy/memmove (no per-element
// construction), which is only sound for a trivially copyable action type.
static_assert(std::is_trivially_copyable_v<FlowAction>);
static_assert(std::is_trivially_destructible_v<FlowAction>);

struct FlowEntry {
  dz::Ipv6Prefix match;
  int priority = 0;
  ActionList actions;
  /// Packets that matched this entry (OpenFlow per-flow counter; not part
  /// of entry identity/equality). The live counter is the table's SoA
  /// column; this field is synchronised whenever the entry is handed out
  /// through find()/entries()/forEach() — the OpenFlow stats-read paths.
  mutable std::uint64_t matchedPackets = 0;

  /// Adds `port` to the action list if absent; when present and `rewrite`
  /// is set, updates the rewrite.
  void addOutPort(PortId port, std::optional<dz::Ipv6Address> rewrite = std::nullopt);
  bool removeOutPort(PortId port);
  bool hasOutPort(PortId port) const noexcept;
  std::vector<PortId> outPorts() const;

  std::string toString() const;

  /// Identity excludes the statistics counter.
  friend bool operator==(const FlowEntry& a, const FlowEntry& b) {
    return a.match == b.match && a.priority == b.priority && a.actions == b.actions;
  }
};

/// Table statistics observable by benches and tests. Counters are
/// single-writer relaxed atomics (util::ShardedCounter): during parallel
/// run execution each FlowTable is touched by exactly one worker (the
/// per-node sharding invariant, DESIGN.md §10), so a plain load+store
/// increment is race-free and lookup keeps its single-thread cost.
struct FlowTableStats {
  util::ShardedCounter lookups = 0;
  util::ShardedCounter hits = 0;
  util::ShardedCounter misses = 0;
  /// Bucket probes issued by lookup() — one per distinct installed prefix
  /// length; probes/lookups is the effective TCAM scan width.
  util::ShardedCounter probes = 0;
  util::ShardedCounter inserts = 0;
  util::ShardedCounter modifies = 0;
  util::ShardedCounter removes = 0;
  util::ShardedCounter rejectedCapacity = 0;
  util::ShardedCounter rejectedDuplicate = 0;
};

class FlowTable {
 public:
  /// `capacity` models the switch's TCAM size (40k-180k entries in 2014
  /// hardware, Sec 1 requirement 3); 0 means unlimited.
  explicit FlowTable(std::size_t capacity = 0) : capacity_(capacity) {
    lengthBucket_.fill(-1);
  }

  FlowTable(FlowTable&&) = default;
  FlowTable& operator=(FlowTable&&) = default;

  /// Inserts an entry. Fails when the table is full or an entry with the
  /// same match prefix already exists.
  bool insert(FlowEntry entry);

  /// Replaces the entry with the same match prefix; inserts when absent.
  bool insertOrReplace(FlowEntry entry);

  /// Removes the entry with exactly this match prefix. Returns whether an
  /// entry was removed.
  bool remove(const dz::Ipv6Prefix& match);

  /// Finds the entry with exactly this match prefix (nullptr when absent).
  const FlowEntry* find(const dz::Ipv6Prefix& match) const noexcept;
  FlowEntry* findMutable(const dz::Ipv6Prefix& match) noexcept;

  /// TCAM lookup: the matching entry with the highest priority (ties broken
  /// by longer prefix). nullptr on miss. Counted in stats. The returned
  /// entry's matchedPackets field is NOT refreshed here (the bump goes to
  /// the SoA counter column); read per-flow counters via find()/entries().
  const FlowEntry* lookup(dz::Ipv6Address dst) const;

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  /// High-water mark of size(): budget accounting for the TCAM series
  /// (peak entries a switch ever held, even after later removals).
  std::size_t peakSize() const noexcept { return peakSize_; }
  /// Entries still installable before the hard capacity rejects inserts;
  /// SIZE_MAX when the table is unlimited.
  std::size_t headroom() const noexcept {
    if (capacity_ == 0) return static_cast<std::size_t>(-1);
    return capacity_ > size_ ? capacity_ - size_ : 0;
  }
  bool empty() const noexcept { return size_ == 0; }
  const FlowTableStats& stats() const noexcept { return stats_; }
  void clear() noexcept;

  /// Materialises all entries (unspecified order); for tests/inspection.
  std::vector<FlowEntry> entries() const;

  /// Visits every entry (controller-mirror consistency checks, stats
  /// reads). Template: the callable is invoked directly, with no
  /// std::function type-erasure on the per-entry scan.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (const Bucket& b : buckets_) {
      if (b.flat) {
        for (const ProbeRecord& r : b.recs) {
          if (r.slot != kEmptySlot) fn(syncedSlot(r.slot));
        }
      } else {
        for (std::size_t i = 0; i < b.size; ++i) {
          fn(syncedSlot(b.recs[i].slot));
        }
      }
    }
  }

  /// Type-erased overload kept for callers that already hold a
  /// std::function; thin wrapper over the template.
  void forEach(const std::function<void(const FlowEntry&)>& fn) const {
    forEach<const std::function<void(const FlowEntry&)>&>(fn);
  }

  /// Resolves metric handles under `<prefix>.*` (lookups, hits, misses,
  /// probes per lookup). Unattached tables skip metrics entirely; handles
  /// stay valid for the registry's lifetime.
  void attachMetrics(obs::MetricsRegistry& reg,
                     const std::string& prefix = "flow_table");

 private:
  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  /// Bucket representation switch-over points (entries). Sorted arrays are
  /// denser and skip the hash for the common few-flows-per-length shape;
  /// flat probing wins once the binary search depth outgrows one or two
  /// cache lines. The gap is hysteresis so churn at the boundary does not
  /// rebuild the bucket every op.
  static constexpr std::size_t kSortedMax = 24;
  static constexpr std::size_t kSortedMin = 12;
  /// Arena chunk size (entries); chunks are allocated lazily so the many
  /// empty host tables cost nothing.
  static constexpr std::uint32_t kChunkShift = 6;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  /// One probe cell: 24 bytes, so a 64-byte cache line covers 2-3 probe
  /// candidates. The key is the match address masked to the bucket's
  /// length; `slot` indexes the entry arena (kEmptySlot marks a free cell
  /// in flat buckets).
  struct ProbeRecord {
    dz::U128 key{};
    std::uint32_t slot = kEmptySlot;
    std::int32_t priority = 0;
  };
  static_assert(sizeof(ProbeRecord) == 24);

  struct Bucket {
    int length = 0;
    dz::U128 mask{};  ///< topMask(length), precomputed off the lookup path
    std::size_t size = 0;
    bool flat = false;  ///< false: recs[0..size) sorted; true: open addressing
    std::vector<ProbeRecord> recs;
  };

  Bucket& bucketForInsert(int length);
  void dropBucketIfEmpty(Bucket& b);

  // The probe helpers are force-inlined: left out-of-line, GCC keeps the
  // key in an xmm register, spills it across the call, and reloads it in
  // the callee — a store-forward round trip that more than doubles lookup
  // latency (measured 35ns -> 11.5ns at 80k entries when inlined).

  /// recs index of `key` in a sorted bucket, or npos. Branchless binary
  /// search: the loop body is two cmovs, no data-dependent branches.
  [[gnu::always_inline]] static inline std::size_t findSorted(
      const Bucket& b, dz::U128 key) noexcept {
    std::size_t n = b.size;
    if (n == 0) return kNpos;
    const ProbeRecord* base = b.recs.data();
    while (n > 1) {
      const std::size_t half = n >> 1;
      base += dz::u128Less(base[half - 1].key, key) ? half : 0;
      n -= half;
    }
    return base->key == key ? static_cast<std::size_t>(base - b.recs.data())
                            : kNpos;
  }
  /// recs index of `key` in a flat bucket, or npos. Linear probe over the
  /// contiguous record array.
  [[gnu::always_inline]] static inline std::size_t findFlat(
      const Bucket& b, dz::U128 key) noexcept {
    const std::size_t mask = b.recs.size() - 1;
    std::size_t i = dz::u128Hash(key) & mask;
    // Load factor is kept <= 50%, so an empty cell terminates every probe
    // chain (backward-shift deletion leaves no tombstones).
    while (b.recs[i].slot != kEmptySlot) {
      if (b.recs[i].key == key) return i;
      i = (i + 1) & mask;
    }
    return kNpos;
  }
  static std::size_t findIn(const Bucket& b, dz::U128 key) noexcept {
    return b.flat ? findFlat(b, key) : findSorted(b, key);
  }

  void insertRecord(Bucket& b, dz::U128 key, std::int32_t priority,
                    std::uint32_t slot);
  void eraseRecord(Bucket& b, std::size_t idx);
  /// Rebuilds `b` as flat with capacity for `forSize` entries (pow2, <=50%
  /// load) or as a sorted array, from whichever representation it has.
  void rebuildFlat(Bucket& b, std::size_t forSize);
  void rebuildSorted(Bucket& b);

  // ---- entry arena ------------------------------------------------------
  FlowEntry& slotRef(std::uint32_t slot) const noexcept {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  /// The arena entry with its matchedPackets field refreshed from the SoA
  /// counter column (the hand-out sync point).
  const FlowEntry& syncedSlot(std::uint32_t slot) const noexcept {
    const FlowEntry& e = slotRef(slot);
    e.matchedPackets = matched_[slot];
    return e;
  }
  std::uint32_t allocateSlot(FlowEntry&& entry);
  void freeSlot(std::uint32_t slot);

  static dz::U128 keyOf(const dz::Ipv6Prefix& p) noexcept {
    return p.address.value & dz::U128::topMask(p.length);
  }

  std::vector<Bucket> buckets_;  ///< one per installed length, install order
  /// Bucket index per prefix length (0..128); -1 when absent.
  std::array<std::int16_t, 129> lengthBucket_;
  std::size_t size_ = 0;
  std::size_t peakSize_ = 0;
  std::size_t capacity_;

  std::vector<std::unique_ptr<FlowEntry[]>> chunks_;
  std::vector<std::uint32_t> freeSlots_;
  std::uint32_t slotHighWater_ = 0;
  /// Per-entry matched-packet counters, SoA column parallel to the arena.
  /// Mutable: bumped by const lookup under the single-writer-per-table
  /// sharding invariant, like the stats counters.
  mutable std::vector<std::uint64_t> matched_;

  mutable FlowTableStats stats_;
  /// Family enable flag, checked once per lookup to gate all four handle
  /// updates (keeps the attached-but-disabled cost to one relaxed load).
  const std::atomic<bool>* obsEnabled_ = nullptr;
  obs::Counter* obsLookups_ = nullptr;
  obs::Counter* obsHits_ = nullptr;
  obs::Counter* obsMisses_ = nullptr;
  obs::Histogram* obsProbes_ = nullptr;
};

}  // namespace pleroma::net
