// A TCAM-style flow table (Sec 3.3.2). Each entry matches the destination
// IP against a CIDR prefix (the dz embedding) at a priority; the instruction
// set is a list of output actions, optionally rewriting the destination
// address before output (used on terminal switches to readdress events to
// the subscriber host). Lookup selects the matching entry with the highest
// priority (ties: longer prefix), mirroring OpenFlow semantics. Match
// prefixes are unique within a table, as the controller maintains one flow
// per dz per switch.
//
// Storage is a hash map keyed by (masked address, prefix length) with a
// per-length occupancy count, so a lookup probes one hash bucket per
// distinct installed prefix length — constant-time in table size, which is
// also the hardware-TCAM property Fig 7a demonstrates.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dz/ip_encoding.hpp"
#include "net/types.hpp"
#include "obs/metrics.hpp"
#include "util/relaxed_counter.hpp"

namespace pleroma::net {

/// One output action: emit on `port`, optionally rewriting the destination
/// address first (OpenFlow set-field + output).
struct FlowAction {
  PortId port = kInvalidPort;
  std::optional<dz::Ipv6Address> setDestination;

  friend bool operator==(const FlowAction&, const FlowAction&) = default;
};

struct FlowEntry {
  dz::Ipv6Prefix match;
  int priority = 0;
  std::vector<FlowAction> actions;
  /// Packets that matched this entry (OpenFlow per-flow counter; not part
  /// of entry identity/equality). Maintained by FlowTable::lookup.
  mutable std::uint64_t matchedPackets = 0;

  /// Adds `port` to the action list if absent; when present and `rewrite`
  /// is set, updates the rewrite.
  void addOutPort(PortId port, std::optional<dz::Ipv6Address> rewrite = std::nullopt);
  bool removeOutPort(PortId port);
  bool hasOutPort(PortId port) const noexcept;
  std::vector<PortId> outPorts() const;

  std::string toString() const;

  /// Identity excludes the statistics counter.
  friend bool operator==(const FlowEntry& a, const FlowEntry& b) {
    return a.match == b.match && a.priority == b.priority && a.actions == b.actions;
  }
};

/// Table statistics observable by benches and tests. Counters are
/// single-writer relaxed atomics (util::ShardedCounter): during parallel
/// run execution each FlowTable is touched by exactly one worker (the
/// per-node sharding invariant, DESIGN.md §10), so a plain load+store
/// increment is race-free and lookup keeps its single-thread cost.
struct FlowTableStats {
  util::ShardedCounter lookups = 0;
  util::ShardedCounter hits = 0;
  util::ShardedCounter misses = 0;
  /// Hash probes issued by lookup() — one per distinct installed prefix
  /// length; probes/lookups is the effective TCAM scan width.
  util::ShardedCounter probes = 0;
  util::ShardedCounter inserts = 0;
  util::ShardedCounter modifies = 0;
  util::ShardedCounter removes = 0;
  util::ShardedCounter rejectedCapacity = 0;
  util::ShardedCounter rejectedDuplicate = 0;
};

class FlowTable {
 public:
  /// `capacity` models the switch's TCAM size (40k-180k entries in 2014
  /// hardware, Sec 1 requirement 3); 0 means unlimited.
  explicit FlowTable(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Inserts an entry. Fails when the table is full or an entry with the
  /// same match prefix already exists.
  bool insert(FlowEntry entry);

  /// Replaces the entry with the same match prefix; inserts when absent.
  bool insertOrReplace(FlowEntry entry);

  /// Removes the entry with exactly this match prefix. Returns whether an
  /// entry was removed.
  bool remove(const dz::Ipv6Prefix& match);

  /// Finds the entry with exactly this match prefix (nullptr when absent).
  const FlowEntry* find(const dz::Ipv6Prefix& match) const noexcept;
  FlowEntry* findMutable(const dz::Ipv6Prefix& match) noexcept;

  /// TCAM lookup: the matching entry with the highest priority (ties broken
  /// by longer prefix). nullptr on miss. Counted in stats.
  const FlowEntry* lookup(dz::Ipv6Address dst) const;

  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return map_.empty(); }
  const FlowTableStats& stats() const noexcept { return stats_; }
  void clear() noexcept;

  /// Materialises all entries (unspecified order); for tests/inspection.
  std::vector<FlowEntry> entries() const;

  /// Visits every entry (used by controller-mirror consistency checks).
  void forEach(const std::function<void(const FlowEntry&)>& fn) const;

  /// Resolves metric handles under `<prefix>.*` (lookups, hits, misses,
  /// probes per lookup). Unattached tables skip metrics entirely; handles
  /// stay valid for the registry's lifetime.
  void attachMetrics(obs::MetricsRegistry& reg,
                     const std::string& prefix = "flow_table");

 private:
  struct Key {
    dz::U128 maskedBits{};
    int length = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.maskedBits.hi * 0x9e3779b97f4a7c15ULL;
      h ^= k.maskedBits.lo * 0xc2b2ae3d27d4eb4fULL;
      h ^= static_cast<std::uint64_t>(k.length) * 0xff51afd7ed558ccdULL;
      return static_cast<std::size_t>(h ^ (h >> 29));
    }
  };

  static Key keyOf(const dz::Ipv6Prefix& p) noexcept {
    return Key{p.address.value & dz::U128::topMask(p.length), p.length};
  }

  std::unordered_map<Key, FlowEntry, KeyHash> map_;
  /// Occupancy count per prefix length (index 0..128); lengthsInUse_ lists
  /// lengths with nonzero count, unsorted.
  std::vector<std::uint32_t> lengthCount_ = std::vector<std::uint32_t>(129, 0);
  std::vector<int> lengthsInUse_;
  std::size_t capacity_;
  mutable FlowTableStats stats_;
  /// Family enable flag, checked once per lookup to gate all four handle
  /// updates (keeps the attached-but-disabled cost to one relaxed load).
  const std::atomic<bool>* obsEnabled_ = nullptr;
  obs::Counter* obsLookups_ = nullptr;
  obs::Counter* obsHits_ = nullptr;
  obs::Counter* obsMisses_ = nullptr;
  obs::Histogram* obsProbes_ = nullptr;

  void noteLengthAdded(int length);
  void noteLengthRemoved(int length);
};

}  // namespace pleroma::net
