#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pleroma::net {

const char* dropReasonName(DropReason reason) noexcept {
  switch (reason) {
    case DropReason::kNoMatch: return "no_match";
    case DropReason::kHopLimit: return "hop_limit";
    case DropReason::kLinkDown: return "link_down";
    case DropReason::kNodeDown: return "node_down";
    case DropReason::kHostQueue: return "host_queue";
    case DropReason::kMissBuffer: return "miss_buffer";
    case DropReason::kLinkQueue: return "link_queue";
    case DropReason::kBackpressure: return "backpressure";
    case DropReason::kNoEgress: return "no_egress";
  }
  return "unknown";
}

Network::Network(Topology topology, Simulator& sim, NetworkConfig config)
    : topo_(std::move(topology)), sim_(sim), config_(config) {
  tables_.reserve(static_cast<std::size_t>(topo_.nodeCount()));
  for (NodeId id = 0; id < topo_.nodeCount(); ++id) {
    tables_.emplace_back(topo_.isSwitch(id) ? config_.flowTableCapacity : 0);
  }
  hostState_.resize(static_cast<std::size_t>(topo_.nodeCount()));
  missBuffers_.resize(static_cast<std::size_t>(topo_.nodeCount()));
  linkCounters_.resize(static_cast<std::size_t>(topo_.linkCount()));
  linkDirs_.resize(2 * static_cast<std::size_t>(topo_.linkCount()));
  linkQueueCap_.assign(static_cast<std::size_t>(topo_.linkCount()),
                       config_.linkQueueCapacity);
  linkUp_.assign(static_cast<std::size_t>(topo_.linkCount()), true);
  nodeUp_.assign(static_cast<std::size_t>(topo_.nodeCount()), true);
}

FlowTable& Network::flowTable(NodeId switchNode) {
  assert(topo_.isSwitch(switchNode));
  return tables_[static_cast<std::size_t>(switchNode)];
}

const FlowTable& Network::flowTable(NodeId switchNode) const {
  assert(topo_.isSwitch(switchNode));
  return tables_[static_cast<std::size_t>(switchNode)];
}

std::size_t Network::totalFlowEntries() const noexcept {
  std::size_t total = 0;
  for (const FlowTable& t : tables_) total += t.size();
  return total;
}

std::size_t Network::peakFlowEntries() const noexcept {
  std::size_t total = 0;
  for (const FlowTable& t : tables_) total += t.peakSize();
  return total;
}

void Network::sendFromHost(NodeId host, Packet packet) {
  assert(topo_.isHost(host));
  ++counters_.packetsSentFromHosts;
  // Stamp the departure time while the payload is (normally) still owned by
  // this packet alone; mutablePayload clones first if it is already shared.
  if (packet.payload) packet.mutablePayload().sentAt = sim_.now();
  const auto attachment = topo_.hostAttachment(host);
  transmit(host, attachment.hostPort, std::move(packet));
}

void Network::injectAtSwitch(NodeId switchNode, PortId inPort, Packet packet) {
  assert(topo_.isSwitch(switchNode));
  ++counters_.packetsInjectedByController;
  arriveAtNode(switchNode, inPort, std::move(packet));
}

void Network::sendOutPort(NodeId switchNode, PortId outPort, Packet packet) {
  assert(topo_.isSwitch(switchNode));
  ++counters_.packetsInjectedByController;
  transmit(switchNode, outPort, std::move(packet));
}

void Network::arriveAtNode(NodeId node, PortId inPort, Packet&& packet) {
  if (!nodeUp_[static_cast<std::size_t>(node)]) {
    ++counters_.drop(DropReason::kNodeDown);
    return;
  }
  if (topo_.isHost(node)) {
    receiveAtHost(node, std::move(packet));
  } else {
    processAtSwitch(node, inPort, std::move(packet));
  }
}

void Network::onPacketEvent(PacketEventKind kind, NodeId node, PortId port,
                            Packet&& packet) {
  switch (kind) {
    case PacketEventKind::kArrive:
      arriveAtNode(node, port, std::move(packet));
      break;
    case PacketEventKind::kSwitchPipeline:
      switchPipeline(node, port, std::move(packet));
      break;
    case PacketEventKind::kHostService:
      hostServiceDone(node, std::move(packet));
      break;
    case PacketEventKind::kLinkRetry:
      linkRetry(node, port);
      break;
  }
}

std::int64_t Network::packetShardKey(PacketEventKind kind, NodeId node,
                                     PortId /*port*/,
                                     const Packet& packet) const {
  if (tracer_ != nullptr && tracer_->enabled()) return kNoShard;
  if (kind == PacketEventKind::kSwitchPipeline &&
      packet.dst == dz::kControlAddress) {
    return kNoShard;
  }
  // kLinkRetry mutates the sending node's direction state only, and `node`
  // is that sender, so the default per-node key already covers it.
  return static_cast<std::int64_t>(node);
}

void Network::onStagedCallback(int kind, NodeId node, PortId port,
                               Packet&& packet) {
  switch (kind) {
    case kCbPacketIn:
      if (packetIn_) packetIn_(node, port, std::move(packet));
      break;
    case kCbDeliver:
      if (deliver_) deliver_(node, packet);
      break;
    default:
      assert(false);
  }
}

void Network::processAtSwitch(NodeId switchNode, PortId inPort,
                              Packet&& packet) {
  sim_.schedulePacket(config_.switchProcessingDelay, *this,
                      PacketEventKind::kSwitchPipeline, switchNode, inPort,
                      std::move(packet));
}

void Network::switchPipeline(NodeId switchNode, PortId inPort,
                             Packet&& packet) {
  // The switch may have failed while the packet sat in its pipeline.
  if (!nodeUp_[static_cast<std::size_t>(switchNode)]) {
    ++counters_.drop(DropReason::kNodeDown);
    return;
  }
  // Permanent punt rule for the reserved control address (Sec 2): such
  // packets go to the controller over the control network, never through
  // the flow table.
  if (packet.dst == dz::kControlAddress) {
    // Never reached on a worker: packetShardKey marks punts kNoShard, so a
    // run containing one executes sequentially (the controller may install
    // flows that later same-timestamp events must observe).
    assert(!Simulator::staging());
    ++counters_.packetsPuntedToController;
    if (packetIn_) packetIn_(switchNode, inPort, std::move(packet));
    return;
  }
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  if (--packet.hopLimit < 0) {
    ++counters_.drop(DropReason::kHopLimit);
    if (tracing) {
      tracer_->instant(packet.eventId(), packet.traceSpan, "drop.hop_limit",
                       sim_.now(), switchNode);
    }
    return;
  }
  const FlowEntry* entry =
      tables_[static_cast<std::size_t>(switchNode)].lookup(packet.dst);
  if (entry == nullptr) {
    if (failSoft_) {
      // Fail-soft: park the miss for replay after the failover repair
      // instead of dropping. The buffer is this switch's own state, so
      // the per-node sharding contract holds.
      auto& buffer = missBuffers_[static_cast<std::size_t>(switchNode)];
      if (buffer.size() < config_.missBufferCapacity) {
        ++counters_.packetsBufferedOnMiss;
        if (tracing) {
          tracer_->instant(packet.eventId(), packet.traceSpan,
                           "tcam_miss_buffered", sim_.now(), switchNode);
        }
        buffer.push_back(ParkedMiss{inPort, std::move(packet)});
      } else {
        ++counters_.drop(DropReason::kMissBuffer);
        if (tracing) {
          tracer_->instant(packet.eventId(), packet.traceSpan,
                           "drop.miss_buffer_full", sim_.now(), switchNode);
        }
      }
      return;
    }
    ++counters_.drop(DropReason::kNoMatch);
    if (tracing) {
      tracer_->instant(packet.eventId(), packet.traceSpan, "tcam_miss",
                       sim_.now(), switchNode);
    }
    return;
  }
  if (tracing) {
    const obs::SpanId hop =
        tracer_->instant(packet.eventId(), packet.traceSpan, "tcam_match",
                         sim_.now(), switchNode);
    tracer_->annotate(hop, "entry", entry->match.toString());
    tracer_->annotate(hop, "priority", std::to_string(entry->priority));
    tracer_->annotate(hop, "fanout", std::to_string(entry->actions.size()));
    packet.traceSpan = hop;  // forwarded copies chain off this hop
  }
  // Fan-out copies share the payload: only the small header is duplicated.
  // The incoming packet itself is moved into the last eligible action, so a
  // unicast hop never touches the payload refcount at all.
  const FlowAction* lastAction = nullptr;
  for (const FlowAction& action : entry->actions) {
    if (action.port != inPort) lastAction = &action;
  }
  if (lastAction == nullptr) {
    // Matched, but every action reflects out the ingress port: the packet
    // has nowhere to go. Counted so the conservation invariant closes.
    ++counters_.drop(DropReason::kNoEgress);
    return;
  }
  ++counters_.packetsConsumedAtSwitch;
  for (const FlowAction& action : entry->actions) {
    if (action.port == inPort) continue;  // never reflect out the ingress
    ++counters_.packetsForwarded;
    if (&action == lastAction) {
      if (action.setDestination) packet.dst = *action.setDestination;
      transmit(switchNode, action.port, std::move(packet));
      break;
    }
    Packet out = packet;
    if (action.setDestination) out.dst = *action.setDestination;
    transmit(switchNode, action.port, std::move(out));
  }
}

void Network::receiveAtHost(NodeId host, Packet&& packet) {
  HostState& state = hostState_[static_cast<std::size_t>(host)];
  if (tracer_ != nullptr && tracer_->enabled()) {
    packet.traceSpan = tracer_->instant(packet.eventId(), packet.traceSpan,
                                        "host_deliver", sim_.now(), host);
  }
  if (config_.hostServiceTime == 0) {
    ++counters_.packetsDeliveredToHosts;
    if (deliver_) {
      // On a worker, defer the callback to the coordinator's merge phase:
      // user callbacks stay single-threaded and fire in canonical order.
      if (Simulator::staging()) {
        sim_.stageCallback(*this, kCbDeliver, host, kInvalidPort,
                           std::move(packet));
      } else {
        deliver_(host, packet);
      }
    }
    return;
  }
  if (state.queued >= config_.hostQueueCapacity) {
    ++counters_.drop(DropReason::kHostQueue);
    return;
  }
  ++state.queued;
  const SimTime start = std::max(sim_.now(), state.busyUntil);
  state.busyUntil = start + config_.hostServiceTime;
  sim_.schedulePacketAt(state.busyUntil, *this, PacketEventKind::kHostService,
                        host, kInvalidPort, std::move(packet));
}

void Network::hostServiceDone(NodeId host, Packet&& packet) {
  --hostState_[static_cast<std::size_t>(host)].queued;
  ++counters_.packetsDeliveredToHosts;
  if (deliver_) {
    if (Simulator::staging()) {
      sim_.stageCallback(*this, kCbDeliver, host, kInvalidPort,
                         std::move(packet));
    } else {
      deliver_(host, packet);
    }
  }
}

void Network::attachObservability(obs::MetricsRegistry& reg,
                                  obs::Tracer* tracer) {
  tracer_ = tracer;
  for (NodeId id = 0; id < topo_.nodeCount(); ++id) {
    if (topo_.isSwitch(id)) {
      tables_[static_cast<std::size_t>(id)].attachMetrics(reg, "flow_table");
    }
  }
}

void Network::setLinkUp(LinkId link, bool up) {
  linkUp_[static_cast<std::size_t>(link)] = up;
}

void Network::setNodeUp(NodeId node, bool up) {
  nodeUp_[static_cast<std::size_t>(node)] = up;
  if (up) return;
  // A failed switch loses its TCAM contents; it reboots empty. Packets it
  // had parked in fail-soft mode die with it.
  if (topo_.isSwitch(node)) {
    tables_[static_cast<std::size_t>(node)].clear();
    auto& buffer = missBuffers_[static_cast<std::size_t>(node)];
    counters_.drop(DropReason::kNodeDown) += buffer.size();
    buffer.clear();
  }
  // Backpressure buffers of the node's outbound link directions die too
  // (any node kind: hosts park on their access link as well). A pending
  // retry timer still fires but finds the buffer empty and disarms.
  for (const LinkId lid : topo_.node(node).portLinks) {
    if (lid == kInvalidLink) continue;
    LinkDirState& dir = dirState(lid, node);
    const std::size_t lost = dir.parkedCount();
    if (lost == 0) continue;
    counters_.drop(DropReason::kNodeDown) += lost;
    dir.parked.clear();
    dir.parkedHead = 0;
  }
}

std::size_t Network::releaseMissBuffers() {
  std::size_t replayed = 0;
  for (NodeId node = 0; node < topo_.nodeCount(); ++node) {
    auto& buffer = missBuffers_[static_cast<std::size_t>(node)];
    if (buffer.empty()) continue;
    // Move the buffer out first: if the flow is *still* missing and
    // fail-soft is still on, the replayed packet re-parks into a fresh
    // buffer instead of extending the one being drained.
    std::vector<ParkedMiss> parked;
    parked.swap(buffer);
    for (ParkedMiss& miss : parked) {
      ++replayed;
      ++counters_.packetsReplayedFromMissBuffer;
      processAtSwitch(node, miss.inPort, std::move(miss.packet));
    }
  }
  return replayed;
}

std::size_t Network::missBufferedPackets() const {
  std::size_t total = 0;
  for (const auto& buffer : missBuffers_) total += buffer.size();
  return total;
}

// ---- link queues / backpressure (DESIGN.md §15) ----------------------------

void Network::setLinkQueueCapacity(LinkId link, std::size_t capacity) {
  linkQueueCap_[static_cast<std::size_t>(link)] = capacity;
}

std::size_t Network::drainQueue(LinkDirState& dir, SimTime now) {
  while (dir.txHead < dir.txEnds.size() && dir.txEnds[dir.txHead] <= now) {
    ++dir.txHead;
  }
  if (dir.txHead == dir.txEnds.size()) {
    dir.txEnds.clear();
    dir.txHead = 0;
  }
  return dir.txEnds.size() - dir.txHead;
}

void Network::enqueueOnLink(LinkId link, LinkDirState& dir, NodeId fromNode,
                            Packet&& packet) {
  const Link& l = topo_.link(link);
  LinkCounters& lc = linkCounters_[static_cast<std::size_t>(link)];
  ++lc.packets;
  lc.bytes += static_cast<std::uint64_t>(packet.sizeBytes);
  SimTime serialization = 0;
  if (l.bandwidthBps > 0.0) {
    serialization = static_cast<SimTime>(
        std::llround(static_cast<double>(packet.sizeBytes) * 8.0 /
                     l.bandwidthBps * static_cast<double>(kSecond)));
  }
  const SimTime now = sim_.now();
  const SimTime txStart = std::max(now, dir.busyUntil);
  const SimTime txEnd = txStart + serialization;
  dir.busyUntil = txEnd;
  dir.txEnds.push_back(txEnd);
  const std::size_t depth = dir.txEnds.size() - dir.txHead;
  if (depth > dir.peakDepth) dir.peakDepth = depth;
  const LinkEnd to = l.peerOf(fromNode);
  sim_.schedulePacketAt(txEnd + l.latency, *this, PacketEventKind::kArrive,
                        to.node, to.port, std::move(packet));
}

void Network::armRetry(LinkDirState& dir, NodeId fromNode, PortId outPort) {
  if (dir.retryPending) return;
  dir.retryPending = true;
  if (dir.backoff == 0) {
    dir.backoff = config_.backpressureBackoff;
  } else {
    dir.backoff = std::min(dir.backoff * 2, config_.backpressureBackoffCap);
  }
  // The timer event carries an empty Packet; its (node, port) names the
  // direction. Worker-side schedules are staged and replayed in canonical
  // order, and the delay is computed from virtual time only, so retries
  // are deterministic across thread counts.
  sim_.schedulePacket(dir.backoff, *this, PacketEventKind::kLinkRetry,
                      fromNode, outPort, Packet{});
}

void Network::linkRetry(NodeId fromNode, PortId outPort) {
  const LinkId lid = topo_.linkAt(fromNode, outPort);
  assert(lid != kInvalidLink);
  LinkDirState& dir = dirState(lid, fromNode);
  dir.retryPending = false;
  ++counters_.backpressureRetries;
  if (dir.parkedCount() == 0) {
    dir.backoff = 0;
    return;
  }
  // The node or link may have failed while packets sat parked: dispose of
  // the buffer so no packet is stranded forever.
  if (!nodeUp_[static_cast<std::size_t>(fromNode)]) {
    counters_.drop(DropReason::kNodeDown) += dir.parkedCount();
    dir.parked.clear();
    dir.parkedHead = 0;
    dir.backoff = 0;
    return;
  }
  if (!linkUp_[static_cast<std::size_t>(lid)]) {
    counters_.drop(DropReason::kLinkDown) += dir.parkedCount();
    dir.parked.clear();
    dir.parkedHead = 0;
    dir.backoff = 0;
    return;
  }
  const std::size_t capacity = linkQueueCap_[static_cast<std::size_t>(lid)];
  std::size_t depth = drainQueue(dir, sim_.now());
  while (dir.parkedCount() > 0 && (capacity == 0 || depth < capacity)) {
    ++counters_.packetsResumedFromBackpressure;
    enqueueOnLink(lid, dir, fromNode, std::move(dir.parked[dir.parkedHead]));
    ++dir.parkedHead;
    ++depth;
  }
  if (dir.parkedCount() == 0) {
    dir.parked.clear();
    dir.parkedHead = 0;
    dir.backoff = 0;
  } else {
    armRetry(dir, fromNode, outPort);
  }
}

void Network::transmit(NodeId fromNode, PortId outPort, Packet&& packet) {
  if (!nodeUp_[static_cast<std::size_t>(fromNode)]) {
    ++counters_.drop(DropReason::kNodeDown);
    return;
  }
  const LinkId lid = topo_.linkAt(fromNode, outPort);
  if (lid == kInvalidLink) {
    // Dangling port: nothing is attached, the packet has no egress.
    ++counters_.drop(DropReason::kNoEgress);
    return;
  }
  if (!linkUp_[static_cast<std::size_t>(lid)]) {
    ++counters_.drop(DropReason::kLinkDown);
    return;
  }
  const std::size_t capacity = linkQueueCap_[static_cast<std::size_t>(lid)];
  if (capacity == 0) {
    // Legacy contention-free link: transmissions propagate independently
    // (serialization delay without occupancy), nothing queues or drops.
    const Link& link = topo_.link(lid);
    LinkCounters& lc = linkCounters_[static_cast<std::size_t>(lid)];
    ++lc.packets;
    lc.bytes += static_cast<std::uint64_t>(packet.sizeBytes);
    SimTime delay = link.latency;
    if (link.bandwidthBps > 0.0) {
      delay += static_cast<SimTime>(
          std::llround(static_cast<double>(packet.sizeBytes) * 8.0 /
                       link.bandwidthBps * static_cast<double>(kSecond)));
    }
    const LinkEnd to = link.peerOf(fromNode);
    sim_.schedulePacket(delay, *this, PacketEventKind::kArrive, to.node,
                        to.port, std::move(packet));
    return;
  }
  LinkDirState& dir = dirState(lid, fromNode);
  const std::size_t depth = drainQueue(dir, sim_.now());
  // FIFO: while packets are parked, new arrivals must line up behind them
  // even if the queue momentarily has room.
  if (depth >= capacity || dir.parkedCount() > 0) {
    if (config_.backpressure) {
      if (dir.parkedCount() < config_.backpressureBufferCapacity) {
        ++counters_.packetsParkedOnBackpressure;
        dir.parked.push_back(std::move(packet));
        armRetry(dir, fromNode, outPort);
        return;
      }
      ++counters_.drop(DropReason::kBackpressure);
      ++linkCounters_[static_cast<std::size_t>(lid)].queueDrops;
      return;
    }
    ++counters_.drop(DropReason::kLinkQueue);
    ++linkCounters_[static_cast<std::size_t>(lid)].queueDrops;
    return;
  }
  enqueueOnLink(lid, dir, fromNode, std::move(packet));
}

std::size_t Network::linkQueueDepth(LinkId link) const {
  const auto base = 2 * static_cast<std::size_t>(link);
  const SimTime now = sim_.now();
  return linkDirs_[base].depth(now) + linkDirs_[base + 1].depth(now);
}

std::size_t Network::peakLinkQueueDepth(LinkId link) const {
  const auto base = 2 * static_cast<std::size_t>(link);
  return std::max(linkDirs_[base].peakDepth, linkDirs_[base + 1].peakDepth);
}

std::size_t Network::backpressureParkedPackets() const {
  std::size_t total = 0;
  for (const LinkDirState& dir : linkDirs_) total += dir.parkedCount();
  return total;
}

Network::Stats Network::stats() const {
  Stats s;
  for (const HostState& h : hostState_) s.hostQueued += h.queued;
  const SimTime now = sim_.now();
  for (const LinkDirState& dir : linkDirs_) {
    s.linkQueued += dir.depth(now);
    s.backpressureParked += dir.parkedCount();
    if (dir.peakDepth > s.peakLinkQueueDepth) {
      s.peakLinkQueueDepth = dir.peakDepth;
    }
  }
  s.missBuffered = missBufferedPackets();
  return s;
}

std::uint64_t Network::totalLinkBytes() const {
  std::uint64_t total = 0;
  for (const auto& lc : linkCounters_) total += lc.bytes;
  return total;
}

}  // namespace pleroma::net
