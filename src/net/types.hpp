// Shared plain types of the network substrate.
#pragma once

#include <cstdint>

namespace pleroma::net {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * 1000;
inline constexpr SimTime kSecond = 1000 * 1000 * 1000;

/// Node identifier: index into the topology's node vector. Hosts and
/// switches share one id space.
using NodeId = int;
inline constexpr NodeId kInvalidNode = -1;

/// Port identifier, local to a node; assigned densely from 1 upwards (port
/// numbers in OpenFlow are 1-based; 0 is reserved as "invalid/none").
using PortId = int;
inline constexpr PortId kInvalidPort = 0;

}  // namespace pleroma::net
