#include "net/simulator.hpp"

#include <cassert>
#include <chrono>
#include <utility>

namespace pleroma::net {

namespace {
/// Accumulates the wall-clock duration of a run loop into `sink`.
class WallClockScope {
 public:
  explicit WallClockScope(std::uint64_t& sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~WallClockScope() {
    sink_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::uint64_t& sink_;
  std::chrono::steady_clock::time_point start_;
};
}  // namespace

void Simulator::enqueue(SimTime when, std::uint32_t taggedSlot) {
  assert(when >= now_);
  if (cacheValid_ && when == cacheWhen_) {
    // Same timestamp as the most recently opened run: append to its FIFO.
    // The run's heap entry is untouched — it keeps the first event's
    // sequence number, and every event appended here is newer than the
    // first event of any other same-time run, so ordering is preserved.
    runs_[cacheRun_].extra.push_back(taggedSlot);
  } else {
    std::uint32_t r;
    if (!freeRuns_.empty()) {
      r = freeRuns_.back();
      freeRuns_.pop_back();
      Run& run = runs_[r];
      run.first = taggedSlot;
      run.head = 0;
      run.extra.clear();  // capacity retained
    } else {
      runs_.push_back(Run{taggedSlot, 0, {}});
      r = static_cast<std::uint32_t>(runs_.size() - 1);
    }
    queue_.push(Item{when, nextSeq_, r});
    cacheValid_ = true;
    cacheWhen_ = when;
    cacheRun_ = r;
  }
  ++nextSeq_;
  ++pendingCount_;
}

thread_local Simulator::WorkerStage* Simulator::tlsStage_ = nullptr;

void Simulator::scheduleAt(SimTime when, SmallTask action) {
  if (WorkerStage* st = tlsStage_) {
    // Parallel region: capture instead of enqueueing. Replayed on the
    // coordinator in canonical order with a fresh sequence number.
    StagedEffect e;
    e.kind = StagedEffect::Kind::kTask;
    e.when = when;
    e.task = std::move(action);
    st->effects.push_back(std::move(e));
    return;
  }
  const std::uint32_t slot = tasks_.put(std::move(action));
  assert((slot & kPacketLane) == 0);
  enqueue(when, slot);
}

void Simulator::schedulePacketAt(SimTime when, PacketSink& sink,
                                 PacketEventKind kind, NodeId node,
                                 PortId port, Packet packet) {
  if (WorkerStage* st = tlsStage_) {
    StagedEffect e;
    e.kind = StagedEffect::Kind::kPacket;
    e.packetKind = kind;
    e.node = node;
    e.port = port;
    e.when = when;
    e.sink = &sink;
    e.packet = std::move(packet);
    st->effects.push_back(std::move(e));
    return;
  }
  std::uint32_t slot;
  if (!packets_.freeList.empty()) {
    slot = packets_.freeList.back();
    packets_.freeList.pop_back();
    PacketEvent& ev = packets_.slots[slot];
    ev.sink = &sink;
    ev.node = node;
    ev.port = port;
    ev.kind = kind;
    ev.packet = std::move(packet);
  } else {
    packets_.slots.push_back(
        PacketEvent{&sink, node, port, kind, std::move(packet)});
    slot = static_cast<std::uint32_t>(packets_.slots.size() - 1);
  }
  assert((slot & kPacketLane) == 0);
  enqueue(when, slot | kPacketLane);
}

std::uint32_t Simulator::takeNext() {
  const Item top = queue_.top();
  Run& run = runs_[top.run];
  std::uint32_t slot;
  if (run.head == 0) {
    slot = run.first;
    run.head = 1;
  } else {
    slot = run.extra[run.head - 1];
    ++run.head;
  }
  if (run.head - 1 == run.extra.size()) {
    // Exhausted: recycle the run before dispatching, so a handler that
    // schedules reuses it while it is still cache-hot. A delay-0 event
    // scheduled by the dispatched handler simply opens a fresh run.
    queue_.pop();
    freeRuns_.push_back(top.run);
    if (cacheValid_ && cacheRun_ == top.run) cacheValid_ = false;
  }
  --pendingCount_;
  return slot;
}

void Simulator::dispatch(std::uint32_t taggedSlot) {
  // Copy the event out of its slot and free the slot *before* invoking:
  // the handler may schedule (growing the slab, invalidating references)
  // and benefits from immediately reusing this still-hot slot.
  if (taggedSlot & kPacketLane) {
    const std::uint32_t slot = taggedSlot & ~kPacketLane;
    PacketEvent& ev = packets_.slots[slot];
    PacketSink* const sink = ev.sink;
    const PacketEventKind kind = ev.kind;
    const NodeId node = ev.node;
    const PortId port = ev.port;
    Packet packet = std::move(ev.packet);
    packets_.freeList.push_back(slot);
    sink->onPacketEvent(kind, node, port, std::move(packet));
  } else {
    SmallTask task = std::move(tasks_.slots[taggedSlot]);
    tasks_.freeList.push_back(taggedSlot);
    task();
  }
}

void Simulator::stageCallback(PacketSink& sink, int kind, NodeId node,
                              PortId port, Packet&& packet) {
  WorkerStage* const st = tlsStage_;
  assert(st != nullptr);
  StagedEffect e;
  e.kind = StagedEffect::Kind::kCallback;
  e.callbackKind = kind;
  e.node = node;
  e.port = port;
  e.sink = &sink;
  e.packet = std::move(packet);
  st->effects.push_back(std::move(e));
}

void Simulator::replay(StagedEffect& e) {
  switch (e.kind) {
    case StagedEffect::Kind::kPacket:
      schedulePacketAt(e.when, *e.sink, e.packetKind, e.node, e.port,
                       std::move(e.packet));
      break;
    case StagedEffect::Kind::kTask:
      scheduleAt(e.when, std::move(e.task));
      break;
    case StagedEffect::Kind::kCallback:
      e.sink->onStagedCallback(e.callbackKind, e.node, e.port,
                               std::move(e.packet));
      break;
  }
}

std::size_t Simulator::tryRunParallel() {
  if (pool_ == nullptr || pool_->threads() <= 1) return 0;
  const Item top = queue_.top();
  {
    const Run& run = runs_[top.run];
    // A partially-consumed run (runUntil stopped inside it, or an earlier
    // event of it already dispatched sequentially) stays sequential.
    if (run.head != 0) return 0;
    const std::size_t n = run.extra.size() + 1;
    if (n < parallelThreshold_) return 0;
    const int workers = pool_->threads();
    runSlots_.clear();
    shardOf_.clear();
    runSlots_.reserve(n);
    shardOf_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t tagged = i == 0 ? run.first : run.extra[i - 1];
      // Slow-lane tasks are arbitrary closures — no shard contract.
      if ((tagged & kPacketLane) == 0) return 0;
      const PacketEvent& ev = packets_.slots[tagged & ~kPacketLane];
      const std::int64_t key =
          ev.sink->packetShardKey(ev.kind, ev.node, ev.port, ev.packet);
      if (key < 0) return 0;
      runSlots_.push_back(tagged);
      int w = -1;
      if (static_cast<std::uint64_t>(key) < placement_.size()) {
        w = placement_[static_cast<std::size_t>(key)];
      }
      if (w < 0 || w >= workers) {
        w = static_cast<int>(key % static_cast<std::int64_t>(workers));
      }
      shardOf_.push_back(w);
    }
  }
  const std::size_t n = runSlots_.size();
  // Committed. Pop and recycle the run *before* executing, mirroring the
  // sequential path's recycle-before-dispatch: a delay-0 effect replayed
  // below then opens a fresh run instead of appending to a recycled one.
  queue_.pop();
  freeRuns_.push_back(top.run);
  if (cacheValid_ && cacheRun_ == top.run) cacheValid_ = false;
  pendingCount_ -= n;

  const int workers = pool_->threads();
  if (stages_.size() < static_cast<std::size_t>(workers)) {
    stages_.resize(static_cast<std::size_t>(workers));
  }
  // Worker phase: each worker executes its shard's events in canonical
  // order, capturing every side effect into its own staging buffer. The
  // sharding invariant (one worker per target node) makes per-node state
  // single-writer; shared aggregates are relaxed atomics; the pool's
  // fork/join barrier publishes everything back to this thread.
  pool_->run([this](int w) {
    WorkerStage& st = stages_[static_cast<std::size_t>(w)];
    st.effects.clear();
    st.ranges.clear();
    tlsStage_ = &st;
    const std::size_t count = runSlots_.size();
    for (std::size_t i = 0; i < count; ++i) {
      if (shardOf_[i] != w) continue;
      PacketEvent& ev = packets_.slots[runSlots_[i] & ~kPacketLane];
      const auto begin = static_cast<std::uint32_t>(st.effects.size());
      ev.sink->onPacketEvent(ev.kind, ev.node, ev.port, std::move(ev.packet));
      st.ranges.push_back(
          WorkerStage::Range{static_cast<std::uint32_t>(i), begin,
                             static_cast<std::uint32_t>(st.effects.size())});
    }
    tlsStage_ = nullptr;
  });
  // The packets were moved out by the workers; now the slots can rejoin
  // the free list (coordinator-only, so after the join).
  for (const std::uint32_t tagged : runSlots_) {
    packets_.freeList.push_back(tagged & ~kPacketLane);
  }
  // Merge phase: replay each event's effects in canonical run order. This
  // reproduces the exact sequence of enqueue and callback invocations the
  // sequential build performs, so sequence numbers, queue state, and
  // callback order come out byte-identical.
  mergeCursor_.assign(static_cast<std::size_t>(workers), 0);
  for (std::size_t i = 0; i < n; ++i) {
    WorkerStage& st = stages_[static_cast<std::size_t>(shardOf_[i])];
    const WorkerStage::Range r =
        st.ranges[mergeCursor_[static_cast<std::size_t>(shardOf_[i])]++];
    assert(r.event == i);
    for (std::uint32_t j = r.begin; j != r.end; ++j) replay(st.effects[j]);
  }
  ++parallelRuns_;
  parallelEvents_ += n;
  processed_ += n;
  return n;
}

std::size_t Simulator::run() {
  const WallClockScope wall(wallNanos_);
  std::size_t count = 0;
  while (!queue_.empty()) {
    now_ = queue_.top().when;
    const std::size_t par = tryRunParallel();
    if (par != 0) {
      count += par;
      continue;
    }
    dispatch(takeNext());
    ++count;
    ++processed_;
  }
  return count;
}

std::size_t Simulator::runUntil(SimTime until) {
  const WallClockScope wall(wallNanos_);
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    now_ = queue_.top().when;
    const std::size_t par = tryRunParallel();
    if (par != 0) {
      count += par;
      continue;
    }
    dispatch(takeNext());
    ++count;
    ++processed_;
  }
  if (now_ < until) now_ = until;
  return count;
}

}  // namespace pleroma::net
