#include "net/simulator.hpp"

#include <cassert>
#include <chrono>
#include <utility>

namespace pleroma::net {

namespace {
/// Accumulates the wall-clock duration of a run loop into `sink`.
class WallClockScope {
 public:
  explicit WallClockScope(std::uint64_t& sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~WallClockScope() {
    sink_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::uint64_t& sink_;
  std::chrono::steady_clock::time_point start_;
};
}  // namespace

void Simulator::enqueue(SimTime when, std::uint32_t taggedSlot) {
  assert(when >= now_);
  if (cacheValid_ && when == cacheWhen_) {
    // Same timestamp as the most recently opened run: append to its FIFO.
    // The run's heap entry is untouched — it keeps the first event's
    // sequence number, and every event appended here is newer than the
    // first event of any other same-time run, so ordering is preserved.
    runs_[cacheRun_].extra.push_back(taggedSlot);
  } else {
    std::uint32_t r;
    if (!freeRuns_.empty()) {
      r = freeRuns_.back();
      freeRuns_.pop_back();
      Run& run = runs_[r];
      run.first = taggedSlot;
      run.head = 0;
      run.extra.clear();  // capacity retained
    } else {
      runs_.push_back(Run{taggedSlot, 0, {}});
      r = static_cast<std::uint32_t>(runs_.size() - 1);
    }
    queue_.push(Item{when, nextSeq_, r});
    cacheValid_ = true;
    cacheWhen_ = when;
    cacheRun_ = r;
  }
  ++nextSeq_;
  ++pendingCount_;
}

void Simulator::scheduleAt(SimTime when, SmallTask action) {
  const std::uint32_t slot = tasks_.put(std::move(action));
  assert((slot & kPacketLane) == 0);
  enqueue(when, slot);
}

void Simulator::schedulePacketAt(SimTime when, PacketSink& sink,
                                 PacketEventKind kind, NodeId node,
                                 PortId port, Packet packet) {
  std::uint32_t slot;
  if (!packets_.freeList.empty()) {
    slot = packets_.freeList.back();
    packets_.freeList.pop_back();
    PacketEvent& ev = packets_.slots[slot];
    ev.sink = &sink;
    ev.node = node;
    ev.port = port;
    ev.kind = kind;
    ev.packet = std::move(packet);
  } else {
    packets_.slots.push_back(
        PacketEvent{&sink, node, port, kind, std::move(packet)});
    slot = static_cast<std::uint32_t>(packets_.slots.size() - 1);
  }
  assert((slot & kPacketLane) == 0);
  enqueue(when, slot | kPacketLane);
}

std::uint32_t Simulator::takeNext() {
  const Item top = queue_.top();
  Run& run = runs_[top.run];
  std::uint32_t slot;
  if (run.head == 0) {
    slot = run.first;
    run.head = 1;
  } else {
    slot = run.extra[run.head - 1];
    ++run.head;
  }
  if (run.head - 1 == run.extra.size()) {
    // Exhausted: recycle the run before dispatching, so a handler that
    // schedules reuses it while it is still cache-hot. A delay-0 event
    // scheduled by the dispatched handler simply opens a fresh run.
    queue_.pop();
    freeRuns_.push_back(top.run);
    if (cacheValid_ && cacheRun_ == top.run) cacheValid_ = false;
  }
  --pendingCount_;
  return slot;
}

void Simulator::dispatch(std::uint32_t taggedSlot) {
  // Copy the event out of its slot and free the slot *before* invoking:
  // the handler may schedule (growing the slab, invalidating references)
  // and benefits from immediately reusing this still-hot slot.
  if (taggedSlot & kPacketLane) {
    const std::uint32_t slot = taggedSlot & ~kPacketLane;
    PacketEvent& ev = packets_.slots[slot];
    PacketSink* const sink = ev.sink;
    const PacketEventKind kind = ev.kind;
    const NodeId node = ev.node;
    const PortId port = ev.port;
    Packet packet = std::move(ev.packet);
    packets_.freeList.push_back(slot);
    sink->onPacketEvent(kind, node, port, std::move(packet));
  } else {
    SmallTask task = std::move(tasks_.slots[taggedSlot]);
    tasks_.freeList.push_back(taggedSlot);
    task();
  }
}

std::size_t Simulator::run() {
  const WallClockScope wall(wallNanos_);
  std::size_t count = 0;
  while (!queue_.empty()) {
    now_ = queue_.top().when;
    dispatch(takeNext());
    ++count;
    ++processed_;
  }
  return count;
}

std::size_t Simulator::runUntil(SimTime until) {
  const WallClockScope wall(wallNanos_);
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    now_ = queue_.top().when;
    dispatch(takeNext());
    ++count;
    ++processed_;
  }
  if (now_ < until) now_ = until;
  return count;
}

}  // namespace pleroma::net
