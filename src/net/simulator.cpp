#include "net/simulator.hpp"

#include <cassert>
#include <chrono>
#include <utility>

namespace pleroma::net {

namespace {
/// Accumulates the wall-clock duration of a run loop into `sink`.
class WallClockScope {
 public:
  explicit WallClockScope(std::uint64_t& sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~WallClockScope() {
    sink_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::uint64_t& sink_;
  std::chrono::steady_clock::time_point start_;
};
}  // namespace

void Simulator::scheduleAt(SimTime when, std::function<void()> action) {
  assert(when >= now_);
  queue_.push(Item{when, nextSeq_++, std::move(action)});
}

std::size_t Simulator::run() {
  const WallClockScope wall(wallNanos_);
  std::size_t count = 0;
  while (!queue_.empty()) {
    // std::priority_queue::top is const; moving the action out requires the
    // const_cast idiom (the element is removed immediately after).
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    now_ = item.when;
    item.action();
    ++count;
    ++processed_;
  }
  return count;
}

std::size_t Simulator::runUntil(SimTime until) {
  const WallClockScope wall(wallNanos_);
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    now_ = item.when;
    item.action();
    ++count;
    ++processed_;
  }
  if (now_ < until) now_ = until;
  return count;
}

}  // namespace pleroma::net
