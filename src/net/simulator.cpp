#include "net/simulator.hpp"

#include <cassert>
#include <utility>

namespace pleroma::net {

void Simulator::scheduleAt(SimTime when, std::function<void()> action) {
  assert(when >= now_);
  queue_.push(Item{when, nextSeq_++, std::move(action)});
}

std::size_t Simulator::run() {
  std::size_t count = 0;
  while (!queue_.empty()) {
    // std::priority_queue::top is const; moving the action out requires the
    // const_cast idiom (the element is removed immediately after).
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    now_ = item.when;
    item.action();
    ++count;
    ++processed_;
  }
  return count;
}

std::size_t Simulator::runUntil(SimTime until) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    now_ = item.when;
    item.action();
    ++count;
    ++processed_;
  }
  if (now_ < until) now_ = until;
  return count;
}

}  // namespace pleroma::net
