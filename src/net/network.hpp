// The data-plane runtime: instantiates a Topology into live switches (each
// with a TCAM FlowTable) and hosts, and moves packets hop by hop under the
// discrete-event clock.
//
// Semantics modelled after the testbed (Sec 6.1-6.3):
//  * Switch: per-packet processing delay independent of flow-table size
//    (the TCAM property Fig 7a demonstrates), then the instruction set of
//    the highest-priority matching flow is applied. Packets are never sent
//    back out their ingress port (OpenFlow output semantics), which keeps
//    forwarding loop-free on the controller's tree-shaped flow sets.
//  * Packets addressed to the reserved IP_mid are always punted to the
//    controller (a permanent highest-priority punt rule; "no switch will
//    install a flow with respect to IP_mid", Sec 2).
//  * Host: a single-server queue with configurable service time and finite
//    buffer. This is the end-host processing limitation responsible for the
//    throughput saturation of Fig 7c.
//  * Link (opt-in, DESIGN.md §15): a finite FIFO transmit queue per link
//    direction. With NetworkConfig::linkQueueCapacity > 0 each direction
//    serializes packets onto the wire at the link's bandwidth; packets
//    beyond the queue capacity are dropped (DropReason::kLinkQueue) or —
//    with backpressure enabled — parked at the upstream node in a bounded
//    buffer and re-admitted after a capped exponential backoff.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/flow_table.hpp"
#include "net/packet.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "obs/trace.hpp"
#include "util/relaxed_counter.hpp"

namespace pleroma::net {

/// Every way the data plane disposes of a packet without delivering it.
/// One taxonomy for all layers (switch pipeline, links, hosts, buffers), so
/// benches and the conservation property test count drops consistently.
enum class DropReason : std::uint8_t {
  kNoMatch = 0,   ///< TCAM miss outside fail-soft mode
  kHopLimit,      ///< TTL expired in the switch pipeline
  kLinkDown,      ///< transmitted onto a failed link
  kNodeDown,      ///< node down at arrival/transmit, or buffers died with it
  kHostQueue,     ///< host receive buffer full
  kMissBuffer,    ///< fail-soft miss buffer over budget
  kLinkQueue,     ///< finite link queue full (no backpressure)
  kBackpressure,  ///< backpressure park buffer over budget
  kNoEgress,      ///< matched entry with no usable output (or dangling port)
};
inline constexpr std::size_t kDropReasonCount = 9;

/// Stable snake_case name, used for metrics ("net.drops_<name>"), the CLI
/// `stats` command and bench report columns.
const char* dropReasonName(DropReason reason) noexcept;

struct NetworkConfig {
  /// Fixed per-packet forwarding latency inside a switch.
  SimTime switchProcessingDelay = 10 * kMicrosecond;
  /// Per-packet processing time at a receiving host; 0 = infinitely fast.
  SimTime hostServiceTime = 0;
  /// Receive buffer (packets) per host; arrivals beyond it are dropped.
  std::size_t hostQueueCapacity = 1024;
  /// TCAM capacity per switch; 0 = unlimited.
  std::size_t flowTableCapacity = 0;
  /// Per-switch miss-buffer budget (packets) while fail-soft mode is
  /// engaged; misses beyond the budget fall back to counted drops.
  std::size_t missBufferCapacity = 128;
  // ---- congestion model (DESIGN.md §15) --------------------------------
  /// Finite FIFO transmit queue per link *direction* (packets, including
  /// the one on the wire). 0 = legacy contention-free links: every
  /// transmission propagates independently and nothing ever queues.
  /// Overridable per link via Network::setLinkQueueCapacity.
  std::size_t linkQueueCapacity = 0;
  /// When a link queue is full, park the packet at the upstream node and
  /// retry after a backoff instead of dropping it.
  bool backpressure = false;
  /// Bounded park buffer per link direction while backpressure is on;
  /// packets beyond it are dropped (DropReason::kBackpressure).
  std::size_t backpressureBufferCapacity = 64;
  /// First retry delay after a full-queue park; doubles per idle retry up
  /// to backpressureBackoffCap.
  SimTime backpressureBackoff = 10 * kMicrosecond;
  SimTime backpressureBackoffCap = 160 * kMicrosecond;
};

/// Network-wide counters. Multi-writer relaxed atomics: during parallel
/// run execution workers on different node shards bump the same aggregate
/// counter concurrently (DESIGN.md §10).
///
/// Conservation contract (CongestionConservation test): packet instances
/// are born by host sends, controller injections and switch fan-out
/// copies, and each instance reaches exactly one terminal — delivery,
/// punt, consumption at a switch (its continuations are the fan-out
/// copies), a counted drop, or residence in a park buffer. At simulator
/// quiescence:
///   sentFromHosts + injectedByController + packetsForwarded ==
///   delivered + punted + consumedAtSwitch + totalDropped()
///   + missBufferedPackets() + backpressureParkedPackets().
struct NetworkCounters {
  util::RelaxedCounter packetsForwarded = 0;  ///< switch output actions executed
  util::RelaxedCounter packetsPuntedToController = 0;
  util::RelaxedCounter packetsDeliveredToHosts = 0;
  /// Admissions: packets entering the data plane at hosts / from the
  /// controller (injectAtSwitch + sendOutPort).
  util::RelaxedCounter packetsSentFromHosts = 0;
  util::RelaxedCounter packetsInjectedByController = 0;
  /// Packets that matched a flow entry and were consumed by fan-out
  /// (i.e. re-emitted as >= 1 forwarded copies).
  util::RelaxedCounter packetsConsumedAtSwitch = 0;
  // ---- fail-soft (controller failover window) --------------------------
  util::RelaxedCounter packetsBufferedOnMiss = 0;
  util::RelaxedCounter packetsReplayedFromMissBuffer = 0;
  // ---- backpressure ----------------------------------------------------
  util::RelaxedCounter packetsParkedOnBackpressure = 0;  ///< parks (cumulative)
  util::RelaxedCounter packetsResumedFromBackpressure = 0;
  util::RelaxedCounter backpressureRetries = 0;  ///< retry timer firings
  // ---- unified drop taxonomy -------------------------------------------
  std::array<util::RelaxedCounter, kDropReasonCount> drops{};

  util::RelaxedCounter& drop(DropReason reason) noexcept {
    return drops[static_cast<std::size_t>(reason)];
  }
  std::uint64_t dropped(DropReason reason) const noexcept {
    return drops[static_cast<std::size_t>(reason)];
  }
  std::uint64_t totalDropped() const noexcept {
    std::uint64_t total = 0;
    for (const auto& d : drops) total += d;
    return total;
  }
};

/// Per-link counters. Multi-writer: a link's two endpoints may live on
/// different shards and transmit onto it in the same run.
struct LinkCounters {
  util::RelaxedCounter packets = 0;
  util::RelaxedCounter bytes = 0;
  /// Packets lost to this link's full queue (both directions, cumulative;
  /// includes backpressure park-buffer overflow).
  util::RelaxedCounter queueDrops = 0;
};

class Network : public PacketSink {
 public:
  /// (switch, ingress port, packet): invoked when a switch punts a packet
  /// to its controller over the control network. The packet is moved in
  /// (the switch's copy dies at the punt); handlers taking `const Packet&`
  /// bind as well.
  using PacketInHandler = std::function<void(NodeId, PortId, Packet&&)>;
  /// (host, packet): invoked when a host finishes processing a received
  /// packet (i.e. after its service delay).
  using DeliverHandler = std::function<void(NodeId, const Packet&)>;

  Network(Topology topology, Simulator& sim, NetworkConfig config = {});

  const Topology& topology() const noexcept { return topo_; }
  Simulator& simulator() noexcept { return sim_; }

  FlowTable& flowTable(NodeId switchNode);
  const FlowTable& flowTable(NodeId switchNode) const;

  /// Budget accounting across the whole data plane: entries currently
  /// installed / peak ever installed, summed over all switch TCAMs. These
  /// are the ground-truth series the TCAM-budget benchmarks report
  /// (installed entries as seen by the switches, not controller intent).
  std::size_t totalFlowEntries() const noexcept;
  std::size_t peakFlowEntries() const noexcept;

  void setPacketInHandler(PacketInHandler handler) { packetIn_ = std::move(handler); }
  void setDeliverHandler(DeliverHandler handler) { deliver_ = std::move(handler); }

  /// Sends a packet from a host onto its access link.
  void sendFromHost(NodeId host, Packet packet);

  /// Controller-initiated packet-out: injects a packet at a switch that
  /// behaves as if received on `inPort` (kInvalidPort = none, so it may be
  /// forwarded out any port). Used for inter-controller messages (Sec 4.1).
  void injectAtSwitch(NodeId switchNode, PortId inPort, Packet packet);

  /// Controller-initiated direct output: pushes the packet out of a
  /// specific switch port, bypassing the flow table (OpenFlow PacketOut
  /// with an explicit output action).
  void sendOutPort(NodeId switchNode, PortId outPort, Packet packet);

  /// Fails / restores a link (fault injection). Packets transmitted onto a
  /// failed link are dropped; in-flight packets already past the link are
  /// unaffected. The controller reacts via Controller::onLinkDown/Up.
  void setLinkUp(LinkId link, bool up);
  bool linkUp(LinkId link) const {
    return linkUp_[static_cast<std::size_t>(link)];
  }

  /// Fails / restores a node (switch or host failure). Packets arriving at
  /// or originated by a down node are dropped. Taking a *switch* down
  /// clears its flow table: a rebooted/reconnected switch comes back with
  /// an empty TCAM and must be resynced by the controller
  /// (Controller::onSwitchUp). Packets the node had parked (fail-soft miss
  /// buffers, backpressure buffers) die with it as kNodeDown drops.
  void setNodeUp(NodeId node, bool up);
  bool nodeUp(NodeId node) const {
    return nodeUp_[static_cast<std::size_t>(node)];
  }

  /// Fail-soft mode (controller failover): while enabled, a switch keeps
  /// forwarding on its existing TCAM entries but a miss no longer drops
  /// the packet — it is parked in the switch's finite miss buffer
  /// (NetworkConfig::missBufferCapacity per switch) for replay once the
  /// promoted controller has repaired the tables; misses beyond the budget
  /// are dropped and counted. This replaces the implicit fail-open
  /// behaviour (drop every miss) for the duration of a failover window.
  void setFailSoft(bool on) noexcept { failSoft_ = on; }
  bool failSoft() const noexcept { return failSoft_; }

  /// Replays every parked packet through its switch's pipeline, in the
  /// order the switches buffered them (switch id, then arrival). Call
  /// after the repair converged — replayed packets re-run the full lookup
  /// and pay the processing delay again. Returns the number replayed.
  std::size_t releaseMissBuffers();
  /// Packets currently parked across all miss buffers.
  std::size_t missBufferedPackets() const;

  // ---- link queues / backpressure (DESIGN.md §15) -----------------------

  /// Overrides one link's queue capacity (both directions); 0 restores the
  /// legacy contention-free model for that link.
  void setLinkQueueCapacity(LinkId link, std::size_t capacity);
  std::size_t linkQueueCapacity(LinkId link) const {
    return linkQueueCap_[static_cast<std::size_t>(link)];
  }

  /// Packets currently occupying the link's transmit queues (sum of both
  /// directions, excluding parked packets) at the current virtual time.
  std::size_t linkQueueDepth(LinkId link) const;
  /// Deepest the link's queues have ever been (max over directions).
  std::size_t peakLinkQueueDepth(LinkId link) const;
  /// Packets parked across all backpressure buffers right now.
  std::size_t backpressureParkedPackets() const;

  /// Point-in-time occupancy gauges of the whole data plane, the
  /// bench-report "queued" series (DESIGN.md §15).
  struct Stats {
    std::size_t hostQueued = 0;     ///< packets in host receive queues
    std::size_t linkQueued = 0;     ///< packets in link transmit queues
    std::size_t backpressureParked = 0;
    std::size_t missBuffered = 0;
    std::size_t peakLinkQueueDepth = 0;  ///< max over all links, ever
  };
  Stats stats() const;

  /// Wires the data plane into the observability layer: every switch table
  /// resolves its metric handles against `reg` (all tables share the
  /// "flow_table.*" names, so the counters aggregate fleet-wide), and — when
  /// `tracer` is non-null — per-switch TCAM match/miss/drop records and
  /// host deliveries are traced, chained through Packet::traceSpan.
  void attachObservability(obs::MetricsRegistry& reg,
                           obs::Tracer* tracer = nullptr);

  const NetworkCounters& counters() const noexcept { return counters_; }
  const LinkCounters& linkCounters(LinkId link) const {
    return linkCounters_[static_cast<std::size_t>(link)];
  }
  std::uint64_t totalLinkBytes() const;

  /// Fast-lane dispatch target: link propagation, switch pipeline, and
  /// host service completions all arrive here from the Simulator.
  void onPacketEvent(PacketEventKind kind, NodeId node, PortId port,
                     Packet&& packet) override;

  /// Sharding contract for parallel run execution: every handler mutates
  /// only its target node's state (flow table, host queue, TCAM stats, the
  /// node's outbound link-queue directions), so the shard key is the node
  /// id. Events whose handler escapes that contract — a punt to the
  /// controller (which may install flows other same-timestamp events would
  /// observe) or any event while tracing is on (the Tracer is
  /// single-threaded and record order matters) — demand sequential
  /// execution via kNoShard.
  std::int64_t packetShardKey(PacketEventKind kind, NodeId node, PortId port,
                              const Packet& packet) const override;

  /// Replays a packet-in / deliver callback deferred by a worker, on the
  /// coordinating thread in canonical order.
  void onStagedCallback(int kind, NodeId node, PortId port,
                        Packet&& packet) override;

 private:
  /// onStagedCallback kinds.
  static constexpr int kCbPacketIn = 0;
  static constexpr int kCbDeliver = 1;

  void arriveAtNode(NodeId node, PortId inPort, Packet&& packet);
  void processAtSwitch(NodeId switchNode, PortId inPort, Packet&& packet);
  void switchPipeline(NodeId switchNode, PortId inPort, Packet&& packet);
  void receiveAtHost(NodeId host, Packet&& packet);
  void hostServiceDone(NodeId host, Packet&& packet);
  void transmit(NodeId fromNode, PortId outPort, Packet&& packet);
  void linkRetry(NodeId fromNode, PortId outPort);

  struct HostState {
    SimTime busyUntil = 0;
    std::size_t queued = 0;
  };
  /// One parked TCAM miss awaiting replay (fail-soft mode).
  struct ParkedMiss {
    PortId inPort = kInvalidPort;
    Packet packet;
  };

  /// One direction of a link's finite transmit queue plus its backpressure
  /// buffer. Owned by the *sending* node: transmit() only runs under that
  /// node's shard (switchPipeline / kLinkRetry are sharded by it; host and
  /// controller sends are sequential), so mutating this state never
  /// crosses the per-node sharding contract. Both FIFOs are flat vectors
  /// with a drained-head index, compacted when empty, so steady state
  /// recycles their capacity.
  struct LinkDirState {
    /// When the direction's serialized line frees up.
    SimTime busyUntil = 0;
    /// Serialization-completion times of queued packets; entries <= now
    /// have left the queue (drained lazily).
    std::vector<SimTime> txEnds;
    std::size_t txHead = 0;
    /// Backpressure park buffer, FIFO.
    std::vector<Packet> parked;
    std::size_t parkedHead = 0;
    /// A kLinkRetry event for this direction is already in flight.
    bool retryPending = false;
    /// Next retry delay (doubling, capped); reset when the parked buffer
    /// fully drains.
    SimTime backoff = 0;
    std::size_t peakDepth = 0;

    std::size_t depth(SimTime now) const noexcept {
      std::size_t d = 0;
      for (std::size_t i = txHead; i < txEnds.size(); ++i) {
        if (txEnds[i] > now) ++d;
      }
      return d;
    }
    std::size_t parkedCount() const noexcept {
      return parked.size() - parkedHead;
    }
  };

  /// The sending-side direction state of (fromNode, link).
  LinkDirState& dirState(LinkId link, NodeId fromNode) {
    const auto base = 2 * static_cast<std::size_t>(link);
    return linkDirs_[base + (topo_.link(link).a.node == fromNode ? 0 : 1)];
  }
  /// Drops stale txEnds entries; returns the live queue depth.
  std::size_t drainQueue(LinkDirState& dir, SimTime now);
  /// Serializes the packet onto the direction's line and schedules its
  /// arrival. Precondition: the queue has room.
  void enqueueOnLink(LinkId link, LinkDirState& dir, NodeId fromNode,
                     Packet&& packet);
  /// Schedules the direction's retry timer if none is pending.
  void armRetry(LinkDirState& dir, NodeId fromNode, PortId outPort);

  Topology topo_;
  Simulator& sim_;
  NetworkConfig config_;
  std::vector<FlowTable> tables_;   // indexed by NodeId; hosts have empty tables
  std::vector<HostState> hostState_;
  std::vector<bool> linkUp_;
  std::vector<bool> nodeUp_;
  bool failSoft_ = false;
  /// Per-node miss buffers (only switch slots are ever used). A buffer is
  /// the parking switch's own state, so fail-soft buffering stays within
  /// the per-node sharding contract of packetShardKey.
  std::vector<std::vector<ParkedMiss>> missBuffers_;
  std::vector<LinkCounters> linkCounters_;
  /// 2 entries per link: [2*l] is the a->b direction, [2*l+1] b->a.
  std::vector<LinkDirState> linkDirs_;
  /// Effective queue capacity per link (config default or override).
  std::vector<std::size_t> linkQueueCap_;
  NetworkCounters counters_;
  PacketInHandler packetIn_;
  DeliverHandler deliver_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace pleroma::net
