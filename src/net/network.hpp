// The data-plane runtime: instantiates a Topology into live switches (each
// with a TCAM FlowTable) and hosts, and moves packets hop by hop under the
// discrete-event clock.
//
// Semantics modelled after the testbed (Sec 6.1-6.3):
//  * Switch: per-packet processing delay independent of flow-table size
//    (the TCAM property Fig 7a demonstrates), then the instruction set of
//    the highest-priority matching flow is applied. Packets are never sent
//    back out their ingress port (OpenFlow output semantics), which keeps
//    forwarding loop-free on the controller's tree-shaped flow sets.
//  * Packets addressed to the reserved IP_mid are always punted to the
//    controller (a permanent highest-priority punt rule; "no switch will
//    install a flow with respect to IP_mid", Sec 2).
//  * Host: a single-server queue with configurable service time and finite
//    buffer. This is the end-host processing limitation responsible for the
//    throughput saturation of Fig 7c.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/flow_table.hpp"
#include "net/packet.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "obs/trace.hpp"
#include "util/relaxed_counter.hpp"

namespace pleroma::net {

struct NetworkConfig {
  /// Fixed per-packet forwarding latency inside a switch.
  SimTime switchProcessingDelay = 10 * kMicrosecond;
  /// Per-packet processing time at a receiving host; 0 = infinitely fast.
  SimTime hostServiceTime = 0;
  /// Receive buffer (packets) per host; arrivals beyond it are dropped.
  std::size_t hostQueueCapacity = 1024;
  /// TCAM capacity per switch; 0 = unlimited.
  std::size_t flowTableCapacity = 0;
  /// Per-switch miss-buffer budget (packets) while fail-soft mode is
  /// engaged; misses beyond the budget fall back to counted drops.
  std::size_t missBufferCapacity = 128;
};

/// Network-wide counters. Multi-writer relaxed atomics: during parallel
/// run execution workers on different node shards bump the same aggregate
/// counter concurrently (DESIGN.md §10).
struct NetworkCounters {
  util::RelaxedCounter packetsForwarded = 0;  ///< switch output actions executed
  util::RelaxedCounter packetsPuntedToController = 0;
  util::RelaxedCounter packetsDroppedNoMatch = 0;
  util::RelaxedCounter packetsDroppedHostQueue = 0;
  util::RelaxedCounter packetsDroppedHopLimit = 0;
  util::RelaxedCounter packetsDroppedLinkDown = 0;
  util::RelaxedCounter packetsDroppedNodeDown = 0;
  util::RelaxedCounter packetsDeliveredToHosts = 0;
  // ---- fail-soft (controller failover window) --------------------------
  util::RelaxedCounter packetsBufferedOnMiss = 0;
  util::RelaxedCounter packetsDroppedMissBuffer = 0;  ///< budget exceeded
  util::RelaxedCounter packetsReplayedFromMissBuffer = 0;
};

/// Per-link counters. Multi-writer: a link's two endpoints may live on
/// different shards and transmit onto it in the same run.
struct LinkCounters {
  util::RelaxedCounter packets = 0;
  util::RelaxedCounter bytes = 0;
};

class Network : public PacketSink {
 public:
  /// (switch, ingress port, packet): invoked when a switch punts a packet
  /// to its controller over the control network. The packet is moved in
  /// (the switch's copy dies at the punt); handlers taking `const Packet&`
  /// bind as well.
  using PacketInHandler = std::function<void(NodeId, PortId, Packet&&)>;
  /// (host, packet): invoked when a host finishes processing a received
  /// packet (i.e. after its service delay).
  using DeliverHandler = std::function<void(NodeId, const Packet&)>;

  Network(Topology topology, Simulator& sim, NetworkConfig config = {});

  const Topology& topology() const noexcept { return topo_; }
  Simulator& simulator() noexcept { return sim_; }

  FlowTable& flowTable(NodeId switchNode);
  const FlowTable& flowTable(NodeId switchNode) const;

  /// Budget accounting across the whole data plane: entries currently
  /// installed / peak ever installed, summed over all switch TCAMs. These
  /// are the ground-truth series the TCAM-budget benchmarks report
  /// (installed entries as seen by the switches, not controller intent).
  std::size_t totalFlowEntries() const noexcept;
  std::size_t peakFlowEntries() const noexcept;

  void setPacketInHandler(PacketInHandler handler) { packetIn_ = std::move(handler); }
  void setDeliverHandler(DeliverHandler handler) { deliver_ = std::move(handler); }

  /// Sends a packet from a host onto its access link.
  void sendFromHost(NodeId host, Packet packet);

  /// Controller-initiated packet-out: injects a packet at a switch that
  /// behaves as if received on `inPort` (kInvalidPort = none, so it may be
  /// forwarded out any port). Used for inter-controller messages (Sec 4.1).
  void injectAtSwitch(NodeId switchNode, PortId inPort, Packet packet);

  /// Controller-initiated direct output: pushes the packet out of a
  /// specific switch port, bypassing the flow table (OpenFlow PacketOut
  /// with an explicit output action).
  void sendOutPort(NodeId switchNode, PortId outPort, Packet packet);

  /// Fails / restores a link (fault injection). Packets transmitted onto a
  /// failed link are dropped; in-flight packets already past the link are
  /// unaffected. The controller reacts via Controller::onLinkDown/Up.
  void setLinkUp(LinkId link, bool up);
  bool linkUp(LinkId link) const {
    return linkUp_[static_cast<std::size_t>(link)];
  }

  /// Fails / restores a node (switch or host failure). Packets arriving at
  /// or originated by a down node are dropped. Taking a *switch* down
  /// clears its flow table: a rebooted/reconnected switch comes back with
  /// an empty TCAM and must be resynced by the controller
  /// (Controller::onSwitchUp).
  void setNodeUp(NodeId node, bool up);
  bool nodeUp(NodeId node) const {
    return nodeUp_[static_cast<std::size_t>(node)];
  }

  /// Fail-soft mode (controller failover): while enabled, a switch keeps
  /// forwarding on its existing TCAM entries but a miss no longer drops
  /// the packet — it is parked in the switch's finite miss buffer
  /// (NetworkConfig::missBufferCapacity per switch) for replay once the
  /// promoted controller has repaired the tables; misses beyond the budget
  /// are dropped and counted. This replaces the implicit fail-open
  /// behaviour (drop every miss) for the duration of a failover window.
  void setFailSoft(bool on) noexcept { failSoft_ = on; }
  bool failSoft() const noexcept { return failSoft_; }

  /// Replays every parked packet through its switch's pipeline, in the
  /// order the switches buffered them (switch id, then arrival). Call
  /// after the repair converged — replayed packets re-run the full lookup
  /// and pay the processing delay again. Returns the number replayed.
  std::size_t releaseMissBuffers();
  /// Packets currently parked across all miss buffers.
  std::size_t missBufferedPackets() const;

  /// Wires the data plane into the observability layer: every switch table
  /// resolves its metric handles against `reg` (all tables share the
  /// "flow_table.*" names, so the counters aggregate fleet-wide), and — when
  /// `tracer` is non-null — per-switch TCAM match/miss/drop records and
  /// host deliveries are traced, chained through Packet::traceSpan.
  void attachObservability(obs::MetricsRegistry& reg,
                           obs::Tracer* tracer = nullptr);

  const NetworkCounters& counters() const noexcept { return counters_; }
  const LinkCounters& linkCounters(LinkId link) const {
    return linkCounters_[static_cast<std::size_t>(link)];
  }
  std::uint64_t totalLinkBytes() const;

  /// Fast-lane dispatch target: link propagation, switch pipeline, and
  /// host service completions all arrive here from the Simulator.
  void onPacketEvent(PacketEventKind kind, NodeId node, PortId port,
                     Packet&& packet) override;

  /// Sharding contract for parallel run execution: every handler mutates
  /// only its target node's state (flow table, host queue, TCAM stats), so
  /// the shard key is the node id. Events whose handler escapes that
  /// contract — a punt to the controller (which may install flows other
  /// same-timestamp events would observe) or any event while tracing is on
  /// (the Tracer is single-threaded and record order matters) — demand
  /// sequential execution via kNoShard.
  std::int64_t packetShardKey(PacketEventKind kind, NodeId node, PortId port,
                              const Packet& packet) const override;

  /// Replays a packet-in / deliver callback deferred by a worker, on the
  /// coordinating thread in canonical order.
  void onStagedCallback(int kind, NodeId node, PortId port,
                        Packet&& packet) override;

 private:
  /// onStagedCallback kinds.
  static constexpr int kCbPacketIn = 0;
  static constexpr int kCbDeliver = 1;

  void arriveAtNode(NodeId node, PortId inPort, Packet&& packet);
  void processAtSwitch(NodeId switchNode, PortId inPort, Packet&& packet);
  void switchPipeline(NodeId switchNode, PortId inPort, Packet&& packet);
  void receiveAtHost(NodeId host, Packet&& packet);
  void hostServiceDone(NodeId host, Packet&& packet);
  void transmit(NodeId fromNode, PortId outPort, Packet&& packet);

  struct HostState {
    SimTime busyUntil = 0;
    std::size_t queued = 0;
  };
  /// One parked TCAM miss awaiting replay (fail-soft mode).
  struct ParkedMiss {
    PortId inPort = kInvalidPort;
    Packet packet;
  };

  Topology topo_;
  Simulator& sim_;
  NetworkConfig config_;
  std::vector<FlowTable> tables_;   // indexed by NodeId; hosts have empty tables
  std::vector<HostState> hostState_;
  std::vector<bool> linkUp_;
  std::vector<bool> nodeUp_;
  bool failSoft_ = false;
  /// Per-node miss buffers (only switch slots are ever used). A buffer is
  /// the parking switch's own state, so fail-soft buffering stays within
  /// the per-node sharding contract of packetShardKey.
  std::vector<std::vector<ParkedMiss>> missBuffers_;
  std::vector<LinkCounters> linkCounters_;
  NetworkCounters counters_;
  PacketInHandler packetIn_;
  DeliverHandler deliver_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace pleroma::net
