#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <utility>

namespace pleroma::net {

NodeId Topology::addSwitch(std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  if (name.empty()) name = "R" + std::to_string(id);
  nodes_.push_back(Node{NodeKind::kSwitch, std::move(name), {}});
  return id;
}

NodeId Topology::addHost(std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  if (name.empty()) name = "h" + std::to_string(id);
  nodes_.push_back(Node{NodeKind::kHost, std::move(name), {}});
  return id;
}

PortId Topology::allocatePort(NodeId node, LinkId link) {
  auto& ports = nodes_[static_cast<std::size_t>(node)].portLinks;
  ports.push_back(link);
  return static_cast<PortId>(ports.size());  // 1-based
}

LinkId Topology::connect(NodeId a, NodeId b, SimTime latency, double bandwidthBps) {
  assert(a != b);
  const LinkId id = static_cast<LinkId>(links_.size());
  Link link;
  link.latency = latency;
  link.bandwidthBps = bandwidthBps;
  link.a = LinkEnd{a, allocatePort(a, id)};
  link.b = LinkEnd{b, allocatePort(b, id)};
  links_.push_back(link);
  return id;
}

std::vector<NodeId> Topology::switches() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodeCount(); ++id) {
    if (isSwitch(id)) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Topology::hosts() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodeCount(); ++id) {
    if (isHost(id)) out.push_back(id);
  }
  return out;
}

LinkId Topology::linkAt(NodeId node, PortId port) const {
  const auto& ports = nodes_[static_cast<std::size_t>(node)].portLinks;
  if (port < 1 || port > static_cast<PortId>(ports.size())) return kInvalidLink;
  return ports[static_cast<std::size_t>(port - 1)];
}

LinkEnd Topology::peer(NodeId node, PortId port) const {
  const LinkId lid = linkAt(node, port);
  assert(lid != kInvalidLink);
  return links_[static_cast<std::size_t>(lid)].peerOf(node);
}

std::vector<std::pair<PortId, LinkId>> Topology::portsOf(NodeId node) const {
  std::vector<std::pair<PortId, LinkId>> out;
  const auto& ports = nodes_[static_cast<std::size_t>(node)].portLinks;
  for (std::size_t i = 0; i < ports.size(); ++i) {
    out.emplace_back(static_cast<PortId>(i + 1), ports[i]);
  }
  return out;
}

Topology::Attachment Topology::hostAttachment(NodeId host) const {
  assert(isHost(host));
  const auto& ports = nodes_[static_cast<std::size_t>(host)].portLinks;
  assert(ports.size() == 1);
  const Link& l = links_[static_cast<std::size_t>(ports[0])];
  const LinkEnd sw = l.peerOf(host);
  return Attachment{sw.node, sw.port, l.endOf(host).port};
}

Topology::ShortestPaths Topology::shortestPathsFrom(NodeId source) const {
  ShortestPaths sp;
  sp.source = source;
  const auto n = static_cast<std::size_t>(nodeCount());
  sp.distance.assign(n, std::numeric_limits<SimTime>::max());
  sp.parentLink.assign(n, kInvalidLink);
  sp.parentNode.assign(n, kInvalidNode);
  using Item = std::pair<SimTime, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  sp.distance[static_cast<std::size_t>(source)] = 0;
  heap.emplace(0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > sp.distance[static_cast<std::size_t>(u)]) continue;
    for (const LinkId lid : nodes_[static_cast<std::size_t>(u)].portLinks) {
      const Link& l = links_[static_cast<std::size_t>(lid)];
      const NodeId v = l.peerOf(u).node;
      // Hosts never relay traffic: do not route *through* a host.
      if (isHost(u) && u != source) continue;
      const SimTime nd = d + l.latency;
      if (nd < sp.distance[static_cast<std::size_t>(v)]) {
        sp.distance[static_cast<std::size_t>(v)] = nd;
        sp.parentLink[static_cast<std::size_t>(v)] = lid;
        sp.parentNode[static_cast<std::size_t>(v)] = u;
        heap.emplace(nd, v);
      }
    }
  }
  return sp;
}

std::vector<NodeId> Topology::shortestPath(NodeId src, NodeId dst) const {
  const ShortestPaths sp = shortestPathsFrom(src);
  if (sp.distance[static_cast<std::size_t>(dst)] ==
      std::numeric_limits<SimTime>::max()) {
    return {};
  }
  std::vector<NodeId> path;
  for (NodeId cur = dst; cur != kInvalidNode; cur = sp.parentNode[static_cast<std::size_t>(cur)]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Topology Topology::testbedFatTree(SimTime linkLatency, double bandwidthBps) {
  return fatTree(/*core=*/2, /*aggregation=*/4, /*edgePerAgg=*/1,
                 /*hostsPerEdge=*/2, linkLatency, bandwidthBps);
}

Topology Topology::fatTree(int core, int aggregation, int edgePerAgg,
                           int hostsPerEdge, SimTime linkLatency,
                           double bandwidthBps) {
  assert(core >= 1 && aggregation >= 1 && edgePerAgg >= 1 && hostsPerEdge >= 0);
  Topology t;
  std::vector<NodeId> cores, aggs;
  int label = 1;
  for (int i = 0; i < core; ++i) {
    cores.push_back(t.addSwitch("R" + std::to_string(label++)));
  }
  for (int i = 0; i < aggregation; ++i) {
    aggs.push_back(t.addSwitch("R" + std::to_string(label++)));
  }
  std::vector<NodeId> edges;
  for (int i = 0; i < aggregation * edgePerAgg; ++i) {
    edges.push_back(t.addSwitch("R" + std::to_string(label++)));
  }
  for (const NodeId c : cores) {
    for (const NodeId a : aggs) t.connect(c, a, linkLatency, bandwidthBps);
  }
  for (int i = 0; i < aggregation; ++i) {
    for (int j = 0; j < edgePerAgg; ++j) {
      t.connect(aggs[static_cast<std::size_t>(i)],
                edges[static_cast<std::size_t>(i * edgePerAgg + j)], linkLatency, bandwidthBps);
    }
  }
  int hostLabel = 1;
  for (const NodeId e : edges) {
    for (int j = 0; j < hostsPerEdge; ++j) {
      const NodeId h = t.addHost("h" + std::to_string(hostLabel++));
      t.connect(e, h, linkLatency, bandwidthBps);
    }
  }
  return t;
}

Topology Topology::kAryFatTree(int k, SimTime linkLatency,
                               double bandwidthBps) {
  assert(k >= 2 && k % 2 == 0);
  const int half = k / 2;
  Topology t;

  std::vector<NodeId> cores;
  int label = 1;
  for (int i = 0; i < half * half; ++i) {
    cores.push_back(t.addSwitch("R" + std::to_string(label++)));
  }
  std::vector<std::vector<NodeId>> aggs(static_cast<std::size_t>(k));
  std::vector<std::vector<NodeId>> edges(static_cast<std::size_t>(k));
  for (int pod = 0; pod < k; ++pod) {
    for (int i = 0; i < half; ++i) {
      aggs[static_cast<std::size_t>(pod)].push_back(
          t.addSwitch("R" + std::to_string(label++)));
    }
    for (int i = 0; i < half; ++i) {
      edges[static_cast<std::size_t>(pod)].push_back(
          t.addSwitch("R" + std::to_string(label++)));
    }
  }

  // Aggregation switch j of each pod connects to cores [j*half, (j+1)*half).
  for (int pod = 0; pod < k; ++pod) {
    for (int j = 0; j < half; ++j) {
      for (int c = 0; c < half; ++c) {
        t.connect(aggs[static_cast<std::size_t>(pod)][static_cast<std::size_t>(j)],
                  cores[static_cast<std::size_t>(j * half + c)], linkLatency, bandwidthBps);
      }
    }
    // Full bipartite agg <-> edge inside the pod.
    for (int j = 0; j < half; ++j) {
      for (int e = 0; e < half; ++e) {
        t.connect(aggs[static_cast<std::size_t>(pod)][static_cast<std::size_t>(j)],
                  edges[static_cast<std::size_t>(pod)][static_cast<std::size_t>(e)],
                  linkLatency, bandwidthBps);
      }
    }
  }

  int hostLabel = 1;
  for (int pod = 0; pod < k; ++pod) {
    for (int e = 0; e < half; ++e) {
      for (int h = 0; h < half; ++h) {
        const NodeId host = t.addHost("h" + std::to_string(hostLabel++));
        t.connect(edges[static_cast<std::size_t>(pod)][static_cast<std::size_t>(e)],
                  host, linkLatency, bandwidthBps);
      }
    }
  }
  return t;
}

Topology Topology::ring(int numSwitches, SimTime linkLatency,
                        double bandwidthBps) {
  assert(numSwitches >= 3);
  Topology t;
  std::vector<NodeId> sw;
  for (int i = 0; i < numSwitches; ++i) {
    sw.push_back(t.addSwitch("R" + std::to_string(i + 1)));
  }
  for (int i = 0; i < numSwitches; ++i) {
    t.connect(sw[static_cast<std::size_t>(i)],
              sw[static_cast<std::size_t>((i + 1) % numSwitches)], linkLatency, bandwidthBps);
  }
  for (int i = 0; i < numSwitches; ++i) {
    const NodeId h = t.addHost("h" + std::to_string(i + 1));
    t.connect(sw[static_cast<std::size_t>(i)], h, linkLatency, bandwidthBps);
  }
  return t;
}

Topology Topology::line(int numSwitches, SimTime linkLatency,
                        double bandwidthBps) {
  assert(numSwitches >= 1);
  Topology t;
  std::vector<NodeId> sw;
  for (int i = 0; i < numSwitches; ++i) {
    sw.push_back(t.addSwitch("R" + std::to_string(i + 1)));
  }
  for (int i = 0; i + 1 < numSwitches; ++i) {
    t.connect(sw[static_cast<std::size_t>(i)], sw[static_cast<std::size_t>(i + 1)],
              linkLatency, bandwidthBps);
  }
  for (int i = 0; i < numSwitches; ++i) {
    const NodeId h = t.addHost("h" + std::to_string(i + 1));
    t.connect(sw[static_cast<std::size_t>(i)], h, linkLatency, bandwidthBps);
  }
  return t;
}

Topology Topology::randomConnected(int numSwitches, int extraLinks,
                                   std::uint64_t seed, SimTime linkLatency,
                                   double bandwidthBps) {
  assert(numSwitches >= 1);
  // Self-contained xorshift so net does not depend on util.
  std::uint64_t state = seed * 0x9e3779b97f4a7c15ULL + 1;
  auto next = [&state](std::uint64_t bound) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state % bound;
  };

  Topology t;
  std::vector<NodeId> sw;
  for (int i = 0; i < numSwitches; ++i) {
    sw.push_back(t.addSwitch("R" + std::to_string(i + 1)));
  }
  // Random spanning tree: attach each new switch to a random earlier one.
  for (int i = 1; i < numSwitches; ++i) {
    const auto parent = static_cast<std::size_t>(next(static_cast<std::uint64_t>(i)));
    t.connect(sw[static_cast<std::size_t>(i)], sw[parent], linkLatency, bandwidthBps);
  }
  // Extra links between random distinct pairs, skipping duplicates.
  std::vector<std::pair<NodeId, NodeId>> existing;
  for (LinkId l = 0; l < t.linkCount(); ++l) {
    const Link& link = t.link(l);
    existing.emplace_back(std::min(link.a.node, link.b.node),
                          std::max(link.a.node, link.b.node));
  }
  int added = 0;
  int attempts = 0;
  while (added < extraLinks && attempts < extraLinks * 20 && numSwitches >= 2) {
    ++attempts;
    const auto a = sw[static_cast<std::size_t>(
        next(static_cast<std::uint64_t>(numSwitches)))];
    const auto b = sw[static_cast<std::size_t>(
        next(static_cast<std::uint64_t>(numSwitches)))];
    if (a == b) continue;
    const auto key = std::make_pair(std::min(a, b), std::max(a, b));
    if (std::find(existing.begin(), existing.end(), key) != existing.end()) {
      continue;
    }
    existing.push_back(key);
    t.connect(a, b, linkLatency, bandwidthBps);
    ++added;
  }
  for (int i = 0; i < numSwitches; ++i) {
    const NodeId h = t.addHost("h" + std::to_string(i + 1));
    t.connect(sw[static_cast<std::size_t>(i)], h, linkLatency, bandwidthBps);
  }
  return t;
}

std::vector<int> blockShardPlacement(const Topology& topo, int workers) {
  std::vector<int> placement(static_cast<std::size_t>(topo.nodeCount()), 0);
  if (workers <= 1) return placement;
  // Rank nodes within their class, then cut each class into `workers`
  // near-equal contiguous blocks: worker = rank * workers / classSize.
  int switchCount = 0;
  int hostCount = 0;
  for (NodeId id = 0; id < topo.nodeCount(); ++id) {
    (topo.isSwitch(id) ? switchCount : hostCount)++;
  }
  int switchRank = 0;
  int hostRank = 0;
  for (NodeId id = 0; id < topo.nodeCount(); ++id) {
    if (topo.isSwitch(id)) {
      placement[static_cast<std::size_t>(id)] = static_cast<int>(
          static_cast<std::int64_t>(switchRank++) * workers / switchCount);
    } else {
      placement[static_cast<std::size_t>(id)] = static_cast<int>(
          static_cast<std::int64_t>(hostRank++) * workers / hostCount);
    }
  }
  return placement;
}

}  // namespace pleroma::net
