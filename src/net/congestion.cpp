#include "net/congestion.hpp"

#include <algorithm>

namespace pleroma::net {

CongestionMonitor::CongestionMonitor(Network& network, CongestionConfig config)
    : network_(network), config_(config) {
  const auto links = static_cast<std::size_t>(network_.topology().linkCount());
  ewma_.assign(links, 0.0);
  prevQueueDrops_.assign(links, 0);
}

double CongestionMonitor::sampleOnce() {
  const auto links = static_cast<std::size_t>(network_.topology().linkCount());
  // Parks are network-wide (per-direction buffers are internal state), so
  // attribute this window's parks to the links that also lost packets to
  // their queues this window — weighting them in via the same dropWeight.
  const std::uint64_t parkedNow =
      network_.counters().packetsParkedOnBackpressure;
  const std::uint64_t parkDelta = parkedNow - prevParked_;
  prevParked_ = parkedNow;
  std::vector<std::uint64_t> dropDelta(links, 0);
  std::uint64_t dropDeltaTotal = 0;
  for (std::size_t l = 0; l < links; ++l) {
    const std::uint64_t drops =
        network_.linkCounters(static_cast<LinkId>(l)).queueDrops;
    dropDelta[l] = drops - prevQueueDrops_[l];
    prevQueueDrops_[l] = drops;
    dropDeltaTotal += dropDelta[l];
  }
  double hottest = 0.0;
  const double alpha = config_.ewmaAlpha;
  for (std::size_t l = 0; l < links; ++l) {
    const auto depth = network_.linkQueueDepth(static_cast<LinkId>(l));
    double raw = config_.queueWeight * static_cast<double>(depth) +
                 config_.dropWeight * static_cast<double>(dropDelta[l]);
    // Spread this window's backpressure parks across the links whose
    // queues overflowed (a park is recorded against the overflowing
    // direction's link via queueDrops only when the park buffer itself
    // overflows, so the drop distribution is the best per-link signal of
    // where the parks concentrated).
    if (dropDelta[l] > 0 && parkDelta > 0) {
      raw += config_.dropWeight * static_cast<double>(parkDelta) *
             (static_cast<double>(dropDelta[l]) /
              static_cast<double>(dropDeltaTotal));
    }
    const double next = alpha * raw + (1.0 - alpha) * ewma_[l];
    ewma_[l] = next;
    hottest = std::max(hottest, next);
  }
  ++samples_;
  return hottest;
}

void CongestionMonitor::startPeriodic() {
  running_ = true;
  if (!tickArmed_) tick();
}

void CongestionMonitor::tick() {
  tickArmed_ = true;
  network_.simulator().schedule(config_.sampleInterval, [this] {
    tickArmed_ = false;
    if (!running_) return;
    sampleOnce();
    tick();
  });
}

double CongestionMonitor::maxScore() const {
  double hottest = 0.0;
  for (const double s : ewma_) hottest = std::max(hottest, s);
  return hottest;
}

}  // namespace pleroma::net
