// A move-only type-erased callable with a 64-byte small-buffer
// optimization, used by the Simulator's event queue in place of
// std::function. Data-plane closures (a captured `this` plus a packet
// header) fit the inline buffer, so scheduling them performs no heap
// allocation; larger control-plane closures transparently fall back to a
// heap box — that is the designed slow path.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace pleroma::net {

class SmallTask {
 public:
  /// Callables up to this size (and nothrow-movable) are stored inline.
  static constexpr std::size_t kInlineBytes = 64;

  SmallTask() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallTask> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallTask(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &inlineVTable<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &boxedVTable<Fn>;
    }
  }

  SmallTask(SmallTask&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(other.buf_, buf_);
      other.vt_ = nullptr;
    }
  }

  SmallTask& operator=(SmallTask&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(other.buf_, buf_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  SmallTask(const SmallTask&) = delete;
  SmallTask& operator=(const SmallTask&) = delete;

  ~SmallTask() { reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void operator()() { vt_->invoke(buf_); }

  /// True when the callable lives in the inline buffer (no heap involved).
  /// Exposed so tests can pin down which captures take the fast path.
  bool inlineStored() const noexcept {
    return vt_ != nullptr && vt_->inlineStored;
  }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    /// Move-constructs into `to` and destroys the source (storage is
    /// always relocatable: inline objects are nothrow-movable, boxed
    /// objects relocate as a raw pointer).
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool inlineStored;
  };

  template <typename Fn>
  static constexpr VTable inlineVTable = {
      [](void* s) { (*static_cast<Fn*>(s))(); },
      [](void* from, void* to) noexcept {
        ::new (to) Fn(std::move(*static_cast<Fn*>(from)));
        static_cast<Fn*>(from)->~Fn();
      },
      [](void* s) noexcept { static_cast<Fn*>(s)->~Fn(); },
      /*inlineStored=*/true,
  };

  template <typename Fn>
  static constexpr VTable boxedVTable = {
      [](void* s) { (**static_cast<Fn**>(s))(); },
      [](void* from, void* to) noexcept {
        ::new (to) Fn*(*static_cast<Fn**>(from));
      },
      [](void* s) noexcept { delete *static_cast<Fn**>(s); },
      /*inlineStored=*/false,
  };

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace pleroma::net
