// Data-plane congestion monitor (DESIGN.md §15). Periodically samples every
// link's occupancy and loss into an EWMA congestion score — the traffic
// matrix the control plane's LoadMonitor consumes to steer spanning trees
// away from hot links (the MPINET-style hottest-pair / periodic-timestep
// loop, PAPERS.md "SDN-like: The Next Generation of Pub/Sub").
//
// Determinism: samples run as slow-lane simulator tasks, which always
// execute sequentially on the coordinating thread at exact virtual
// instants, and they read only end-of-run counter totals — so the score
// series is byte-identical at any --threads=N.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"

namespace pleroma::net {

struct CongestionConfig {
  /// Virtual time between samples in periodic mode.
  SimTime sampleInterval = kMillisecond;
  /// EWMA weight of the newest window (0 < alpha <= 1).
  double ewmaAlpha = 0.3;
  /// Score contribution per packet sitting in the link's queues at the
  /// sample instant.
  double queueWeight = 1.0;
  /// Score contribution per packet lost to the link's full queue (or
  /// parked on backpressure) during the window — losses signal harder
  /// overload than standing occupancy.
  double dropWeight = 10.0;
};

/// Per-link EWMA congestion scores over queue depth, queue-loss rate and
/// backpressure parking. score() == 0 for an uncongested link; anything
/// above ~queueWeight means a standing queue.
class CongestionMonitor {
 public:
  explicit CongestionMonitor(Network& network, CongestionConfig config = {});

  /// Takes one sample window ending now. Returns the hottest link's score.
  double sampleOnce();

  /// Starts periodic self-rescheduling sampling on the network's
  /// simulator. The monitor must outlive the simulator's event queue (or
  /// be stopped and the queue drained) — the scheduled task holds a plain
  /// pointer to it.
  void startPeriodic();
  void stop() noexcept { running_ = false; }
  bool running() const noexcept { return running_; }

  double score(LinkId link) const {
    return ewma_[static_cast<std::size_t>(link)];
  }
  const std::vector<double>& scores() const noexcept { return ewma_; }
  /// The highest current score across all links (0 when calm).
  double maxScore() const;
  std::uint64_t samplesTaken() const noexcept { return samples_; }

  const CongestionConfig& config() const noexcept { return config_; }

 private:
  void tick();

  Network& network_;
  CongestionConfig config_;
  std::vector<double> ewma_;                    // indexed by LinkId
  std::vector<std::uint64_t> prevQueueDrops_;   // cumulative, per link
  std::uint64_t prevParked_ = 0;                // cumulative parks
  bool running_ = false;
  bool tickArmed_ = false;
  std::uint64_t samples_ = 0;
};

}  // namespace pleroma::net
