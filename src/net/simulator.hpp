// A minimal discrete-event simulation kernel: a virtual clock and an
// ordered queue of (time, action) events. Deterministic: ties in time are
// broken by scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/types.hpp"

namespace pleroma::net {

class Simulator {
 public:
  SimTime now() const noexcept { return now_; }

  /// Schedules `action` to run `delay` from now (delay >= 0).
  void schedule(SimTime delay, std::function<void()> action) {
    scheduleAt(now_ + delay, std::move(action));
  }

  /// Schedules `action` at absolute time `when` (>= now).
  void scheduleAt(SimTime when, std::function<void()> action);

  /// Runs until the queue is empty. Returns the number of events processed.
  std::size_t run();

  /// Runs events with time <= until (advancing the clock to `until` even if
  /// the queue drains earlier). Returns the number of events processed.
  std::size_t runUntil(SimTime until);

  bool idle() const noexcept { return queue_.empty(); }
  std::size_t pendingEvents() const noexcept { return queue_.size(); }
  std::uint64_t processedEvents() const noexcept { return processed_; }

  /// Wall-clock nanoseconds spent inside run()/runUntil() so far; with
  /// now() this gives the virtual/wall time ratio benches report.
  std::uint64_t wallTimeNanos() const noexcept { return wallNanos_; }

 private:
  struct Item {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t wallNanos_ = 0;
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
};

}  // namespace pleroma::net
