// A minimal discrete-event simulation kernel: a virtual clock and an
// ordered queue of (time, action) events. Deterministic: ties in time are
// broken by scheduling order, with one sequence counter shared by both
// event lanes.
//
// Two lanes share the queue:
//  * Slow lane — SmallTask, a type-erased closure with a 64-byte inline
//    buffer. Control-plane closures of any size go here; small ones are
//    stored inline without touching the heap.
//  * Fast lane — PacketEvent, a typed "packet arrives somewhere" record
//    dispatched through a PacketSink interface. Data-plane hops are all
//    shaped like this.
//
// Layout: the priority queue holds one small trivially-copyable record per
// *run* — a burst of consecutively-scheduled events sharing one timestamp —
// rather than per event. Fan-out bursts (N copies of a packet all due at
// now + delay) coalesce into a single heap entry with a FIFO of slot ids,
// so the heap stays shallow even with thousands of events in flight. FIFO
// order within a run is exactly sequence order, so the pop sequence — and
// simulation determinism — is identical to a plain (when, seq) heap. The
// bulky lane payloads live in per-lane slabs whose slots are recycled
// through a free list. At steady state a packet hop therefore costs zero
// heap allocations: the queue vector, the run and slab slots, and the free
// lists are all warm, and the packet's payload is shared rather than
// copied.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "net/small_task.hpp"
#include "net/types.hpp"
#include "util/worker_pool.hpp"

namespace pleroma::net {

/// What a scheduled packet event means to its sink.
enum class PacketEventKind : std::uint8_t {
  kArrive,          ///< link propagation done; packet reaches (node, port)
  kSwitchPipeline,  ///< switch processing delay elapsed; run the flow table
  kHostService,     ///< host service time elapsed; deliver to the app
  kLinkRetry,       ///< backpressure backoff elapsed; drain (node, port)'s
                    ///< park buffer (timer only — carries an empty Packet)
};

/// Receiver of fast-lane packet events. Stored per event (not per
/// simulator), so multiple Networks may share one Simulator.
class PacketSink {
 public:
  /// "This event must not execute on a worker thread" — the default, so
  /// sinks that never opted into parallel execution stay sequential.
  static constexpr std::int64_t kNoShard = -1;

  virtual void onPacketEvent(PacketEventKind kind, NodeId node, PortId port,
                             Packet&& packet) = 0;

  /// Shard key for parallel run execution (DESIGN.md §10): events with the
  /// same key are executed by the same worker, in canonical order. A sink
  /// must key every event by the unit of state its handler mutates (the
  /// target node), and return kNoShard for any event whose handler touches
  /// cross-shard state — the whole run then executes sequentially.
  virtual std::int64_t packetShardKey(PacketEventKind /*kind*/,
                                      NodeId /*node*/, PortId /*port*/,
                                      const Packet& /*packet*/) const {
    return kNoShard;
  }

  /// Replays a callback staged by a worker (Simulator::stageCallback).
  /// Invoked on the coordinating thread during the merge phase, at the
  /// exact position in the canonical effect order where the sequential
  /// build would have invoked the callback inline. `kind` is sink-defined.
  virtual void onStagedCallback(int /*kind*/, NodeId /*node*/,
                                PortId /*port*/, Packet&& /*packet*/) {}

 protected:
  ~PacketSink() = default;  // sinks are never owned through this interface
};

/// A packet due at `node`/`port` once its current delay elapses.
struct PacketEvent {
  PacketSink* sink = nullptr;
  NodeId node = kInvalidNode;
  PortId port = kInvalidPort;
  PacketEventKind kind = PacketEventKind::kArrive;
  Packet packet;
};

class Simulator {
 public:
  SimTime now() const noexcept { return now_; }

  /// Schedules `action` to run `delay` from now (delay >= 0).
  void schedule(SimTime delay, SmallTask action) {
    scheduleAt(now_ + delay, std::move(action));
  }

  /// Schedules `action` at absolute time `when` (>= now).
  void scheduleAt(SimTime when, SmallTask action);

  /// Fast lane: schedules a packet event `delay` from now.
  void schedulePacket(SimTime delay, PacketSink& sink, PacketEventKind kind,
                      NodeId node, PortId port, Packet packet) {
    schedulePacketAt(now_ + delay, sink, kind, node, port, std::move(packet));
  }

  /// Fast lane: schedules a packet event at absolute time `when` (>= now).
  /// The packet is emplaced directly into its (usually recycled) slab slot.
  void schedulePacketAt(SimTime when, PacketSink& sink, PacketEventKind kind,
                        NodeId node, PortId port, Packet packet);

  /// Runs until the queue is empty. Returns the number of events processed.
  std::size_t run();

  /// Runs events with time <= until (advancing the clock to `until` even if
  /// the queue drains earlier). Returns the number of events processed.
  std::size_t runUntil(SimTime until);

  bool idle() const noexcept { return queue_.empty(); }
  std::size_t pendingEvents() const noexcept { return pendingCount_; }
  std::uint64_t processedEvents() const noexcept { return processed_; }

  /// Wall-clock nanoseconds spent inside run()/runUntil() so far; with
  /// now() this gives the virtual/wall time ratio benches report.
  std::uint64_t wallTimeNanos() const noexcept { return wallNanos_; }

  // --- parallel run execution (DESIGN.md §10) ---------------------------

  /// Attaches a worker pool: runs of >= parallelThreshold() same-timestamp
  /// packet events are executed across the pool's workers, sharded by
  /// PacketSink::packetShardKey, with all side effects (schedules and
  /// sink callbacks) staged per worker and replayed on this thread in
  /// canonical sequence order. Dispatch order, sequence numbering, and
  /// callback order are byte-identical to the single-threaded build.
  /// nullptr (or a 1-thread pool) restores pure sequential execution.
  void setWorkerPool(util::WorkerPool* pool) noexcept { pool_ = pool; }

  /// Minimum run size worth forking for; smaller runs (and any run with a
  /// slow-lane task or a kNoShard event) execute sequentially. Purely a
  /// performance knob: by the staging/merge equivalence the outputs are
  /// identical either way, so this may depend on thread count without
  /// breaking determinism.
  void setParallelThreshold(std::size_t n) noexcept {
    parallelThreshold_ = n < 2 ? 2 : n;
  }
  std::size_t parallelThreshold() const noexcept { return parallelThreshold_; }

  /// Installs an explicit shard-key -> worker placement table, indexed by
  /// shard key (node id); see net::blockShardPlacement. Keys beyond the
  /// table and entries outside [0, pool threads) fall back to the strided
  /// `key % threads` mapping, so a table built for one topology/pool pair
  /// degrades gracefully rather than misassigning. Placement only selects
  /// the executing worker — staged effects replay in canonical order
  /// regardless — so any table is determinism-safe. Empty vector restores
  /// pure strided placement.
  void setShardPlacement(std::vector<int> workerOfKey) {
    placement_ = std::move(workerOfKey);
  }

  /// How many runs / events went through the parallel path (test hook for
  /// asserting the machinery actually engaged).
  std::uint64_t parallelRunsExecuted() const noexcept { return parallelRuns_; }
  std::uint64_t parallelEventsExecuted() const noexcept {
    return parallelEvents_;
  }

  /// True while the calling thread is a worker executing a run's events;
  /// schedule calls are being captured into a staging buffer and sinks
  /// must stage their callbacks instead of invoking them.
  static bool staging() noexcept { return tlsStage_ != nullptr; }

  /// Stages a sink callback for replay (PacketSink::onStagedCallback) on
  /// the coordinating thread, in canonical order. Only callable while
  /// staging() is true.
  void stageCallback(PacketSink& sink, int kind, NodeId node, PortId port,
                     Packet&& packet);

 private:
  /// Lane tag folded into the slot index (top bit), so a run's FIFO can
  /// hold both lanes' events in one flat vector of 32-bit ids.
  static constexpr std::uint32_t kPacketLane = 0x8000'0000u;

  /// One heap entry per run. `seq` is the sequence number of the run's
  /// first event; later events appended to the run carry larger sequence
  /// numbers by construction, so (when, seq) ordering of runs plus FIFO
  /// order inside each run reproduces the global (when, seq) event order.
  struct Item {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t run;  // index into runs_
  };

  /// A burst of events sharing one timestamp. The first slot is stored
  /// inline (most runs are singletons); overflow goes to `extra`, whose
  /// capacity is retained when the run is recycled.
  struct Run {
    std::uint32_t first = 0;
    std::uint32_t head = 0;  // 0: first unconsumed; else 1 + drained extras
    std::vector<std::uint32_t> extra;
  };

  static bool earlier(const Item& a, const Item& b) noexcept {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  /// Min-heap over (when, seq) with arity 8 instead of 2: a burst of N
  /// in-flight events sifts through log8(N) levels rather than log2(N),
  /// which matters because at high fan-out the heap array outgrows L1 and
  /// every level touched is a cache miss. (when, seq) is a *total* order —
  /// seq is unique — so the pop sequence, and therefore simulation
  /// determinism, is independent of the heap's internal arity.
  class EventHeap {
   public:
    bool empty() const noexcept { return items_.empty(); }
    std::size_t size() const noexcept { return items_.size(); }
    const Item& top() const noexcept { return items_[0]; }

    void push(const Item& item) {
      items_.push_back(item);
      siftUp(items_.size() - 1);
    }

    void pop() {
      const Item last = items_.back();
      items_.pop_back();
      if (!items_.empty()) {
        std::size_t hole = siftDown(last);
        items_[hole] = last;
      }
    }

   private:
    static constexpr std::size_t kArity = 8;

    void siftUp(std::size_t i) {
      const Item item = items_[i];
      while (i > 0) {
        const std::size_t parent = (i - 1) / kArity;
        if (!earlier(item, items_[parent])) break;
        items_[i] = items_[parent];
        i = parent;
      }
      items_[i] = item;
    }

    /// Walks `item` down from the root, pulling the smallest child up at
    /// each level; returns the hole index where `item` belongs.
    std::size_t siftDown(const Item& item) {
      const std::size_t n = items_.size();
      std::size_t hole = 0;
      for (;;) {
        const std::size_t first = hole * kArity + 1;
        if (first >= n) break;
        const std::size_t last = first + kArity < n ? first + kArity : n;
        std::size_t best = first;
        for (std::size_t c = first + 1; c < last; ++c) {
          if (earlier(items_[c], items_[best])) best = c;
        }
        if (!earlier(items_[best], item)) break;
        items_[hole] = items_[best];
        hole = best;
      }
      return hole;
    }

    std::vector<Item> items_;
  };

  /// Fixed-slot storage with a recycling LIFO free list: freed slots are
  /// reused most-recently-freed-first (they are still cache-hot), and the
  /// slot vector never shrinks, so a steady-state workload stops
  /// allocating.
  template <typename T>
  struct Slab {
    std::vector<T> slots;
    std::vector<std::uint32_t> freeList;

    std::uint32_t put(T&& value) {
      if (!freeList.empty()) {
        const std::uint32_t idx = freeList.back();
        freeList.pop_back();
        slots[idx] = std::move(value);
        return idx;
      }
      slots.push_back(std::move(value));
      return static_cast<std::uint32_t>(slots.size() - 1);
    }
  };

  /// One side effect captured on a worker thread during parallel run
  /// execution: a scheduled packet event, a scheduled slow-lane task, or a
  /// deferred sink callback. Replayed on the coordinator in canonical
  /// order, which reproduces the sequential build's enqueue/callback
  /// sequence exactly (fresh sequence numbers are assigned at replay).
  struct StagedEffect {
    enum class Kind : std::uint8_t { kPacket, kTask, kCallback };
    Kind kind = Kind::kPacket;
    PacketEventKind packetKind = PacketEventKind::kArrive;
    int callbackKind = 0;
    NodeId node = kInvalidNode;
    PortId port = kInvalidPort;
    SimTime when = 0;
    PacketSink* sink = nullptr;
    Packet packet;
    SmallTask task;
  };

  /// Per-worker staging buffer: the effects of the worker's assigned
  /// events, plus one [begin, end) range per event so the merge phase can
  /// replay ranges in canonical (cross-worker) event order.
  struct WorkerStage {
    struct Range {
      std::uint32_t event = 0;  // canonical index within the run
      std::uint32_t begin = 0;
      std::uint32_t end = 0;
    };
    std::vector<StagedEffect> effects;
    std::vector<Range> ranges;
  };

  /// Appends the (lane-tagged) slot to the current run if `when` matches
  /// it, else opens a fresh run and pushes its heap entry.
  void enqueue(SimTime when, std::uint32_t taggedSlot);

  /// Takes the next slot out of the top run, popping and recycling the run
  /// once exhausted.
  std::uint32_t takeNext();

  void dispatch(std::uint32_t taggedSlot);

  /// Executes the entire top run across the worker pool if it qualifies
  /// (all fast-lane, all shardable, big enough). Returns the number of
  /// events executed, or 0 for "not eligible — dispatch sequentially".
  std::size_t tryRunParallel();

  /// Replays one staged effect on the coordinating thread.
  void replay(StagedEffect& e);

  SimTime now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t wallNanos_ = 0;
  std::size_t pendingCount_ = 0;
  EventHeap queue_;
  std::vector<Run> runs_;
  std::vector<std::uint32_t> freeRuns_;
  // Append cache: the most recently opened run. A push whose `when`
  // matches goes straight into that run's FIFO without touching the heap.
  bool cacheValid_ = false;
  SimTime cacheWhen_ = 0;
  std::uint32_t cacheRun_ = 0;
  Slab<SmallTask> tasks_;
  Slab<PacketEvent> packets_;

  // --- parallel execution state (all coordinator-owned; workers only
  // touch their own WorkerStage and their assigned packet slots) ---------
  util::WorkerPool* pool_ = nullptr;
  std::size_t parallelThreshold_ = 8;
  std::uint64_t parallelRuns_ = 0;
  std::uint64_t parallelEvents_ = 0;
  /// Scratch for the run being executed: its tagged slots in canonical
  /// order and the worker each one is assigned to.
  std::vector<std::uint32_t> runSlots_;
  std::vector<int> shardOf_;
  /// Optional shard-key -> worker table (setShardPlacement); empty means
  /// strided key % threads.
  std::vector<int> placement_;
  std::vector<WorkerStage> stages_;
  std::vector<std::size_t> mergeCursor_;
  /// The staging buffer of the worker running on this thread (null outside
  /// a parallel region); routes schedule calls into the buffer.
  static thread_local WorkerStage* tlsStage_;
};

}  // namespace pleroma::net
