#include "net/flow_table.hpp"

#include <algorithm>

namespace pleroma::net {

void FlowEntry::addOutPort(PortId port, std::optional<dz::Ipv6Address> rewrite) {
  for (auto& a : actions) {
    if (a.port == port) {
      if (rewrite) a.setDestination = rewrite;
      return;
    }
  }
  actions.push_back(FlowAction{port, rewrite});
}

bool FlowEntry::removeOutPort(PortId port) {
  const auto it = std::find_if(actions.begin(), actions.end(),
                               [&](const FlowAction& a) { return a.port == port; });
  if (it == actions.end()) return false;
  actions.erase(it);
  return true;
}

bool FlowEntry::hasOutPort(PortId port) const noexcept {
  return std::any_of(actions.begin(), actions.end(),
                     [&](const FlowAction& a) { return a.port == port; });
}

std::vector<PortId> FlowEntry::outPorts() const {
  std::vector<PortId> out;
  out.reserve(actions.size());
  for (const auto& a : actions) out.push_back(a.port);
  return out;
}

std::string FlowEntry::toString() const {
  std::string out = match.toString() + " prio=" + std::to_string(priority) + " ->";
  for (const auto& a : actions) {
    out += " " + std::to_string(a.port);
    if (a.setDestination) out += "(set-dst)";
  }
  return out;
}

bool FlowTable::insert(FlowEntry entry) {
  if (capacity_ != 0 && map_.size() >= capacity_) {
    ++stats_.rejectedCapacity;
    return false;
  }
  const Key key = keyOf(entry.match);
  const auto [it, inserted] = map_.emplace(key, std::move(entry));
  if (!inserted) {
    ++stats_.rejectedDuplicate;
    return false;
  }
  noteLengthAdded(key.length);
  ++stats_.inserts;
  return true;
}

bool FlowTable::insertOrReplace(FlowEntry entry) {
  const Key key = keyOf(entry.match);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // OpenFlow modify preserves the per-flow counters.
    entry.matchedPackets = it->second.matchedPackets;
    it->second = std::move(entry);
    ++stats_.modifies;
    return true;
  }
  return insert(std::move(entry));
}

bool FlowTable::remove(const dz::Ipv6Prefix& match) {
  const Key key = keyOf(match);
  const auto it = map_.find(key);
  if (it == map_.end()) return false;
  map_.erase(it);
  noteLengthRemoved(key.length);
  ++stats_.removes;
  return true;
}

const FlowEntry* FlowTable::find(const dz::Ipv6Prefix& match) const noexcept {
  const auto it = map_.find(keyOf(match));
  return it == map_.end() ? nullptr : &it->second;
}

FlowEntry* FlowTable::findMutable(const dz::Ipv6Prefix& match) noexcept {
  const auto it = map_.find(keyOf(match));
  return it == map_.end() ? nullptr : &it->second;
}

const FlowEntry* FlowTable::lookup(dz::Ipv6Address dst) const {
  ++stats_.lookups;
  stats_.probes += lengthsInUse_.size();
  const FlowEntry* best = nullptr;
  for (const int len : lengthsInUse_) {
    const Key key{dst.value & dz::U128::topMask(len), len};
    const auto it = map_.find(key);
    if (it == map_.end()) continue;
    const FlowEntry& e = it->second;
    if (best == nullptr || e.priority > best->priority ||
        (e.priority == best->priority && e.match.length > best->match.length)) {
      best = &e;
    }
  }
  if (obsEnabled_ != nullptr &&
      obsEnabled_->load(std::memory_order_relaxed)) {
    obsLookups_->inc();
    obsProbes_->record(static_cast<double>(lengthsInUse_.size()));
    (best != nullptr ? obsHits_ : obsMisses_)->inc();
  }
  if (best != nullptr) {
    ++stats_.hits;
    ++best->matchedPackets;
  } else {
    ++stats_.misses;
  }
  return best;
}

void FlowTable::clear() noexcept {
  map_.clear();
  std::fill(lengthCount_.begin(), lengthCount_.end(), 0U);
  lengthsInUse_.clear();
}

std::vector<FlowEntry> FlowTable::entries() const {
  std::vector<FlowEntry> out;
  out.reserve(map_.size());
  for (const auto& [key, entry] : map_) out.push_back(entry);
  return out;
}

void FlowTable::forEach(const std::function<void(const FlowEntry&)>& fn) const {
  for (const auto& [key, entry] : map_) fn(entry);
}

void FlowTable::attachMetrics(obs::MetricsRegistry& reg,
                              const std::string& prefix) {
  obsEnabled_ =
      reg.familyEnabledFlag(obs::MetricsRegistry::familyOf(prefix + ".lookups"));
  obsLookups_ = &reg.counter(prefix + ".lookups");
  obsHits_ = &reg.counter(prefix + ".hits");
  obsMisses_ = &reg.counter(prefix + ".misses");
  obsProbes_ = &reg.histogram(prefix + ".probes_per_lookup");
}

void FlowTable::noteLengthAdded(int length) {
  if (lengthCount_[static_cast<std::size_t>(length)]++ == 0) {
    lengthsInUse_.push_back(length);
  }
}

void FlowTable::noteLengthRemoved(int length) {
  if (--lengthCount_[static_cast<std::size_t>(length)] == 0) {
    lengthsInUse_.erase(
        std::find(lengthsInUse_.begin(), lengthsInUse_.end(), length));
  }
}

}  // namespace pleroma::net
