#include "net/flow_table.hpp"

#include <algorithm>
#include <utility>

#include "dz/u128.hpp"

namespace pleroma::net {

void FlowEntry::addOutPort(PortId port, std::optional<dz::Ipv6Address> rewrite) {
  for (auto& a : actions) {
    if (a.port == port) {
      if (rewrite) a.setDestination = rewrite;
      return;
    }
  }
  actions.push_back(FlowAction{port, rewrite});
}

bool FlowEntry::removeOutPort(PortId port) {
  const auto it = std::find_if(actions.begin(), actions.end(),
                               [&](const FlowAction& a) { return a.port == port; });
  if (it == actions.end()) return false;
  actions.erase(it);
  return true;
}

bool FlowEntry::hasOutPort(PortId port) const noexcept {
  return std::any_of(actions.begin(), actions.end(),
                     [&](const FlowAction& a) { return a.port == port; });
}

std::vector<PortId> FlowEntry::outPorts() const {
  std::vector<PortId> out;
  out.reserve(actions.size());
  for (const auto& a : actions) out.push_back(a.port);
  return out;
}

std::string FlowEntry::toString() const {
  std::string out = match.toString() + " prio=" + std::to_string(priority) + " ->";
  for (const auto& a : actions) {
    out += " " + std::to_string(a.port);
    if (a.setDestination) out += "(set-dst)";
  }
  return out;
}

// ---- bucket maintenance ---------------------------------------------------

FlowTable::Bucket& FlowTable::bucketForInsert(int length) {
  std::int16_t& bi = lengthBucket_[static_cast<std::size_t>(length)];
  if (bi >= 0) return buckets_[static_cast<std::size_t>(bi)];
  bi = static_cast<std::int16_t>(buckets_.size());
  Bucket b;
  b.length = length;
  b.mask = dz::U128::topMask(length);
  buckets_.push_back(std::move(b));
  return buckets_.back();
}

void FlowTable::dropBucketIfEmpty(Bucket& b) {
  if (b.size != 0) return;
  const auto idx = static_cast<std::size_t>(&b - buckets_.data());
  lengthBucket_[static_cast<std::size_t>(b.length)] = -1;
  buckets_.erase(buckets_.begin() + static_cast<std::ptrdiff_t>(idx));
  // Buckets after the erased one shifted down by one.
  for (auto& slot : lengthBucket_) {
    if (slot > static_cast<std::int16_t>(idx)) --slot;
  }
}

void FlowTable::insertRecord(Bucket& b, dz::U128 key, std::int32_t priority,
                             std::uint32_t slot) {
  if (!b.flat) {
    if (b.size + 1 <= kSortedMax) {
      const auto it = std::lower_bound(
          b.recs.begin(), b.recs.end(), key,
          [](const ProbeRecord& r, dz::U128 k) { return dz::u128Less(r.key, k); });
      b.recs.insert(it, ProbeRecord{key, slot, priority});
      ++b.size;
      return;
    }
    rebuildFlat(b, b.size + 1);
  } else if (b.recs.size() < 2 * (b.size + 1)) {
    rebuildFlat(b, b.size + 1);
  }
  const std::size_t mask = b.recs.size() - 1;
  std::size_t i = dz::u128Hash(key) & mask;
  while (b.recs[i].slot != kEmptySlot) i = (i + 1) & mask;
  b.recs[i] = ProbeRecord{key, slot, priority};
  ++b.size;
}

void FlowTable::eraseRecord(Bucket& b, std::size_t idx) {
  if (!b.flat) {
    b.recs.erase(b.recs.begin() + static_cast<std::ptrdiff_t>(idx));
    --b.size;
    return;
  }
  // Backward-shift deletion: walk the probe chain after the hole and pull
  // back any record whose home position does not lie cyclically inside
  // (hole, j], so chains stay dense and tombstone-free.
  const std::size_t mask = b.recs.size() - 1;
  std::size_t hole = idx;
  std::size_t j = idx;
  for (;;) {
    j = (j + 1) & mask;
    if (b.recs[j].slot == kEmptySlot) break;
    const std::size_t home = dz::u128Hash(b.recs[j].key) & mask;
    const bool movable = (j > hole) ? (home <= hole || home > j)
                                    : (home <= hole && home > j);
    if (movable) {
      b.recs[hole] = b.recs[j];
      hole = j;
    }
  }
  b.recs[hole] = ProbeRecord{};
  --b.size;
  if (b.size < kSortedMin) rebuildSorted(b);
}

void FlowTable::rebuildFlat(Bucket& b, std::size_t forSize) {
  std::vector<ProbeRecord> live;
  live.reserve(b.size);
  if (b.flat) {
    for (const ProbeRecord& r : b.recs) {
      if (r.slot != kEmptySlot) live.push_back(r);
    }
  } else {
    live.assign(b.recs.begin(), b.recs.begin() + static_cast<std::ptrdiff_t>(b.size));
  }
  std::size_t cap = 64;
  while (cap < 2 * forSize) cap <<= 1;
  b.recs.assign(cap, ProbeRecord{});
  b.flat = true;
  const std::size_t mask = cap - 1;
  for (const ProbeRecord& r : live) {
    std::size_t i = dz::u128Hash(r.key) & mask;
    while (b.recs[i].slot != kEmptySlot) i = (i + 1) & mask;
    b.recs[i] = r;
  }
}

void FlowTable::rebuildSorted(Bucket& b) {
  std::vector<ProbeRecord> live;
  live.reserve(b.size);
  for (const ProbeRecord& r : b.recs) {
    if (r.slot != kEmptySlot) live.push_back(r);
  }
  std::sort(live.begin(), live.end(),
            [](const ProbeRecord& x, const ProbeRecord& y) {
              return dz::u128Less(x.key, y.key);
            });
  b.recs = std::move(live);
  b.flat = false;
}

// ---- entry arena ----------------------------------------------------------

std::uint32_t FlowTable::allocateSlot(FlowEntry&& entry) {
  std::uint32_t slot;
  if (!freeSlots_.empty()) {
    slot = freeSlots_.back();
    freeSlots_.pop_back();
  } else {
    slot = slotHighWater_++;
    if ((slot >> kChunkShift) == chunks_.size()) {
      chunks_.push_back(std::make_unique<FlowEntry[]>(kChunkSize));
    }
    matched_.resize(slotHighWater_, 0);
  }
  slotRef(slot) = std::move(entry);
  matched_[slot] = slotRef(slot).matchedPackets;
  return slot;
}

void FlowTable::freeSlot(std::uint32_t slot) {
  // Reset releases any spilled action storage now rather than at table
  // destruction; the slot is recycled by the next insert.
  slotRef(slot) = FlowEntry{};
  freeSlots_.push_back(slot);
}

// ---- public API -----------------------------------------------------------

bool FlowTable::insert(FlowEntry entry) {
  if (capacity_ != 0 && size_ >= capacity_) {
    ++stats_.rejectedCapacity;
    return false;
  }
  const dz::U128 key = keyOf(entry.match);
  Bucket& b = bucketForInsert(entry.match.length);
  if (findIn(b, key) != kNpos) {
    ++stats_.rejectedDuplicate;
    return false;
  }
  const auto priority = static_cast<std::int32_t>(entry.priority);
  const std::uint32_t slot = allocateSlot(std::move(entry));
  insertRecord(b, key, priority, slot);
  ++size_;
  if (size_ > peakSize_) peakSize_ = size_;
  ++stats_.inserts;
  return true;
}

bool FlowTable::insertOrReplace(FlowEntry entry) {
  const std::int16_t bi = lengthBucket_[static_cast<std::size_t>(entry.match.length)];
  if (bi >= 0) {
    Bucket& b = buckets_[static_cast<std::size_t>(bi)];
    const std::size_t idx = findIn(b, keyOf(entry.match));
    if (idx != kNpos) {
      const std::uint32_t slot = b.recs[idx].slot;
      // OpenFlow modify preserves the per-flow counters (the column stays).
      entry.matchedPackets = matched_[slot];
      b.recs[idx].priority = static_cast<std::int32_t>(entry.priority);
      slotRef(slot) = std::move(entry);
      ++stats_.modifies;
      return true;
    }
  }
  return insert(std::move(entry));
}

bool FlowTable::remove(const dz::Ipv6Prefix& match) {
  const std::int16_t bi = lengthBucket_[static_cast<std::size_t>(match.length)];
  if (bi < 0) return false;
  Bucket& b = buckets_[static_cast<std::size_t>(bi)];
  const std::size_t idx = findIn(b, keyOf(match));
  if (idx == kNpos) return false;
  freeSlot(b.recs[idx].slot);
  eraseRecord(b, idx);
  --size_;
  ++stats_.removes;
  dropBucketIfEmpty(b);
  return true;
}

const FlowEntry* FlowTable::find(const dz::Ipv6Prefix& match) const noexcept {
  const std::int16_t bi = lengthBucket_[static_cast<std::size_t>(match.length)];
  if (bi < 0) return nullptr;
  const Bucket& b = buckets_[static_cast<std::size_t>(bi)];
  const std::size_t idx = findIn(b, keyOf(match));
  return idx == kNpos ? nullptr : &syncedSlot(b.recs[idx].slot);
}

FlowEntry* FlowTable::findMutable(const dz::Ipv6Prefix& match) noexcept {
  return const_cast<FlowEntry*>(std::as_const(*this).find(match));
}

const FlowEntry* FlowTable::lookup(dz::Ipv6Address dst) const {
  ++stats_.lookups;
  stats_.probes += buckets_.size();
  const ProbeRecord* best = nullptr;
  int bestLength = -1;
  for (const Bucket& b : buckets_) {
    const std::size_t idx = findIn(b, dst.value & b.mask);
    if (idx == kNpos) continue;
    const ProbeRecord& r = b.recs[idx];
    if (best == nullptr || r.priority > best->priority ||
        (r.priority == best->priority && b.length > bestLength)) {
      best = &r;
      bestLength = b.length;
    }
  }
  if (obsEnabled_ != nullptr && obsEnabled_->load(std::memory_order_relaxed)) {
    obsLookups_->inc();
    obsProbes_->record(static_cast<double>(buckets_.size()));
    (best != nullptr ? obsHits_ : obsMisses_)->inc();
  }
  if (best == nullptr) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  ++matched_[best->slot];
  return &slotRef(best->slot);
}

void FlowTable::clear() noexcept {
  buckets_.clear();
  lengthBucket_.fill(-1);
  size_ = 0;
  chunks_.clear();
  freeSlots_.clear();
  slotHighWater_ = 0;
  matched_.clear();
}

std::vector<FlowEntry> FlowTable::entries() const {
  std::vector<FlowEntry> out;
  out.reserve(size_);
  forEach([&](const FlowEntry& e) { out.push_back(e); });
  return out;
}

void FlowTable::attachMetrics(obs::MetricsRegistry& reg,
                              const std::string& prefix) {
  obsEnabled_ =
      reg.familyEnabledFlag(obs::MetricsRegistry::familyOf(prefix + ".lookups"));
  obsLookups_ = &reg.counter(prefix + ".lookups");
  obsHits_ = &reg.counter(prefix + ".hits");
  obsMisses_ = &reg.counter(prefix + ".misses");
  obsProbes_ = &reg.histogram(prefix + ".probes_per_lookup");
}

}  // namespace pleroma::net
