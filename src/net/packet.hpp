// The unit of data-plane traffic. An event publication is a small UDP-like
// packet whose destination address carries the event's dz (Sec 3.3.2);
// control traffic (advertisements/subscriptions, controller-to-controller
// messages) is addressed to the reserved IP_mid and punted by switches.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dz/event_space.hpp"
#include "dz/ip_encoding.hpp"
#include "net/types.hpp"

namespace pleroma::net {

/// Identifies a published event end-to-end for delivery accounting.
using EventId = std::uint64_t;

struct Packet {
  dz::Ipv6Address src{};
  dz::Ipv6Address dst{};
  /// Wire size in bytes ("up to 64 bytes depending on the length of dz",
  /// Sec 6.2); used for transmission-delay and bandwidth accounting.
  int sizeBytes = 64;
  /// IPv6 hop limit, decremented per switch; expired packets are dropped.
  /// Guards against forwarding cycles that flow sets on cyclic
  /// inter-partition graphs can form (the paper's interop design never
  /// exercises data traffic on a cyclic partition graph).
  int hopLimit = 64;

  // --- payload (simulation-level metadata, not matched by switches) ---
  EventId eventId = 0;
  NodeId publisherHost = kInvalidNode;
  /// Full attribute values of the event, so receivers can evaluate their
  /// exact subscription semantics and count false positives.
  dz::Event event;
  /// The dz stamped by the publisher (also encoded in dst).
  dz::DzExpression eventDz;
  /// Simulated time the packet left the publisher.
  SimTime sentAt = 0;
  /// Opaque control payload (present only for control-plane messages).
  std::shared_ptr<const void> control;
  int controlKind = 0;
  /// Parent span for hop-by-hop tracing (obs::kNoSpan when tracing is off).
  /// Each switch hop parents its record here and restamps the forwarded
  /// copy, so multicast fan-out forms a branching span tree.
  std::uint64_t traceSpan = 0;
};

/// Unicast address assigned to host h: fd00::(h+1).
inline dz::Ipv6Address hostAddress(NodeId host) noexcept {
  return dz::Ipv6Address{
      dz::U128{0xfd00000000000000ULL, static_cast<std::uint64_t>(host) + 1}};
}

}  // namespace pleroma::net
