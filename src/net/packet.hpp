// The unit of data-plane traffic. An event publication is a small UDP-like
// packet whose destination address carries the event's dz (Sec 3.3.2);
// control traffic (advertisements/subscriptions, controller-to-controller
// messages) is addressed to the reserved IP_mid and punted by switches.
//
// Fast-path layout: a Packet is a small by-value header (addresses, size,
// hop limit, trace span) plus an immutable, reference-counted EventPayload
// (event id, publisher, attribute values, dz, publish time). Every fan-out
// copy of a multicast and every hop of a path shares the same payload
// object — an N-way fan-out copies 0 payloads instead of N — and pooled
// payload allocation (PayloadPool) makes steady-state publishing free of
// per-hop heap allocations.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "dz/event_space.hpp"
#include "dz/ip_encoding.hpp"
#include "net/types.hpp"

namespace pleroma::net {

/// Identifies a published event end-to-end for delivery accounting.
using EventId = std::uint64_t;

/// The per-publication data shared by every copy of the packet. Immutable
/// once the packet enters the network (all fan-out copies alias it).
struct EventPayload {
  EventId eventId = 0;
  NodeId publisherHost = kInvalidNode;
  /// Full attribute values of the event, so receivers can evaluate their
  /// exact subscription semantics and count false positives.
  dz::Event event;
  /// The dz stamped by the publisher (also encoded in the packet dst).
  dz::DzExpression eventDz;
  /// Simulated time the packet left the publisher (stamped by
  /// Network::sendFromHost while the payload is still exclusively owned).
  SimTime sentAt = 0;
};

/// Recycles the combined (control block + EventPayload) allocations that
/// std::allocate_shared produces, so steady-state publishing reuses a slab
/// of warm blocks instead of hitting the allocator per event. The free
/// list is shared-ptr-owned by every outstanding payload's control block,
/// so payloads may outlive the pool object itself.
class PayloadPool {
 public:
  PayloadPool() : state_(std::make_shared<State>()) {}

  /// A fresh payload to fill in before sending; convert to
  /// std::shared_ptr<const EventPayload> by assignment into Packet.
  std::shared_ptr<EventPayload> acquire() {
    return std::allocate_shared<EventPayload>(Alloc<EventPayload>{state_});
  }

  /// Warm blocks currently parked in the free list (for tests).
  std::size_t freeBlocks() const noexcept { return state_->free.size(); }

 private:
  struct State {
    /// All blocks a pool hands out have one size: the allocate_shared
    /// combined allocation. Recorded on first use; other sizes (rebound
    /// allocator internals, if any) pass through to the global heap.
    std::size_t slotBytes = 0;
    std::vector<void*> free;
    /// Guards the free list: during parallel run execution a dropped
    /// packet releases the last payload reference on a worker thread, so
    /// deallocations race each other (and, across runs, allocations). A
    /// spinlock suffices — the critical section is a few instructions and
    /// taken once per publication, not per hop.
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    /// Bounds the parked memory; beyond this, blocks return to the heap.
    static constexpr std::size_t kMaxFree = 4096;

    ~State() {
      for (void* p : free) ::operator delete(p);
    }

    void acquireLock() noexcept {
      while (lock.test_and_set(std::memory_order_acquire)) {
        lock.wait(true, std::memory_order_relaxed);
      }
    }
    void releaseLock() noexcept {
      lock.clear(std::memory_order_release);
      lock.notify_one();
    }

    void* allocate(std::size_t bytes) {
      acquireLock();
      if (bytes == slotBytes && !free.empty()) {
        void* p = free.back();
        free.pop_back();
        releaseLock();
        return p;
      }
      if (slotBytes == 0) {
        slotBytes = bytes;
        free.reserve(kMaxFree);
      }
      releaseLock();
      return ::operator new(bytes);
    }

    void deallocate(void* p, std::size_t bytes) noexcept {
      acquireLock();
      if (bytes == slotBytes && free.size() < kMaxFree) {
        free.push_back(p);
        releaseLock();
        return;
      }
      releaseLock();
      ::operator delete(p);
    }
  };

  template <typename T>
  struct Alloc {
    using value_type = T;
    std::shared_ptr<State> state;

    explicit Alloc(std::shared_ptr<State> s) : state(std::move(s)) {}
    template <typename U>
    Alloc(const Alloc<U>& o) : state(o.state) {}  // NOLINT: rebind

    T* allocate(std::size_t n) {
      return static_cast<T*>(state->allocate(n * sizeof(T)));
    }
    void deallocate(T* p, std::size_t n) noexcept {
      state->deallocate(p, n * sizeof(T));
    }
    friend bool operator==(const Alloc& a, const Alloc& b) {
      return a.state == b.state;
    }
  };

  std::shared_ptr<State> state_;
};

struct Packet {
  dz::Ipv6Address src{};
  dz::Ipv6Address dst{};
  /// Wire size in bytes ("up to 64 bytes depending on the length of dz",
  /// Sec 6.2); used for transmission-delay and bandwidth accounting.
  int sizeBytes = 64;
  /// IPv6 hop limit, decremented per switch; expired packets are dropped.
  /// Guards against forwarding cycles that flow sets on cyclic
  /// inter-partition graphs can form (the paper's interop design never
  /// exercises data traffic on a cyclic partition graph).
  int hopLimit = 64;
  /// Parent span for hop-by-hop tracing (obs::kNoSpan when tracing is off).
  /// Each switch hop parents its record here and restamps the forwarded
  /// copy, so multicast fan-out forms a branching span tree.
  std::uint64_t traceSpan = 0;

  /// The publication this packet carries; null for pure control packets.
  std::shared_ptr<const EventPayload> payload;

  /// Opaque control payload (present only for control-plane messages).
  std::shared_ptr<const void> control;
  int controlKind = 0;

  // --- payload accessors (tolerate payload-less control packets) --------

  EventId eventId() const noexcept { return payload ? payload->eventId : 0; }
  NodeId publisherHost() const noexcept {
    return payload ? payload->publisherHost : kInvalidNode;
  }
  const dz::Event& event() const noexcept {
    static const dz::Event kNoEvent;
    return payload ? payload->event : kNoEvent;
  }
  dz::DzExpression eventDz() const noexcept {
    return payload ? payload->eventDz : dz::DzExpression{};
  }
  SimTime sentAt() const noexcept { return payload ? payload->sentAt : 0; }

  /// Copy-on-write handle for construction sites (tests, benches, the
  /// controller's packet factory): clones the payload iff it is currently
  /// shared, so filling in a fresh packet never copies and re-stamping a
  /// forwarded packet never corrupts other in-flight copies.
  EventPayload& mutablePayload() {
    if (!payload) {
      payload = std::make_shared<EventPayload>();
    } else if (payload.use_count() > 1) {
      payload = std::make_shared<EventPayload>(*payload);
    }
    // The only owner is this packet; dropping const is sound.
    return const_cast<EventPayload&>(*payload);
  }
};

/// Unicast address assigned to host h: fd00::(h+1).
inline dz::Ipv6Address hostAddress(NodeId host) noexcept {
  return dz::Ipv6Address{
      dz::U128{0xfd00000000000000ULL, static_cast<std::uint64_t>(host) + 1}};
}

}  // namespace pleroma::net
