// The public PLEROMA middleware API for a single controlled partition.
// Wraps topology instantiation, the SDN controller, and the data-plane
// simulation behind the publish/subscribe operations of the paper:
// advertise / publish on the producer side, subscribe / deliver on the
// consumer side, plus false-positive accounting, latency metrics, and the
// periodic dimension-selection hook (Sec 5).
//
// Multi-partition deployments use interop::MultiDomain, which exposes the
// same operations across independently controlled networks.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "controller/controller.hpp"
#include "controller/failover.hpp"
#include "controller/standby.hpp"
#include "dimsel/dimension_selection.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/worker_pool.hpp"

namespace pleroma::core {

/// Controller high-availability options (DESIGN.md §11). When enabled, the
/// instance constructs a hot-standby replica that mirrors the controller's
/// command stream plus a FailoverManager that heartbeats it; on detection
/// of a controller death the standby is promoted and reconciles the
/// switches' surviving TCAM state against the mirrored intent.
struct FailoverOptions {
  bool enableStandby = false;
  /// Arm the heartbeat at construction (otherwise call
  /// failover()->start() explicitly).
  bool autoStart = true;
  ctrl::FailoverConfig config;
};

struct PleromaOptions {
  int numAttributes = 2;
  int bitsPerDim = 10;
  ctrl::ControllerConfig controller;
  net::NetworkConfig network;
  FailoverOptions failover;
  /// Size of the sliding event window kept for dimension selection (eta).
  std::size_t dimensionWindow = 256;
  /// Apply flow-mods asynchronously (each takes flowModLatency of simulated
  /// time): subscriptions *activate* only once their flows are installed.
  bool asyncFlowInstall = false;
  /// Worker threads for the simulator's sharded run execution and the
  /// controller's concurrent tree recomputation. 1 = fully sequential (no
  /// pool). Any value produces byte-identical results; only wall-clock
  /// changes.
  int threads = 1;
  /// How node shards map onto workers (DESIGN.md §13). kBlock gives each
  /// worker a contiguous range of switches (and of hosts), keeping its
  /// FlowTable working set cache-resident; kStrided is the historical
  /// `node % threads` interleaving. Either way results are byte-identical —
  /// placement never changes replay order.
  util::ShardPlacement shardPlacement = util::ShardPlacement::kBlock;
  /// Pin pool workers (including the calling thread, as worker 0) to cores.
  /// Off by default because it mutates the caller's thread affinity.
  bool pinWorkers = false;
};

/// One delivered (event, host) pair as observed at the application layer.
struct DeliveryRecord {
  net::NodeId host = net::kInvalidNode;
  net::EventId eventId = 0;
  net::SimTime latency = 0;
  /// True when no subscription at the host actually matches the event —
  /// the event is an (expected, dz-truncation-induced) false positive.
  bool falsePositive = false;
};

struct DeliveryStats {
  std::uint64_t delivered = 0;
  std::uint64_t falsePositives = 0;
  net::SimTime latencySum = 0;

  double falsePositiveRate() const noexcept {
    return delivered == 0
               ? 0.0
               : static_cast<double>(falsePositives) / static_cast<double>(delivered);
  }
  double meanLatencyUs() const noexcept {
    return delivered == 0 ? 0.0
                          : static_cast<double>(latencySum) /
                                static_cast<double>(delivered) / 1000.0;
  }
};

class Pleroma {
 public:
  using DeliveryCallback = std::function<void(const DeliveryRecord&)>;

  Pleroma(net::Topology topology, PleromaOptions options = {});

  // ---- pub/sub operations ---------------------------------------------

  ctrl::PublisherId advertise(net::NodeId host, const dz::Rectangle& rect);
  void unadvertise(ctrl::PublisherId id);
  ctrl::SubscriptionId subscribe(net::NodeId host, const dz::Rectangle& rect);
  void unsubscribe(ctrl::SubscriptionId id);

  /// Publishes one event from `host` into the data plane. Assigns the
  /// event id automatically when `id` is 0.
  net::EventId publish(net::NodeId host, const dz::Event& event,
                       net::EventId id = 0);

  /// Runs the simulator until all in-flight packets have been delivered.
  void settle() { sim_.run(); }
  /// Runs the simulator up to the given virtual time.
  void settleUntil(net::SimTime t) { sim_.runUntil(t); }

  void setDeliveryCallback(DeliveryCallback cb) { callback_ = std::move(cb); }

  // ---- dimension selection (Sec 5) --------------------------------------

  /// Re-runs spectral dimension selection over the recent event window and
  /// re-indexes the controller when the selected set changed. Returns the
  /// selected dimensions.
  std::vector<int> runDimensionSelection(double threshold = 0.9);

  /// Explicitly re-index on the given dimensions.
  void reindex(const std::vector<int>& dims) { controller().reindex(dims); }

  /// Enables the paper's periodic adaptation: every `everyNEvents`
  /// publications the controller re-runs dimension selection over the
  /// recent window and re-indexes when the selected set changed ("a
  /// controller periodically collects information about the events
  /// disseminated ... and repeats the dimension selection process", Sec 5).
  /// Pass 0 to disable.
  void setAutoDimensionSelection(std::size_t everyNEvents, double threshold = 0.9) {
    autoDimselEvery_ = everyNEvents;
    autoDimselThreshold_ = threshold;
    publishesSinceDimsel_ = 0;
  }

  /// Number of re-index operations the automatic selection performed.
  std::size_t autoReindexCount() const noexcept { return autoReindexCount_; }

  // ---- metrics ----------------------------------------------------------

  const DeliveryStats& deliveryStats() const noexcept { return stats_; }
  void resetDeliveryStats() noexcept { stats_ = DeliveryStats{}; }
  const std::vector<net::SimTime>& latencySamples() const noexcept {
    return latencies_;
  }
  void clearLatencySamples() noexcept { latencies_.clear(); }

  // ---- observability ----------------------------------------------------

  /// The instance-wide metrics registry. Every layer (flow tables, control
  /// channel, controller, installer, core) is attached to it at
  /// construction; families start enabled.
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Hop-by-hop event / controller-op tracer. Disabled by default; enable
  /// with tracer().setEnabled(true) before publishing/registering.
  obs::Tracer& tracer() noexcept { return tracer_; }
  const obs::Tracer& tracer() const noexcept { return tracer_; }

  /// Refreshes the snapshot-style gauges (simulator event counts,
  /// virtual/wall time ratio, network drop/forward counters) and returns
  /// the full registry as JSON.
  obs::JsonValue snapshotMetrics();

  // ---- access to the layers ---------------------------------------------

  /// The controller currently in charge: the original until a failover
  /// promotion, the promoted replica after.
  ctrl::Controller& controller() noexcept {
    return failover_ ? failover_->active() : *controller_;
  }
  /// Failover layer, present only with FailoverOptions::enableStandby.
  ctrl::FailoverManager* failover() noexcept { return failover_.get(); }
  ctrl::StandbyController* standby() noexcept { return standby_.get(); }
  net::Network& network() noexcept { return *network_; }
  net::Simulator& simulator() noexcept { return sim_; }
  const net::Topology& topology() const { return network_->topology(); }
  /// Worker threads in use (1 when no pool was requested).
  int threads() const noexcept { return pool_ ? pool_->threads() : 1; }

 private:
  void onDeliver(net::NodeId host, const net::Packet& packet);

  obs::MetricsRegistry metrics_;  // before network/controller: outlives them
  obs::Tracer tracer_;
  /// Shared by simulator and controller; before sim_ so it outlives users.
  std::unique_ptr<util::WorkerPool> pool_;
  net::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<ctrl::Controller> controller_;
  /// Failover layer (optional). Declared after controller_ / network_: the
  /// standby and manager reference both.
  std::unique_ptr<ctrl::StandbyController> standby_;
  std::unique_ptr<ctrl::FailoverManager> failover_;
  std::map<ctrl::SubscriptionId, std::pair<net::NodeId, dz::Rectangle>> subs_;
  /// Per-host view of subs_, indexed by NodeId for the delivery hot path.
  /// Rectangle pointers alias subs_ map nodes (stable across insert/erase).
  struct HostSub {
    ctrl::SubscriptionId id;
    const dz::Rectangle* rect;
  };
  std::vector<std::vector<HostSub>> subsByHost_;
  DeliveryCallback callback_;
  DeliveryStats stats_;
  std::vector<net::SimTime> latencies_;
  std::deque<dz::Event> eventWindow_;
  std::size_t dimensionWindow_;
  net::EventId nextEventId_ = 1;
  std::size_t autoDimselEvery_ = 0;
  double autoDimselThreshold_ = 0.9;
  std::size_t publishesSinceDimsel_ = 0;
  std::size_t autoReindexCount_ = 0;
  std::size_t reindexes_ = 0;

  obs::Counter* obsPublishes_ = nullptr;
  obs::Counter* obsDeliveries_ = nullptr;
  obs::Counter* obsFalsePositives_ = nullptr;
  obs::Histogram* obsDeliveryLatency_ = nullptr;
};

}  // namespace pleroma::core
