#include "core/pleroma.hpp"

#include <algorithm>

namespace pleroma::core {

Pleroma::Pleroma(net::Topology topology, PleromaOptions options)
    : dimensionWindow_(options.dimensionWindow) {
  if (options.threads > 1) {
    pool_ = std::make_unique<util::WorkerPool>(options.threads,
                                               options.pinWorkers);
    sim_.setWorkerPool(pool_.get());
  }
  network_ = std::make_unique<net::Network>(std::move(topology), sim_,
                                            options.network);
  if (pool_ && options.shardPlacement == util::ShardPlacement::kBlock) {
    sim_.setShardPlacement(
        net::blockShardPlacement(network_->topology(), pool_->threads()));
  }
  subsByHost_.resize(
      static_cast<std::size_t>(network_->topology().nodeCount()));
  controller_ = std::make_unique<ctrl::Controller>(
      dz::EventSpace(options.numAttributes, options.bitsPerDim), *network_,
      ctrl::Scope::wholeTopology(network_->topology()), options.controller);
  if (options.asyncFlowInstall) controller_->channel().enableAsyncInstall();
  if (pool_) controller_->setWorkerPool(pool_.get());
  network_->setDeliverHandler(
      [this](net::NodeId host, const net::Packet& pkt) { onDeliver(host, pkt); });

  network_->attachObservability(metrics_, &tracer_);
  controller_->attachObservability(metrics_, &tracer_);
  if (options.failover.enableStandby) {
    // The standby must attach before any registration (its replay starts
    // from an empty history); constructing it here guarantees that.
    standby_ = std::make_unique<ctrl::StandbyController>(*controller_);
    failover_ = std::make_unique<ctrl::FailoverManager>(
        *controller_, *standby_, options.failover.config);
    if (pool_) failover_->setWorkerPool(pool_.get());
    failover_->attachMetrics(metrics_);
    failover_->setPromotionCallback([this](ctrl::Controller& promoted) {
      promoted.attachObservability(metrics_, &tracer_);
    });
    if (options.failover.autoStart) failover_->start();
  }
  obsPublishes_ = &metrics_.counter("core.publishes");
  obsDeliveries_ = &metrics_.counter("core.deliveries");
  obsFalsePositives_ = &metrics_.counter("core.false_positive_deliveries");
  obsDeliveryLatency_ = &metrics_.histogram("core.delivery_latency_ns");
}

ctrl::PublisherId Pleroma::advertise(net::NodeId host, const dz::Rectangle& rect) {
  return controller().advertise(host, rect);
}

void Pleroma::unadvertise(ctrl::PublisherId id) { controller().unadvertise(id); }

ctrl::SubscriptionId Pleroma::subscribe(net::NodeId host,
                                        const dz::Rectangle& rect) {
  const ctrl::SubscriptionId id = controller().subscribe(host, rect);
  const auto [it, inserted] = subs_.emplace(id, std::make_pair(host, rect));
  (void)inserted;
  subsByHost_[static_cast<std::size_t>(host)].push_back(
      HostSub{id, &it->second.second});
  return id;
}

void Pleroma::unsubscribe(ctrl::SubscriptionId id) {
  controller().unsubscribe(id);
  const auto it = subs_.find(id);
  if (it != subs_.end()) {
    auto& list = subsByHost_[static_cast<std::size_t>(it->second.first)];
    std::erase_if(list, [id](const HostSub& s) { return s.id == id; });
    subs_.erase(it);
  }
}

net::EventId Pleroma::publish(net::NodeId host, const dz::Event& event,
                              net::EventId id) {
  if (id == 0) id = nextEventId_++;
  obsPublishes_->inc();
  net::Packet packet = controller().makeEventPacket(host, event, id);
  if (tracer_.enabled()) {
    // Root of the event's data-plane span tree: traceId = event id.
    const obs::SpanId root = tracer_.instant(id, obs::kNoSpan, "publish",
                                             sim_.now(), host);
    tracer_.annotate(root, "dz", packet.eventDz().toString());
    packet.traceSpan = root;
  }
  network_->sendFromHost(host, std::move(packet));
  eventWindow_.push_back(event);
  while (eventWindow_.size() > dimensionWindow_) eventWindow_.pop_front();
  if (autoDimselEvery_ != 0 && ++publishesSinceDimsel_ >= autoDimselEvery_) {
    publishesSinceDimsel_ = 0;
    const std::size_t reindexesBefore = reindexes_;
    runDimensionSelection(autoDimselThreshold_);
    if (reindexes_ != reindexesBefore) ++autoReindexCount_;
  }
  return id;
}

void Pleroma::onDeliver(net::NodeId host, const net::Packet& packet) {
  DeliveryRecord rec;
  rec.host = host;
  rec.eventId = packet.eventId();
  rec.latency = sim_.now() - packet.sentAt();

  // A delivery is a false positive when no subscription registered at this
  // host actually matches the event's exact attribute values (Sec 6.4).
  bool matched = false;
  for (const HostSub& sub : subsByHost_[static_cast<std::size_t>(host)]) {
    if (sub.rect->contains(packet.event())) {
      matched = true;
      break;
    }
  }
  rec.falsePositive = !matched;

  ++stats_.delivered;
  if (rec.falsePositive) ++stats_.falsePositives;
  stats_.latencySum += rec.latency;
  latencies_.push_back(rec.latency);

  obsDeliveries_->inc();
  if (rec.falsePositive) obsFalsePositives_->inc();
  obsDeliveryLatency_->record(static_cast<double>(rec.latency));
  if (tracer_.enabled()) {
    const obs::SpanId span = tracer_.instant(packet.eventId(), packet.traceSpan,
                                             "app_deliver", sim_.now(), host);
    if (rec.falsePositive) tracer_.annotate(span, "false_positive", "true");
  }
  if (callback_) callback_(rec);
}

obs::JsonValue Pleroma::snapshotMetrics() {
  metrics_.gauge("sim.events_executed")
      .set(static_cast<double>(sim_.processedEvents()));
  metrics_.gauge("sim.virtual_time_ns").set(static_cast<double>(sim_.now()));
  metrics_.gauge("sim.wall_time_ns")
      .set(static_cast<double>(sim_.wallTimeNanos()));
  metrics_.gauge("sim.virtual_wall_ratio")
      .set(sim_.wallTimeNanos() == 0
               ? 0.0
               : static_cast<double>(sim_.now()) /
                     static_cast<double>(sim_.wallTimeNanos()));
  const net::NetworkCounters& nc = network_->counters();
  metrics_.gauge("net.packets_forwarded")
      .set(static_cast<double>(nc.packetsForwarded));
  metrics_.gauge("net.packets_punted")
      .set(static_cast<double>(nc.packetsPuntedToController));
  metrics_.gauge("net.packets_delivered")
      .set(static_cast<double>(nc.packetsDeliveredToHosts));
  // One gauge per drop reason, named from the shared taxonomy so metrics,
  // the CLI `stats` command and bench reports agree on the labels.
  for (std::size_t r = 0; r < net::kDropReasonCount; ++r) {
    const auto reason = static_cast<net::DropReason>(r);
    metrics_.gauge(std::string("net.drops_") + net::dropReasonName(reason))
        .set(static_cast<double>(nc.dropped(reason)));
  }
  metrics_.gauge("net.drops_total")
      .set(static_cast<double>(nc.totalDropped()));
  metrics_.gauge("net.miss_buffered")
      .set(static_cast<double>(nc.packetsBufferedOnMiss));
  metrics_.gauge("net.miss_replayed")
      .set(static_cast<double>(nc.packetsReplayedFromMissBuffer));
  metrics_.gauge("net.link_bytes_total")
      .set(static_cast<double>(network_->totalLinkBytes()));
  const net::Network::Stats occupancy = network_->stats();
  metrics_.gauge("net.queued_hosts")
      .set(static_cast<double>(occupancy.hostQueued));
  metrics_.gauge("net.queued_links")
      .set(static_cast<double>(occupancy.linkQueued));
  metrics_.gauge("net.bp_parked")
      .set(static_cast<double>(occupancy.backpressureParked));
  metrics_.gauge("net.bp_retries")
      .set(static_cast<double>(nc.backpressureRetries));
  metrics_.gauge("net.peak_link_queue_depth")
      .set(static_cast<double>(occupancy.peakLinkQueueDepth));
  return metrics_.toJson();
}

std::vector<int> Pleroma::runDimensionSelection(double threshold) {
  std::vector<dz::Rectangle> rects;
  rects.reserve(subs_.size());
  for (const auto& [id, hostRect] : subs_) rects.push_back(hostRect.second);
  const std::vector<dz::Event> window(eventWindow_.begin(), eventWindow_.end());
  std::vector<int> dims = dimsel::selectDimensions(
      window, rects, controller().space().numAttributes(), threshold);
  if (dims.empty()) return dims;
  std::vector<int> sorted = dims;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> current = controller().space().indexedDimensions();
  std::sort(current.begin(), current.end());
  if (sorted != current) {
    controller().reindex(dims);
    ++reindexes_;
  }
  return dims;
}

}  // namespace pleroma::core
