// In-band registration signalling (Sec 2 of the paper): hosts are not part
// of the SDN control network, so a publisher/subscriber sends its
// advertisement/subscription in a packet addressed to the reserved IP_mid.
// No switch installs flows for IP_mid, so the first switch punts the packet
// to the controller over the control network; the controller processes the
// request and acknowledges with a packet-out to the requesting host.
//
// The facade's direct API (core::Pleroma::subscribe etc.) bypasses this
// wire path for convenience; InBandSignaling provides the faithful
// packet-based path on top of any Network + Controller pair. Registrations
// are asynchronous: the caller receives a request token immediately and the
// handle once the acknowledgement packet arrives back at the host.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "controller/controller.hpp"
#include "net/network.hpp"

namespace pleroma::core {

/// Kinds of in-band requests (carried inside an IP_mid packet).
enum class RequestKind { kAdvertise, kSubscribe, kUnadvertise, kUnsubscribe };

/// Outcome of one request, delivered with the acknowledgement.
struct Ack {
  std::uint64_t token = 0;
  RequestKind kind = RequestKind::kAdvertise;
  bool ok = false;
  /// Publisher or subscription id assigned by the controller (for
  /// kAdvertise / kSubscribe).
  std::int64_t assignedId = -1;
};

class InBandSignaling {
 public:
  /// `controlKind` tags this protocol's packets so several packet-in
  /// consumers can coexist on one network (interop uses kind 1).
  static constexpr int kControlKind = 2;

  using AckCallback = std::function<void(net::NodeId host, const Ack&)>;

  /// Installs itself as the network's packet-in AND delivery handler,
  /// chained in front of the given fallthroughs: `packetInFallthrough`
  /// receives non-registration punts (e.g. interop messages) and
  /// `deliverFallthrough` receives ordinary event deliveries at hosts.
  InBandSignaling(net::Network& network, ctrl::Controller& controller,
                  net::Network::PacketInHandler packetInFallthrough = nullptr,
                  net::Network::DeliverHandler deliverFallthrough = nullptr);

  /// Called when an acknowledgement reaches the requesting host.
  void setAckCallback(AckCallback cb) { ackCallback_ = std::move(cb); }

  /// Expires a pending request `timeout` of simulated time after it is
  /// sent: when no acknowledgement has arrived by then (the request or the
  /// ack was lost — e.g. to a link outage), the host observes Ack{ok=false}
  /// through the callback / ackFor instead of waiting forever. A late real
  /// ack arriving after the expiry is ignored (first outcome wins). 0
  /// disables the timer (seed behaviour).
  void setRequestTimeout(net::SimTime timeout) { requestTimeout_ = timeout; }
  net::SimTime requestTimeout() const noexcept { return requestTimeout_; }

  /// Requests that expired without an acknowledgement.
  std::uint64_t requestTimeouts() const noexcept { return timeouts_; }

  // --- host side: craft and send request packets -----------------------

  std::uint64_t sendAdvertise(net::NodeId host, const dz::Rectangle& rect);
  std::uint64_t sendSubscribe(net::NodeId host, const dz::Rectangle& rect);
  std::uint64_t sendUnadvertise(net::NodeId host, ctrl::PublisherId id);
  std::uint64_t sendUnsubscribe(net::NodeId host, ctrl::SubscriptionId id);

  /// Acks observed so far, by token (for polling instead of the callback).
  std::optional<Ack> ackFor(std::uint64_t token) const;

  std::uint64_t requestsProcessed() const noexcept { return processed_; }

 private:
  struct Request {
    RequestKind kind;
    std::uint64_t token;
    net::NodeId host;
    dz::Rectangle rect;     // for adv/sub
    std::int64_t target{};  // for unadv/unsub
  };

  std::uint64_t sendRequest(Request request);
  void onPacketIn(net::NodeId switchNode, net::PortId inPort,
                  net::Packet&& packet);
  void onAckAtHost(net::NodeId host, const net::Packet& packet);

  net::Network& network_;
  ctrl::Controller& controller_;
  net::Network::PacketInHandler fallthrough_;
  AckCallback ackCallback_;
  std::map<std::uint64_t, Ack> acks_;
  std::uint64_t nextToken_ = 1;
  std::uint64_t processed_ = 0;
  net::SimTime requestTimeout_ = 0;
  std::uint64_t timeouts_ = 0;
};

}  // namespace pleroma::core
