#include "core/script_runner.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "scenario/scenario.hpp"

namespace pleroma::core {

ScriptRunner::ScriptRunner(OutputSink sink) : sink_(std::move(sink)) {
  reset(net::Topology::testbedFatTree(), 2, 10);
}

void ScriptRunner::reset(net::Topology topo, int attrs, int bits,
                         std::optional<ctrl::ControllerConfig> controller) {
  PleromaOptions options;
  options.numAttributes = attrs;
  options.bitsPerDim = bits;
  if (controller.has_value()) {
    options.controller = *controller;
  } else {
    options.controller.maxCellsPerRequest = 32;
  }
  middleware_ = std::make_unique<Pleroma>(std::move(topo), options);
  attrs_ = attrs;
  pendingDeliveries_.clear();
  middleware_->setDeliveryCallback(
      [this](const DeliveryRecord& r) { pendingDeliveries_.push_back(r); });
}

net::NodeId ScriptRunner::hostByName(const std::string& name) const {
  for (const net::NodeId h : middleware_->topology().hosts()) {
    if (middleware_->topology().node(h).name == name) return h;
  }
  return net::kInvalidNode;
}

net::NodeId ScriptRunner::switchByName(const std::string& name) const {
  for (const net::NodeId s : middleware_->topology().switches()) {
    if (middleware_->topology().node(s).name == name) return s;
  }
  return net::kInvalidNode;
}

bool ScriptRunner::parseRanges(std::istream& in, dz::Rectangle& rect) const {
  std::string token;
  while (in >> token) {
    const auto colon = token.find(':');
    if (colon == std::string::npos) return false;
    try {
      const auto lo =
          static_cast<dz::AttributeValue>(std::stoul(token.substr(0, colon)));
      const auto hi =
          static_cast<dz::AttributeValue>(std::stoul(token.substr(colon + 1)));
      rect.ranges.push_back(dz::Range{lo, hi});
    } catch (const std::exception&) {
      return false;
    }
  }
  return rect.ranges.size() == static_cast<std::size_t>(attrs_);
}

bool ScriptRunner::executeLine(const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  if (!(in >> cmd) || cmd[0] == '#') return true;

  if (cmd == "quit" || cmd == "exit") return false;

  if (cmd == "topo") {
    std::string kind;
    in >> kind;
    if (kind == "fat-tree") {
      reset(net::Topology::testbedFatTree(), attrs_, 10);
    } else if (kind == "ring" || kind == "line") {
      int n = 6;
      in >> n;
      reset(kind == "ring" ? net::Topology::ring(n) : net::Topology::line(n),
            attrs_, 10);
    } else if (kind == "random") {
      int n = 8, extra = 3;
      std::uint64_t seed = 1;
      in >> n >> extra >> seed;
      reset(net::Topology::randomConnected(n, extra, seed), attrs_, 10);
    } else {
      emitf("error: unknown topology '%s'", kind.c_str());
      return true;
    }
    emitf("ok: %zu switches, %zu hosts",
          middleware_->topology().switches().size(),
          middleware_->topology().hosts().size());
  } else if (cmd == "attrs") {
    int k = 2, bits = 10;
    in >> k;
    if (!(in >> bits)) bits = 10;
    if (k < 1 || bits < 1 || bits > 20) {
      emit("error: attrs K [BITS] with K>=1, 1<=BITS<=20");
      return true;
    }
    reset(net::Topology::testbedFatTree(), k, bits);
    emitf("ok: %d attributes, %d bits each", k, bits);
  } else if (cmd == "adv" || cmd == "sub") {
    std::string hostName;
    in >> hostName;
    const net::NodeId host = hostByName(hostName);
    if (host == net::kInvalidNode) {
      emitf("error: unknown host '%s'", hostName.c_str());
      return true;
    }
    dz::Rectangle rect;
    if (!parseRanges(in, rect)) {
      emitf("error: expected %d lo:hi ranges", attrs_);
      return true;
    }
    if (cmd == "adv") {
      const auto id = middleware_->advertise(host, rect);
      emitf("publisher %lld (dz=%s)", static_cast<long long>(id),
            middleware_->controller().advertisementDz(id).toString().c_str());
    } else {
      const auto id = middleware_->subscribe(host, rect);
      emitf("subscription %lld (dz=%s)", static_cast<long long>(id),
            middleware_->controller().subscriptionDz(id).toString().c_str());
    }
  } else if (cmd == "unadv" || cmd == "unsub") {
    long long id = -1;
    if (!(in >> id)) {
      emit("error: expected an id");
      return true;
    }
    if (cmd == "unadv") {
      middleware_->unadvertise(id);
    } else {
      middleware_->unsubscribe(id);
    }
    emit("ok");
  } else if (cmd == "pub") {
    std::string hostName;
    in >> hostName;
    const net::NodeId host = hostByName(hostName);
    if (host == net::kInvalidNode) {
      emitf("error: unknown host '%s'", hostName.c_str());
      return true;
    }
    dz::Event e;
    unsigned long v = 0;
    while (in >> v) e.push_back(static_cast<dz::AttributeValue>(v));
    if (e.size() != static_cast<std::size_t>(attrs_)) {
      emitf("error: expected %d attribute values", attrs_);
      return true;
    }
    const auto id = middleware_->publish(host, e);
    emitf("event %llu published (dz=%s)", static_cast<unsigned long long>(id),
          middleware_->controller().stampEvent(e).toString().c_str());
  } else if (cmd == "fail" || cmd == "restore") {
    int link = -1;
    if (!(in >> link) || link < 0 ||
        link >= middleware_->topology().linkCount()) {
      emit("error: expected a valid link id");
      return true;
    }
    const bool up = cmd == "restore";
    middleware_->network().setLinkUp(link, up);
    if (up) {
      middleware_->controller().onLinkUp(link);
    } else {
      middleware_->controller().onLinkDown(link);
    }
    emitf("ok: link %d %s", link, up ? "restored" : "failed");
  } else if (cmd == "run") {
    middleware_->settle();
    for (const auto& d : pendingDeliveries_) {
      emitf("  event %llu -> %s (%.0f us%s)",
            static_cast<unsigned long long>(d.eventId),
            middleware_->topology().node(d.host).name.c_str(),
            static_cast<double>(d.latency) / 1000.0,
            d.falsePositive ? ", false positive" : "");
    }
    emitf("ok: %zu deliveries", pendingDeliveries_.size());
    pendingDeliveries_.clear();
  } else if (cmd == "trees") {
    for (const auto* t : middleware_->controller().trees()) {
      emitf("  tree %d root=%s DZ=%s publishers=%zu", t->id(),
            middleware_->topology().node(t->root()).name.c_str(),
            t->dzSet().toString().c_str(), t->publishers().size());
    }
    emitf("ok: %zu trees", middleware_->controller().treeCount());
  } else if (cmd == "flows") {
    std::string swName;
    in >> swName;
    const net::NodeId sw = switchByName(swName);
    if (sw == net::kInvalidNode) {
      emitf("error: unknown switch '%s'", swName.c_str());
      return true;
    }
    for (const auto& e : middleware_->network().flowTable(sw).entries()) {
      emitf("  %s matched=%llu", e.toString().c_str(),
            static_cast<unsigned long long>(e.matchedPackets));
    }
    emitf("ok: %zu flows", middleware_->network().flowTable(sw).size());
  } else if (cmd == "dimsel") {
    double threshold = 0.9;
    in >> threshold;
    const auto dims = middleware_->runDimensionSelection(threshold);
    std::string out = "ok: indexing dimensions";
    for (const int d : dims) out += " " + std::to_string(d);
    emit(out);
  } else if (cmd == "stats") {
    std::string mode;
    in >> mode;
    if (mode == "metrics") {
      middleware_->snapshotMetrics();  // refresh snapshot-style gauges
      std::istringstream text(middleware_->metrics().toText());
      std::string metricLine;
      std::size_t n = 0;
      while (std::getline(text, metricLine)) {
        if (metricLine.empty()) continue;
        emit("  " + metricLine);
        ++n;
      }
      emitf("ok: %zu metrics", n);
      return true;
    }
    if (mode == "json") {
      emit(middleware_->snapshotMetrics().dump());
      return true;
    }
    if (!mode.empty()) {
      emitf("error: stats [metrics|json], not '%s'", mode.c_str());
      return true;
    }
    const auto& ds = middleware_->deliveryStats();
    const auto& cs = middleware_->controller().controlStats();
    std::size_t flows = 0;
    for (const net::NodeId sw : middleware_->topology().switches()) {
      flows += middleware_->network().flowTable(sw).size();
    }
    emitf(
        "delivered=%llu falsePositives=%llu meanLatency=%.0fus flows=%zu "
        "flowMods=%llu trees=%zu",
        static_cast<unsigned long long>(ds.delivered),
        static_cast<unsigned long long>(ds.falsePositives), ds.meanLatencyUs(),
        flows, static_cast<unsigned long long>(cs.flowModsSent),
        middleware_->controller().treeCount());
    const net::NetworkCounters& nc = middleware_->network().counters();
    std::string drops = "drops:";
    for (std::size_t r = 0; r < net::kDropReasonCount; ++r) {
      const auto reason = static_cast<net::DropReason>(r);
      drops += std::string(" ") + net::dropReasonName(reason) + "=" +
               std::to_string(nc.dropped(reason));
    }
    drops += " total=" + std::to_string(nc.totalDropped());
    emit(drops);
    const net::Network::Stats occ = middleware_->network().stats();
    emitf(
        "queued: hosts=%zu links=%zu bpParked=%zu missBuffered=%zu "
        "peakLinkDepth=%zu bpRetries=%llu",
        occ.hostQueued, occ.linkQueued, occ.backpressureParked,
        occ.missBuffered, occ.peakLinkQueueDepth,
        static_cast<unsigned long long>(nc.backpressureRetries));
  } else if (cmd == "scenario") {
    std::string path;
    in >> path;
    if (path.empty()) {
      emit("error: scenario FILE.json");
      return true;
    }
    std::string error;
    auto s = scenario::Scenario::loadFile(path, &error);
    if (!s.has_value()) {
      emitf("error: %s", error.c_str());
      return true;
    }
    if (!s->validate(&error)) {
      emitf("error: %s: %s", path.c_str(), error.c_str());
      return true;
    }
    if (s->partitions > 1) {
      emit("error: multi-partition scenarios need the scenario_run tool");
      return true;
    }
    ctrl::ControllerConfig cfg;
    if (s->maxDzLength.has_value()) cfg.maxDzLength = *s->maxDzLength;
    if (s->maxCellsPerRequest.has_value()) {
      cfg.maxCellsPerRequest = *s->maxCellsPerRequest;
    }
    reset(s->buildTopology(), s->numAttributes, s->bitsPerDim, cfg);
    const auto hosts = middleware_->topology().hosts();
    struct Live {
      std::size_t slot;
      dz::Rectangle rect;
      ctrl::SubscriptionId id;
    };
    std::vector<Live> ledger;
    std::vector<std::size_t> advSlots;
    std::size_t published = 0;
    for (std::size_t p = 0; p < s->phases.size(); ++p) {
      const scenario::PhasePlan plan = scenario::buildPhasePlan(
          *s, p, hosts.size(), ledger.size(), /*smoke=*/false);
      std::vector<std::size_t> phaseAdv;
      for (const auto& [slot, rect] : plan.advertisements) {
        middleware_->advertise(hosts[slot], rect);
        advSlots.push_back(slot);
        phaseAdv.push_back(slot);
      }
      for (const auto& [slot, rect] : plan.subscriptions) {
        ledger.push_back({slot, rect, middleware_->subscribe(hosts[slot], rect)});
      }
      for (const workload::ChurnStep& step : plan.churnMoves) {
        Live& sub = ledger[step.subIndex];
        const std::size_t slot = (sub.slot + step.hostOffset) % hosts.size();
        middleware_->unsubscribe(sub.id);
        sub.id = middleware_->subscribe(hosts[slot], sub.rect);
        sub.slot = slot;
      }
      const std::vector<std::size_t>& pubs =
          phaseAdv.empty() ? advSlots : phaseAdv;
      for (const dz::Event& e : plan.events) {
        middleware_->publish(hosts[pubs[published % pubs.size()]], e);
        ++published;
      }
      emitf("  phase %zu (%s, %s): %zu adv, %zu sub, %zu moves, %zu events",
            p, s->phases[p].name.c_str(), scenario::toString(s->phases[p].family),
            plan.advertisements.size(), plan.subscriptions.size(),
            plan.churnMoves.size(), plan.events.size());
    }
    if (!s->faults.empty()) {
      emitf("  note: %zu fault(s) not applied (fault schedules need "
            "scenario_run)",
            s->faults.size());
    }
    emitf("ok: scenario %s deployed (%zu phases, %zu events in flight; "
          "type 'run' to settle)",
          s->name.c_str(), s->phases.size(), published);
  } else if (cmd == "source") {
    std::string path;
    in >> path;
    if (path.empty()) {
      emit("error: source FILE");
      return true;
    }
    if (sourceDepth_ >= 8) {
      emit("error: source nesting too deep");
      return true;
    }
    std::ifstream file(path);
    if (!file) {
      emitf("error: cannot open '%s'", path.c_str());
      return true;
    }
    std::ostringstream buf;
    buf << file.rdbuf();
    ++sourceDepth_;
    executeScript(buf.str());
    --sourceDepth_;
    emitf("ok: sourced %s", path.c_str());
  } else if (cmd == "help") {
    emit("commands: topo attrs adv sub unadv unsub pub fail restore run "
         "trees flows dimsel stats [metrics|json] scenario source quit");
  } else {
    emitf("error: unknown command '%s' (try help)", cmd.c_str());
  }
  return true;
}

void ScriptRunner::executeScript(const std::string& script) {
  std::istringstream in(script);
  std::string line;
  while (std::getline(in, line)) {
    if (!executeLine(line)) break;
  }
}

}  // namespace pleroma::core
