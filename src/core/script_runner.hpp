// A small command language for driving the middleware from scripts — used
// by the pleroma_cli example, by tests, and handy for reproducing bug
// reports. One command per line; '#' starts a comment.
//
//   topo fat-tree | topo ring N | topo line N | topo random N EXTRA SEED
//   attrs K [BITS]              reset middleware with K attributes
//   adv  HOST lo:hi [lo:hi...]  advertise a rectangle (prints publisher id)
//   sub  HOST lo:hi [lo:hi...]  subscribe (prints subscription id)
//   unadv ID | unsub ID
//   pub  HOST v1 [v2...]        publish an event
//   fail L | restore L          link failure injection (by link id)
//   run                         settle the simulator, print deliveries
//   trees | flows SWITCH
//   stats                       one-line delivery/control summary
//   stats metrics               metrics registry, one line per metric
//   stats json                  metrics snapshot as single-line JSON
//   dimsel [THRESHOLD]          run dimension selection and re-index
//   scenario FILE.json          load a pleroma-scenario-v1 file: reset to
//                               its topology/schema and deploy every
//                               phase's workload (single-partition only;
//                               fault schedules need scenario_run)
//   source FILE                 execute a plain command script from a file
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/pleroma.hpp"

namespace pleroma::core {

class ScriptRunner {
 public:
  /// Output lines are passed to `sink` (e.g. print, or collect in a test).
  using OutputSink = std::function<void(const std::string&)>;

  explicit ScriptRunner(OutputSink sink);

  /// Executes one command line. Returns false when the script asked to
  /// quit; errors are reported through the sink and return true.
  bool executeLine(const std::string& line);

  /// Executes a whole script (newline separated).
  void executeScript(const std::string& script);

  /// The middleware currently driven (recreated by `topo`/`attrs`).
  Pleroma& middleware() noexcept { return *middleware_; }

 private:
  void reset(net::Topology topo, int attrs, int bits,
             std::optional<ctrl::ControllerConfig> controller = std::nullopt);
  net::NodeId hostByName(const std::string& name) const;
  net::NodeId switchByName(const std::string& name) const;
  bool parseRanges(std::istream& in, dz::Rectangle& rect) const;
  void emit(const std::string& line) { sink_(line); }
  template <typename... Args>
  void emitf(const char* fmt, Args... args) {
    char buf[512];
    std::snprintf(buf, sizeof buf, fmt, args...);
    sink_(buf);
  }

  OutputSink sink_;
  std::unique_ptr<Pleroma> middleware_;
  int attrs_ = 2;
  std::vector<DeliveryRecord> pendingDeliveries_;
  /// `source` nesting depth; bounded so a file sourcing itself terminates.
  int sourceDepth_ = 0;
};

}  // namespace pleroma::core
