#include "core/in_band.hpp"

namespace pleroma::core {

InBandSignaling::InBandSignaling(net::Network& network,
                                 ctrl::Controller& controller,
                                 net::Network::PacketInHandler packetInFallthrough,
                                 net::Network::DeliverHandler deliverFallthrough)
    : network_(network),
      controller_(controller),
      fallthrough_(std::move(packetInFallthrough)) {
  network_.setPacketInHandler(
      [this](net::NodeId sw, net::PortId port, net::Packet&& pkt) {
        onPacketIn(sw, port, std::move(pkt));
      });
  network_.setDeliverHandler(
      [this, fall = std::move(deliverFallthrough)](net::NodeId host,
                                                   const net::Packet& pkt) {
        if (pkt.controlKind == kControlKind) {
          onAckAtHost(host, pkt);
        } else if (fall) {
          fall(host, pkt);
        }
      });
}

std::uint64_t InBandSignaling::sendRequest(Request request) {
  const std::uint64_t token = nextToken_++;
  request.token = token;

  if (requestTimeout_ > 0) {
    const net::NodeId host = request.host;
    const RequestKind kind = request.kind;
    network_.simulator().schedule(requestTimeout_, [this, token, host, kind] {
      if (acks_.contains(token)) return;  // acknowledged in time
      ++timeouts_;
      Ack expired;
      expired.token = token;
      expired.kind = kind;
      expired.ok = false;
      acks_.emplace(token, expired);
      if (ackCallback_) ackCallback_(host, expired);
    });
  }

  const net::NodeId requestHost = request.host;
  net::Packet pkt;
  pkt.dst = dz::kControlAddress;
  pkt.src = net::hostAddress(requestHost);
  pkt.sizeBytes = 64 + 8 * static_cast<int>(request.rect.ranges.size());
  pkt.controlKind = kControlKind;
  pkt.control = std::make_shared<Request>(std::move(request));
  network_.sendFromHost(requestHost, std::move(pkt));
  return token;
}

std::uint64_t InBandSignaling::sendAdvertise(net::NodeId host,
                                             const dz::Rectangle& rect) {
  return sendRequest(Request{RequestKind::kAdvertise, 0, host, rect, {}});
}

std::uint64_t InBandSignaling::sendSubscribe(net::NodeId host,
                                             const dz::Rectangle& rect) {
  return sendRequest(Request{RequestKind::kSubscribe, 0, host, rect, {}});
}

std::uint64_t InBandSignaling::sendUnadvertise(net::NodeId host,
                                               ctrl::PublisherId id) {
  return sendRequest(Request{RequestKind::kUnadvertise, 0, host, {}, id});
}

std::uint64_t InBandSignaling::sendUnsubscribe(net::NodeId host,
                                               ctrl::SubscriptionId id) {
  return sendRequest(Request{RequestKind::kUnsubscribe, 0, host, {}, id});
}

void InBandSignaling::onPacketIn(net::NodeId switchNode, net::PortId inPort,
                                 net::Packet&& packet) {
  if (packet.controlKind != kControlKind || packet.control == nullptr) {
    if (fallthrough_) fallthrough_(switchNode, inPort, std::move(packet));
    return;
  }
  const auto& request = *static_cast<const Request*>(packet.control.get());
  ++processed_;

  Ack ack;
  ack.token = request.token;
  ack.kind = request.kind;
  switch (request.kind) {
    case RequestKind::kAdvertise:
      ack.assignedId = controller_.advertise(request.host, request.rect);
      ack.ok = true;
      break;
    case RequestKind::kSubscribe:
      ack.assignedId = controller_.subscribe(request.host, request.rect);
      ack.ok = true;
      break;
    case RequestKind::kUnadvertise:
      controller_.unadvertise(request.target);
      ack.ok = true;
      break;
    case RequestKind::kUnsubscribe:
      controller_.unsubscribe(request.target);
      ack.ok = true;
      break;
  }

  // Acknowledge with a packet-out through the port the request arrived on
  // (the requesting host's access port).
  net::Packet reply;
  reply.dst = net::hostAddress(request.host);
  reply.sizeBytes = 64;
  reply.controlKind = kControlKind;
  reply.control = std::make_shared<Ack>(ack);
  network_.sendOutPort(switchNode, inPort, std::move(reply));
}

void InBandSignaling::onAckAtHost(net::NodeId host, const net::Packet& packet) {
  if (packet.control == nullptr) return;
  const Ack& ack = *static_cast<const Ack*>(packet.control.get());
  // First outcome wins: a real ack straggling in after the request already
  // expired is dropped (the host moved on).
  if (!acks_.emplace(ack.token, ack).second) return;
  if (ackCallback_) ackCallback_(host, ack);
}

std::optional<Ack> InBandSignaling::ackFor(std::uint64_t token) const {
  const auto it = acks_.find(token);
  if (it == acks_.end()) return std::nullopt;
  return it->second;
}

}  // namespace pleroma::core
