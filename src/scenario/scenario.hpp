// Declarative scenario format (schema "pleroma-scenario-v1"): one JSON
// document describes a full experiment — topology, attribute schema,
// partitions, workload phases, a fault schedule, and seeds — so opening a
// new workload means writing data, not another C++ bench binary.
//
//   {
//     "schema": "pleroma-scenario-v1",
//     "name": "flash_crowd",               // becomes BENCH_<name>.json
//     "description": "...",                // optional
//     "seed": 42,
//     "topology": { "kind": "testbed-fat-tree" },   // see TopologySpec
//     "attributes": { "count": 2, "bits": 10 },
//     "partitions": 1,                     // >1 => interop::MultiDomain
//     "controller": { "max_dz_length": 24, "max_cells_per_request": 8,
//                     "aggregate_subscriptions": true, "tcam_budget": 512 },
//     "failover": { "heartbeat_ms": 10, "miss_threshold": 3 },  // optional
//     "network": { "link_queue_capacity": 8, "backpressure": true },
//     "rebalance": { "interval_us": 1000, "hot_threshold": 2.0,
//                    "congestion_factor": 8.0 },     // optional, see §15
//     "workload": { "selectivity": 0.1, ... },      // phase defaults
//     "phases": [ { "name": "warmup", "family": "uniform",
//                   "advertisements": 4, "subscriptions": 100,
//                   "events": 200, "event_interval_us": 100, ... }, ... ],
//     "faults": [ { "at_ms": 5.0, "action": "link-down", "target": 3 } ],
//     "smoke": { "max_subscriptions": 32, ... }     // --smoke caps
//   }
//
// Parsing uses the strict obs::JsonValue parser; every rejection names the
// offending field path (e.g. "phases[2].family") or, for syntax errors,
// the line of the input. Unknown keys are rejected — a typo fails loudly
// instead of silently running a different experiment.
//
// The spec layer (this header) depends only on net/workload/obs so that
// core::ScriptRunner can load scenarios interactively; the execution layer
// lives in scenario::ScenarioRunner (runner.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/topology.hpp"
#include "obs/json.hpp"
#include "workload/workload.hpp"

namespace pleroma::scenario {

inline constexpr const char* kScenarioSchema = "pleroma-scenario-v1";

enum class TopologyKind {
  kTestbedFatTree,  ///< the Fig 6 Stuttgart testbed (10 switches, 8 hosts)
  kFatTree,         ///< generic two-level fat-tree (core x agg x edge x hosts)
  kKAryFatTree,     ///< canonical k-ary three-level fat-tree
  kRing,
  kLine,
  kRandom,          ///< random connected switch graph, one host per switch
};

struct TopologySpec {
  TopologyKind kind = TopologyKind::kTestbedFatTree;
  int switches = 8;                ///< ring / line / random
  int core = 2;                    ///< fat-tree
  int aggregation = 4;             ///< fat-tree
  int edgePerAgg = 1;              ///< fat-tree
  int hostsPerEdge = 2;            ///< fat-tree
  int k = 4;                       ///< k-ary fat-tree
  int extraLinks = 3;              ///< random
  std::uint64_t topoSeed = 1;      ///< random
  net::SimTime linkLatency = 50 * net::kMicrosecond;
  /// Uniform link bandwidth ("link_bandwidth_mbps"); 0 keeps the default
  /// infinite-bandwidth links. Finite bandwidth is what makes the finite
  /// link queues of the `network` block bind (DESIGN.md §15).
  double linkBandwidthBps = 0.0;
};

/// Data-plane congestion knobs (DESIGN.md §15): finite per-direction link
/// transmit queues, optionally with backpressure (park upstream and retry
/// instead of dropping). Requires a finite topology.link_bandwidth_mbps —
/// with infinite bandwidth nothing ever queues, so validate() rejects the
/// combination as a silent no-op.
struct NetworkSpec {
  std::size_t linkQueueCapacity = 0;  ///< 0 = legacy contention-free links
  bool backpressure = false;
};

/// Closed-loop congestion reaction: a net::CongestionMonitor samples the
/// data plane and a periodic ctrl::LoadMonitor reroots overloaded spanning
/// trees with congestion-weighted link costs (DESIGN.md §15).
struct RebalanceSpec {
  bool enabled = false;
  net::SimTime interval = net::kMillisecond;  ///< "interval_us"
  double hotThreshold = 2.0;                  ///< "hot_threshold"
  double congestionFactor = 8.0;              ///< "congestion_factor"
};

/// Workload families a phase can select. kChurn registers uniform
/// subscriptions and then re-homes them with timed unsub+resub moves
/// (subscriber mobility); the other families map onto workload::Model.
enum class Family { kUniform, kZipfian, kFlashCrowd, kChurn, kWideEventSpace };

struct PhaseSpec {
  std::string name;
  Family family = Family::kUniform;
  std::size_t advertisements = 0;
  std::size_t subscriptions = 0;
  std::size_t events = 0;
  std::size_t churnMoves = 0;  ///< kChurn: timed unsub+resub moves
  net::SimTime eventInterval = 100 * net::kMicrosecond;
  /// Overrides of the scenario-level workload defaults (absent = inherit).
  std::optional<double> selectivity;
  std::optional<int> hotspots;
  std::optional<double> zipfAlpha;
  std::optional<double> hotspotRadius;
  /// kFlashCrowd: crowd region (fractions of the domain).
  std::vector<double> crowdCentre;
  double crowdRadius = 0.05;
  /// Dimensions made useless for filtering in this phase (any family) —
  /// the knob behind uninformative-dimension sweeps.
  std::vector<int> uninformativeDims;
};

enum class FaultAction { kLinkDown, kLinkUp, kSwitchDown, kSwitchUp, kControllerKill };

/// One fault-schedule entry. `target` is a link id for link actions and an
/// index into Topology::switches() for switch actions; it is ignored for
/// controller-kill. Faults apply at the first workload timeline step at or
/// after `at` (virtual time), so a schedule replays identically at any
/// thread count.
struct FaultSpec {
  net::SimTime at = 0;
  FaultAction action = FaultAction::kLinkDown;
  int target = -1;
};

struct FailoverSpec {
  bool enabled = false;
  net::SimTime heartbeatInterval = 10 * net::kMillisecond;
  int missThreshold = 3;
};

/// Scenario-level workload defaults shared by every phase.
struct WorkloadDefaults {
  double selectivity = 0.1;
  double advertisementWidthFactor = 4.0;
  int hotspots = 7;
  double zipfAlpha = 1.0;
  double hotspotRadius = 0.08;
};

/// Caps applied when a scenario runs in --smoke mode (CI): every phase's
/// counts shrink to min(count, cap) so the whole catalog executes in
/// seconds while still exercising every code path.
struct SmokeSpec {
  std::size_t maxAdvertisements = 8;
  std::size_t maxSubscriptions = 32;
  std::size_t maxEvents = 64;
  std::size_t maxChurnMoves = 16;
};

struct Scenario {
  std::string name;
  std::string description;
  std::uint64_t seed = 42;
  TopologySpec topology;
  int numAttributes = 2;
  int bitsPerDim = 10;
  int partitions = 1;
  std::optional<int> maxDzLength;
  std::optional<std::size_t> maxCellsPerRequest;
  /// Controller "aggregate_subscriptions" knob: per-endpoint
  /// covering/merging aggregation in front of the flow installer.
  std::optional<bool> aggregateSubscriptions;
  /// Controller "tcam_budget" knob: per-switch flow-entry budget; over
  /// budget the installer coarsens that switch's flows (0 = unlimited).
  std::optional<std::size_t> tcamBudget;
  FailoverSpec failover;
  NetworkSpec network;
  RebalanceSpec rebalance;
  WorkloadDefaults workload;
  std::vector<PhaseSpec> phases;
  std::vector<FaultSpec> faults;
  SmokeSpec smoke;

  /// Serializes every field explicitly (defaults included), so
  /// parse -> toJson -> parse is the identity on the document model.
  obs::JsonValue toJson() const;

  /// Builds a scenario from a parsed document. On failure returns nullopt
  /// and names the offending field path in *error.
  static std::optional<Scenario> fromJson(const obs::JsonValue& doc,
                                          std::string* error);

  /// Parses JSON text. Syntax errors report the 1-based line of the
  /// problem; structural errors report the field path.
  static std::optional<Scenario> parse(std::string_view text,
                                       std::string* error);

  /// Reads and parses a scenario file; errors are prefixed with the path.
  static std::optional<Scenario> loadFile(const std::string& path,
                                          std::string* error);

  /// Deep validation beyond structure: builds the topology to check fault
  /// targets and partition counts, checks phase cross-constraints (events
  /// need a prior advertisement, churn needs a prior subscription, dims in
  /// range, ...). Errors name the offending field.
  bool validate(std::string* error) const;

  net::Topology buildTopology() const;

  /// "testbed_fat_tree", "ring_20", "random_8_3", ... (bench metadata).
  std::string topologyLabel() const;
  /// The phase families joined with '+', e.g. "uniform+flash-crowd".
  std::string workloadLabel() const;

  /// True when the run needs the controller-HA layer: an explicit failover
  /// block or any controller-kill fault.
  bool needsFailover() const;
};

const char* toString(Family family) noexcept;
const char* toString(FaultAction action) noexcept;
const char* toString(TopologyKind kind) noexcept;

/// The fully materialized work of one phase, in deterministic generation
/// order: advertisements, then subscriptions, then churn moves, then
/// events — exactly the order a hand-coded bench would draw them from one
/// WorkloadGenerator seeded with derivePhaseSeed(seed, phaseIndex). Host
/// slots are indices into Topology::hosts(), assigned round-robin.
struct PhasePlan {
  std::vector<std::pair<std::size_t, dz::Rectangle>> advertisements;
  std::vector<std::pair<std::size_t, dz::Rectangle>> subscriptions;
  std::vector<workload::ChurnStep> churnMoves;
  std::vector<dz::Event> events;
  net::SimTime eventInterval = 100 * net::kMicrosecond;
};

/// The WorkloadConfig phase `phaseIndex` runs with: family mapped to a
/// workload::Model, per-phase overrides applied over the scenario
/// defaults, and the seed derived via workload::derivePhaseSeed.
workload::WorkloadConfig phaseWorkloadConfig(const Scenario& s,
                                             std::size_t phaseIndex);

/// Materializes phase `phaseIndex`. `hostCount` is the topology's host
/// count; `priorSubscriptions` the number of subscriptions deployed by
/// earlier phases (churn moves index the combined population); `smoke`
/// applies the scenario's smoke caps.
PhasePlan buildPhasePlan(const Scenario& s, std::size_t phaseIndex,
                         std::size_t hostCount,
                         std::size_t priorSubscriptions, bool smoke);

}  // namespace pleroma::scenario
