// Executes a validated Scenario: builds the topology, deploys every
// phase's materialized workload (advertisements, subscriptions, churn
// moves, paced events), applies the fault schedule at its virtual-time
// instants, and collects per-phase delivery/control-plane measurements.
//
// partitions == 1 drives a core::Pleroma instance (with the controller-HA
// layer armed when the scenario needs it); partitions > 1 drives an
// interop::MultiDomain. Everything measured derives from virtual time and
// deterministic counters, so a run is byte-identical at any --threads.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "scenario/scenario.hpp"

namespace pleroma::scenario {

struct RunOptions {
  /// Worker threads for the simulator (1 = sequential). Results are
  /// byte-identical at any value; only wall-clock changes.
  int threads = 1;
  /// Apply the scenario's smoke caps to every phase (CI mode).
  bool smoke = false;
  /// Optional progress sink (one line per phase / fault).
  std::function<void(const std::string&)> log;
};

struct PhaseResult {
  std::string name;
  Family family = Family::kUniform;
  std::size_t advertisements = 0;
  std::size_t subscriptions = 0;
  std::size_t churnMoves = 0;
  std::size_t events = 0;
  std::uint64_t delivered = 0;
  std::uint64_t falsePositives = 0;
  double meanLatencyUs = 0.0;
  /// Flow-mods the control plane issued during this phase. After a
  /// controller promotion the promoted channel starts from zero, so the
  /// delta is clamped (never negative).
  std::uint64_t flowMods = 0;
  /// Total TCAM entries across all switches at phase end.
  std::uint64_t flowEntries = 0;
  /// Virtual time at phase end.
  net::SimTime end = 0;
};

struct AppliedFault {
  FaultSpec spec;
  net::SimTime appliedAt = 0;  ///< virtual instant the fault took effect
};

/// End-of-run congestion accounting (DESIGN.md §15); populated only when
/// the scenario enables link queues or rebalancing.
struct CongestionResult {
  std::uint64_t queueDrops = 0;    ///< DropReason::kLinkQueue
  std::uint64_t bpDrops = 0;       ///< DropReason::kBackpressure
  std::uint64_t bpParks = 0;       ///< cumulative backpressure parks
  std::uint64_t bpRetries = 0;
  std::uint64_t peakLinkQueueDepth = 0;
  std::uint64_t rebalances = 0;    ///< load-aware tree reroots
};

struct RunResult {
  std::vector<PhaseResult> phases;
  std::vector<AppliedFault> faults;
  std::uint64_t delivered = 0;
  std::uint64_t falsePositives = 0;
  std::uint64_t published = 0;
  double meanLatencyUs = 0.0;
  std::uint64_t flowMods = 0;
  /// Inter-controller messages (multi-partition runs; 0 otherwise).
  std::uint64_t controlMessages = 0;
  /// True when a controller kill led to a standby promotion.
  bool promoted = false;
  CongestionResult congestion;
  net::SimTime end = 0;
};

class ScenarioRunner {
 public:
  /// The scenario must already be validate()d; run() asserts on obviously
  /// broken input but does not re-validate.
  explicit ScenarioRunner(Scenario scenario, RunOptions options = {});

  RunResult run();

  /// Fills a pleroma-bench-v1 report: metadata (seed, topology, workload,
  /// threads, scenario name/schema, partitions, smoke) plus the "phases",
  /// "faults" (when any applied), "congestion" (when link queues or
  /// rebalancing are enabled) and "totals" series.
  void report(obs::BenchReporter& out, const RunResult& result) const;

  const Scenario& scenario() const noexcept { return scenario_; }

 private:
  Scenario scenario_;
  RunOptions options_;
};

}  // namespace pleroma::scenario
