#include "scenario/runner.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "controller/load_monitor.hpp"
#include "core/pleroma.hpp"
#include "interop/multi_domain.hpp"
#include "net/congestion.hpp"

namespace pleroma::scenario {

namespace {

/// Cumulative counters sampled at phase boundaries; phase values are
/// deltas between snapshots.
struct Snapshot {
  std::uint64_t delivered = 0;
  std::uint64_t falsePositives = 0;
  net::SimTime latencySum = 0;
  std::uint64_t flowMods = 0;
  std::uint64_t flowEntries = 0;  ///< current total, not cumulative
  std::uint64_t controlMessages = 0;
};

/// Clamped delta: a controller promotion swaps in a fresh control channel
/// whose counters restart from zero, so `cur` may be below `prev`.
std::uint64_t delta(std::uint64_t cur, std::uint64_t prev) {
  return cur >= prev ? cur - prev : cur;
}

/// The deployment surface shared by the single-partition (core::Pleroma)
/// and multi-partition (interop::MultiDomain) execution paths. Host slots
/// are indices into Topology::hosts(); subscription handles are backend
/// tokens the phase loop threads through churn moves.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual std::size_t hostCount() const = 0;
  virtual void advertise(std::size_t slot, const dz::Rectangle& rect) = 0;
  virtual std::uint64_t subscribe(std::size_t slot, const dz::Rectangle& rect) = 0;
  virtual void unsubscribe(std::uint64_t handle) = 0;
  virtual void publish(std::size_t slot, const dz::Event& event) = 0;
  virtual void settle() = 0;
  virtual void settleUntil(net::SimTime t) = 0;
  virtual net::SimTime now() const = 0;
  virtual Snapshot snapshot() = 0;
  virtual void applyFault(const FaultSpec& fault) = 0;
  virtual bool promoted() const = 0;
  virtual CongestionResult congestion() = 0;
};

class SingleBackend final : public Backend {
 public:
  SingleBackend(const Scenario& s, int threads) {
    core::PleromaOptions opts;
    opts.numAttributes = s.numAttributes;
    opts.bitsPerDim = s.bitsPerDim;
    if (s.maxDzLength.has_value()) opts.controller.maxDzLength = *s.maxDzLength;
    if (s.maxCellsPerRequest.has_value()) {
      opts.controller.maxCellsPerRequest = *s.maxCellsPerRequest;
    }
    if (s.aggregateSubscriptions.has_value()) {
      opts.controller.aggregateSubscriptions = *s.aggregateSubscriptions;
    }
    if (s.tcamBudget.has_value()) opts.controller.tcamBudget = *s.tcamBudget;
    opts.network.linkQueueCapacity = s.network.linkQueueCapacity;
    opts.network.backpressure = s.network.backpressure;
    opts.threads = threads;
    if (s.needsFailover()) {
      // The heartbeat is armed at the kill instant, not at start-up: a
      // live self-rearming tick would keep settle() from ever draining
      // (see ctrl::FailoverManager::start).
      opts.failover.enableStandby = true;
      opts.failover.autoStart = false;
      opts.failover.config.heartbeatInterval = s.failover.heartbeatInterval;
      opts.failover.config.missThreshold = s.failover.missThreshold;
    }
    pleroma_ = std::make_unique<core::Pleroma>(s.buildTopology(), opts);
    hosts_ = pleroma_->topology().hosts();
    switches_ = pleroma_->topology().switches();
    if (s.rebalance.enabled) {
      // Closed loop (DESIGN.md §15): the congestion monitor samples the
      // data plane every interval and the load monitor reacts with
      // congestion-weighted reroots. Both are slow-lane ticks scheduled at
      // the same instants; the congestion sample is armed first, so it
      // runs before the reaction that consumes it.
      rebalanceInterval_ = s.rebalance.interval;
      net::CongestionConfig cc;
      cc.sampleInterval = s.rebalance.interval;
      congestion_ =
          std::make_unique<net::CongestionMonitor>(pleroma_->network(), cc);
      ctrl::LoadMonitorConfig lc;
      lc.hotLinkThreshold = s.rebalance.hotThreshold;
      lc.congestionFactor = s.rebalance.congestionFactor;
      loadMonitor_ =
          std::make_unique<ctrl::LoadMonitor>(pleroma_->controller(), lc);
      loadMonitor_->attachCongestion(congestion_.get());
      congestion_->startPeriodic();
      loadMonitor_->startPeriodic(rebalanceInterval_);
    }
  }

  std::size_t hostCount() const override { return hosts_.size(); }

  void advertise(std::size_t slot, const dz::Rectangle& rect) override {
    pleroma_->advertise(hosts_[slot], rect);
  }

  std::uint64_t subscribe(std::size_t slot, const dz::Rectangle& rect) override {
    return static_cast<std::uint64_t>(pleroma_->subscribe(hosts_[slot], rect));
  }

  void unsubscribe(std::uint64_t handle) override {
    pleroma_->unsubscribe(static_cast<ctrl::SubscriptionId>(handle));
  }

  void publish(std::size_t slot, const dz::Event& event) override {
    pleroma_->publish(hosts_[slot], event);
  }

  void settle() override {
    // A live self-rearming monitor tick would keep sim.run() from ever
    // draining (same constraint as the failover heartbeat above): pause
    // the loop, drain — the already-armed ticks fire once as no-ops at
    // their deterministic instants — then re-arm relative to the settled
    // clock.
    if (loadMonitor_ != nullptr) {
      loadMonitor_->stopPeriodic();
      congestion_->stop();
    }
    pleroma_->settle();
    if (loadMonitor_ != nullptr) {
      congestion_->startPeriodic();
      loadMonitor_->startPeriodic(rebalanceInterval_);
    }
  }
  void settleUntil(net::SimTime t) override { pleroma_->settleUntil(t); }
  net::SimTime now() const override { return pleroma_->simulator().now(); }

  Snapshot snapshot() override {
    Snapshot s;
    const core::DeliveryStats& d = pleroma_->deliveryStats();
    s.delivered = d.delivered;
    s.falsePositives = d.falsePositives;
    s.latencySum = d.latencySum;
    s.flowMods = pleroma_->controller().controlStats().flowModsSent;
    for (const net::NodeId sw : switches_) {
      s.flowEntries += pleroma_->network().flowTable(sw).size();
    }
    return s;
  }

  void applyFault(const FaultSpec& fault) override {
    switch (fault.action) {
      case FaultAction::kLinkDown:
        pleroma_->network().setLinkUp(fault.target, false);
        pleroma_->controller().onLinkDown(fault.target);
        break;
      case FaultAction::kLinkUp:
        pleroma_->network().setLinkUp(fault.target, true);
        pleroma_->controller().onLinkUp(fault.target);
        break;
      case FaultAction::kSwitchDown: {
        const net::NodeId sw = switches_[static_cast<std::size_t>(fault.target)];
        pleroma_->network().setNodeUp(sw, false);
        pleroma_->controller().onSwitchDown(sw);
        break;
      }
      case FaultAction::kSwitchUp: {
        const net::NodeId sw = switches_[static_cast<std::size_t>(fault.target)];
        pleroma_->network().setNodeUp(sw, true);
        pleroma_->controller().onSwitchUp(sw);
        break;
      }
      case FaultAction::kControllerKill:
        if (ctrl::FailoverManager* fo = pleroma_->failover()) {
          if (!fo->running()) fo->start();
          fo->killPrimary();
        }
        break;
    }
  }

  bool promoted() const override {
    ctrl::FailoverManager* fo = pleroma_->failover();
    return fo != nullptr && fo->promoted();
  }

  CongestionResult congestion() override {
    CongestionResult c;
    const net::NetworkCounters& nc = pleroma_->network().counters();
    c.queueDrops = nc.dropped(net::DropReason::kLinkQueue);
    c.bpDrops = nc.dropped(net::DropReason::kBackpressure);
    c.bpParks = nc.packetsParkedOnBackpressure;
    c.bpRetries = nc.backpressureRetries;
    c.peakLinkQueueDepth = pleroma_->network().stats().peakLinkQueueDepth;
    if (loadMonitor_ != nullptr) c.rebalances = loadMonitor_->rebalances();
    return c;
  }

 private:
  std::unique_ptr<core::Pleroma> pleroma_;
  std::vector<net::NodeId> hosts_;
  std::vector<net::NodeId> switches_;
  // Declared after pleroma_: destroyed first, while the simulator whose
  // tasks point at them still exists.
  std::unique_ptr<net::CongestionMonitor> congestion_;
  std::unique_ptr<ctrl::LoadMonitor> loadMonitor_;
  net::SimTime rebalanceInterval_ = 0;
};

class MultiBackend final : public Backend {
 public:
  explicit MultiBackend(const Scenario& s) {
    net::Topology topo = s.buildTopology();
    hosts_ = topo.hosts();
    switches_ = topo.switches();
    // Contiguous partition assignment over the switch list (the fig7g
    // idiom): switch i of n belongs to partition i*k/n.
    std::vector<interop::PartitionId> partitionOf(
        static_cast<std::size_t>(topo.nodeCount()), 0);
    const std::size_t n = switches_.size();
    for (std::size_t i = 0; i < n; ++i) {
      partitionOf[static_cast<std::size_t>(switches_[i])] =
          static_cast<interop::PartitionId>(
              i * static_cast<std::size_t>(s.partitions) / n);
    }
    ctrl::ControllerConfig cfg;
    if (s.maxDzLength.has_value()) cfg.maxDzLength = *s.maxDzLength;
    if (s.maxCellsPerRequest.has_value()) {
      cfg.maxCellsPerRequest = *s.maxCellsPerRequest;
    }
    if (s.aggregateSubscriptions.has_value()) {
      cfg.aggregateSubscriptions = *s.aggregateSubscriptions;
    }
    if (s.tcamBudget.has_value()) cfg.tcamBudget = *s.tcamBudget;
    partitions_ = s.partitions;
    domain_ = std::make_unique<interop::MultiDomain>(
        std::move(topo), std::move(partitionOf),
        dz::EventSpace(s.numAttributes, s.bitsPerDim), cfg);
    subsByHost_.resize(hosts_.size());
    hostIndexOf_.assign(
        static_cast<std::size_t>(domain_->network().topology().nodeCount()),
        static_cast<std::size_t>(-1));
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
      hostIndexOf_[static_cast<std::size_t>(hosts_[h])] = h;
    }
    domain_->network().setDeliverHandler(
        [this](net::NodeId host, const net::Packet& packet) {
          onDeliver(host, packet);
        });
  }

  std::size_t hostCount() const override { return hosts_.size(); }

  void advertise(std::size_t slot, const dz::Rectangle& rect) override {
    domain_->advertise(hosts_[slot], rect);
  }

  std::uint64_t subscribe(std::size_t slot, const dz::Rectangle& rect) override {
    const std::uint64_t handle = static_cast<std::uint64_t>(handles_.size());
    handles_.push_back({domain_->subscribe(hosts_[slot], rect), slot});
    subsByHost_[slot].push_back({handle, rect});
    return handle;
  }

  void unsubscribe(std::uint64_t handle) override {
    HandleEntry& e = handles_[static_cast<std::size_t>(handle)];
    domain_->unsubscribe(e.id);
    auto& subs = subsByHost_[e.slot];
    subs.erase(std::remove_if(subs.begin(), subs.end(),
                              [&](const HostSub& hs) { return hs.handle == handle; }),
               subs.end());
  }

  void publish(std::size_t slot, const dz::Event& event) override {
    domain_->publish(hosts_[slot], event);
  }

  void settle() override { domain_->settle(); }
  void settleUntil(net::SimTime t) override { domain_->simulator().runUntil(t); }
  net::SimTime now() const override {
    return const_cast<interop::MultiDomain&>(*domain_).simulator().now();
  }

  Snapshot snapshot() override {
    Snapshot s;
    s.delivered = delivered_;
    s.falsePositives = falsePositives_;
    s.latencySum = latencySum_;
    for (interop::PartitionId p = 0; p < partitions_; ++p) {
      s.flowMods += domain_->controller(p).controlStats().flowModsSent;
    }
    for (const net::NodeId sw : switches_) {
      s.flowEntries += domain_->network().flowTable(sw).size();
    }
    s.controlMessages = domain_->totalControlMessages();
    return s;
  }

  void applyFault(const FaultSpec&) override {
    // validate() rejects fault schedules on multi-partition scenarios.
    assert(false && "faults are single-partition only");
  }

  bool promoted() const override { return false; }

  CongestionResult congestion() override {
    CongestionResult c;
    const net::NetworkCounters& nc = domain_->network().counters();
    c.queueDrops = nc.dropped(net::DropReason::kLinkQueue);
    c.bpDrops = nc.dropped(net::DropReason::kBackpressure);
    c.bpParks = nc.packetsParkedOnBackpressure;
    c.bpRetries = nc.backpressureRetries;
    c.peakLinkQueueDepth = domain_->network().stats().peakLinkQueueDepth;
    return c;
  }

 private:
  struct HandleEntry {
    interop::GlobalSubscriptionId id;
    std::size_t slot = 0;
  };
  struct HostSub {
    std::uint64_t handle = 0;
    dz::Rectangle rect;
  };

  void onDeliver(net::NodeId host, const net::Packet& packet) {
    if (!packet.payload) return;
    ++delivered_;
    latencySum_ += now() - packet.sentAt();
    const std::size_t slot = hostIndexOf_[static_cast<std::size_t>(host)];
    const auto& subs = subsByHost_[slot];
    const bool match =
        std::any_of(subs.begin(), subs.end(), [&](const HostSub& hs) {
          return hs.rect.contains(packet.event());
        });
    if (!match) ++falsePositives_;
  }

  std::unique_ptr<interop::MultiDomain> domain_;
  std::vector<net::NodeId> hosts_;
  std::vector<net::NodeId> switches_;
  std::vector<std::size_t> hostIndexOf_;  ///< NodeId -> host slot
  std::vector<HandleEntry> handles_;
  std::vector<std::vector<HostSub>> subsByHost_;  ///< by host slot
  interop::PartitionId partitions_ = 1;
  std::uint64_t delivered_ = 0;
  std::uint64_t falsePositives_ = 0;
  net::SimTime latencySum_ = 0;
};

}  // namespace

ScenarioRunner::ScenarioRunner(Scenario scenario, RunOptions options)
    : scenario_(std::move(scenario)), options_(std::move(options)) {}

RunResult ScenarioRunner::run() {
  const Scenario& s = scenario_;
  assert(!s.phases.empty());

  std::unique_ptr<Backend> backend;
  if (s.partitions > 1) {
    backend = std::make_unique<MultiBackend>(s);
  } else {
    backend = std::make_unique<SingleBackend>(s, std::max(1, options_.threads));
  }
  const std::size_t hostCount = backend->hostCount();

  auto say = [&](const std::string& line) {
    if (options_.log) options_.log(line);
  };

  // The fault schedule, in application order. Faults fire at their exact
  // virtual instant: the timeline below advances the clock with
  // settleUntil(fault.at) before applying each one.
  std::vector<FaultSpec> pending = s.faults;
  std::stable_sort(pending.begin(), pending.end(),
                   [](const FaultSpec& a, const FaultSpec& b) { return a.at < b.at; });
  std::size_t nextFault = 0;

  RunResult result;
  auto applyFaultsUpTo = [&](net::SimTime t) {
    while (nextFault < pending.size() && pending[nextFault].at <= t) {
      const FaultSpec& f = pending[nextFault];
      if (f.at > backend->now()) backend->settleUntil(f.at);
      backend->applyFault(f);
      result.faults.push_back({f, backend->now()});
      say("fault @" + std::to_string(f.at / net::kMillisecond) + "ms: " +
          toString(f.action));
      ++nextFault;
    }
  };

  // Live subscriptions across phases; churn moves index this ledger.
  struct LiveSub {
    std::size_t slot;
    dz::Rectangle rect;
    std::uint64_t handle;
  };
  std::vector<LiveSub> ledger;
  // Advertiser host slots, accumulated; events round-robin over them.
  std::vector<std::size_t> advSlots;

  Snapshot prev = backend->snapshot();
  for (std::size_t p = 0; p < s.phases.size(); ++p) {
    const PhaseSpec& spec = s.phases[p];
    const PhasePlan plan =
        buildPhasePlan(s, p, hostCount, ledger.size(), options_.smoke);
    say("phase " + std::to_string(p) + " (" + spec.name + ", " +
        toString(spec.family) + "): " +
        std::to_string(plan.advertisements.size()) + " adv, " +
        std::to_string(plan.subscriptions.size()) + " sub, " +
        std::to_string(plan.churnMoves.size()) + " moves, " +
        std::to_string(plan.events.size()) + " events");

    std::vector<std::size_t> phaseAdvSlots;
    for (const auto& [slot, rect] : plan.advertisements) {
      backend->advertise(slot, rect);
      advSlots.push_back(slot);
      phaseAdvSlots.push_back(slot);
    }
    // Events come from this phase's own advertisers when it declares any
    // (their rectangles follow the phase's family — a flash-crowd burst is
    // published from crowd publishers); phases without advertisements fall
    // back to every advertiser deployed so far.
    const std::vector<std::size_t>& publishers =
        phaseAdvSlots.empty() ? advSlots : phaseAdvSlots;
    for (const auto& [slot, rect] : plan.subscriptions) {
      const std::uint64_t handle = backend->subscribe(slot, rect);
      ledger.push_back({slot, rect, handle});
    }
    backend->settle();

    for (const workload::ChurnStep& step : plan.churnMoves) {
      LiveSub& sub = ledger[step.subIndex];
      const std::size_t newSlot = (sub.slot + step.hostOffset) % hostCount;
      backend->unsubscribe(sub.handle);
      sub.handle = backend->subscribe(newSlot, sub.rect);
      sub.slot = newSlot;
      backend->settle();
    }

    net::SimTime cursor = backend->now();
    for (const dz::Event& event : plan.events) {
      cursor += plan.eventInterval;
      applyFaultsUpTo(cursor);
      backend->settleUntil(cursor);
      backend->publish(publishers[result.published % publishers.size()], event);
      ++result.published;
    }
    backend->settle();

    const Snapshot cur = backend->snapshot();
    PhaseResult pr;
    pr.name = spec.name;
    pr.family = spec.family;
    pr.advertisements = plan.advertisements.size();
    pr.subscriptions = plan.subscriptions.size();
    pr.churnMoves = plan.churnMoves.size();
    pr.events = plan.events.size();
    pr.delivered = delta(cur.delivered, prev.delivered);
    pr.falsePositives = delta(cur.falsePositives, prev.falsePositives);
    const net::SimTime latency =
        cur.latencySum >= prev.latencySum ? cur.latencySum - prev.latencySum
                                          : cur.latencySum;
    pr.meanLatencyUs = pr.delivered == 0
                           ? 0.0
                           : static_cast<double>(latency) /
                                 static_cast<double>(pr.delivered) / 1000.0;
    pr.flowMods = delta(cur.flowMods, prev.flowMods);
    pr.flowEntries = cur.flowEntries;
    pr.end = backend->now();
    result.flowMods += pr.flowMods;
    result.phases.push_back(std::move(pr));
    prev = cur;
  }

  // Faults scheduled past the last phase still fire, at their instant.
  applyFaultsUpTo(pending.empty() ? 0
                                  : pending.back().at);
  backend->settle();

  const Snapshot total = backend->snapshot();
  result.delivered = total.delivered;
  result.falsePositives = total.falsePositives;
  result.meanLatencyUs = total.delivered == 0
                             ? 0.0
                             : static_cast<double>(total.latencySum) /
                                   static_cast<double>(total.delivered) / 1000.0;
  // flowMods accumulates clamped per-phase deltas (a promotion swaps in a
  // fresh channel); the tail delta covers post-phase fault repair.
  result.flowMods += delta(total.flowMods, prev.flowMods);
  result.controlMessages = total.controlMessages;
  result.promoted = backend->promoted();
  result.congestion = backend->congestion();
  result.end = backend->now();
  return result;
}

void ScenarioRunner::report(obs::BenchReporter& out,
                            const RunResult& result) const {
  const Scenario& s = scenario_;
  out.meta("seed", s.seed);
  out.meta("topology", s.topologyLabel());
  out.meta("workload", s.workloadLabel());
  out.meta("threads", std::max(1, options_.threads));
  out.meta("scenario", s.name);
  out.meta("scenario_schema", kScenarioSchema);
  out.meta("partitions", s.partitions);
  out.meta("smoke", options_.smoke);

  auto ms = [](net::SimTime t) {
    return static_cast<double>(t) / static_cast<double>(net::kMillisecond);
  };

  out.beginSeries("phases", {{"phase", ""},
                             {"name", ""},
                             {"family", ""},
                             {"advertisements", ""},
                             {"subscriptions", ""},
                             {"churn_moves", ""},
                             {"events", ""},
                             {"delivered", ""},
                             {"false_positives", ""},
                             {"mean_latency_us", "us"},
                             {"flow_mods", ""},
                             {"flow_entries", ""},
                             {"end_ms", "ms"}});
  for (std::size_t p = 0; p < result.phases.size(); ++p) {
    const PhaseResult& pr = result.phases[p];
    out.row({static_cast<unsigned long long>(p), pr.name, toString(pr.family),
             static_cast<unsigned long long>(pr.advertisements),
             static_cast<unsigned long long>(pr.subscriptions),
             static_cast<unsigned long long>(pr.churnMoves),
             static_cast<unsigned long long>(pr.events), pr.delivered,
             pr.falsePositives, pr.meanLatencyUs, pr.flowMods, pr.flowEntries,
             ms(pr.end)});
  }

  if (!result.faults.empty()) {
    out.beginSeries("faults", {{"at_ms", "ms"},
                               {"applied_ms", "ms"},
                               {"action", ""},
                               {"target", ""}});
    for (const AppliedFault& f : result.faults) {
      out.row({ms(f.spec.at), ms(f.appliedAt), toString(f.spec.action),
               f.spec.target});
    }
  }

  // Emitted only for congestion-enabled scenarios so legacy reports stay
  // byte-identical.
  if (s.network.linkQueueCapacity > 0 || s.rebalance.enabled) {
    out.beginSeries("congestion", {{"queue_drops", ""},
                                   {"bp_drops", ""},
                                   {"bp_parks", ""},
                                   {"bp_retries", ""},
                                   {"peak_link_queue_depth", ""},
                                   {"rebalances", ""}});
    const CongestionResult& c = result.congestion;
    out.row({c.queueDrops, c.bpDrops, c.bpParks, c.bpRetries,
             c.peakLinkQueueDepth, c.rebalances});
  }

  out.beginSeries("totals", {{"published", ""},
                             {"delivered", ""},
                             {"false_positives", ""},
                             {"mean_latency_us", "us"},
                             {"flow_mods", ""},
                             {"control_messages", ""},
                             {"promoted", ""},
                             {"end_ms", "ms"}});
  out.row({result.published, result.delivered, result.falsePositives,
           result.meanLatencyUs, result.flowMods, result.controlMessages,
           result.promoted, ms(result.end)});
}

}  // namespace pleroma::scenario
