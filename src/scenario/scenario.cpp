#include "scenario/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

namespace pleroma::scenario {

namespace {

using obs::JsonValue;

bool fail(std::string* error, const std::string& path, const std::string& what) {
  if (error != nullptr) *error = path.empty() ? what : path + ": " + what;
  return false;
}

std::string join(const std::string& path, const std::string& key) {
  return path.empty() ? key : path + "." + key;
}

std::string elem(const std::string& path, std::size_t i) {
  return path + "[" + std::to_string(i) + "]";
}

/// Rejects keys outside `allowed` so a typo fails loudly instead of
/// silently running a different experiment.
bool checkKeys(const JsonValue& obj, const std::string& path,
               std::initializer_list<const char*> allowed, std::string* error) {
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    if (std::none_of(allowed.begin(), allowed.end(),
                     [&](const char* a) { return key == a; })) {
      return fail(error, join(path, key), "unknown field");
    }
  }
  return true;
}

bool needObject(const JsonValue* f, const std::string& path, std::string* error) {
  if (f == nullptr) return fail(error, path, "required object is missing");
  if (!f->isObject()) return fail(error, path, "expected an object");
  return true;
}

/// Optional integer field; leaves *out untouched when absent.
bool readInt(const JsonValue& obj, const char* key, const std::string& path,
             std::int64_t* out, std::string* error) {
  const JsonValue* f = obj.get(key);
  if (f == nullptr) return true;
  if (!f->isInt()) return fail(error, join(path, key), "expected an integer");
  *out = f->asInt();
  return true;
}

/// Optional integer with an inclusive lower bound.
bool readIntMin(const JsonValue& obj, const char* key, const std::string& path,
                std::int64_t minValue, std::int64_t* out, std::string* error) {
  const JsonValue* f = obj.get(key);
  if (f == nullptr) return true;
  if (!f->isInt() || f->asInt() < minValue) {
    return fail(error, join(path, key),
                "expected an integer >= " + std::to_string(minValue));
  }
  *out = f->asInt();
  return true;
}

/// Optional number (int or double); leaves *out untouched when absent.
bool readNum(const JsonValue& obj, const char* key, const std::string& path,
             double* out, std::string* error) {
  const JsonValue* f = obj.get(key);
  if (f == nullptr) return true;
  if (!f->isNumber()) return fail(error, join(path, key), "expected a number");
  *out = f->asDouble();
  return true;
}

bool readString(const JsonValue& obj, const char* key, const std::string& path,
                std::string* out, std::string* error) {
  const JsonValue* f = obj.get(key);
  if (f == nullptr) return true;
  if (!f->isString()) return fail(error, join(path, key), "expected a string");
  *out = f->asString();
  return true;
}

bool parseFamily(const std::string& text, Family* out) {
  if (text == "uniform") *out = Family::kUniform;
  else if (text == "zipfian") *out = Family::kZipfian;
  else if (text == "flash-crowd") *out = Family::kFlashCrowd;
  else if (text == "churn") *out = Family::kChurn;
  else if (text == "wide-event-space") *out = Family::kWideEventSpace;
  else return false;
  return true;
}

bool parseAction(const std::string& text, FaultAction* out) {
  if (text == "link-down") *out = FaultAction::kLinkDown;
  else if (text == "link-up") *out = FaultAction::kLinkUp;
  else if (text == "switch-down") *out = FaultAction::kSwitchDown;
  else if (text == "switch-up") *out = FaultAction::kSwitchUp;
  else if (text == "controller-kill") *out = FaultAction::kControllerKill;
  else return false;
  return true;
}

bool parseKind(const std::string& text, TopologyKind* out) {
  if (text == "testbed-fat-tree") *out = TopologyKind::kTestbedFatTree;
  else if (text == "fat-tree") *out = TopologyKind::kFatTree;
  else if (text == "k-ary-fat-tree") *out = TopologyKind::kKAryFatTree;
  else if (text == "ring") *out = TopologyKind::kRing;
  else if (text == "line") *out = TopologyKind::kLine;
  else if (text == "random") *out = TopologyKind::kRandom;
  else return false;
  return true;
}

bool parseTopology(const JsonValue& v, const std::string& path, TopologySpec* t,
                   std::string* error) {
  if (!checkKeys(v, path,
                 {"kind", "switches", "core", "aggregation", "edge_per_agg",
                  "hosts_per_edge", "k", "extra_links", "topo_seed",
                  "link_latency_us", "link_bandwidth_mbps"},
                 error)) {
    return false;
  }
  std::string kind;
  if (!readString(v, "kind", path, &kind, error)) return false;
  if (kind.empty()) return fail(error, join(path, "kind"), "required string is missing");
  if (!parseKind(kind, &t->kind)) {
    return fail(error, join(path, "kind"),
                "unknown topology '" + kind +
                    "' (expected testbed-fat-tree, fat-tree, k-ary-fat-tree, "
                    "ring, line, or random)");
  }
  std::int64_t i;
  i = t->switches;
  if (!readIntMin(v, "switches", path, 1, &i, error)) return false;
  t->switches = static_cast<int>(i);
  i = t->core;
  if (!readIntMin(v, "core", path, 1, &i, error)) return false;
  t->core = static_cast<int>(i);
  i = t->aggregation;
  if (!readIntMin(v, "aggregation", path, 1, &i, error)) return false;
  t->aggregation = static_cast<int>(i);
  i = t->edgePerAgg;
  if (!readIntMin(v, "edge_per_agg", path, 1, &i, error)) return false;
  t->edgePerAgg = static_cast<int>(i);
  i = t->hostsPerEdge;
  if (!readIntMin(v, "hosts_per_edge", path, 1, &i, error)) return false;
  t->hostsPerEdge = static_cast<int>(i);
  i = t->k;
  if (!readIntMin(v, "k", path, 2, &i, error)) return false;
  t->k = static_cast<int>(i);
  i = t->extraLinks;
  if (!readIntMin(v, "extra_links", path, 0, &i, error)) return false;
  t->extraLinks = static_cast<int>(i);
  i = static_cast<std::int64_t>(t->topoSeed);
  if (!readIntMin(v, "topo_seed", path, 0, &i, error)) return false;
  t->topoSeed = static_cast<std::uint64_t>(i);
  i = t->linkLatency / net::kMicrosecond;
  if (!readIntMin(v, "link_latency_us", path, 1, &i, error)) return false;
  t->linkLatency = i * net::kMicrosecond;
  double mbps = t->linkBandwidthBps / 1e6;
  if (!readNum(v, "link_bandwidth_mbps", path, &mbps, error)) return false;
  if (mbps < 0) {
    return fail(error, join(path, "link_bandwidth_mbps"),
                "expected a number >= 0 (0 = infinite)");
  }
  t->linkBandwidthBps = mbps * 1e6;
  return true;
}

bool parsePhase(const JsonValue& v, const std::string& path, std::size_t index,
                PhaseSpec* ph, std::string* error) {
  if (!v.isObject()) return fail(error, path, "expected an object");
  if (!checkKeys(v, path,
                 {"name", "family", "advertisements", "subscriptions",
                  "events", "churn_moves", "event_interval_us", "selectivity",
                  "hotspots", "zipf_alpha", "hotspot_radius", "crowd_centre",
                  "crowd_radius", "uninformative_dims"},
                 error)) {
    return false;
  }
  ph->name = "phase" + std::to_string(index);
  if (!readString(v, "name", path, &ph->name, error)) return false;
  std::string family;
  if (!readString(v, "family", path, &family, error)) return false;
  if (family.empty()) {
    return fail(error, join(path, "family"), "required string is missing");
  }
  if (!parseFamily(family, &ph->family)) {
    return fail(error, join(path, "family"),
                "unknown family '" + family +
                    "' (expected uniform, zipfian, flash-crowd, churn, or "
                    "wide-event-space)");
  }
  std::int64_t i;
  i = 0;
  if (!readIntMin(v, "advertisements", path, 0, &i, error)) return false;
  ph->advertisements = static_cast<std::size_t>(i);
  i = 0;
  if (!readIntMin(v, "subscriptions", path, 0, &i, error)) return false;
  ph->subscriptions = static_cast<std::size_t>(i);
  i = 0;
  if (!readIntMin(v, "events", path, 0, &i, error)) return false;
  ph->events = static_cast<std::size_t>(i);
  i = 0;
  if (!readIntMin(v, "churn_moves", path, 0, &i, error)) return false;
  ph->churnMoves = static_cast<std::size_t>(i);
  i = ph->eventInterval / net::kMicrosecond;
  if (!readIntMin(v, "event_interval_us", path, 1, &i, error)) return false;
  ph->eventInterval = i * net::kMicrosecond;

  double d;
  if (v.contains("selectivity")) {
    d = 0;
    if (!readNum(v, "selectivity", path, &d, error)) return false;
    ph->selectivity = d;
  }
  if (v.contains("hotspots")) {
    i = 0;
    if (!readIntMin(v, "hotspots", path, 1, &i, error)) return false;
    ph->hotspots = static_cast<int>(i);
  }
  if (v.contains("zipf_alpha")) {
    d = 0;
    if (!readNum(v, "zipf_alpha", path, &d, error)) return false;
    ph->zipfAlpha = d;
  }
  if (v.contains("hotspot_radius")) {
    d = 0;
    if (!readNum(v, "hotspot_radius", path, &d, error)) return false;
    ph->hotspotRadius = d;
  }
  if (const JsonValue* f = v.get("crowd_centre")) {
    if (!f->isArray()) {
      return fail(error, join(path, "crowd_centre"),
                  "expected an array of numbers");
    }
    for (std::size_t c = 0; c < f->items().size(); ++c) {
      const JsonValue& cv = f->items()[c];
      if (!cv.isNumber()) {
        return fail(error, elem(join(path, "crowd_centre"), c),
                    "expected a number");
      }
      ph->crowdCentre.push_back(cv.asDouble());
    }
  }
  if (!readNum(v, "crowd_radius", path, &ph->crowdRadius, error)) return false;
  if (const JsonValue* f = v.get("uninformative_dims")) {
    if (!f->isArray()) {
      return fail(error, join(path, "uninformative_dims"),
                  "expected an array of integers");
    }
    for (std::size_t c = 0; c < f->items().size(); ++c) {
      const JsonValue& cv = f->items()[c];
      if (!cv.isInt()) {
        return fail(error, elem(join(path, "uninformative_dims"), c),
                    "expected an integer");
      }
      ph->uninformativeDims.push_back(static_cast<int>(cv.asInt()));
    }
  }
  return true;
}

bool parseFault(const JsonValue& v, const std::string& path, FaultSpec* fs,
                std::string* error) {
  if (!v.isObject()) return fail(error, path, "expected an object");
  if (!checkKeys(v, path, {"at_ms", "action", "target"}, error)) return false;
  const JsonValue* at = v.get("at_ms");
  if (at == nullptr || !at->isNumber() || at->asDouble() < 0) {
    return fail(error, join(path, "at_ms"), "expected a number >= 0");
  }
  fs->at = static_cast<net::SimTime>(at->asDouble() *
                                     static_cast<double>(net::kMillisecond));
  std::string action;
  if (!readString(v, "action", path, &action, error)) return false;
  if (action.empty()) {
    return fail(error, join(path, "action"), "required string is missing");
  }
  if (!parseAction(action, &fs->action)) {
    return fail(error, join(path, "action"),
                "unknown action '" + action +
                    "' (expected link-down, link-up, switch-down, switch-up, "
                    "or controller-kill)");
  }
  std::int64_t i = fs->target;
  if (!readInt(v, "target", path, &i, error)) return false;
  fs->target = static_cast<int>(i);
  if (fs->action != FaultAction::kControllerKill && fs->target < 0) {
    return fail(error, join(path, "target"),
                "required for link/switch actions (a link id or switch index)");
  }
  return true;
}

JsonValue topologyToJson(const TopologySpec& t) {
  JsonValue o = JsonValue::object();
  o.set("kind", toString(t.kind));
  switch (t.kind) {
    case TopologyKind::kTestbedFatTree:
      break;
    case TopologyKind::kFatTree:
      o.set("core", t.core);
      o.set("aggregation", t.aggregation);
      o.set("edge_per_agg", t.edgePerAgg);
      o.set("hosts_per_edge", t.hostsPerEdge);
      break;
    case TopologyKind::kKAryFatTree:
      o.set("k", t.k);
      break;
    case TopologyKind::kRing:
    case TopologyKind::kLine:
      o.set("switches", t.switches);
      break;
    case TopologyKind::kRandom:
      o.set("switches", t.switches);
      o.set("extra_links", t.extraLinks);
      o.set("topo_seed", t.topoSeed);
      break;
  }
  o.set("link_latency_us", t.linkLatency / net::kMicrosecond);
  if (t.linkBandwidthBps > 0) {
    o.set("link_bandwidth_mbps", t.linkBandwidthBps / 1e6);
  }
  return o;
}

JsonValue phaseToJson(const PhaseSpec& ph) {
  JsonValue o = JsonValue::object();
  o.set("name", ph.name);
  o.set("family", toString(ph.family));
  o.set("advertisements", static_cast<std::uint64_t>(ph.advertisements));
  o.set("subscriptions", static_cast<std::uint64_t>(ph.subscriptions));
  o.set("events", static_cast<std::uint64_t>(ph.events));
  if (ph.family == Family::kChurn) {
    o.set("churn_moves", static_cast<std::uint64_t>(ph.churnMoves));
  }
  o.set("event_interval_us", ph.eventInterval / net::kMicrosecond);
  if (ph.selectivity.has_value()) o.set("selectivity", *ph.selectivity);
  if (ph.hotspots.has_value()) o.set("hotspots", *ph.hotspots);
  if (ph.zipfAlpha.has_value()) o.set("zipf_alpha", *ph.zipfAlpha);
  if (ph.hotspotRadius.has_value()) o.set("hotspot_radius", *ph.hotspotRadius);
  if (ph.family == Family::kFlashCrowd) {
    if (!ph.crowdCentre.empty()) {
      JsonValue centre = JsonValue::array();
      for (const double c : ph.crowdCentre) centre.push_back(c);
      o.set("crowd_centre", std::move(centre));
    }
    o.set("crowd_radius", ph.crowdRadius);
  }
  if (!ph.uninformativeDims.empty()) {
    JsonValue dims = JsonValue::array();
    for (const int d : ph.uninformativeDims) dims.push_back(d);
    o.set("uninformative_dims", std::move(dims));
  }
  return o;
}

}  // namespace

const char* toString(Family family) noexcept {
  switch (family) {
    case Family::kUniform: return "uniform";
    case Family::kZipfian: return "zipfian";
    case Family::kFlashCrowd: return "flash-crowd";
    case Family::kChurn: return "churn";
    case Family::kWideEventSpace: return "wide-event-space";
  }
  return "?";
}

const char* toString(FaultAction action) noexcept {
  switch (action) {
    case FaultAction::kLinkDown: return "link-down";
    case FaultAction::kLinkUp: return "link-up";
    case FaultAction::kSwitchDown: return "switch-down";
    case FaultAction::kSwitchUp: return "switch-up";
    case FaultAction::kControllerKill: return "controller-kill";
  }
  return "?";
}

const char* toString(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::kTestbedFatTree: return "testbed-fat-tree";
    case TopologyKind::kFatTree: return "fat-tree";
    case TopologyKind::kKAryFatTree: return "k-ary-fat-tree";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kLine: return "line";
    case TopologyKind::kRandom: return "random";
  }
  return "?";
}

obs::JsonValue Scenario::toJson() const {
  JsonValue o = JsonValue::object();
  o.set("schema", kScenarioSchema);
  o.set("name", name);
  if (!description.empty()) o.set("description", description);
  o.set("seed", seed);
  o.set("topology", topologyToJson(topology));
  JsonValue attrs = JsonValue::object();
  attrs.set("count", numAttributes);
  attrs.set("bits", bitsPerDim);
  o.set("attributes", std::move(attrs));
  o.set("partitions", partitions);
  if (maxDzLength.has_value() || maxCellsPerRequest.has_value() ||
      aggregateSubscriptions.has_value() || tcamBudget.has_value()) {
    JsonValue c = JsonValue::object();
    if (maxDzLength.has_value()) c.set("max_dz_length", *maxDzLength);
    if (maxCellsPerRequest.has_value()) {
      c.set("max_cells_per_request", static_cast<std::uint64_t>(*maxCellsPerRequest));
    }
    if (aggregateSubscriptions.has_value()) {
      c.set("aggregate_subscriptions", *aggregateSubscriptions);
    }
    if (tcamBudget.has_value()) {
      c.set("tcam_budget", static_cast<std::uint64_t>(*tcamBudget));
    }
    o.set("controller", std::move(c));
  }
  if (failover.enabled) {
    JsonValue f = JsonValue::object();
    f.set("heartbeat_ms", static_cast<double>(failover.heartbeatInterval) /
                              static_cast<double>(net::kMillisecond));
    f.set("miss_threshold", failover.missThreshold);
    o.set("failover", std::move(f));
  }
  if (network.linkQueueCapacity > 0 || network.backpressure) {
    JsonValue n = JsonValue::object();
    n.set("link_queue_capacity",
          static_cast<std::uint64_t>(network.linkQueueCapacity));
    n.set("backpressure", network.backpressure);
    o.set("network", std::move(n));
  }
  if (rebalance.enabled) {
    JsonValue r = JsonValue::object();
    r.set("interval_us", rebalance.interval / net::kMicrosecond);
    r.set("hot_threshold", rebalance.hotThreshold);
    r.set("congestion_factor", rebalance.congestionFactor);
    o.set("rebalance", std::move(r));
  }
  JsonValue w = JsonValue::object();
  w.set("selectivity", workload.selectivity);
  w.set("advertisement_width_factor", workload.advertisementWidthFactor);
  w.set("hotspots", workload.hotspots);
  w.set("zipf_alpha", workload.zipfAlpha);
  w.set("hotspot_radius", workload.hotspotRadius);
  o.set("workload", std::move(w));
  JsonValue phs = JsonValue::array();
  for (const PhaseSpec& ph : phases) phs.push_back(phaseToJson(ph));
  o.set("phases", std::move(phs));
  if (!faults.empty()) {
    JsonValue fs = JsonValue::array();
    for (const FaultSpec& f : faults) {
      JsonValue fo = JsonValue::object();
      fo.set("at_ms", static_cast<double>(f.at) /
                          static_cast<double>(net::kMillisecond));
      fo.set("action", toString(f.action));
      if (f.action != FaultAction::kControllerKill) fo.set("target", f.target);
      fs.push_back(std::move(fo));
    }
    o.set("faults", std::move(fs));
  }
  JsonValue sm = JsonValue::object();
  sm.set("max_advertisements", static_cast<std::uint64_t>(smoke.maxAdvertisements));
  sm.set("max_subscriptions", static_cast<std::uint64_t>(smoke.maxSubscriptions));
  sm.set("max_events", static_cast<std::uint64_t>(smoke.maxEvents));
  sm.set("max_churn_moves", static_cast<std::uint64_t>(smoke.maxChurnMoves));
  o.set("smoke", std::move(sm));
  return o;
}

std::optional<Scenario> Scenario::fromJson(const obs::JsonValue& doc,
                                           std::string* error) {
  if (!doc.isObject()) {
    fail(error, "", "scenario document must be a JSON object");
    return std::nullopt;
  }
  if (!checkKeys(doc, "",
                 {"schema", "name", "description", "seed", "topology",
                  "attributes", "partitions", "controller", "failover",
                  "network", "rebalance", "workload", "phases", "faults",
                  "smoke"},
                 error)) {
    return std::nullopt;
  }
  Scenario s;
  std::string schema;
  if (!readString(doc, "schema", "", &schema, error)) return std::nullopt;
  if (schema != kScenarioSchema) {
    fail(error, "schema",
         "expected \"" + std::string(kScenarioSchema) + "\", got \"" + schema +
             "\"");
    return std::nullopt;
  }
  if (!readString(doc, "name", "", &s.name, error)) return std::nullopt;
  if (s.name.empty()) {
    fail(error, "name", "required string is missing");
    return std::nullopt;
  }
  if (!readString(doc, "description", "", &s.description, error)) {
    return std::nullopt;
  }
  std::int64_t i = static_cast<std::int64_t>(s.seed);
  if (!readIntMin(doc, "seed", "", 0, &i, error)) return std::nullopt;
  s.seed = static_cast<std::uint64_t>(i);

  const JsonValue* topo = doc.get("topology");
  if (!needObject(topo, "topology", error)) return std::nullopt;
  if (!parseTopology(*topo, "topology", &s.topology, error)) return std::nullopt;

  if (const JsonValue* attrs = doc.get("attributes")) {
    if (!attrs->isObject()) {
      fail(error, "attributes", "expected an object");
      return std::nullopt;
    }
    if (!checkKeys(*attrs, "attributes", {"count", "bits"}, error)) {
      return std::nullopt;
    }
    i = s.numAttributes;
    if (!readIntMin(*attrs, "count", "attributes", 1, &i, error)) {
      return std::nullopt;
    }
    s.numAttributes = static_cast<int>(i);
    i = s.bitsPerDim;
    if (!readIntMin(*attrs, "bits", "attributes", 1, &i, error)) {
      return std::nullopt;
    }
    s.bitsPerDim = static_cast<int>(i);
  }

  i = s.partitions;
  if (!readIntMin(doc, "partitions", "", 1, &i, error)) return std::nullopt;
  s.partitions = static_cast<int>(i);

  if (const JsonValue* c = doc.get("controller")) {
    if (!c->isObject()) {
      fail(error, "controller", "expected an object");
      return std::nullopt;
    }
    if (!checkKeys(*c, "controller",
                   {"max_dz_length", "max_cells_per_request",
                    "aggregate_subscriptions", "tcam_budget"},
                   error)) {
      return std::nullopt;
    }
    if (c->contains("max_dz_length")) {
      i = 0;
      if (!readIntMin(*c, "max_dz_length", "controller", 1, &i, error)) {
        return std::nullopt;
      }
      s.maxDzLength = static_cast<int>(i);
    }
    if (c->contains("max_cells_per_request")) {
      i = 0;
      if (!readIntMin(*c, "max_cells_per_request", "controller", 1, &i, error)) {
        return std::nullopt;
      }
      s.maxCellsPerRequest = static_cast<std::size_t>(i);
    }
    if (const JsonValue* a = c->get("aggregate_subscriptions")) {
      if (!a->isBool()) {
        fail(error, "controller.aggregate_subscriptions", "expected a bool");
        return std::nullopt;
      }
      s.aggregateSubscriptions = a->asBool();
    }
    if (c->contains("tcam_budget")) {
      i = 0;
      if (!readIntMin(*c, "tcam_budget", "controller", 0, &i, error)) {
        return std::nullopt;
      }
      s.tcamBudget = static_cast<std::size_t>(i);
    }
  }

  if (const JsonValue* f = doc.get("failover")) {
    if (!f->isObject()) {
      fail(error, "failover", "expected an object");
      return std::nullopt;
    }
    if (!checkKeys(*f, "failover", {"heartbeat_ms", "miss_threshold"}, error)) {
      return std::nullopt;
    }
    s.failover.enabled = true;
    double hb = static_cast<double>(s.failover.heartbeatInterval) /
                static_cast<double>(net::kMillisecond);
    if (!readNum(*f, "heartbeat_ms", "failover", &hb, error)) return std::nullopt;
    if (hb <= 0) {
      fail(error, "failover.heartbeat_ms", "expected a number > 0");
      return std::nullopt;
    }
    s.failover.heartbeatInterval =
        static_cast<net::SimTime>(hb * static_cast<double>(net::kMillisecond));
    i = s.failover.missThreshold;
    if (!readIntMin(*f, "miss_threshold", "failover", 1, &i, error)) {
      return std::nullopt;
    }
    s.failover.missThreshold = static_cast<int>(i);
  }

  if (const JsonValue* n = doc.get("network")) {
    if (!n->isObject()) {
      fail(error, "network", "expected an object");
      return std::nullopt;
    }
    if (!checkKeys(*n, "network", {"link_queue_capacity", "backpressure"},
                   error)) {
      return std::nullopt;
    }
    i = static_cast<std::int64_t>(s.network.linkQueueCapacity);
    if (!readIntMin(*n, "link_queue_capacity", "network", 1, &i, error)) {
      return std::nullopt;
    }
    s.network.linkQueueCapacity = static_cast<std::size_t>(i);
    if (const JsonValue* b = n->get("backpressure")) {
      if (!b->isBool()) {
        fail(error, "network.backpressure", "expected a bool");
        return std::nullopt;
      }
      s.network.backpressure = b->asBool();
    }
  }

  if (const JsonValue* r = doc.get("rebalance")) {
    if (!r->isObject()) {
      fail(error, "rebalance", "expected an object");
      return std::nullopt;
    }
    if (!checkKeys(*r, "rebalance",
                   {"interval_us", "hot_threshold", "congestion_factor"},
                   error)) {
      return std::nullopt;
    }
    s.rebalance.enabled = true;
    i = s.rebalance.interval / net::kMicrosecond;
    if (!readIntMin(*r, "interval_us", "rebalance", 1, &i, error)) {
      return std::nullopt;
    }
    s.rebalance.interval = i * net::kMicrosecond;
    if (!readNum(*r, "hot_threshold", "rebalance", &s.rebalance.hotThreshold,
                 error) ||
        !readNum(*r, "congestion_factor", "rebalance",
                 &s.rebalance.congestionFactor, error)) {
      return std::nullopt;
    }
    if (s.rebalance.hotThreshold <= 0) {
      fail(error, "rebalance.hot_threshold", "expected a number > 0");
      return std::nullopt;
    }
    if (s.rebalance.congestionFactor < 0) {
      fail(error, "rebalance.congestion_factor", "expected a number >= 0");
      return std::nullopt;
    }
  }

  if (const JsonValue* w = doc.get("workload")) {
    if (!w->isObject()) {
      fail(error, "workload", "expected an object");
      return std::nullopt;
    }
    if (!checkKeys(*w, "workload",
                   {"selectivity", "advertisement_width_factor", "hotspots",
                    "zipf_alpha", "hotspot_radius"},
                   error)) {
      return std::nullopt;
    }
    if (!readNum(*w, "selectivity", "workload", &s.workload.selectivity, error) ||
        !readNum(*w, "advertisement_width_factor", "workload",
                 &s.workload.advertisementWidthFactor, error) ||
        !readNum(*w, "zipf_alpha", "workload", &s.workload.zipfAlpha, error) ||
        !readNum(*w, "hotspot_radius", "workload", &s.workload.hotspotRadius,
                 error)) {
      return std::nullopt;
    }
    i = s.workload.hotspots;
    if (!readIntMin(*w, "hotspots", "workload", 1, &i, error)) {
      return std::nullopt;
    }
    s.workload.hotspots = static_cast<int>(i);
  }

  const JsonValue* phases = doc.get("phases");
  if (phases == nullptr || !phases->isArray()) {
    fail(error, "phases", "required array is missing");
    return std::nullopt;
  }
  if (phases->items().empty()) {
    fail(error, "phases", "at least one phase is required");
    return std::nullopt;
  }
  for (std::size_t p = 0; p < phases->items().size(); ++p) {
    PhaseSpec ph;
    if (!parsePhase(phases->items()[p], elem("phases", p), p, &ph, error)) {
      return std::nullopt;
    }
    s.phases.push_back(std::move(ph));
  }

  if (const JsonValue* faults = doc.get("faults")) {
    if (!faults->isArray()) {
      fail(error, "faults", "expected an array");
      return std::nullopt;
    }
    for (std::size_t f = 0; f < faults->items().size(); ++f) {
      FaultSpec fs;
      if (!parseFault(faults->items()[f], elem("faults", f), &fs, error)) {
        return std::nullopt;
      }
      s.faults.push_back(fs);
    }
  }

  if (const JsonValue* sm = doc.get("smoke")) {
    if (!sm->isObject()) {
      fail(error, "smoke", "expected an object");
      return std::nullopt;
    }
    if (!checkKeys(*sm, "smoke",
                   {"max_advertisements", "max_subscriptions", "max_events",
                    "max_churn_moves"},
                   error)) {
      return std::nullopt;
    }
    i = static_cast<std::int64_t>(s.smoke.maxAdvertisements);
    if (!readIntMin(*sm, "max_advertisements", "smoke", 1, &i, error)) {
      return std::nullopt;
    }
    s.smoke.maxAdvertisements = static_cast<std::size_t>(i);
    i = static_cast<std::int64_t>(s.smoke.maxSubscriptions);
    if (!readIntMin(*sm, "max_subscriptions", "smoke", 1, &i, error)) {
      return std::nullopt;
    }
    s.smoke.maxSubscriptions = static_cast<std::size_t>(i);
    i = static_cast<std::int64_t>(s.smoke.maxEvents);
    if (!readIntMin(*sm, "max_events", "smoke", 1, &i, error)) {
      return std::nullopt;
    }
    s.smoke.maxEvents = static_cast<std::size_t>(i);
    i = static_cast<std::int64_t>(s.smoke.maxChurnMoves);
    if (!readIntMin(*sm, "max_churn_moves", "smoke", 1, &i, error)) {
      return std::nullopt;
    }
    s.smoke.maxChurnMoves = static_cast<std::size_t>(i);
  }

  return s;
}

std::optional<Scenario> Scenario::parse(std::string_view text,
                                        std::string* error) {
  std::string jsonError;
  auto doc = JsonValue::parse(text, &jsonError);
  if (!doc.has_value()) {
    if (error != nullptr) {
      // The strict parser reports "<what> at offset N"; translate the
      // offset into a 1-based line so editors can jump to the problem.
      *error = jsonError;
      const auto pos = jsonError.rfind("at offset ");
      if (pos != std::string::npos) {
        const std::size_t offset = static_cast<std::size_t>(
            std::strtoull(jsonError.c_str() + pos + 10, nullptr, 10));
        const std::size_t clamped = std::min(offset, text.size());
        const std::size_t line =
            1 + static_cast<std::size_t>(
                    std::count(text.begin(),
                               text.begin() + static_cast<std::ptrdiff_t>(clamped),
                               '\n'));
        *error += " (line " + std::to_string(line) + ")";
      }
    }
    return std::nullopt;
  }
  return fromJson(*doc, error);
}

std::optional<Scenario> Scenario::loadFile(const std::string& path,
                                           std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, path, "cannot open");
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string inner;
  auto s = parse(buf.str(), &inner);
  if (!s.has_value()) fail(error, path, inner);
  return s;
}

bool Scenario::validate(std::string* error) const {
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' && c != '-') {
      return fail(error, "name",
                  "must match [A-Za-z0-9_-]+ (it becomes the report filename)");
    }
  }
  if (numAttributes < 1 || numAttributes > 16) {
    return fail(error, "attributes.count", "expected 1..16");
  }
  if (bitsPerDim < 1 || bitsPerDim > 20) {
    return fail(error, "attributes.bits", "expected 1..20");
  }
  switch (topology.kind) {
    case TopologyKind::kRing:
      if (topology.switches < 3) {
        return fail(error, "topology.switches", "a ring needs >= 3 switches");
      }
      break;
    case TopologyKind::kLine:
      if (topology.switches < 2) {
        return fail(error, "topology.switches", "a line needs >= 2 switches");
      }
      break;
    case TopologyKind::kRandom:
      if (topology.switches < 2) {
        return fail(error, "topology.switches",
                    "a random topology needs >= 2 switches");
      }
      break;
    case TopologyKind::kKAryFatTree:
      if (topology.k < 2 || topology.k % 2 != 0) {
        return fail(error, "topology.k", "k must be even and >= 2");
      }
      break;
    case TopologyKind::kTestbedFatTree:
    case TopologyKind::kFatTree:
      break;
  }

  if (network.linkQueueCapacity > 0 && topology.linkBandwidthBps <= 0) {
    return fail(error, "network.link_queue_capacity",
                "needs a finite topology.link_bandwidth_mbps (with infinite "
                "bandwidth nothing ever queues)");
  }
  if (network.backpressure && network.linkQueueCapacity == 0) {
    return fail(error, "network.backpressure",
                "needs network.link_queue_capacity >= 1");
  }

  const net::Topology topo = buildTopology();
  const std::size_t switchCount = topo.switches().size();
  const std::size_t hostCount = topo.hosts().size();
  if (hostCount == 0) return fail(error, "topology", "no hosts");
  if (partitions > static_cast<int>(switchCount)) {
    return fail(error, "partitions",
                "more partitions (" + std::to_string(partitions) +
                    ") than switches (" + std::to_string(switchCount) + ")");
  }
  if (partitions > 1) {
    if (!faults.empty()) {
      return fail(error, "faults",
                  "fault schedules are not supported for multi-partition "
                  "scenarios (set partitions to 1)");
    }
    if (failover.enabled) {
      return fail(error, "failover",
                  "controller failover is single-partition only");
    }
    if (network.linkQueueCapacity > 0) {
      return fail(error, "network",
                  "link queues are single-partition only (set partitions "
                  "to 1)");
    }
    if (rebalance.enabled) {
      return fail(error, "rebalance",
                  "load-aware rebalancing is single-partition only");
    }
  }

  std::size_t advSoFar = 0, subSoFar = 0;
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const PhaseSpec& ph = phases[p];
    const std::string path = elem("phases", p);
    const double sel = ph.selectivity.value_or(workload.selectivity);
    if (sel <= 0 || sel > 1) {
      return fail(error, join(path, "selectivity"), "expected in (0, 1]");
    }
    const double hr = ph.hotspotRadius.value_or(workload.hotspotRadius);
    if (hr <= 0 || hr > 0.5) {
      return fail(error, join(path, "hotspot_radius"), "expected in (0, 0.5]");
    }
    if (ph.zipfAlpha.value_or(workload.zipfAlpha) <= 0) {
      return fail(error, join(path, "zipf_alpha"), "expected > 0");
    }
    if (ph.family == Family::kChurn) {
      if (ph.churnMoves == 0) {
        return fail(error, join(path, "churn_moves"),
                    "a churn phase needs >= 1 move");
      }
    } else if (ph.churnMoves > 0) {
      return fail(error, join(path, "churn_moves"),
                  "only valid for the churn family");
    }
    if (ph.family == Family::kFlashCrowd) {
      if (ph.crowdRadius <= 0 || ph.crowdRadius > 0.5) {
        return fail(error, join(path, "crowd_radius"), "expected in (0, 0.5]");
      }
      if (ph.crowdCentre.size() > static_cast<std::size_t>(numAttributes)) {
        return fail(error, join(path, "crowd_centre"),
                    "more entries than attributes");
      }
      for (std::size_t c = 0; c < ph.crowdCentre.size(); ++c) {
        if (ph.crowdCentre[c] < 0 || ph.crowdCentre[c] > 1) {
          return fail(error, elem(join(path, "crowd_centre"), c),
                      "expected a domain fraction in [0, 1]");
        }
      }
    } else if (!ph.crowdCentre.empty()) {
      return fail(error, join(path, "crowd_centre"),
                  "only valid for the flash-crowd family");
    }
    std::set<int> seen;
    for (std::size_t c = 0; c < ph.uninformativeDims.size(); ++c) {
      const int d = ph.uninformativeDims[c];
      if (d < 0 || d >= numAttributes) {
        return fail(error, elem(join(path, "uninformative_dims"), c),
                    "dimension out of range [0, " +
                        std::to_string(numAttributes) + ")");
      }
      if (!seen.insert(d).second) {
        return fail(error, elem(join(path, "uninformative_dims"), c),
                    "duplicate dimension");
      }
    }
    advSoFar += ph.advertisements;
    subSoFar += ph.subscriptions;
    if (ph.events > 0 && advSoFar == 0) {
      return fail(error, join(path, "events"),
                  "no advertisement deployed by this or any earlier phase "
                  "(events need a publisher)");
    }
    if (ph.churnMoves > 0 && subSoFar == 0) {
      return fail(error, join(path, "churn_moves"),
                  "no subscription deployed by this or any earlier phase");
    }
  }

  for (std::size_t f = 0; f < faults.size(); ++f) {
    const FaultSpec& fs = faults[f];
    const std::string path = elem("faults", f);
    switch (fs.action) {
      case FaultAction::kLinkDown:
      case FaultAction::kLinkUp:
        if (fs.target < 0 || fs.target >= topo.linkCount()) {
          return fail(error, join(path, "target"),
                      "link id out of range [0, " +
                          std::to_string(topo.linkCount()) + ")");
        }
        break;
      case FaultAction::kSwitchDown:
      case FaultAction::kSwitchUp:
        if (fs.target < 0 || fs.target >= static_cast<int>(switchCount)) {
          return fail(error, join(path, "target"),
                      "switch index out of range [0, " +
                          std::to_string(switchCount) + ")");
        }
        break;
      case FaultAction::kControllerKill:
        break;
    }
  }
  return true;
}

net::Topology Scenario::buildTopology() const {
  const TopologySpec& t = topology;
  switch (t.kind) {
    case TopologyKind::kTestbedFatTree:
      return net::Topology::testbedFatTree(t.linkLatency, t.linkBandwidthBps);
    case TopologyKind::kFatTree:
      return net::Topology::fatTree(t.core, t.aggregation, t.edgePerAgg,
                                    t.hostsPerEdge, t.linkLatency,
                                    t.linkBandwidthBps);
    case TopologyKind::kKAryFatTree:
      return net::Topology::kAryFatTree(t.k, t.linkLatency, t.linkBandwidthBps);
    case TopologyKind::kRing:
      return net::Topology::ring(t.switches, t.linkLatency, t.linkBandwidthBps);
    case TopologyKind::kLine:
      return net::Topology::line(t.switches, t.linkLatency, t.linkBandwidthBps);
    case TopologyKind::kRandom:
      return net::Topology::randomConnected(t.switches, t.extraLinks,
                                            t.topoSeed, t.linkLatency,
                                            t.linkBandwidthBps);
  }
  return net::Topology::testbedFatTree(t.linkLatency, t.linkBandwidthBps);
}

std::string Scenario::topologyLabel() const {
  const TopologySpec& t = topology;
  switch (t.kind) {
    case TopologyKind::kTestbedFatTree:
      return "testbed_fat_tree";
    case TopologyKind::kFatTree:
      return "fat_tree_" + std::to_string(t.core) + "x" +
             std::to_string(t.aggregation) + "x" + std::to_string(t.edgePerAgg) +
             "x" + std::to_string(t.hostsPerEdge);
    case TopologyKind::kKAryFatTree:
      return "k_ary_fat_tree_" + std::to_string(t.k);
    case TopologyKind::kRing:
      return "ring_" + std::to_string(t.switches);
    case TopologyKind::kLine:
      return "line_" + std::to_string(t.switches);
    case TopologyKind::kRandom:
      return "random_" + std::to_string(t.switches) + "_" +
             std::to_string(t.extraLinks);
  }
  return "?";
}

std::string Scenario::workloadLabel() const {
  std::string out;
  for (const PhaseSpec& ph : phases) {
    if (!out.empty()) out += "+";
    out += toString(ph.family);
  }
  return out;
}

bool Scenario::needsFailover() const {
  if (failover.enabled) return true;
  return std::any_of(faults.begin(), faults.end(), [](const FaultSpec& f) {
    return f.action == FaultAction::kControllerKill;
  });
}

workload::WorkloadConfig phaseWorkloadConfig(const Scenario& s,
                                             std::size_t phaseIndex) {
  const PhaseSpec& ph = s.phases[phaseIndex];
  workload::WorkloadConfig w;
  w.numAttributes = s.numAttributes;
  w.bitsPerDim = s.bitsPerDim;
  w.subscriptionSelectivity = ph.selectivity.value_or(s.workload.selectivity);
  w.advertisementWidthFactor = s.workload.advertisementWidthFactor;
  w.numHotspots = ph.hotspots.value_or(s.workload.hotspots);
  w.zipfAlpha = ph.zipfAlpha.value_or(s.workload.zipfAlpha);
  w.hotspotRadius = ph.hotspotRadius.value_or(s.workload.hotspotRadius);
  w.crowdCentre = ph.crowdCentre;
  w.crowdRadius = ph.crowdRadius;
  w.uninformativeDims = ph.uninformativeDims;
  switch (ph.family) {
    case Family::kUniform:
    case Family::kChurn:  // churn registers uniform subscriptions
      w.model = workload::Model::kUniform;
      break;
    case Family::kZipfian:
      w.model = workload::Model::kZipfian;
      break;
    case Family::kFlashCrowd:
      w.model = workload::Model::kFlashCrowd;
      break;
    case Family::kWideEventSpace:
      w.model = workload::Model::kWideEventSpace;
      break;
  }
  w.seed = workload::derivePhaseSeed(s.seed, phaseIndex);
  return w;
}

PhasePlan buildPhasePlan(const Scenario& s, std::size_t phaseIndex,
                         std::size_t hostCount,
                         std::size_t priorSubscriptions, bool smoke) {
  const PhaseSpec& ph = s.phases[phaseIndex];
  workload::WorkloadGenerator gen(phaseWorkloadConfig(s, phaseIndex));

  std::size_t nAdv = ph.advertisements;
  std::size_t nSub = ph.subscriptions;
  std::size_t nEvents = ph.events;
  std::size_t nMoves = ph.churnMoves;
  if (smoke) {
    nAdv = std::min(nAdv, s.smoke.maxAdvertisements);
    nSub = std::min(nSub, s.smoke.maxSubscriptions);
    nEvents = std::min(nEvents, s.smoke.maxEvents);
    nMoves = std::min(nMoves, s.smoke.maxChurnMoves);
  }

  PhasePlan plan;
  plan.eventInterval = ph.eventInterval;
  plan.advertisements.reserve(nAdv);
  for (std::size_t i = 0; i < nAdv; ++i) {
    plan.advertisements.emplace_back(i % hostCount, gen.makeAdvertisement());
  }
  plan.subscriptions.reserve(nSub);
  for (std::size_t i = 0; i < nSub; ++i) {
    plan.subscriptions.emplace_back(i % hostCount, gen.makeSubscription());
  }
  const std::size_t population = priorSubscriptions + nSub;
  if (nMoves > 0 && population > 0) {
    plan.churnMoves = gen.makeChurnSteps(population, nMoves, hostCount);
  }
  plan.events = gen.makeEvents(nEvents);
  return plan;
}

}  // namespace pleroma::scenario
