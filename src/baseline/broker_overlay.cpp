#include "baseline/broker_overlay.hpp"

#include <algorithm>
#include <cassert>

namespace pleroma::baseline {

namespace {
bool rectCovers(const dz::Rectangle& outer, const dz::Rectangle& inner) {
  assert(outer.ranges.size() == inner.ranges.size());
  for (std::size_t i = 0; i < outer.ranges.size(); ++i) {
    if (!outer.ranges[i].containsRange(inner.ranges[i])) return false;
  }
  return true;
}
}  // namespace

BrokerOverlay::BrokerOverlay(net::Topology topology, BrokerConfig config)
    : topo_(std::move(topology)), config_(config) {
  root_ = config_.root != net::kInvalidNode ? config_.root : topo_.switches().front();
  // Broker tree: shortest-path tree over the switches from the root.
  const auto sp = topo_.shortestPathsFrom(root_);
  parent_.assign(static_cast<std::size_t>(topo_.nodeCount()), net::kInvalidNode);
  for (const net::NodeId sw : topo_.switches()) {
    parent_[static_cast<std::size_t>(sw)] = sp.parentNode[static_cast<std::size_t>(sw)];
  }
}

std::vector<net::NodeId> BrokerOverlay::treeNeighbors(net::NodeId broker) const {
  std::vector<net::NodeId> out;
  if (parent_[static_cast<std::size_t>(broker)] != net::kInvalidNode) {
    out.push_back(parent_[static_cast<std::size_t>(broker)]);
  }
  for (const net::NodeId sw : topo_.switches()) {
    if (parent_[static_cast<std::size_t>(sw)] == broker) out.push_back(sw);
  }
  return out;
}

SubscriptionId BrokerOverlay::subscribe(net::NodeId host, dz::Rectangle rect) {
  assert(topo_.isHost(host));
  const SubscriptionId id = next_++;
  subscriberHost_[id] = host;
  const net::NodeId access = topo_.hostAttachment(host).switchNode;
  // The access broker learns to deliver towards the host; then the interest
  // propagates through the broker tree with covering suppression.
  tables_[access].push_back(Entry{id, host, rect});
  propagateSubscription(id, rect, access, host);
  return id;
}

void BrokerOverlay::propagateSubscription(SubscriptionId id,
                                          const dz::Rectangle& rect,
                                          net::NodeId broker,
                                          net::NodeId fromDirection) {
  for (const net::NodeId next : treeNeighbors(broker)) {
    if (next == fromDirection) continue;
    // Covering: the neighbour need not learn this interest if it already
    // forwards a covering filter towards `broker`.
    auto& nextTable = tables_[next];
    const bool covered = std::any_of(
        nextTable.begin(), nextTable.end(), [&](const Entry& e) {
          return e.direction == broker && rectCovers(e.rect, rect);
        });
    if (covered) continue;
    ++subMessages_;
    nextTable.push_back(Entry{id, broker, rect});
    propagateSubscription(id, rect, next, broker);
  }
}

void BrokerOverlay::unsubscribe(SubscriptionId id) {
  for (auto& [broker, table] : tables_) {
    std::erase_if(table, [&](const Entry& e) { return e.id == id; });
  }
  subscriberHost_.erase(id);
}

BrokerOverlay::PublishResult BrokerOverlay::publish(net::NodeId host,
                                                    const dz::Event& event,
                                                    int packetBytes) const {
  PublishResult result;
  const net::NodeId access = topo_.hostAttachment(host).switchNode;
  const net::SimTime accessLatency =
      topo_.link(topo_.linkAt(host, topo_.hostAttachment(host).hostPort)).latency;

  // DFS through the broker tree, accumulating delay; matching happens in
  // software at every traversed broker.
  auto visit = [&](auto&& self, net::NodeId broker, net::NodeId fromDirection,
                   net::SimTime arrival) -> void {
    const auto ti = tables_.find(broker);
    const std::size_t filters = ti == tables_.end() ? 0 : ti->second.size();
    result.matchOperations += filters;
    const net::SimTime departure =
        arrival + config_.brokerBaseDelay +
        static_cast<net::SimTime>(filters) * config_.perFilterMatchCost;
    if (ti == tables_.end()) return;

    // One forward per direction that has at least one matching filter.
    std::vector<net::NodeId> forwarded;
    for (const Entry& e : ti->second) {
      if (e.direction == fromDirection) continue;
      if (!e.rect.contains(event)) continue;
      if (std::find(forwarded.begin(), forwarded.end(), e.direction) !=
          forwarded.end()) {
        continue;
      }
      forwarded.push_back(e.direction);
      // Hop latency to the next node (broker or host) over the physical
      // link between them (tree edges are physical links).
      net::SimTime hop = 0;
      for (const auto& [port, lid] : topo_.portsOf(broker)) {
        if (topo_.link(lid).peerOf(broker).node == e.direction) {
          hop = topo_.link(lid).latency;
          break;
        }
      }
      ++result.linkCrossings;
      result.bytesOnLinks += static_cast<std::uint64_t>(packetBytes);
      if (topo_.isHost(e.direction)) {
        result.deliveries.push_back(Delivery{e.direction, departure + hop});
      } else {
        self(self, e.direction, broker, departure + hop);
      }
    }
  };

  ++result.linkCrossings;  // publisher -> access broker
  result.bytesOnLinks += static_cast<std::uint64_t>(packetBytes);
  visit(visit, access, host, accessLatency);
  return result;
}

std::size_t BrokerOverlay::totalRoutingEntries() const noexcept {
  std::size_t total = 0;
  for (const auto& [broker, table] : tables_) total += table.size();
  return total;
}

}  // namespace pleroma::baseline
