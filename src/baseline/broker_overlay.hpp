// The comparison baseline: a classical broker-based content pub/sub overlay
// (Sec 1, Sec 3.1, related work [2,8]). Brokers are co-located with the
// switches and organised in a single spanning tree; subscriptions propagate
// through the tree with covering-based suppression; every event is matched
// *in software* at every broker it traverses, adding per-broker processing
// delay — the detour-and-matching cost PLEROMA eliminates by filtering in
// TCAMs. Exact rectangle matching means zero false positives, at the price
// of per-event broker CPU work.
//
// The overlay is evaluated analytically on the shared topology (per-event
// DFS with accumulated delay), which is sufficient for the delay/bandwidth
// comparisons of the ablation bench.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "dz/event_space.hpp"
#include "net/topology.hpp"

namespace pleroma::baseline {

using SubscriptionId = std::int64_t;

struct BrokerConfig {
  /// Fixed per-broker forwarding/processing latency.
  net::SimTime brokerBaseDelay = 50 * net::kMicrosecond;
  /// Added matching cost per filter evaluated at a broker.
  net::SimTime perFilterMatchCost = 200 * net::kNanosecond;
  /// Root of the broker tree; defaults to the first switch.
  net::NodeId root = net::kInvalidNode;
};

class BrokerOverlay {
 public:
  explicit BrokerOverlay(net::Topology topology, BrokerConfig config = {});

  SubscriptionId subscribe(net::NodeId host, dz::Rectangle rect);
  void unsubscribe(SubscriptionId id);

  struct Delivery {
    net::NodeId host = net::kInvalidNode;
    net::SimTime delay = 0;
  };
  struct PublishResult {
    std::vector<Delivery> deliveries;
    std::uint64_t linkCrossings = 0;
    std::uint64_t bytesOnLinks = 0;
    /// Filters evaluated across all brokers for this event.
    std::uint64_t matchOperations = 0;
  };

  /// Injects an event at the publisher's access broker and routes it
  /// through the overlay. Deterministic; no global clock needed.
  PublishResult publish(net::NodeId host, const dz::Event& event,
                        int packetBytes = 64) const;

  /// Total filters stored across all brokers (routing-state footprint).
  std::size_t totalRoutingEntries() const noexcept;
  /// Subscription messages exchanged between brokers so far (control cost).
  std::uint64_t subscriptionMessages() const noexcept { return subMessages_; }

  const net::Topology& topology() const noexcept { return topo_; }

 private:
  /// Routing entry at a broker: forward events matching `rect` towards
  /// `direction` (a neighbouring broker or a locally attached host).
  struct Entry {
    SubscriptionId id;
    net::NodeId direction;
    dz::Rectangle rect;
  };

  std::vector<net::NodeId> treeNeighbors(net::NodeId broker) const;
  void propagateSubscription(SubscriptionId id, const dz::Rectangle& rect,
                             net::NodeId broker, net::NodeId fromDirection);

  net::Topology topo_;
  BrokerConfig config_;
  net::NodeId root_ = net::kInvalidNode;
  /// Broker-tree parent per switch (kInvalidNode at root / non-switch).
  std::vector<net::NodeId> parent_;
  /// Per-broker routing tables.
  std::map<net::NodeId, std::vector<Entry>> tables_;
  std::map<SubscriptionId, net::NodeId> subscriberHost_;
  SubscriptionId next_ = 0;
  std::uint64_t subMessages_ = 0;
};

}  // namespace pleroma::baseline
