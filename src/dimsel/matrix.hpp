// A small dense row-major matrix of doubles — just enough linear algebra
// for the spectral dimension-selection of Sec 5 (covariance + eigen).
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace pleroma::dimsel {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  Matrix transposed() const;
  Matrix operator*(const Matrix& other) const;

  /// Subtracts from every column its own mean (per-column centering), i.e.
  /// removes the mean event profile — the centering step of Sec 5.
  Matrix centeredColumns() const;

  /// Subtracts from every row its own mean.
  Matrix centeredRows() const;

  /// C = M * M^T scaled by 1/(cols-1): the covariance across rows
  /// (dimensions) treating columns as observations. Requires cols >= 2.
  Matrix rowCovariance() const;

  bool isSymmetric(double tolerance = 1e-9) const noexcept;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace pleroma::dimsel
