#include "dimsel/matrix.hpp"

#include <cmath>

namespace pleroma::dimsel {

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = at(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) += v * other.at(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::centeredColumns() const {
  Matrix out = *this;
  for (std::size_t c = 0; c < cols_; ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) mean += at(r, c);
    mean /= static_cast<double>(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out.at(r, c) -= mean;
  }
  return out;
}

Matrix Matrix::centeredRows() const {
  Matrix out = *this;
  for (std::size_t r = 0; r < rows_; ++r) {
    double mean = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) mean += at(r, c);
    mean /= static_cast<double>(cols_);
    for (std::size_t c = 0; c < cols_; ++c) out.at(r, c) -= mean;
  }
  return out;
}

Matrix Matrix::rowCovariance() const {
  assert(cols_ >= 2);
  Matrix out(rows_, rows_);
  const double norm = 1.0 / static_cast<double>(cols_ - 1);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i; j < rows_; ++j) {
      double acc = 0.0;
      for (std::size_t c = 0; c < cols_; ++c) acc += at(i, c) * at(j, c);
      out.at(i, j) = acc * norm;
      out.at(j, i) = out.at(i, j);
    }
  }
  return out;
}

bool Matrix::isSymmetric(double tolerance) const noexcept {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i + 1; j < cols_; ++j) {
      if (std::fabs(at(i, j) - at(j, i)) > tolerance) return false;
    }
  }
  return true;
}

}  // namespace pleroma::dimsel
