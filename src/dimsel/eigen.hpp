// Symmetric eigendecomposition via the cyclic Jacobi rotation method —
// exact to machine precision for the small (<= #attributes, i.e. <= 10x10)
// covariance matrices of the dimension-selection step.
#pragma once

#include <vector>

#include "dimsel/matrix.hpp"

namespace pleroma::dimsel {

struct EigenDecomposition {
  /// Eigenvalues sorted descending.
  std::vector<double> values;
  /// eigenvector `i` (column i) corresponds to values[i]; unit length.
  Matrix vectors;
};

/// Decomposes a symmetric matrix: C = Q diag(values) Q^T. Asserts on
/// non-square input; symmetry is assumed (the strictly-lower triangle is
/// read as the mirror of the upper one).
EigenDecomposition eigenSymmetric(const Matrix& m, int maxSweeps = 64,
                                  double tolerance = 1e-12);

}  // namespace pleroma::dimsel
