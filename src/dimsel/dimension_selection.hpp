// Dimension selection (Sec 5): choose the subset Omega_P of attributes to
// spatially index so that in-network filtering removes the most unnecessary
// traffic with the least dz length / flow-table overhead.
//
// Pipeline: build W (|Omega| x |E^t|) where w_ij is the number of
// subscriptions matched by event j along dimension i alone; center; compute
// the covariance across dimensions; eigendecompose; rank the *original*
// dimensions by the magnitude of their coefficient in the principal
// eigenvector (PCA-based feature selection after Malhi & Gao); keep the
// first k whose cumulative coefficient mass reaches the threshold.
#pragma once

#include <vector>

#include "dimsel/eigen.hpp"
#include "dz/event_space.hpp"

namespace pleroma::dimsel {

/// Builds the match-count matrix W: rows = dimensions, columns = the last
/// eta events; w_ij = |S^i_j| = number of subscriptions whose range on
/// dimension i contains event j's value on that dimension.
Matrix buildMatchMatrix(const std::vector<dz::Event>& events,
                        const std::vector<dz::Rectangle>& subscriptions,
                        int numAttributes);

struct DimensionRanking {
  /// All dimensions, most informative first.
  std::vector<int> ranked;
  /// Coefficient magnitude per dimension (aligned with `ranked`).
  std::vector<double> weight;
  /// Number of leading dimensions whose cumulative weight first reaches the
  /// threshold.
  int k = 0;
};

/// Ranks dimensions by filtering utility and picks k by the administrator
/// threshold on cumulative coefficient magnitude (0 < threshold <= 1).
DimensionRanking rankDimensions(const Matrix& matchMatrix, double threshold = 0.9);

/// End-to-end convenience: the selected Omega_P for a recent event window.
std::vector<int> selectDimensions(const std::vector<dz::Event>& events,
                                  const std::vector<dz::Rectangle>& subscriptions,
                                  int numAttributes, double threshold = 0.9);

}  // namespace pleroma::dimsel
