#include "dimsel/eigen.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace pleroma::dimsel {

EigenDecomposition eigenSymmetric(const Matrix& input, int maxSweeps,
                                  double tolerance) {
  assert(input.rows() == input.cols());
  const std::size_t n = input.rows();

  // Work on a symmetrised copy.
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a.at(i, j) = 0.5 * (input.at(i, j) + input.at(j, i));
    }
  }
  Matrix q(n, n);
  for (std::size_t i = 0; i < n; ++i) q.at(i, i) = 1.0;

  auto offDiagonalNorm = [&]() {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) acc += a.at(i, j) * a.at(i, j);
    }
    return std::sqrt(acc);
  };

  for (int sweep = 0; sweep < maxSweeps && offDiagonalNorm() > tolerance; ++sweep) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t r = p + 1; r < n; ++r) {
        const double apr = a.at(p, r);
        if (std::fabs(apr) <= tolerance) continue;
        const double app = a.at(p, p);
        const double arr = a.at(r, r);
        // Classic Jacobi rotation annihilating a[p][r].
        const double theta = (arr - app) / (2.0 * apr);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a.at(k, p);
          const double akr = a.at(k, r);
          a.at(k, p) = c * akp - s * akr;
          a.at(k, r) = s * akp + c * akr;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a.at(p, k);
          const double ark = a.at(r, k);
          a.at(p, k) = c * apk - s * ark;
          a.at(r, k) = s * apk + c * ark;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double qkp = q.at(k, p);
          const double qkr = q.at(k, r);
          q.at(k, p) = c * qkp - s * qkr;
          q.at(k, r) = s * qkp + c * qkr;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a.at(x, x) > a.at(y, y); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out.values[i] = a.at(order[i], order[i]);
    for (std::size_t k = 0; k < n; ++k) out.vectors.at(k, i) = q.at(k, order[i]);
  }
  return out;
}

}  // namespace pleroma::dimsel
