#include "dimsel/dimension_selection.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace pleroma::dimsel {

Matrix buildMatchMatrix(const std::vector<dz::Event>& events,
                        const std::vector<dz::Rectangle>& subscriptions,
                        int numAttributes) {
  Matrix w(static_cast<std::size_t>(numAttributes), events.size());
  for (std::size_t j = 0; j < events.size(); ++j) {
    const dz::Event& e = events[j];
    assert(e.size() == static_cast<std::size_t>(numAttributes));
    for (const dz::Rectangle& sub : subscriptions) {
      assert(sub.ranges.size() == static_cast<std::size_t>(numAttributes));
      for (int d = 0; d < numAttributes; ++d) {
        const auto dd = static_cast<std::size_t>(d);
        if (sub.ranges[dd].contains(e[dd])) w.at(dd, j) += 1.0;
      }
    }
  }
  return w;
}

DimensionRanking rankDimensions(const Matrix& matchMatrix, double threshold) {
  assert(threshold > 0.0 && threshold <= 1.0);
  const std::size_t dims = matchMatrix.rows();
  DimensionRanking out;

  // Degenerate window: fall back to "keep everything" ranked by raw row
  // variance (still deterministic).
  if (matchMatrix.cols() < 2) {
    out.ranked.resize(dims);
    std::iota(out.ranked.begin(), out.ranked.end(), 0);
    out.weight.assign(dims, 1.0 / static_cast<double>(dims));
    out.k = static_cast<int>(dims);
    return out;
  }

  // Center each dimension's match counts across the event observations
  // ("subtracting the mean of W from its columns" — the mean here is the
  // per-dimension mean vector), then C = W̃ W̃ᵀ is the covariance between
  // dimensions. A dimension whose match count never varies (e.g. everyone
  // subscribes to its whole domain) contributes nothing to C.
  const Matrix centered = matchMatrix.centeredRows();
  const Matrix cov = centered.rowCovariance();
  const EigenDecomposition eig = eigenSymmetric(cov);

  // Importance of dimension i: its loading across the eigenvectors,
  // weighted by the variance each eigenvector explains,
  //     importance_i = sum_j lambda_j * |Q_ij|.
  // With strongly correlated dimensions one eigenvalue dominates and this
  // reduces to the paper's rank-by-|q_i|-of-the-principal-eigenvector rule
  // (Malhi & Gao); with *uncorrelated* informative dimensions the
  // principal eigenvector aligns with a single axis and would starve the
  // others, which the weighted sum avoids.
  std::vector<double> magnitude(dims, 0.0);
  for (std::size_t j = 0; j < dims; ++j) {
    const double weight = std::max(eig.values[j], 0.0);
    if (weight <= 0.0) continue;
    for (std::size_t i = 0; i < dims; ++i) {
      magnitude[i] += weight * std::fabs(eig.vectors.at(i, j));
    }
  }

  out.ranked.resize(dims);
  std::iota(out.ranked.begin(), out.ranked.end(), 0);
  std::stable_sort(out.ranked.begin(), out.ranked.end(), [&](int a, int b) {
    return magnitude[static_cast<std::size_t>(a)] >
           magnitude[static_cast<std::size_t>(b)];
  });

  const double total = std::accumulate(magnitude.begin(), magnitude.end(), 0.0);
  out.weight.reserve(dims);
  double cumulative = 0.0;
  out.k = static_cast<int>(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    const double wi =
        total > 0.0 ? magnitude[static_cast<std::size_t>(out.ranked[i])] / total
                    : 1.0 / static_cast<double>(dims);
    out.weight.push_back(wi);
    cumulative += wi;
    if (cumulative >= threshold && out.k == static_cast<int>(dims)) {
      out.k = static_cast<int>(i + 1);
    }
  }
  return out;
}

std::vector<int> selectDimensions(const std::vector<dz::Event>& events,
                                  const std::vector<dz::Rectangle>& subscriptions,
                                  int numAttributes, double threshold) {
  const Matrix w = buildMatchMatrix(events, subscriptions, numAttributes);
  const DimensionRanking ranking = rankDimensions(w, threshold);
  std::vector<int> dims(ranking.ranked.begin(), ranking.ranked.begin() + ranking.k);
  return dims;
}

}  // namespace pleroma::dimsel
