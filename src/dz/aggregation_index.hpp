// Incremental subscription aggregation (Sec 3 + Towards Scalable
// Subscription Aggregation, Shi et al.): maintains the canonical aggregate
// of a multiset of dz members — the DzSet a naive union of all live members
// would produce — under refcounted add/remove, and reports each change as
// an exact delta of representatives entering/leaving the aggregate.
//
// The point is sublinear flow state: a member already covered by the
// aggregate adds nothing (the common case under skewed workloads), sibling
// members collapse into their parent, and removing a member *uncovers*
// only the subtree of the one representative that covered it — no full
// recompute. Complexity per operation is O(dz length + |delta| + local
// splice), with the member multiset held in a flat-array trie (index-linked
// nodes in one contiguous vector, free-list recycling — no per-node heap
// allocations at steady state).
#pragma once

#include <cstdint>
#include <vector>

#include "dz/dz_set.hpp"

namespace pleroma::dz {

/// The change one add/remove made to the canonical aggregate: exact
/// representatives that entered (`added`) and left (`removed`) it. Both
/// lists are exact members of the previous/next aggregate respectively
/// (never canonicalised across each other), so callers can key per-piece
/// state — spatial indexes, installed paths — by identity.
struct AggregationDelta {
  std::vector<DzExpression> added;
  std::vector<DzExpression> removed;

  bool empty() const noexcept { return added.empty() && removed.empty(); }

  /// Composes a subsequent delta into this one with exact cancellation:
  /// a piece removed after being added in the same composition vanishes
  /// (and vice versa), so the composite maps the aggregate before the
  /// first operation directly to the aggregate after the last.
  void merge(AggregationDelta&& later);
};

class AggregationIndex {
 public:
  AggregationIndex() { clear(); }

  /// Registers one member (refcounted: the same dz may be added by many
  /// subscriptions). Returns the aggregate delta — empty when the member
  /// was already covered, i.e. nothing needs installing.
  AggregationDelta add(const DzExpression& d);
  /// Registers every member of `set`, returning the composed delta.
  AggregationDelta add(const DzSet& set);

  /// Releases one member reference. While other references (or a covering
  /// member) keep its subspace needed the delta is empty; otherwise the
  /// covering representative is *uncovered*: replaced by the canonical
  /// cover of the members remaining beneath it (possibly nothing).
  AggregationDelta remove(const DzExpression& d);
  AggregationDelta remove(const DzSet& set);

  /// The canonical aggregate: spatially equal to the union of all live
  /// members, kept in DzSet canonical form incrementally.
  const DzSet& aggregate() const noexcept { return aggregate_; }

  /// True iff the aggregate covers `d` — a subscription for `d` would
  /// install nothing.
  bool covered(const DzExpression& d) const noexcept {
    return aggregate_.covers(d);
  }

  std::size_t memberCount() const noexcept { return members_; }
  std::size_t representativeCount() const noexcept { return aggregate_.size(); }
  /// Live trie nodes (the arena may hold more capacity than this).
  std::size_t nodeCount() const noexcept { return liveNodes_; }
  /// Deterministic accounting of held state (element counts, not vector
  /// capacities, so it is identical across thread counts and runs).
  std::size_t stateBytes() const noexcept;

  void clear();

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// 16-byte trie node, linked by arena index. `self` counts members whose
  /// dz ends exactly here; `subtree` counts members at or below.
  struct Node {
    std::uint32_t child[2] = {kNil, kNil};
    std::uint32_t self = 0;
    std::uint32_t subtree = 0;
  };

  std::uint32_t allocNode();
  void releaseNode(std::uint32_t idx);
  /// The node of `d`, or kNil when no member at/below it exists.
  std::uint32_t findNode(const DzExpression& d) const noexcept;

  /// Appends the canonical cover of the members in `idx`'s subtree (whose
  /// dz is `key`) to `out` in trie order. Returns true when the cover is
  /// the full `key` subspace — the caller then owns collapsing it upward
  /// (the two-full-children case merges into the parent here).
  bool coverUnder(std::uint32_t idx, const DzExpression& key,
                  std::vector<DzExpression>& out) const;

  std::vector<Node> nodes_;        // flat arena; index 0 is the root
  std::vector<std::uint32_t> free_;
  std::size_t liveNodes_ = 0;
  std::size_t members_ = 0;
  DzSet aggregate_;
};

}  // namespace pleroma::dz
