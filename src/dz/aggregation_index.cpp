#include "dz/aggregation_index.hpp"

#include <algorithm>
#include <cassert>

namespace pleroma::dz {

namespace {

/// Exact-cancel bookkeeping: recording the removal of a piece that is
/// pending as an add (or vice versa) annihilates the pair instead of
/// letting it appear on both sides of the delta.
void noteRemoved(AggregationDelta& delta, const DzExpression& d) {
  const auto it = std::find(delta.added.begin(), delta.added.end(), d);
  if (it != delta.added.end()) {
    delta.added.erase(it);
  } else {
    delta.removed.push_back(d);
  }
}

void noteAdded(AggregationDelta& delta, const DzExpression& d) {
  const auto it = std::find(delta.removed.begin(), delta.removed.end(), d);
  if (it != delta.removed.end()) {
    delta.removed.erase(it);
  } else {
    delta.added.push_back(d);
  }
}

}  // namespace

void AggregationDelta::merge(AggregationDelta&& later) {
  for (const DzExpression& d : later.removed) noteRemoved(*this, d);
  for (const DzExpression& d : later.added) noteAdded(*this, d);
}

void AggregationIndex::clear() {
  nodes_.clear();
  free_.clear();
  nodes_.push_back(Node{});  // root
  liveNodes_ = 1;
  members_ = 0;
  aggregate_ = DzSet{};
}

std::uint32_t AggregationIndex::allocNode() {
  ++liveNodes_;
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    nodes_[idx] = Node{};
    return idx;
  }
  nodes_.push_back(Node{});
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void AggregationIndex::releaseNode(std::uint32_t idx) {
  assert(idx != 0 && "the root is never released");
  --liveNodes_;
  free_.push_back(idx);
}

std::uint32_t AggregationIndex::findNode(const DzExpression& d) const noexcept {
  std::uint32_t cur = 0;
  for (int i = 0; i < d.length(); ++i) {
    cur = nodes_[cur].child[d.bit(i) ? 1 : 0];
    if (cur == kNil) return kNil;
  }
  return cur;
}

std::size_t AggregationIndex::stateBytes() const noexcept {
  return liveNodes_ * sizeof(Node) +
         aggregate_.size() * sizeof(DzExpression);
}

AggregationDelta AggregationIndex::add(const DzExpression& d) {
  // Record the member reference along its trie path.
  std::uint32_t cur = 0;
  ++nodes_[cur].subtree;
  for (int i = 0; i < d.length(); ++i) {
    const int b = d.bit(i) ? 1 : 0;
    std::uint32_t next = nodes_[cur].child[b];
    if (next == kNil) {
      next = allocNode();
      nodes_[cur].child[b] = next;
    }
    cur = next;
    ++nodes_[cur].subtree;
  }
  ++nodes_[cur].self;
  ++members_;

  AggregationDelta delta;
  if (aggregate_.covers(d)) return delta;  // covered: installs nothing

  // d becomes a representative: drop the representatives it covers (a
  // contiguous trie-order range right after d's slot) ...
  std::vector<DzExpression>& items = aggregate_.items_;
  auto lo = std::lower_bound(items.begin(), items.end(), d);
  auto hi = lo;
  while (hi != items.end() && d.covers(*hi)) ++hi;
  for (auto it = lo; it != hi; ++it) noteRemoved(delta, *it);
  auto pos = items.erase(lo, hi);
  pos = items.insert(pos, d);
  noteAdded(delta, d);

  // ... then collapse complete sibling pairs upward. A present sibling is
  // adjacent in trie order (canonical sets hold no descendants of members).
  std::size_t idx = static_cast<std::size_t>(pos - items.begin());
  DzExpression merged = d;
  while (merged.length() > 0) {
    const DzExpression sib = merged.sibling();
    std::size_t sibIdx;
    if (idx > 0 && items[idx - 1] == sib) {
      sibIdx = idx - 1;
    } else if (idx + 1 < items.size() && items[idx + 1] == sib) {
      sibIdx = idx + 1;
    } else {
      break;
    }
    const DzExpression parent = merged.parent();
    const std::size_t first = std::min(idx, sibIdx);
    items.erase(items.begin() + static_cast<std::ptrdiff_t>(first),
                items.begin() + static_cast<std::ptrdiff_t>(first) + 2);
    items.insert(items.begin() + static_cast<std::ptrdiff_t>(first), parent);
    noteRemoved(delta, merged);
    noteRemoved(delta, sib);
    noteAdded(delta, parent);
    merged = parent;
    idx = first;
  }
  return delta;
}

AggregationDelta AggregationIndex::add(const DzSet& set) {
  AggregationDelta delta;
  for (const DzExpression& d : set) delta.merge(add(d));
  return delta;
}

bool AggregationIndex::coverUnder(std::uint32_t idx, const DzExpression& key,
                                  std::vector<DzExpression>& out) const {
  const Node& n = nodes_[idx];
  if (n.self > 0) {
    out.push_back(key);
    return true;
  }
  const std::size_t mark = out.size();
  const bool full0 =
      n.child[0] != kNil && coverUnder(n.child[0], key.child(false), out);
  const bool full1 =
      n.child[1] != kNil && coverUnder(n.child[1], key.child(true), out);
  if (full0 && full1) {
    // Both halves fully covered: the sibling pair merges into `key`.
    out.resize(mark);
    out.push_back(key);
    return true;
  }
  return false;
}

AggregationDelta AggregationIndex::remove(const DzExpression& d) {
  AggregationDelta delta;

  // Walk the member's path, remembering it for pruning.
  std::uint32_t path[kMaxDzLength + 1];
  path[0] = 0;
  std::uint32_t cur = 0;
  for (int i = 0; i < d.length(); ++i) {
    cur = nodes_[cur].child[d.bit(i) ? 1 : 0];
    if (cur == kNil) {
      assert(false && "removing a dz that was never added");
      return delta;
    }
    path[i + 1] = cur;
  }
  if (nodes_[cur].self == 0) {
    assert(false && "removing a dz with no live reference");
    return delta;
  }
  --nodes_[cur].self;
  for (int i = 0; i <= d.length(); ++i) --nodes_[path[i]].subtree;
  --members_;
  // Prune emptied nodes bottom-up (the root stays).
  for (int i = d.length(); i > 0; --i) {
    if (nodes_[path[i]].subtree != 0) break;
    nodes_[path[i - 1]].child[d.bit(i - 1) ? 1 : 0] = kNil;
    releaseNode(path[i]);
  }

  // The unique representative covering d is the trie-order predecessor of
  // d's slot (members between them would be its descendants — impossible
  // in canonical form).
  std::vector<DzExpression>& items = aggregate_.items_;
  auto it = std::upper_bound(items.begin(), items.end(), d);
  assert(it != items.begin() && "member not covered by the aggregate");
  auto repIt = std::prev(it);
  const DzExpression rep = *repIt;
  assert(rep.covers(d) && "predecessor does not cover the removed member");

  // Uncover: the canonical cover of the members remaining under rep.
  std::vector<DzExpression> pieces;
  const std::uint32_t repNode = findNode(rep);
  if (repNode != kNil && coverUnder(repNode, rep, pieces)) {
    return delta;  // still fully covered: nothing leaves the aggregate
  }
  noteRemoved(delta, rep);
  for (const DzExpression& p : pieces) noteAdded(delta, p);
  const auto pos = items.erase(repIt);
  items.insert(pos, pieces.begin(), pieces.end());
  return delta;
}

AggregationDelta AggregationIndex::remove(const DzSet& set) {
  AggregationDelta delta;
  for (const DzExpression& d : set) delta.merge(remove(d));
  return delta;
}

}  // namespace pleroma::dz
