#include "dz/dz_expression.hpp"

#include <cassert>

namespace pleroma::dz {

std::optional<DzExpression> DzExpression::fromString(std::string_view s) noexcept {
  if (s.size() > static_cast<std::size_t>(kMaxDzLength)) return std::nullopt;
  U128 bits{};
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '1') {
      bits.setBitFromMsb(static_cast<int>(i), true);
    } else if (s[i] != '0') {
      return std::nullopt;
    }
  }
  return DzExpression(bits, static_cast<int>(s.size()));
}

std::string DzExpression::toString() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(length_));
  for (int i = 0; i < length_; ++i) out.push_back(bit(i) ? '1' : '0');
  return out;
}

DzExpression DzExpression::child(bool bitValue) const noexcept {
  assert(length_ < kMaxDzLength);
  U128 bits = bits_;
  bits.setBitFromMsb(length_, bitValue);
  return DzExpression(bits, length_ + 1);
}

DzExpression DzExpression::parent() const noexcept {
  assert(length_ > 0);
  return DzExpression(bits_, length_ - 1);
}

DzExpression DzExpression::sibling() const noexcept {
  assert(length_ > 0);
  U128 bits = bits_;
  bits.setBitFromMsb(length_ - 1, !bit(length_ - 1));
  return DzExpression(bits, length_);
}

DzExpression DzExpression::prefix(int n) const noexcept {
  assert(n >= 0 && n <= length_);
  return DzExpression(bits_, n);
}

DzRelation DzExpression::relation(const DzExpression& other) const noexcept {
  if (*this == other) return DzRelation::kEqual;
  if (covers(other)) return DzRelation::kCovers;
  if (other.covers(*this)) return DzRelation::kCoveredBy;
  return DzRelation::kDisjoint;
}

std::optional<DzExpression> DzExpression::intersect(
    const DzExpression& other) const noexcept {
  if (covers(other)) return other;
  if (other.covers(*this)) return *this;
  return std::nullopt;
}

DzExpression DzExpression::truncated(int maxLength) const noexcept {
  assert(maxLength >= 0);
  return length_ <= maxLength ? *this : DzExpression(bits_, maxLength);
}

}  // namespace pleroma::dz
