// Embedding of dz-expressions into IPv6 multicast addresses (Sec 3.3.2).
// An event/flow subspace dz is carried in the 112 bits following the fixed
// ff0e multicast prefix: addr = ff0e:: | dz << (112 - |dz|), and a flow
// matches with CIDR prefix length 16 + |dz|. Prefix match on addresses is
// then exactly the dz covering relation, which is what lets commodity TCAMs
// evaluate content filters at line rate:
//   dz=101    -> ff0e:a000::/19
//   dz=101101 -> ff0e:b400::/22
#pragma once

#include <compare>
#include <optional>
#include <string>

#include "dz/dz_expression.hpp"

namespace pleroma::dz {

/// The 16-bit prefix reserved for PLEROMA traffic (IPv6 multicast, scope e).
inline constexpr std::uint16_t kMulticastPrefix = 0xff0e;

/// A 128-bit IPv6 address value type.
struct Ipv6Address {
  U128 value{};

  friend constexpr bool operator==(Ipv6Address, Ipv6Address) noexcept = default;
  friend constexpr std::strong_ordering operator<=>(Ipv6Address a,
                                                    Ipv6Address b) noexcept {
    return a.value <=> b.value;
  }

  /// Canonical full-form text, e.g. "ff0e:a000:0000:...:0000".
  std::string toString() const;
};

/// A CIDR prefix: address plus prefix length in [0, 128].
struct Ipv6Prefix {
  Ipv6Address address{};
  int length = 0;

  /// True iff `addr` falls inside this prefix.
  constexpr bool matches(Ipv6Address addr) const noexcept {
    return ((address.value ^ addr.value) & U128::topMask(length)).isZero();
  }

  /// True iff this prefix contains the other prefix entirely.
  constexpr bool covers(const Ipv6Prefix& other) const noexcept {
    return length <= other.length && matches(other.address);
  }

  friend constexpr bool operator==(const Ipv6Prefix&,
                                   const Ipv6Prefix&) noexcept = default;

  std::string toString() const;
};

/// Encodes a dz as the multicast address carried by events.
Ipv6Address dzToAddress(const DzExpression& d) noexcept;

/// Encodes a dz as the match prefix installed into flow tables
/// (length = 16 + |dz|).
Ipv6Prefix dzToPrefix(const DzExpression& d) noexcept;

/// Inverse of dzToPrefix. Returns nullopt when the prefix is not inside the
/// PLEROMA multicast range or is shorter than the ff0e prefix itself.
std::optional<DzExpression> prefixToDz(const Ipv6Prefix& p) noexcept;

/// Inverse of dzToAddress at a given dz length.
std::optional<DzExpression> addressToDz(Ipv6Address addr, int dzLength) noexcept;

/// True iff the address lies in the reserved PLEROMA multicast range.
constexpr bool isPleromaAddress(Ipv6Address addr) noexcept {
  return (addr.value >> 112) == U128{0, kMulticastPrefix};
}

/// The reserved address IP_mid to which hosts send advertisements and
/// subscriptions; switches never install flows for it, so such packets are
/// punted to the controller (Sec 2). We use ff0e::/128-all-ones by
/// convention, which no dz encoding can produce (dz encodings are left
/// aligned and zero padded below 16+|dz| <= 128 bits only for |dz| = 112
/// with all-ones dz; we additionally never install flows matching it).
inline constexpr Ipv6Address kControlAddress{
    U128{0xff0effffffffffffULL, 0xfffffffffffffffeULL}};

}  // namespace pleroma::dz
