// dz-expressions (Sec 2 of the paper): binary strings identifying regular
// subspaces of the event space obtained by recursive, dimension-interleaved
// bisection. The empty string is the whole space; appending a bit halves the
// current cell along the next dimension. Prefix relation == spatial
// containment, which is what lets TCAM CIDR masks evaluate content filters.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "dz/u128.hpp"

namespace pleroma::dz {

/// Maximum representable dz length. The paper embeds dz into the low 112
/// bits of an IPv6 multicast address after the fixed ff0e prefix.
inline constexpr int kMaxDzLength = 112;

/// Spatial relation between two dz-expressions.
enum class DzRelation {
  kEqual,      ///< identical subspaces
  kCovers,     ///< *this is a proper prefix of the other (larger subspace)
  kCoveredBy,  ///< the other is a proper prefix of *this
  kDisjoint,   ///< neither is a prefix of the other
};

/// An immutable-by-convention binary string of length [0, 112], stored
/// left-aligned in 128 bits. Value type: cheap to copy (24 bytes), totally
/// ordered (by (bits, length) lexicographic trie order) for use in sorted
/// containers.
class DzExpression {
 public:
  /// The empty dz — the whole event space Omega.
  constexpr DzExpression() = default;

  /// Builds from left-aligned bits; only the first `length` bits are kept.
  constexpr DzExpression(U128 bits, int length) noexcept
      : bits_(bits & U128::topMask(length)), length_(length) {}

  /// Parses a string of '0'/'1'. Returns nullopt on any other character or
  /// if the string is longer than kMaxDzLength.
  static std::optional<DzExpression> fromString(std::string_view s) noexcept;

  /// "0"/"1" string of exactly length() characters ("" for the whole space).
  std::string toString() const;

  constexpr int length() const noexcept { return length_; }
  constexpr U128 bits() const noexcept { return bits_; }
  constexpr bool isWholeSpace() const noexcept { return length_ == 0; }

  /// Bit at position i (0-based from the front). Requires i < length().
  constexpr bool bit(int i) const noexcept { return bits_.bitFromMsb(i); }

  /// dz extended by one bit. Requires length() < kMaxDzLength.
  DzExpression child(bool bitValue) const noexcept;

  /// dz with the last bit dropped. Requires length() > 0.
  DzExpression parent() const noexcept;

  /// The other child of this dz's parent. Requires length() > 0.
  DzExpression sibling() const noexcept;

  /// First `n` bits. Requires 0 <= n <= length().
  DzExpression prefix(int n) const noexcept;

  /// True iff *this covers `other` (reflexively): this is a prefix of other,
  /// i.e. the subspace of `other` is contained in the subspace of *this.
  /// Written dz_this >= dz_other in the paper's notation.
  constexpr bool covers(const DzExpression& other) const noexcept {
    return length_ <= other.length_ &&
           ((bits_ ^ other.bits_) & U128::topMask(length_)).isZero();
  }

  /// True iff the two subspaces overlap: one covers the other.
  constexpr bool overlaps(const DzExpression& other) const noexcept {
    return covers(other) || other.covers(*this);
  }

  DzRelation relation(const DzExpression& other) const noexcept;

  /// The overlap of two overlapping dz is the longer of the two.
  /// Returns nullopt when disjoint.
  std::optional<DzExpression> intersect(const DzExpression& other) const noexcept;

  /// Truncates to at most `maxLength` bits (identity if already shorter).
  DzExpression truncated(int maxLength) const noexcept;

  friend constexpr bool operator==(const DzExpression& a,
                                   const DzExpression& b) noexcept {
    return a.length_ == b.length_ && a.bits_ == b.bits_;
  }

  /// Trie order: by bit string lexicographically, prefixes first. With this
  /// order every dz sorts immediately before all dz it covers.
  friend constexpr std::strong_ordering operator<=>(
      const DzExpression& a, const DzExpression& b) noexcept {
    const int common = a.length_ < b.length_ ? a.length_ : b.length_;
    const U128 mask = U128::topMask(common);
    if (auto c = (a.bits_ & mask) <=> (b.bits_ & mask); c != 0) return c;
    return a.length_ <=> b.length_;
  }

 private:
  U128 bits_{};
  int length_ = 0;
};

/// Hash support for unordered containers; delegates to the one shared U128
/// hash routine, salted with the length so "10" and "100" differ.
struct DzHash {
  std::size_t operator()(const DzExpression& d) const noexcept {
    return u128Hash(d.bits(), static_cast<std::uint64_t>(d.length()));
  }
};

}  // namespace pleroma::dz
