// DZ sets (Sec 2): an advertisement/subscription is approximated by a set of
// dz-expressions. The set is kept canonical: members are pairwise disjoint
// (no member covers another) and sibling pairs are merged into their parent,
// so equality of the represented subspace implies equality of the
// representation. All the containment/overlap relations the controller
// algorithms (Sec 3-4) need are defined here.
#pragma once

#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "dz/dz_expression.hpp"

namespace pleroma::dz {

class DzSet {
 public:
  DzSet() = default;
  explicit DzSet(DzExpression single) { insert(single); }
  DzSet(std::initializer_list<DzExpression> items) {
    for (const auto& d : items) insert(d);
  }

  /// Parses a comma/space separated list of binary strings, e.g. "110,100".
  static std::optional<DzSet> fromString(std::string_view s);
  std::string toString() const;

  bool empty() const noexcept { return items_.empty(); }
  std::size_t size() const noexcept { return items_.size(); }
  const std::vector<DzExpression>& items() const noexcept { return items_; }
  auto begin() const noexcept { return items_.begin(); }
  auto end() const noexcept { return items_.end(); }

  /// Adds a subspace, re-canonicalising (drops members covered by `d`,
  /// no-ops if `d` is already covered, merges resulting sibling chains).
  void insert(DzExpression d);

  /// Set union of represented subspaces.
  void unionWith(const DzSet& other);

  /// True iff some member covers `d` (the set's subspace contains d's).
  bool covers(const DzExpression& d) const noexcept;

  /// True iff every member of `other` is covered: this ⊇ other spatially.
  bool coversSet(const DzSet& other) const noexcept;

  /// True iff some member overlaps `d`.
  bool overlaps(const DzExpression& d) const noexcept;
  bool overlaps(const DzSet& other) const noexcept;

  /// Spatial intersection (pairwise longer-of-overlapping-pair), canonical.
  DzSet intersect(const DzSet& other) const;
  DzSet intersect(const DzExpression& d) const { return intersect(DzSet(d)); }

  /// Spatial difference this − other, canonical. The non-overlapping part of
  /// a dz w.r.t. a finer dz is a set of sibling subspaces (paper Sec 2,
  /// property 4); depth of the expansion is bounded by the longest member of
  /// `other` that overlaps.
  DzSet subtract(const DzSet& other) const;

  /// Every member truncated to `maxLength` bits, re-canonicalised. Models
  /// the L_dz limit of the IP-address embedding (Sec 6.4).
  DzSet truncated(int maxLength) const;

  /// Fraction of the event space this set covers, in [0, 1]. Canonical
  /// members are disjoint, so it is simply sum(2^-|dz|). Useful for
  /// analytic false-positive estimates: a subscription's expected FPR
  /// under uniform traffic is 1 - exactVolume / coverVolume.
  double volume() const noexcept;

  friend bool operator==(const DzSet&, const DzSet&) = default;

 private:
  void canonicalize();

  /// The aggregation index edits `items_` in place with localized splices
  /// (its operations preserve the canonical form by construction, so a full
  /// re-canonicalisation per update would waste the incrementality).
  friend class AggregationIndex;

  // Sorted in trie order, pairwise disjoint, sibling-merged.
  std::vector<DzExpression> items_;
};

}  // namespace pleroma::dz
