// A binary trie keyed by dz-expressions, mapping each dz to a bag of
// values. Supports the two spatial queries the controller needs fast:
// values at *covering* keys (prefixes of a dz — the coarser subspaces
// containing it) and values at *covered* keys (extensions — the finer
// subspaces inside it). Used as the controller's subscription index so
// that advertisement processing (Algorithm 1's addFlowMultSub) touches
// only overlapping subscriptions instead of scanning all of them.
//
// Header-only template; values are stored per exact key in insertion
// order. Duplicate (key, value) pairs are allowed and erased one at a
// time.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "dz/dz_expression.hpp"

namespace pleroma::dz {

template <typename T>
class DzTrie {
 public:
  /// Adds `value` under key `d`.
  void insert(const DzExpression& d, T value) {
    Node* node = &root_;
    for (int i = 0; i < d.length(); ++i) {
      auto& child = node->children[d.bit(i) ? 1 : 0];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    node->values.push_back(std::move(value));
    ++size_;
  }

  /// Removes one occurrence of `value` at key `d`. Returns whether a value
  /// was removed. Empty branches are pruned.
  bool erase(const DzExpression& d, const T& value) {
    const bool removed = eraseImpl(root_, d, 0, value);
    if (removed) --size_;
    return removed;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  void clear() {
    root_ = Node{};
    size_ = 0;
  }

  /// Visits every value stored at a prefix of `d` (keys whose subspace
  /// covers d's), including d itself, shallowest first.
  void forEachCovering(const DzExpression& d,
                       const std::function<void(const DzExpression&, const T&)>& fn) const {
    const Node* node = &root_;
    for (int i = 0; i <= d.length(); ++i) {
      for (const T& v : node->values) fn(d.prefix(i), v);
      if (i == d.length()) break;
      node = node->children[d.bit(i) ? 1 : 0].get();
      if (node == nullptr) break;
    }
  }

  /// Visits every value stored at an extension of `d` (keys whose subspace
  /// is covered by d's), including d itself, in trie order.
  void forEachCovered(const DzExpression& d,
                      const std::function<void(const DzExpression&, const T&)>& fn) const {
    const Node* node = &root_;
    for (int i = 0; i < d.length(); ++i) {
      node = node->children[d.bit(i) ? 1 : 0].get();
      if (node == nullptr) return;
    }
    DzExpression key = d;
    visitSubtree(*node, key, fn);
  }

  /// Visits every value whose key overlaps `d` (covering or covered); a
  /// value is visited exactly once (the two key sets intersect only at d
  /// itself, which forEachCovered handles).
  void forEachOverlapping(const DzExpression& d,
                          const std::function<void(const DzExpression&, const T&)>& fn) const {
    const Node* node = &root_;
    for (int i = 0; i < d.length(); ++i) {
      for (const T& v : node->values) fn(d.prefix(i), v);
      node = node->children[d.bit(i) ? 1 : 0].get();
      if (node == nullptr) return;
    }
    DzExpression key = d;
    visitSubtree(*node, key, fn);
  }

 private:
  struct Node {
    std::vector<T> values;
    std::unique_ptr<Node> children[2];

    bool empty() const noexcept {
      return values.empty() && !children[0] && !children[1];
    }
  };

  static bool eraseImpl(Node& node, const DzExpression& d, int depth,
                        const T& value) {
    if (depth == d.length()) {
      const auto it = std::find(node.values.begin(), node.values.end(), value);
      if (it == node.values.end()) return false;
      node.values.erase(it);
      return true;
    }
    auto& child = node.children[d.bit(depth) ? 1 : 0];
    if (!child) return false;
    const bool removed = eraseImpl(*child, d, depth + 1, value);
    if (removed && child->empty()) child.reset();
    return removed;
  }

  static void visitSubtree(
      const Node& node, DzExpression& key,
      const std::function<void(const DzExpression&, const T&)>& fn) {
    for (const T& v : node.values) fn(key, v);
    if (key.length() >= kMaxDzLength) return;
    for (int bit = 0; bit < 2; ++bit) {
      const Node* child = node.children[bit].get();
      if (child == nullptr) continue;
      DzExpression childKey = key.child(bit == 1);
      visitSubtree(*child, childKey, fn);
    }
  }

  Node root_;
  std::size_t size_ = 0;
};

}  // namespace pleroma::dz
