#include "dz/dz_set.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iterator>

namespace pleroma::dz {

std::optional<DzSet> DzSet::fromString(std::string_view s) {
  DzSet out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    while (pos < s.size() && (s[pos] == ',' || s[pos] == ' ')) ++pos;
    std::size_t end = pos;
    while (end < s.size() && s[end] != ',' && s[end] != ' ') ++end;
    if (end > pos) {
      auto d = DzExpression::fromString(s.substr(pos, end - pos));
      if (!d) return std::nullopt;
      out.insert(*d);
    }
    pos = end;
  }
  return out;
}

std::string DzSet::toString() const {
  std::string out;
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out.push_back(',');
    // The whole space prints as "*" to stay readable.
    out += items_[i].isWholeSpace() ? "*" : items_[i].toString();
  }
  return out;
}

void DzSet::insert(DzExpression d) {
  if (covers(d)) return;
  items_.push_back(d);
  canonicalize();
}

void DzSet::unionWith(const DzSet& other) {
  if (other.empty()) return;
  items_.insert(items_.end(), other.items_.begin(), other.items_.end());
  canonicalize();
}

bool DzSet::covers(const DzExpression& d) const noexcept {
  // items_ is canonical: trie-sorted and prefix-free. In trie order every
  // dz sorts immediately before its descendants, and a prefix-free set has
  // no other member between a prefix of d and d itself — so the only
  // possible coverer of d is d's trie-order predecessor (or d itself).
  const auto it = std::upper_bound(items_.begin(), items_.end(), d);
  return it != items_.begin() && std::prev(it)->covers(d);
}

bool DzSet::coversSet(const DzSet& other) const noexcept {
  return std::all_of(other.items_.begin(), other.items_.end(),
                     [&](const DzExpression& d) { return covers(d); });
}

bool DzSet::overlaps(const DzExpression& d) const noexcept {
  // Overlap means one side covers the other. "Some member covers d" is the
  // predecessor probe of covers(); "d covers some member" is a probe of the
  // contiguous trie range of d's descendants, which starts at lower_bound.
  if (covers(d)) return true;
  const auto it = std::lower_bound(items_.begin(), items_.end(), d);
  return it != items_.end() && d.covers(*it);
}

bool DzSet::overlaps(const DzSet& other) const noexcept {
  return std::any_of(other.items_.begin(), other.items_.end(),
                     [&](const DzExpression& d) { return overlaps(d); });
}

DzSet DzSet::intersect(const DzSet& other) const {
  DzSet out;
  for (const auto& a : items_) {
    for (const auto& b : other.items_) {
      if (auto i = a.intersect(b)) out.items_.push_back(*i);
    }
  }
  out.canonicalize();
  return out;
}

namespace {

/// Emits `cell − subtrahend` for a cell that overlaps at least one member of
/// `subtrahend`, by splitting down the trie. Pre: no member covers `cell`.
void subtractCell(const DzExpression& cell, const DzSet& subtrahend,
                  std::vector<DzExpression>& out) {
  // All members overlapping `cell` are now strictly longer than `cell`
  // (otherwise one would cover it). Split and recurse on each half.
  for (bool bit : {false, true}) {
    const DzExpression half = cell.child(bit);
    if (subtrahend.covers(half)) continue;
    if (!subtrahend.overlaps(half)) {
      out.push_back(half);
    } else {
      subtractCell(half, subtrahend, out);
    }
  }
}

}  // namespace

DzSet DzSet::subtract(const DzSet& other) const {
  DzSet out;
  for (const auto& a : items_) {
    if (other.covers(a)) continue;
    if (!other.overlaps(a)) {
      out.items_.push_back(a);
    } else {
      subtractCell(a, other, out.items_);
    }
  }
  out.canonicalize();
  return out;
}

DzSet DzSet::truncated(int maxLength) const {
  DzSet out;
  for (const auto& a : items_) out.items_.push_back(a.truncated(maxLength));
  out.canonicalize();
  return out;
}

double DzSet::volume() const noexcept {
  double total = 0.0;
  for (const auto& d : items_) {
    total += std::pow(2.0, -static_cast<double>(d.length()));
  }
  return total;
}

void DzSet::canonicalize() {
  if (items_.empty()) return;
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end()), items_.end());

  // Drop members covered by an earlier member. In trie order a covering
  // prefix sorts immediately before everything it covers, but not
  // necessarily adjacently, so scan with a running "last kept" stack of one:
  // any kept member covers all subsequent covered members contiguously.
  std::vector<DzExpression> kept;
  kept.reserve(items_.size());
  for (const auto& d : items_) {
    if (!kept.empty() && kept.back().covers(d)) continue;
    kept.push_back(d);
  }
  items_ = std::move(kept);

  // Merge sibling pairs bottom-up until fixpoint. After each merge the
  // parent might itself have its sibling present, so loop.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i + 1 < items_.size(); ++i) {
      const DzExpression& a = items_[i];
      const DzExpression& b = items_[i + 1];
      if (a.length() > 0 && a.length() == b.length() && a.sibling() == b) {
        const DzExpression parent = a.parent();
        items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(i),
                     items_.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        // Insert parent keeping sort order; it sorts where `a` was.
        items_.insert(items_.begin() + static_cast<std::ptrdiff_t>(i), parent);
        changed = true;
        break;
      }
    }
  }
}

}  // namespace pleroma::dz
