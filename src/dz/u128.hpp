// A tiny fixed-width 128-bit unsigned integer with just the operations the
// dz-expression algebra and the IPv6 embedding need: shifts, bitwise ops,
// and comparisons. Bit 127 is the most significant bit ("leftmost").
#pragma once

#include <compare>
#include <cstdint>

namespace pleroma::dz {

struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  constexpr U128() = default;
  constexpr U128(std::uint64_t h, std::uint64_t l) noexcept : hi(h), lo(l) {}

  friend constexpr U128 operator&(U128 a, U128 b) noexcept {
    return {a.hi & b.hi, a.lo & b.lo};
  }
  friend constexpr U128 operator|(U128 a, U128 b) noexcept {
    return {a.hi | b.hi, a.lo | b.lo};
  }
  friend constexpr U128 operator^(U128 a, U128 b) noexcept {
    return {a.hi ^ b.hi, a.lo ^ b.lo};
  }
  constexpr U128 operator~() const noexcept { return {~hi, ~lo}; }

  friend constexpr U128 operator<<(U128 a, int n) noexcept {
    if (n <= 0) return a;
    if (n >= 128) return {};
    if (n >= 64) return {a.lo << (n - 64), 0};
    return {(a.hi << n) | (a.lo >> (64 - n)), a.lo << n};
  }
  friend constexpr U128 operator>>(U128 a, int n) noexcept {
    if (n <= 0) return a;
    if (n >= 128) return {};
    if (n >= 64) return {0, a.hi >> (n - 64)};
    return {a.hi >> n, (a.lo >> n) | (a.hi << (64 - n))};
  }

  friend constexpr bool operator==(U128, U128) noexcept = default;
  friend constexpr std::strong_ordering operator<=>(U128 a, U128 b) noexcept {
    if (auto c = a.hi <=> b.hi; c != 0) return c;
    return a.lo <=> b.lo;
  }

  constexpr bool isZero() const noexcept { return hi == 0 && lo == 0; }

  /// Bit at position `i` counted from the most significant bit
  /// (i = 0 -> bit 127). Requires 0 <= i < 128.
  constexpr bool bitFromMsb(int i) const noexcept {
    return i < 64 ? ((hi >> (63 - i)) & 1U) != 0 : ((lo >> (127 - i)) & 1U) != 0;
  }

  /// Sets bit at position `i` counted from the MSB to `value`.
  constexpr void setBitFromMsb(int i, bool value) noexcept {
    if (i < 64) {
      const std::uint64_t mask = 1ULL << (63 - i);
      hi = value ? (hi | mask) : (hi & ~mask);
    } else {
      const std::uint64_t mask = 1ULL << (127 - i);
      lo = value ? (lo | mask) : (lo & ~mask);
    }
  }

  /// A mask with the top `n` (MSB-side) bits set. n in [0, 128].
  static constexpr U128 topMask(int n) noexcept {
    if (n <= 0) return {};
    if (n >= 128) return {~0ULL, ~0ULL};
    if (n <= 64) return {~0ULL << (64 - n), 0};
    return {~0ULL, ~0ULL << (128 - n)};
  }
};

/// The splitmix64 finalizer: the one 64-bit bit-mixer used repo-wide for
/// hashing and seed derivation (workload phase seeds use the identical
/// constants — keep them in sync bit-for-bit or recorded runs change).
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hash of a 128-bit value plus an optional salt (e.g. a prefix length).
/// The single U128 hash routine — unordered containers keyed on dz bits,
/// flow-table probe placement, and anything else hashing a U128 go through
/// here instead of rolling their own multiply-xor mix.
constexpr std::size_t u128Hash(U128 v, std::uint64_t salt = 0) noexcept {
  return static_cast<std::size_t>(mix64(v.lo ^ mix64(v.hi ^ salt)));
}

/// Branchless strict less-than. operator<=> compiles to two compare+branch
/// chains; this form is pure boolean arithmetic the compiler lowers to
/// cmp/setcc (or cmov at the call site), which is what keeps a binary
/// search over packed U128 keys free of branch mispredictions.
constexpr bool u128Less(U128 a, U128 b) noexcept {
  return (a.hi < b.hi) | ((a.hi == b.hi) & (a.lo < b.lo));
}

}  // namespace pleroma::dz
