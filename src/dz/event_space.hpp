// The event space Omega (Sec 2): a multi-dimensional space with one
// dimension per attribute; events are points, subscriptions and
// advertisements are axis-aligned rectangles (one range per attribute).
// EventSpace performs the spatial indexing: dimension-interleaved recursive
// bisection mapping points to dz-expressions and rectangles to DZ sets.
// Indexing can be restricted to a subset of dimensions Omega_P (Sec 5,
// dimension selection); constraints on unindexed dimensions then surface as
// false positives, exactly as in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dz/dz_set.hpp"

namespace pleroma::dz {

using AttributeValue = std::uint32_t;

/// An event: one value per attribute of the schema.
using Event = std::vector<AttributeValue>;

/// Inclusive range of one attribute.
struct Range {
  AttributeValue lo = 0;
  AttributeValue hi = 0;

  bool contains(AttributeValue v) const noexcept { return lo <= v && v <= hi; }
  bool intersects(const Range& o) const noexcept { return lo <= o.hi && o.lo <= hi; }
  bool containsRange(const Range& o) const noexcept { return lo <= o.lo && o.hi <= hi; }
  friend bool operator==(const Range&, const Range&) = default;
};

/// Axis-aligned rectangle over the full schema: one inclusive range per
/// attribute. This is the *exact* semantics of a subscription or
/// advertisement, against which false positives are measured.
struct Rectangle {
  std::vector<Range> ranges;

  bool contains(const Event& e) const noexcept;
  bool intersects(const Rectangle& o) const noexcept;
  friend bool operator==(const Rectangle&, const Rectangle&) = default;
};

/// Parameters and operations of the spatial index.
class EventSpace {
 public:
  /// `numAttributes` dimensions, each with domain [0, 2^bitsPerDim - 1]
  /// (the paper uses up to 10 attributes with domain [0, 1023], i.e. 10
  /// bits). Initially all dimensions are indexed.
  EventSpace(int numAttributes, int bitsPerDim = 10);

  int numAttributes() const noexcept { return numAttributes_; }
  int bitsPerDim() const noexcept { return bitsPerDim_; }
  AttributeValue domainMax() const noexcept {
    return (AttributeValue{1} << bitsPerDim_) - 1;
  }

  /// Restricts indexing to the given dimensions (Omega_P), in the given
  /// interleaving order. Must be a non-empty subset of [0, numAttributes).
  void setIndexedDimensions(std::vector<int> dims);
  const std::vector<int>& indexedDimensions() const noexcept { return indexed_; }

  /// Longest meaningful dz: every indexed dimension fully resolved, capped
  /// at kMaxDzLength.
  int maxDzLength() const noexcept;

  /// Maps a point to the dz of length `length` containing it.
  DzExpression eventToDz(const Event& e, int length) const;

  /// Maps a point to the dz of maximal length (what a publisher stamps into
  /// the packet header, Sec 2).
  DzExpression eventToDz(const Event& e) const { return eventToDz(e, maxDzLength()); }

  /// The cell (sub-rectangle of Omega) identified by a dz. Unindexed
  /// dimensions span their whole domain.
  Rectangle dzToCell(const DzExpression& d) const;

  /// Decomposes a rectangle into an enclosing DZ set with members of length
  /// <= maxLength and at most maxCells members. The result always covers the
  /// rectangle (no false negatives); coarser members introduce false
  /// positives. maxCells < 1 is treated as 1.
  DzSet rectangleToDz(const Rectangle& rect, int maxLength,
                      std::size_t maxCells = 16) const;

  /// Convenience: decomposition at the space's maximum dz length.
  DzSet rectangleToDz(const Rectangle& rect) const {
    return rectangleToDz(rect, maxDzLength());
  }

  /// A rectangle spanning the entire space.
  Rectangle wholeSpace() const;

  /// Fraction of the event space a rectangle occupies, in (0, 1].
  double rectangleVolume(const Rectangle& rect) const;

  /// Analytic false-positive-rate estimate for one subscription under
  /// uniform event traffic: the fraction of the enclosing DZ decomposition
  /// not actually inside the rectangle, 1 - vol(rect)/vol(DZ). The
  /// measured FPR of a single-subscriber deployment converges to this.
  double estimatedFalsePositiveRate(const Rectangle& rect, int maxLength,
                                    std::size_t maxCells = 16) const;

 private:
  int numAttributes_;
  int bitsPerDim_;
  std::vector<int> indexed_;
};

}  // namespace pleroma::dz
