#include "dz/event_space.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <numeric>

namespace pleroma::dz {

bool Rectangle::contains(const Event& e) const noexcept {
  if (e.size() != ranges.size()) return false;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (!ranges[i].contains(e[i])) return false;
  }
  return true;
}

bool Rectangle::intersects(const Rectangle& o) const noexcept {
  if (o.ranges.size() != ranges.size()) return false;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (!ranges[i].intersects(o.ranges[i])) return false;
  }
  return true;
}

EventSpace::EventSpace(int numAttributes, int bitsPerDim)
    : numAttributes_(numAttributes), bitsPerDim_(bitsPerDim) {
  assert(numAttributes >= 1);
  assert(bitsPerDim >= 1 && bitsPerDim <= 20);
  indexed_.resize(static_cast<std::size_t>(numAttributes));
  std::iota(indexed_.begin(), indexed_.end(), 0);
}

void EventSpace::setIndexedDimensions(std::vector<int> dims) {
  assert(!dims.empty());
  for ([[maybe_unused]] int d : dims) assert(d >= 0 && d < numAttributes_);
  indexed_ = std::move(dims);
}

int EventSpace::maxDzLength() const noexcept {
  const int full = static_cast<int>(indexed_.size()) * bitsPerDim_;
  return std::min(full, kMaxDzLength);
}

DzExpression EventSpace::eventToDz(const Event& e, int length) const {
  assert(e.size() == static_cast<std::size_t>(numAttributes_));
  assert(length >= 0 && length <= maxDzLength());
  const int m = static_cast<int>(indexed_.size());
  U128 bits{};
  for (int i = 0; i < length; ++i) {
    const int dim = indexed_[static_cast<std::size_t>(i % m)];
    const int level = i / m;
    const bool bit =
        ((e[static_cast<std::size_t>(dim)] >> (bitsPerDim_ - 1 - level)) & 1U) != 0;
    bits.setBitFromMsb(i, bit);
  }
  return DzExpression(bits, length);
}

Rectangle EventSpace::dzToCell(const DzExpression& d) const {
  Rectangle cell = wholeSpace();
  const int m = static_cast<int>(indexed_.size());
  for (int i = 0; i < d.length(); ++i) {
    const int dim = indexed_[static_cast<std::size_t>(i % m)];
    Range& r = cell.ranges[static_cast<std::size_t>(dim)];
    const AttributeValue mid = r.lo + (r.hi - r.lo) / 2;
    if (d.bit(i)) {
      r.lo = mid + 1;
    } else {
      r.hi = mid;
    }
  }
  return cell;
}

namespace {

/// Ranges of the current trie cell over the *indexed* dimensions only.
struct IndexedCell {
  std::vector<Range> ranges;  // parallel to EventSpace::indexedDimensions()
};

enum class CellFit { kInside, kDisjoint, kPartial };

CellFit classify(const IndexedCell& cell, const std::vector<Range>& target) {
  bool inside = true;
  for (std::size_t i = 0; i < cell.ranges.size(); ++i) {
    if (!cell.ranges[i].intersects(target[i])) return CellFit::kDisjoint;
    if (!target[i].containsRange(cell.ranges[i])) inside = false;
  }
  return inside ? CellFit::kInside : CellFit::kPartial;
}

}  // namespace

DzSet EventSpace::rectangleToDz(const Rectangle& rect, int maxLength,
                                std::size_t maxCells) const {
  assert(rect.ranges.size() == static_cast<std::size_t>(numAttributes_));
  assert(maxLength >= 0 && maxLength <= maxDzLength());
  if (maxCells < 1) maxCells = 1;

  // Project the target rectangle onto the indexed dimensions; constraints on
  // unindexed dimensions cannot be expressed in the dz and are dropped
  // (over-approximation -> false positives only).
  std::vector<Range> target;
  target.reserve(indexed_.size());
  for (int dim : indexed_) target.push_back(rect.ranges[static_cast<std::size_t>(dim)]);

  const int m = static_cast<int>(indexed_.size());

  // Level-order (BFS) refinement: partially covered cells are refined
  // coarsest-first, so the cell budget is spent evenly along the whole
  // rectangle boundary instead of drilling into one corner. Refining one
  // cell grows the eventual output by at most one, so stopping once
  // |emitted| + |frontier| reaches the budget keeps the result within
  // maxCells while remaining an enclosing approximation (coarse partial
  // cells are emitted as-is — false positives only, never negatives).
  std::vector<DzExpression> emitted;
  struct Pending {
    DzExpression d;
    IndexedCell cell;
  };
  std::deque<Pending> frontier;

  IndexedCell whole;
  whole.ranges.assign(indexed_.size(), Range{0, domainMax()});
  switch (classify(whole, target)) {
    case CellFit::kDisjoint:
      return {};
    case CellFit::kInside:
      return DzSet{DzExpression{}};
    case CellFit::kPartial:
      frontier.push_back(Pending{DzExpression{}, std::move(whole)});
      break;
  }

  while (!frontier.empty()) {
    if (emitted.size() + frontier.size() >= maxCells ||
        frontier.front().d.length() >= maxLength) {
      emitted.push_back(frontier.front().d);
      frontier.pop_front();
      continue;
    }
    Pending cur = std::move(frontier.front());
    frontier.pop_front();
    const int axis = cur.d.length() % m;
    const Range parent = cur.cell.ranges[static_cast<std::size_t>(axis)];
    const AttributeValue mid = parent.lo + (parent.hi - parent.lo) / 2;
    for (const bool bit : {false, true}) {
      Pending child{cur.d.child(bit), cur.cell};
      child.cell.ranges[static_cast<std::size_t>(axis)] =
          bit ? Range{mid + 1, parent.hi} : Range{parent.lo, mid};
      switch (classify(child.cell, target)) {
        case CellFit::kDisjoint:
          break;
        case CellFit::kInside:
          emitted.push_back(child.d);
          break;
        case CellFit::kPartial:
          frontier.push_back(std::move(child));
          break;
      }
    }
  }

  DzSet out;
  for (const DzExpression& d : emitted) out.insert(d);
  return out;
}

double EventSpace::rectangleVolume(const Rectangle& rect) const {
  assert(rect.ranges.size() == static_cast<std::size_t>(numAttributes_));
  const double domain = static_cast<double>(domainMax()) + 1.0;
  double volume = 1.0;
  // Only indexed dimensions participate: the dz decomposition cannot see
  // the others, so volumes are compared within the indexed subspace.
  for (const int dim : indexed_) {
    const Range& r = rect.ranges[static_cast<std::size_t>(dim)];
    volume *= (static_cast<double>(r.hi) - static_cast<double>(r.lo) + 1.0) / domain;
  }
  return volume;
}

double EventSpace::estimatedFalsePositiveRate(const Rectangle& rect,
                                              int maxLength,
                                              std::size_t maxCells) const {
  const DzSet dzs = rectangleToDz(rect, maxLength, maxCells);
  const double cover = dzs.volume();
  if (cover <= 0.0) return 0.0;
  const double exact = rectangleVolume(rect);
  return std::max(0.0, 1.0 - exact / cover);
}

Rectangle EventSpace::wholeSpace() const {
  Rectangle r;
  r.ranges.assign(static_cast<std::size_t>(numAttributes_), Range{0, domainMax()});
  return r;
}

}  // namespace pleroma::dz
