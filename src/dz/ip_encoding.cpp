#include "dz/ip_encoding.hpp"

#include <array>
#include <cstdio>

namespace pleroma::dz {

std::string Ipv6Address::toString() const {
  std::array<std::uint16_t, 8> groups{};
  for (int i = 0; i < 8; ++i) {
    const U128 shifted = value >> (112 - 16 * i);
    groups[static_cast<std::size_t>(i)] = static_cast<std::uint16_t>(shifted.lo & 0xffff);
  }
  std::string out;
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    std::snprintf(buf, sizeof buf, "%04x", groups[static_cast<std::size_t>(i)]);
    if (i > 0) out.push_back(':');
    out += buf;
  }
  return out;
}

std::string Ipv6Prefix::toString() const {
  return address.toString() + "/" + std::to_string(length);
}

Ipv6Address dzToAddress(const DzExpression& d) noexcept {
  const U128 prefix = U128{0, kMulticastPrefix} << 112;
  return Ipv6Address{prefix | (d.bits() >> 16)};
}

Ipv6Prefix dzToPrefix(const DzExpression& d) noexcept {
  return Ipv6Prefix{dzToAddress(d), 16 + d.length()};
}

std::optional<DzExpression> prefixToDz(const Ipv6Prefix& p) noexcept {
  if (p.length < 16 || p.length > 16 + kMaxDzLength) return std::nullopt;
  if (!isPleromaAddress(p.address)) return std::nullopt;
  return DzExpression(p.address.value << 16, p.length - 16);
}

std::optional<DzExpression> addressToDz(Ipv6Address addr, int dzLength) noexcept {
  if (dzLength < 0 || dzLength > kMaxDzLength) return std::nullopt;
  if (!isPleromaAddress(addr)) return std::nullopt;
  return DzExpression(addr.value << 16, dzLength);
}

}  // namespace pleroma::dz
