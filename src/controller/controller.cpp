#include "controller/controller.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <utility>

#include "net/packet.hpp"

namespace pleroma::ctrl {

Scope Scope::wholeTopology(const net::Topology& topology) {
  Scope s;
  s.switches = topology.switches();
  for (net::LinkId l = 0; l < topology.linkCount(); ++l) {
    const net::Link& link = topology.link(l);
    if (topology.isSwitch(link.a.node) && topology.isSwitch(link.b.node)) {
      s.internalLinks.push_back(l);
    }
  }
  return s;
}

Controller::Controller(dz::EventSpace space, net::Network& network, Scope scope,
                       ControllerConfig config)
    : space_(std::move(space)),
      network_(network),
      scope_(std::move(scope)),
      config_(config),
      channel_(network_, config.flowModLatency),
      installer_(channel_) {
  if (config_.tcamBudget != 0) installer_.setTcamBudget(config_.tcamBudget);
}

int Controller::effectiveMaxDzLength() const noexcept {
  return std::min(config_.maxDzLength, space_.maxDzLength());
}

dz::DzSet Controller::decompose(const dz::Rectangle& rect) const {
  return space_.rectangleToDz(rect, effectiveMaxDzLength(),
                              config_.maxCellsPerRequest);
}

Endpoint Controller::endpointForHost(net::NodeId host) const {
  const auto att = network_.topology().hostAttachment(host);
  return Endpoint{att.switchNode, att.switchPort, net::hostAddress(host), host};
}

// ---- registration ------------------------------------------------------

PublisherId Controller::advertise(net::NodeId host, const dz::Rectangle& rect) {
  return advertiseEndpoint(endpointForHost(host), decompose(rect), rect);
}

PublisherId Controller::advertiseEndpoint(const Endpoint& endpoint,
                                          const dz::DzSet& dzSet,
                                          std::optional<dz::Rectangle> rect) {
  OpStats snapshot = beginOp("op.advertise");
  const PublisherId id = nextPublisher_++;
  advertisements_.emplace(id, AdvRecord{endpoint, dzSet, std::move(rect)});
  {
    FlowInstaller::BatchScope batchScope(installer_);
    runAdvertise(id);
    mergeTreesIfNeeded();
  }
  endOp(snapshot);
  if (intentObserver_) {
    const AdvRecord& record = advertisements_.at(id);
    IntentCommand cmd;
    cmd.kind = IntentCommand::Kind::kAdvertise;
    cmd.id = id;
    cmd.endpoint = record.endpoint;
    cmd.dzSet = record.dzSet;
    cmd.rect = record.rect;
    logIntent(std::move(cmd));
  }
  return id;
}

SubscriptionId Controller::subscribe(net::NodeId host, const dz::Rectangle& rect) {
  return subscribeEndpoint(endpointForHost(host), decompose(rect), rect);
}

SubscriptionId Controller::subscribeEndpoint(const Endpoint& endpoint,
                                             const dz::DzSet& dzSet,
                                             std::optional<dz::Rectangle> rect) {
  OpStats snapshot = beginOp("op.subscribe");
  const SubscriptionId id = nextSubscription_++;
  subscriptions_.emplace(id, SubRecord{endpoint, dzSet, std::move(rect)});
  if (config_.aggregateSubscriptions) {
    EndpointAggregate& agg = aggregateFor(endpoint);
    ++agg.liveSubs;
    subAggregate_.emplace(id, &agg);
    dz::AggregationDelta delta = agg.index.add(dzSet);
    if (delta.empty()) {
      // Covered subscription: the endpoint's installed flows already
      // forward a superset of this interest — zero flow mods.
      ++coveredSubscribes_;
    } else {
      FlowInstaller::BatchScope batchScope(installer_);
      applyAggregateDelta(agg, delta);
    }
  } else {
    for (const dz::DzExpression& d : dzSet) subscriptionIndex_.insert(d, id);
    {
      FlowInstaller::BatchScope batchScope(installer_);
      runSubscribe(id);
    }
  }
  endOp(snapshot);
  if (intentObserver_) {
    const SubRecord& record = subscriptions_.at(id);
    IntentCommand cmd;
    cmd.kind = IntentCommand::Kind::kSubscribe;
    cmd.id = id;
    cmd.endpoint = record.endpoint;
    cmd.dzSet = record.dzSet;
    cmd.rect = record.rect;
    logIntent(std::move(cmd));
  }
  return id;
}

void Controller::unsubscribe(SubscriptionId id) {
  const auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return;
  OpStats snapshot = beginOp("op.unsubscribe");
  if (config_.aggregateSubscriptions) {
    EndpointAggregate& agg = *subAggregate_.at(id);
    // Incremental uncover: only the representatives actually released by
    // this member's refcounts leave the switches; a still-covered interest
    // costs zero flow mods.
    const dz::AggregationDelta delta = agg.index.remove(it->second.dzSet);
    --agg.liveSubs;
    if (!delta.empty()) {
      FlowInstaller::BatchScope batchScope(installer_);
      applyAggregateDelta(agg, delta);
    }
    subAggregate_.erase(id);
    subscriptions_.erase(it);
  } else {
    {
      FlowInstaller::BatchScope batchScope(installer_);
      removePaths(registry_.pathsOfSubscription(id));
    }
    for (const dz::DzExpression& d : it->second.dzSet) {
      subscriptionIndex_.erase(d, id);
    }
    subscriptions_.erase(it);
  }
  endOp(snapshot);
  if (intentObserver_) {
    IntentCommand cmd;
    cmd.kind = IntentCommand::Kind::kUnsubscribe;
    cmd.id = id;
    logIntent(std::move(cmd));
  }
}

void Controller::unadvertise(PublisherId id) {
  const auto it = advertisements_.find(id);
  if (it == advertisements_.end()) return;
  OpStats snapshot = beginOp("op.unadvertise");
  {
    FlowInstaller::BatchScope batchScope(installer_);
    removePaths(registry_.pathsOfPublisher(id));
  }
  for (auto& tree : trees_) tree->removePublisher(id);
  // Trees left without any publisher carry no traffic; retire them so their
  // subspaces become available to future advertisements.
  for (auto& tree : trees_) {
    if (tree->publishers().empty()) retireTree(std::move(tree));
  }
  std::erase_if(trees_, [](const std::unique_ptr<SpanningTree>& t) {
    return t == nullptr;
  });
  advertisements_.erase(it);
  endOp(snapshot);
  if (intentObserver_) {
    IntentCommand cmd;
    cmd.kind = IntentCommand::Kind::kUnadvertise;
    cmd.id = id;
    logIntent(std::move(cmd));
  }
}

// ---- Algorithm 1 -------------------------------------------------------

void Controller::runAdvertise(PublisherId id) {
  const AdvRecord& adv = advertisements_.at(id);
  for (const dz::DzExpression& dzi : adv.dzSet) {
    const dz::DzSet dziSet(dzi);
    dz::DzSet covered;
    // Trees whose DZ overlaps dz_i (lines 4-9).
    for (auto& tree : trees_) {
      const dz::DzSet overlap = tree->dzSet().intersect(dziSet);
      if (overlap.empty()) continue;
      tree->addPublisher(id, overlap);
      ++lastOp_.treesJoined;
      if (obsTreesJoined_ != nullptr) obsTreesJoined_->inc();
      addFlowMultSub(id, overlap, *tree);
      covered.unionWith(overlap);
    }
    // Subspaces of dz_i not carried by any tree start a new one rooted at
    // the publisher (lines 10-15).
    const dz::DzSet uncovered = dziSet.subtract(covered);
    if (!uncovered.empty()) {
      trees_.push_back(acquireTree(nextTreeId_++, uncovered,
                                   adv.endpoint.attachSwitch,
                                   activeInternalLinks()));
      ++lastOp_.treesCreated;
      if (obsTreesCreated_ != nullptr) obsTreesCreated_->inc();
      SpanningTree& tn = *trees_.back();
      tn.addPublisher(id, uncovered);
      addFlowMultSub(id, uncovered, tn);
    }
  }
}

void Controller::runSubscribe(SubscriptionId id) {
  const SubRecord& sub = subscriptions_.at(id);
  for (const dz::DzExpression& dzi : sub.dzSet) {
    const dz::DzSet dziSet(dzi);
    for (auto& tree : trees_) {
      if (!tree->dzSet().overlaps(dzi)) continue;
      // Publishers of the tree with overlapping DZ^t(p) (lines 22-25).
      for (const auto& [pub, pubOverlap] : tree->publishers()) {
        const dz::DzSet overlapWithPub = dziSet.intersect(pubOverlap);
        if (overlapWithPub.empty()) continue;
        installPathRecord(pub, id, *tree, overlapWithPub);
      }
    }
    // No overlapping tree: the subscription is simply stored (line 19's
    // negative branch); it is re-examined by addFlowMultSub whenever an
    // advertisement extends or creates trees.
  }
}

void Controller::addFlowMultSub(PublisherId p, const dz::DzSet& dzSet,
                                SpanningTree& t) {
  // Candidate subscriptions via the spatial index: only those with a dz
  // member overlapping some advertised member are examined.
  std::set<SubscriptionId> candidates;
  for (const dz::DzExpression& d : dzSet) {
    subscriptionIndex_.forEachOverlapping(
        d, [&](const dz::DzExpression&, const SubscriptionId& id) {
          candidates.insert(id);
        });
  }
  for (const SubscriptionId subId : candidates) {
    const dz::DzSet overlap = dzSet.intersect(interestDz(subId));
    if (overlap.empty()) continue;
    installPathRecord(p, subId, t, overlap);
  }
}

void Controller::installPathRecord(PublisherId p, SubscriptionId s,
                                   SpanningTree& t, const dz::DzSet& overlap) {
  if (registry_.alreadyCovered(p, s, t.id(), overlap)) return;
  const AdvRecord& adv = advertisements_.at(p);
  const Endpoint& subEndpoint = interestEndpoint(s);
  // A subscriber is not connected to itself: identical endpoints would
  // yield a route reflecting packets out of their ingress port.
  if (adv.endpoint == subEndpoint) return;
  std::vector<RouteHop> hops =
      t.route(adv.endpoint, subEndpoint, network_.topology());
  if (hops.empty()) return;  // endpoints not connected within this partition
  installer_.installPath(overlap, hops);
  registry_.add(InstalledPath{-1, p, s, t.id(), overlap, std::move(hops)});
}

void Controller::removePaths(const std::vector<PathId>& ids) {
  if (ids.empty()) return;
  const std::vector<net::NodeId> affected = registry_.switchesOf(ids);
  for (const PathId id : ids) registry_.remove(id);
  for (const net::NodeId sw : affected) {
    installer_.reconcileSwitch(sw, registry_.requiredFlows(sw));
  }
}

// ---- tree pooling ----------------------------------------------------------

namespace {
/// Retired trees kept around for reuse; beyond this the pool drops them.
constexpr std::size_t kTreePoolCap = 64;
}  // namespace

std::unique_ptr<SpanningTree> Controller::acquireTree(
    int id, dz::DzSet dzSet, net::NodeId root,
    const std::vector<net::LinkId>& allowedLinks) {
  if (!treePool_.empty()) {
    std::unique_ptr<SpanningTree> t = std::move(treePool_.back());
    treePool_.pop_back();
    t->rebuild(id, std::move(dzSet), root, network_.topology(), allowedLinks);
    return t;
  }
  return std::make_unique<SpanningTree>(id, std::move(dzSet), root,
                                        network_.topology(), allowedLinks);
}

void Controller::retireTree(std::unique_ptr<SpanningTree> tree) {
  if (tree == nullptr) return;
  if (treePool_.size() < kTreePoolCap) treePool_.push_back(std::move(tree));
}

// ---- subscription aggregation (tentpole) ----------------------------------

Controller::EndpointAggregate& Controller::aggregateFor(const Endpoint& endpoint) {
  const EndpointKey key = endpointKey(endpoint);
  auto it = aggregates_.find(key);
  if (it == aggregates_.end()) {
    it = aggregates_.try_emplace(key).first;
    it->second.endpoint = endpoint;
    // Ids from the negative range, assigned in endpoint-first-seen order —
    // replaying the same subscribe sequence (standby promotion) reproduces
    // the identical assignment.
    it->second.aggId = nextAggregateId_--;
    aggById_.emplace(it->second.aggId, &it->second);
  }
  return it->second;
}

void Controller::applyAggregateDelta(EndpointAggregate& agg,
                                     const dz::AggregationDelta& delta) {
  // The spatial index tracks the aggregate's representatives, keyed by the
  // endpoint's aggregate id; deltas are exact piece identities, so erase
  // hits precisely what a prior insert added.
  for (const dz::DzExpression& d : delta.removed) {
    subscriptionIndex_.erase(d, agg.aggId);
  }
  for (const dz::DzExpression& d : delta.added) {
    subscriptionIndex_.insert(d, agg.aggId);
  }

  // Shrink (or drop) installed paths carrying the removed pieces. Hops are
  // unchanged by a shrink, so the path is edited in place; switches whose
  // flows referenced the removed subspaces are reconciled below.
  std::vector<net::NodeId> affected;
  if (!delta.removed.empty()) {
    dz::DzSet removedSet;
    for (const dz::DzExpression& d : delta.removed) removedSet.insert(d);
    for (const PathId id : registry_.pathsOfSubscription(agg.aggId)) {
      const InstalledPath& p = registry_.at(id);
      dz::DzSet shrunk = p.dz.subtract(removedSet);
      if (shrunk == p.dz) continue;
      for (const RouteHop& hop : p.hops) affected.push_back(hop.switchNode);
      if (shrunk.empty()) {
        registry_.remove(id);
      } else {
        registry_.setDz(id, std::move(shrunk));
      }
    }
  }

  // Install the added pieces — runSubscribe over the aggregate delta
  // instead of one rule-set per subscription.
  if (!delta.added.empty()) {
    dz::DzSet addedSet;
    for (const dz::DzExpression& d : delta.added) addedSet.insert(d);
    for (auto& tree : trees_) {
      const dz::DzSet treeOverlap = tree->dzSet().intersect(addedSet);
      if (treeOverlap.empty()) continue;
      for (const auto& [pub, pubOverlap] : tree->publishers()) {
        const dz::DzSet overlap = treeOverlap.intersect(pubOverlap);
        if (overlap.empty()) continue;
        installPathRecord(pub, agg.aggId, *tree, overlap);
      }
    }
  }

  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()), affected.end());
  for (const net::NodeId sw : affected) {
    installer_.reconcileSwitch(sw, registry_.requiredFlows(sw));
  }
}

const dz::DzSet& Controller::interestDz(std::int64_t sid) const {
  if (isAggregateId(sid)) return aggById_.at(sid)->index.aggregate();
  return subscriptions_.at(sid).dzSet;
}

const Endpoint& Controller::interestEndpoint(std::int64_t sid) const {
  if (isAggregateId(sid)) return aggById_.at(sid)->endpoint;
  return subscriptions_.at(sid).endpoint;
}

bool Controller::interestActive(std::int64_t sid) const {
  if (isAggregateId(sid)) {
    const auto it = aggById_.find(sid);
    return it != aggById_.end() && !it->second->index.aggregate().empty();
  }
  return subscriptions_.contains(sid);
}

std::size_t Controller::aggregateRepresentatives() const noexcept {
  std::size_t n = 0;
  for (const auto& [key, agg] : aggregates_) n += agg.index.representativeCount();
  return n;
}

std::size_t Controller::flowStateBytes() const noexcept {
  std::size_t bytes = registry_.stateBytes();
  bytes += installer_.stateBytes();
  for (const auto& [key, agg] : aggregates_) {
    bytes += sizeof(EndpointAggregate) + agg.index.stateBytes();
  }
  return bytes;
}

// ---- tree merging (Sec 3.2) ---------------------------------------------

void Controller::mergeTreesIfNeeded() {
  while (trees_.size() > config_.maxTrees && trees_.size() >= 2) {
    // Merge the two trees with the fewest embedded paths: cheapest rebuild.
    std::size_t a = 0, b = 1;
    auto cost = [&](std::size_t i) {
      return registry_.pathsOfTree(trees_[i]->id()).size();
    };
    if (cost(a) > cost(b)) std::swap(a, b);
    for (std::size_t i = 2; i < trees_.size(); ++i) {
      const std::size_t c = cost(i);
      if (c < cost(a)) {
        b = a;
        a = i;
      } else if (c < cost(b)) {
        b = i;
      }
    }
    mergeTreePair(a, b);
  }
}

void Controller::mergeTreePair(std::size_t idxA, std::size_t idxB) {
  assert(idxA != idxB);
  MutationScope mutationScope(*this);
  if (obsTreeMerges_ != nullptr) obsTreeMerges_->inc();
  SpanningTree& ta = *trees_[idxA];
  SpanningTree& tb = *trees_[idxB];

  // Collect and detach both trees' paths.
  std::vector<PathId> pathIds = registry_.pathsOfTree(ta.id());
  const std::vector<PathId> idsB = registry_.pathsOfTree(tb.id());
  const std::size_t pathCountA = pathIds.size();
  const std::size_t pathCountB = idsB.size();
  pathIds.insert(pathIds.end(), idsB.begin(), idsB.end());
  struct OldPath {
    PublisherId pub;
    SubscriptionId sub;
    dz::DzSet dz;
  };
  std::vector<OldPath> oldPaths;
  oldPaths.reserve(pathIds.size());
  for (const PathId id : pathIds) {
    const InstalledPath& p = registry_.at(id);
    oldPaths.push_back(OldPath{p.publisher, p.subscription, p.dz});
  }
  std::vector<net::NodeId> affected = registry_.switchesOf(pathIds);
  for (const PathId id : pathIds) registry_.remove(id);

  // The merged DZ: exact union (canonicalisation already coarsens complete
  // sibling sets, e.g. {0000,0010} ∪ {0001,0011} = {00}), optionally
  // coarsened further while disjointness with other trees holds.
  dz::DzSet mergedDz = ta.dzSet();
  mergedDz.unionWith(tb.dzSet());

  // Root at the tree that carried more paths: fewer routes move.
  const net::NodeId root = pathCountA >= pathCountB ? ta.root() : tb.root();

  std::map<PublisherId, dz::DzSet> publishers(ta.publishers().begin(),
                                              ta.publishers().end());
  for (const auto& [pub, overlap] : tb.publishers()) {
    publishers[pub].unionWith(overlap);
  }

  const int removeIdA = ta.id();
  const int removeIdB = tb.id();
  for (auto& tree : trees_) {
    if (tree->id() == removeIdA || tree->id() == removeIdB) {
      retireTree(std::move(tree));
    }
  }
  std::erase_if(trees_, [](const std::unique_ptr<SpanningTree>& t) {
    return t == nullptr;
  });

  if (config_.coarsenOnMerge) mergedDz = coarsen(std::move(mergedDz), nullptr);

  trees_.push_back(acquireTree(nextTreeId_++, std::move(mergedDz), root,
                               activeInternalLinks()));
  SpanningTree& tm = *trees_.back();
  for (const auto& [pub, overlap] : publishers) tm.addPublisher(pub, overlap);

  // Re-embed the collected paths along the merged tree.
  for (const OldPath& old : oldPaths) {
    if (!advertisements_.contains(old.pub) || !interestActive(old.sub)) {
      continue;
    }
    installPathRecord(old.pub, old.sub, tm, old.dz);
  }
  // Repair switches that the old trees touched but the new one might not.
  for (const net::NodeId sw : affected) {
    installer_.reconcileSwitch(sw, registry_.requiredFlows(sw));
  }
}

namespace {
/// Locates a tree by id in the controller's tree list.
auto findTree(std::vector<std::unique_ptr<SpanningTree>>& trees, int treeId) {
  return std::find_if(
      trees.begin(), trees.end(),
      [&](const std::unique_ptr<SpanningTree>& t) { return t->id() == treeId; });
}
}  // namespace

bool Controller::rerootTree(int treeId, net::NodeId newRoot,
                            const std::vector<net::SimTime>* linkCosts) {
  if (findTree(trees_, treeId) == trees_.end()) return false;
  if (std::find(scope_.switches.begin(), scope_.switches.end(), newRoot) ==
      scope_.switches.end()) {
    return false;
  }
  if (obsReroots_ != nullptr) obsReroots_->inc();
  linkCostOverride_ = linkCosts;
  rebuildTreeAt(treeId, newRoot);
  linkCostOverride_ = nullptr;
  return true;
}

// ---- failure handling (link down/up) ---------------------------------------

std::vector<net::LinkId> Controller::activeInternalLinks() const {
  if (downLinks_.empty() && downSwitches_.empty()) return scope_.internalLinks;
  std::vector<net::LinkId> out;
  out.reserve(scope_.internalLinks.size());
  for (const net::LinkId l : scope_.internalLinks) {
    if (std::find(downLinks_.begin(), downLinks_.end(), l) != downLinks_.end()) {
      continue;
    }
    const net::Link& link = network_.topology().link(l);
    if (!switchActive(link.a.node) || !switchActive(link.b.node)) continue;
    out.push_back(l);
  }
  return out;
}

bool Controller::switchActive(net::NodeId switchNode) const {
  return std::find(downSwitches_.begin(), downSwitches_.end(), switchNode) ==
         downSwitches_.end();
}

void Controller::onLinkDown(net::LinkId link) {
  FlowInstaller::BatchScope batchScope(installer_);
  if (std::find(downLinks_.begin(), downLinks_.end(), link) != downLinks_.end()) {
    return;
  }
  downLinks_.push_back(link);
  // Rebuild only the trees whose edges traverse the failed link.
  std::vector<std::pair<int, net::NodeId>> affectedTrees;
  for (const auto& tree : trees_) {
    const auto edges = tree->edges();
    if (std::find(edges.begin(), edges.end(), link) != edges.end()) {
      affectedTrees.emplace_back(tree->id(), tree->root());
    }
  }
  rebuildTrees(affectedTrees);
  if (intentObserver_) {
    IntentCommand cmd;
    cmd.kind = IntentCommand::Kind::kLinkDown;
    cmd.link = link;
    logIntent(std::move(cmd));
  }
}

void Controller::onLinkUp(net::LinkId link) {
  FlowInstaller::BatchScope batchScope(installer_);
  const auto it = std::find(downLinks_.begin(), downLinks_.end(), link);
  if (it == downLinks_.end()) return;
  downLinks_.erase(it);
  // Rebuild every tree: routes degraded (or dropped) during the outage
  // return to shortest paths and unreachable endpoints reconnect.
  std::vector<std::pair<int, net::NodeId>> ids;
  ids.reserve(trees_.size());
  for (const auto& tree : trees_) ids.emplace_back(tree->id(), tree->root());
  rebuildTrees(ids);
  if (intentObserver_) {
    IntentCommand cmd;
    cmd.kind = IntentCommand::Kind::kLinkUp;
    cmd.link = link;
    logIntent(std::move(cmd));
  }
}

// ---- failure handling (switch node down/up) --------------------------------

void Controller::onSwitchDown(net::NodeId switchNode) {
  FlowInstaller::BatchScope batchScope(installer_);
  if (!switchActive(switchNode)) return;
  downSwitches_.push_back(switchNode);
  // The control session is gone and the node's TCAM state with it; keeping
  // a mirror (or sending mods) for the dead switch would be fiction.
  channel_.setSwitchConnected(switchNode, false);
  installer_.forgetSwitch(switchNode);

  // Rebuild every tree rooted at the dead switch or using an incident
  // link; the rebuild routes over active links only, so the dead switch is
  // evicted from all forwarding state.
  std::vector<std::pair<int, net::NodeId>> affected;
  for (const auto& tree : trees_) {
    bool hit = tree->root() == switchNode;
    if (!hit) {
      for (const net::LinkId l : tree->edges()) {
        const net::Link& link = network_.topology().link(l);
        if (link.a.node == switchNode || link.b.node == switchNode) {
          hit = true;
          break;
        }
      }
    }
    if (hit) affected.emplace_back(tree->id(), pickActiveRoot(*tree));
  }
  rebuildTrees(affected);
  if (intentObserver_) {
    IntentCommand cmd;
    cmd.kind = IntentCommand::Kind::kSwitchDown;
    cmd.node = switchNode;
    logIntent(std::move(cmd));
  }
}

void Controller::onSwitchUp(net::NodeId switchNode) {
  FlowInstaller::BatchScope batchScope(installer_);
  const auto it =
      std::find(downSwitches_.begin(), downSwitches_.end(), switchNode);
  if (it == downSwitches_.end()) return;
  downSwitches_.erase(it);
  channel_.setSwitchConnected(switchNode, true);
  // The reconnecting switch arrives with an empty TCAM: restart its mirror
  // empty so the rebuild below re-issues every needed flow as an add.
  installer_.forgetSwitch(switchNode);

  // Rebuild every tree: routes degraded (or dropped) during the outage
  // return to shortest paths and endpoints behind the failed switch
  // reconnect — no re-subscription needed.
  std::vector<std::pair<int, net::NodeId>> ids;
  ids.reserve(trees_.size());
  for (const auto& tree : trees_) {
    ids.emplace_back(tree->id(), pickActiveRoot(*tree));
  }
  rebuildTrees(ids);
  // Catch-all resync from registered intent for anything the rebuilds did
  // not touch on this switch.
  installer_.reconcileSwitch(switchNode, registry_.requiredFlows(switchNode));
  if (intentObserver_) {
    IntentCommand cmd;
    cmd.kind = IntentCommand::Kind::kSwitchUp;
    cmd.node = switchNode;
    logIntent(std::move(cmd));
  }
}

net::NodeId Controller::pickActiveRoot(const SpanningTree& tree) const {
  if (switchActive(tree.root())) return tree.root();
  for (const auto& [pub, overlap] : tree.publishers()) {
    const auto it = advertisements_.find(pub);
    if (it != advertisements_.end() &&
        switchActive(it->second.endpoint.attachSwitch)) {
      return it->second.endpoint.attachSwitch;
    }
  }
  for (const net::NodeId sw : scope_.switches) {
    if (switchActive(sw)) return sw;
  }
  return tree.root();  // no active switch left: keep the old root
}

void Controller::rebuildTree(int treeId) {
  const auto it = findTree(trees_, treeId);
  if (it == trees_.end()) return;
  rebuildTreeAt(treeId, (*it)->root());
}

void Controller::rebuildTreeAt(int treeId, net::NodeId root) {
  rebuildTrees({{treeId, root}});
}

void Controller::rebuildTrees(
    const std::vector<std::pair<int, net::NodeId>>& idRoots) {
  if (idRoots.empty()) return;
  // Plan + commit rewrite trees/registry/mirror as one batch; hold off any
  // Reconciler audit pass until the batch has fully committed.
  MutationScope mutationScope(*this);

  // Plan of one tree's rebuild: everything derivable without mutating
  // controller state. The fresh tree is constructed and its routes derived
  // here; installs and registry updates wait for the commit phase.
  struct PlannedPath {
    PublisherId pub;
    SubscriptionId sub;
    dz::DzSet overlap;
    std::vector<RouteHop> hops;
  };
  struct TreePlan {
    int oldId = -1;
    int newId = -1;
    net::NodeId root = net::kInvalidNode;
    std::vector<PathId> oldPaths;
    std::vector<net::NodeId> affected;
    std::unique_ptr<SpanningTree> fresh;
    std::vector<PlannedPath> paths;
  };

  // Collect plans in list order, pre-assigning the fresh tree ids so the
  // id sequence matches a one-by-one rebuild exactly.
  std::vector<TreePlan> plans;
  plans.reserve(idRoots.size());
  const std::vector<net::LinkId> activeLinks = activeInternalLinks();
  for (const auto& [treeId, root] : idRoots) {
    if (findTree(trees_, treeId) == trees_.end()) continue;
    if (obsTreeRebuilds_ != nullptr) obsTreeRebuilds_->inc();
    TreePlan plan;
    plan.oldId = treeId;
    plan.newId = nextTreeId_++;
    plan.root = root;
    // Pool pops mutate treePool_ and must stay out of the concurrent plan
    // phase: hand each plan its recycled tree (if any) here, sequentially.
    if (!treePool_.empty()) {
      plan.fresh = std::move(treePool_.back());
      treePool_.pop_back();
    }
    plans.push_back(std::move(plan));
  }

  // Plan phase — safe to run concurrently: each task reads only its own
  // (distinct) old tree, the topology, the active-link snapshot, the
  // registration records and the path registry, none of which change until
  // the commit phase below; all writes go to the task's own TreePlan slot.
  auto planOne = [&](std::size_t i) {
    TreePlan& plan = plans[i];
    const auto it = findTree(trees_, plan.oldId);
    const SpanningTree& old = **it;
    // Detached paths; routes are re-derived from the registered
    // advertisements and subscriptions (not replayed from the registry), so
    // paths that were dropped while endpoints were unreachable heal here.
    plan.oldPaths = registry_.pathsOfTree(plan.oldId);
    plan.affected = registry_.switchesOf(plan.oldPaths);
    if (plan.fresh != nullptr) {
      plan.fresh->rebuild(plan.newId, old.dzSet(), plan.root,
                          network_.topology(), activeLinks,
                          linkCostOverride_);
    } else {
      plan.fresh = std::make_unique<SpanningTree>(
          plan.newId, old.dzSet(), plan.root, network_.topology(),
          activeLinks, linkCostOverride_);
    }
    for (const auto& [pub, overlap] : old.publishers()) {
      if (!advertisements_.contains(pub)) continue;
      plan.fresh->addPublisher(pub, overlap);
      // addFlowMultSub, minus the side effects: candidate subscriptions via
      // the spatial index, then route derivation per overlapping pair.
      std::set<SubscriptionId> candidates;
      for (const dz::DzExpression& d : overlap) {
        subscriptionIndex_.forEachOverlapping(
            d, [&](const dz::DzExpression&, const SubscriptionId& id) {
              candidates.insert(id);
            });
      }
      const AdvRecord& adv = advertisements_.at(pub);
      for (const SubscriptionId subId : candidates) {
        dz::DzSet pairDz = overlap.intersect(interestDz(subId));
        if (pairDz.empty()) continue;
        const Endpoint& subEndpoint = interestEndpoint(subId);
        if (adv.endpoint == subEndpoint) continue;
        std::vector<RouteHop> hops =
            plan.fresh->route(adv.endpoint, subEndpoint, network_.topology());
        if (hops.empty()) continue;  // not connected within this partition
        plan.paths.push_back(
            PlannedPath{pub, subId, std::move(pairDz), std::move(hops)});
      }
    }
  };
  if (pool_ != nullptr) {
    pool_->parallelFor(plans.size(), planOne);
  } else {
    for (std::size_t i = 0; i < plans.size(); ++i) planOne(i);
  }

  // Commit phase — sequential, in list order, replaying exactly what the
  // one-by-one rebuild loop would do to the registry, the tree list and the
  // installer mirror.
  for (TreePlan& plan : plans) {
    for (const PathId id : plan.oldPaths) registry_.remove(id);
    const auto it = findTree(trees_, plan.oldId);
    retireTree(std::move(*it));
    trees_.erase(it);
    trees_.push_back(std::move(plan.fresh));
    SpanningTree& fresh = *trees_.back();
    for (PlannedPath& pp : plan.paths) {
      if (registry_.alreadyCovered(pp.pub, pp.sub, fresh.id(), pp.overlap)) {
        continue;
      }
      installer_.installPath(pp.overlap, pp.hops);
      registry_.add(InstalledPath{-1, pp.pub, pp.sub, fresh.id(), pp.overlap,
                                  std::move(pp.hops)});
    }
    for (const net::NodeId sw : plan.affected) {
      installer_.reconcileSwitch(sw, registry_.requiredFlows(sw));
    }
  }
}

dz::DzSet Controller::coarsen(dz::DzSet dzSet, const SpanningTree* exclude) const {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const dz::DzExpression& member : dzSet) {
      if (member.length() == 0) continue;
      const dz::DzExpression parent = member.parent();
      bool clash = false;
      for (const auto& tree : trees_) {
        if (tree.get() == exclude) continue;
        if (tree->dzSet().overlaps(parent)) {
          clash = true;
          break;
        }
      }
      if (!clash) {
        dzSet.insert(parent);  // canonicalisation drops the covered children
        changed = true;
        break;
      }
    }
  }
  return dzSet;
}

// ---- event stamping -----------------------------------------------------

dz::DzExpression Controller::stampEvent(const dz::Event& event) const {
  return space_.eventToDz(event, effectiveMaxDzLength());
}

net::Packet Controller::makeEventPacket(net::NodeId publisherHost,
                                        const dz::Event& event,
                                        net::EventId eventId) const {
  net::Packet pkt;
  std::shared_ptr<net::EventPayload> payload = payloadPool_.acquire();
  payload->eventDz = stampEvent(event);
  payload->publisherHost = publisherHost;
  payload->event = event;
  payload->eventId = eventId;
  pkt.dst = dz::dzToAddress(payload->eventDz);
  pkt.src = net::hostAddress(publisherHost);
  // "The size of each packet is up to 64 bytes depending upon the length of
  // dz" (Sec 6.2): IPv6 header dominates, dz bits ride in the address.
  pkt.sizeBytes = 48 + payload->eventDz.length() / 8;
  pkt.payload = std::move(payload);
  return pkt;
}

// ---- re-indexing (Sec 5) --------------------------------------------------

void Controller::reindex(const std::vector<int>& dims) {
  FlowInstaller::BatchScope batchScope(installer_);
  MutationScope mutationScope(*this);
  if (obsReindexes_ != nullptr) obsReindexes_->inc();
  space_.setIndexedDimensions(dims);

  // Regenerate DZ for every rectangle-based registration; raw-DZ
  // registrations (virtual hosts relay already-encoded DZ) keep theirs.
  for (auto& [id, adv] : advertisements_) {
    if (adv.rect) adv.dzSet = decompose(*adv.rect);
  }
  subscriptionIndex_.clear();
  if (config_.aggregateSubscriptions) {
    // Rebuild every endpoint aggregate from the re-decomposed interests;
    // aggregate ids are stable, so the index keys don't change identity.
    for (auto& [key, agg] : aggregates_) agg.index.clear();
    for (auto& [id, sub] : subscriptions_) {
      if (sub.rect) sub.dzSet = decompose(*sub.rect);
      subAggregate_.at(id)->index.add(sub.dzSet);
    }
    for (const auto& [key, agg] : aggregates_) {
      for (const dz::DzExpression& d : agg.index.aggregate()) {
        subscriptionIndex_.insert(d, agg.aggId);
      }
    }
  } else {
    for (auto& [id, sub] : subscriptions_) {
      if (sub.rect) sub.dzSet = decompose(*sub.rect);
      for (const dz::DzExpression& d : sub.dzSet) subscriptionIndex_.insert(d, id);
    }
  }

  // Tear down all trees and flows, then replay advertisements in id order;
  // subscriptions re-attach inside addFlowMultSub.
  const std::vector<net::NodeId> switches = registry_.allSwitches();
  registry_.clear();
  for (auto& tree : trees_) retireTree(std::move(tree));
  trees_.clear();
  for (const net::NodeId sw : switches) installer_.reconcileSwitch(sw, {});
  for (const auto& [id, adv] : advertisements_) runAdvertise(id);
  mergeTreesIfNeeded();
  if (intentObserver_) {
    IntentCommand cmd;
    cmd.kind = IntentCommand::Kind::kReindex;
    cmd.dims = dims;
    logIntent(std::move(cmd));
  }
}

// ---- misc ----------------------------------------------------------------

std::vector<const SpanningTree*> Controller::trees() const {
  std::vector<const SpanningTree*> out;
  out.reserve(trees_.size());
  for (const auto& t : trees_) out.push_back(t.get());
  return out;
}

std::size_t Controller::advertisementCount() const noexcept {
  return advertisements_.size();
}

std::size_t Controller::subscriptionCount() const noexcept {
  return subscriptions_.size();
}

dz::DzSet Controller::subscriptionUnion() const {
  dz::DzSet out;
  for (const auto& [id, sub] : subscriptions_) out.unionWith(sub.dzSet);
  return out;
}

OpStats Controller::beginOp(const char* opName) {
  OpStats snapshot;
  const auto& s = channel_.stats();
  snapshot.flowAdds = s.flowAdds;
  snapshot.flowModifies = s.flowModifies;
  snapshot.flowDeletes = s.flowDeletes;
  snapshot.modeledInstallTime = channel_.modeledInstallTime();
  lastOp_ = OpStats{};
  if (obsOps_ != nullptr) obsOps_->inc();
  if (tracer_ != nullptr && tracer_->enabled()) {
    // The op span is the ambient context for every flow-mod record the
    // control channel emits until endOp.
    opSpan_ = tracer_->begin(tracer_->newTraceId(), obs::kNoSpan, opName,
                             network_.simulator().now());
    tracer_->pushContext(opSpan_);
  }
  return snapshot;
}

void Controller::endOp(OpStats& snapshot) {
  const auto& s = channel_.stats();
  lastOp_.flowAdds = s.flowAdds - snapshot.flowAdds;
  lastOp_.flowModifies = s.flowModifies - snapshot.flowModifies;
  lastOp_.flowDeletes = s.flowDeletes - snapshot.flowDeletes;
  lastOp_.modeledInstallTime =
      channel_.modeledInstallTime() - snapshot.modeledInstallTime;
  if (obsOpFlowMods_ != nullptr) {
    obsOpFlowMods_->record(static_cast<double>(lastOp_.totalFlowMods()));
    obsOpInstallTime_->record(static_cast<double>(lastOp_.modeledInstallTime));
  }
  if (opSpan_ != obs::kNoSpan && tracer_ != nullptr) {
    tracer_->annotate(opSpan_, "flow_mods",
                      std::to_string(lastOp_.totalFlowMods()));
    tracer_->annotate(opSpan_, "trees_created",
                      std::to_string(lastOp_.treesCreated));
    tracer_->annotate(opSpan_, "trees_joined",
                      std::to_string(lastOp_.treesJoined));
    tracer_->popContext();
    tracer_->end(opSpan_, network_.simulator().now());
    opSpan_ = obs::kNoSpan;
  }
}

void Controller::attachObservability(obs::MetricsRegistry& reg,
                                     obs::Tracer* tracer) {
  tracer_ = tracer;
  obsOps_ = &reg.counter("controller.ops");
  obsTreesCreated_ = &reg.counter("controller.trees_created");
  obsTreesJoined_ = &reg.counter("controller.trees_joined");
  obsTreeMerges_ = &reg.counter("controller.tree_merges");
  obsReroots_ = &reg.counter("controller.tree_reroots");
  obsTreeRebuilds_ = &reg.counter("controller.tree_rebuilds");
  obsReindexes_ = &reg.counter("controller.reindexes");
  obsOpFlowMods_ = &reg.histogram("controller.flow_mods_per_op");
  obsOpInstallTime_ = &reg.histogram("controller.op_install_time_ns");
  channel_.attachObservability(reg, tracer);
  installer_.attachMetrics(reg);
}

}  // namespace pleroma::ctrl
