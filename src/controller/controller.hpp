// The PLEROMA controller of one network partition (Sec 2-3, Algorithm 1).
// It reacts to (un)advertisements and (un)subscriptions by maintaining the
// set of disjoint-DZ spanning trees, embedding per-(publisher, subscriber)
// routes in them, and keeping the switches' TCAM flow tables consistent.
// Requests are processed strictly sequentially (Sec 2), so no internal
// synchronisation is needed — with one exception: multi-tree rebuilds
// (failure handling, rerooting) may plan the new trees concurrently on a
// WorkerPool. Because Algorithm 1 keeps DZ(t) disjoint across trees, each
// tree's plan (spanning-tree construction + route derivation) reads only
// shared-immutable state and writes only its own slot; all mutation happens
// in a sequential commit phase that replays the single-threaded order, so
// registry, installer mirror and flow-mod streams are byte-identical with
// and without a pool.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "controller/flow_installer.hpp"
#include "controller/intent_log.hpp"
#include "controller/path_registry.hpp"
#include "dz/aggregation_index.hpp"
#include "dz/dz_trie.hpp"
#include "controller/tree.hpp"
#include "controller/types.hpp"
#include "dz/event_space.hpp"
#include "net/network.hpp"
#include "openflow/control_channel.hpp"
#include "util/worker_pool.hpp"

namespace pleroma::ctrl {

struct ControllerConfig {
  /// L_dz: longest dz installable in flows / stamped on events. Bounded by
  /// the IP-multicast embedding (Sec 5, Sec 6.4).
  int maxDzLength = 24;
  /// Decomposition budget: max dz per advertisement/subscription request.
  std::size_t maxCellsPerRequest = 8;
  /// Tree-merge threshold: merging starts once |T| exceeds this (Sec 3.2).
  std::size_t maxTrees = 64;
  /// During merges, opportunistically shorten the merged DZ members as long
  /// as disjointness from other trees holds (the paper's coarsening).
  bool coarsenOnMerge = true;
  /// Modelled switch-side latency of one flow-mod (reconfiguration delay).
  net::SimTime flowModLatency = net::kMillisecond;
  /// Aggregate same-endpoint subscriptions through a dz::AggregationIndex
  /// before flow install: a subscription covered by its endpoint's
  /// aggregate installs nothing, sibling interests merge into one coarser
  /// flow, and unsubscription uncovers incrementally. Installed flow state
  /// then grows with the number of *distinct interest regions* instead of
  /// the number of subscriptions (sublinear under skew).
  bool aggregateSubscriptions = false;
  /// Per-switch TCAM entry budget handed to the FlowInstaller (0 =
  /// unlimited): exceeding installs coarsen the switch's flows (supersets,
  /// never misses) instead of failing. Part of the replicated config, so a
  /// promoted standby reproduces the same coarsening decisions.
  std::size_t tcamBudget = 0;
};

/// The slice of the physical topology one controller manages: its switches
/// and the switch-switch links internal to the partition (from LLDP
/// discovery, Sec 4.1). Host access links are implicit.
struct Scope {
  std::vector<net::NodeId> switches;
  std::vector<net::LinkId> internalLinks;

  /// Single-partition deployment: every switch and switch-switch link.
  static Scope wholeTopology(const net::Topology& topology);
};

class Controller {
 public:
  Controller(dz::EventSpace space, net::Network& network, Scope scope,
             ControllerConfig config = {});

  // ---- publish/subscribe registration --------------------------------

  /// Advertisement from a real host, given the exact rectangle semantics;
  /// the controller decomposes it into DZ(p) (Sec 2).
  PublisherId advertise(net::NodeId host, const dz::Rectangle& rect);

  /// Advertisement at an arbitrary endpoint (virtual hosts of Sec 4.2) with
  /// a pre-decomposed DZ.
  PublisherId advertiseEndpoint(const Endpoint& endpoint, const dz::DzSet& dzSet,
                                std::optional<dz::Rectangle> rect = std::nullopt);

  void unadvertise(PublisherId id);

  SubscriptionId subscribe(net::NodeId host, const dz::Rectangle& rect);
  SubscriptionId subscribeEndpoint(const Endpoint& endpoint, const dz::DzSet& dzSet,
                                   std::optional<dz::Rectangle> rect = std::nullopt);
  void unsubscribe(SubscriptionId id);

  // ---- event stamping -------------------------------------------------

  /// The dz a publisher stamps on an event: maximal length under the
  /// current indexing, truncated at L_dz (Sec 2, Sec 6.4).
  dz::DzExpression stampEvent(const dz::Event& event) const;

  /// A ready-to-send publication packet from `publisherHost`.
  net::Packet makeEventPacket(net::NodeId publisherHost, const dz::Event& event,
                              net::EventId eventId = 0) const;

  /// The endpoint describing a real host's attachment.
  Endpoint endpointForHost(net::NodeId host) const;

  // ---- load adaptation (Sec 8 future work) ------------------------------

  /// Rebuilds tree `treeId` as a shortest-path tree rooted at `newRoot`
  /// (must be a switch of this partition) and re-embeds all its paths.
  /// Used by the overload-reaction extension to move traffic off hot
  /// links. `linkCosts` (indexed by LinkId, covering every topology link)
  /// replaces link latency as the Dijkstra edge weight for this one
  /// rebuild — the congestion-aware rebalancer passes inflated costs for
  /// hot links so the new tree routes around them. The override is
  /// ephemeral by design (not intent-logged): a promoted standby rebuilds
  /// plain shortest-path trees and the rebalancer re-derives congestion
  /// from live counters. Returns false when the tree or root is unknown.
  bool rerootTree(int treeId, net::NodeId newRoot,
                  const std::vector<net::SimTime>* linkCosts = nullptr);

  // ---- failure handling --------------------------------------------------

  /// Reacts to a data-plane link failure: every tree whose edges use the
  /// link is rebuilt over the remaining internal links and its routes are
  /// re-derived from the registered advertisements and subscriptions.
  /// Endpoints left unreachable lose their paths for the duration of the
  /// outage; onLinkUp() re-derives them.
  void onLinkDown(net::LinkId link);

  /// Reacts to a link repair: the link becomes usable again and every tree
  /// is rebuilt so previously degraded (or dropped) routes return to
  /// shortest paths.
  void onLinkUp(net::LinkId link);

  /// Reacts to a switch *node* failure: the switch's control session is
  /// disconnected, its mirror discarded (the TCAM state is gone), every
  /// incident link is treated as failed, and each affected tree is rebuilt
  /// over the surviving switches (trees rooted at the dead switch are
  /// re-rooted). Endpoints attached to the dead switch lose their paths for
  /// the duration of the outage.
  void onSwitchDown(net::NodeId switchNode);

  /// Reacts to a switch reconnecting after a failure. The switch comes back
  /// with an *empty* TCAM: the controller reconnects its control session,
  /// rebuilds all trees over the restored topology, and resyncs the
  /// switch's flow table in full from the registered intent — no
  /// re-subscription by the endpoints is needed.
  void onSwitchUp(net::NodeId switchNode);

  bool switchActive(net::NodeId switchNode) const;
  const std::vector<net::NodeId>& failedSwitches() const noexcept {
    return downSwitches_;
  }

  /// Internal links currently usable (scope minus failed links and links
  /// incident to failed switches).
  std::vector<net::LinkId> activeInternalLinks() const;
  const std::vector<net::LinkId>& failedLinks() const noexcept { return downLinks_; }

  // ---- dimension selection (Sec 5) ------------------------------------

  /// Re-indexes the event space on the given dimensions: regenerates DZ for
  /// all rectangle-registered advertisements and subscriptions, tears down
  /// and reinstalls trees and flows, after which newly stamped events use
  /// the new indexing.
  void reindex(const std::vector<int>& dims);

  // ---- introspection ---------------------------------------------------

  const dz::EventSpace& space() const noexcept { return space_; }
  const Scope& scope() const noexcept { return scope_; }
  const ControllerConfig& config() const noexcept { return config_; }
  int effectiveMaxDzLength() const noexcept;

  std::size_t treeCount() const noexcept { return trees_.size(); }
  std::vector<const SpanningTree*> trees() const;
  const PathRegistry& registry() const noexcept { return registry_; }
  const openflow::ControlPlaneStats& controlStats() const {
    return channel_.stats();
  }
  /// Flow-mod counts and modelled install latency of the last registration
  /// operation (Fig 7f input).
  const OpStats& lastOpStats() const noexcept { return lastOp_; }

  std::size_t advertisementCount() const noexcept;
  std::size_t subscriptionCount() const noexcept;
  const dz::DzSet& subscriptionDz(SubscriptionId id) const {
    return subscriptions_.at(id).dzSet;
  }
  const dz::DzSet& advertisementDz(PublisherId id) const {
    return advertisements_.at(id).dzSet;
  }
  const Endpoint& subscriberEndpoint(SubscriptionId id) const {
    return subscriptions_.at(id).endpoint;
  }
  /// Union of all active subscriptions' DZ (interop uses it to forward
  /// pre-existing interest towards newly arrived external advertisements).
  dz::DzSet subscriptionUnion() const;

  // ---- subscription aggregation (when config().aggregateSubscriptions) --

  /// Distinct subscriber endpoints holding an aggregate.
  std::size_t aggregateCount() const noexcept { return aggregates_.size(); }
  /// Representatives across all endpoint aggregates — the interest regions
  /// actually driving installed flows.
  std::size_t aggregateRepresentatives() const noexcept;
  /// Subscribes whose interest was already covered by their endpoint's
  /// aggregate and therefore installed nothing.
  std::uint64_t coveredSubscribes() const noexcept { return coveredSubscribes_; }
  /// Deterministic byte accounting of controller flow state (registry
  /// paths + aggregation indexes + installer mirrors), element counts only
  /// — identical across thread counts, for the bench memory series.
  std::size_t flowStateBytes() const noexcept;

  /// Wires this controller, its control channel, and its flow installer
  /// into the observability layer. Registration ops (advertise/subscribe/
  /// un-*) become tracer spans that parent the flow-mod records they cause;
  /// tree lifecycle and per-op flow-mod volume land in "controller.*"
  /// metrics.
  void attachObservability(obs::MetricsRegistry& reg,
                           obs::Tracer* tracer = nullptr);

  /// Optional pool for concurrent tree recomputation (nullptr → inline).
  /// Results are identical either way; the pool only changes wall-clock.
  void setWorkerPool(util::WorkerPool* pool) noexcept { pool_ = pool; }

  // ---- high availability (controller failover) --------------------------

  /// Registers the observer that mirrors this controller's command stream
  /// (normally a ctrl::StandbyController). Every state-changing request —
  /// registrations, link/switch failure notifications, re-indexing — is
  /// reported after it was applied. One observer at most; pass nullptr to
  /// detach.
  void setIntentObserver(IntentObserver observer) {
    intentObserver_ = std::move(observer);
  }

  /// True while a multi-step mutation batch is rewriting tree / registry /
  /// mirror state: a rebuildTrees commit, a tree merge, a re-index, or a
  /// standby's promotion replay. The Reconciler defers audit passes that
  /// would otherwise diff against the half-committed state.
  bool mutationInProgress() const noexcept { return mutationDepth_ > 0; }

  /// RAII marker of such a batch. Held internally by rebuildTrees /
  /// mergeTreePair / reindex; StandbyController holds one across its whole
  /// promotion replay. Nestable.
  class MutationScope {
   public:
    explicit MutationScope(Controller& controller) : controller_(controller) {
      ++controller_.mutationDepth_;
    }
    ~MutationScope() { --controller_.mutationDepth_; }
    MutationScope(const MutationScope&) = delete;
    MutationScope& operator=(const MutationScope&) = delete;

   private:
    Controller& controller_;
  };

  net::Network& network() noexcept { return network_; }
  /// The control channel to this partition's switches (e.g. to enable
  /// asynchronous flow installation or inject control-plane faults).
  openflow::ControlChannel& channel() noexcept { return channel_; }
  /// The flow installer, whose per-switch mirror is the controller's
  /// intended flow state (the reconciler diffs it against the switches).
  FlowInstaller& installer() noexcept { return installer_; }
  const FlowInstaller& installer() const noexcept { return installer_; }

 private:
  struct AdvRecord {
    Endpoint endpoint;
    dz::DzSet dzSet;
    std::optional<dz::Rectangle> rect;
  };
  struct SubRecord {
    Endpoint endpoint;
    dz::DzSet dzSet;
    std::optional<dz::Rectangle> rect;
  };

  /// One subscriber endpoint's aggregated interest. Flow install in
  /// aggregated mode is keyed by `aggId` — a pseudo-subscription id from a
  /// separate (negative) range, assigned in endpoint-first-seen order so
  /// standby replay reproduces it — and the registry/subscription index
  /// hold the aggregate's representatives instead of per-subscription dz.
  struct EndpointAggregate {
    Endpoint endpoint;
    SubscriptionId aggId = kInvalidSubscription;
    dz::AggregationIndex index;
    std::size_t liveSubs = 0;
  };
  /// Stable identity of a subscriber endpoint.
  using EndpointKey = std::tuple<net::NodeId, net::PortId, net::NodeId>;
  static EndpointKey endpointKey(const Endpoint& e) {
    return {e.attachSwitch, e.port, e.host};
  }

  dz::DzSet decompose(const dz::Rectangle& rect) const;
  void runAdvertise(PublisherId id);
  void runSubscribe(SubscriptionId id);
  /// Algorithm 1's addFlowMultSub: connects publisher `p` to every
  /// subscription overlapping `dzSet` on tree `t`.
  void addFlowMultSub(PublisherId p, const dz::DzSet& dzSet, SpanningTree& t);
  void installPathRecord(PublisherId p, SubscriptionId s, SpanningTree& t,
                         const dz::DzSet& overlap);
  void removePaths(const std::vector<PathId>& ids);

  // ---- tree pooling ----------------------------------------------------
  /// A ready-to-use tree: a recycled pool object rebuilt in place when one
  /// is available (allocation-free on an unchanged topology), a fresh
  /// SpanningTree otherwise. Pool pops mutate treePool_, so callers inside
  /// a parallel section must pop sequentially beforehand.
  std::unique_ptr<SpanningTree> acquireTree(
      int id, dz::DzSet dzSet, net::NodeId root,
      const std::vector<net::LinkId>& allowedLinks);
  /// Returns a no-longer-listed tree to the pool (dropped once the pool is
  /// at capacity). Null-safe.
  void retireTree(std::unique_ptr<SpanningTree> tree);

  // ---- aggregated-mode plumbing ---------------------------------------
  /// The aggregate of `endpoint`, created (with a fresh aggId) on demand.
  EndpointAggregate& aggregateFor(const Endpoint& endpoint);
  /// Pushes an aggregate delta into spatial index, registry and switches:
  /// shrinks/removes paths carrying removed pieces, installs added pieces
  /// through the Algorithm-1 machinery, reconciles affected switches.
  void applyAggregateDelta(EndpointAggregate& agg,
                           const dz::AggregationDelta& delta);
  /// Interest lookups valid for real subscription ids and aggregate ids
  /// (negative range) alike — every flow-install path resolves through
  /// these so both modes share Algorithm 1.
  bool isAggregateId(std::int64_t sid) const noexcept { return sid < -1; }
  const dz::DzSet& interestDz(std::int64_t sid) const;
  const Endpoint& interestEndpoint(std::int64_t sid) const;
  bool interestActive(std::int64_t sid) const;
  void mergeTreesIfNeeded();
  void mergeTreePair(std::size_t idxA, std::size_t idxB);
  /// Rebuilds a tree in place (same root, DZ and publishers) over the
  /// currently active links, re-deriving its routes from the registered
  /// subscriptions. Heals paths dropped during outages.
  void rebuildTree(int treeId);
  void rebuildTreeAt(int treeId, net::NodeId root);
  /// Batched rebuild of several trees at given roots: per-tree plans run
  /// concurrently on pool_ (when set), then commit sequentially in list
  /// order, reproducing the exact effects of rebuilding one-by-one.
  void rebuildTrees(const std::vector<std::pair<int, net::NodeId>>& idRoots);
  /// The tree's root if still active, else a live fallback (the attach
  /// switch of one of its publishers, or any active scope switch).
  net::NodeId pickActiveRoot(const SpanningTree& tree) const;
  dz::DzSet coarsen(dz::DzSet dzSet, const SpanningTree* exclude) const;
  OpStats beginOp(const char* opName);
  void endOp(OpStats& snapshot);
  /// Reports a completed state-changing request to the intent observer.
  void logIntent(IntentCommand command) {
    if (intentObserver_) intentObserver_(command);
  }

  dz::EventSpace space_;
  net::Network& network_;
  Scope scope_;
  ControllerConfig config_;
  openflow::ControlChannel channel_;
  FlowInstaller installer_;
  PathRegistry registry_;

  std::vector<std::unique_ptr<SpanningTree>> trees_;
  /// Retired SpanningTree objects kept for reuse: acquireTree() pops one and
  /// rebuild()s it in place, so steady-state tree churn (merge, rebuild,
  /// reindex) recycles parent arrays and Dijkstra scratch instead of
  /// allocating. Bounded by kTreePoolCap.
  std::vector<std::unique_ptr<SpanningTree>> treePool_;
  std::vector<net::LinkId> downLinks_;
  std::vector<net::NodeId> downSwitches_;
  /// Dijkstra edge-weight override for the rebuildTrees call currently on
  /// the stack (set by rerootTree, read-only during the concurrent plan
  /// phase). nullptr = plain link latency.
  const std::vector<net::SimTime>* linkCostOverride_ = nullptr;
  int nextTreeId_ = 0;
  std::map<PublisherId, AdvRecord> advertisements_;
  std::map<SubscriptionId, SubRecord> subscriptions_;
  /// Aggregated mode: per-endpoint aggregates (map nodes are stable, so
  /// the id/sub lookaside tables hold plain pointers).
  std::map<EndpointKey, EndpointAggregate> aggregates_;
  std::unordered_map<SubscriptionId, EndpointAggregate*> subAggregate_;
  std::unordered_map<SubscriptionId, EndpointAggregate*> aggById_;
  SubscriptionId nextAggregateId_ = -2;
  std::uint64_t coveredSubscribes_ = 0;
  /// Spatial index over subscription dz members, so addFlowMultSub touches
  /// only subscriptions overlapping the advertised subspaces.
  dz::DzTrie<SubscriptionId> subscriptionIndex_;
  PublisherId nextPublisher_ = 0;
  SubscriptionId nextSubscription_ = 0;
  util::WorkerPool* pool_ = nullptr;
  IntentObserver intentObserver_;
  int mutationDepth_ = 0;
  OpStats lastOp_;
  /// Recycles (control block + EventPayload) allocations across publishes;
  /// mutable because stamping a packet does not change controller state.
  mutable net::PayloadPool payloadPool_;

  obs::Tracer* tracer_ = nullptr;
  obs::SpanId opSpan_ = obs::kNoSpan;  // open registration-op span
  obs::Counter* obsOps_ = nullptr;
  obs::Counter* obsTreesCreated_ = nullptr;
  obs::Counter* obsTreesJoined_ = nullptr;
  obs::Counter* obsTreeMerges_ = nullptr;
  obs::Counter* obsReroots_ = nullptr;
  obs::Counter* obsTreeRebuilds_ = nullptr;
  obs::Counter* obsReindexes_ = nullptr;
  obs::Histogram* obsOpFlowMods_ = nullptr;
  obs::Histogram* obsOpInstallTime_ = nullptr;
};

}  // namespace pleroma::ctrl
