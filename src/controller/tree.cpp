#include "controller/tree.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <unordered_set>

namespace pleroma::ctrl {

SpanningTree::SpanningTree(int id, dz::DzSet dzSet, net::NodeId root,
                           const net::Topology& topology,
                           const std::vector<net::LinkId>& allowedLinks,
                           const std::vector<net::SimTime>* linkCosts)
    : id_(id), root_(root) {
  rebuild(id, std::move(dzSet), root, topology, allowedLinks, linkCosts);
}

void SpanningTree::rebuild(int id, dz::DzSet dzSet, net::NodeId root,
                           const net::Topology& topology,
                           const std::vector<net::LinkId>& allowedLinks,
                           const std::vector<net::SimTime>* linkCosts) {
  assert(topology.isSwitch(root));
  assert(!linkCosts || linkCosts->size() ==
                           static_cast<std::size_t>(topology.linkCount()));
  id_ = id;
  dzSet_ = std::move(dzSet);
  root_ = root;
  publishers_.clear();
  const auto n = static_cast<std::size_t>(topology.nodeCount());
  parentNode_.assign(n, net::kInvalidNode);
  parentLink_.assign(n, net::kInvalidLink);

  allowed_.assign(static_cast<std::size_t>(topology.linkCount()), 0);
  for (const net::LinkId lid : allowedLinks) {
    allowed_[static_cast<std::size_t>(lid)] = 1;
  }

  // Dijkstra over switches restricted to the partition's internal links.
  // Scratch vectors are members: assign() reuses their capacity, so a
  // pooled tree's rebuild on an unchanged topology allocates nothing.
  dist_.assign(n, std::numeric_limits<net::SimTime>::max());
  heap_.clear();
  dist_[static_cast<std::size_t>(root)] = 0;
  heap_.emplace_back(0, root);
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const auto [d, u] = heap_.back();
    heap_.pop_back();
    if (d > dist_[static_cast<std::size_t>(u)]) continue;
    // Walk portLinks directly: portsOf() materialises a vector per call,
    // which would defeat the allocation-free rebuild.
    for (const net::LinkId lid : topology.node(u).portLinks) {
      if (lid == net::kInvalidLink) continue;
      if (allowed_[static_cast<std::size_t>(lid)] == 0) continue;
      const net::Link& l = topology.link(lid);
      const net::NodeId v = l.peerOf(u).node;
      if (!topology.isSwitch(v)) continue;
      const net::SimTime cost =
          linkCosts ? (*linkCosts)[static_cast<std::size_t>(lid)] : l.latency;
      const net::SimTime nd = d + cost;
      if (nd < dist_[static_cast<std::size_t>(v)]) {
        dist_[static_cast<std::size_t>(v)] = nd;
        parentNode_[static_cast<std::size_t>(v)] = u;
        parentLink_[static_cast<std::size_t>(v)] = lid;
        heap_.emplace_back(nd, v);
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
      }
    }
  }
  // Mark reachability of the root itself (parent invalid but distinct from
  // unreachable) via dist; store it implicitly: reaches() checks dist via
  // parent arrays, so record root reachability in reachable_ bitmapless way:
  // root has parentNode == kInvalidNode like unreachable nodes, so keep a
  // separate note by pointing the root's parentNode at itself.
  parentNode_[static_cast<std::size_t>(root)] = root;
}

void SpanningTree::addPublisher(PublisherId p, const dz::DzSet& overlap) {
  const auto it = std::lower_bound(
      publishers_.begin(), publishers_.end(), p,
      [](const PublisherEntry& e, PublisherId v) { return e.first < v; });
  if (it != publishers_.end() && it->first == p) {
    it->second.unionWith(overlap);
  } else {
    publishers_.emplace(it, p, overlap);
  }
}

void SpanningTree::removePublisher(PublisherId p) {
  const auto it = std::lower_bound(
      publishers_.begin(), publishers_.end(), p,
      [](const PublisherEntry& e, PublisherId v) { return e.first < v; });
  if (it != publishers_.end() && it->first == p) publishers_.erase(it);
}

bool SpanningTree::hasPublisher(PublisherId p) const {
  const auto it = std::lower_bound(
      publishers_.begin(), publishers_.end(), p,
      [](const PublisherEntry& e, PublisherId v) { return e.first < v; });
  return it != publishers_.end() && it->first == p;
}

bool SpanningTree::reaches(net::NodeId switchNode) const noexcept {
  return parentNode_[static_cast<std::size_t>(switchNode)] != net::kInvalidNode;
}

std::vector<net::NodeId> SpanningTree::pathBetween(net::NodeId from,
                                                   net::NodeId to) const {
  assert(reaches(from) && reaches(to));
  if (from == to) return {from};

  // Walk both nodes to the root, then splice at the lowest common ancestor.
  auto chainToRoot = [&](net::NodeId start) {
    std::vector<net::NodeId> chain{start};
    net::NodeId cur = start;
    while (cur != root_) {
      cur = parentNode_[static_cast<std::size_t>(cur)];
      chain.push_back(cur);
    }
    return chain;
  };
  const std::vector<net::NodeId> upFrom = chainToRoot(from);
  const std::vector<net::NodeId> upTo = chainToRoot(to);

  // Find the LCA: deepest node present in both chains.
  std::unordered_set<net::NodeId> onFromChain(upFrom.begin(), upFrom.end());
  std::size_t lcaIdxInTo = 0;
  while (!onFromChain.contains(upTo[lcaIdxInTo])) ++lcaIdxInTo;
  const net::NodeId lca = upTo[lcaIdxInTo];

  std::vector<net::NodeId> path;
  for (const net::NodeId nid : upFrom) {
    path.push_back(nid);
    if (nid == lca) break;
  }
  // Descend from the LCA to `to` (reverse of upTo's prefix).
  for (std::size_t i = lcaIdxInTo; i-- > 0;) path.push_back(upTo[i]);
  return path;
}

std::vector<RouteHop> SpanningTree::route(const Endpoint& publisher,
                                          const Endpoint& subscriber,
                                          const net::Topology& topology) const {
  if (!reaches(publisher.attachSwitch) || !reaches(subscriber.attachSwitch)) {
    return {};
  }
  std::vector<RouteHop> hops;
  const std::vector<net::NodeId> nodes =
      pathBetween(publisher.attachSwitch, subscriber.attachSwitch);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    // Out-port of nodes[i] toward nodes[i+1]: the tree edge between them is
    // one of the two parent links (whichever of the pair is the child).
    const net::NodeId a = nodes[i];
    const net::NodeId b = nodes[i + 1];
    const net::LinkId lid =
        parentNode_[static_cast<std::size_t>(a)] == b
            ? parentLink_[static_cast<std::size_t>(a)]
            : parentLink_[static_cast<std::size_t>(b)];
    assert(lid != net::kInvalidLink);
    hops.push_back(RouteHop{a, topology.link(lid).endOf(a).port, std::nullopt});
  }
  // Terminal hop: out of the subscriber's attachment port, rewriting the
  // destination for real hosts.
  hops.push_back(
      RouteHop{subscriber.attachSwitch, subscriber.port, subscriber.rewrite});
  return hops;
}

std::vector<net::LinkId> SpanningTree::edges() const {
  std::vector<net::LinkId> out;
  for (std::size_t i = 0; i < parentLink_.size(); ++i) {
    if (parentLink_[i] != net::kInvalidLink) out.push_back(parentLink_[i]);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace pleroma::ctrl
