#include "controller/tree.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <unordered_set>

namespace pleroma::ctrl {

SpanningTree::SpanningTree(int id, dz::DzSet dzSet, net::NodeId root,
                           const net::Topology& topology,
                           const std::vector<net::LinkId>& allowedLinks)
    : id_(id), dzSet_(std::move(dzSet)), root_(root) {
  assert(topology.isSwitch(root));
  const auto n = static_cast<std::size_t>(topology.nodeCount());
  parentNode_.assign(n, net::kInvalidNode);
  parentLink_.assign(n, net::kInvalidLink);

  std::unordered_set<net::LinkId> allowed(allowedLinks.begin(), allowedLinks.end());

  // Dijkstra over switches restricted to the partition's internal links.
  std::vector<net::SimTime> dist(n, std::numeric_limits<net::SimTime>::max());
  using Item = std::pair<net::SimTime, net::NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[static_cast<std::size_t>(root)] = 0;
  heap.emplace(0, root);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const auto& [port, lid] : topology.portsOf(u)) {
      if (!allowed.contains(lid)) continue;
      const net::Link& l = topology.link(lid);
      const net::NodeId v = l.peerOf(u).node;
      if (!topology.isSwitch(v)) continue;
      const net::SimTime nd = d + l.latency;
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        parentNode_[static_cast<std::size_t>(v)] = u;
        parentLink_[static_cast<std::size_t>(v)] = lid;
        heap.emplace(nd, v);
      }
    }
  }
  // Mark reachability of the root itself (parent invalid but distinct from
  // unreachable) via dist; store it implicitly: reaches() checks dist via
  // parent arrays, so record root reachability in reachable_ bitmapless way:
  // root has parentNode == kInvalidNode like unreachable nodes, so keep a
  // separate note by pointing the root's parentNode at itself.
  parentNode_[static_cast<std::size_t>(root)] = root;
}

void SpanningTree::addPublisher(PublisherId p, const dz::DzSet& overlap) {
  publishers_[p].unionWith(overlap);
}

bool SpanningTree::reaches(net::NodeId switchNode) const noexcept {
  return parentNode_[static_cast<std::size_t>(switchNode)] != net::kInvalidNode;
}

std::vector<net::NodeId> SpanningTree::pathBetween(net::NodeId from,
                                                   net::NodeId to) const {
  assert(reaches(from) && reaches(to));
  if (from == to) return {from};

  // Walk both nodes to the root, then splice at the lowest common ancestor.
  auto chainToRoot = [&](net::NodeId start) {
    std::vector<net::NodeId> chain{start};
    net::NodeId cur = start;
    while (cur != root_) {
      cur = parentNode_[static_cast<std::size_t>(cur)];
      chain.push_back(cur);
    }
    return chain;
  };
  const std::vector<net::NodeId> upFrom = chainToRoot(from);
  const std::vector<net::NodeId> upTo = chainToRoot(to);

  // Find the LCA: deepest node present in both chains.
  std::unordered_set<net::NodeId> onFromChain(upFrom.begin(), upFrom.end());
  std::size_t lcaIdxInTo = 0;
  while (!onFromChain.contains(upTo[lcaIdxInTo])) ++lcaIdxInTo;
  const net::NodeId lca = upTo[lcaIdxInTo];

  std::vector<net::NodeId> path;
  for (const net::NodeId nid : upFrom) {
    path.push_back(nid);
    if (nid == lca) break;
  }
  // Descend from the LCA to `to` (reverse of upTo's prefix).
  for (std::size_t i = lcaIdxInTo; i-- > 0;) path.push_back(upTo[i]);
  return path;
}

std::vector<RouteHop> SpanningTree::route(const Endpoint& publisher,
                                          const Endpoint& subscriber,
                                          const net::Topology& topology) const {
  if (!reaches(publisher.attachSwitch) || !reaches(subscriber.attachSwitch)) {
    return {};
  }
  std::vector<RouteHop> hops;
  const std::vector<net::NodeId> nodes =
      pathBetween(publisher.attachSwitch, subscriber.attachSwitch);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    // Out-port of nodes[i] toward nodes[i+1]: the tree edge between them is
    // one of the two parent links (whichever of the pair is the child).
    const net::NodeId a = nodes[i];
    const net::NodeId b = nodes[i + 1];
    const net::LinkId lid =
        parentNode_[static_cast<std::size_t>(a)] == b
            ? parentLink_[static_cast<std::size_t>(a)]
            : parentLink_[static_cast<std::size_t>(b)];
    assert(lid != net::kInvalidLink);
    hops.push_back(RouteHop{a, topology.link(lid).endOf(a).port, std::nullopt});
  }
  // Terminal hop: out of the subscriber's attachment port, rewriting the
  // destination for real hosts.
  hops.push_back(
      RouteHop{subscriber.attachSwitch, subscriber.port, subscriber.rewrite});
  return hops;
}

std::vector<net::LinkId> SpanningTree::edges() const {
  std::vector<net::LinkId> out;
  for (std::size_t i = 0; i < parentLink_.size(); ++i) {
    if (parentLink_[i] != net::kInvalidLink) out.push_back(parentLink_[i]);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace pleroma::ctrl
