// Spanning trees (Sec 3.2). Each tree t disseminates the events of the
// disjoint subspace set DZ(t) and is built as a shortest-path tree rooted at
// the access switch of the publisher that caused its creation. The tree
// logically interconnects all switches of the partition; per-(publisher,
// subscriber) routes are embedded along its edges.
#pragma once

#include <map>
#include <vector>

#include "controller/types.hpp"
#include "dz/dz_set.hpp"
#include "net/topology.hpp"

namespace pleroma::ctrl {

/// One step of a route through the switch network: forward matching events
/// out of `outPort` of `switchNode`; `rewrite` is set on the terminal hop
/// towards a real subscriber host.
struct RouteHop {
  net::NodeId switchNode = net::kInvalidNode;
  net::PortId outPort = net::kInvalidPort;
  std::optional<dz::Ipv6Address> rewrite;

  friend bool operator==(const RouteHop&, const RouteHop&) = default;
};

class SpanningTree {
 public:
  /// Publishers are kept as a vector of (id, DZ^t(p)) pairs sorted by id:
  /// iteration order matches the former std::map, and — unlike map nodes —
  /// the storage survives clear() with its capacity, so a pooled tree's
  /// steady-state rebuild allocates nothing.
  using PublisherEntry = std::pair<PublisherId, dz::DzSet>;

  /// Builds a shortest-path tree rooted at `root` over the switches of the
  /// partition, using only `allowedLinks` (switch-switch links internal to
  /// the partition). Hosts are not part of the tree; routes reach them via
  /// their access link in the terminal hop. `linkCosts` (indexed by LinkId,
  /// one entry per topology link) substitutes the Dijkstra edge weights —
  /// the load-aware rebalancer passes congestion-inflated latencies so the
  /// tree routes around hot links; nullptr keeps plain link latency.
  SpanningTree(int id, dz::DzSet dzSet, net::NodeId root,
               const net::Topology& topology,
               const std::vector<net::LinkId>& allowedLinks,
               const std::vector<net::SimTime>* linkCosts = nullptr);

  /// Re-runs the construction in place, reusing every internal buffer
  /// (parent arrays, Dijkstra distance/heap scratch, allowed-link bitmap).
  /// Publishers are cleared. On an unchanged topology the steady-state
  /// rebuild performs zero heap allocations — the arena behaviour the
  /// controller's tree pool relies on.
  void rebuild(int id, dz::DzSet dzSet, net::NodeId root,
               const net::Topology& topology,
               const std::vector<net::LinkId>& allowedLinks,
               const std::vector<net::SimTime>* linkCosts = nullptr);

  int id() const noexcept { return id_; }
  net::NodeId root() const noexcept { return root_; }

  const dz::DzSet& dzSet() const noexcept { return dzSet_; }
  void setDzSet(dz::DzSet dzSet) { dzSet_ = std::move(dzSet); }

  /// Publishers attached to this tree and the part of their advertisement
  /// this tree carries: DZ^t(p). Sorted by publisher id.
  const std::vector<PublisherEntry>& publishers() const noexcept {
    return publishers_;
  }
  void addPublisher(PublisherId p, const dz::DzSet& overlap);
  void removePublisher(PublisherId p);
  bool hasPublisher(PublisherId p) const;

  bool reaches(net::NodeId switchNode) const noexcept;

  /// The unique tree path between two switches (inclusive), via their
  /// lowest common ancestor. Both must be reachable switches of the tree.
  std::vector<net::NodeId> pathBetween(net::NodeId from, net::NodeId to) const;

  /// The switch-level route from publisher endpoint to subscriber endpoint:
  /// hops with out-ports along pathBetween(), plus the terminal hop out of
  /// the subscriber's attachment port (with its rewrite). An empty result
  /// means the endpoints are not connected on this tree.
  std::vector<RouteHop> route(const Endpoint& publisher,
                              const Endpoint& subscriber,
                              const net::Topology& topology) const;

  /// Edges (links) used by the tree; for load/ablation analysis.
  std::vector<net::LinkId> edges() const;

 private:
  int id_;
  dz::DzSet dzSet_;
  net::NodeId root_;
  std::vector<net::NodeId> parentNode_;  // toward root; kInvalidNode at root
  std::vector<net::LinkId> parentLink_;
  std::vector<PublisherEntry> publishers_;

  // Dijkstra scratch, reused across rebuild() calls (assign() keeps the
  // capacity, so pooled trees rebuild allocation-free).
  std::vector<net::SimTime> dist_;
  std::vector<std::pair<net::SimTime, net::NodeId>> heap_;
  std::vector<char> allowed_;  // indexed by LinkId
};

}  // namespace pleroma::ctrl
