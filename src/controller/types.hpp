// Identifiers and small shared records of the PLEROMA controller.
#pragma once

#include <cstdint>
#include <optional>

#include "dz/ip_encoding.hpp"
#include "net/types.hpp"

namespace pleroma::ctrl {

/// Handle for a registered advertisement (one publisher role).
using PublisherId = std::int64_t;
/// Handle for a registered subscription.
using SubscriptionId = std::int64_t;

inline constexpr PublisherId kInvalidPublisher = -1;
inline constexpr SubscriptionId kInvalidSubscription = -1;

/// Where a publisher/subscriber hangs off the switch network. A real host
/// attaches via its access link and needs the terminal destination rewrite
/// to its unicast address (Sec 3.3.2); a *virtual host* (Sec 4.2) is a
/// border-gateway port: events leave through it with the dz address intact
/// so the neighbouring partition's flows can keep forwarding them.
struct Endpoint {
  net::NodeId attachSwitch = net::kInvalidNode;
  net::PortId port = net::kInvalidPort;
  /// Set for real hosts (rewrite on the terminal switch); empty for
  /// virtual hosts.
  std::optional<dz::Ipv6Address> rewrite;
  /// The real host node, when there is one (for delivery accounting).
  net::NodeId host = net::kInvalidNode;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Control-plane cost of one (un)subscribe/(un)advertise operation;
/// the quantity behind the reconfiguration-delay experiment (Fig 7f).
struct OpStats {
  std::uint64_t flowAdds = 0;
  std::uint64_t flowModifies = 0;
  std::uint64_t flowDeletes = 0;
  net::SimTime modeledInstallTime = 0;
  int treesCreated = 0;
  int treesJoined = 0;

  std::uint64_t totalFlowMods() const noexcept {
    return flowAdds + flowModifies + flowDeletes;
  }
};

}  // namespace pleroma::ctrl
