// The replicated command log of the controller high-availability layer.
// Every state-changing request a Controller processes — registrations,
// topology-failure notifications, re-indexing — is summarised as one
// IntentCommand and handed to the registered observer (normally a
// StandbyController appending to its log). Because the controller handles
// requests strictly sequentially and assigns ids from monotonic counters,
// replaying the log against a fresh Controller over the same network
// reproduces the original's trees, path registry, and installer mirror
// exactly — the property standby promotion rests on.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "controller/types.hpp"
#include "dz/dz_set.hpp"
#include "dz/event_space.hpp"
#include "net/topology.hpp"

namespace pleroma::ctrl {

/// One mirrored controller request. Only the fields of the given kind are
/// meaningful; the rest stay at their defaults.
struct IntentCommand {
  enum class Kind {
    kAdvertise,    ///< endpoint, dzSet, rect; id = assigned PublisherId
    kUnadvertise,  ///< id = PublisherId
    kSubscribe,    ///< endpoint, dzSet, rect; id = assigned SubscriptionId
    kUnsubscribe,  ///< id = SubscriptionId
    kLinkDown,     ///< link
    kLinkUp,       ///< link
    kSwitchDown,   ///< node
    kSwitchUp,     ///< node
    kReindex,      ///< dims
  };

  Kind kind = Kind::kAdvertise;
  /// Registration id: the id the primary *assigned* (kAdvertise /
  /// kSubscribe — replay asserts it reproduces the same one) or the id the
  /// request targeted (kUnadvertise / kUnsubscribe).
  std::int64_t id = -1;
  Endpoint endpoint;
  dz::DzSet dzSet;
  std::optional<dz::Rectangle> rect;
  net::LinkId link = net::kInvalidLink;
  net::NodeId node = net::kInvalidNode;
  std::vector<int> dims;
};

/// Receiver of the primary's command stream (see
/// Controller::setIntentObserver). Invoked after the command was applied.
using IntentObserver = std::function<void(const IntentCommand&)>;

}  // namespace pleroma::ctrl
