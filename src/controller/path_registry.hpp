// The controller's record of every installed (publisher, subscriber, tree)
// path: which subspaces it forwards and through which (switch, out-port)
// hops. From this record the *required* flow set of any switch can be
// derived, which drives unsubscription handling (delete vs. downgrade,
// Sec 3.3.3), tree merging, and the consistency checks in the tests.
//
// Required-flow semantics: a switch needs, for destination address a, to
// forward to exactly the ports
//     ports(a) = U { contrib(dz) : dz contributed at this switch, dz covers a }
// Because TCAM lookup applies only the first (longest-dz) match, the flow
// installed for a dz must carry the union of its own ports and the ports of
// every contributed coarser prefix; and a flow whose own ports are already
// covered by its prefixes' union is unnecessary (that's the "downgrade").
//
// Storage is sharded by tree id: each tree's paths live in their own map,
// matching the per-tree task granularity of concurrent tree recomputation
// (Controller::rebuildTrees) — a tree rebuild drains and refills exactly
// one shard, and Algorithm 1 keeps DZ(t) disjoint across trees so shards
// never share a path. The cross-tree indexes (by switch / subscription /
// publisher) are maintained alongside and only touched on the sequential
// commit path.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "controller/tree.hpp"
#include "dz/dz_set.hpp"
#include "net/flow_table.hpp"

namespace pleroma::ctrl {

using PathId = std::int64_t;

struct InstalledPath {
  PathId id = -1;
  PublisherId publisher = kInvalidPublisher;
  SubscriptionId subscription = kInvalidSubscription;
  int treeId = -1;
  /// The subspaces forwarded along this path: the DZ^t(s) ∩ DZ^t(p) pieces.
  dz::DzSet dz;
  std::vector<RouteHop> hops;
};

class PathRegistry {
 public:
  PathId add(InstalledPath path);
  void remove(PathId id);
  bool contains(PathId id) const { return treeOf_.contains(id); }
  const InstalledPath& at(PathId id) const {
    return shards_.at(treeOf_.at(id)).at(id);
  }
  std::size_t size() const noexcept { return treeOf_.size(); }
  void clear();

  /// Replaces the dz set a path forwards (its hops are unchanged, so no
  /// index maintenance is needed). Used by aggregated-mode uncover to
  /// shrink a path in place instead of remove + re-add.
  void setDz(PathId id, dz::DzSet dz);

  /// Deterministic byte accounting of the registry's element payload
  /// (paths, hops, dz members — no container overhead or capacity), for
  /// the bench memory series.
  std::size_t stateBytes() const noexcept;

  std::vector<PathId> pathsOfSubscription(SubscriptionId s) const;
  std::vector<PathId> pathsOfPublisher(PublisherId p) const;
  std::vector<PathId> pathsOfTree(int treeId) const;
  /// Switches traversed by a set of paths (deduplicated).
  std::vector<net::NodeId> switchesOf(const std::vector<PathId>& ids) const;

  /// True when a path for this (publisher, subscription, tree) already
  /// forwards a superset of `dz` — used to avoid duplicate installs.
  bool alreadyCovered(PublisherId p, SubscriptionId s, int treeId,
                      const dz::DzSet& dz) const;

  /// The canonical flow set switch `sw` must hold so that every registered
  /// path's traffic is forwarded (and nothing more). Priorities are the dz
  /// length, matching the controller's installation discipline.
  std::vector<net::FlowEntry> requiredFlows(net::NodeId sw) const;

  /// All switches that appear in any registered path.
  std::vector<net::NodeId> allSwitches() const;

 private:
  static std::vector<PathId> sortedIds(
      const std::unordered_map<std::int64_t, std::unordered_set<PathId>>& index,
      std::int64_t key);

  /// nullptr when unknown; the only internal path-by-id lookup.
  const InstalledPath* findPath(PathId id) const;

  /// Per-tree shards (see file comment); treeOf_ routes id lookups.
  std::unordered_map<int, std::unordered_map<PathId, InstalledPath>> shards_;
  std::unordered_map<PathId, int> treeOf_;
  std::unordered_map<net::NodeId, std::unordered_set<PathId>> bySwitch_;
  std::unordered_map<std::int64_t, std::unordered_set<PathId>> bySubscription_;
  std::unordered_map<std::int64_t, std::unordered_set<PathId>> byPublisher_;
  PathId next_ = 0;
};

}  // namespace pleroma::ctrl
