#include "controller/failover.hpp"

#include <vector>

namespace pleroma::ctrl {

FailoverManager::FailoverManager(Controller& primary,
                                 StandbyController& standby,
                                 FailoverConfig config)
    : primary_(primary),
      standby_(standby),
      config_(config),
      hbChannel_(primary.network()) {
  openflow::ControlFaultModel faults;
  faults.dropProbability = config_.heartbeatDropProbability;
  hbChannel_.setFaultModel(faults);
  hbChannel_.reseedFaults(config_.heartbeatSeed);
}

void FailoverManager::start() {
  if (running_) return;
  running_ = true;
  armTick();
}

void FailoverManager::stop() { running_ = false; }

void FailoverManager::killPrimary() {
  if (!primaryAlive_) return;
  primaryAlive_ = false;
  net::Network& network = primary_.network();
  stats_.primaryDiedAt = network.simulator().now();
  // Switches notice the dead control session through their own echo
  // timeout; modelled as immediate, they enter fail-soft: keep forwarding
  // on the installed TCAM entries, park misses for post-repair replay.
  if (config_.failSoft) network.setFailSoft(true);
  const net::NetworkCounters& c = network.counters();
  bufferedAtKill_ = c.packetsBufferedOnMiss;
  droppedAtKill_ = c.dropped(net::DropReason::kMissBuffer);
  replayedAtKill_ = c.packetsReplayedFromMissBuffer;
}

void FailoverManager::armTick() {
  primary_.network().simulator().schedule(config_.heartbeatInterval,
                                          [this] { onTick(); });
}

void FailoverManager::onTick() {
  // A stopped manager or a completed promotion ends the schedule — the
  // tick must not re-arm, or nested convergence loops would never drain.
  if (!running_ || promotedCtrl_ != nullptr) return;
  ++stats_.heartbeatsSent;
  if (obsHeartbeats_ != nullptr) obsHeartbeats_->inc();
  if (hbChannel_.sendEcho(primaryAlive_)) {
    consecutiveMisses_ = 0;
    armTick();
    return;
  }
  ++stats_.heartbeatsMissed;
  if (obsMisses_ != nullptr) obsMisses_->inc();
  if (++consecutiveMisses_ < config_.missThreshold) {
    armTick();
    return;
  }
  stats_.detectedAt = primary_.network().simulator().now();
  if (primaryAlive_) {
    // The channel ate missThreshold echoes in a row from a live primary.
    ++stats_.spuriousDetections;
    if (obsSpurious_ != nullptr) obsSpurious_->inc();
  }
  promote();
}

void FailoverManager::forcePromotion() {
  if (promotedCtrl_ != nullptr) return;
  stats_.detectedAt = primary_.network().simulator().now();
  if (primaryAlive_) {
    ++stats_.spuriousDetections;
    if (obsSpurious_ != nullptr) obsSpurious_->inc();
  }
  promote();
}

void FailoverManager::promote() {
  ++stats_.promotions;
  if (obsPromotions_ != nullptr) obsPromotions_->inc();

  // 1. Muted-replay rebuild of the primary's intent (standby.hpp).
  promotedCtrl_ = standby_.promote(pool_);
  openflow::ControlChannel& channel = promotedCtrl_->channel();

  // The replica inherits the deployment's channel profile — mode, batching,
  // fault model, retry policy — but a fixed fault seed: the dead primary's
  // Rng position is unknowable, and a deterministic reseed keeps the repair
  // byte-identical across thread counts and bench configurations.
  const openflow::ControlChannel& old = primary_.channel();
  if (old.asyncInstall()) channel.enableAsyncInstall();
  channel.enableBatching(old.batchingEnabled());
  channel.setFaultModel(old.faultModel());
  channel.setRetryPolicy(old.retryPolicy());
  channel.reseedFaults(config_.promotedChannelSeed);

  // 2. Claim mastership and snapshot every reachable TCAM in one batched
  // stats sweep.
  std::vector<net::NodeId> reachable;
  for (const net::NodeId sw : promotedCtrl_->scope().switches) {
    if (!promotedCtrl_->switchActive(sw) || !channel.switchConnected(sw)) {
      continue;
    }
    channel.sendRoleRequest(sw, openflow::ControllerRole::kMaster);
    reachable.push_back(sw);
  }
  for (const openflow::FlowStatsReply& reply :
       channel.requestFlowStatsBatch(reachable)) {
    if (!reply.ok) continue;
    ++stats_.switchesAudited;
    stats_.entriesSurviving += reply.entries.size();
  }

  // 3. Anti-entropy repair: only the delta between mirrored intent and the
  // audited tables moves — surviving entries are never reinstalled.
  Reconciler reconciler(*promotedCtrl_);
  stats_.repairRounds = reconciler.runToConvergence(config_.repairRoundLimit);
  stats_.repairFlowMods = reconciler.totalRepairMods();
  if (obsRepairMods_ != nullptr) {
    obsRepairMods_->inc(stats_.repairFlowMods);
  }

  net::Network& network = promotedCtrl_->network();
  stats_.repairedAt = network.simulator().now();

  // 4. Leave fail-soft *before* replaying the parked misses: anything still
  // unmatched after the repair is a genuine no-route drop, not re-parked.
  if (config_.failSoft) {
    network.setFailSoft(false);
    network.releaseMissBuffers();
    network.simulator().run();  // drain the replayed packets' deliveries
  }
  const net::NetworkCounters& c = network.counters();
  stats_.eventsBuffered = c.packetsBufferedOnMiss - bufferedAtKill_;
  stats_.eventsDroppedBufferFull = c.dropped(net::DropReason::kMissBuffer) - droppedAtKill_;
  stats_.eventsReplayed = c.packetsReplayedFromMissBuffer - replayedAtKill_;
  if (obsReplayed_ != nullptr) obsReplayed_->inc(stats_.eventsReplayed);
  if (obsDetectionLatency_ != nullptr) {
    obsDetectionLatency_->set(static_cast<double>(stats_.detectionLatency()));
    obsFailoverWindow_->set(static_cast<double>(stats_.failoverWindow()));
  }

  if (onPromoted_) onPromoted_(*promotedCtrl_);
}

void FailoverManager::attachMetrics(obs::MetricsRegistry& reg) {
  obsPromotions_ = &reg.counter("failover.promotions");
  obsSpurious_ = &reg.counter("failover.spurious_detections");
  obsHeartbeats_ = &reg.counter("failover.heartbeats_sent");
  obsMisses_ = &reg.counter("failover.heartbeats_missed");
  obsRepairMods_ = &reg.counter("failover.repair_mods");
  obsReplayed_ = &reg.counter("failover.events_replayed");
  obsDetectionLatency_ = &reg.gauge("failover.detection_latency");
  obsFailoverWindow_ = &reg.gauge("failover.window");
}

}  // namespace pleroma::ctrl
