// Overload detection and reaction — the extension sketched in the paper's
// conclusion (Sec 8: "new mechanisms need to be introduced in order to
// detect and react to overload situations in the presence of a dynamic
// workload").
//
// The monitor periodically samples the data plane's per-link packet
// counters and computes per-link rates over the sampling window. When the
// hottest switch-switch link exceeds `hotLinkThreshold` times the mean
// rate, the monitor reacts by re-rooting the spanning tree that embeds the
// most paths across that link: the rebuilt shortest-path tree is rooted at
// the coldest switch, steering its traffic onto less-utilised links (this
// exploits PLEROMA's multiple independently configurable trees, Sec 3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "controller/controller.hpp"

namespace pleroma::ctrl {

struct LoadMonitorConfig {
  /// A link is "hot" when its rate exceeds threshold * mean rate of used
  /// switch-switch links.
  double hotLinkThreshold = 2.0;
};

struct LinkLoad {
  net::LinkId link = net::kInvalidLink;
  std::uint64_t packetsInWindow = 0;
};

struct LoadReport {
  net::SimTime windowStart = 0;
  net::SimTime windowEnd = 0;
  std::vector<LinkLoad> links;   ///< switch-switch links with traffic, hottest first
  double meanPackets = 0.0;
  bool overloaded = false;       ///< hottest link exceeded the threshold
};

class LoadMonitor {
 public:
  LoadMonitor(Controller& controller, LoadMonitorConfig config = {});

  /// Samples the link counters, returning the load of the window since the
  /// previous sample.
  LoadReport sample();

  /// If the last report flagged an overload, re-roots the tree with the
  /// most paths across the hottest link at the coldest reachable switch.
  /// Returns whether a tree was re-rooted.
  bool rebalanceOnce();

  const LoadReport& lastReport() const noexcept { return last_; }

 private:
  /// The tree embedding the most registered paths over `link`, or -1.
  int busiestTreeOn(net::LinkId link) const;
  /// The switch whose adjacent links carried the least traffic.
  net::NodeId coldestSwitch() const;

  Controller& controller_;
  LoadMonitorConfig config_;
  std::vector<std::uint64_t> previousPackets_;
  net::SimTime previousTime_ = 0;
  LoadReport last_;
};

}  // namespace pleroma::ctrl
