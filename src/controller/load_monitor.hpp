// Overload detection and reaction — the extension sketched in the paper's
// conclusion (Sec 8: "new mechanisms need to be introduced in order to
// detect and react to overload situations in the presence of a dynamic
// workload").
//
// The monitor periodically samples the data plane's per-link packet
// counters and computes per-link rates over the sampling window. When the
// hottest switch-switch link exceeds `hotLinkThreshold` times the mean
// rate, the monitor reacts by re-rooting the spanning tree that embeds the
// most paths across that link: the rebuilt shortest-path tree is rooted at
// the coldest switch, steering its traffic onto less-utilised links (this
// exploits PLEROMA's multiple independently configurable trees, Sec 3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "controller/controller.hpp"
#include "net/congestion.hpp"

namespace pleroma::ctrl {

struct LoadMonitorConfig {
  /// A link is "hot" when its rate exceeds threshold * mean rate of used
  /// switch-switch links.
  double hotLinkThreshold = 2.0;
  /// With a CongestionMonitor attached: an EWMA congestion score at or
  /// above this also flags an overload (a standing queue or losses on some
  /// link), even when packet rates alone look balanced.
  double congestionScoreThreshold = 1.0;
  /// How strongly congestion inflates Dijkstra edge weights during a
  /// rebalancing reroot: cost(l) = latency(l) * (1 + factor * score(l) /
  /// maxScore). 0 disables cost shaping (reroot moves the root only).
  double congestionFactor = 8.0;
  /// Sample windows after a successful reroot during which
  /// rebalanceOnce() declines to act again. The congestion EWMA needs a
  /// few windows to reflect the *new* routing; reacting to the stale
  /// score of the link just vacated re-roots the next tree onto the same
  /// detour and the trees ping-pong between paths. 0 = react every window.
  int rebalanceCooldown = 2;
};

struct LinkLoad {
  net::LinkId link = net::kInvalidLink;
  std::uint64_t packetsInWindow = 0;
};

struct LoadReport {
  net::SimTime windowStart = 0;
  net::SimTime windowEnd = 0;
  std::vector<LinkLoad> links;   ///< switch-switch links with traffic, hottest first
  double meanPackets = 0.0;
  bool overloaded = false;       ///< hottest link exceeded the threshold
};

class LoadMonitor {
 public:
  LoadMonitor(Controller& controller, LoadMonitorConfig config = {});

  /// Wires in the data plane's congestion monitor (DESIGN.md §15): sample()
  /// then also treats a link whose EWMA congestion score reaches
  /// congestionScoreThreshold as hot, and rebalanceOnce() reroots with
  /// congestion-inflated Dijkstra costs so the rebuilt tree routes *around*
  /// the hot links rather than merely from a different root. The monitor
  /// must outlive this LoadMonitor.
  void attachCongestion(const net::CongestionMonitor* congestion) {
    congestion_ = congestion;
  }

  /// Samples the link counters, returning the load of the window since the
  /// previous sample.
  LoadReport sample();

  /// If the last report flagged an overload, re-roots the tree with the
  /// most paths across the hottest link at the coldest reachable switch
  /// (with congestion-weighted link costs when a CongestionMonitor is
  /// attached). Returns whether a tree was re-rooted.
  bool rebalanceOnce();

  /// Periodic closed-loop mode: every `interval` of virtual time, sample()
  /// then rebalanceOnce(). Runs as a slow-lane simulator task (sequential,
  /// exact virtual instants), so the control loop is deterministic at any
  /// thread count. The LoadMonitor must outlive the pending task (or be
  /// stopped and the event queue drained).
  void startPeriodic(net::SimTime interval);
  void stopPeriodic() noexcept { periodicInterval_ = 0; }
  bool periodicEnabled() const noexcept { return periodicInterval_ > 0; }

  const LoadReport& lastReport() const noexcept { return last_; }
  /// Successful reroots triggered by rebalanceOnce(), cumulative.
  std::uint64_t rebalances() const noexcept { return rebalances_; }

 private:
  /// The tree embedding the most registered paths over `link`, or -1.
  int busiestTreeOn(net::LinkId link) const;
  /// The switch whose adjacent links carried the least traffic.
  net::NodeId coldestSwitch() const;
  /// Congestion-inflated Dijkstra edge weights, or nullptr when no
  /// congestion monitor is attached / everything is calm. Writes scratch_.
  const std::vector<net::SimTime>* congestionCosts();
  void scheduleTick();

  Controller& controller_;
  LoadMonitorConfig config_;
  const net::CongestionMonitor* congestion_ = nullptr;
  std::vector<std::uint64_t> previousPackets_;
  net::SimTime previousTime_ = 0;
  LoadReport last_;
  std::vector<net::SimTime> scratch_;  ///< cost vector, reused per reroot
  std::uint64_t rebalances_ = 0;
  int cooldown_ = 0;  ///< windows left before rebalanceOnce() may act again
  net::SimTime periodicInterval_ = 0;
  bool tickArmed_ = false;
};

}  // namespace pleroma::ctrl
