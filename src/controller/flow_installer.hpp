// Flow-table maintenance (Sec 3.3.2, Algorithm 1 lines 31-51). The
// incremental `installPath` applies the paper's five cover/partial-cover
// cases as flows are added for a new (publisher, subscriber) route; the
// `reconcileSwitch` pass diffs a switch against its required flow set and
// is used for removals — producing exactly the delete/downgrade behaviour
// of Sec 3.3.3 — as well as for tree merges and re-indexing.
//
// Priorities: a flow's priority is its dz length. Longer-dz flows thereby
// always rank above any covering (shorter-dz) flow, which is the invariant
// Algorithm 1's increasePriority() calls establish.
//
// The installer keeps a per-switch *mirror* of installed flows, keyed by dz
// in trie order. Covering flows are found by walking the dz's prefixes;
// covered flows are a contiguous range after the dz — so the five cases
// cost O(log n + answers) instead of a full TCAM scan per install.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "controller/tree.hpp"
#include "openflow/control_channel.hpp"

namespace pleroma::ctrl {

class FlowInstaller {
 public:
  explicit FlowInstaller(openflow::ControlChannel& channel) : channel_(channel) {}

  /// Installs flows for forwarding the subspaces of `dzSet` along `hops`
  /// (Algorithm 1's flowAddition, one invocation per dz per hop).
  void installPath(const dz::DzSet& dzSet, const std::vector<RouteHop>& hops);

  /// Brings a switch's flow table to exactly `required` (match-keyed diff:
  /// missing entries are added, differing ones modified, surplus deleted).
  /// Entries must stem from dz encodings (priority = dz length).
  void reconcileSwitch(net::NodeId sw, const std::vector<net::FlowEntry>& required);

  /// Widens the batching unit from a single installPath / reconcileSwitch
  /// call to a whole controller operation: while a scope is open, deferred
  /// mods keep accumulating, and the outermost scope's destructor flushes
  /// them as one batch per touched switch. An operation whose routes cross
  /// the same switch several times then sends one message to it instead of
  /// one per visit. Nestable; a no-op when batching is disabled.
  class BatchScope {
   public:
    explicit BatchScope(FlowInstaller& installer) : installer_(installer) {
      ++installer_.batchDepth_;
    }
    ~BatchScope() {
      if (--installer_.batchDepth_ == 0) installer_.flushBatch();
    }
    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;

   private:
    FlowInstaller& installer_;
  };

  // ---- per-switch TCAM entry budget (Sec 3 coarsening) -----------------
  //
  // When a switch's mirror would exceed its budget, the installer coarsens
  // that switch's flows: the switch gets a sticky truncation length L, and
  // every entry longer than L collapses into its length-L prefix carrying
  // the union of the collapsed actions. Forwarding becomes a spatial
  // superset — false positives, never misses — exactly the shortened-dz
  // degradation of the paper's Sec 3 case logic, instead of a failed
  // install. The length is chosen deterministically (the longest L whose
  // projected entry count fits), so standby promotion replay and
  // Reconciler audits reproduce the identical coarsened mirror.

  /// Default budget for every switch (0 = unlimited).
  void setTcamBudget(std::size_t entries) { defaultBudget_ = entries; }
  /// Per-switch override (0 = unlimited for that switch).
  void setTcamBudget(net::NodeId sw, std::size_t entries) {
    budgetOverride_[sw] = entries;
  }
  std::size_t tcamBudget(net::NodeId sw) const;

  /// The switch's current truncation length; -1 while uncoarsened.
  int coarsenLength(net::NodeId sw) const;

  struct CoarsenStats {
    std::uint64_t events = 0;            ///< budget-triggered coarsen passes
    std::uint64_t entriesCollapsed = 0;  ///< mirror entries merged away
    /// Σ per-entry subspace volume gained by truncation — an analytic
    /// proxy for the induced false-positive overhead (Sec 5).
    double addedVolume = 0.0;
  };
  const CoarsenStats& coarsenStats() const noexcept { return coarsenStats_; }

  /// Installed entries across all switch mirrors (the fig7b/7d-class
  /// entry-count series).
  std::size_t totalMirrorEntries() const noexcept;

  /// Deterministic byte accounting of the mirrors' element payload
  /// (entries + their action lists; no container overhead or capacity).
  std::size_t stateBytes() const noexcept;

  /// The controller-side view of a switch's flows, keyed by dz.
  const std::map<dz::DzExpression, net::FlowEntry>& mirror(net::NodeId sw) const;

  /// Drops the mirror of a switch whose state is gone (node failure) or
  /// about to be rebuilt from scratch (reconnect with an empty TCAM).
  /// Subsequent installs/reconciles re-issue every needed flow as an add.
  void forgetSwitch(net::NodeId sw) { mirrors_.erase(sw); }

  /// Resolves per-case counters under "flow_installer.*": how often each
  /// of Algorithm 1's five flow-addition cases fired, plus reconcile passes.
  void attachMetrics(obs::MetricsRegistry& reg);

  openflow::ControlChannel& channel() noexcept { return channel_; }

 private:
  using SwitchMirror = std::map<dz::DzExpression, net::FlowEntry>;

  void installOne(const dz::DzExpression& d, const RouteHop& hop);
  void apply(openflow::FlowModType type, net::NodeId sw, const dz::DzExpression& d,
             const net::FlowEntry& entry);
  /// The dz length cap installs to `sw` are truncated to (kMaxDzLength
  /// while the switch is uncoarsened).
  int lengthCapFor(net::NodeId sw) const;
  /// Coarsens `sw` until its mirror fits the budget (no-op within budget).
  void enforceBudget(net::NodeId sw);
  /// Rewrites `sw`'s mirror as the length-`cap` projection and emits the
  /// resulting flow-mod diff.
  void coarsenTo(net::NodeId sw, int cap);
  /// Sends the mods accumulated while the channel had batching enabled as
  /// coalesced per-switch batch messages. No-op otherwise.
  void flushBatch();
  /// Flush point at the end of installPath / reconcileSwitch; deferred
  /// while a BatchScope is open.
  void maybeFlush() {
    if (batchDepth_ == 0) flushBatch();
  }

  openflow::ControlChannel& channel_;
  std::unordered_map<net::NodeId, SwitchMirror> mirrors_;
  /// Mods deferred by apply() while batching: one installPath() /
  /// reconcileSwitch() call (or one enclosing BatchScope) flushes as one
  /// batch per touched switch.
  std::vector<openflow::FlowMod> batch_;
  int batchDepth_ = 0;

  std::size_t defaultBudget_ = 0;  ///< 0 = unlimited
  std::unordered_map<net::NodeId, std::size_t> budgetOverride_;
  /// Sticky per-switch truncation lengths; absent while uncoarsened.
  std::unordered_map<net::NodeId, int> coarsenLen_;
  CoarsenStats coarsenStats_;

  /// Per-case counters of Algorithm 1's flowAddition (null until attached):
  /// 1 = fresh add, 2 = covered by an existing flow, 3 = finer flow
  /// subsumed and deleted, 4 = new/exact flow extended with coarser or new
  /// actions, 5 = finer shadowing flow extended.
  obs::Counter* obsCase1_ = nullptr;
  obs::Counter* obsCase2_ = nullptr;
  obs::Counter* obsCase3_ = nullptr;
  obs::Counter* obsCase4_ = nullptr;
  obs::Counter* obsCase5_ = nullptr;
  obs::Counter* obsReconciles_ = nullptr;
  obs::Counter* obsCoarsens_ = nullptr;
};

}  // namespace pleroma::ctrl
