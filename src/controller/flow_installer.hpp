// Flow-table maintenance (Sec 3.3.2, Algorithm 1 lines 31-51). The
// incremental `installPath` applies the paper's five cover/partial-cover
// cases as flows are added for a new (publisher, subscriber) route; the
// `reconcileSwitch` pass diffs a switch against its required flow set and
// is used for removals — producing exactly the delete/downgrade behaviour
// of Sec 3.3.3 — as well as for tree merges and re-indexing.
//
// Priorities: a flow's priority is its dz length. Longer-dz flows thereby
// always rank above any covering (shorter-dz) flow, which is the invariant
// Algorithm 1's increasePriority() calls establish.
//
// The installer keeps a per-switch *mirror* of installed flows, keyed by dz
// in trie order. Covering flows are found by walking the dz's prefixes;
// covered flows are a contiguous range after the dz — so the five cases
// cost O(log n + answers) instead of a full TCAM scan per install.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "controller/tree.hpp"
#include "openflow/control_channel.hpp"

namespace pleroma::ctrl {

class FlowInstaller {
 public:
  explicit FlowInstaller(openflow::ControlChannel& channel) : channel_(channel) {}

  /// Installs flows for forwarding the subspaces of `dzSet` along `hops`
  /// (Algorithm 1's flowAddition, one invocation per dz per hop).
  void installPath(const dz::DzSet& dzSet, const std::vector<RouteHop>& hops);

  /// Brings a switch's flow table to exactly `required` (match-keyed diff:
  /// missing entries are added, differing ones modified, surplus deleted).
  /// Entries must stem from dz encodings (priority = dz length).
  void reconcileSwitch(net::NodeId sw, const std::vector<net::FlowEntry>& required);

  /// Widens the batching unit from a single installPath / reconcileSwitch
  /// call to a whole controller operation: while a scope is open, deferred
  /// mods keep accumulating, and the outermost scope's destructor flushes
  /// them as one batch per touched switch. An operation whose routes cross
  /// the same switch several times then sends one message to it instead of
  /// one per visit. Nestable; a no-op when batching is disabled.
  class BatchScope {
   public:
    explicit BatchScope(FlowInstaller& installer) : installer_(installer) {
      ++installer_.batchDepth_;
    }
    ~BatchScope() {
      if (--installer_.batchDepth_ == 0) installer_.flushBatch();
    }
    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;

   private:
    FlowInstaller& installer_;
  };

  /// The controller-side view of a switch's flows, keyed by dz.
  const std::map<dz::DzExpression, net::FlowEntry>& mirror(net::NodeId sw) const;

  /// Drops the mirror of a switch whose state is gone (node failure) or
  /// about to be rebuilt from scratch (reconnect with an empty TCAM).
  /// Subsequent installs/reconciles re-issue every needed flow as an add.
  void forgetSwitch(net::NodeId sw) { mirrors_.erase(sw); }

  /// Resolves per-case counters under "flow_installer.*": how often each
  /// of Algorithm 1's five flow-addition cases fired, plus reconcile passes.
  void attachMetrics(obs::MetricsRegistry& reg);

  openflow::ControlChannel& channel() noexcept { return channel_; }

 private:
  using SwitchMirror = std::map<dz::DzExpression, net::FlowEntry>;

  void installOne(const dz::DzExpression& d, const RouteHop& hop);
  void apply(openflow::FlowModType type, net::NodeId sw, const dz::DzExpression& d,
             const net::FlowEntry& entry);
  /// Sends the mods accumulated while the channel had batching enabled as
  /// coalesced per-switch batch messages. No-op otherwise.
  void flushBatch();
  /// Flush point at the end of installPath / reconcileSwitch; deferred
  /// while a BatchScope is open.
  void maybeFlush() {
    if (batchDepth_ == 0) flushBatch();
  }

  openflow::ControlChannel& channel_;
  std::unordered_map<net::NodeId, SwitchMirror> mirrors_;
  /// Mods deferred by apply() while batching: one installPath() /
  /// reconcileSwitch() call (or one enclosing BatchScope) flushes as one
  /// batch per touched switch.
  std::vector<openflow::FlowMod> batch_;
  int batchDepth_ = 0;

  /// Per-case counters of Algorithm 1's flowAddition (null until attached):
  /// 1 = fresh add, 2 = covered by an existing flow, 3 = finer flow
  /// subsumed and deleted, 4 = new/exact flow extended with coarser or new
  /// actions, 5 = finer shadowing flow extended.
  obs::Counter* obsCase1_ = nullptr;
  obs::Counter* obsCase2_ = nullptr;
  obs::Counter* obsCase3_ = nullptr;
  obs::Counter* obsCase4_ = nullptr;
  obs::Counter* obsCase5_ = nullptr;
  obs::Counter* obsReconciles_ = nullptr;
};

}  // namespace pleroma::ctrl
