// Controller failure detection and standby promotion (the tentpole of the
// high-availability layer). The manager heartbeats the primary controller
// over its own ControlChannel (OpenFlow echo round trips, exposed to the
// channel's seeded fault model); a configurable run of consecutive missed
// echoes declares the primary dead and promotes the StandbyController:
//
//   1. The standby replays its replicated command log against a fresh
//      Controller with a muted channel — rebuilding the authoritative
//      *intent* (trees, registry, per-switch flow mirror) with zero wire
//      traffic (see standby.hpp).
//   2. The promoted controller claims mastership of every reachable switch
//      (OFPT_ROLE_REQUEST) and snapshots every TCAM through one batched
//      flow-stats sweep.
//   3. A Reconciler anti-entropy pass diffs mirrored intent against actual
//      switch state and repairs only the delta — no global flush; entries
//      that survived the dead primary keep forwarding throughout.
//
// While the primary is dead the data plane runs fail-soft
// (Network::setFailSoft): existing TCAM entries keep forwarding, misses
// are parked in finite per-switch buffers instead of dropped, and once the
// repair converges the buffers are replayed — so the only events lost to a
// controller death are misses beyond the buffer budget.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "controller/controller.hpp"
#include "controller/reconciler.hpp"
#include "controller/standby.hpp"
#include "openflow/control_channel.hpp"

namespace pleroma::ctrl {

struct FailoverConfig {
  /// Heartbeat (echo) period towards the primary controller.
  net::SimTime heartbeatInterval = 10 * net::kMillisecond;
  /// Consecutive missed echoes before the primary is declared dead.
  int missThreshold = 3;
  /// Engage data-plane fail-soft mode for the failover window (park TCAM
  /// misses instead of dropping them; replay after repair).
  bool failSoft = true;
  /// Drop probability of the heartbeat channel (a lossy control network
  /// can miss echoes from a live primary — spurious detection).
  double heartbeatDropProbability = 0.0;
  /// Seed of the heartbeat channel's fault Rng.
  std::uint64_t heartbeatSeed = 0x48B5EA7ULL;
  /// Seed the promoted controller's channel fault Rng is reset to, so a
  /// promotion yields the same repair sequence at any thread count.
  std::uint64_t promotedChannelSeed = 0x9E0C0DE5ULL;
  /// Round budget of the post-promotion reconciliation loop.
  std::size_t repairRoundLimit = 16;
};

struct FailoverStats {
  std::uint64_t promotions = 0;
  /// Detections declared while the primary was actually alive (heartbeats
  /// lost to the channel, not to a death).
  std::uint64_t spuriousDetections = 0;
  std::uint64_t heartbeatsSent = 0;
  std::uint64_t heartbeatsMissed = 0;

  // Timeline of the (single) primary death, -1 = not yet.
  net::SimTime primaryDiedAt = -1;
  net::SimTime detectedAt = -1;   ///< missThreshold-th echo declared dead
  net::SimTime repairedAt = -1;   ///< post-promotion reconcile converged

  // Promotion repair accounting.
  std::size_t switchesAudited = 0;   ///< stats-sweep replies received
  std::uint64_t entriesSurviving = 0;  ///< TCAM entries found intact
  std::uint64_t repairFlowMods = 0;  ///< mods the anti-entropy pass issued
  std::size_t repairRounds = 0;

  // Fail-soft accounting over the failover window.
  std::uint64_t eventsBuffered = 0;
  std::uint64_t eventsDroppedBufferFull = 0;
  std::uint64_t eventsReplayed = 0;

  net::SimTime detectionLatency() const noexcept {
    return primaryDiedAt >= 0 && detectedAt >= 0 ? detectedAt - primaryDiedAt
                                                 : -1;
  }
  /// Death → repaired tables + replayed buffers: the event-loss window.
  net::SimTime failoverWindow() const noexcept {
    return primaryDiedAt >= 0 && repairedAt >= 0 ? repairedAt - primaryDiedAt
                                                 : -1;
  }
};

class FailoverManager {
 public:
  /// `standby` must outlive the manager and already follow `primary`.
  FailoverManager(Controller& primary, StandbyController& standby,
                  FailoverConfig config = {});

  /// Arms the heartbeat. The primary must NOT have a periodic Reconciler
  /// enabled: promotion runs a nested convergence loop (sim.run()) from
  /// inside the heartbeat tick, which never drains while a self-rearming
  /// tick is live.
  void start();
  /// Disarms the heartbeat (no further ticks fire).
  void stop();
  bool running() const noexcept { return running_; }

  /// Fault injection: kills the primary controller process. Echoes stop
  /// being answered; detection and promotion follow from the heartbeat
  /// schedule. When configured, the data plane enters fail-soft mode now —
  /// switches notice the dead control session via their own (local) echo
  /// timeout, modelled as immediate.
  void killPrimary();
  bool primaryAlive() const noexcept { return primaryAlive_; }

  /// Detects + promotes immediately, bypassing the heartbeat schedule
  /// (benches isolating repair cost from detection latency).
  void forcePromotion();

  bool promoted() const noexcept { return promotedCtrl_ != nullptr; }
  /// The controller currently in charge: the primary until promotion, the
  /// promoted replica after.
  Controller& active() noexcept {
    return promotedCtrl_ != nullptr ? *promotedCtrl_ : primary_;
  }

  /// Invoked right after a promotion's repair converged, with the promoted
  /// controller (e.g. to re-attach observability).
  void setPromotionCallback(std::function<void(Controller&)> cb) {
    onPromoted_ = std::move(cb);
  }
  /// Worker pool handed to the promoted controller (parallel rebuilds).
  void setWorkerPool(util::WorkerPool* pool) noexcept { pool_ = pool; }

  const FailoverStats& stats() const noexcept { return stats_; }
  const FailoverConfig& config() const noexcept { return config_; }
  openflow::ControlChannel& heartbeatChannel() noexcept { return hbChannel_; }

  /// Resolves "failover.*" metric handles.
  void attachMetrics(obs::MetricsRegistry& reg);

 private:
  void armTick();
  void onTick();
  void promote();

  Controller& primary_;
  StandbyController& standby_;
  FailoverConfig config_;
  /// The manager's own control network towards the primary (heartbeats
  /// never share fault draws with the data-plane channel).
  openflow::ControlChannel hbChannel_;
  std::unique_ptr<Controller> promotedCtrl_;
  util::WorkerPool* pool_ = nullptr;
  std::function<void(Controller&)> onPromoted_;

  bool running_ = false;
  bool primaryAlive_ = true;
  int consecutiveMisses_ = 0;
  FailoverStats stats_;

  // Miss-buffer counter snapshot taken at killPrimary(), so the stats
  // report this window's fail-soft activity, not the network's lifetime.
  std::uint64_t bufferedAtKill_ = 0;
  std::uint64_t droppedAtKill_ = 0;
  std::uint64_t replayedAtKill_ = 0;

  obs::Counter* obsPromotions_ = nullptr;
  obs::Counter* obsSpurious_ = nullptr;
  obs::Counter* obsHeartbeats_ = nullptr;
  obs::Counter* obsMisses_ = nullptr;
  obs::Counter* obsRepairMods_ = nullptr;
  obs::Counter* obsReplayed_ = nullptr;
  obs::Gauge* obsDetectionLatency_ = nullptr;
  obs::Gauge* obsFailoverWindow_ = nullptr;
};

}  // namespace pleroma::ctrl
