#include "controller/flow_installer.hpp"

#include <algorithm>
#include <cassert>
#include <optional>

namespace pleroma::ctrl {

namespace {

/// Action-subset half of the flow containment relation (Sec 3.3.2): every
/// action of fl2 appears in fl1 (same port and, for terminal actions, the
/// same rewrite).
bool actionsSubset(const net::FlowEntry& fl2, const net::FlowEntry& fl1) {
  return std::all_of(fl2.actions.begin(), fl2.actions.end(),
                     [&](const net::FlowAction& a2) {
                       return std::any_of(fl1.actions.begin(), fl1.actions.end(),
                                          [&](const net::FlowAction& a1) {
                                            return a1 == a2;
                                          });
                     });
}

void mergeActions(net::FlowEntry& into, const net::FlowEntry& from) {
  for (const net::FlowAction& a : from.actions) {
    into.addOutPort(a.port, a.setDestination);
  }
}

}  // namespace

const std::map<dz::DzExpression, net::FlowEntry>& FlowInstaller::mirror(
    net::NodeId sw) const {
  static const SwitchMirror kEmpty;
  const auto it = mirrors_.find(sw);
  return it == mirrors_.end() ? kEmpty : it->second;
}

void FlowInstaller::apply(openflow::FlowModType type, net::NodeId sw,
                          const dz::DzExpression& d, const net::FlowEntry& entry) {
  // Callers pass references into the mirror itself (e.g. m.at(key) for a
  // delete), so the FlowMod must be built before the mirror mutation below
  // invalidates `entry`.
  openflow::FlowMod mod{type, sw, entry};
  SwitchMirror& m = mirrors_[sw];
  switch (type) {
    case openflow::FlowModType::kAdd:
    case openflow::FlowModType::kModify:
      m[d] = entry;
      break;
    case openflow::FlowModType::kDelete:
      m.erase(d);
      break;
  }
  if (channel_.batchingEnabled()) {
    batch_.push_back(std::move(mod));
  } else {
    channel_.send(mod);
  }
}

void FlowInstaller::flushBatch() {
  if (batch_.empty()) return;
  channel_.sendBatch(batch_);
  batch_.clear();
}

void FlowInstaller::installPath(const dz::DzSet& dzSet,
                                const std::vector<RouteHop>& hops) {
  for (const dz::DzExpression& d : dzSet) {
    for (const RouteHop& hop : hops) installOne(d, hop);
  }
  maybeFlush();
}

void FlowInstaller::installOne(const dz::DzExpression& d, const RouteHop& hop) {
  net::FlowEntry fln;
  fln.match = dz::dzToPrefix(d);
  fln.priority = d.length();
  fln.actions.push_back(net::FlowAction{hop.outPort, hop.rewrite});

  SwitchMirror& m = mirrors_[hop.switchNode];

  // Exact-dz flow already present: extend its instruction set in place.
  // The new actions must also propagate to every finer flow this one
  // covers (case 5): those flows shadow it in the TCAM, so without the
  // propagation events in their subspace would miss the new destination.
  if (const auto exact = m.find(d); exact != m.end()) {
    if (actionsSubset(fln, exact->second)) {
      if (obsCase2_ != nullptr) obsCase2_->inc();
      return;  // case 2, identical dz
    }
    net::FlowEntry updated = exact->second;
    mergeActions(updated, fln);
    if (obsCase4_ != nullptr) obsCase4_->inc();
    apply(openflow::FlowModType::kModify, hop.switchNode, d, updated);
    // The extended action set must propagate to the finer flows this one
    // covers — they shadow it in the TCAM. Finer flows that the extended
    // flow now subsumes are deleted (case 3); the rest gain the new
    // actions (case 5).
    std::vector<dz::DzExpression> toDelete;
    std::vector<std::pair<dz::DzExpression, net::FlowEntry>> toModify;
    for (auto it = m.upper_bound(d); it != m.end() && d.covers(it->first); ++it) {
      if (actionsSubset(it->second, updated)) {
        toDelete.push_back(it->first);
      } else if (!actionsSubset(fln, it->second)) {
        net::FlowEntry merged = it->second;
        mergeActions(merged, fln);
        toModify.emplace_back(it->first, std::move(merged));
      }
    }
    for (const dz::DzExpression& key : toDelete) {
      if (obsCase3_ != nullptr) obsCase3_->inc();
      apply(openflow::FlowModType::kDelete, hop.switchNode, key, m.at(key));
    }
    for (auto& [key, entry] : toModify) {
      if (obsCase5_ != nullptr) obsCase5_->inc();
      apply(openflow::FlowModType::kModify, hop.switchNode, key, entry);
    }
    return;
  }

  // Coarser flows: walk the proper prefixes of d present in the mirror.
  std::vector<const net::FlowEntry*> coarser;
  for (int len = 0; len < d.length(); ++len) {
    const auto it = m.find(d.prefix(len));
    if (it != m.end()) coarser.push_back(&it->second);
  }
  // Case 2: some coarser flow fully covers the new one — nothing to do.
  for (const net::FlowEntry* fle : coarser) {
    if (actionsSubset(fln, *fle)) {
      if (obsCase2_ != nullptr) obsCase2_->inc();
      return;
    }
  }
  // Case 4: coarser flows exist with other ports — the new (finer,
  // higher-priority) flow must forward to their ports too, because only the
  // first match is applied.
  if (!coarser.empty() && obsCase4_ != nullptr) obsCase4_->inc();
  for (const net::FlowEntry* fle : coarser) mergeActions(fln, *fle);

  // Finer flows: the contiguous trie range covered by d.
  std::vector<dz::DzExpression> toDelete;
  std::vector<std::pair<dz::DzExpression, net::FlowEntry>> toModify;
  for (auto it = m.upper_bound(d); it != m.end() && d.covers(it->first); ++it) {
    if (actionsSubset(it->second, fln)) {
      // Case 3: the new flow subsumes this finer flow — delete it.
      toDelete.push_back(it->first);
    } else {
      // Case 5: the finer flow shadows the new one for its subspace, so it
      // must additionally forward to the new flow's ports.
      net::FlowEntry updated = it->second;
      mergeActions(updated, fln);
      toModify.emplace_back(it->first, std::move(updated));
    }
  }
  for (const dz::DzExpression& key : toDelete) {
    if (obsCase3_ != nullptr) obsCase3_->inc();
    apply(openflow::FlowModType::kDelete, hop.switchNode, key, m.at(key));
  }
  for (auto& [key, updated] : toModify) {
    if (obsCase5_ != nullptr) obsCase5_->inc();
    apply(openflow::FlowModType::kModify, hop.switchNode, key, updated);
  }
  // Case 1 (or the add concluding cases 3-5).
  if (obsCase1_ != nullptr && coarser.empty() && toDelete.empty() &&
      toModify.empty()) {
    obsCase1_->inc();
  }
  apply(openflow::FlowModType::kAdd, hop.switchNode, d, fln);
}

void FlowInstaller::attachMetrics(obs::MetricsRegistry& reg) {
  obsCase1_ = &reg.counter("flow_installer.case1_fresh_add");
  obsCase2_ = &reg.counter("flow_installer.case2_covered");
  obsCase3_ = &reg.counter("flow_installer.case3_subsumed_delete");
  obsCase4_ = &reg.counter("flow_installer.case4_extend");
  obsCase5_ = &reg.counter("flow_installer.case5_shadow_modify");
  obsReconciles_ = &reg.counter("flow_installer.reconcile_passes");
}

void FlowInstaller::reconcileSwitch(net::NodeId sw,
                                    const std::vector<net::FlowEntry>& required) {
  if (obsReconciles_ != nullptr) obsReconciles_->inc();
  SwitchMirror& m = mirrors_[sw];

  std::map<dz::DzExpression, const net::FlowEntry*> wanted;
  for (const net::FlowEntry& e : required) {
    const auto d = dz::prefixToDz(e.match);
    assert(d.has_value());
    wanted.emplace(*d, &e);
  }

  std::vector<dz::DzExpression> toDelete;
  std::vector<std::pair<dz::DzExpression, const net::FlowEntry*>> toModify;
  for (const auto& [d, entry] : m) {
    const auto it = wanted.find(d);
    if (it == wanted.end()) {
      toDelete.push_back(d);
    } else if (*it->second != entry) {
      toModify.emplace_back(d, it->second);
    }
  }
  for (const dz::DzExpression& d : toDelete) {
    apply(openflow::FlowModType::kDelete, sw, d, m.at(d));
  }
  for (const auto& [d, entry] : toModify) {
    apply(openflow::FlowModType::kModify, sw, d, *entry);
  }
  for (const auto& [d, entry] : wanted) {
    if (!m.contains(d)) apply(openflow::FlowModType::kAdd, sw, d, *entry);
  }
  maybeFlush();
}

}  // namespace pleroma::ctrl
