#include "controller/flow_installer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>

namespace pleroma::ctrl {

namespace {

/// Action-subset half of the flow containment relation (Sec 3.3.2): every
/// action of fl2 appears in fl1 (same port and, for terminal actions, the
/// same rewrite).
bool actionsSubset(const net::FlowEntry& fl2, const net::FlowEntry& fl1) {
  return std::all_of(fl2.actions.begin(), fl2.actions.end(),
                     [&](const net::FlowAction& a2) {
                       return std::any_of(fl1.actions.begin(), fl1.actions.end(),
                                          [&](const net::FlowAction& a1) {
                                            return a1 == a2;
                                          });
                     });
}

void mergeActions(net::FlowEntry& into, const net::FlowEntry& from) {
  for (const net::FlowAction& a : from.actions) {
    into.addOutPort(a.port, a.setDestination);
  }
}

}  // namespace

const std::map<dz::DzExpression, net::FlowEntry>& FlowInstaller::mirror(
    net::NodeId sw) const {
  static const SwitchMirror kEmpty;
  const auto it = mirrors_.find(sw);
  return it == mirrors_.end() ? kEmpty : it->second;
}

void FlowInstaller::apply(openflow::FlowModType type, net::NodeId sw,
                          const dz::DzExpression& d, const net::FlowEntry& entry) {
  // Callers pass references into the mirror itself (e.g. m.at(key) for a
  // delete), so the FlowMod must be built before the mirror mutation below
  // invalidates `entry`.
  openflow::FlowMod mod{type, sw, entry};
  SwitchMirror& m = mirrors_[sw];
  switch (type) {
    case openflow::FlowModType::kAdd:
    case openflow::FlowModType::kModify:
      m[d] = entry;
      break;
    case openflow::FlowModType::kDelete:
      m.erase(d);
      break;
  }
  if (channel_.batchingEnabled()) {
    batch_.push_back(std::move(mod));
  } else {
    channel_.send(mod);
  }
}

void FlowInstaller::flushBatch() {
  if (batch_.empty()) return;
  channel_.sendBatch(batch_);
  batch_.clear();
}

void FlowInstaller::installPath(const dz::DzSet& dzSet,
                                const std::vector<RouteHop>& hops) {
  for (const dz::DzExpression& d : dzSet) {
    for (const RouteHop& hop : hops) installOne(d, hop);
  }
  // Within-budget switches exit on a size check; over-budget ones coarsen.
  for (const RouteHop& hop : hops) enforceBudget(hop.switchNode);
  maybeFlush();
}

void FlowInstaller::installOne(const dz::DzExpression& dRaw, const RouteHop& hop) {
  // A coarsened switch accepts no entry finer than its truncation length:
  // the piece folds into its prefix (actions merge below via case 4).
  const dz::DzExpression d = dRaw.truncated(lengthCapFor(hop.switchNode));
  net::FlowEntry fln;
  fln.match = dz::dzToPrefix(d);
  fln.priority = d.length();
  fln.actions.push_back(net::FlowAction{hop.outPort, hop.rewrite});

  SwitchMirror& m = mirrors_[hop.switchNode];

  // Exact-dz flow already present: extend its instruction set in place.
  // The new actions must also propagate to every finer flow this one
  // covers (case 5): those flows shadow it in the TCAM, so without the
  // propagation events in their subspace would miss the new destination.
  if (const auto exact = m.find(d); exact != m.end()) {
    if (actionsSubset(fln, exact->second)) {
      if (obsCase2_ != nullptr) obsCase2_->inc();
      return;  // case 2, identical dz
    }
    net::FlowEntry updated = exact->second;
    mergeActions(updated, fln);
    if (obsCase4_ != nullptr) obsCase4_->inc();
    apply(openflow::FlowModType::kModify, hop.switchNode, d, updated);
    // The extended action set must propagate to the finer flows this one
    // covers — they shadow it in the TCAM. Finer flows that the extended
    // flow now subsumes are deleted (case 3); the rest gain the new
    // actions (case 5).
    std::vector<dz::DzExpression> toDelete;
    std::vector<std::pair<dz::DzExpression, net::FlowEntry>> toModify;
    for (auto it = m.upper_bound(d); it != m.end() && d.covers(it->first); ++it) {
      if (actionsSubset(it->second, updated)) {
        toDelete.push_back(it->first);
      } else if (!actionsSubset(fln, it->second)) {
        net::FlowEntry merged = it->second;
        mergeActions(merged, fln);
        toModify.emplace_back(it->first, std::move(merged));
      }
    }
    for (const dz::DzExpression& key : toDelete) {
      if (obsCase3_ != nullptr) obsCase3_->inc();
      apply(openflow::FlowModType::kDelete, hop.switchNode, key, m.at(key));
    }
    for (auto& [key, entry] : toModify) {
      if (obsCase5_ != nullptr) obsCase5_->inc();
      apply(openflow::FlowModType::kModify, hop.switchNode, key, entry);
    }
    return;
  }

  // Coarser flows: walk the proper prefixes of d present in the mirror.
  std::vector<const net::FlowEntry*> coarser;
  for (int len = 0; len < d.length(); ++len) {
    const auto it = m.find(d.prefix(len));
    if (it != m.end()) coarser.push_back(&it->second);
  }
  // Case 2: some coarser flow fully covers the new one — nothing to do.
  for (const net::FlowEntry* fle : coarser) {
    if (actionsSubset(fln, *fle)) {
      if (obsCase2_ != nullptr) obsCase2_->inc();
      return;
    }
  }
  // Case 4: coarser flows exist with other ports — the new (finer,
  // higher-priority) flow must forward to their ports too, because only the
  // first match is applied.
  if (!coarser.empty() && obsCase4_ != nullptr) obsCase4_->inc();
  for (const net::FlowEntry* fle : coarser) mergeActions(fln, *fle);

  // Finer flows: the contiguous trie range covered by d.
  std::vector<dz::DzExpression> toDelete;
  std::vector<std::pair<dz::DzExpression, net::FlowEntry>> toModify;
  for (auto it = m.upper_bound(d); it != m.end() && d.covers(it->first); ++it) {
    if (actionsSubset(it->second, fln)) {
      // Case 3: the new flow subsumes this finer flow — delete it.
      toDelete.push_back(it->first);
    } else {
      // Case 5: the finer flow shadows the new one for its subspace, so it
      // must additionally forward to the new flow's ports.
      net::FlowEntry updated = it->second;
      mergeActions(updated, fln);
      toModify.emplace_back(it->first, std::move(updated));
    }
  }
  for (const dz::DzExpression& key : toDelete) {
    if (obsCase3_ != nullptr) obsCase3_->inc();
    apply(openflow::FlowModType::kDelete, hop.switchNode, key, m.at(key));
  }
  for (auto& [key, updated] : toModify) {
    if (obsCase5_ != nullptr) obsCase5_->inc();
    apply(openflow::FlowModType::kModify, hop.switchNode, key, updated);
  }
  // Case 1 (or the add concluding cases 3-5).
  if (obsCase1_ != nullptr && coarser.empty() && toDelete.empty() &&
      toModify.empty()) {
    obsCase1_->inc();
  }
  apply(openflow::FlowModType::kAdd, hop.switchNode, d, fln);
}

void FlowInstaller::attachMetrics(obs::MetricsRegistry& reg) {
  obsCase1_ = &reg.counter("flow_installer.case1_fresh_add");
  obsCase2_ = &reg.counter("flow_installer.case2_covered");
  obsCase3_ = &reg.counter("flow_installer.case3_subsumed_delete");
  obsCase4_ = &reg.counter("flow_installer.case4_extend");
  obsCase5_ = &reg.counter("flow_installer.case5_shadow_modify");
  obsReconciles_ = &reg.counter("flow_installer.reconcile_passes");
  obsCoarsens_ = &reg.counter("flow_installer.coarsen_passes");
}

void FlowInstaller::reconcileSwitch(net::NodeId sw,
                                    const std::vector<net::FlowEntry>& required) {
  if (obsReconciles_ != nullptr) obsReconciles_->inc();
  SwitchMirror& m = mirrors_[sw];

  // Required flows are exact intent; a coarsened switch holds their
  // length-capped projection instead (actions union per truncated key), so
  // a reconcile pass never resurrects entries past the budget.
  const int cap = lengthCapFor(sw);
  std::map<dz::DzExpression, net::FlowEntry> wanted;
  for (const net::FlowEntry& e : required) {
    const auto dOpt = dz::prefixToDz(e.match);
    assert(dOpt.has_value());
    const dz::DzExpression d = dOpt->truncated(cap);
    const auto [it, fresh] = wanted.try_emplace(d, e);
    if (d.length() != dOpt->length() && fresh) {
      it->second.match = dz::dzToPrefix(d);
      it->second.priority = d.length();
    } else if (!fresh) {
      mergeActions(it->second, e);
    }
  }

  std::vector<dz::DzExpression> toDelete;
  std::vector<std::pair<dz::DzExpression, const net::FlowEntry*>> toModify;
  for (const auto& [d, entry] : m) {
    const auto it = wanted.find(d);
    if (it == wanted.end()) {
      toDelete.push_back(d);
    } else if (it->second != entry) {
      toModify.emplace_back(d, &it->second);
    }
  }
  for (const dz::DzExpression& d : toDelete) {
    apply(openflow::FlowModType::kDelete, sw, d, m.at(d));
  }
  for (const auto& [d, entry] : toModify) {
    apply(openflow::FlowModType::kModify, sw, d, *entry);
  }
  for (const auto& [d, entry] : wanted) {
    if (!m.contains(d)) apply(openflow::FlowModType::kAdd, sw, d, entry);
  }
  enforceBudget(sw);
  maybeFlush();
}

// ---- TCAM budget / coarsening (Sec 3 + Sec 5) -----------------------------

std::size_t FlowInstaller::tcamBudget(net::NodeId sw) const {
  const auto it = budgetOverride_.find(sw);
  return it != budgetOverride_.end() ? it->second : defaultBudget_;
}

int FlowInstaller::coarsenLength(net::NodeId sw) const {
  const auto it = coarsenLen_.find(sw);
  return it != coarsenLen_.end() ? it->second : -1;
}

int FlowInstaller::lengthCapFor(net::NodeId sw) const {
  const auto it = coarsenLen_.find(sw);
  return it != coarsenLen_.end() ? it->second : dz::kMaxDzLength;
}

std::size_t FlowInstaller::totalMirrorEntries() const noexcept {
  std::size_t total = 0;
  for (const auto& [sw, m] : mirrors_) total += m.size();
  return total;
}

std::size_t FlowInstaller::stateBytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& [sw, m] : mirrors_) {
    for (const auto& [d, entry] : m) {
      bytes += sizeof(dz::DzExpression) + sizeof(net::FlowEntry);
      bytes += entry.actions.size() * sizeof(net::FlowAction);
    }
  }
  return bytes;
}

void FlowInstaller::enforceBudget(net::NodeId sw) {
  const std::size_t budget = tcamBudget(sw);
  if (budget == 0) return;
  const auto mit = mirrors_.find(sw);
  if (mit == mirrors_.end() || mit->second.size() <= budget) return;
  const SwitchMirror& m = mit->second;

  // Entries sharing a length-L prefix are adjacent in trie order, so the
  // projected entry count is the number of truncation-distinct neighbours.
  const auto projectedCount = [&m](int len) {
    std::size_t count = 0;
    std::optional<dz::DzExpression> prev;
    for (const auto& [d, e] : m) {
      dz::DzExpression t = d.truncated(len);
      if (!prev.has_value() || !(*prev == t)) ++count;
      prev = t;
    }
    return count;
  };

  int maxLen = 0;
  for (const auto& [d, e] : m) maxLen = std::max(maxLen, d.length());
  // The longest truncation length that fits: precision degrades no more
  // than the budget demands. projectedCount(0) == 1, so the loop ends.
  int cap = maxLen - 1;
  while (cap > 0 && projectedCount(cap) > budget) --cap;
  coarsenTo(sw, cap);
}

void FlowInstaller::coarsenTo(net::NodeId sw, int cap) {
  SwitchMirror& m = mirrors_[sw];
  const std::size_t before = m.size();
  double volumeBefore = 0.0;
  std::map<dz::DzExpression, net::FlowEntry> projected;
  for (const auto& [d, e] : m) {
    volumeBefore += std::ldexp(1.0, -d.length());
    const dz::DzExpression t = d.truncated(cap);
    const auto [it, fresh] = projected.try_emplace(t, e);
    if (fresh) {
      it->second.match = dz::dzToPrefix(t);
      it->second.priority = t.length();
    } else {
      mergeActions(it->second, e);
    }
  }
  double volumeAfter = 0.0;
  for (const auto& [d, e] : projected) volumeAfter += std::ldexp(1.0, -d.length());

  std::vector<dz::DzExpression> toDelete;
  for (const auto& [d, e] : m) {
    if (!projected.contains(d)) toDelete.push_back(d);
  }
  for (const dz::DzExpression& d : toDelete) {
    apply(openflow::FlowModType::kDelete, sw, d, m.at(d));
  }
  for (const auto& [d, e] : projected) {
    const auto cur = m.find(d);
    if (cur == m.end()) {
      apply(openflow::FlowModType::kAdd, sw, d, e);
    } else if (cur->second != e) {
      apply(openflow::FlowModType::kModify, sw, d, e);
    }
  }

  coarsenLen_[sw] = cap;
  ++coarsenStats_.events;
  coarsenStats_.entriesCollapsed += before - m.size();
  coarsenStats_.addedVolume += volumeAfter - volumeBefore;
  if (obsCoarsens_ != nullptr) obsCoarsens_->inc();
}

}  // namespace pleroma::ctrl
