#include "controller/standby.hpp"

#include <cassert>
#include <utility>

namespace pleroma::ctrl {

StandbyController::StandbyController(Controller& primary)
    : space_(primary.space()),
      network_(primary.network()),
      scope_(primary.scope()),
      config_(primary.config()),
      source_(&primary) {
  // Mid-stream attach cannot be replayed faithfully (tree shapes depend on
  // the full operation interleaving); the standby must see history from the
  // first command.
  assert(primary.advertisementCount() == 0 && primary.subscriptionCount() == 0);
  follow(primary);
}

StandbyController::StandbyController(Controller& promoted,
                                     const StandbyController& predecessor)
    : space_(predecessor.space_),
      network_(predecessor.network_),
      scope_(predecessor.scope_),
      config_(predecessor.config_),
      source_(&promoted),
      log_(predecessor.log_) {
  follow(promoted);
}

StandbyController::~StandbyController() {
  if (source_ != nullptr) source_->setIntentObserver(nullptr);
}

void StandbyController::follow(Controller& source) {
  source.setIntentObserver(
      [this](const IntentCommand& cmd) { log_.push_back(cmd); });
}

std::unique_ptr<Controller> StandbyController::promote(util::WorkerPool* pool) {
  if (source_ != nullptr) {
    source_->setIntentObserver(nullptr);
    source_ = nullptr;
  }
  auto next = std::make_unique<Controller>(space_, network_, scope_, config_);
  if (pool != nullptr) next->setWorkerPool(pool);
  // Muted replay: FlowInstaller updates the per-switch mirror before it
  // hands mods to the channel, so with the channel muted the replay builds
  // the full intent mirror without transmitting, applying, or counting a
  // single wire message — and without drawing from the fault Rng, which
  // keeps promotion byte-identical across thread counts and fault seeds.
  next->channel().setMuted(true);
  {
    Controller::MutationScope mutationScope(*next);
    for (const IntentCommand& cmd : log_) replay(*next, cmd);
  }
  next->channel().setMuted(false);
  return next;
}

void StandbyController::replay(Controller& target, const IntentCommand& cmd) {
  switch (cmd.kind) {
    case IntentCommand::Kind::kAdvertise: {
      [[maybe_unused]] const PublisherId id =
          target.advertiseEndpoint(cmd.endpoint, cmd.dzSet, cmd.rect);
      assert(id == cmd.id);
      break;
    }
    case IntentCommand::Kind::kUnadvertise:
      target.unadvertise(cmd.id);
      break;
    case IntentCommand::Kind::kSubscribe: {
      [[maybe_unused]] const SubscriptionId id =
          target.subscribeEndpoint(cmd.endpoint, cmd.dzSet, cmd.rect);
      assert(id == cmd.id);
      break;
    }
    case IntentCommand::Kind::kUnsubscribe:
      target.unsubscribe(cmd.id);
      break;
    case IntentCommand::Kind::kLinkDown:
      target.onLinkDown(cmd.link);
      break;
    case IntentCommand::Kind::kLinkUp:
      target.onLinkUp(cmd.link);
      break;
    case IntentCommand::Kind::kSwitchDown:
      target.onSwitchDown(cmd.node);
      break;
    case IntentCommand::Kind::kSwitchUp:
      target.onSwitchUp(cmd.node);
      break;
    case IntentCommand::Kind::kReindex:
      target.reindex(cmd.dims);
      break;
  }
}

}  // namespace pleroma::ctrl
