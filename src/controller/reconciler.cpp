#include "controller/reconciler.hpp"

#include <map>
#include <vector>

namespace pleroma::ctrl {

void Reconciler::repair(openflow::FlowModType type, net::NodeId sw,
                        const net::FlowEntry& entry, ReconcileReport& report) {
  switch (type) {
    case openflow::FlowModType::kAdd:
      ++report.repairAdds;
      break;
    case openflow::FlowModType::kModify:
      ++report.repairModifies;
      break;
    case openflow::FlowModType::kDelete:
      ++report.repairDeletes;
      break;
  }
  ++totalRepairs_;
  if (obsRepairs_ != nullptr) obsRepairs_->inc();
  // Repairs bypass the installer: the mirror already *is* the intended
  // state, only the switch must move. They are collected per audited
  // switch and flushed as one sendBatch — a single message when the
  // channel batches, the identical per-mod sends otherwise.
  repairBatch_.push_back({type, sw, entry});
}

ReconcileReport Reconciler::reconcileSwitch(net::NodeId sw) {
  ReconcileReport report;
  openflow::ControlChannel& channel = controller_.channel();
  // A failed switch has no state to audit: its table was cleared and the
  // mirror forgotten, so it is vacuously converged (neither audited nor
  // skipped — a permanent outage must not block convergence).
  if (!controller_.switchActive(sw)) return report;
  if (!channel.switchConnected(sw) || !channel.quiescent(sw)) {
    ++report.switchesSkipped;
    if (obsSkips_ != nullptr) obsSkips_->inc();
    return report;
  }

  // Audit through the OpenFlow flow-stats read: the switch's actual entries
  // with their per-flow packet counters. A reply can still fail if the
  // control session dropped between the connectivity check and the read.
  const openflow::FlowStatsReply reply = channel.requestFlowStats(sw);
  if (!reply.ok) {
    ++report.switchesSkipped;
    if (obsSkips_ != nullptr) obsSkips_->inc();
    return report;
  }
  ++report.switchesAudited;
  if (obsAudits_ != nullptr) obsAudits_->inc();

  const auto& mirror = controller_.installer().mirror(sw);
  std::map<dz::DzExpression, const net::FlowEntry*> actual;
  std::vector<const net::FlowEntry*> orphans;
  for (const net::FlowEntry& entry : reply.entries) {
    report.matchedPacketsSeen += entry.matchedPackets;
    const auto d = dz::prefixToDz(entry.match);
    if (!d.has_value()) {
      orphans.push_back(&entry);
      continue;
    }
    actual.emplace(*d, &entry);
  }
  if (obsMatchedPackets_ != nullptr) {
    obsMatchedPackets_->add(static_cast<double>(report.matchedPacketsSeen));
  }

  // Intent side: every mirrored flow must exist on the switch, verbatim.
  for (const auto& [d, entry] : mirror) {
    const auto it = actual.find(d);
    if (it == actual.end()) {
      repair(openflow::FlowModType::kAdd, sw, entry, report);
    } else if (*it->second != entry) {
      repair(openflow::FlowModType::kModify, sw, entry, report);
    }
  }
  // Switch side: flows the intent does not know about are orphans (lost
  // deletes, duplicated adds applied after a delete, pre-failure residue).
  for (const auto& [d, entry] : actual) {
    if (!mirror.contains(d)) orphans.push_back(entry);
  }
  for (const net::FlowEntry* entry : orphans) {
    repair(openflow::FlowModType::kDelete, sw, *entry, report);
  }
  if (!repairBatch_.empty()) {
    controller_.channel().sendBatch(repairBatch_);
    repairBatch_.clear();
  }
  return report;
}

ReconcileReport Reconciler::reconcileAll() {
  ReconcileReport total;
  // A periodic tick can land between a rebuildTrees plan and its commit
  // (or inside a merge / re-index / promotion replay): the mirror is then
  // half-rewritten and diffing against it would issue repairs that the
  // commit immediately contradicts. Abandon the pass; the next tick (or
  // convergence round) retries against settled state.
  if (controller_.mutationInProgress()) {
    total.deferredForMutation = true;
    ++mutationSkips_;
    if (obsMutationSkips_ != nullptr) obsMutationSkips_->inc();
    last_ = total;
    return total;
  }
  for (const net::NodeId sw : controller_.scope().switches) {
    const ReconcileReport r = reconcileSwitch(sw);
    total.switchesAudited += r.switchesAudited;
    total.switchesSkipped += r.switchesSkipped;
    total.repairAdds += r.repairAdds;
    total.repairModifies += r.repairModifies;
    total.repairDeletes += r.repairDeletes;
    total.matchedPacketsSeen += r.matchedPacketsSeen;
  }
  ++rounds_;
  last_ = total;
  return total;
}

std::size_t Reconciler::runToConvergence(std::size_t maxRounds) {
  net::Simulator& sim = controller_.network().simulator();
  for (std::size_t round = 0; round < maxRounds; ++round) {
    // Drain in-flight mods (and their retries) so every switch is
    // quiescent and the audit sees settled state.
    sim.run();
    if (reconcileAll().clean()) return round;
  }
  sim.run();
  return maxRounds;
}

void Reconciler::attachMetrics(obs::MetricsRegistry& reg) {
  obsAudits_ = &reg.counter("reconciler.audits");
  obsSkips_ = &reg.counter("reconciler.skips");
  obsMutationSkips_ = &reg.counter("reconciler.mutation_skips");
  obsRepairs_ = &reg.counter("reconciler.repairs");
  obsMatchedPackets_ = &reg.gauge("reconciler.matched_packets_seen");
}

void Reconciler::enablePeriodic(net::SimTime interval) {
  periodicInterval_ = interval;
  if (!tickArmed_) scheduleTick();
}

void Reconciler::scheduleTick() {
  tickArmed_ = true;
  controller_.network().simulator().schedule(periodicInterval_, [this] {
    tickArmed_ = false;
    if (!periodicEnabled()) return;
    reconcileAll();
    scheduleTick();
  });
}

}  // namespace pleroma::ctrl
