// Hot-standby controller replica (controller high availability). The
// standby does not talk to any switch: it mirrors the primary's
// *advertisement / subscription intent* by recording the primary's command
// stream (Controller::setIntentObserver) into a replicated log. On
// promotion it replays that log against a fresh Controller whose control
// channel is muted — the replay rebuilds trees, path registry, and
// per-switch flow mirror purely in memory, with zero wire traffic — after
// which the FailoverManager reconciles the mirrored intent against actual
// switch state and repairs only the delta (no global flush).
//
// Replay fidelity rests on two primary-side properties: requests are
// processed strictly sequentially, and registration ids come from monotonic
// counters. Replaying the full history from an *empty* controller therefore
// reproduces ids and derived state exactly (asserted per command). A
// mid-stream snapshot would not — tree shapes depend on the operation
// interleaving — so a standby must attach before the primary registers
// anything (asserted at construction).
#pragma once

#include <memory>
#include <vector>

#include "controller/controller.hpp"
#include "controller/intent_log.hpp"

namespace pleroma::ctrl {

class StandbyController {
 public:
  /// Attaches to (and starts following) `primary`, which must not have
  /// processed any registration yet. Copies the primary's event space,
  /// scope, and configuration so the promoted replica is built against the
  /// same deployment parameters.
  explicit StandbyController(Controller& primary);

  /// Standby for an already-promoted controller (failover churn): inherits
  /// the predecessor standby's log — which `promoted` was built from — and
  /// follows `promoted` from there, so a second failover replays the full
  /// combined history.
  StandbyController(Controller& promoted, const StandbyController& predecessor);

  /// Detaches the observer from the followed controller. Lifetime
  /// contract: a still-following standby must be destroyed (or promoted,
  /// which stops following) before the controller it follows.
  ~StandbyController();
  StandbyController(const StandbyController&) = delete;
  StandbyController& operator=(const StandbyController&) = delete;

  /// Builds the promoted replica: a fresh Controller over the same network
  /// and scope whose channel is muted while the whole log replays (one
  /// MutationScope, so a periodic reconciler cannot audit the half-built
  /// mirror). The returned controller's mirror equals the dead primary's
  /// intent; its channel is unmuted and ready for reconciliation. The
  /// standby stops following its source controller.
  std::unique_ptr<Controller> promote(util::WorkerPool* pool = nullptr);

  std::size_t logSize() const noexcept { return log_.size(); }
  const std::vector<IntentCommand>& log() const noexcept { return log_; }

 private:
  void follow(Controller& source);
  static void replay(Controller& target, const IntentCommand& cmd);

  dz::EventSpace space_;
  net::Network& network_;
  Scope scope_;
  ControllerConfig config_;
  Controller* source_;  ///< the controller being followed (observer owner)
  std::vector<IntentCommand> log_;
};

}  // namespace pleroma::ctrl
