#include "controller/path_registry.hpp"

#include <algorithm>
#include <cassert>

#include "dz/ip_encoding.hpp"

namespace pleroma::ctrl {

const InstalledPath* PathRegistry::findPath(PathId id) const {
  const auto ti = treeOf_.find(id);
  if (ti == treeOf_.end()) return nullptr;
  return &shards_.at(ti->second).at(id);
}

PathId PathRegistry::add(InstalledPath path) {
  const PathId id = next_++;
  path.id = id;
  for (const RouteHop& hop : path.hops) bySwitch_[hop.switchNode].insert(id);
  bySubscription_[path.subscription].insert(id);
  byPublisher_[path.publisher].insert(id);
  treeOf_.emplace(id, path.treeId);
  shards_[path.treeId].emplace(id, std::move(path));
  return id;
}

void PathRegistry::remove(PathId id) {
  const auto ti = treeOf_.find(id);
  if (ti == treeOf_.end()) return;
  const auto si = shards_.find(ti->second);
  assert(si != shards_.end());
  const auto it = si->second.find(id);
  assert(it != si->second.end());
  const InstalledPath& p = it->second;
  for (const RouteHop& hop : p.hops) {
    const auto bi = bySwitch_.find(hop.switchNode);
    if (bi != bySwitch_.end()) {
      bi->second.erase(id);
      if (bi->second.empty()) bySwitch_.erase(bi);
    }
  }
  auto dropFrom = [id](auto& index, std::int64_t key) {
    const auto ii = index.find(key);
    if (ii != index.end()) {
      ii->second.erase(id);
      if (ii->second.empty()) index.erase(ii);
    }
  };
  dropFrom(bySubscription_, p.subscription);
  dropFrom(byPublisher_, p.publisher);
  si->second.erase(it);
  if (si->second.empty()) shards_.erase(si);
  treeOf_.erase(ti);
}

void PathRegistry::setDz(PathId id, dz::DzSet dz) {
  const auto ti = treeOf_.find(id);
  assert(ti != treeOf_.end());
  shards_.at(ti->second).at(id).dz = std::move(dz);
}

std::size_t PathRegistry::stateBytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& [treeId, shard] : shards_) {
    for (const auto& [id, path] : shard) {
      bytes += sizeof(InstalledPath);
      bytes += path.hops.size() * sizeof(RouteHop);
      bytes += path.dz.size() * sizeof(dz::DzExpression);
    }
  }
  return bytes;
}

void PathRegistry::clear() {
  shards_.clear();
  treeOf_.clear();
  bySwitch_.clear();
  bySubscription_.clear();
  byPublisher_.clear();
}

std::vector<PathId> PathRegistry::sortedIds(
    const std::unordered_map<std::int64_t, std::unordered_set<PathId>>& index,
    std::int64_t key) {
  const auto it = index.find(key);
  if (it == index.end()) return {};
  std::vector<PathId> out(it->second.begin(), it->second.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PathId> PathRegistry::pathsOfSubscription(SubscriptionId s) const {
  return sortedIds(bySubscription_, s);
}

std::vector<PathId> PathRegistry::pathsOfPublisher(PublisherId p) const {
  return sortedIds(byPublisher_, p);
}

std::vector<PathId> PathRegistry::pathsOfTree(int treeId) const {
  const auto it = shards_.find(treeId);
  if (it == shards_.end()) return {};
  std::vector<PathId> out;
  out.reserve(it->second.size());
  for (const auto& [id, path] : it->second) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<net::NodeId> PathRegistry::switchesOf(
    const std::vector<PathId>& ids) const {
  std::vector<net::NodeId> out;
  for (const PathId id : ids) {
    const InstalledPath* path = findPath(id);
    if (path == nullptr) continue;
    for (const RouteHop& hop : path->hops) out.push_back(hop.switchNode);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool PathRegistry::alreadyCovered(PublisherId p, SubscriptionId s, int treeId,
                                  const dz::DzSet& dz) const {
  const auto it = bySubscription_.find(s);
  if (it == bySubscription_.end()) return false;
  for (const PathId id : it->second) {
    const InstalledPath& path = *findPath(id);
    if (path.publisher == p && path.treeId == treeId && path.dz.coversSet(dz)) {
      return true;
    }
  }
  return false;
}

std::vector<net::FlowEntry> PathRegistry::requiredFlows(net::NodeId sw) const {
  // 1. Contributions: for each dz forwarded through this switch, the set of
  //    (out-port, rewrite) actions that need its traffic.
  std::map<dz::DzExpression, std::map<net::PortId, std::optional<dz::Ipv6Address>>>
      contrib;
  const auto bi = bySwitch_.find(sw);
  if (bi == bySwitch_.end()) return {};
  for (const PathId id : bi->second) {
    const InstalledPath& path = *findPath(id);
    for (const RouteHop& hop : path.hops) {
      if (hop.switchNode != sw) continue;
      for (const dz::DzExpression& d : path.dz) {
        auto& actions = contrib[d];
        auto [it, inserted] = actions.emplace(hop.outPort, hop.rewrite);
        if (!inserted && hop.rewrite) it->second = hop.rewrite;
      }
    }
  }

  // 2. Walk contributions in trie order (prefixes before what they cover),
  //    maintaining the chain of contributed prefixes of the current dz as a
  //    stack whose top carries the cumulative inherited action set.
  std::vector<net::FlowEntry> out;
  struct StackItem {
    dz::DzExpression d;
    std::map<net::PortId, std::optional<dz::Ipv6Address>> cumulative;
  };
  std::vector<StackItem> stack;

  for (const auto& [d, actions] : contrib) {
    while (!stack.empty() && !stack.back().d.covers(d)) stack.pop_back();

    const auto* inherited = stack.empty() ? nullptr : &stack.back().cumulative;

    // The flow for d is unnecessary iff every one of its actions is already
    // served by coarser contributed flows — then events in d are handled by
    // the prefix flow (the "downgrade" of Sec 3.3.3 falls out of this).
    bool redundant = inherited != nullptr;
    if (redundant) {
      for (const auto& [port, rewrite] : actions) {
        const auto it = inherited->find(port);
        if (it == inherited->end() || it->second != rewrite) {
          redundant = false;
          break;
        }
      }
    }

    std::map<net::PortId, std::optional<dz::Ipv6Address>> cumulative =
        inherited ? *inherited
                  : std::map<net::PortId, std::optional<dz::Ipv6Address>>{};
    for (const auto& [port, rewrite] : actions) {
      auto [it, inserted] = cumulative.emplace(port, rewrite);
      if (!inserted && rewrite) it->second = rewrite;
    }

    if (!redundant) {
      net::FlowEntry entry;
      entry.match = dz::dzToPrefix(d);
      entry.priority = d.length();
      for (const auto& [port, rewrite] : cumulative) {
        entry.actions.push_back(net::FlowAction{port, rewrite});
      }
      out.push_back(std::move(entry));
    }
    stack.push_back(StackItem{d, std::move(cumulative)});
  }
  return out;
}

std::vector<net::NodeId> PathRegistry::allSwitches() const {
  std::vector<net::NodeId> out;
  out.reserve(bySwitch_.size());
  for (const auto& [sw, ids] : bySwitch_) out.push_back(sw);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pleroma::ctrl
