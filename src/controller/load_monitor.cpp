#include "controller/load_monitor.hpp"

#include <algorithm>
#include <limits>

namespace pleroma::ctrl {

LoadMonitor::LoadMonitor(Controller& controller, LoadMonitorConfig config)
    : controller_(controller), config_(config) {
  auto& net = controller_.network();
  previousPackets_.assign(static_cast<std::size_t>(net.topology().linkCount()), 0);
  for (net::LinkId l = 0; l < net.topology().linkCount(); ++l) {
    previousPackets_[static_cast<std::size_t>(l)] = net.linkCounters(l).packets;
  }
  previousTime_ = net.simulator().now();
}

LoadReport LoadMonitor::sample() {
  auto& net = controller_.network();
  const net::Topology& topo = net.topology();

  LoadReport report;
  report.windowStart = previousTime_;
  report.windowEnd = net.simulator().now();

  if (cooldown_ > 0) --cooldown_;

  std::uint64_t total = 0;
  for (net::LinkId l = 0; l < topo.linkCount(); ++l) {
    const net::Link& link = topo.link(l);
    const std::uint64_t now = net.linkCounters(l).packets;
    const std::uint64_t delta = now - previousPackets_[static_cast<std::size_t>(l)];
    previousPackets_[static_cast<std::size_t>(l)] = now;
    if (!topo.isSwitch(link.a.node) || !topo.isSwitch(link.b.node)) continue;
    if (delta == 0) continue;
    report.links.push_back(LinkLoad{l, delta});
    total += delta;
  }
  previousTime_ = report.windowEnd;

  std::sort(report.links.begin(), report.links.end(),
            [](const LinkLoad& a, const LinkLoad& b) {
              return a.packetsInWindow > b.packetsInWindow;
            });
  if (!report.links.empty()) {
    report.meanPackets =
        static_cast<double>(total) / static_cast<double>(report.links.size());
    report.overloaded =
        static_cast<double>(report.links.front().packetsInWindow) >
        config_.hotLinkThreshold * report.meanPackets;
  }

  // Congestion view (DESIGN.md §15): a standing queue or queue losses on a
  // switch-switch link flag an overload even when raw packet rates look
  // balanced, and pin that link as the hottest so rebalanceOnce() targets
  // the tree crossing it.
  if (congestion_ != nullptr) {
    net::LinkId hotLink = net::kInvalidLink;
    double hotScore = 0.0;
    for (net::LinkId l = 0; l < topo.linkCount(); ++l) {
      const net::Link& link = topo.link(l);
      if (!topo.isSwitch(link.a.node) || !topo.isSwitch(link.b.node)) continue;
      const double s = congestion_->score(l);
      if (s > hotScore) {
        hotScore = s;
        hotLink = l;
      }
    }
    if (hotLink != net::kInvalidLink &&
        hotScore >= config_.congestionScoreThreshold) {
      report.overloaded = true;
      const auto it = std::find_if(
          report.links.begin(), report.links.end(),
          [&](const LinkLoad& ll) { return ll.link == hotLink; });
      if (it == report.links.end()) {
        report.links.insert(report.links.begin(), LinkLoad{hotLink, 0});
      } else {
        std::rotate(report.links.begin(), it, it + 1);
      }
    }
  }
  last_ = report;
  return report;
}

int LoadMonitor::busiestTreeOn(net::LinkId link) const {
  const net::Topology& topo = controller_.network().topology();
  int best = -1;
  std::size_t bestCount = 0;
  for (const SpanningTree* tree : controller_.trees()) {
    std::size_t count = 0;
    for (const PathId id : controller_.registry().pathsOfTree(tree->id())) {
      const InstalledPath& path = controller_.registry().at(id);
      for (const RouteHop& hop : path.hops) {
        if (topo.linkAt(hop.switchNode, hop.outPort) == link) {
          ++count;
          break;
        }
      }
    }
    if (count > bestCount) {
      bestCount = count;
      best = tree->id();
    }
  }
  return best;
}

net::NodeId LoadMonitor::coldestSwitch() const {
  const auto& net = controller_.network();
  const net::Topology& topo = net.topology();
  net::NodeId coldest = net::kInvalidNode;
  std::uint64_t coldestLoad = std::numeric_limits<std::uint64_t>::max();
  for (const net::NodeId sw : controller_.scope().switches) {
    std::uint64_t load = 0;
    for (const auto& [port, lid] : topo.portsOf(sw)) {
      load += net.linkCounters(lid).packets;
    }
    if (load < coldestLoad) {
      coldestLoad = load;
      coldest = sw;
    }
  }
  return coldest;
}

const std::vector<net::SimTime>* LoadMonitor::congestionCosts() {
  if (congestion_ == nullptr || config_.congestionFactor <= 0.0) return nullptr;
  const double maxScore = congestion_->maxScore();
  if (maxScore <= 0.0) return nullptr;
  const net::Topology& topo = controller_.network().topology();
  scratch_.assign(static_cast<std::size_t>(topo.linkCount()), 0);
  for (net::LinkId l = 0; l < topo.linkCount(); ++l) {
    const double inflate =
        1.0 + config_.congestionFactor * congestion_->score(l) / maxScore;
    scratch_[static_cast<std::size_t>(l)] = static_cast<net::SimTime>(
        static_cast<double>(topo.link(l).latency) * inflate);
  }
  return &scratch_;
}

bool LoadMonitor::rebalanceOnce() {
  if (cooldown_ > 0) return false;
  if (!last_.overloaded || last_.links.empty()) return false;
  const int treeId = busiestTreeOn(last_.links.front().link);
  if (treeId < 0) return false;
  const net::NodeId newRoot = coldestSwitch();
  if (newRoot == net::kInvalidNode) return false;
  if (!controller_.rerootTree(treeId, newRoot, congestionCosts())) {
    return false;
  }
  ++rebalances_;
  cooldown_ = config_.rebalanceCooldown;
  return true;
}

void LoadMonitor::startPeriodic(net::SimTime interval) {
  periodicInterval_ = interval;
  if (!tickArmed_) scheduleTick();
}

void LoadMonitor::scheduleTick() {
  tickArmed_ = true;
  controller_.network().simulator().schedule(periodicInterval_, [this] {
    tickArmed_ = false;
    if (!periodicEnabled()) return;
    sample();
    rebalanceOnce();
    scheduleTick();
  });
}

}  // namespace pleroma::ctrl
