// Anti-entropy for the control plane (robustness extension). Algorithm 1's
// getCurrentFlowsFromSwitch presumes the controller can audit actual switch
// state; the reconciler turns that audit into a repair loop: it diffs the
// controller's per-switch flow mirror (the *intended* state kept by
// FlowInstaller) against each switch's actual FlowTable and issues the
// add/modify/delete mods that converge the switch to the intent. Any mod
// the lossy control channel dropped, duplicated out of order, or abandoned
// after retries is repaired here; repairs travel over the same (possibly
// faulty) channel, so callers loop reconcile+settle until an audit finds no
// divergence (`runToConvergence`), or enable a periodic pass under the
// simulator clock.
//
// A switch is audited only when quiescent (no mods in flight towards it —
// in-flight mods would be double-counted as divergence) and its control
// session is connected; skipped switches are reported and re-audited on the
// next round.
#pragma once

#include <cstdint>

#include "controller/controller.hpp"

namespace pleroma::ctrl {

struct ReconcileReport {
  std::size_t switchesAudited = 0;
  /// Switches whose audit was deferred: control session down or mods still
  /// in flight towards them. Failed (inactive) switches are neither audited
  /// nor skipped — with table cleared and mirror forgotten they are
  /// vacuously converged.
  std::size_t switchesSkipped = 0;
  std::size_t repairAdds = 0;
  std::size_t repairModifies = 0;
  std::size_t repairDeletes = 0;
  /// Sum of FlowEntry::matchedPackets over all audited entries — the
  /// data-plane activity observed through the flow-stats reads.
  std::uint64_t matchedPacketsSeen = 0;
  /// The whole pass was abandoned because the controller was mid-way
  /// through a mutation batch (rebuildTrees commit, merge, re-index):
  /// auditing against a half-committed mirror would mis-repair. The pass
  /// retries on the next periodic tick / convergence round.
  bool deferredForMutation = false;

  std::size_t repairMods() const noexcept {
    return repairAdds + repairModifies + repairDeletes;
  }
  /// An audit round is clean when every switch was audited and none needed
  /// repair — the network provably matches the controller's intent.
  bool clean() const noexcept {
    return !deferredForMutation && switchesSkipped == 0 && repairMods() == 0;
  }
};

class Reconciler {
 public:
  explicit Reconciler(Controller& controller) : controller_(controller) {}

  /// Audits one switch and issues repair mods for every divergence between
  /// the controller mirror and the switch's actual table.
  ReconcileReport reconcileSwitch(net::NodeId sw);

  /// Audits every active switch of the controller's scope.
  ReconcileReport reconcileAll();

  /// Repeats reconcileAll + draining the simulator until a round is clean.
  /// Returns the number of rounds used (0 = already clean on entry);
  /// returns maxRounds when convergence was not reached — with a positive
  /// retry budget on the channel this only happens for pathological drop
  /// probabilities.
  std::size_t runToConvergence(std::size_t maxRounds = 16);

  /// Schedules a reconcileAll every `interval` of simulated time. The tick
  /// re-arms itself, so the simulator queue never drains while enabled —
  /// drive the clock with runUntil(), not run().
  void enablePeriodic(net::SimTime interval);
  void disablePeriodic() { periodicInterval_ = 0; }
  bool periodicEnabled() const noexcept { return periodicInterval_ > 0; }

  const ReconcileReport& lastReport() const noexcept { return last_; }
  std::uint64_t roundsRun() const noexcept { return rounds_; }
  /// Total repair mods issued over the reconciler's lifetime.
  std::uint64_t totalRepairMods() const noexcept { return totalRepairs_; }
  /// Passes abandoned because they raced a controller mutation batch.
  std::uint64_t mutationSkips() const noexcept { return mutationSkips_; }

  /// Resolves "reconciler.*" metric handles (audits, skips, repairs, and
  /// the matched-packet volume seen through flow-stats reads).
  void attachMetrics(obs::MetricsRegistry& reg);

 private:
  void repair(openflow::FlowModType type, net::NodeId sw,
              const net::FlowEntry& entry, ReconcileReport& report);
  void scheduleTick();

  /// Repair mods for the switch being audited; flushed through
  /// ControlChannel::sendBatch at the end of each reconcileSwitch pass, so
  /// with batching enabled one audit costs one control message.
  std::vector<openflow::FlowMod> repairBatch_;

  Controller& controller_;
  ReconcileReport last_;
  net::SimTime periodicInterval_ = 0;
  bool tickArmed_ = false;
  std::uint64_t rounds_ = 0;
  std::uint64_t totalRepairs_ = 0;
  std::uint64_t mutationSkips_ = 0;

  obs::Counter* obsAudits_ = nullptr;
  obs::Counter* obsSkips_ = nullptr;
  obs::Counter* obsMutationSkips_ = nullptr;
  obs::Counter* obsRepairs_ = nullptr;
  obs::Gauge* obsMatchedPackets_ = nullptr;
};

}  // namespace pleroma::ctrl
