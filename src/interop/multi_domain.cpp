#include "interop/multi_domain.hpp"

#include "net/packet.hpp"

#include <cassert>

namespace pleroma::interop {

MultiDomain::MultiDomain(net::Topology topology,
                         std::vector<PartitionId> partitionOf,
                         dz::EventSpace space,
                         ctrl::ControllerConfig controllerConfig,
                         net::NetworkConfig networkConfig)
    : partitionOfNode_(std::move(partitionOf)) {
  auto discoveries = openflow::discoverPartitions(topology, partitionOfNode_);
  network_ = std::make_unique<net::Network>(std::move(topology), sim_, networkConfig);
  network_->setPacketInHandler(
      [this](net::NodeId sw, net::PortId port, const net::Packet& pkt) {
        onPacketIn(sw, port, pkt);
      });

  partitions_.reserve(discoveries.size());
  for (auto& disc : discoveries) {
    auto part = std::make_unique<Partition>();
    part->id = disc.partition;
    ctrl::Scope scope{disc.switches, disc.internalLinks};
    part->controller = std::make_unique<ctrl::Controller>(
        space, *network_, std::move(scope), controllerConfig);
    for (const openflow::BorderPort& bp : disc.borderPorts) {
      part->gatewayTo.try_emplace(bp.neighborPartition, bp);
    }
    part->discovery = std::move(disc);
    partitions_.push_back(std::move(part));
  }
}

ctrl::Controller& MultiDomain::controller(PartitionId p) {
  return *partitions_.at(static_cast<std::size_t>(p))->controller;
}

const openflow::DiscoveryResult& MultiDomain::discovery(PartitionId p) const {
  return partitions_.at(static_cast<std::size_t>(p))->discovery;
}

const PartitionStats& MultiDomain::stats(PartitionId p) const {
  return partitions_.at(static_cast<std::size_t>(p))->stats;
}

PartitionId MultiDomain::partitionOfHost(net::NodeId host) const {
  const auto att = network_->topology().hostAttachment(host);
  return partitionOfNode_[static_cast<std::size_t>(att.switchNode)];
}

MultiDomain::Partition& MultiDomain::owningPartition(net::NodeId switchNode) {
  return *partitions_.at(
      static_cast<std::size_t>(partitionOfNode_[static_cast<std::size_t>(switchNode)]));
}

ctrl::Endpoint MultiDomain::virtualHostEndpoint(const Partition& part,
                                                PartitionId neighbor) const {
  const openflow::BorderPort& bp = part.gatewayTo.at(neighbor);
  // No rewrite: events leave with the dz address intact so the next
  // partition's flows keep forwarding them (Sec 4.2).
  return ctrl::Endpoint{bp.switchNode, bp.port, std::nullopt, net::kInvalidNode};
}

// ---- host-facing operations ---------------------------------------------

GlobalPublisherId MultiDomain::advertise(net::NodeId host,
                                         const dz::Rectangle& rect) {
  Partition& part = *partitions_.at(static_cast<std::size_t>(partitionOfHost(host)));
  ++part.stats.internalRequests;
  const ctrl::PublisherId local = part.controller->advertise(host, rect);
  // Flood to every neighbouring partition (covering-suppressed).
  forwardAdvertisement(part, part.controller->advertisementDz(local), /*except=*/-1);
  settle();
  return GlobalPublisherId{part.id, local};
}

GlobalSubscriptionId MultiDomain::subscribe(net::NodeId host,
                                            const dz::Rectangle& rect) {
  Partition& part = *partitions_.at(static_cast<std::size_t>(partitionOfHost(host)));
  ++part.stats.internalRequests;
  const ctrl::SubscriptionId local = part.controller->subscribe(host, rect);
  forwardSubscription(part, part.controller->subscriptionDz(local), /*except=*/-1);
  settle();
  return GlobalSubscriptionId{part.id, local};
}

void MultiDomain::unsubscribe(GlobalSubscriptionId id) {
  if (id.partition < 0) return;
  controller(id.partition).unsubscribe(id.local);
  settle();
}

void MultiDomain::unadvertise(GlobalPublisherId id) {
  if (id.partition < 0) return;
  controller(id.partition).unadvertise(id.local);
  settle();
}

void MultiDomain::publish(net::NodeId host, const dz::Event& event,
                          net::EventId id) {
  Partition& part = *partitions_.at(static_cast<std::size_t>(partitionOfHost(host)));
  network_->sendFromHost(host, part.controller->makeEventPacket(host, event, id));
}

// ---- inter-controller propagation ----------------------------------------

void MultiDomain::forwardAdvertisement(Partition& part, const dz::DzSet& dz,
                                       PartitionId except) {
  for (const auto& [neighbor, bp] : part.gatewayTo) {
    if (neighbor == except) continue;
    dz::DzSet& forwarded = part.forwardedAdvs[neighbor];
    if (forwarded.coversSet(dz)) {
      ++part.stats.advsSuppressed;
      continue;
    }
    forwarded.unionWith(dz);
    sendToNeighbor(part, neighbor,
                   ControlMessage{ControlMessage::Kind::kAdvertisement, part.id, dz});
  }
}

void MultiDomain::forwardSubscription(Partition& part, const dz::DzSet& dz,
                                      PartitionId except) {
  // The subscription follows the reverse paths of the overlapping external
  // advertisements: forward only towards neighbours that relayed them.
  std::map<PartitionId, dz::DzSet> byNeighbor;
  for (const ExternalAdv& ext : part.externalAdvs) {
    if (ext.fromNeighbor == except) continue;
    const dz::DzSet overlap = ext.dz.intersect(dz);
    if (!overlap.empty()) byNeighbor[ext.fromNeighbor].unionWith(overlap);
  }
  for (auto& [neighbor, overlap] : byNeighbor) {
    dz::DzSet& forwarded = part.forwardedSubs[neighbor];
    if (forwarded.coversSet(overlap)) {
      ++part.stats.subsSuppressed;
      continue;
    }
    forwarded.unionWith(overlap);
    sendToNeighbor(
        part, neighbor,
        ControlMessage{ControlMessage::Kind::kSubscription, part.id, overlap});
  }
}

void MultiDomain::sendToNeighbor(Partition& part, PartitionId to,
                                 ControlMessage msg) {
  const openflow::BorderPort& bp = part.gatewayTo.at(to);
  ++part.stats.messagesSent;

  net::Packet pkt;
  pkt.dst = dz::kControlAddress;
  pkt.src = net::hostAddress(static_cast<net::NodeId>(part.id));
  pkt.sizeBytes = 64 + 16 * static_cast<int>(msg.dz.size());
  pkt.controlKind = 1;
  pkt.control = std::make_shared<ControlMessage>(std::move(msg));

  // The controller instructs its border switch to push the packet out of
  // the border port; the remote border switch punts it to its controller.
  network_->sendOutPort(bp.switchNode, bp.port, std::move(pkt));
}

void MultiDomain::onPacketIn(net::NodeId switchNode, net::PortId inPort,
                             const net::Packet& packet) {
  (void)inPort;
  if (packet.controlKind != 1 || packet.control == nullptr) return;
  const auto& msg = *static_cast<const ControlMessage*>(packet.control.get());
  Partition& part = owningPartition(switchNode);
  switch (msg.kind) {
    case ControlMessage::Kind::kAdvertisement:
      handleExternalAdvertisement(part, msg.fromPartition, msg.dz);
      break;
    case ControlMessage::Kind::kSubscription:
      handleExternalSubscription(part, msg.fromPartition, msg.dz);
      break;
  }
}

void MultiDomain::handleExternalAdvertisement(Partition& part, PartitionId from,
                                              const dz::DzSet& dz) {
  ++part.stats.externalRequests;
  // Perceived as an advertisement from a virtual host on the border switch
  // (Sec 4.2): subsequent local subscriptions connect to that port.
  const ctrl::PublisherId local =
      part.controller->advertiseEndpoint(virtualHostEndpoint(part, from), dz);
  part.externalAdvs.push_back(ExternalAdv{from, dz, local});
  // Relay onwards so the advertisement reaches every partition.
  forwardAdvertisement(part, dz, /*except=*/from);

  // Local subscriptions that arrived before this advertisement need their
  // interest forwarded towards the advertisement's origin now.
  const dz::DzSet pendingInterest =
      part.controller->subscriptionUnion().intersect(dz);
  if (!pendingInterest.empty()) {
    dz::DzSet& forwarded = part.forwardedSubs[from];
    if (!forwarded.coversSet(pendingInterest)) {
      forwarded.unionWith(pendingInterest);
      sendToNeighbor(part, from,
                     ControlMessage{ControlMessage::Kind::kSubscription, part.id,
                                    pendingInterest});
    } else {
      ++part.stats.subsSuppressed;
    }
  }
}

void MultiDomain::handleExternalSubscription(Partition& part, PartitionId from,
                                             const dz::DzSet& dz) {
  ++part.stats.externalRequests;
  // Perceived as a subscription from a virtual host on the border switch:
  // local flows route matching events out of the border port.
  part.controller->subscribeEndpoint(virtualHostEndpoint(part, from), dz);
  // Continue along the reverse paths of overlapping external
  // advertisements towards their origins.
  forwardSubscription(part, dz, /*except=*/from);
}

std::uint64_t MultiDomain::totalControlMessages() const {
  std::uint64_t total = 0;
  for (const auto& part : partitions_) {
    total += part->stats.internalRequests + part->stats.messagesSent;
  }
  return total;
}

}  // namespace pleroma::interop
