// Interoperability of independently controlled partitions (Sec 4). A
// MultiDomain instantiates one PLEROMA controller per partition of a shared
// physical topology, discovers border gateways with the LLDP mechanism, and
// propagates advertisements/subscriptions between controllers:
//
//  * advertisements flood to all partitions (registered remotely as
//    *virtual hosts* on the receiving border switch port);
//  * subscriptions follow the reverse path of the overlapping external
//    advertisements;
//  * both directions apply covering-based suppression — a request is only
//    forwarded to a neighbour if it is not covered by what was previously
//    forwarded there (Sec 4.2).
//
// Inter-controller messages travel through the data plane as packets to the
// reserved IP_mid address, pushed out of the local border port and punted
// to the remote controller by the remote border switch — exactly the
// mechanism of Sec 4.1. Figs 7g/7h measure the per-controller request load
// and the total control traffic this produces.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "controller/controller.hpp"
#include "openflow/lldp.hpp"

namespace pleroma::interop {

using openflow::PartitionId;

/// A registration handle that names the owning partition.
struct GlobalPublisherId {
  PartitionId partition = -1;
  ctrl::PublisherId local = ctrl::kInvalidPublisher;
};
struct GlobalSubscriptionId {
  PartitionId partition = -1;
  ctrl::SubscriptionId local = ctrl::kInvalidSubscription;
};

/// Control-load accounting per partition (Fig 7g/7h).
struct PartitionStats {
  std::uint64_t internalRequests = 0;  ///< adv/sub from local end hosts
  std::uint64_t externalRequests = 0;  ///< adv/sub received from neighbours
  std::uint64_t messagesSent = 0;      ///< inter-controller messages emitted
  std::uint64_t advsSuppressed = 0;    ///< covering suppression hits (adv)
  std::uint64_t subsSuppressed = 0;    ///< covering suppression hits (sub)

  std::uint64_t requestsProcessed() const noexcept {
    return internalRequests + externalRequests;
  }
};

class MultiDomain {
 public:
  /// `partitionOf[node]` assigns each switch to a partition id in
  /// [0, numPartitions); host entries are ignored (hosts belong to their
  /// access switch's partition).
  MultiDomain(net::Topology topology, std::vector<PartitionId> partitionOf,
              dz::EventSpace space, ctrl::ControllerConfig controllerConfig = {},
              net::NetworkConfig networkConfig = {});

  std::size_t partitionCount() const noexcept { return partitions_.size(); }
  ctrl::Controller& controller(PartitionId p);
  const openflow::DiscoveryResult& discovery(PartitionId p) const;
  const PartitionStats& stats(PartitionId p) const;
  PartitionId partitionOfHost(net::NodeId host) const;

  net::Network& network() noexcept { return *network_; }
  net::Simulator& simulator() noexcept { return sim_; }

  /// Registers an advertisement at the host's local controller, then floods
  /// it across partitions (with covering suppression). Runs the simulator
  /// until all control traffic has settled.
  GlobalPublisherId advertise(net::NodeId host, const dz::Rectangle& rect);

  /// Registers a subscription locally, then forwards it along the reverse
  /// paths of overlapping external advertisements.
  GlobalSubscriptionId subscribe(net::NodeId host, const dz::Rectangle& rect);

  /// Removes a subscription's paths in its home partition. Interest already
  /// relayed to other partitions is retained conservatively (the paper does
  /// not define cross-partition retraction; covering state makes it
  /// ambiguous which relays are still needed by other subscribers) — events
  /// may still cross borders and are then dropped at the first switch with
  /// no matching flow, costing bandwidth but never false deliveries.
  void unsubscribe(GlobalSubscriptionId id);

  /// Removes an advertisement in its home partition. Virtual-host replicas
  /// in remote partitions are retained conservatively (see unsubscribe);
  /// the retired publisher simply stops emitting events.
  void unadvertise(GlobalPublisherId id);

  /// Publishes an event from `host` into the data plane. Delivery happens
  /// as the simulator runs (`settle()` or manual stepping).
  void publish(net::NodeId host, const dz::Event& event, net::EventId id = 0);

  /// Runs the simulator until idle.
  void settle() { sim_.run(); }

  std::uint64_t totalControlMessages() const;

 private:
  // One inter-controller message (carried inside an IP_mid packet).
  struct ControlMessage {
    enum class Kind { kAdvertisement, kSubscription } kind = Kind::kAdvertisement;
    PartitionId fromPartition = -1;
    dz::DzSet dz;
  };

  struct ExternalAdv {
    PartitionId fromNeighbor = -1;
    dz::DzSet dz;
    ctrl::PublisherId localPublisher = ctrl::kInvalidPublisher;
  };

  struct Partition {
    PartitionId id = -1;
    openflow::DiscoveryResult discovery;
    std::unique_ptr<ctrl::Controller> controller;
    PartitionStats stats;
    /// First border port towards each neighbouring partition (used both as
    /// messaging gateway and as the virtual-host endpoint).
    std::map<PartitionId, openflow::BorderPort> gatewayTo;
    /// Covering-suppression state per neighbour.
    std::map<PartitionId, dz::DzSet> forwardedAdvs;
    std::map<PartitionId, dz::DzSet> forwardedSubs;
    /// External advertisements registered here as virtual hosts.
    std::vector<ExternalAdv> externalAdvs;
  };

  Partition& owningPartition(net::NodeId switchNode);
  void onPacketIn(net::NodeId switchNode, net::PortId inPort,
                  const net::Packet& packet);
  void handleExternalAdvertisement(Partition& part, PartitionId from,
                                   const dz::DzSet& dz);
  void handleExternalSubscription(Partition& part, PartitionId from,
                                  const dz::DzSet& dz);
  /// Sends `msg` from `part` to neighbour `to` through the data plane.
  void sendToNeighbor(Partition& part, PartitionId to, ControlMessage msg);
  /// Floods an advertisement to all neighbours except `except`, applying
  /// covering suppression.
  void forwardAdvertisement(Partition& part, const dz::DzSet& dz,
                            PartitionId except);
  /// Forwards a subscription towards neighbours with overlapping external
  /// advertisements, applying covering suppression.
  void forwardSubscription(Partition& part, const dz::DzSet& dz,
                           PartitionId except);
  ctrl::Endpoint virtualHostEndpoint(const Partition& part, PartitionId neighbor) const;

  net::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::vector<PartitionId> partitionOfNode_;
  std::vector<std::unique_ptr<Partition>> partitions_;
};

}  // namespace pleroma::interop
