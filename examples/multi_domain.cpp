// Multi-domain deployment (Sec 4): three independently controlled network
// partitions in a chain — e.g. three plants of a manufacturer, each running
// its own controller — interconnected through border gateways discovered
// via LLDP. Shows cross-domain event flow and the covering-based
// suppression of inter-controller traffic.
//
//   $ ./multi_domain
#include <cstdio>

#include "interop/multi_domain.hpp"

using namespace pleroma;

int main() {
  // Six switches in a line, two per partition; one host per switch.
  net::Topology topo = net::Topology::line(6);
  std::vector<interop::PartitionId> partitionOf(
      static_cast<std::size_t>(topo.nodeCount()), 0);
  const auto sw = topo.switches();
  for (std::size_t i = 0; i < sw.size(); ++i) {
    partitionOf[static_cast<std::size_t>(sw[i])] =
        static_cast<interop::PartitionId>(i / 2);
  }
  const auto hosts = topo.hosts();

  interop::MultiDomain domain(std::move(topo), std::move(partitionOf),
                              dz::EventSpace(2, 10));

  std::printf("discovered %zu partitions:\n", domain.partitionCount());
  for (std::size_t p = 0; p < domain.partitionCount(); ++p) {
    const auto& d = domain.discovery(static_cast<interop::PartitionId>(p));
    std::printf("  partition %zu: %zu switches, %zu border ports ->", p,
                d.switches.size(), d.borderPorts.size());
    for (const auto& bp : d.borderPorts) {
      std::printf(" N%d", bp.neighborPartition);
    }
    std::printf("\n");
  }

  domain.network().setDeliverHandler(
      [&](net::NodeId host, const net::Packet& pkt) {
        std::printf("  event %llu delivered to %s\n",
                    static_cast<unsigned long long>(pkt.eventId()),
                    domain.network().topology().node(host).name.c_str());
      });

  // Sensor plant in partition 0 publishes machine telemetry.
  std::printf("\nadvertise at %s (partition 0)\n",
              domain.network().topology().node(hosts[0]).name.c_str());
  domain.advertise(hosts[0],
                   dz::Rectangle{{dz::Range{0, 1023}, dz::Range{0, 1023}}});

  // Analytics in partition 2 subscribes to the alarm range; a second,
  // covered subscription from the same partition is suppressed.
  std::printf("subscribe at %s (partition 2)\n",
              domain.network().topology().node(hosts[5]).name.c_str());
  domain.subscribe(hosts[5],
                   dz::Rectangle{{dz::Range{0, 511}, dz::Range{0, 1023}}});
  std::printf("subscribe at %s (partition 2, covered by previous)\n",
              domain.network().topology().node(hosts[4]).name.c_str());
  domain.subscribe(hosts[4],
                   dz::Rectangle{{dz::Range{0, 255}, dz::Range{0, 511}}});

  std::printf("\npublishing events from partition 0:\n");
  domain.publish(hosts[0], {100, 100}, 1);  // both subscribers
  domain.publish(hosts[0], {300, 900}, 2);  // h6 only
  domain.publish(hosts[0], {900, 100}, 3);  // filtered at the source domain
  domain.settle();

  std::printf("\ncontrol-plane accounting:\n");
  for (std::size_t p = 0; p < domain.partitionCount(); ++p) {
    const auto& s = domain.stats(static_cast<interop::PartitionId>(p));
    std::printf(
        "  controller %zu: internal=%llu external=%llu sent=%llu "
        "suppressed(adv=%llu, sub=%llu)\n",
        p, static_cast<unsigned long long>(s.internalRequests),
        static_cast<unsigned long long>(s.externalRequests),
        static_cast<unsigned long long>(s.messagesSent),
        static_cast<unsigned long long>(s.advsSuppressed),
        static_cast<unsigned long long>(s.subsSuppressed));
  }
  std::printf("total control messages: %llu\n",
              static_cast<unsigned long long>(domain.totalControlMessages()));
  return 0;
}
