// Traffic-monitoring scenario (Sec 1): location-dependent subscriptions
// that move with their subscriber — "updates of run-time parameters such as
// the location of objects, often at larger frequency than one update per
// minute per subscriber". Monitoring stations track vehicles inside a
// window around their own (moving) position and re-subscribe every tick;
// vehicles publish (x, y, speed) beacons.
//
//   $ ./traffic_monitoring
#include <cstdio>
#include <vector>

#include "core/pleroma.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace pleroma;

namespace {

struct Position {
  double x = 512, y = 512;
};

dz::Rectangle windowAround(const Position& p, dz::AttributeValue radius) {
  auto clampv = [](double v) {
    return static_cast<dz::AttributeValue>(std::clamp(v, 0.0, 1023.0));
  };
  return dz::Rectangle{{dz::Range{clampv(p.x - radius), clampv(p.x + radius)},
                        dz::Range{clampv(p.y - radius), clampv(p.y + radius)},
                        dz::Range{0, 1023}}};  // any speed
}

}  // namespace

int main() {
  core::PleromaOptions options;
  options.numAttributes = 3;  // x, y, speed
  options.controller.maxDzLength = 18;
  options.controller.maxCellsPerRequest = 32;
  core::Pleroma middleware(net::Topology::testbedFatTree(), options);
  const auto hosts = middleware.topology().hosts();
  util::Rng rng(77);

  // Vehicles: four publisher hosts, each a fleet of beacons.
  struct Vehicle {
    net::NodeId host;
    Position pos;
    double vx, vy;
  };
  std::vector<Vehicle> vehicles;
  for (int i = 0; i < 4; ++i) {
    Vehicle v;
    v.host = hosts[static_cast<std::size_t>(i)];
    v.pos = {rng.uniformReal(0, 1023), rng.uniformReal(0, 1023)};
    v.vx = rng.uniformReal(-40, 40);
    v.vy = rng.uniformReal(-40, 40);
    middleware.advertise(v.host, dz::Rectangle{{dz::Range{0, 1023},
                                                dz::Range{0, 1023},
                                                dz::Range{0, 1023}}});
    vehicles.push_back(v);
  }

  // Monitoring stations: moving range queries re-issued every tick.
  struct Station {
    net::NodeId host;
    Position pos;
    double vx, vy;
    ctrl::SubscriptionId sub = ctrl::kInvalidSubscription;
    std::uint64_t sightings = 0;
  };
  std::vector<Station> stations;
  for (int i = 0; i < 4; ++i) {
    Station s;
    s.host = hosts[static_cast<std::size_t>(4 + i)];
    s.pos = {rng.uniformReal(200, 800), rng.uniformReal(200, 800)};
    s.vx = rng.uniformReal(-25, 25);
    s.vy = rng.uniformReal(-25, 25);
    s.sub = middleware.subscribe(s.host, windowAround(s.pos, 150));
    stations.push_back(s);
  }

  middleware.setDeliveryCallback([&](const core::DeliveryRecord& r) {
    for (auto& s : stations) {
      if (s.host == r.host && !r.falsePositive) ++s.sightings;
    }
  });

  util::RunningStat reconfigMods;
  const int kTicks = 25;
  for (int tick = 0; tick < kTicks; ++tick) {
    // Vehicles move and beacon.
    for (auto& v : vehicles) {
      v.pos.x = std::clamp(v.pos.x + v.vx, 0.0, 1023.0);
      v.pos.y = std::clamp(v.pos.y + v.vy, 0.0, 1023.0);
      if (v.pos.x <= 0 || v.pos.x >= 1023) v.vx = -v.vx;
      if (v.pos.y <= 0 || v.pos.y >= 1023) v.vy = -v.vy;
      const double speed = std::abs(v.vx) + std::abs(v.vy);
      middleware.publish(
          v.host, dz::Event{static_cast<dz::AttributeValue>(v.pos.x),
                            static_cast<dz::AttributeValue>(v.pos.y),
                            static_cast<dz::AttributeValue>(speed * 10)});
    }
    middleware.settle();

    // Stations move and re-subscribe (the moving range query update).
    for (auto& s : stations) {
      s.pos.x = std::clamp(s.pos.x + s.vx, 0.0, 1023.0);
      s.pos.y = std::clamp(s.pos.y + s.vy, 0.0, 1023.0);
      if (s.pos.x <= 0 || s.pos.x >= 1023) s.vx = -s.vx;
      if (s.pos.y <= 0 || s.pos.y >= 1023) s.vy = -s.vy;
      middleware.unsubscribe(s.sub);
      s.sub = middleware.subscribe(s.host, windowAround(s.pos, 150));
      reconfigMods.add(static_cast<double>(
          middleware.controller().lastOpStats().totalFlowMods()));
    }
  }

  std::printf("traffic monitoring: %zu vehicles, %zu moving stations, %d ticks\n",
              vehicles.size(), stations.size(), kTicks);
  for (const auto& s : stations) {
    std::printf("  station@%s sightings=%llu\n",
                middleware.topology().node(s.host).name.c_str(),
                static_cast<unsigned long long>(s.sightings));
  }
  const auto& stats = middleware.deliveryStats();
  std::printf("deliveries=%llu falsePositiveRate=%.1f%%\n",
              static_cast<unsigned long long>(stats.delivered),
              100.0 * stats.falsePositiveRate());
  std::printf("%zu window updates, avg flow-mods per update: %.1f\n",
              reconfigMods.count(), reconfigMods.mean());
  return 0;
}
