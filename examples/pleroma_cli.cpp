// pleroma_cli — scripted driver for exploring the middleware.
//
// Reads commands from a script file (argv[1]) or stdin; with no input it
// runs a built-in demo. The command language is implemented (and unit
// tested) in core::ScriptRunner; type `help` for a summary.
//
// Example:
//   $ printf 'adv h1 0:1023 0:1023\nsub h6 0:511 0:1023\npub h1 100 100\nrun\nstats\n' | ./pleroma_cli
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/script_runner.hpp"

namespace {
constexpr const char* kDemoScript = R"(# built-in demo
adv h1 0:1023 0:1023
sub h6 0:511 0:1023
sub h7 256:767 500:1023
pub h1 100 100
pub h1 300 800
pub h1 900 100
run
trees
stats
)";
}  // namespace

int main(int argc, char** argv) {
  pleroma::core::ScriptRunner runner(
      [](const std::string& line) { std::printf("%s\n", line.c_str()); });

  std::unique_ptr<std::istream> owned;
  std::istream* in = nullptr;
  if (argc > 1) {
    owned = std::make_unique<std::ifstream>(argv[1]);
    if (!*owned) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    in = owned.get();
  } else if (isatty(0) == 0) {
    in = &std::cin;
  } else {
    owned = std::make_unique<std::istringstream>(kDemoScript);
    in = owned.get();
  }

  std::string line;
  while (std::getline(*in, line)) {
    if (!runner.executeLine(line)) break;
  }
  return 0;
}
