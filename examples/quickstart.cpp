// Quickstart: the smallest complete PLEROMA program.
//
// Builds the paper's testbed fat-tree (Fig 6), registers one publisher and
// two subscribers with content filters over a 2-attribute schema, publishes
// a few events, and prints who received what and how fast.
//
//   $ ./quickstart
#include <cstdio>

#include "core/pleroma.hpp"

using namespace pleroma;

int main() {
  // 10 switches, 8 end hosts, 2 attributes with domain [0, 1023].
  core::PleromaOptions options;
  options.numAttributes = 2;
  core::Pleroma middleware(net::Topology::testbedFatTree(), options);
  const auto hosts = middleware.topology().hosts();

  // A publisher must advertise the region it will publish into (Sec 2).
  const net::NodeId producer = hosts[0];
  middleware.advertise(
      producer, dz::Rectangle{{dz::Range{0, 1023}, dz::Range{0, 1023}}});

  // Two subscribers with different interests: temperature-like attribute 0,
  // humidity-like attribute 1.
  const net::NodeId alice = hosts[5];
  const net::NodeId bob = hosts[6];
  middleware.subscribe(alice,
                       dz::Rectangle{{dz::Range{0, 511}, dz::Range{0, 1023}}});
  middleware.subscribe(bob,
                       dz::Rectangle{{dz::Range{256, 767}, dz::Range{500, 1023}}});

  middleware.setDeliveryCallback([&](const core::DeliveryRecord& r) {
    std::printf("  event %llu -> %s (%.0f us%s)\n",
                static_cast<unsigned long long>(r.eventId),
                middleware.topology().node(r.host).name.c_str(),
                static_cast<double>(r.latency) / 1000.0,
                r.falsePositive ? ", false positive" : "");
  });

  std::printf("publishing 4 events:\n");
  middleware.publish(producer, {100, 100});  // alice only
  middleware.publish(producer, {300, 800});  // alice and bob
  middleware.publish(producer, {700, 900});  // bob only
  middleware.publish(producer, {900, 100});  // nobody
  middleware.settle();

  const auto& stats = middleware.deliveryStats();
  std::printf("delivered=%llu falsePositives=%llu meanLatency=%.0f us\n",
              static_cast<unsigned long long>(stats.delivered),
              static_cast<unsigned long long>(stats.falsePositives),
              stats.meanLatencyUs());

  std::size_t flows = 0;
  for (const net::NodeId sw : middleware.topology().switches()) {
    flows += middleware.network().flowTable(sw).size();
  }
  std::printf("flow entries across %zu switches: %zu\n",
              middleware.topology().switches().size(), flows);
  return 0;
}
