// Smart-grid scenario (Sec 1 names the smart grid among PLEROMA's target
// applications) demonstrating dimension selection (Sec 5) end to end.
//
// Meters publish 7-attribute readings: voltage, frequency, load, phase,
// region, meter-class, firmware. Only voltage, frequency and load carry
// operationally interesting variation — controllers subscribe to anomaly
// ranges on them, while the remaining attributes are either constant or
// subscribed unselectively. Periodic spectral dimension selection discovers
// this and re-indexes the network on the informative attributes, shrinking
// false positives under the same dz budget.
//
//   $ ./smart_grid
#include <cstdio>
#include <string>
#include <vector>

#include "core/pleroma.hpp"
#include "util/rng.hpp"

using namespace pleroma;

namespace {
constexpr int kVoltage = 0, kFrequency = 1, kLoad = 2;
constexpr int kAttrs = 7;

const char* kNames[kAttrs] = {"voltage", "frequency", "load",     "phase",
                              "region",  "class",     "firmware"};

dz::Event makeReading(util::Rng& rng) {
  dz::Event e(kAttrs);
  e[kVoltage] = static_cast<dz::AttributeValue>(rng.uniformInt(0, 1023));
  e[kFrequency] = static_cast<dz::AttributeValue>(rng.uniformInt(0, 1023));
  e[kLoad] = static_cast<dz::AttributeValue>(rng.uniformInt(0, 1023));
  e[3] = 512;                                                     // phase: constant
  e[4] = static_cast<dz::AttributeValue>(500 + rng.uniformInt(0, 20));  // region: near constant
  e[5] = 300;                                                     // class: constant
  e[6] = 7;                                                       // firmware: constant
  return e;
}

dz::Rectangle anomalyFilter(util::Rng& rng) {
  // Selective on the three informative attributes, open on the rest.
  dz::Rectangle r;
  r.ranges.assign(kAttrs, dz::Range{0, 1023});
  for (const int d : {kVoltage, kFrequency, kLoad}) {
    const auto lo = static_cast<dz::AttributeValue>(rng.uniformInt(0, 700));
    r.ranges[static_cast<std::size_t>(d)] = dz::Range{lo, lo + 250};
  }
  return r;
}
}  // namespace

int main() {
  core::PleromaOptions options;
  options.numAttributes = kAttrs;
  options.controller.maxDzLength = 14;  // tight budget: 2 bits/dim if all 7 indexed
  options.controller.maxCellsPerRequest = 32;
  options.dimensionWindow = 512;
  core::Pleroma grid(net::Topology::testbedFatTree(), options);
  const auto hosts = grid.topology().hosts();
  util::Rng rng(7);

  const net::NodeId meterHub = hosts[0];
  grid.advertise(meterHub, grid.controller().space().wholeSpace());
  for (int i = 1; i < 8; ++i) {
    grid.subscribe(hosts[static_cast<std::size_t>(i)], anomalyFilter(rng));
  }

  auto runPhase = [&](const char* label, int events) {
    grid.resetDeliveryStats();
    for (int i = 0; i < events; ++i) grid.publish(meterHub, makeReading(rng));
    grid.settle();
    const auto& s = grid.deliveryStats();
    std::printf("%-28s delivered=%5llu  falsePositiveRate=%5.1f%%\n", label,
                static_cast<unsigned long long>(s.delivered),
                100.0 * s.falsePositiveRate());
  };

  std::printf("smart grid: 7 attributes, 14-bit dz budget, 7 anomaly filters\n");
  runPhase("all 7 dimensions indexed:", 2000);

  const std::vector<int> selected = grid.runDimensionSelection(0.85);
  std::printf("dimension selection chose:");
  for (const int d : selected) std::printf(" %s", kNames[d]);
  std::printf("\n");

  runPhase("after re-indexing:", 2000);
  return 0;
}
