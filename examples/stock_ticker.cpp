// Financial-trading scenario (Sec 1's motivating application): traders
// subscribe to price thresholds per stock and *keep adjusting* them as the
// market moves — the dynamic (re)subscription workload PLEROMA's fast
// reconfiguration is designed for ("the threshold for receiving events is
// updated in the time-scale ranging from just a few seconds...", Sec 1).
//
// Schema: attribute 0 = stock symbol id, attribute 1 = price,
//         attribute 2 = traded volume.
//
//   $ ./stock_ticker
#include <cstdio>
#include <vector>

#include "core/pleroma.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace pleroma;

namespace {

constexpr int kSymbols = 16;  // symbol ids 0..15 scaled into [0,1023]

dz::Rectangle thresholdFilter(int symbol, dz::AttributeValue minPrice) {
  const auto lo = static_cast<dz::AttributeValue>(symbol * 64);
  return dz::Rectangle{{dz::Range{lo, lo + 63},       // one symbol bucket
                        dz::Range{minPrice, 1023},    // price above threshold
                        dz::Range{0, 1023}}};         // any volume
}

}  // namespace

int main() {
  core::PleromaOptions options;
  options.numAttributes = 3;
  options.controller.maxDzLength = 18;
  options.controller.maxCellsPerRequest = 32;
  core::Pleroma middleware(net::Topology::testbedFatTree(), options);
  const auto hosts = middleware.topology().hosts();
  util::Rng rng(2014);

  // The exchange feed publishes everything.
  const net::NodeId exchange = hosts[0];
  middleware.advertise(exchange,
                       dz::Rectangle{{dz::Range{0, 1023}, dz::Range{0, 1023},
                                      dz::Range{0, 1023}}});

  // Seven traders, each watching one symbol above a moving threshold.
  struct Trader {
    net::NodeId host;
    int symbol;
    dz::AttributeValue threshold;
    ctrl::SubscriptionId sub;
    std::uint64_t alerts = 0;
  };
  std::vector<Trader> traders;
  for (int i = 0; i < 7; ++i) {
    Trader t;
    t.host = hosts[static_cast<std::size_t>(i + 1)];
    t.symbol = static_cast<int>(rng.uniformInt(0, kSymbols - 1));
    t.threshold = static_cast<dz::AttributeValue>(rng.uniformInt(400, 800));
    t.sub = middleware.subscribe(t.host, thresholdFilter(t.symbol, t.threshold));
    traders.push_back(t);
  }

  middleware.setDeliveryCallback([&](const core::DeliveryRecord& r) {
    for (auto& t : traders) {
      if (t.host == r.host && !r.falsePositive) ++t.alerts;
    }
  });

  // Simulated trading day: 20 rounds of quotes, traders re-adjust their
  // thresholds every few rounds (unsubscribe + subscribe = the paper's
  // reconfiguration path).
  util::RunningStat reconfigFlowMods;
  std::vector<dz::AttributeValue> price(kSymbols, 512);
  for (int round = 0; round < 20; ++round) {
    // Random-walk prices; publish one quote per symbol.
    for (int s = 0; s < kSymbols; ++s) {
      const int delta = static_cast<int>(rng.uniformInt(0, 120)) - 60;
      const int p = std::clamp(static_cast<int>(price[static_cast<std::size_t>(s)]) + delta, 0, 1023);
      price[static_cast<std::size_t>(s)] = static_cast<dz::AttributeValue>(p);
      middleware.publish(
          exchange,
          dz::Event{static_cast<dz::AttributeValue>(s * 64 + 17),
                    price[static_cast<std::size_t>(s)],
                    static_cast<dz::AttributeValue>(rng.uniformInt(0, 1023))});
    }
    middleware.settle();

    // Every third round each trader tightens/loosens its threshold.
    if (round % 3 == 2) {
      for (auto& t : traders) {
        middleware.unsubscribe(t.sub);
        const int shift = static_cast<int>(rng.uniformInt(0, 160)) - 80;
        t.threshold = static_cast<dz::AttributeValue>(
            std::clamp(static_cast<int>(t.threshold) + shift, 100, 1000));
        t.sub = middleware.subscribe(t.host, thresholdFilter(t.symbol, t.threshold));
        reconfigFlowMods.add(static_cast<double>(
            middleware.controller().lastOpStats().totalFlowMods()));
      }
    }
  }

  std::printf("stock ticker: %d symbols, %zu traders, 20 rounds\n", kSymbols,
              traders.size());
  for (const auto& t : traders) {
    std::printf("  trader@%s symbol=%2d threshold=%4u alerts=%llu\n",
                middleware.topology().node(t.host).name.c_str(), t.symbol,
                t.threshold, static_cast<unsigned long long>(t.alerts));
  }
  const auto& stats = middleware.deliveryStats();
  std::printf(
      "deliveries=%llu falsePositiveRate=%.1f%% meanLatency=%.0f us\n",
      static_cast<unsigned long long>(stats.delivered),
      100.0 * stats.falsePositiveRate(), stats.meanLatencyUs());
  std::printf("threshold updates: %zu, avg flow-mods per update: %.1f\n",
              reconfigFlowMods.count(), reconfigFlowMods.mean());
  return 0;
}
