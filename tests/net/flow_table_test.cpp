#include "net/flow_table.hpp"

#include <gtest/gtest.h>

#include "net/packet.hpp"

namespace pleroma::net {
namespace {

dz::DzExpression dz(std::string_view s) { return *dz::DzExpression::fromString(s); }

FlowEntry entry(std::string_view dzStr, std::vector<PortId> ports,
                int priority = -1) {
  FlowEntry e;
  const auto d = dz(dzStr);
  e.match = dz::dzToPrefix(d);
  e.priority = priority < 0 ? d.length() : priority;
  for (const PortId p : ports) e.actions.push_back(FlowAction{p, std::nullopt});
  return e;
}

TEST(FlowEntry, AddOutPortDeduplicates) {
  FlowEntry e = entry("10", {2});
  e.addOutPort(2);
  e.addOutPort(3);
  EXPECT_EQ(e.outPorts(), (std::vector<PortId>{2, 3}));
  EXPECT_TRUE(e.hasOutPort(2));
  EXPECT_FALSE(e.hasOutPort(4));
}

TEST(FlowEntry, AddOutPortUpdatesRewrite) {
  FlowEntry e = entry("10", {2});
  const dz::Ipv6Address addr = hostAddress(7);
  e.addOutPort(2, addr);
  ASSERT_EQ(e.actions.size(), 1u);
  EXPECT_EQ(e.actions[0].setDestination, addr);
}

TEST(FlowEntry, RemoveOutPort) {
  FlowEntry e = entry("10", {2, 3});
  EXPECT_TRUE(e.removeOutPort(2));
  EXPECT_FALSE(e.removeOutPort(2));
  EXPECT_EQ(e.outPorts(), (std::vector<PortId>{3}));
}

TEST(FlowTable, InsertAndLookup) {
  FlowTable t;
  EXPECT_TRUE(t.insert(entry("1", {2})));
  const FlowEntry* hit = t.lookup(dz::dzToAddress(dz("101")));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->outPorts(), (std::vector<PortId>{2}));
  EXPECT_EQ(t.lookup(dz::dzToAddress(dz("0"))), nullptr);
}

TEST(FlowTable, LongestDzWinsViaPriority) {
  // Fig 3: an event dz=1001 matches flows dz=1 and dz=100; the longer one
  // (higher priority) must win.
  FlowTable t;
  ASSERT_TRUE(t.insert(entry("1", {2})));
  ASSERT_TRUE(t.insert(entry("100", {2, 3})));
  const FlowEntry* hit = t.lookup(dz::dzToAddress(dz("1001")));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->outPorts(), (std::vector<PortId>{2, 3}));
  // dz=11 only matches the short flow.
  const FlowEntry* hit2 = t.lookup(dz::dzToAddress(dz("11")));
  ASSERT_NE(hit2, nullptr);
  EXPECT_EQ(hit2->outPorts(), (std::vector<PortId>{2}));
}

TEST(FlowTable, ExplicitPriorityBeatsLength) {
  FlowTable t;
  ASSERT_TRUE(t.insert(entry("1", {9}, /*priority=*/100)));
  ASSERT_TRUE(t.insert(entry("11", {2}, /*priority=*/1)));
  const FlowEntry* hit = t.lookup(dz::dzToAddress(dz("111")));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->outPorts(), (std::vector<PortId>{9}));
}

TEST(FlowTable, DuplicateMatchRejected) {
  FlowTable t;
  ASSERT_TRUE(t.insert(entry("10", {1})));
  EXPECT_FALSE(t.insert(entry("10", {2})));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.stats().rejectedDuplicate, 1u);
}

TEST(FlowTable, InsertOrReplace) {
  FlowTable t;
  ASSERT_TRUE(t.insertOrReplace(entry("10", {1})));
  ASSERT_TRUE(t.insertOrReplace(entry("10", {1, 2})));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.find(dz::dzToPrefix(dz("10")))->outPorts(),
            (std::vector<PortId>{1, 2}));
  EXPECT_EQ(t.stats().modifies, 1u);
}

TEST(FlowTable, Remove) {
  FlowTable t;
  ASSERT_TRUE(t.insert(entry("10", {1})));
  EXPECT_TRUE(t.remove(dz::dzToPrefix(dz("10"))));
  EXPECT_FALSE(t.remove(dz::dzToPrefix(dz("10"))));
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.lookup(dz::dzToAddress(dz("10"))), nullptr);
}

TEST(FlowTable, CapacityModelsTcamLimit) {
  FlowTable t(2);
  EXPECT_TRUE(t.insert(entry("00", {1})));
  EXPECT_TRUE(t.insert(entry("01", {1})));
  EXPECT_FALSE(t.insert(entry("10", {1})));
  EXPECT_EQ(t.stats().rejectedCapacity, 1u);
  EXPECT_EQ(t.size(), 2u);
}

TEST(FlowTable, StatsCountLookups) {
  FlowTable t;
  ASSERT_TRUE(t.insert(entry("1", {1})));
  t.lookup(dz::dzToAddress(dz("1")));
  t.lookup(dz::dzToAddress(dz("0")));
  EXPECT_EQ(t.stats().lookups, 2u);
  EXPECT_EQ(t.stats().hits, 1u);
  EXPECT_EQ(t.stats().misses, 1u);
}

TEST(FlowTable, WholeSpaceFlowMatchesAllPleromaTraffic) {
  FlowTable t;
  ASSERT_TRUE(t.insert(entry("", {4})));
  EXPECT_NE(t.lookup(dz::dzToAddress(dz("00000"))), nullptr);
  EXPECT_NE(t.lookup(dz::dzToAddress(dz("11111"))), nullptr);
  // But not unicast host addresses.
  EXPECT_EQ(t.lookup(hostAddress(3)), nullptr);
}

TEST(FlowTable, ManyPrefixLengthsLookupCorrect) {
  FlowTable t;
  // Nested chain 1, 11, 111, ... — deepest matching wins each time.
  std::string s;
  for (int i = 0; i < 20; ++i) {
    s.push_back('1');
    ASSERT_TRUE(t.insert(entry(s, {i + 1})));
  }
  const FlowEntry* hit = t.lookup(dz::dzToAddress(dz(std::string(24, '1'))));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->match.length, 16 + 20);
  const FlowEntry* mid = t.lookup(dz::dzToAddress(dz("1111100000")));
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->match.length, 16 + 5);
}

TEST(FlowTable, PerFlowCountersTrackMatches) {
  FlowTable t;
  ASSERT_TRUE(t.insert(entry("0", {1})));
  ASSERT_TRUE(t.insert(entry("1", {2})));
  t.lookup(dz::dzToAddress(dz("01")));
  t.lookup(dz::dzToAddress(dz("00")));
  t.lookup(dz::dzToAddress(dz("10")));
  EXPECT_EQ(t.find(dz::dzToPrefix(dz("0")))->matchedPackets, 2u);
  EXPECT_EQ(t.find(dz::dzToPrefix(dz("1")))->matchedPackets, 1u);
}

TEST(FlowTable, ModifyPreservesCounters) {
  FlowTable t;
  ASSERT_TRUE(t.insert(entry("0", {1})));
  t.lookup(dz::dzToAddress(dz("01")));
  FlowEntry updated = entry("0", {1, 5});
  ASSERT_TRUE(t.insertOrReplace(updated));
  EXPECT_EQ(t.find(dz::dzToPrefix(dz("0")))->matchedPackets, 1u);
}

TEST(FlowTable, AttachedMetricsMirrorStats) {
  FlowTable t;
  obs::MetricsRegistry reg;
  t.attachMetrics(reg);
  ASSERT_TRUE(t.insert(entry("0", {1})));
  t.lookup(dz::dzToAddress(dz("00")));  // hit
  t.lookup(dz::dzToAddress(dz("10")));  // miss
  EXPECT_EQ(reg.counter("flow_table.lookups").value(), 2u);
  EXPECT_EQ(reg.counter("flow_table.hits").value(), 1u);
  EXPECT_EQ(reg.counter("flow_table.misses").value(), 1u);
  EXPECT_EQ(reg.histogram("flow_table.probes_per_lookup").count(), 2u);

  // Disabling the family stops the registry updates; the plain stats
  // counters (and per-flow matchedPackets) keep working.
  reg.setFamilyEnabled("flow_table", false);
  t.lookup(dz::dzToAddress(dz("01")));
  EXPECT_EQ(reg.counter("flow_table.lookups").value(), 2u);
  EXPECT_EQ(t.stats().lookups, 3u);
  EXPECT_EQ(t.find(dz::dzToPrefix(dz("0")))->matchedPackets, 2u);
}

TEST(FlowTable, CountersExcludedFromIdentity) {
  FlowEntry a = entry("0", {1});
  FlowEntry b = entry("0", {1});
  a.matchedPackets = 99;
  EXPECT_EQ(a, b);
}

TEST(FlowTable, ClearResets) {
  FlowTable t;
  ASSERT_TRUE(t.insert(entry("0", {1})));
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.lookup(dz::dzToAddress(dz("0"))), nullptr);
  // Re-insert works after clear (length bookkeeping reset).
  EXPECT_TRUE(t.insert(entry("0", {1})));
  EXPECT_NE(t.lookup(dz::dzToAddress(dz("0"))), nullptr);
}

TEST(FlowTable, EntriesMaterialize) {
  FlowTable t;
  ASSERT_TRUE(t.insert(entry("0", {1})));
  ASSERT_TRUE(t.insert(entry("1", {2})));
  EXPECT_EQ(t.entries().size(), 2u);
  int visited = 0;
  t.forEach([&](const FlowEntry&) { ++visited; });
  EXPECT_EQ(visited, 2);
}

}  // namespace
}  // namespace pleroma::net
