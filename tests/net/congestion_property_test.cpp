// Property test of the congestion model's conservation contract
// (network.hpp): under randomized pub/sub churn, link flaps, and switch
// failures on a congested fat-tree, every packet instance admitted to the
// data plane reaches exactly one terminal — delivered, punted, consumed
// by fan-out, dropped with a counted reason, or parked — so the counter
// identity holds at every quiescent point, and the whole run is
// counter-identical at --threads={1,4}.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/pleroma.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace pleroma {
namespace {

void expectConservation(core::Pleroma& p) {
  net::Network& n = p.network();
  const net::NetworkCounters& c = n.counters();
  EXPECT_EQ(c.packetsSentFromHosts + c.packetsInjectedByController +
                c.packetsForwarded,
            c.packetsDeliveredToHosts + c.packetsPuntedToController +
                c.packetsConsumedAtSwitch + c.totalDropped() +
                n.missBufferedPackets() + n.backpressureParkedPackets())
      << "conservation identity violated";
}

/// Full deterministic fingerprint of a run: every aggregate counter, the
/// per-link queue-drop/peak-depth accounting, and the delivery stats.
std::vector<std::uint64_t> digest(core::Pleroma& p) {
  net::Network& n = p.network();
  const net::NetworkCounters& c = n.counters();
  std::vector<std::uint64_t> d = {
      c.packetsForwarded,
      c.packetsPuntedToController,
      c.packetsDeliveredToHosts,
      c.packetsSentFromHosts,
      c.packetsInjectedByController,
      c.packetsConsumedAtSwitch,
      c.packetsBufferedOnMiss,
      c.packetsReplayedFromMissBuffer,
      c.packetsParkedOnBackpressure,
      c.packetsResumedFromBackpressure,
      c.backpressureRetries,
  };
  for (std::size_t r = 0; r < net::kDropReasonCount; ++r) {
    d.push_back(c.dropped(static_cast<net::DropReason>(r)));
  }
  for (net::LinkId l = 0; l < p.topology().linkCount(); ++l) {
    d.push_back(n.linkCounters(l).queueDrops);
    d.push_back(n.peakLinkQueueDepth(l));
  }
  d.push_back(p.deliveryStats().delivered);
  d.push_back(p.deliveryStats().falsePositives);
  d.push_back(static_cast<std::uint64_t>(p.deliveryStats().latencySum));
  return d;
}

/// One randomized churn run on an 8 Mbps 2x2x2x2 fat-tree with 4-deep
/// link queues. The op sequence depends only on the seed (never on
/// simulation results), so two runs with the same seed are replays.
std::vector<std::uint64_t> churnRun(std::uint64_t seed, bool backpressure,
                                    int threads) {
  core::PleromaOptions opts;
  opts.numAttributes = 2;
  opts.threads = threads;
  opts.controller.maxDzLength = 8;
  opts.network.linkQueueCapacity = 4;
  opts.network.backpressure = backpressure;
  opts.network.backpressureBufferCapacity = 8;

  core::Pleroma p(net::Topology::fatTree(2, 2, 2, 2, 50 * net::kMicrosecond,
                                         8.0e6),
                  opts);
  const auto hosts = p.topology().hosts();
  const auto switches = p.topology().switches();
  const net::Topology& topo = p.topology();

  std::vector<net::LinkId> interior;
  for (net::LinkId l = 0; l < topo.linkCount(); ++l) {
    const net::Link& link = topo.link(l);
    if (topo.isSwitch(link.a.node) && topo.isSwitch(link.b.node)) {
      interior.push_back(l);
    }
  }

  workload::WorkloadConfig wcfg;
  wcfg.model = workload::Model::kUniform;
  wcfg.numAttributes = 2;
  wcfg.seed = seed;
  workload::WorkloadGenerator gen(wcfg);
  util::Rng rng(seed * 0x9e3779b9ULL + 1);

  p.advertise(hosts[0], p.controller().space().wholeSpace());
  p.advertise(hosts[2], p.controller().space().wholeSpace());
  std::vector<ctrl::SubscriptionId> subs;
  for (std::size_t i = 0; i < 8; ++i) {
    subs.push_back(
        p.subscribe(hosts[(i * 3) % hosts.size()], gen.makeSubscription()));
  }
  p.settle();

  std::vector<net::LinkId> downLinks;
  std::vector<net::NodeId> downSwitches;
  net::SimTime cursor = p.simulator().now();
  for (int step = 0; step < 400; ++step) {
    p.publish(hosts[step % 2 == 0 ? 0 : 2], gen.makeEvent());

    if (rng.chance(0.08) && downLinks.size() < 2) {
      const net::LinkId l = interior[rng.uniformInt(0, interior.size() - 1)];
      p.network().setLinkUp(l, false);
      p.controller().onLinkDown(l);
      downLinks.push_back(l);
    }
    if (rng.chance(0.10) && !downLinks.empty()) {
      const net::LinkId l = downLinks.back();
      downLinks.pop_back();
      p.network().setLinkUp(l, true);
      p.controller().onLinkUp(l);
    }
    if (rng.chance(0.03) && downSwitches.empty()) {
      // Fail a core switch (never an access switch, which would detach
      // publishers/subscribers outright).
      const net::NodeId sw = switches[rng.uniformInt(0, 1)];
      p.network().setNodeUp(sw, false);
      p.controller().onSwitchDown(sw);
      downSwitches.push_back(sw);
    }
    if (rng.chance(0.06) && !downSwitches.empty()) {
      const net::NodeId sw = downSwitches.back();
      downSwitches.pop_back();
      p.network().setNodeUp(sw, true);
      p.controller().onSwitchUp(sw);
    }
    if (rng.chance(0.10)) {
      subs.push_back(p.subscribe(hosts[rng.uniformInt(0, hosts.size() - 1)],
                                 gen.makeSubscription()));
    }
    if (rng.chance(0.08) && subs.size() > 4) {
      const std::size_t i = rng.uniformInt(0, subs.size() - 1);
      p.unsubscribe(subs[i]);
      subs.erase(subs.begin() + static_cast<std::ptrdiff_t>(i));
    }

    cursor += rng.uniformInt(40, 120) * net::kMicrosecond;
    p.settleUntil(cursor);
    if (step % 50 == 49) {
      p.settle();
      expectConservation(p);
    }
  }

  // Heal everything, drain, and check the final quiescent point.
  for (const net::LinkId l : downLinks) {
    p.network().setLinkUp(l, true);
    p.controller().onLinkUp(l);
  }
  for (const net::NodeId sw : downSwitches) {
    p.network().setNodeUp(sw, true);
    p.controller().onSwitchUp(sw);
  }
  p.settle();
  expectConservation(p);
  EXPECT_EQ(p.network().backpressureParkedPackets(), 0u);
  EXPECT_EQ(p.network().stats().linkQueued, 0u);
  return digest(p);
}

TEST(CongestionConservation, HoldsUnderRandomizedChurnAndFlaps) {
  for (const std::uint64_t seed : {11ull, 23ull, 47ull}) {
    SCOPED_TRACE(seed);
    churnRun(seed, /*backpressure=*/false, /*threads=*/1);
  }
}

TEST(CongestionConservation, HoldsWithBackpressureEnabled) {
  for (const std::uint64_t seed : {11ull, 23ull, 47ull}) {
    SCOPED_TRACE(seed);
    churnRun(seed, /*backpressure=*/true, /*threads=*/1);
  }
}

TEST(CongestionConservation, CountersIdenticalAcrossThreadCounts) {
  for (const bool backpressure : {false, true}) {
    SCOPED_TRACE(backpressure);
    const auto t1 = churnRun(31, backpressure, 1);
    const auto t4 = churnRun(31, backpressure, 4);
    EXPECT_EQ(t1, t4);
  }
}

}  // namespace
}  // namespace pleroma
