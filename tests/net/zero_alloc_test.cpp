// Proves the data-plane fast path is allocation-free at steady state: after
// a warm-up burst sizes the simulator's slabs, run FIFOs, and free lists, a
// second identical burst must complete without a single call to the global
// allocator. The whole point of the pooled PacketEvent lane, the SmallTask
// SBO, and the shared EventPayload is that per-hop cost is O(1) with zero
// heap traffic — this test pins that property so it cannot silently rot.
//
// Counting is done by replacing the global operator new/delete set with a
// thin wrapper that bumps an atomic while a window flag is armed. The
// wrapper still routes through malloc/free, so sanitizers (ASan/LSan) keep
// seeing every allocation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "net/network.hpp"

namespace {

std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_newCalls{0};

void* countedAlloc(std::size_t n) {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
  }
  if (n == 0) n = 1;
  return std::malloc(n);
}

}  // namespace

void* operator new(std::size_t n) {
  if (void* p = countedAlloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  if (void* p = countedAlloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return countedAlloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return countedAlloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace pleroma::net {
namespace {

dz::DzExpression dz(std::string_view s) {
  return *dz::DzExpression::fromString(s);
}

FlowEntry entry(std::string_view dzStr, std::vector<FlowAction> actions) {
  FlowEntry e;
  const auto d = dz(dzStr);
  e.match = dz::dzToPrefix(d);
  e.priority = d.length();
  e.actions = std::move(actions);
  return e;
}

Packet eventPacket(std::string_view dzStr, NodeId fromHost) {
  Packet p;
  EventPayload& payload = p.mutablePayload();
  payload.eventDz = dz(dzStr);
  payload.publisherHost = fromHost;
  p.dst = dz::dzToAddress(payload.eventDz);
  p.src = hostAddress(fromHost);
  return p;
}

/// Counts the global operator-new calls made while alive.
struct AllocWindow {
  AllocWindow() {
    g_newCalls.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_relaxed);
  }
  ~AllocWindow() { g_armed.store(false, std::memory_order_relaxed); }
  std::uint64_t count() const {
    return g_newCalls.load(std::memory_order_relaxed);
  }
};

TEST(ZeroAllocation, SteadyStateHopsDoNotTouchTheHeap) {
  // h1 - R1 - R2 - h2; every hop exercises the packet fast lane, and the
  // host service queue exercises schedulePacketAt.
  Topology topo = Topology::line(2, 100 * kMicrosecond);
  Simulator sim;
  NetworkConfig config;
  config.hostServiceTime = 50 * kMicrosecond;
  Network net(topo, sim, config);

  const NodeId r1 = topo.switches()[0];
  const NodeId r2 = topo.switches()[1];
  const NodeId h1 = topo.hosts()[0];
  const NodeId h2 = topo.hosts()[1];
  net.flowTable(r1).insert(entry(
      "1", {{topo.link(topo.linkAt(r1, 1)).endOf(r1).port, std::nullopt}}));
  net.flowTable(r2).insert(
      entry("1", {{topo.hostAttachment(h2).switchPort, hostAddress(h2)}}));

  std::uint64_t delivered = 0;
  net.setDeliverHandler([&](NodeId, const Packet&) { ++delivered; });

  constexpr int kBurst = 64;

  // Packets are built outside the measured window (constructing a payload
  // allocates by design); the claim is about *hops*, not packet birth.
  const auto makeBurst = [&] {
    std::vector<Packet> burst;
    burst.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) burst.push_back(eventPacket("101", h1));
    return burst;
  };

  // Warm-up: identical bursts size every pool — the PacketEvent slab, the
  // run-coalescing queue's run table and free list, and the heap array.
  // Two rounds, because recycled runs regrow their FIFO capacity lazily on
  // first reuse; the second round replays the exact reuse pattern the
  // measured round will see.
  constexpr int kWarmups = 2;
  for (int round = 0; round < kWarmups; ++round) {
    auto burst = makeBurst();
    for (auto& p : burst) net.sendFromHost(h1, std::move(p));
    sim.run();
  }
  ASSERT_EQ(delivered, static_cast<std::uint64_t>(kWarmups * kBurst));

  // Measured run: same shape, so peak in-flight never exceeds warm-up.
  auto burst = makeBurst();
  std::uint64_t allocs = 0;
  {
    AllocWindow window;
    for (auto& p : burst) net.sendFromHost(h1, std::move(p));
    sim.run();
    allocs = window.count();
  }

  EXPECT_EQ(delivered, static_cast<std::uint64_t>((kWarmups + 1) * kBurst));
  EXPECT_EQ(allocs, 0u)
      << "the packet fast path allocated during steady state";
}

TEST(ZeroAllocation, FanOutSharesThePayload) {
  // One ingress replicated to four hosts: fan-out copies must only bump the
  // shared payload's refcount, never clone event bytes. A 1-1-1 fat-tree
  // with five hosts puts everything on a single edge switch.
  Topology topo = Topology::fatTree(1, 1, 1, 5, 100 * kMicrosecond);
  Simulator sim;
  Network net(topo, sim, NetworkConfig{});

  const auto hosts = topo.hosts();
  const NodeId hub = topo.hostAttachment(hosts[0]).switchNode;
  std::vector<FlowAction> fanout;
  for (std::size_t i = 1; i < hosts.size(); ++i) {
    const auto att = topo.hostAttachment(hosts[i]);
    fanout.push_back({att.switchPort, hostAddress(hosts[i])});
  }
  net.flowTable(hub).insert(entry("1", std::move(fanout)));

  std::uint64_t delivered = 0;
  net.setDeliverHandler([&](NodeId, const Packet&) { ++delivered; });

  constexpr int kRounds = 32;
  const auto makeBurst = [&] {
    std::vector<Packet> burst;
    burst.reserve(kRounds);
    for (int i = 0; i < kRounds; ++i) {
      burst.push_back(eventPacket("101", hosts[0]));
    }
    return burst;
  };

  {
    auto burst = makeBurst();
    for (auto& p : burst) net.sendFromHost(hosts[0], std::move(p));
    sim.run();
  }

  auto burst = makeBurst();
  std::uint64_t allocs = 0;
  {
    AllocWindow window;
    for (auto& p : burst) net.sendFromHost(hosts[0], std::move(p));
    sim.run();
    allocs = window.count();
  }

  EXPECT_EQ(delivered, static_cast<std::uint64_t>(2 * kRounds) *
                           (hosts.size() - 1));
  EXPECT_EQ(allocs, 0u) << "fan-out replication allocated per copy";
}

}  // namespace
}  // namespace pleroma::net
