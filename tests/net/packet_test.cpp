#include "net/packet.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pleroma::net {
namespace {

TEST(Packet, Defaults) {
  const Packet p;
  EXPECT_EQ(p.sizeBytes, 64);
  EXPECT_EQ(p.hopLimit, 64);
  EXPECT_EQ(p.payload, nullptr);
  EXPECT_EQ(p.eventId(), 0u);
  EXPECT_EQ(p.publisherHost(), kInvalidNode);
  EXPECT_EQ(p.sentAt(), 0);
  EXPECT_EQ(p.controlKind, 0);
  EXPECT_EQ(p.control, nullptr);
}

TEST(Packet, FanoutCopiesShareThePayload) {
  Packet p;
  p.mutablePayload().eventId = 7;
  const Packet copy1 = p;
  const Packet copy2 = p;
  EXPECT_EQ(copy1.payload.get(), p.payload.get());
  EXPECT_EQ(copy2.payload.get(), p.payload.get());
  EXPECT_EQ(copy1.eventId(), 7u);
}

TEST(Packet, MutablePayloadClonesOnlyWhenShared) {
  Packet p;
  p.mutablePayload().eventId = 1;
  const EventPayload* sole = p.payload.get();
  p.mutablePayload().eventId = 2;  // sole owner: mutated in place
  EXPECT_EQ(p.payload.get(), sole);

  Packet other = p;  // now shared
  other.mutablePayload().eventId = 3;
  EXPECT_NE(other.payload.get(), p.payload.get());
  EXPECT_EQ(p.eventId(), 2u);  // original copy untouched
  EXPECT_EQ(other.eventId(), 3u);
}

TEST(Packet, PayloadPoolRecyclesBlocks) {
  PayloadPool pool;
  auto first = pool.acquire();
  const void* block = first.get();
  first.reset();  // returns the block to the pool's free list
  EXPECT_EQ(pool.freeBlocks(), 1u);
  auto second = pool.acquire();
  EXPECT_EQ(static_cast<const void*>(second.get()), block);
  EXPECT_EQ(pool.freeBlocks(), 0u);
}

TEST(Packet, PayloadOutlivesPool) {
  std::shared_ptr<EventPayload> payload;
  {
    PayloadPool pool;
    payload = pool.acquire();
    payload->eventId = 42;
  }  // pool object gone; its state lives on via the control block
  EXPECT_EQ(payload->eventId, 42u);
  payload.reset();  // must not crash or leak (ASan-checked in CI)
}

TEST(Packet, HostAddressesUniquePerHost) {
  std::set<dz::Ipv6Address> seen;
  for (NodeId h = 0; h < 100; ++h) {
    EXPECT_TRUE(seen.insert(hostAddress(h)).second) << h;
  }
}

TEST(Packet, HostAddressOutsidePleromaMulticastRange) {
  for (NodeId h : {0, 5, 999}) {
    EXPECT_FALSE(dz::isPleromaAddress(hostAddress(h))) << h;
  }
}

TEST(Packet, HostAddressFormat) {
  // fd00::(h+1): unique-local unicast, never colliding with ff0e multicast.
  EXPECT_EQ(hostAddress(0).toString(),
            "fd00:0000:0000:0000:0000:0000:0000:0001");
  EXPECT_EQ(hostAddress(16).toString(),
            "fd00:0000:0000:0000:0000:0000:0000:0011");
}

TEST(Packet, HostAddressNeverEqualsControlAddress) {
  for (NodeId h = 0; h < 64; ++h) {
    EXPECT_NE(hostAddress(h), dz::kControlAddress);
  }
}

}  // namespace
}  // namespace pleroma::net
