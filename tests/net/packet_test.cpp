#include "net/packet.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pleroma::net {
namespace {

TEST(Packet, Defaults) {
  const Packet p;
  EXPECT_EQ(p.sizeBytes, 64);
  EXPECT_EQ(p.hopLimit, 64);
  EXPECT_EQ(p.eventId, 0u);
  EXPECT_EQ(p.publisherHost, kInvalidNode);
  EXPECT_EQ(p.controlKind, 0);
  EXPECT_EQ(p.control, nullptr);
}

TEST(Packet, HostAddressesUniquePerHost) {
  std::set<dz::Ipv6Address> seen;
  for (NodeId h = 0; h < 100; ++h) {
    EXPECT_TRUE(seen.insert(hostAddress(h)).second) << h;
  }
}

TEST(Packet, HostAddressOutsidePleromaMulticastRange) {
  for (NodeId h : {0, 5, 999}) {
    EXPECT_FALSE(dz::isPleromaAddress(hostAddress(h))) << h;
  }
}

TEST(Packet, HostAddressFormat) {
  // fd00::(h+1): unique-local unicast, never colliding with ff0e multicast.
  EXPECT_EQ(hostAddress(0).toString(),
            "fd00:0000:0000:0000:0000:0000:0000:0001");
  EXPECT_EQ(hostAddress(16).toString(),
            "fd00:0000:0000:0000:0000:0000:0000:0011");
}

TEST(Packet, HostAddressNeverEqualsControlAddress) {
  for (NodeId h = 0; h < 64; ++h) {
    EXPECT_NE(hostAddress(h), dz::kControlAddress);
  }
}

}  // namespace
}  // namespace pleroma::net
