#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pleroma::net {
namespace {

dz::DzExpression dz(std::string_view s) { return *dz::DzExpression::fromString(s); }

FlowEntry entry(std::string_view dzStr, std::vector<FlowAction> actions) {
  FlowEntry e;
  const auto d = dz(dzStr);
  e.match = dz::dzToPrefix(d);
  e.priority = d.length();
  e.actions = std::move(actions);
  return e;
}

Packet eventPacket(std::string_view dzStr, NodeId fromHost) {
  Packet p;
  EventPayload& payload = p.mutablePayload();
  payload.eventDz = dz(dzStr);
  payload.publisherHost = fromHost;
  p.dst = dz::dzToAddress(payload.eventDz);
  p.src = hostAddress(fromHost);
  return p;
}

// Line topology: h1 - R1 - R2 - h2 (hosts at both ends).
struct LineFixture : ::testing::Test {
  LineFixture() : topo(Topology::line(2, 100 * kMicrosecond)) {
    r1 = topo.switches()[0];
    r2 = topo.switches()[1];
    h1 = topo.hosts()[0];
    h2 = topo.hosts()[1];
  }

  Topology topo;
  Simulator sim;
  NodeId r1, r2, h1, h2;
};

TEST_F(LineFixture, ForwardsAlongInstalledFlows) {
  Network net(topo, sim, {});
  // R1: events dz=1* toward R2 (port 1 on R1 is the R1-R2 link).
  net.flowTable(r1).insert(entry("1", {{topo.link(topo.linkAt(r1, 1)).endOf(r1).port, std::nullopt}}));
  // R2: toward h2 with rewrite.
  const auto attH2 = topo.hostAttachment(h2);
  net.flowTable(r2).insert(entry("1", {{attH2.switchPort, hostAddress(h2)}}));

  std::vector<std::pair<NodeId, dz::Ipv6Address>> delivered;
  net.setDeliverHandler([&](NodeId host, const Packet& pkt) {
    delivered.emplace_back(host, pkt.dst);
  });
  net.sendFromHost(h1, eventPacket("101", h1));
  sim.run();

  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].first, h2);
  EXPECT_EQ(delivered[0].second, hostAddress(h2));  // rewritten at terminal
  EXPECT_EQ(net.counters().packetsDeliveredToHosts, 1u);
}

TEST_F(LineFixture, DownNodeDropsTrafficAndClearsTable) {
  Network net(topo, sim, {});
  net.flowTable(r1).insert(entry("1", {{topo.link(topo.linkAt(r1, 1)).endOf(r1).port, std::nullopt}}));
  const auto attH2 = topo.hostAttachment(h2);
  net.flowTable(r2).insert(entry("1", {{attH2.switchPort, hostAddress(h2)}}));

  // R2 fails: its TCAM is lost and packets die at the dead node.
  net.setNodeUp(r2, false);
  EXPECT_FALSE(net.nodeUp(r2));
  EXPECT_TRUE(net.flowTable(r2).empty());
  net.sendFromHost(h1, eventPacket("101", h1));
  sim.run();
  EXPECT_EQ(net.counters().packetsDeliveredToHosts, 0u);
  EXPECT_GT(net.counters().dropped(net::DropReason::kNodeDown), 0u);

  // Reboot: node is up again but the table stays blank until resynced.
  net.setNodeUp(r2, true);
  EXPECT_TRUE(net.nodeUp(r2));
  EXPECT_TRUE(net.flowTable(r2).empty());
}

TEST_F(LineFixture, DropsOnNoMatch) {
  Network net(topo, sim, {});
  net.sendFromHost(h1, eventPacket("101", h1));
  sim.run();
  EXPECT_EQ(net.counters().dropped(net::DropReason::kNoMatch), 1u);
  EXPECT_EQ(net.counters().packetsDeliveredToHosts, 0u);
}

TEST_F(LineFixture, ControlAddressPuntsToController) {
  Network net(topo, sim, {});
  // Even a whole-space flow must NOT capture IP_mid packets.
  net.flowTable(r1).insert(entry("", {{1, std::nullopt}}));

  std::vector<NodeId> punts;
  net.setPacketInHandler(
      [&](NodeId sw, PortId, const Packet&) { punts.push_back(sw); });

  Packet p;
  p.dst = dz::kControlAddress;
  net.sendFromHost(h1, p);
  sim.run();
  ASSERT_EQ(punts.size(), 1u);
  EXPECT_EQ(punts[0], r1);
  EXPECT_EQ(net.counters().packetsPuntedToController, 1u);
}

TEST_F(LineFixture, NeverReflectsOutIngressPort) {
  Network net(topo, sim, {});
  const auto attH1 = topo.hostAttachment(h1);
  // Flow on R1 lists the ingress port (towards h1) as an out port.
  net.flowTable(r1).insert(entry("1", {{attH1.switchPort, std::nullopt}}));
  int delivered = 0;
  net.setDeliverHandler([&](NodeId, const Packet&) { ++delivered; });
  net.sendFromHost(h1, eventPacket("1", h1));
  sim.run();
  EXPECT_EQ(delivered, 0);  // not bounced back to the sender
}

TEST_F(LineFixture, EndToEndLatencyIsSumOfHops) {
  NetworkConfig cfg;
  cfg.switchProcessingDelay = 10 * kMicrosecond;
  Network net(topo, sim, cfg);
  net.flowTable(r1).insert(
      entry("1", {{topo.link(topo.linkAt(r1, 1)).endOf(r1).port, std::nullopt}}));
  const auto attH2 = topo.hostAttachment(h2);
  net.flowTable(r2).insert(entry("1", {{attH2.switchPort, hostAddress(h2)}}));

  SimTime deliveredAt = -1;
  net.setDeliverHandler([&](NodeId, const Packet&) { deliveredAt = sim.now(); });
  net.sendFromHost(h1, eventPacket("1", h1));
  sim.run();
  // 3 links x 100us + 2 switches x 10us.
  EXPECT_EQ(deliveredAt, 3 * 100 * kMicrosecond + 2 * 10 * kMicrosecond);
}

TEST_F(LineFixture, MulticastToTwoPorts) {
  Network net(topo, sim, {});
  const auto attH1 = topo.hostAttachment(h1);
  // R1 forwards both back toward... use R1's two other ports: host + R2.
  net.flowTable(r1).insert(
      entry("1", {{attH1.switchPort, hostAddress(h1)},
                  {topo.link(topo.linkAt(r1, 1)).endOf(r1).port, std::nullopt}}));
  const auto attH2 = topo.hostAttachment(h2);
  net.flowTable(r2).insert(entry("1", {{attH2.switchPort, hostAddress(h2)}}));

  std::vector<NodeId> hosts;
  net.setDeliverHandler([&](NodeId host, const Packet&) { hosts.push_back(host); });
  // Inject at R1 from the R2 side so both out-ports are non-ingress.
  net.injectAtSwitch(r1, topo.link(topo.linkAt(r1, 1)).endOf(r1).port,
                     eventPacket("1", h2));
  sim.run();
  ASSERT_EQ(hosts.size(), 1u);  // only h1; R2-side is the ingress
  EXPECT_EQ(hosts[0], h1);
}

TEST_F(LineFixture, HostQueueSaturation) {
  NetworkConfig cfg;
  cfg.hostServiceTime = 1 * kMillisecond;  // 1000 events/s max
  cfg.hostQueueCapacity = 4;
  Network net(topo, sim, cfg);
  const auto attH1 = topo.hostAttachment(h1);
  net.flowTable(r1).insert(entry("", {{attH1.switchPort, hostAddress(h1)}}));

  int delivered = 0;
  net.setDeliverHandler([&](NodeId, const Packet&) { ++delivered; });
  // Blast 100 packets within ~1 ms from the R2 side: the 1 ms/packet host
  // can only drain a few; the rest overflow the 4-slot queue.
  for (int i = 0; i < 100; ++i) {
    sim.schedule(i * 10 * kMicrosecond, [&, i] {
      net.injectAtSwitch(r1, topo.link(topo.linkAt(r1, 1)).endOf(r1).port,
                         eventPacket("1", h2));
    });
  }
  sim.run();
  EXPECT_GT(net.counters().dropped(net::DropReason::kHostQueue), 50u);
  EXPECT_LT(static_cast<std::size_t>(delivered), 100u);
  EXPECT_EQ(static_cast<std::uint64_t>(delivered),
            net.counters().packetsDeliveredToHosts);
}

TEST_F(LineFixture, LinkCountersAccumulate) {
  Network net(topo, sim, {});
  const auto attH1 = topo.hostAttachment(h1);
  net.flowTable(r1).insert(entry("", {{attH1.switchPort, hostAddress(h1)}}));
  Packet p = eventPacket("1", h2);
  p.sizeBytes = 64;
  net.injectAtSwitch(r1, topo.link(topo.linkAt(r1, 1)).endOf(r1).port, p);
  sim.run();
  EXPECT_EQ(net.totalLinkBytes(), 64u);
  EXPECT_EQ(net.linkCounters(topo.linkAt(h1, 1)).packets, 1u);
}

TEST_F(LineFixture, HopLimitExpiryDropsPacket) {
  Network net(topo, sim, {});
  const auto attH2 = topo.hostAttachment(h2);
  net.flowTable(r1).insert(
      entry("1", {{topo.link(topo.linkAt(r1, 1)).endOf(r1).port, std::nullopt}}));
  net.flowTable(r2).insert(entry("1", {{attH2.switchPort, hostAddress(h2)}}));

  int delivered = 0;
  net.setDeliverHandler([&](NodeId, const Packet&) { ++delivered; });
  Packet p = eventPacket("1", h1);
  p.hopLimit = 1;  // expires at the second switch
  net.sendFromHost(h1, p);
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.counters().dropped(net::DropReason::kHopLimit), 1u);

  Packet ok = eventPacket("1", h1);
  ok.hopLimit = 2;
  net.sendFromHost(h1, ok);
  sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Network, ForwardingLoopTerminatesViaHopLimit) {
  // Adversarial flow set on a physical cycle: each ring switch forwards
  // matching packets clockwise, so a packet circulates forever were it not
  // for the hop limit. (The controller never installs cycles inside a
  // partition — tree edges are acyclic — but flow sets on *cyclic
  // inter-partition graphs* can, see DESIGN.md.)
  Topology ringTopo = Topology::ring(3, 10 * kMicrosecond);
  Simulator sim;
  Network net(ringTopo, sim, {});
  const auto sw = ringTopo.switches();
  for (std::size_t i = 0; i < sw.size(); ++i) {
    // Port toward the clockwise neighbour.
    const NodeId next = sw[(i + 1) % sw.size()];
    PortId out = kInvalidPort;
    for (const auto& [port, lid] : ringTopo.portsOf(sw[i])) {
      if (ringTopo.link(lid).peerOf(sw[i]).node == next) out = port;
    }
    ASSERT_NE(out, kInvalidPort);
    net.flowTable(sw[i]).insert(entry("1", {{out, std::nullopt}}));
  }

  Packet p = eventPacket("1", ringTopo.hosts()[0]);
  p.hopLimit = 64;
  net.injectAtSwitch(sw[0], kInvalidPort, p);
  sim.run();  // must terminate
  EXPECT_EQ(net.counters().dropped(net::DropReason::kHopLimit), 1u);
  EXPECT_LE(net.counters().packetsForwarded, 65u);
}

TEST_F(LineFixture, BandwidthAddsTransmissionDelay) {
  Topology t;
  const NodeId s = t.addSwitch();
  const NodeId ha = t.addHost();
  const NodeId hb = t.addHost();
  t.connect(s, ha, 0, /*bandwidthBps=*/8000.0);  // 1 byte per ms
  t.connect(s, hb, 0, 8000.0);
  Simulator sim2;
  NetworkConfig cfg;
  cfg.switchProcessingDelay = 0;
  Network net(t, sim2, cfg);
  net.flowTable(s).insert(
      entry("", {{t.hostAttachment(hb).switchPort, hostAddress(hb)}}));
  SimTime deliveredAt = -1;
  net.setDeliverHandler([&](NodeId, const Packet&) { deliveredAt = sim2.now(); });
  Packet p = eventPacket("1", ha);
  p.sizeBytes = 10;
  net.sendFromHost(ha, p);
  sim2.run();
  // Two links x 10 bytes at 1 byte/ms = 20 ms total.
  EXPECT_EQ(deliveredAt, 20 * kMillisecond);
}

}  // namespace
}  // namespace pleroma::net
