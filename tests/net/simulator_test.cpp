#include "net/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pleroma::net {
namespace {

TEST(Simulator, StartsAtZeroIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.run(), 0u);
}

TEST(Simulator, RunsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(300, [&] { order.push_back(3); });
  sim.schedule(100, [&] { order.push_back(1); });
  sim.schedule(200, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(100, [&] { order.push_back(1); });
  sim.schedule(100, [&] { order.push_back(2); });
  sim.schedule(100, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule(10, [&] {
    times.push_back(sim.now());
    sim.schedule(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule(100, [&] { ++fired; });
  sim.schedule(200, [&] { ++fired; });
  sim.schedule(300, [&] { ++fired; });
  EXPECT_EQ(sim.runUntil(200), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 200);
  EXPECT_EQ(sim.pendingEvents(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueDrains) {
  Simulator sim;
  sim.schedule(50, [] {});
  sim.runUntil(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulator, ProcessedEventsAccumulates) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(i, [] {});
  sim.run();
  EXPECT_EQ(sim.processedEvents(), 5u);
  sim.schedule(1, [] {});
  sim.run();
  EXPECT_EQ(sim.processedEvents(), 6u);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  sim.schedule(100, [] {});
  sim.run();
  SimTime seen = -1;
  sim.scheduleAt(250, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 250);
}

TEST(SmallTask, SmallCapturesStayInline) {
  int x = 0;
  SmallTask t = [&x] { ++x; };  // one pointer: far under kInlineBytes
  EXPECT_TRUE(t.inlineStored());
  t();
  EXPECT_EQ(x, 1);
}

TEST(SmallTask, LargeCapturesFallBackToBox) {
  struct Big {
    char pad[SmallTask::kInlineBytes + 8] = {};
  };
  Big big;
  int calls = 0;
  SmallTask t = [big, &calls] { (void)big; ++calls; };
  EXPECT_FALSE(t.inlineStored());
  t();
  EXPECT_EQ(calls, 1);
}

TEST(SmallTask, MovePreservesTheCallable) {
  int x = 0;
  SmallTask a = [&x] { x += 7; };
  SmallTask b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(x, 7);
}

/// Records every packet event it receives, with the clock reading.
struct RecordingSink : PacketSink {
  struct Rec {
    SimTime when;
    PacketEventKind kind;
    NodeId node;
    PortId port;
  };
  explicit RecordingSink(Simulator& sim) : sim(&sim) {}
  void onPacketEvent(PacketEventKind kind, NodeId node, PortId port,
                     Packet&&) override {
    recs.push_back({sim->now(), kind, node, port});
  }
  Simulator* sim;
  std::vector<Rec> recs;
};

TEST(Simulator, PacketLaneRunsInTimeOrder) {
  Simulator sim;
  RecordingSink sink(sim);
  sim.schedulePacket(300, sink, PacketEventKind::kArrive, 3, 0, Packet{});
  sim.schedulePacket(100, sink, PacketEventKind::kArrive, 1, 0, Packet{});
  sim.schedulePacket(200, sink, PacketEventKind::kArrive, 2, 0, Packet{});
  EXPECT_EQ(sim.run(), 3u);
  ASSERT_EQ(sink.recs.size(), 3u);
  EXPECT_EQ(sink.recs[0].node, 1);
  EXPECT_EQ(sink.recs[1].node, 2);
  EXPECT_EQ(sink.recs[2].node, 3);
  EXPECT_EQ(sink.recs[2].when, 300);
}

TEST(Simulator, LanesInterleaveByScheduleOrderOnTies) {
  // Both lanes at the same timestamp must fire in schedule order — the
  // run-coalescing queue stores mixed-lane runs, and the tag bit must not
  // leak into ordering.
  Simulator sim;
  std::vector<int> order;
  struct OrderSink : PacketSink {
    std::vector<int>* order = nullptr;
    void onPacketEvent(PacketEventKind, NodeId node, PortId,
                       Packet&&) override {
      order->push_back(static_cast<int>(node));
    }
  } sink;
  sink.order = &order;
  sim.schedule(100, [&] { order.push_back(1); });
  sim.schedulePacket(100, sink, PacketEventKind::kArrive, 2, 0, Packet{});
  sim.schedule(100, [&] { order.push_back(3); });
  sim.schedulePacket(100, sink, PacketEventKind::kArrive, 4, 0, Packet{});
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Simulator, PacketEventsRescheduleFromHandler) {
  // A handler pushing a delay-0 event must land in a fresh run (its slot
  // and run were recycled before dispatch) and still execute this instant.
  Simulator sim;
  struct Chain : PacketSink {
    Simulator* sim = nullptr;
    int hops = 0;
    void onPacketEvent(PacketEventKind kind, NodeId node, PortId port,
                       Packet&& p) override {
      ++hops;
      if (hops < 5) {
        sim->schedulePacket(0, *this, kind, node, port, std::move(p));
      }
    }
  } chain;
  chain.sim = &sim;
  sim.schedulePacket(10, chain, PacketEventKind::kArrive, 1, 0, Packet{});
  sim.run();
  EXPECT_EQ(chain.hops, 5);
  EXPECT_EQ(sim.now(), 10);
  EXPECT_EQ(sim.processedEvents(), 5u);
}

TEST(Simulator, PendingEventsTracksRunsAcrossLanes) {
  Simulator sim;
  RecordingSink sink(sim);
  // Two coalesced runs (same-when bursts) plus a lone event: pendingEvents
  // must count events, not heap entries.
  for (int i = 0; i < 4; ++i) sim.schedule(100, [] {});
  for (int i = 0; i < 3; ++i) {
    sim.schedulePacket(100, sink, PacketEventKind::kArrive, i, 0, Packet{});
  }
  sim.schedule(200, [] {});
  EXPECT_EQ(sim.pendingEvents(), 8u);
  sim.runUntil(100);
  EXPECT_EQ(sim.pendingEvents(), 1u);
  sim.run();
  EXPECT_EQ(sim.pendingEvents(), 0u);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, MixedLaneDeterminism) {
  // The same interleaved schedule replayed on two simulators produces the
  // identical dispatch sequence (node ids double as sequence markers).
  const auto runOnce = [] {
    Simulator sim;
    RecordingSink sink(sim);
    std::vector<SimTime> taskTimes;
    for (int i = 0; i < 50; ++i) {
      const SimTime when = (i * 37) % 11;  // colliding timestamps
      sim.schedulePacket(when, sink, PacketEventKind::kArrive, i, 0, Packet{});
      if (i % 3 == 0) {
        sim.schedule(when, [&, i] { taskTimes.push_back(i); });
      }
    }
    sim.run();
    std::vector<std::pair<SimTime, NodeId>> seq;
    for (const auto& r : sink.recs) seq.emplace_back(r.when, r.node);
    return std::pair{seq, taskTimes};
  };
  const auto a = runOnce();
  const auto b = runOnce();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace pleroma::net
