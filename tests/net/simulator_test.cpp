#include "net/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pleroma::net {
namespace {

TEST(Simulator, StartsAtZeroIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.run(), 0u);
}

TEST(Simulator, RunsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(300, [&] { order.push_back(3); });
  sim.schedule(100, [&] { order.push_back(1); });
  sim.schedule(200, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(100, [&] { order.push_back(1); });
  sim.schedule(100, [&] { order.push_back(2); });
  sim.schedule(100, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule(10, [&] {
    times.push_back(sim.now());
    sim.schedule(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule(100, [&] { ++fired; });
  sim.schedule(200, [&] { ++fired; });
  sim.schedule(300, [&] { ++fired; });
  EXPECT_EQ(sim.runUntil(200), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 200);
  EXPECT_EQ(sim.pendingEvents(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueDrains) {
  Simulator sim;
  sim.schedule(50, [] {});
  sim.runUntil(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulator, ProcessedEventsAccumulates) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(i, [] {});
  sim.run();
  EXPECT_EQ(sim.processedEvents(), 5u);
  sim.schedule(1, [] {});
  sim.run();
  EXPECT_EQ(sim.processedEvents(), 6u);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  sim.schedule(100, [] {});
  sim.run();
  SimTime seen = -1;
  sim.scheduleAt(250, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 250);
}

}  // namespace
}  // namespace pleroma::net
