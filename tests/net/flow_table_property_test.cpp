// Property test: the hash-indexed FlowTable must agree with a trivially
// correct linear-scan reference on every operation under random churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/flow_table.hpp"
#include "util/rng.hpp"

namespace pleroma::net {
namespace {

/// Linear-scan reference model of the TCAM semantics.
class ReferenceTable {
 public:
  bool insert(const FlowEntry& e) {
    if (find(e.match) != nullptr) return false;
    entries_.push_back(e);
    return true;
  }
  bool insertOrReplace(const FlowEntry& e) {
    for (auto& x : entries_) {
      if (x.match == e.match) {
        const std::uint64_t kept = x.matchedPackets;  // modify keeps counters
        x = e;
        x.matchedPackets = kept;
        return true;
      }
    }
    entries_.push_back(e);
    return true;
  }
  bool remove(const dz::Ipv6Prefix& match) {
    const auto it = std::find_if(entries_.begin(), entries_.end(),
                                 [&](const FlowEntry& e) { return e.match == match; });
    if (it == entries_.end()) return false;
    entries_.erase(it);
    return true;
  }
  const FlowEntry* find(const dz::Ipv6Prefix& match) const {
    for (const auto& e : entries_) {
      if (e.match == match) return &e;
    }
    return nullptr;
  }
  const FlowEntry* lookup(dz::Ipv6Address a) const {
    const FlowEntry* best = nullptr;
    for (const auto& e : entries_) {
      if (!e.match.matches(a)) continue;
      if (best == nullptr || e.priority > best->priority ||
          (e.priority == best->priority && e.match.length > best->match.length)) {
        best = &e;
      }
    }
    return best;
  }
  /// lookup + the per-flow counter bump the real table performs on a hit
  /// (matchedPackets is mutable, mirroring the real entry).
  const FlowEntry* lookupCounting(dz::Ipv6Address a) const {
    const FlowEntry* best = lookup(a);
    if (best != nullptr) ++best->matchedPackets;
    return best;
  }
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<FlowEntry> entries_;
};

dz::DzExpression randomDz(util::Rng& rng, int maxLen) {
  const int len =
      static_cast<int>(rng.uniformInt(0, static_cast<std::uint64_t>(maxLen)));
  dz::U128 bits;
  for (int i = 0; i < len; ++i) bits.setBitFromMsb(i, rng.chance(0.5));
  return dz::DzExpression(bits, len);
}

class FlowTablePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTablePropertyTest, MatchesReferenceUnderChurn) {
  util::Rng rng(GetParam());
  FlowTable table;
  ReferenceTable reference;
  std::vector<dz::Ipv6Prefix> live;

  for (int step = 0; step < 2000; ++step) {
    const auto dice = rng.uniformInt(0, 9);
    if (dice < 5) {
      FlowEntry e;
      const dz::DzExpression d = randomDz(rng, 10);
      e.match = dz::dzToPrefix(d);
      // Random priority: exercise priority-over-length semantics too.
      e.priority = static_cast<int>(rng.uniformInt(0, 20));
      e.actions.push_back(
          FlowAction{static_cast<PortId>(rng.uniformInt(1, 4)), std::nullopt});
      const bool a = table.insert(e);
      const bool b = reference.insert(e);
      ASSERT_EQ(a, b);
      if (a) live.push_back(e.match);
    } else if (dice < 7 && !live.empty()) {
      const std::size_t victim = rng.uniformInt(0, live.size() - 1);
      const bool a = table.remove(live[victim]);
      const bool b = reference.remove(live[victim]);
      ASSERT_EQ(a, b);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      const dz::Ipv6Address probe = dz::dzToAddress(randomDz(rng, 12));
      const FlowEntry* a = table.lookup(probe);
      const FlowEntry* b = reference.lookup(probe);
      ASSERT_EQ(a == nullptr, b == nullptr) << "step " << step;
      if (a != nullptr) {
        // The same winner must be chosen. Ambiguity is possible only when
        // priority AND length tie — compare the deciding keys instead of
        // identity.
        EXPECT_EQ(a->priority, b->priority);
        EXPECT_EQ(a->match.length, b->match.length);
      }
    }
    ASSERT_EQ(table.size(), reference.size());
  }
}

TEST_P(FlowTablePropertyTest, FindAgreesWithReference) {
  util::Rng rng(GetParam() + 77);
  FlowTable table;
  ReferenceTable reference;
  for (int i = 0; i < 300; ++i) {
    FlowEntry e;
    e.match = dz::dzToPrefix(randomDz(rng, 8));
    e.priority = e.match.length;
    e.actions.push_back(FlowAction{1, std::nullopt});
    table.insert(e);
    reference.insert(e);
  }
  for (int i = 0; i < 300; ++i) {
    const auto probe = dz::dzToPrefix(randomDz(rng, 8));
    EXPECT_EQ(table.find(probe) == nullptr, reference.find(probe) == nullptr);
  }
}

// Full-surface churn: insert, insertOrReplace, remove, and lookup against
// the reference, asserting identical winners, identical per-flow
// matchedPackets counters (modify must preserve them, lookup must bump
// exactly the winner's), and an exactly-predicted stats block. Enough
// volume per length that buckets cross the sorted->flat threshold and
// shrink back, exercising both representations and the rebuild hysteresis.
TEST_P(FlowTablePropertyTest, ModifyAndCountersMatchReference) {
  util::Rng rng(GetParam() + 4242);
  FlowTable table;
  ReferenceTable reference;
  std::vector<dz::Ipv6Prefix> live;

  std::uint64_t expectInserts = 0;
  std::uint64_t expectModifies = 0;
  std::uint64_t expectRemoves = 0;
  std::uint64_t expectDuplicates = 0;
  std::uint64_t expectLookups = 0;
  std::uint64_t expectHits = 0;
  std::uint64_t expectMisses = 0;

  const auto randomEntry = [&] {
    FlowEntry e;
    e.match = dz::dzToPrefix(randomDz(rng, 6));  // short: force collisions
    e.priority = static_cast<int>(rng.uniformInt(0, 5));
    e.actions.push_back(
        FlowAction{static_cast<PortId>(rng.uniformInt(1, 4)), std::nullopt});
    // Sometimes spill past the inline action buffer.
    if (rng.chance(0.2)) {
      e.actions.push_back(FlowAction{5, std::nullopt});
      e.actions.push_back(FlowAction{6, std::nullopt});
    }
    return e;
  };

  for (int step = 0; step < 4000; ++step) {
    const auto dice = rng.uniformInt(0, 9);
    if (dice < 3) {
      const FlowEntry e = randomEntry();
      const bool a = table.insert(e);
      ASSERT_EQ(a, reference.insert(e));
      if (a) {
        live.push_back(e.match);
        ++expectInserts;
      } else {
        ++expectDuplicates;
      }
    } else if (dice < 5) {
      // Half the time target a live prefix so the modify path is hit.
      FlowEntry e = randomEntry();
      if (!live.empty() && rng.chance(0.5)) {
        e.match = live[rng.uniformInt(0, live.size() - 1)];
      }
      const bool existed = reference.find(e.match) != nullptr;
      ASSERT_TRUE(table.insertOrReplace(e));
      ASSERT_TRUE(reference.insertOrReplace(e));
      if (existed) {
        ++expectModifies;
      } else {
        live.push_back(e.match);
        ++expectInserts;
      }
    } else if (dice < 7 && !live.empty()) {
      const std::size_t victim = rng.uniformInt(0, live.size() - 1);
      ASSERT_TRUE(table.remove(live[victim]));
      ASSERT_TRUE(reference.remove(live[victim]));
      ++expectRemoves;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      const dz::Ipv6Address probe = dz::dzToAddress(randomDz(rng, 8));
      const FlowEntry* a = table.lookup(probe);
      const FlowEntry* b = reference.lookupCounting(probe);
      ++expectLookups;
      ASSERT_EQ(a == nullptr, b == nullptr) << "step " << step;
      if (a != nullptr) {
        ++expectHits;
        EXPECT_EQ(a->priority, b->priority);
        EXPECT_EQ(a->match.length, b->match.length);
      } else {
        ++expectMisses;
      }
    }
    ASSERT_EQ(table.size(), reference.size());
  }

  // Every surviving entry agrees field-for-field, including the per-flow
  // counter, when read back through find().
  std::size_t checked = 0;
  for (const dz::Ipv6Prefix& m : live) {
    const FlowEntry* a = table.find(m);
    const FlowEntry* b = reference.find(m);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(*a == *b);
    EXPECT_EQ(a->matchedPackets, b->matchedPackets) << m.toString();
    ++checked;
  }
  EXPECT_EQ(checked, table.size());

  const FlowTableStats& s = table.stats();
  EXPECT_EQ(s.inserts.value(), expectInserts);
  EXPECT_EQ(s.modifies.value(), expectModifies);
  EXPECT_EQ(s.removes.value(), expectRemoves);
  EXPECT_EQ(s.rejectedDuplicate.value(), expectDuplicates);
  EXPECT_EQ(s.lookups.value(), expectLookups);
  EXPECT_EQ(s.hits.value(), expectHits);
  EXPECT_EQ(s.misses.value(), expectMisses);
  EXPECT_EQ(s.rejectedCapacity.value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTablePropertyTest,
                         ::testing::Values(5u, 55u, 555u));

}  // namespace
}  // namespace pleroma::net
