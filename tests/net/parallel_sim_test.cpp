// Pins the determinism contract of parallel run execution (DESIGN.md §10):
// with a worker pool attached, delivery order, callback order, counters,
// and event accounting must be *identical* to the single-threaded build —
// not merely equivalent — and the parallel path must actually engage (a
// silently-sequential "parallel" mode would pass any equivalence test).
// Also pins the fallback rules: mixed-lane runs, punted packets, and
// below-threshold runs execute sequentially.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string_view>
#include <tuple>
#include <vector>

#include "net/network.hpp"
#include "util/worker_pool.hpp"

namespace pleroma::net {
namespace {

dz::DzExpression dz(std::string_view s) {
  return *dz::DzExpression::fromString(s);
}

FlowEntry entry(std::string_view dzStr, std::vector<FlowAction> actions) {
  FlowEntry e;
  const auto d = dz(dzStr);
  e.match = dz::dzToPrefix(d);
  e.priority = d.length();
  e.actions = std::move(actions);
  return e;
}

Packet eventPacket(std::string_view dzStr, NodeId fromHost, EventId id) {
  Packet p;
  EventPayload& payload = p.mutablePayload();
  payload.eventDz = dz(dzStr);
  payload.publisherHost = fromHost;
  payload.eventId = id;
  p.dst = dz::dzToAddress(payload.eventDz);
  p.src = hostAddress(fromHost);
  return p;
}

PortId portToward(const Topology& topo, NodeId from, NodeId to) {
  for (LinkId l = 0; l < topo.linkCount(); ++l) {
    const Link& link = topo.link(l);
    if (link.a.node == from && link.b.node == to) return link.a.port;
    if (link.b.node == from && link.a.node == to) return link.b.port;
  }
  return kInvalidPort;
}

struct RunLog {
  /// (host, event, delivery time) in callback order.
  std::vector<std::tuple<NodeId, EventId, SimTime>> deliveries;
  std::uint64_t processed = 0;
  std::uint64_t parallelRuns = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t delivered = 0;
  std::uint64_t droppedQueue = 0;
  SimTime endTime = 0;

  friend bool operator==(const RunLog&, const RunLog&) = default;
};

/// Publishes `rounds` bursts of `burst` events from the first host of a
/// 4-switch line whose flow tables flood dz "1" to every host, and logs
/// the complete delivery sequence. `pool == nullptr` is the sequential
/// reference.
RunLog runLineFanout(util::WorkerPool* pool, std::size_t threshold,
                     NetworkConfig config = {}, int rounds = 3,
                     int burst = 32, bool republishFromCallback = false,
                     bool blockPlacement = false) {
  Topology topo = Topology::line(4, 100 * kMicrosecond);
  Simulator sim;
  if (pool != nullptr) {
    sim.setWorkerPool(pool);
    sim.setParallelThreshold(threshold);
    if (blockPlacement) {
      sim.setShardPlacement(blockShardPlacement(topo, pool->threads()));
    }
  }
  Network net(topo, sim, config);

  const auto switches = topo.switches();
  const auto hosts = topo.hosts();
  for (std::size_t i = 0; i < switches.size(); ++i) {
    const NodeId sw = switches[i];
    std::vector<FlowAction> actions;
    const auto att = topo.hostAttachment(hosts[i]);
    actions.push_back({att.switchPort, hostAddress(hosts[i])});
    if (i + 1 < switches.size()) {
      actions.push_back({portToward(topo, sw, switches[i + 1]), std::nullopt});
    }
    net.flowTable(sw).insert(entry("1", std::move(actions)));
  }

  RunLog log;
  net.setDeliverHandler([&](NodeId host, const Packet& p) {
    log.deliveries.emplace_back(host, p.eventId(), sim.now());
    // A callback that feeds traffic back in exercises scheduling from the
    // merge phase: republished packets must get the same sequence numbers
    // the sequential build assigns.
    if (republishFromCallback && p.eventId() < 1000 && host == hosts[3]) {
      // Re-inject at the head host (the tail's switch has no forward-facing
      // action), so the republished generation traverses the whole line.
      net.sendFromHost(hosts[0], eventPacket("1", hosts[0], p.eventId() + 1000));
    }
  });

  for (int round = 0; round < rounds; ++round) {
    for (int i = 0; i < burst; ++i) {
      net.sendFromHost(hosts[0],
                       eventPacket("1", hosts[0],
                                   static_cast<EventId>(round * 100 + i)));
    }
    sim.run();
  }
  log.processed = sim.processedEvents();
  log.parallelRuns = sim.parallelRunsExecuted();
  log.forwarded = net.counters().packetsForwarded;
  log.delivered = net.counters().packetsDeliveredToHosts;
  log.droppedQueue = net.counters().dropped(net::DropReason::kHostQueue);
  log.endTime = sim.now();
  return log;
}

RunLog withoutEngagement(RunLog log) {
  log.parallelRuns = 0;
  return log;
}

TEST(ParallelSim, FanoutIsByteIdenticalAcrossThreadCounts) {
  const RunLog seq = runLineFanout(nullptr, 2);
  EXPECT_EQ(seq.parallelRuns, 0u);
  ASSERT_FALSE(seq.deliveries.empty());

  for (const int threads : {2, 4}) {
    util::WorkerPool pool(threads);
    const RunLog par = runLineFanout(&pool, 2);
    EXPECT_GT(par.parallelRuns, 0u) << threads << " threads never forked";
    EXPECT_EQ(withoutEngagement(par), withoutEngagement(seq))
        << "thread count " << threads << " changed observable behaviour";
  }
}

TEST(ParallelSim, BlockPlacementWithPinnedWorkersIsByteIdentical) {
  // Placement decides only which worker executes a shard; effects replay in
  // canonical order regardless, so the cache-topology-aware configuration
  // (block placement + pinned workers) must be byte-identical to both the
  // sequential build and the strided default.
  const RunLog seq = runLineFanout(nullptr, 2);
  for (const int threads : {2, 4}) {
    util::WorkerPool pool(threads, /*pinThreads=*/true);
    const RunLog par = runLineFanout(&pool, 2, {}, 3, 32,
                                     /*republishFromCallback=*/false,
                                     /*blockPlacement=*/true);
    EXPECT_GT(par.parallelRuns, 0u) << threads << " threads never forked";
    EXPECT_EQ(withoutEngagement(par), withoutEngagement(seq))
        << "block placement at " << threads << " threads changed behaviour";
  }
}

TEST(ParallelSim, OutOfRangePlacementEntriesFallBackToStrided) {
  // A placement table built for a different pool size (entries >= threads)
  // or a smaller topology (keys beyond the table) must degrade to the
  // strided mapping, not crash or misassign.
  const RunLog seq = runLineFanout(nullptr, 2);
  util::WorkerPool pool(2, false);
  Topology topo = Topology::line(4, 100 * kMicrosecond);
  std::vector<int> bogus(static_cast<std::size_t>(topo.nodeCount() / 2), 99);
  Simulator sim;
  sim.setWorkerPool(&pool);
  sim.setParallelThreshold(2);
  sim.setShardPlacement(std::move(bogus));
  Network net(topo, sim, {});
  const auto switches = topo.switches();
  const auto hosts = topo.hosts();
  for (std::size_t i = 0; i < switches.size(); ++i) {
    std::vector<FlowAction> actions;
    const auto att = topo.hostAttachment(hosts[i]);
    actions.push_back({att.switchPort, hostAddress(hosts[i])});
    if (i + 1 < switches.size()) {
      actions.push_back(
          {portToward(topo, switches[i], switches[i + 1]), std::nullopt});
    }
    net.flowTable(switches[i]).insert(entry("1", std::move(actions)));
  }
  std::vector<std::tuple<NodeId, EventId, SimTime>> deliveries;
  net.setDeliverHandler([&](NodeId host, const Packet& p) {
    deliveries.emplace_back(host, p.eventId(), sim.now());
  });
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 32; ++i) {
      net.sendFromHost(hosts[0], eventPacket("1", hosts[0],
                                             static_cast<EventId>(round * 100 + i)));
    }
    sim.run();
  }
  EXPECT_GT(sim.parallelRunsExecuted(), 0u);
  EXPECT_EQ(deliveries, seq.deliveries);
}

TEST(ParallelSim, HostServiceQueueIsByteIdenticalAcrossThreadCounts) {
  // Slow hosts with a tiny queue: exercises staged kHostService schedules,
  // busyUntil accounting, and worker-side drops (which release payload
  // references on worker threads).
  NetworkConfig config;
  config.hostServiceTime = 50 * kMicrosecond;
  config.hostQueueCapacity = 4;

  const RunLog seq = runLineFanout(nullptr, 2, config);
  EXPECT_GT(seq.droppedQueue, 0u);

  util::WorkerPool pool(4);
  const RunLog par = runLineFanout(&pool, 2, config);
  EXPECT_GT(par.parallelRuns, 0u);
  EXPECT_EQ(withoutEngagement(par), withoutEngagement(seq));
}

TEST(ParallelSim, DeliverCallbackSchedulingIsByteIdentical) {
  const RunLog seq = runLineFanout(nullptr, 2, {}, 2, 32, true);

  util::WorkerPool pool(4);
  const RunLog par = runLineFanout(&pool, 2, {}, 2, 32, true);
  EXPECT_GT(par.parallelRuns, 0u);
  EXPECT_EQ(withoutEngagement(par), withoutEngagement(seq));
  // The republished generation must itself have been delivered.
  bool sawRepublished = false;
  for (const auto& [host, id, when] : seq.deliveries) {
    if (id >= 1000) sawRepublished = true;
  }
  EXPECT_TRUE(sawRepublished);
}

TEST(ParallelSim, BelowThresholdRunsStaySequential) {
  util::WorkerPool pool(4);
  const RunLog par = runLineFanout(&pool, 1000);
  EXPECT_EQ(par.parallelRuns, 0u);
  EXPECT_EQ(withoutEngagement(par), withoutEngagement(runLineFanout(nullptr, 2)));
}

TEST(ParallelSim, MixedLaneRunFallsBackToSequential) {
  Topology topo = Topology::line(2, 100 * kMicrosecond);
  Simulator sim;
  util::WorkerPool pool(4);
  sim.setWorkerPool(&pool);
  sim.setParallelThreshold(2);
  Network net(topo, sim, NetworkConfig{});

  std::vector<int> order;
  std::vector<NodeId> delivered;
  net.setDeliverHandler([&](NodeId host, const Packet&) {
    delivered.push_back(host);
    order.push_back(0);
  });

  // One same-timestamp run holding 16 packet events *and* a slow-lane
  // task: the task has no shard contract, so the whole run must execute
  // sequentially, interleaving the callback exactly at its seq position.
  const auto hosts = topo.hosts();
  for (int i = 0; i < 8; ++i) {
    sim.schedulePacket(kMillisecond, net, PacketEventKind::kArrive,
                       hosts[static_cast<std::size_t>(i) % hosts.size()],
                       kInvalidPort, eventPacket("1", hosts[0], 7));
  }
  sim.schedule(kMillisecond, [&] { order.push_back(1); });
  for (int i = 0; i < 8; ++i) {
    sim.schedulePacket(kMillisecond, net, PacketEventKind::kArrive,
                       hosts[static_cast<std::size_t>(i) % hosts.size()],
                       kInvalidPort, eventPacket("1", hosts[0], 8));
  }
  sim.run();

  EXPECT_EQ(sim.parallelRunsExecuted(), 0u);
  EXPECT_EQ(delivered.size(), 16u);
  ASSERT_EQ(order.size(), 17u);
  EXPECT_EQ(order[8], 1) << "task did not run at its scheduling position";
}

TEST(ParallelSim, PuntedPacketsAreByteIdenticalAcrossThreadCounts) {
  // Packets addressed to IP_mid reach the controller via packet-in; punt
  // handlers may react arbitrarily, so the pipeline runs carrying them are
  // forced sequential — and the packet-in order must stay identical.
  const auto run = [](util::WorkerPool* pool) {
    Topology topo = Topology::line(3, 100 * kMicrosecond);
    Simulator sim;
    if (pool != nullptr) {
      sim.setWorkerPool(pool);
      sim.setParallelThreshold(2);
    }
    Network net(topo, sim, NetworkConfig{});
    std::vector<std::pair<NodeId, SimTime>> punts;
    net.setPacketInHandler([&](NodeId sw, PortId, Packet&&) {
      punts.emplace_back(sw, sim.now());
    });
    const auto hosts = topo.hosts();
    for (int i = 0; i < 24; ++i) {
      Packet p = eventPacket("1", hosts[0], static_cast<EventId>(i));
      p.dst = dz::kControlAddress;
      net.sendFromHost(hosts[static_cast<std::size_t>(i) % hosts.size()],
                       std::move(p));
    }
    sim.run();
    return std::pair{punts, net.counters().packetsPuntedToController +
                                std::uint64_t{0}};
  };

  const auto seq = run(nullptr);
  util::WorkerPool pool(4);
  const auto par = run(&pool);
  EXPECT_EQ(par.first, seq.first);
  EXPECT_EQ(par.second, seq.second);
  EXPECT_EQ(seq.second, 24u);
}

/// A sink that schedules slow-lane tasks from its (worker-executed)
/// handler: exercises kTask staging and canonical-order replay.
struct TaskStagingSink final : PacketSink {
  Simulator* sim = nullptr;
  std::vector<NodeId>* taskOrder = nullptr;

  void onPacketEvent(PacketEventKind, NodeId node, PortId,
                     Packet&&) override {
    sim->schedule(kMillisecond, [order = taskOrder, node] {
      order->push_back(node);
    });
  }
  std::int64_t packetShardKey(PacketEventKind, NodeId node, PortId,
                              const Packet&) const override {
    return static_cast<std::int64_t>(node);
  }
};

TEST(ParallelSim, StagedTasksReplayInCanonicalOrder) {
  const auto run = [](util::WorkerPool* pool) {
    Simulator sim;
    if (pool != nullptr) {
      sim.setWorkerPool(pool);
      sim.setParallelThreshold(2);
    }
    std::vector<NodeId> taskOrder;
    TaskStagingSink sink;
    sink.sim = &sim;
    sink.taskOrder = &taskOrder;
    for (int i = 0; i < 32; ++i) {
      sim.schedulePacket(kMillisecond, sink, PacketEventKind::kArrive,
                         static_cast<NodeId>(i % 7), 0, Packet{});
    }
    const std::size_t processed = sim.run();
    return std::pair{taskOrder, processed};
  };

  const auto seq = run(nullptr);
  util::WorkerPool pool(4);
  const auto par = run(&pool);
  EXPECT_EQ(par.first, seq.first);
  EXPECT_EQ(par.second, seq.second);
  ASSERT_EQ(seq.first.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(seq.first[static_cast<std::size_t>(i)],
              static_cast<NodeId>(i % 7));
  }
}

TEST(ParallelSim, RunUntilInsideARunStaysConsistent) {
  // runUntil can stop between runs only (runs share one timestamp), but a
  // run already half-drained by a previous runUntil boundary must never be
  // picked up by the parallel path. Drive an interleaving that leaves
  // run.head != 0 across calls.
  const auto run = [](util::WorkerPool* pool) {
    Topology topo = Topology::line(2, 100 * kMicrosecond);
    Simulator sim;
    if (pool != nullptr) {
      sim.setWorkerPool(pool);
      sim.setParallelThreshold(2);
    }
    Network net(topo, sim, NetworkConfig{});
    std::vector<std::tuple<NodeId, EventId, SimTime>> log;
    net.setDeliverHandler([&](NodeId host, const Packet& p) {
      log.emplace_back(host, p.eventId(), sim.now());
    });
    const auto hosts = topo.hosts();
    for (int i = 0; i < 16; ++i) {
      sim.schedulePacket(kMillisecond, net, PacketEventKind::kArrive,
                         hosts[static_cast<std::size_t>(i) % hosts.size()],
                         kInvalidPort,
                         eventPacket("1", hosts[0], static_cast<EventId>(i)));
    }
    sim.runUntil(kMillisecond);
    sim.runUntil(2 * kMillisecond);
    sim.run();
    return log;
  };

  const auto seq = run(nullptr);
  util::WorkerPool pool(4);
  EXPECT_EQ(run(&pool), seq);
  EXPECT_EQ(seq.size(), 16u);
}

}  // namespace
}  // namespace pleroma::net
