#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace pleroma::net {
namespace {

TEST(Topology, AddNodesAndConnect) {
  Topology t;
  const NodeId s1 = t.addSwitch();
  const NodeId s2 = t.addSwitch();
  const NodeId h1 = t.addHost();
  EXPECT_TRUE(t.isSwitch(s1));
  EXPECT_TRUE(t.isHost(h1));

  const LinkId l1 = t.connect(s1, s2, 100);
  const LinkId l2 = t.connect(s1, h1, 200);
  EXPECT_EQ(t.linkCount(), 2);
  EXPECT_EQ(t.link(l1).latency, 100);

  // Ports assigned densely, 1-based.
  EXPECT_EQ(t.linkAt(s1, 1), l1);
  EXPECT_EQ(t.linkAt(s1, 2), l2);
  EXPECT_EQ(t.linkAt(s2, 1), l1);
  EXPECT_EQ(t.linkAt(s1, 3), kInvalidLink);

  const LinkEnd peer = t.peer(s1, 1);
  EXPECT_EQ(peer.node, s2);
  EXPECT_EQ(peer.port, 1);
}

TEST(Topology, HostAttachment) {
  Topology t;
  const NodeId s1 = t.addSwitch();
  const NodeId h1 = t.addHost();
  t.connect(s1, h1);
  const auto att = t.hostAttachment(h1);
  EXPECT_EQ(att.switchNode, s1);
  EXPECT_EQ(att.switchPort, 1);
  EXPECT_EQ(att.hostPort, 1);
}

TEST(Topology, ShortestPathsLine) {
  Topology t = Topology::line(4, 10);
  const auto switches = t.switches();
  ASSERT_EQ(switches.size(), 4u);
  const auto sp = t.shortestPathsFrom(switches[0]);
  EXPECT_EQ(sp.distance[static_cast<std::size_t>(switches[3])], 30);
  const auto path = t.shortestPath(switches[0], switches[3]);
  EXPECT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), switches[0]);
  EXPECT_EQ(path.back(), switches[3]);
}

TEST(Topology, ShortestPathNeverThroughHosts) {
  // Two switches joined only via a host must be unreachable from each other.
  Topology t;
  const NodeId s1 = t.addSwitch();
  const NodeId s2 = t.addSwitch();
  const NodeId h = t.addHost();
  t.connect(s1, h);
  t.connect(s2, h);
  EXPECT_TRUE(t.shortestPath(s1, s2).empty());
}

TEST(Topology, ShortestPathRespectsLatencies) {
  Topology t;
  const NodeId a = t.addSwitch();
  const NodeId b = t.addSwitch();
  const NodeId c = t.addSwitch();
  t.connect(a, b, 100);
  t.connect(b, c, 100);
  t.connect(a, c, 500);  // direct but slower
  const auto path = t.shortestPath(a, c);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], b);
}

TEST(Topology, TestbedFatTreeShape) {
  // Fig 6: 10 switches (2 core, 4 aggregation, 4 edge), 8 hosts.
  const Topology t = Topology::testbedFatTree();
  EXPECT_EQ(t.switches().size(), 10u);
  EXPECT_EQ(t.hosts().size(), 8u);
  // 2*4 core-agg + 4 agg-edge + 8 host links.
  EXPECT_EQ(t.linkCount(), 8 + 4 + 8);
  // Every host attaches to an edge switch.
  for (const NodeId h : t.hosts()) {
    EXPECT_TRUE(t.isSwitch(t.hostAttachment(h).switchNode));
  }
}

TEST(Topology, TestbedFatTreeAllHostsConnected) {
  const Topology t = Topology::testbedFatTree();
  const auto hosts = t.hosts();
  for (std::size_t i = 1; i < hosts.size(); ++i) {
    const auto path = t.shortestPath(hosts[0], hosts[i]);
    EXPECT_FALSE(path.empty()) << "host " << i;
  }
}

TEST(Topology, RingShape) {
  const Topology t = Topology::ring(20);
  EXPECT_EQ(t.switches().size(), 20u);
  EXPECT_EQ(t.hosts().size(), 20u);
  EXPECT_EQ(t.linkCount(), 40);  // 20 ring + 20 access
  // Every switch has exactly 3 ports (two ring neighbours + one host).
  for (const NodeId sw : t.switches()) {
    EXPECT_EQ(t.portsOf(sw).size(), 3u);
  }
}

TEST(Topology, RingDiameter) {
  const Topology t = Topology::ring(6, 10);
  const auto sw = t.switches();
  const auto sp = t.shortestPathsFrom(sw[0]);
  // Opposite switch is 3 hops away around either side.
  EXPECT_EQ(sp.distance[static_cast<std::size_t>(sw[3])], 30);
}

TEST(Topology, GenericFatTree) {
  const Topology t = Topology::fatTree(2, 4, 2, 2);
  EXPECT_EQ(t.switches().size(), 2u + 4u + 8u);
  EXPECT_EQ(t.hosts().size(), 16u);
}

TEST(Topology, NodeNames) {
  const Topology t = Topology::testbedFatTree();
  EXPECT_EQ(t.node(t.switches()[0]).name, "R1");
  EXPECT_EQ(t.node(t.hosts()[0]).name, "h1");
}

TEST(Topology, KAryFatTreeShape) {
  // k=4: 4 cores, 4 pods x (2 agg + 2 edge) = 20 switches, 16 hosts.
  const Topology t = Topology::kAryFatTree(4);
  EXPECT_EQ(t.switches().size(), 20u);
  EXPECT_EQ(t.hosts().size(), 16u);
  // Links: 4 pods x 2 agg x 2 cores + 4 pods x 4 agg-edge + 16 access.
  EXPECT_EQ(t.linkCount(), 16 + 16 + 16);
}

TEST(Topology, KAryFatTreeFullBisection) {
  const Topology t = Topology::kAryFatTree(4);
  const auto hosts = t.hosts();
  // All host pairs connected; cross-pod paths have 6 nodes (edge, agg,
  // core, agg, edge + 2 hosts = 7 nodes).
  const auto path = t.shortestPath(hosts[0], hosts[15]);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.size(), 7u);
  // Same-edge pair: host, edge, host.
  const auto local = t.shortestPath(hosts[0], hosts[1]);
  EXPECT_EQ(local.size(), 3u);
}

TEST(Topology, KAryFatTreeMinimal) {
  const Topology t = Topology::kAryFatTree(2);
  EXPECT_EQ(t.switches().size(), 1u + 2u + 2u);  // 1 core, 2 pods x (1+1)
  EXPECT_EQ(t.hosts().size(), 2u);
  for (const NodeId h : t.hosts()) {
    EXPECT_FALSE(t.shortestPath(t.hosts()[0], h).empty());
  }
}

TEST(Topology, RandomConnectedIsConnected) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 99u}) {
    const Topology t = Topology::randomConnected(9, 4, seed);
    EXPECT_EQ(t.switches().size(), 9u);
    EXPECT_EQ(t.hosts().size(), 9u);
    // 8 tree links + up to 4 extra + 9 access links.
    EXPECT_GE(t.linkCount(), 8 + 9);
    EXPECT_LE(t.linkCount(), 8 + 4 + 9);
    const auto hosts = t.hosts();
    for (std::size_t i = 1; i < hosts.size(); ++i) {
      EXPECT_FALSE(t.shortestPath(hosts[0], hosts[i]).empty())
          << "seed " << seed << " host " << i;
    }
  }
}

TEST(Topology, RandomConnectedDeterministicPerSeed) {
  const Topology a = Topology::randomConnected(7, 3, 42);
  const Topology b = Topology::randomConnected(7, 3, 42);
  ASSERT_EQ(a.linkCount(), b.linkCount());
  for (LinkId l = 0; l < a.linkCount(); ++l) {
    EXPECT_EQ(a.link(l).a.node, b.link(l).a.node);
    EXPECT_EQ(a.link(l).b.node, b.link(l).b.node);
  }
}

TEST(Topology, RandomConnectedNoDuplicateLinks) {
  const Topology t = Topology::randomConnected(6, 10, 7);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (LinkId l = 0; l < t.linkCount(); ++l) {
    const Link& link = t.link(l);
    if (t.isHost(link.a.node) || t.isHost(link.b.node)) continue;
    pairs.emplace_back(std::min(link.a.node, link.b.node),
                       std::max(link.a.node, link.b.node));
  }
  std::sort(pairs.begin(), pairs.end());
  EXPECT_EQ(std::adjacent_find(pairs.begin(), pairs.end()), pairs.end());
}

TEST(Topology, SingleSwitchRandom) {
  const Topology t = Topology::randomConnected(1, 3, 5);
  EXPECT_EQ(t.switches().size(), 1u);
  EXPECT_EQ(t.hosts().size(), 1u);
  EXPECT_EQ(t.linkCount(), 1);  // just the access link
}

TEST(Topology, BlockShardPlacementSplitsEachClassContiguously) {
  // testbedFatTree: all switch ids precede all host ids, the layout that
  // breaks naive raw-id blocking (every switch would land on worker 0).
  const Topology t = Topology::testbedFatTree();
  const int workers = 4;
  const std::vector<int> placement = blockShardPlacement(t, workers);
  ASSERT_EQ(placement.size(), static_cast<std::size_t>(t.nodeCount()));

  for (const bool wantSwitch : {true, false}) {
    std::vector<int> assigned;  // per-class assignment in rank order
    for (NodeId id = 0; id < t.nodeCount(); ++id) {
      if (t.isSwitch(id) == wantSwitch) {
        assigned.push_back(placement[static_cast<std::size_t>(id)]);
      }
    }
    ASSERT_FALSE(assigned.empty());
    // Contiguous blocks: assignments are non-decreasing in rank order...
    EXPECT_TRUE(std::is_sorted(assigned.begin(), assigned.end()));
    EXPECT_GE(assigned.front(), 0);
    EXPECT_LT(assigned.back(), workers);
    // ...and balanced: every worker gets floor or ceil of classSize/workers.
    std::vector<int> perWorker(workers, 0);
    for (const int w : assigned) ++perWorker[static_cast<std::size_t>(w)];
    const int lo = static_cast<int>(assigned.size()) / workers;
    for (const int count : perWorker) {
      EXPECT_GE(count, lo);
      EXPECT_LE(count, lo + 1);
    }
  }
}

TEST(Topology, BlockShardPlacementSingleWorkerIsAllZero) {
  const Topology t = Topology::line(3);
  for (const int workers : {0, 1}) {
    const std::vector<int> placement = blockShardPlacement(t, workers);
    for (const int w : placement) EXPECT_EQ(w, 0);
  }
}

TEST(Topology, LinkPeerOf) {
  Topology t;
  const NodeId a = t.addSwitch();
  const NodeId b = t.addSwitch();
  const LinkId l = t.connect(a, b);
  EXPECT_EQ(t.link(l).peerOf(a).node, b);
  EXPECT_EQ(t.link(l).peerOf(b).node, a);
  EXPECT_EQ(t.link(l).endOf(a).node, a);
}

}  // namespace
}  // namespace pleroma::net
