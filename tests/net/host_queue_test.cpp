// The host-side single-server queue (NetworkConfig::hostServiceTime /
// hostQueueCapacity): serialization through busyUntil, finite-buffer
// drops, and determinism of the whole delivery pipeline under load.
#include <gtest/gtest.h>

#include <vector>

#include "core/pleroma.hpp"
#include "net/network.hpp"
#include "workload/workload.hpp"

namespace pleroma::net {
namespace {

dz::DzExpression dz(std::string_view s) { return *dz::DzExpression::fromString(s); }

FlowEntry entry(std::string_view dzStr, std::vector<FlowAction> actions) {
  FlowEntry e;
  const auto d = dz(dzStr);
  e.match = dz::dzToPrefix(d);
  e.priority = d.length();
  e.actions = std::move(actions);
  return e;
}

Packet eventPacket(std::string_view dzStr, NodeId fromHost) {
  Packet p;
  EventPayload& payload = p.mutablePayload();
  payload.eventDz = dz(dzStr);
  payload.publisherHost = fromHost;
  p.dst = dz::dzToAddress(payload.eventDz);
  p.src = hostAddress(fromHost);
  return p;
}

// h1 - R1 - R2 - h2 with a configurable host queue at the receivers.
struct HostQueueFixture : ::testing::Test {
  HostQueueFixture() : topo(Topology::line(2, 100 * kMicrosecond)) {
    r1 = topo.switches()[0];
    r2 = topo.switches()[1];
    h1 = topo.hosts()[0];
    h2 = topo.hosts()[1];
  }

  /// Installs the h1 -> h2 forwarding path on a fresh network.
  void installPath(Network& net) {
    net.flowTable(r1).insert(entry(
        "1", {{topo.link(topo.linkAt(r1, 1)).endOf(r1).port, std::nullopt}}));
    const auto attH2 = topo.hostAttachment(h2);
    net.flowTable(r2).insert(entry("1", {{attH2.switchPort, hostAddress(h2)}}));
  }

  Topology topo;
  Simulator sim;
  NodeId r1, r2, h1, h2;
};

TEST_F(HostQueueFixture, ServiceTimeSerializesDeliveries) {
  NetworkConfig config;
  config.hostServiceTime = 3 * kMillisecond;
  Network net(topo, sim, config);
  installPath(net);

  std::vector<SimTime> deliveredAt;
  net.setDeliverHandler(
      [&](NodeId, const Packet&) { deliveredAt.push_back(sim.now()); });

  // Three back-to-back packets reach h2 essentially together (they differ
  // only by per-packet transmission spacing upstream); the host works them
  // off one service time apart.
  for (int i = 0; i < 3; ++i) net.sendFromHost(h1, eventPacket("101", h1));
  sim.run();

  ASSERT_EQ(deliveredAt.size(), 3u);
  EXPECT_EQ(deliveredAt[1] - deliveredAt[0], config.hostServiceTime);
  EXPECT_EQ(deliveredAt[2] - deliveredAt[1], config.hostServiceTime);
}

TEST_F(HostQueueFixture, BusyUntilExtendsAcrossIdleGaps) {
  NetworkConfig config;
  config.hostServiceTime = 1 * kMillisecond;
  Network net(topo, sim, config);
  installPath(net);

  std::vector<SimTime> deliveredAt;
  net.setDeliverHandler(
      [&](NodeId, const Packet&) { deliveredAt.push_back(sim.now()); });

  net.sendFromHost(h1, eventPacket("101", h1));
  sim.run();
  ASSERT_EQ(deliveredAt.size(), 1u);
  const SimTime firstDone = deliveredAt[0];

  // The second packet arrives long after the host went idle again: its
  // service starts at arrival, not at busyUntil of the earlier packet.
  sim.runUntil(firstDone + 50 * kMillisecond);
  net.sendFromHost(h1, eventPacket("101", h1));
  sim.run();
  ASSERT_EQ(deliveredAt.size(), 2u);
  EXPECT_GT(deliveredAt[1], firstDone + 50 * kMillisecond);
  EXPECT_LT(deliveredAt[1] - deliveredAt[0], 60 * kMillisecond);
}

TEST_F(HostQueueFixture, FiniteQueueDropsOverflow) {
  NetworkConfig config;
  config.hostServiceTime = 10 * kMillisecond;  // far slower than arrivals
  config.hostQueueCapacity = 4;
  Network net(topo, sim, config);
  installPath(net);

  int delivered = 0;
  net.setDeliverHandler([&](NodeId, const Packet&) { ++delivered; });

  const int kBurst = 16;
  for (int i = 0; i < kBurst; ++i) net.sendFromHost(h1, eventPacket("101", h1));
  sim.run();

  // The burst reaches h2 faster than it drains: only the packets that fit
  // the buffer (plus any slots freed while the burst straggles in) arrive.
  EXPECT_EQ(delivered + static_cast<int>(net.counters().dropped(net::DropReason::kHostQueue)),
            kBurst);
  EXPECT_GT(net.counters().dropped(net::DropReason::kHostQueue), 0u);
  EXPECT_GE(delivered, static_cast<int>(config.hostQueueCapacity));
}

TEST_F(HostQueueFixture, ZeroServiceTimeBypassesQueue) {
  NetworkConfig config;
  config.hostServiceTime = 0;
  config.hostQueueCapacity = 1;  // must be irrelevant
  Network net(topo, sim, config);
  installPath(net);

  int delivered = 0;
  net.setDeliverHandler([&](NodeId, const Packet&) { ++delivered; });
  for (int i = 0; i < 8; ++i) net.sendFromHost(h1, eventPacket("101", h1));
  sim.run();
  EXPECT_EQ(delivered, 8);
  EXPECT_EQ(net.counters().dropped(net::DropReason::kHostQueue), 0u);
}

/// One full pub/sub run under host-queue pressure; returns the end-to-end
/// delivery stats plus the exact drop/delivery counters.
struct RunResult {
  core::DeliveryStats stats;
  NetworkCounters counters;
};

RunResult runSeededScenario(std::uint64_t seed) {
  core::PleromaOptions options;
  options.numAttributes = 2;
  options.network.hostServiceTime = 2 * kMillisecond;
  options.network.hostQueueCapacity = 8;
  core::Pleroma system(Topology::testbedFatTree(), options);

  workload::WorkloadConfig wconfig;
  wconfig.numAttributes = 2;
  wconfig.seed = seed;
  workload::WorkloadGenerator gen(wconfig);

  const auto hosts = system.topology().hosts();
  system.advertise(hosts[0], system.controller().space().wholeSpace());
  for (std::size_t i = 0; i < 6; ++i) {
    system.subscribe(hosts[1 + i % (hosts.size() - 1)], gen.makeSubscription());
  }
  for (std::size_t i = 0; i < 200; ++i) {
    system.publish(hosts[0], gen.makeEvent());
  }
  system.settle();
  return RunResult{system.deliveryStats(), system.network().counters()};
}

TEST(HostQueueDeterminism, SameSeedSameDeliveryStats) {
  const RunResult a = runSeededScenario(7);
  const RunResult b = runSeededScenario(7);
  EXPECT_EQ(a.stats.delivered, b.stats.delivered);
  EXPECT_EQ(a.stats.falsePositives, b.stats.falsePositives);
  EXPECT_EQ(a.stats.latencySum, b.stats.latencySum);
  EXPECT_EQ(a.counters.packetsDeliveredToHosts, b.counters.packetsDeliveredToHosts);
  EXPECT_EQ(a.counters.dropped(net::DropReason::kHostQueue), b.counters.dropped(net::DropReason::kHostQueue));
  EXPECT_EQ(a.counters.packetsForwarded, b.counters.packetsForwarded);

  // Different seeds do land on a different trajectory (sanity: the
  // scenario is not degenerate).
  const RunResult c = runSeededScenario(8);
  EXPECT_TRUE(a.stats.latencySum != c.stats.latencySum ||
              a.counters.packetsForwarded != c.counters.packetsForwarded);
}

}  // namespace
}  // namespace pleroma::net
