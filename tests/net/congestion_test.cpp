// Finite link transmit queues, backpressure, and the congestion monitor
// (DESIGN.md §15): serialization ordering on a busy link, capacity
// overflow accounting (DropReason::kLinkQueue), the per-link capacity
// override, park/retry/resume under backpressure, bounded park buffers
// (DropReason::kBackpressure), the conservation identity at quiescence,
// and the EWMA sampling loop.
#include "net/congestion.hpp"
#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pleroma::net {
namespace {

dz::DzExpression dz(std::string_view s) { return *dz::DzExpression::fromString(s); }

FlowEntry entry(std::string_view dzStr, std::vector<FlowAction> actions) {
  FlowEntry e;
  const auto d = dz(dzStr);
  e.match = dz::dzToPrefix(d);
  e.priority = d.length();
  e.actions = std::move(actions);
  return e;
}

Packet eventPacket(std::string_view dzStr, NodeId fromHost) {
  Packet p;
  EventPayload& payload = p.mutablePayload();
  payload.eventDz = dz(dzStr);
  payload.publisherHost = fromHost;
  p.dst = dz::dzToAddress(payload.eventDz);
  p.src = hostAddress(fromHost);
  return p;
}

/// 64-byte default packets at 1 Mbps: 512us of serialization per packet.
constexpr double kBandwidthBps = 1.0e6;
constexpr SimTime kSerialization = 512 * kMicrosecond;

// h1 - R1 - R2 - h2 with finite bandwidth. Flows route dz=1* to h2. The
// interior R1->R2 link gets its queue capacity from each test (per-link
// override), so bursts from h1 reach R1 unqueued and contend only there.
struct CongestionQueueTest : ::testing::Test {
  CongestionQueueTest()
      : topo(Topology::line(2, 100 * kMicrosecond, kBandwidthBps)) {
    r1 = topo.switches()[0];
    r2 = topo.switches()[1];
    h1 = topo.hosts()[0];
    h2 = topo.hosts()[1];
    interior = topo.linkAt(r1, 1);
  }

  Network& makeNet(NetworkConfig cfg) {
    net = std::make_unique<Network>(topo, sim, cfg);
    net->flowTable(r1).insert(entry(
        "1", {{topo.link(interior).endOf(r1).port, std::nullopt}}));
    net->flowTable(r2).insert(
        entry("1", {{topo.hostAttachment(h2).switchPort, hostAddress(h2)}}));
    net->setDeliverHandler([this](NodeId, const Packet&) {
      deliveredAt.push_back(sim.now());
    });
    return *net;
  }

  void burst(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      net->sendFromHost(h1, eventPacket("101", h1));
    }
  }

  Topology topo;
  Simulator sim;
  std::unique_ptr<Network> net;
  NodeId r1, r2, h1, h2;
  LinkId interior;
  std::vector<SimTime> deliveredAt;
};

TEST_F(CongestionQueueTest, QueuedPacketsSerializeBackToBack) {
  Network& n = makeNet({});
  n.setLinkQueueCapacity(interior, 4);
  burst(3);
  sim.run();

  ASSERT_EQ(deliveredAt.size(), 3u);
  // The three copies contend only on R1->R2: each delivery is one more
  // serialization time behind the previous one.
  EXPECT_EQ(deliveredAt[1] - deliveredAt[0], kSerialization);
  EXPECT_EQ(deliveredAt[2] - deliveredAt[1], kSerialization);
  EXPECT_EQ(n.counters().totalDropped(), 0u);
  EXPECT_EQ(n.peakLinkQueueDepth(interior), 3u);
  EXPECT_EQ(n.linkQueueDepth(interior), 0u);  // drained at quiescence
}

TEST_F(CongestionQueueTest, OverflowDropsAreCountedPerReason) {
  Network& n = makeNet({});
  n.setLinkQueueCapacity(interior, 2);
  burst(6);
  sim.run();

  EXPECT_EQ(deliveredAt.size(), 2u);
  EXPECT_EQ(n.counters().dropped(DropReason::kLinkQueue), 4u);
  EXPECT_EQ(n.counters().totalDropped(), 4u);
  EXPECT_EQ(n.linkCounters(interior).queueDrops, 4u);
  EXPECT_EQ(n.peakLinkQueueDepth(interior), 2u);
  EXPECT_EQ(n.stats().peakLinkQueueDepth, 2u);
}

TEST_F(CongestionQueueTest, ZeroCapacityKeepsContentionFreeLinks) {
  makeNet({});  // capacity 0 everywhere: the legacy model
  burst(6);
  sim.run();

  ASSERT_EQ(deliveredAt.size(), 6u);
  // Every copy propagates independently: identical delivery instants.
  for (const SimTime t : deliveredAt) EXPECT_EQ(t, deliveredAt[0]);
  EXPECT_EQ(net->counters().totalDropped(), 0u);
  EXPECT_EQ(net->peakLinkQueueDepth(interior), 0u);
}

TEST_F(CongestionQueueTest, ConfigCapacityAppliesToEveryLink) {
  NetworkConfig cfg;
  cfg.linkQueueCapacity = 1;
  makeNet(cfg);
  burst(4);  // contends already on the h1->R1 access link
  sim.run();

  EXPECT_EQ(deliveredAt.size(), 1u);
  EXPECT_EQ(net->counters().dropped(DropReason::kLinkQueue), 3u);
  // Override back to the legacy model on the access link only: bursts
  // then contend (and drop) at R1->R2 instead.
  deliveredAt.clear();
  const Topology::Attachment att = topo.hostAttachment(h1);
  const LinkId access = topo.linkAt(att.switchNode, att.switchPort);
  net->setLinkQueueCapacity(access, 0);
  burst(4);
  sim.run();
  EXPECT_EQ(deliveredAt.size(), 1u);
  EXPECT_EQ(net->linkCounters(interior).queueDrops, 3u);
}

TEST_F(CongestionQueueTest, StatsGaugeSeesStandingQueue) {
  Network& n = makeNet({});
  n.setLinkQueueCapacity(interior, 4);
  burst(4);
  // The copies cross the contention-free access link together (one
  // serialization + latency) and land in the R1->R2 queue as a block;
  // probe mid-way through the head copy's transmission.
  sim.runUntil(sim.now() + kSerialization + 100 * kMicrosecond +
               kSerialization / 2);
  EXPECT_GE(n.stats().linkQueued, 3u);
  EXPECT_EQ(n.linkQueueDepth(interior), n.stats().linkQueued);
  sim.run();
  EXPECT_EQ(n.stats().linkQueued, 0u);
}

struct BackpressureTest : CongestionQueueTest {};

TEST_F(BackpressureTest, ParksRetriesAndDeliversEverything) {
  NetworkConfig cfg;
  cfg.backpressure = true;
  Network& n = makeNet(cfg);
  n.setLinkQueueCapacity(interior, 1);
  burst(4);
  sim.run();

  ASSERT_EQ(deliveredAt.size(), 4u);
  EXPECT_EQ(n.counters().totalDropped(), 0u);
  EXPECT_GE(n.counters().packetsParkedOnBackpressure, 3u);
  EXPECT_EQ(n.counters().packetsResumedFromBackpressure,
            n.counters().packetsParkedOnBackpressure);
  EXPECT_GE(n.counters().backpressureRetries, 1u);
  EXPECT_EQ(n.backpressureParkedPackets(), 0u);
  // Parked copies resume in FIFO order: deliveries stay monotone.
  for (std::size_t i = 1; i < deliveredAt.size(); ++i) {
    EXPECT_GT(deliveredAt[i], deliveredAt[i - 1]);
  }
}

TEST_F(BackpressureTest, BoundedParkBufferDropsBeyondCapacity) {
  NetworkConfig cfg;
  cfg.backpressure = true;
  cfg.backpressureBufferCapacity = 2;
  Network& n = makeNet(cfg);
  n.setLinkQueueCapacity(interior, 1);
  burst(8);
  sim.run();

  EXPECT_EQ(deliveredAt.size(), 3u);  // 1 on the wire + 2 parked
  EXPECT_EQ(n.counters().dropped(DropReason::kBackpressure), 5u);
  EXPECT_EQ(n.counters().dropped(DropReason::kLinkQueue), 0u);
  EXPECT_EQ(n.linkCounters(interior).queueDrops, 5u);
}

TEST_F(BackpressureTest, CountersConserveAtQuiescence) {
  NetworkConfig cfg;
  cfg.backpressure = true;
  cfg.backpressureBufferCapacity = 2;
  Network& n = makeNet(cfg);
  n.setLinkQueueCapacity(interior, 1);
  burst(8);
  sim.run();

  const NetworkCounters& c = n.counters();
  EXPECT_EQ(c.packetsSentFromHosts + c.packetsInjectedByController +
                c.packetsForwarded,
            c.packetsDeliveredToHosts + c.packetsPuntedToController +
                c.packetsConsumedAtSwitch + c.totalDropped() +
                n.missBufferedPackets() + n.backpressureParkedPackets());
}

struct CongestionMonitorTest : CongestionQueueTest {};

TEST_F(CongestionMonitorTest, EwmaRisesOnStandingQueueAndDecaysWhenIdle) {
  Network& n = makeNet({});
  n.setLinkQueueCapacity(interior, 8);
  CongestionConfig cc;
  cc.ewmaAlpha = 0.5;
  CongestionMonitor monitor(n, cc);

  burst(6);
  sim.runUntil(sim.now() + kSerialization + 100 * kMicrosecond +
               kSerialization / 2);
  const double hot = monitor.sampleOnce();
  EXPECT_GT(hot, 0.0);
  EXPECT_GT(monitor.score(interior), 0.0);
  EXPECT_DOUBLE_EQ(monitor.maxScore(), monitor.score(interior));

  sim.run();  // drain
  double score = monitor.score(interior);
  for (int i = 0; i < 6; ++i) {
    monitor.sampleOnce();
    EXPECT_LT(monitor.score(interior), score);
    score = monitor.score(interior);
  }
  EXPECT_LT(score, 0.1);
}

TEST_F(CongestionMonitorTest, DropsWeighHeavierThanDepth) {
  Network& n = makeNet({});
  n.setLinkQueueCapacity(interior, 1);
  CongestionMonitor monitor(n);
  burst(6);  // 5 overflow drops
  sim.run();
  const double hot = monitor.sampleOnce();
  // dropWeight (10) * 5 drops dominates any depth contribution.
  EXPECT_GE(hot, monitor.config().dropWeight * 5 * monitor.config().ewmaAlpha);
}

TEST_F(CongestionMonitorTest, PeriodicSamplingIsPausableAndCounted) {
  Network& n = makeNet({});
  CongestionConfig cc;
  cc.sampleInterval = 100 * kMicrosecond;
  CongestionMonitor monitor(n, cc);
  monitor.startPeriodic();
  sim.runUntil(sim.now() + kMillisecond + kMicrosecond);
  EXPECT_EQ(monitor.samplesTaken(), 10u);
  monitor.stop();
  sim.run();  // the armed tick fires once as a no-op and the queue drains
  EXPECT_EQ(monitor.samplesTaken(), 10u);
}

}  // namespace
}  // namespace pleroma::net
