#include "dimsel/matrix.hpp"

#include <gtest/gtest.h>

namespace pleroma::dimsel {
namespace {

TEST(Matrix, ConstructAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.at(1, 2), 1.5);
  m.at(0, 1) = 7.0;
  EXPECT_EQ(m.at(0, 1), 7.0);
}

TEST(Matrix, Transpose) {
  Matrix m(2, 3);
  m.at(0, 0) = 1;
  m.at(0, 2) = 3;
  m.at(1, 1) = 5;
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.at(0, 0), 1);
  EXPECT_EQ(t.at(2, 0), 3);
  EXPECT_EQ(t.at(1, 1), 5);
}

TEST(Matrix, Multiply) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Matrix b(2, 2);
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  const Matrix c = a * b;
  EXPECT_EQ(c.at(0, 0), 19);
  EXPECT_EQ(c.at(0, 1), 22);
  EXPECT_EQ(c.at(1, 0), 43);
  EXPECT_EQ(c.at(1, 1), 50);
}

TEST(Matrix, MultiplyIdentity) {
  Matrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(1, 1) = 3;
  a.at(0, 1) = -1;
  Matrix id(2, 2);
  id.at(0, 0) = id.at(1, 1) = 1;
  EXPECT_EQ(a * id, a);
  EXPECT_EQ(id * a, a);
}

TEST(Matrix, CenteredColumnsZeroMean) {
  Matrix m(3, 2);
  m.at(0, 0) = 1;
  m.at(1, 0) = 2;
  m.at(2, 0) = 3;
  m.at(0, 1) = 10;
  m.at(1, 1) = 20;
  m.at(2, 1) = 30;
  const Matrix c = m.centeredColumns();
  for (std::size_t col = 0; col < 2; ++col) {
    double sum = 0;
    for (std::size_t row = 0; row < 3; ++row) sum += c.at(row, col);
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
  EXPECT_NEAR(c.at(0, 0), -1.0, 1e-12);
  EXPECT_NEAR(c.at(2, 1), 10.0, 1e-12);
}

TEST(Matrix, CenteredRowsZeroMean) {
  Matrix m(2, 3);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(0, 2) = 3;
  const Matrix c = m.centeredRows();
  double sum = 0;
  for (std::size_t col = 0; col < 3; ++col) sum += c.at(0, col);
  EXPECT_NEAR(sum, 0.0, 1e-12);
}

TEST(Matrix, RowCovarianceOfPerfectlyCorrelatedRows) {
  // Row 1 = 2 * row 0: covariance matrix must be rank 1 and symmetric.
  Matrix m(2, 4);
  for (std::size_t c = 0; c < 4; ++c) {
    m.at(0, c) = static_cast<double>(c);
    m.at(1, c) = 2.0 * static_cast<double>(c);
  }
  const Matrix cov = m.centeredRows().rowCovariance();
  EXPECT_TRUE(cov.isSymmetric());
  EXPECT_NEAR(cov.at(0, 1) * cov.at(1, 0), cov.at(0, 0) * cov.at(1, 1), 1e-9);
  EXPECT_NEAR(cov.at(1, 1), 4.0 * cov.at(0, 0), 1e-9);
}

TEST(Matrix, RowCovarianceDiagonalIsVariance) {
  Matrix m(1, 5);
  const double vals[] = {2, 4, 4, 4, 6};
  for (std::size_t c = 0; c < 5; ++c) m.at(0, c) = vals[c];
  const Matrix cov = m.centeredRows().rowCovariance();
  // Sample variance of {2,4,4,4,6} = 2.
  EXPECT_NEAR(cov.at(0, 0), 2.0, 1e-12);
}

TEST(Matrix, IsSymmetric) {
  Matrix m(2, 2);
  m.at(0, 1) = 3;
  m.at(1, 0) = 3;
  EXPECT_TRUE(m.isSymmetric());
  m.at(1, 0) = 4;
  EXPECT_FALSE(m.isSymmetric());
  EXPECT_FALSE(Matrix(2, 3).isSymmetric());
}

}  // namespace
}  // namespace pleroma::dimsel
