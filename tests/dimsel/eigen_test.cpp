#include "dimsel/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dimsel/matrix.hpp"

namespace pleroma::dimsel {
namespace {

TEST(Eigen, DiagonalMatrix) {
  Matrix m(3, 3);
  m.at(0, 0) = 1;
  m.at(1, 1) = 5;
  m.at(2, 2) = 3;
  const EigenDecomposition e = eigenSymmetric(m);
  ASSERT_EQ(e.values.size(), 3u);
  EXPECT_NEAR(e.values[0], 5, 1e-10);
  EXPECT_NEAR(e.values[1], 3, 1e-10);
  EXPECT_NEAR(e.values[2], 1, 1e-10);
  // Principal eigenvector is e_1 (up to sign).
  EXPECT_NEAR(std::fabs(e.vectors.at(1, 0)), 1.0, 1e-10);
}

TEST(Eigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/sqrt2, (1,-1)/sqrt2.
  Matrix m(2, 2);
  m.at(0, 0) = 2;
  m.at(0, 1) = 1;
  m.at(1, 0) = 1;
  m.at(1, 1) = 2;
  const EigenDecomposition e = eigenSymmetric(m);
  EXPECT_NEAR(e.values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.values[1], 1.0, 1e-10);
  const double s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::fabs(e.vectors.at(0, 0)), s, 1e-8);
  EXPECT_NEAR(std::fabs(e.vectors.at(1, 0)), s, 1e-8);
}

TEST(Eigen, ReconstructsMatrix) {
  // C == Q diag(v) Q^T.
  Matrix m(4, 4);
  const double vals[4][4] = {{4, 1, 0.5, 0},
                             {1, 3, 0, 0.2},
                             {0.5, 0, 2, 0.1},
                             {0, 0.2, 0.1, 1}};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) m.at(i, j) = vals[i][j];
  }
  const EigenDecomposition e = eigenSymmetric(m);
  Matrix diag(4, 4);
  for (std::size_t i = 0; i < 4; ++i) diag.at(i, i) = e.values[i];
  const Matrix rebuilt = e.vectors * diag * e.vectors.transposed();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(rebuilt.at(i, j), m.at(i, j), 1e-8) << i << "," << j;
    }
  }
}

TEST(Eigen, VectorsOrthonormal) {
  Matrix m(3, 3);
  m.at(0, 0) = 2;
  m.at(0, 1) = -1;
  m.at(1, 0) = -1;
  m.at(1, 1) = 2;
  m.at(1, 2) = -1;
  m.at(2, 1) = -1;
  m.at(2, 2) = 2;
  const EigenDecomposition e = eigenSymmetric(m);
  const Matrix qtq = e.vectors.transposed() * e.vectors;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(qtq.at(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Eigen, TridiagonalKnownSpectrum) {
  // The 3x3 discrete Laplacian [[2,-1,0],[-1,2,-1],[0,-1,2]] has
  // eigenvalues 2 + sqrt(2), 2, 2 - sqrt(2).
  Matrix m(3, 3);
  m.at(0, 0) = m.at(1, 1) = m.at(2, 2) = 2;
  m.at(0, 1) = m.at(1, 0) = m.at(1, 2) = m.at(2, 1) = -1;
  const EigenDecomposition e = eigenSymmetric(m);
  EXPECT_NEAR(e.values[0], 2 + std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(e.values[1], 2.0, 1e-9);
  EXPECT_NEAR(e.values[2], 2 - std::sqrt(2.0), 1e-9);
}

TEST(Eigen, ZeroMatrix) {
  const EigenDecomposition e = eigenSymmetric(Matrix(3, 3));
  for (const double v : e.values) EXPECT_EQ(v, 0.0);
}

TEST(Eigen, OneByOne) {
  Matrix m(1, 1);
  m.at(0, 0) = 42;
  const EigenDecomposition e = eigenSymmetric(m);
  EXPECT_NEAR(e.values[0], 42, 1e-12);
  EXPECT_NEAR(std::fabs(e.vectors.at(0, 0)), 1.0, 1e-12);
}

TEST(Eigen, SymmetrisesSlightlyAsymmetricInput) {
  Matrix m(2, 2);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2.0 + 1e-13;
  m.at(1, 0) = 2.0 - 1e-13;
  m.at(1, 1) = 1;
  const EigenDecomposition e = eigenSymmetric(m);
  EXPECT_NEAR(e.values[0], 3.0, 1e-9);
  EXPECT_NEAR(e.values[1], -1.0, 1e-9);
}

}  // namespace
}  // namespace pleroma::dimsel
