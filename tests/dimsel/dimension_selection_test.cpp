#include "dimsel/dimension_selection.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/workload.hpp"

namespace pleroma::dimsel {
namespace {

TEST(DimensionSelection, MatchMatrixCounts) {
  // 2 dims, 2 events, 2 subscriptions: verify w_ij by hand.
  const std::vector<dz::Event> events = {{10, 10}, {90, 90}};
  const std::vector<dz::Rectangle> subs = {
      dz::Rectangle{{dz::Range{0, 50}, dz::Range{0, 100}}},
      dz::Rectangle{{dz::Range{0, 100}, dz::Range{80, 100}}},
  };
  const Matrix w = buildMatchMatrix(events, subs, 2);
  // dim 0: event0 (10) matched by sub0 ([0,50]) and sub1 ([0,100]) -> 2.
  EXPECT_EQ(w.at(0, 0), 2.0);
  // dim 0: event1 (90) matched only by sub1 -> 1.
  EXPECT_EQ(w.at(0, 1), 1.0);
  // dim 1: event0 (10) matched by sub0 only -> 1.
  EXPECT_EQ(w.at(1, 0), 1.0);
  // dim 1: event1 (90) matched by both -> 2.
  EXPECT_EQ(w.at(1, 1), 2.0);
}

TEST(DimensionSelection, InformativeDimensionRankedFirst) {
  // Dim 0: selective subscriptions + spread events (informative).
  // Dim 1: everyone subscribes to the whole domain (useless).
  std::vector<dz::Rectangle> subs;
  for (int i = 0; i < 8; ++i) {
    const auto lo = static_cast<dz::AttributeValue>(i * 120);
    subs.push_back(
        dz::Rectangle{{dz::Range{lo, lo + 100}, dz::Range{0, 1023}}});
  }
  std::vector<dz::Event> events;
  for (int i = 0; i < 32; ++i) {
    events.push_back(
        dz::Event{static_cast<dz::AttributeValue>((i * 97) % 1024),
                  static_cast<dz::AttributeValue>(512)});
  }
  const Matrix w = buildMatchMatrix(events, subs, 2);
  const DimensionRanking r = rankDimensions(w, 0.9);
  EXPECT_EQ(r.ranked[0], 0);
  EXPECT_EQ(r.k, 1);
}

TEST(DimensionSelection, ThresholdControlsK) {
  std::vector<dz::Rectangle> subs;
  for (int i = 0; i < 8; ++i) {
    const auto lo = static_cast<dz::AttributeValue>(i * 120);
    subs.push_back(dz::Rectangle{
        {dz::Range{lo, lo + 80}, dz::Range{1023 - lo - 80, 1023 - lo},
         dz::Range{0, 1023}}});
  }
  std::vector<dz::Event> events;
  for (int i = 0; i < 64; ++i) {
    events.push_back(dz::Event{static_cast<dz::AttributeValue>((i * 131) % 1024),
                               static_cast<dz::AttributeValue>((i * 53) % 1024),
                               7});
  }
  const Matrix w = buildMatchMatrix(events, subs, 3);
  const DimensionRanking strict = rankDimensions(w, 0.999);
  const DimensionRanking loose = rankDimensions(w, 0.3);
  EXPECT_LE(loose.k, strict.k);
  EXPECT_GE(loose.k, 1);
}

TEST(DimensionSelection, DegenerateWindowKeepsAll) {
  const Matrix w(4, 1);
  const DimensionRanking r = rankDimensions(w, 0.9);
  EXPECT_EQ(r.k, 4);
  EXPECT_EQ(r.ranked.size(), 4u);
}

TEST(DimensionSelection, EndToEndSelectsInformativeDims) {
  // Fig 7e setup: a zipfian workload where some dimensions are made
  // uninformative. Selection must prefer the informative ones.
  workload::WorkloadConfig cfg;
  cfg.model = workload::Model::kZipfian;
  cfg.numAttributes = 5;
  cfg.uninformativeDims = {1, 3};
  cfg.seed = 4242;
  workload::WorkloadGenerator gen(cfg);
  const auto subs = gen.makeSubscriptions(60);
  const auto events = gen.makeEvents(256);
  const std::vector<int> dims = selectDimensions(events, subs, 5, 0.8);
  ASSERT_FALSE(dims.empty());
  for (const int d : dims) {
    EXPECT_NE(d, 1) << "selected an uninformative dimension";
    EXPECT_NE(d, 3) << "selected an uninformative dimension";
  }
}

TEST(DimensionSelection, CorrelatedDimensionsShareRank) {
  // Two perfectly correlated dims: both informative, but the principal
  // eigenvector splits weight between them, so a mid threshold keeps one.
  std::vector<dz::Rectangle> subs;
  for (int i = 0; i < 8; ++i) {
    const auto lo = static_cast<dz::AttributeValue>(i * 120);
    subs.push_back(dz::Rectangle{{dz::Range{lo, lo + 100},
                                  dz::Range{lo, lo + 100},
                                  dz::Range{0, 1023}}});
  }
  std::vector<dz::Event> events;
  for (int i = 0; i < 64; ++i) {
    const auto v = static_cast<dz::AttributeValue>((i * 97) % 1024);
    events.push_back(dz::Event{v, v, 500});
  }
  const Matrix w = buildMatchMatrix(events, subs, 3);
  const DimensionRanking r = rankDimensions(w, 0.6);
  // The two correlated dims rank above the unselective one...
  EXPECT_NE(r.ranked[2], 0);
  EXPECT_NE(r.ranked[2], 1);
  // ...and the threshold needs at most both of them.
  EXPECT_LE(r.k, 2);
}

TEST(DimensionSelection, WeightsSumToOne) {
  std::vector<dz::Rectangle> subs = {
      dz::Rectangle{{dz::Range{0, 100}, dz::Range{0, 1023}}}};
  std::vector<dz::Event> events = {{50, 1}, {900, 2}, {10, 3}};
  const Matrix w = buildMatchMatrix(events, subs, 2);
  const DimensionRanking r = rankDimensions(w, 0.9);
  double sum = 0;
  for (const double x : r.weight) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace pleroma::dimsel
