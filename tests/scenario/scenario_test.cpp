#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace pleroma::scenario {
namespace {

/// A document exercising every optional block: non-default topology,
/// controller overrides, failover, workload defaults plus per-phase
/// overrides, all five families, a fault schedule, and smoke caps.
const char* kRichScenario = R"({
  "schema": "pleroma-scenario-v1",
  "name": "rich_fixture",
  "description": "round-trip fixture",
  "seed": 7,
  "topology": { "kind": "testbed-fat-tree" },
  "attributes": { "count": 3, "bits": 9 },
  "partitions": 1,
  "controller": { "max_dz_length": 20, "max_cells_per_request": 16 },
  "failover": { "heartbeat_ms": 5, "miss_threshold": 2 },
  "workload": { "selectivity": 0.2, "advertisement_width_factor": 3.0,
                "hotspots": 5, "zipf_alpha": 0.9, "hotspot_radius": 0.1 },
  "phases": [
    { "name": "warmup", "family": "uniform",
      "advertisements": 4, "subscriptions": 20, "events": 30 },
    { "name": "hot", "family": "zipfian",
      "subscriptions": 10, "events": 20, "selectivity": 0.05,
      "hotspots": 3, "zipf_alpha": 1.2, "hotspot_radius": 0.06 },
    { "name": "burst", "family": "flash-crowd",
      "advertisements": 2, "subscriptions": 15, "events": 25,
      "crowd_centre": [0.7, 0.3, 0.5], "crowd_radius": 0.04,
      "event_interval_us": 200 },
    { "name": "moves", "family": "churn", "churn_moves": 8, "events": 10 },
    { "name": "wide", "family": "wide-event-space",
      "subscriptions": 5, "events": 10, "uninformative_dims": [2] }
  ],
  "faults": [
    { "at_ms": 2.0, "action": "link-down", "target": 1 },
    { "at_ms": 4.0, "action": "link-up", "target": 1 },
    { "at_ms": 6.0, "action": "controller-kill" }
  ],
  "smoke": { "max_advertisements": 2, "max_subscriptions": 8,
             "max_events": 16, "max_churn_moves": 4 }
})";

std::optional<Scenario> parseOk(const std::string& text) {
  std::string error;
  auto s = Scenario::parse(text, &error);
  EXPECT_TRUE(s.has_value()) << error;
  return s;
}

std::string parseError(const std::string& text) {
  std::string error;
  auto s = Scenario::parse(text, &error);
  EXPECT_FALSE(s.has_value()) << "expected rejection, got a scenario";
  return error;
}

/// Minimal valid scenario text with `extra` spliced before "phases".
std::string minimalWith(const std::string& extra) {
  return std::string(R"({
  "schema": "pleroma-scenario-v1",
  "name": "minimal",
  "topology": { "kind": "ring", "switches": 4 },
)") + extra +
         R"(  "phases": [ { "name": "p", "family": "uniform",
                 "advertisements": 1, "subscriptions": 2, "events": 3 } ]
})";
}

TEST(ScenarioParse, RoundTripIsIdentity) {
  auto s1 = parseOk(kRichScenario);
  ASSERT_TRUE(s1.has_value());
  const std::string dump1 = s1->toJson().dump();
  auto s2 = parseOk(dump1);
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(dump1, s2->toJson().dump());
}

TEST(ScenarioParse, RoundTripPreservesEveryField) {
  auto s = parseOk(kRichScenario);
  ASSERT_TRUE(s.has_value());
  auto r = parseOk(s->toJson().dump());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->name, "rich_fixture");
  EXPECT_EQ(r->seed, 7u);
  EXPECT_EQ(r->numAttributes, 3);
  EXPECT_EQ(r->bitsPerDim, 9);
  ASSERT_TRUE(r->maxDzLength.has_value());
  EXPECT_EQ(*r->maxDzLength, 20);
  ASSERT_TRUE(r->maxCellsPerRequest.has_value());
  EXPECT_EQ(*r->maxCellsPerRequest, 16u);
  EXPECT_TRUE(r->failover.enabled);
  EXPECT_EQ(r->failover.heartbeatInterval, 5 * net::kMillisecond);
  EXPECT_EQ(r->failover.missThreshold, 2);
  EXPECT_DOUBLE_EQ(r->workload.selectivity, 0.2);
  ASSERT_EQ(r->phases.size(), 5u);
  EXPECT_EQ(r->phases[1].family, Family::kZipfian);
  ASSERT_TRUE(r->phases[1].selectivity.has_value());
  EXPECT_DOUBLE_EQ(*r->phases[1].selectivity, 0.05);
  EXPECT_EQ(r->phases[2].eventInterval, 200 * net::kMicrosecond);
  ASSERT_EQ(r->phases[2].crowdCentre.size(), 3u);
  EXPECT_DOUBLE_EQ(r->phases[2].crowdCentre[0], 0.7);
  EXPECT_EQ(r->phases[3].churnMoves, 8u);
  EXPECT_EQ(r->phases[4].uninformativeDims, (std::vector<int>{2}));
  ASSERT_EQ(r->faults.size(), 3u);
  EXPECT_EQ(r->faults[0].at, 2 * net::kMillisecond);
  EXPECT_EQ(r->faults[0].action, FaultAction::kLinkDown);
  EXPECT_EQ(r->faults[2].action, FaultAction::kControllerKill);
  EXPECT_EQ(r->smoke.maxEvents, 16u);
}

TEST(ScenarioParse, RichFixtureValidates) {
  auto s = parseOk(kRichScenario);
  ASSERT_TRUE(s.has_value());
  std::string error;
  EXPECT_TRUE(s->validate(&error)) << error;
}

TEST(ScenarioParse, SyntaxErrorReportsLine) {
  const std::string error = parseError(
      "{\n"
      "  \"schema\": \"pleroma-scenario-v1\",\n"
      "  \"name\": oops\n"
      "}\n");
  EXPECT_NE(error.find("(line 3)"), std::string::npos) << error;
}

TEST(ScenarioParse, UnknownTopLevelKeyNamed) {
  const std::string error = parseError(minimalWith("  \"topolgy2\": 1,\n"));
  EXPECT_NE(error.find("topolgy2"), std::string::npos) << error;
  EXPECT_NE(error.find("unknown field"), std::string::npos) << error;
}

TEST(ScenarioParse, UnknownNestedKeyReportsPath) {
  const std::string error = parseError(minimalWith(
      "  \"workload\": { \"selectivty\": 0.1 },\n"));
  EXPECT_NE(error.find("workload.selectivty"), std::string::npos) << error;
}

TEST(ScenarioParse, BadFamilyReportsPhasePath) {
  const std::string error = parseError(R"({
    "schema": "pleroma-scenario-v1",
    "name": "x",
    "topology": { "kind": "ring", "switches": 4 },
    "phases": [
      { "name": "a", "family": "uniform", "advertisements": 1, "events": 1 },
      { "name": "b", "family": "bogus" }
    ]
  })");
  EXPECT_NE(error.find("phases[1].family"), std::string::npos) << error;
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;
}

TEST(ScenarioParse, WrongSchemaRejected) {
  const std::string error = parseError(R"({
    "schema": "pleroma-scenario-v2",
    "name": "x",
    "phases": []
  })");
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

TEST(ScenarioParse, TypeMismatchReportsPath) {
  const std::string error = parseError(minimalWith("  \"seed\": \"many\",\n"));
  EXPECT_NE(error.find("seed"), std::string::npos) << error;
  EXPECT_NE(error.find("expected an integer"), std::string::npos) << error;
}

TEST(ScenarioValidate, FaultTargetOutOfRange) {
  auto s = parseOk(minimalWith(
      "  \"faults\": [ { \"at_ms\": 1.0, \"action\": \"link-down\","
      " \"target\": 9999 } ],\n"));
  ASSERT_TRUE(s.has_value());
  std::string error;
  EXPECT_FALSE(s->validate(&error));
  EXPECT_NE(error.find("faults[0].target"), std::string::npos) << error;
}

TEST(ScenarioValidate, MultiPartitionRejectsFaults) {
  auto s = parseOk(minimalWith(
      "  \"partitions\": 2,\n"
      "  \"faults\": [ { \"at_ms\": 1.0, \"action\": \"link-down\","
      " \"target\": 0 } ],\n"));
  ASSERT_TRUE(s.has_value());
  std::string error;
  EXPECT_FALSE(s->validate(&error));
  EXPECT_NE(error.find("faults"), std::string::npos) << error;
}

TEST(ScenarioValidate, EventsRequirePriorAdvertisement) {
  auto s = parseOk(R"({
    "schema": "pleroma-scenario-v1",
    "name": "x",
    "topology": { "kind": "ring", "switches": 4 },
    "phases": [ { "name": "p", "family": "uniform", "events": 10 } ]
  })");
  ASSERT_TRUE(s.has_value());
  std::string error;
  EXPECT_FALSE(s->validate(&error));
  EXPECT_NE(error.find("phases[0]"), std::string::npos) << error;
}

TEST(ScenarioValidate, ChurnRequiresPriorSubscriptions) {
  auto s = parseOk(R"({
    "schema": "pleroma-scenario-v1",
    "name": "x",
    "topology": { "kind": "ring", "switches": 4 },
    "phases": [ { "name": "p", "family": "churn", "advertisements": 1,
                  "churn_moves": 4 } ]
  })");
  ASSERT_TRUE(s.has_value());
  std::string error;
  EXPECT_FALSE(s->validate(&error));
  EXPECT_NE(error.find("churn"), std::string::npos) << error;
}

TEST(ScenarioValidate, LoadFilePrefixesPath) {
  const std::string path = ::testing::TempDir() + "/broken_scenario.json";
  {
    std::ofstream out(path);
    out << "{ not json\n";
  }
  std::string error;
  auto s = Scenario::loadFile(path, &error);
  EXPECT_FALSE(s.has_value());
  EXPECT_NE(error.find(path), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(ScenarioPlan, SmokeCapsApply) {
  auto s = parseOk(kRichScenario);
  ASSERT_TRUE(s.has_value());
  const PhasePlan full = buildPhasePlan(*s, 0, 8, 0, /*smoke=*/false);
  const PhasePlan smoke = buildPhasePlan(*s, 0, 8, 0, /*smoke=*/true);
  EXPECT_EQ(full.advertisements.size(), 4u);
  EXPECT_EQ(full.subscriptions.size(), 20u);
  EXPECT_EQ(full.events.size(), 30u);
  EXPECT_EQ(smoke.advertisements.size(), 2u);
  EXPECT_EQ(smoke.subscriptions.size(), 8u);
  EXPECT_EQ(smoke.events.size(), 16u);
}

TEST(ScenarioPlan, PhaseSeedsDeriveFromScenarioSeed) {
  auto s = parseOk(kRichScenario);
  ASSERT_TRUE(s.has_value());
  const auto c0 = phaseWorkloadConfig(*s, 0);
  const auto c1 = phaseWorkloadConfig(*s, 1);
  EXPECT_EQ(c0.seed, workload::derivePhaseSeed(s->seed, 0));
  EXPECT_NE(c0.seed, c1.seed);
  EXPECT_NE(c0.seed, s->seed);
}

TEST(ScenarioPlan, HostSlotsRoundRobin) {
  auto s = parseOk(kRichScenario);
  ASSERT_TRUE(s.has_value());
  const PhasePlan plan = buildPhasePlan(*s, 0, 3, 0, /*smoke=*/false);
  for (std::size_t i = 0; i < plan.subscriptions.size(); ++i) {
    EXPECT_EQ(plan.subscriptions[i].first, i % 3);
  }
}

TEST(ScenarioLabels, TopologyAndWorkload) {
  auto s = parseOk(kRichScenario);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->topologyLabel(), "testbed_fat_tree");
  EXPECT_EQ(s->workloadLabel(),
            "uniform+zipfian+flash-crowd+churn+wide-event-space");
  EXPECT_TRUE(s->needsFailover());
}

}  // namespace
}  // namespace pleroma::scenario
