// Execution-layer tests: determinism across thread counts, exact
// equivalence of the flash-crowd family with a hand-coded bench, churn,
// fault schedules, multi-partition runs, and failover promotion.
#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/pleroma.hpp"

namespace pleroma::scenario {
namespace {

Scenario parseScenario(const std::string& text) {
  std::string error;
  auto s = Scenario::parse(text, &error);
  EXPECT_TRUE(s.has_value()) << error;
  EXPECT_TRUE(s->validate(&error)) << error;
  return *s;
}

/// Reports land in the test temp dir, not the working directory.
struct BenchDirGuard : ::testing::Test {
  void SetUp() override {
    ::setenv("PLEROMA_BENCH_DIR", ::testing::TempDir().c_str(), 1);
  }
  void TearDown() override { ::unsetenv("PLEROMA_BENCH_DIR"); }
};

using ScenarioRunnerTest = BenchDirGuard;

const char* kMixedScenario = R"({
  "schema": "pleroma-scenario-v1",
  "name": "mixed",
  "seed": 11,
  "topology": { "kind": "testbed-fat-tree" },
  "attributes": { "count": 2, "bits": 10 },
  "phases": [
    { "name": "warmup", "family": "uniform",
      "advertisements": 3, "subscriptions": 30, "events": 40 },
    { "name": "moves", "family": "churn", "churn_moves": 10, "events": 20 },
    { "name": "burst", "family": "flash-crowd",
      "advertisements": 2, "subscriptions": 20, "events": 30,
      "crowd_centre": [0.6, 0.4], "crowd_radius": 0.06 }
  ],
  "faults": [ { "at_ms": 3.0, "action": "link-down", "target": 2 } ],
  "smoke": { "max_advertisements": 2, "max_subscriptions": 10,
             "max_events": 12, "max_churn_moves": 4 }
})";

TEST_F(ScenarioRunnerTest, ByteIdenticalAcrossThreadCounts) {
  const Scenario s = parseScenario(kMixedScenario);

  auto runAt = [&](int threads) {
    RunOptions opts;
    opts.threads = threads;
    ScenarioRunner runner(s, opts);
    const RunResult result = runner.run();
    obs::BenchReporter report(s.name);
    runner.report(report, result);
    report.finish();
    return std::make_pair(result, report.toJson());
  };
  const auto [r1, j1] = runAt(1);
  const auto [r4, j4] = runAt(4);

  // Every series (phases, faults, totals) must match cell for cell; only
  // the "threads" metadata entry may differ between the two reports.
  ASSERT_NE(j1.get("series"), nullptr);
  ASSERT_NE(j4.get("series"), nullptr);
  EXPECT_EQ(j1.get("series")->dump(), j4.get("series")->dump());

  EXPECT_EQ(r1.delivered, r4.delivered);
  EXPECT_EQ(r1.falsePositives, r4.falsePositives);
  EXPECT_EQ(r1.published, r4.published);
  EXPECT_EQ(r1.flowMods, r4.flowMods);
  EXPECT_EQ(r1.end, r4.end);
  EXPECT_DOUBLE_EQ(r1.meanLatencyUs, r4.meanLatencyUs);
  EXPECT_GT(r1.delivered, 0u);

  std::string error;
  EXPECT_TRUE(obs::BenchReporter::validate(j1, &error)) << error;
}

TEST_F(ScenarioRunnerTest, FlashCrowdMatchesHandCodedSequence) {
  const Scenario s = parseScenario(R"({
    "schema": "pleroma-scenario-v1",
    "name": "crowd_equiv",
    "seed": 23,
    "topology": { "kind": "testbed-fat-tree" },
    "attributes": { "count": 2, "bits": 10 },
    "phases": [
      { "name": "burst", "family": "flash-crowd",
        "advertisements": 3, "subscriptions": 40, "events": 60,
        "crowd_centre": [0.7, 0.3], "crowd_radius": 0.05,
        "event_interval_us": 100 }
    ]
  })");

  ScenarioRunner runner(s);
  const RunResult viaEngine = runner.run();

  // The same experiment written the way a bench binary would: one
  // generator seeded with derivePhaseSeed(seed, 0), draws in plan order
  // (advertisements, subscriptions, events), hosts assigned round-robin,
  // events paced at the phase interval and published round-robin over the
  // phase's advertisers.
  core::PleromaOptions opts;
  opts.numAttributes = s.numAttributes;
  opts.bitsPerDim = s.bitsPerDim;
  core::Pleroma middleware(s.buildTopology(), opts);
  const auto hosts = middleware.topology().hosts();
  workload::WorkloadGenerator gen(phaseWorkloadConfig(s, 0));

  std::vector<std::size_t> advSlots;
  for (std::size_t i = 0; i < 3; ++i) {
    const dz::Rectangle rect = gen.makeAdvertisement();
    middleware.advertise(hosts[i % hosts.size()], rect);
    advSlots.push_back(i % hosts.size());
  }
  for (std::size_t i = 0; i < 40; ++i) {
    const dz::Rectangle rect = gen.makeSubscription();
    middleware.subscribe(hosts[i % hosts.size()], rect);
  }
  middleware.settle();
  net::SimTime cursor = middleware.simulator().now();
  const auto events = gen.makeEvents(60);
  for (std::size_t i = 0; i < events.size(); ++i) {
    cursor += 100 * net::kMicrosecond;
    middleware.settleUntil(cursor);
    middleware.publish(hosts[advSlots[i % advSlots.size()]], events[i]);
  }
  middleware.settle();

  const core::DeliveryStats& hand = middleware.deliveryStats();
  EXPECT_GT(viaEngine.delivered, 0u);
  EXPECT_EQ(viaEngine.published, 60u);
  EXPECT_EQ(viaEngine.delivered, hand.delivered);
  EXPECT_EQ(viaEngine.falsePositives, hand.falsePositives);
  EXPECT_DOUBLE_EQ(viaEngine.meanLatencyUs, hand.meanLatencyUs());
  EXPECT_EQ(viaEngine.end, middleware.simulator().now());
}

TEST_F(ScenarioRunnerTest, ChurnMovesRehomeSubscriptions) {
  const Scenario s = parseScenario(R"({
    "schema": "pleroma-scenario-v1",
    "name": "churn_small",
    "seed": 5,
    "topology": { "kind": "ring", "switches": 6 },
    "phases": [
      { "name": "populate", "family": "uniform",
        "advertisements": 2, "subscriptions": 12, "events": 10 },
      { "name": "roam", "family": "churn", "churn_moves": 8, "events": 10 }
    ]
  })");
  ScenarioRunner runner(s);
  const RunResult result = runner.run();
  ASSERT_EQ(result.phases.size(), 2u);
  EXPECT_EQ(result.phases[1].churnMoves, 8u);
  // Re-homing is unsub+resub: the churn phase must issue fresh flow-mods
  // even though it adds no new subscriptions.
  EXPECT_GT(result.phases[1].flowMods, 0u);
  EXPECT_GT(result.delivered, 0u);
}

TEST_F(ScenarioRunnerTest, FaultScheduleAppliesAtItsInstant) {
  const Scenario s = parseScenario(kMixedScenario);
  ScenarioRunner runner(s);
  const RunResult result = runner.run();
  ASSERT_EQ(result.faults.size(), 1u);
  EXPECT_EQ(result.faults[0].spec.action, FaultAction::kLinkDown);
  // The fault fires at its virtual instant, never before.
  EXPECT_GE(result.faults[0].appliedAt, 3 * net::kMillisecond);

  // The same scenario without the fault differs in control-plane work:
  // the link-down forces spanning-tree repair flow-mods.
  Scenario noFault = s;
  noFault.faults.clear();
  ScenarioRunner clean(noFault);
  const RunResult cleanResult = clean.run();
  EXPECT_NE(result.flowMods, cleanResult.flowMods);
}

TEST_F(ScenarioRunnerTest, MultiPartitionRunProducesInteropTraffic) {
  const Scenario s = parseScenario(R"({
    "schema": "pleroma-scenario-v1",
    "name": "multi_small",
    "seed": 3,
    "topology": { "kind": "ring", "switches": 8 },
    "partitions": 4,
    "phases": [
      { "name": "main", "family": "uniform",
        "advertisements": 4, "subscriptions": 24, "events": 40 }
    ]
  })");
  ScenarioRunner runner(s);
  const RunResult result = runner.run();
  EXPECT_GT(result.delivered, 0u);
  // Subscriptions spread over 4 partitions: the controllers must have
  // exchanged interop messages to span partition borders.
  EXPECT_GT(result.controlMessages, 0u);
  EXPECT_FALSE(result.promoted);
}

TEST_F(ScenarioRunnerTest, ControllerKillPromotesStandby) {
  const Scenario s = parseScenario(R"({
    "schema": "pleroma-scenario-v1",
    "name": "kill_small",
    "seed": 9,
    "topology": { "kind": "testbed-fat-tree" },
    "failover": { "heartbeat_ms": 1, "miss_threshold": 2 },
    "phases": [
      { "name": "steady", "family": "uniform",
        "advertisements": 2, "subscriptions": 20, "events": 80,
        "event_interval_us": 100 }
    ],
    "faults": [ { "at_ms": 2.0, "action": "controller-kill" } ]
  })");
  ScenarioRunner runner(s);
  const RunResult result = runner.run();
  ASSERT_EQ(result.faults.size(), 1u);
  EXPECT_TRUE(result.promoted);
  EXPECT_GT(result.delivered, 0u);
}

TEST_F(ScenarioRunnerTest, SmokeModeShrinksTheRun) {
  const Scenario s = parseScenario(kMixedScenario);
  RunOptions opts;
  opts.smoke = true;
  ScenarioRunner smokeRunner(s, opts);
  const RunResult smoke = smokeRunner.run();
  ScenarioRunner fullRunner(s);
  const RunResult full = fullRunner.run();
  ASSERT_EQ(smoke.phases.size(), full.phases.size());
  EXPECT_LT(smoke.published, full.published);
  EXPECT_LT(smoke.phases[0].subscriptions, full.phases[0].subscriptions);
}

}  // namespace
}  // namespace pleroma::scenario
