#include "workload/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pleroma::workload {
namespace {

TEST(Workload, UniformEventsInDomain) {
  WorkloadConfig cfg;
  cfg.numAttributes = 5;
  WorkloadGenerator gen(cfg);
  for (const auto& e : gen.makeEvents(200)) {
    ASSERT_EQ(e.size(), 5u);
    for (const auto v : e) EXPECT_LE(v, gen.domainMax());
  }
}

TEST(Workload, UniformSubscriptionsValidRanges) {
  WorkloadConfig cfg;
  cfg.numAttributes = 3;
  cfg.subscriptionSelectivity = 0.2;
  WorkloadGenerator gen(cfg);
  for (const auto& r : gen.makeSubscriptions(200)) {
    ASSERT_EQ(r.ranges.size(), 3u);
    for (const auto& range : r.ranges) {
      EXPECT_LE(range.lo, range.hi);
      EXPECT_LE(range.hi, gen.domainMax());
    }
  }
}

TEST(Workload, DeterministicForSeed) {
  WorkloadConfig cfg;
  cfg.seed = 777;
  WorkloadGenerator a(cfg), b(cfg);
  EXPECT_EQ(a.makeEvent(), b.makeEvent());
  EXPECT_EQ(a.makeSubscription(), b.makeSubscription());
}

TEST(Workload, SelectivityControlsWidth) {
  WorkloadConfig narrow;
  narrow.subscriptionSelectivity = 0.05;
  WorkloadConfig wide = narrow;
  wide.subscriptionSelectivity = 0.5;
  WorkloadGenerator ng(narrow), wg(wide);
  double narrowWidth = 0, wideWidth = 0;
  for (int i = 0; i < 100; ++i) {
    for (const auto& r : ng.makeSubscription().ranges) {
      narrowWidth += r.hi - r.lo;
    }
    for (const auto& r : wg.makeSubscription().ranges) {
      wideWidth += r.hi - r.lo;
    }
  }
  EXPECT_LT(narrowWidth * 3, wideWidth);
}

TEST(Workload, AdvertisementsWiderThanSubscriptions) {
  WorkloadConfig cfg;
  cfg.subscriptionSelectivity = 0.05;
  cfg.advertisementWidthFactor = 4.0;
  WorkloadGenerator gen(cfg);
  double subWidth = 0, advWidth = 0;
  for (int i = 0; i < 200; ++i) {
    for (const auto& r : gen.makeSubscription().ranges) subWidth += r.hi - r.lo;
    for (const auto& r : gen.makeAdvertisement().ranges) advWidth += r.hi - r.lo;
  }
  EXPECT_LT(subWidth * 2, advWidth);
}

TEST(Workload, ZipfianHotspotsCreated) {
  WorkloadConfig cfg;
  cfg.model = Model::kZipfian;
  cfg.numHotspots = 7;
  WorkloadGenerator gen(cfg);
  EXPECT_EQ(gen.hotspots().size(), 7u);
}

TEST(Workload, ZipfianEventsClusterAroundHotspots) {
  WorkloadConfig cfg;
  cfg.model = Model::kZipfian;
  cfg.numAttributes = 2;
  cfg.hotspotRadius = 0.05;
  WorkloadGenerator gen(cfg);
  const double maxDist = 0.05 * static_cast<double>(gen.domainMax()) + 1;
  for (const auto& e : gen.makeEvents(200)) {
    bool nearSome = false;
    for (const auto& h : gen.hotspots()) {
      bool nearThis = true;
      for (std::size_t d = 0; d < e.size(); ++d) {
        if (std::fabs(static_cast<double>(e[d]) - static_cast<double>(h[d])) >
            maxDist) {
          nearThis = false;
          break;
        }
      }
      if (nearThis) {
        nearSome = true;
        break;
      }
    }
    EXPECT_TRUE(nearSome);
  }
}

TEST(Workload, ZipfianSubscriptionsOverlapMoreThanUniform) {
  // Hotspot concentration should produce far more pairwise subscription
  // overlap than the uniform model — this drives covering/sharing effects.
  auto overlapCount = [](Model m) {
    WorkloadConfig cfg;
    cfg.model = m;
    cfg.numAttributes = 2;
    cfg.subscriptionSelectivity = 0.05;
    cfg.seed = 99;
    WorkloadGenerator gen(cfg);
    const auto subs = gen.makeSubscriptions(80);
    int overlaps = 0;
    for (std::size_t i = 0; i < subs.size(); ++i) {
      for (std::size_t j = i + 1; j < subs.size(); ++j) {
        overlaps += subs[i].intersects(subs[j]) ? 1 : 0;
      }
    }
    return overlaps;
  };
  EXPECT_GT(overlapCount(Model::kZipfian), 2 * overlapCount(Model::kUniform));
}

TEST(Workload, UninformativeDimsUnselective) {
  WorkloadConfig cfg;
  cfg.model = Model::kZipfian;
  cfg.numAttributes = 4;
  cfg.uninformativeDims = {1, 3};
  WorkloadGenerator gen(cfg);
  for (const auto& r : gen.makeSubscriptions(50)) {
    EXPECT_EQ(r.ranges[1], (dz::Range{0, gen.domainMax()}));
    EXPECT_EQ(r.ranges[3], (dz::Range{0, gen.domainMax()}));
  }
}

TEST(Workload, UninformativeDimsLowEventVariance) {
  WorkloadConfig cfg;
  cfg.model = Model::kZipfian;
  cfg.numAttributes = 2;
  cfg.uninformativeDims = {0};
  WorkloadGenerator gen(cfg);
  const auto events = gen.makeEvents(300);
  auto variance = [&](int dim) {
    double mean = 0;
    for (const auto& e : events) mean += e[static_cast<std::size_t>(dim)];
    mean /= static_cast<double>(events.size());
    double var = 0;
    for (const auto& e : events) {
      const double d = static_cast<double>(e[static_cast<std::size_t>(dim)]) - mean;
      var += d * d;
    }
    return var / static_cast<double>(events.size());
  };
  EXPECT_LT(variance(0) * 10, variance(1));
}

TEST(Workload, FlashCrowdEventsConcentrateAroundCentre) {
  WorkloadConfig cfg;
  cfg.model = Model::kFlashCrowd;
  cfg.numAttributes = 2;
  cfg.crowdCentre = {0.7, 0.3};
  cfg.crowdRadius = 0.05;
  WorkloadGenerator gen(cfg);
  const double domain = static_cast<double>(gen.domainMax());
  for (const auto& e : gen.makeEvents(200)) {
    EXPECT_NEAR(static_cast<double>(e[0]), 0.7 * domain, 0.06 * domain);
    EXPECT_NEAR(static_cast<double>(e[1]), 0.3 * domain, 0.06 * domain);
  }
}

TEST(Workload, FlashCrowdSubscriptionsOverlapTheCrowd) {
  WorkloadConfig cfg;
  cfg.model = Model::kFlashCrowd;
  cfg.numAttributes = 2;
  cfg.crowdCentre = {0.5, 0.5};
  cfg.crowdRadius = 0.05;
  WorkloadGenerator gen(cfg);
  // Every crowd subscription must match events at the crowd centre.
  const double domain = static_cast<double>(gen.domainMax());
  const dz::Event centre{static_cast<dz::AttributeValue>(0.5 * domain),
                         static_cast<dz::AttributeValue>(0.5 * domain)};
  int matching = 0;
  for (const auto& r : gen.makeSubscriptions(100)) {
    matching += r.contains(centre) ? 1 : 0;
  }
  EXPECT_GT(matching, 60);
}

TEST(Workload, ChurnStepsDeterministicAndRehoming) {
  WorkloadConfig cfg;
  cfg.seed = 31;
  WorkloadGenerator a(cfg), b(cfg);
  const auto planA = a.makeChurnSteps(40, 25, 8);
  const auto planB = b.makeChurnSteps(40, 25, 8);
  ASSERT_EQ(planA.size(), 25u);
  for (std::size_t i = 0; i < planA.size(); ++i) {
    EXPECT_EQ(planA[i].subIndex, planB[i].subIndex);
    EXPECT_EQ(planA[i].hostOffset, planB[i].hostOffset);
    EXPECT_LT(planA[i].subIndex, 40u);
    // A non-zero offset modulo the slot count: the move always lands on a
    // different host.
    EXPECT_GE(planA[i].hostOffset, 1u);
    EXPECT_LT(planA[i].hostOffset, 8u);
  }
}

TEST(Workload, DerivePhaseSeedSeparatesStreams) {
  const std::uint64_t seed = 42;
  EXPECT_NE(derivePhaseSeed(seed, 0), seed);
  EXPECT_NE(derivePhaseSeed(seed, 0), derivePhaseSeed(seed, 1));
  EXPECT_NE(derivePhaseSeed(seed, 1), derivePhaseSeed(seed, 2));
  EXPECT_NE(derivePhaseSeed(seed, 0), derivePhaseSeed(seed + 1, 0));
  // Same inputs, same derivation — reports only need (seed, phase).
  EXPECT_EQ(derivePhaseSeed(seed, 3), derivePhaseSeed(seed, 3));
}

}  // namespace
}  // namespace pleroma::workload
