#include "workload/parametric.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pleroma::workload {
namespace {

MovingWindowConfig config() {
  MovingWindowConfig c;
  c.numAttributes = 2;
  c.radius = 100;
  c.minSpeed = 10;
  c.maxSpeed = 20;
  return c;
}

TEST(MovingWindow, WindowsStayInsideDomain) {
  util::Rng rng(5);
  MovingWindow w(config(), rng);
  for (int i = 0; i < 500; ++i) {
    const dz::Rectangle r = w.step();
    ASSERT_EQ(r.ranges.size(), 2u);
    for (const auto& range : r.ranges) {
      EXPECT_LE(range.lo, range.hi);
      EXPECT_LE(range.hi, 1023u);
    }
    for (const double c : w.centre()) {
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1023.0);
    }
  }
}

TEST(MovingWindow, WindowHasConfiguredExtent) {
  util::Rng rng(6);
  MovingWindow w(config(), rng);
  // Away from the boundary the window spans 2*radius.
  for (int i = 0; i < 200; ++i) {
    const dz::Rectangle r = w.step();
    for (std::size_t d = 0; d < 2; ++d) {
      const double width = static_cast<double>(r.ranges[d].hi) -
                           static_cast<double>(r.ranges[d].lo);
      EXPECT_LE(width, 200.0);
      // Only clipped at boundaries; otherwise exactly 200.
      if (r.ranges[d].lo > 0 && r.ranges[d].hi < 1023) {
        EXPECT_EQ(width, 200.0);
      }
    }
  }
}

TEST(MovingWindow, MovesEveryStep) {
  util::Rng rng(7);
  MovingWindow w(config(), rng);
  const auto before = w.centre();
  w.step();
  const auto after = w.centre();
  double displacement = 0;
  for (std::size_t d = 0; d < before.size(); ++d) {
    displacement += std::fabs(after[d] - before[d]);
  }
  EXPECT_GE(displacement, 10.0);  // at least minSpeed per dim
}

TEST(MovingWindow, UnconstrainedDimsSpanDomain) {
  MovingWindowConfig c = config();
  c.numAttributes = 3;
  c.unconstrainedDims = {2};
  util::Rng rng(8);
  MovingWindow w(c, rng);
  for (int i = 0; i < 20; ++i) {
    const dz::Rectangle r = w.step();
    EXPECT_EQ(r.ranges[2], (dz::Range{0, 1023}));
  }
}

TEST(MovingWindow, ReflectsAtBoundary) {
  // Drive a window into the wall and verify it comes back.
  MovingWindowConfig c = config();
  c.minSpeed = c.maxSpeed = 50;
  util::Rng rng(9);
  MovingWindow w(c, rng);
  double minCentre = 1023, maxCentre = 0;
  for (int i = 0; i < 200; ++i) {
    w.step();
    minCentre = std::min(minCentre, w.centre()[0]);
    maxCentre = std::max(maxCentre, w.centre()[0]);
  }
  // With speed 50 over 200 steps the walk must have toured the domain.
  EXPECT_LT(minCentre, 200.0);
  EXPECT_GT(maxCentre, 823.0);
}

TEST(MovingWindowFleet, IndependentWindows) {
  MovingWindowFleet fleet(config(), 5, 42);
  ASSERT_EQ(fleet.size(), 5u);
  const auto rects = fleet.stepAll();
  ASSERT_EQ(rects.size(), 5u);
  // Not all windows at the same position.
  int distinct = 0;
  for (std::size_t i = 1; i < rects.size(); ++i) {
    if (!(rects[i] == rects[0])) ++distinct;
  }
  EXPECT_GT(distinct, 0);
}

TEST(MovingWindowFleet, DeterministicPerSeed) {
  MovingWindowFleet a(config(), 3, 77);
  MovingWindowFleet b(config(), 3, 77);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.stepAll(), b.stepAll());
  }
}

}  // namespace
}  // namespace pleroma::workload
