#include "util/log.hpp"

#include <gtest/gtest.h>

namespace pleroma::util {
namespace {

struct LogLevelGuard {
  LogLevelGuard() : saved(logLevel()) {}
  ~LogLevelGuard() { setLogLevel(saved); }
  LogLevel saved;
};

TEST(Log, DefaultLevelIsWarn) {
  // The default keeps benches/examples quiet: debug and info are dropped.
  LogLevelGuard guard;
  EXPECT_EQ(logLevel(), LogLevel::kWarn);
}

TEST(Log, SetAndGetLevel) {
  LogLevelGuard guard;
  setLogLevel(LogLevel::kDebug);
  EXPECT_EQ(logLevel(), LogLevel::kDebug);
  setLogLevel(LogLevel::kOff);
  EXPECT_EQ(logLevel(), LogLevel::kOff);
}

TEST(Log, LevelsAreOrdered) {
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kOff);
}

TEST(Log, SuppressedMessagesDoNotCrash) {
  LogLevelGuard guard;
  setLogLevel(LogLevel::kOff);
  // Formatting is skipped entirely below the level — must not evaluate into
  // a crash even with mismatched-looking args, and must not emit.
  logf(LogLevel::kDebug, "value=%d", 42);
  logLine(LogLevel::kError, "suppressed too");
}

TEST(Log, FormattingPath) {
  LogLevelGuard guard;
  setLogLevel(LogLevel::kDebug);
  // Exercise both the formatted and plain paths (visual check only; output
  // goes to stderr).
  logf(LogLevel::kDebug, "plain message");
  logf(LogLevel::kInfo, "x=%d y=%s", 7, "ok");
  PLEROMA_LOG_WARN("macro %d", 3);
}

}  // namespace
}  // namespace pleroma::util
