#include "util/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

namespace pleroma::util {
namespace {

TEST(WorkerPool, SingleThreadRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  std::vector<int> workers;
  pool.run([&](int w) { workers.push_back(w); });
  ASSERT_EQ(workers.size(), 1u);
  EXPECT_EQ(workers[0], 0);
}

TEST(WorkerPool, ClampsToAtLeastOneWorker) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.threads(), 1);
  WorkerPool neg(-3);
  EXPECT_EQ(neg.threads(), 1);
}

TEST(WorkerPool, EveryWorkerRunsExactlyOnce) {
  constexpr int kThreads = 4;
  WorkerPool pool(kThreads);
  std::vector<std::atomic<int>> hits(kThreads);
  pool.run([&](int w) { hits[static_cast<std::size_t>(w)].fetch_add(1); });
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_EQ(hits[static_cast<std::size_t>(w)].load(), 1) << "worker " << w;
  }
}

TEST(WorkerPool, BackToBackRegions) {
  WorkerPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.run([&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 4 * 200);
}

TEST(WorkerPool, RunPublishesJobWrites) {
  // Plain (non-atomic) per-worker writes must be visible to the caller
  // after run() — this is the memory-ordering contract the simulator's
  // merge phase relies on (and what TSan checks in the sanitize=thread CI
  // job).
  WorkerPool pool(4);
  std::vector<std::uint64_t> slot(4, 0);
  for (std::uint64_t round = 1; round <= 50; ++round) {
    pool.run([&](int w) { slot[static_cast<std::size_t>(w)] = round; });
    for (int w = 0; w < 4; ++w) {
      ASSERT_EQ(slot[static_cast<std::size_t>(w)], round);
    }
  }
}

TEST(WorkerPool, ParallelForCoversEveryIndexOnce) {
  WorkerPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPool, ParallelForEmptyAndSingle) {
  WorkerPool pool(2);
  int calls = 0;
  pool.parallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> one{0};
  pool.parallelFor(1, [&](std::size_t i) { one.fetch_add(i == 0 ? 1 : 100); });
  EXPECT_EQ(one.load(), 1);
}

TEST(WorkerPool, DestructionWithoutEverRunning) {
  WorkerPool pool(8);
  // Destructor must cleanly stop workers that never saw a region.
}

TEST(WorkerPool, MorePoolThreadsThanIndices) {
  WorkerPool pool(8);
  std::atomic<int> sum{0};
  pool.parallelFor(3, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i) + 1);
  });
  EXPECT_EQ(sum.load(), 1 + 2 + 3);
}

}  // namespace
}  // namespace pleroma::util
