#include "util/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pleroma::util {
namespace {

/// Pinned pools pin the calling thread too (it is worker 0); restore the
/// test runner's affinity on scope exit so later tests are unaffected.
struct AffinityRestore {
#if defined(__linux__)
  cpu_set_t saved;
  bool ok;
  AffinityRestore() {
    ok = pthread_getaffinity_np(pthread_self(), sizeof(saved), &saved) == 0;
  }
  ~AffinityRestore() {
    if (ok) pthread_setaffinity_np(pthread_self(), sizeof(saved), &saved);
  }
#endif
};

TEST(WorkerPool, SingleThreadRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  std::vector<int> workers;
  pool.run([&](int w) { workers.push_back(w); });
  ASSERT_EQ(workers.size(), 1u);
  EXPECT_EQ(workers[0], 0);
}

TEST(WorkerPool, ClampsToAtLeastOneWorker) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.threads(), 1);
  WorkerPool neg(-3);
  EXPECT_EQ(neg.threads(), 1);
}

TEST(WorkerPool, EveryWorkerRunsExactlyOnce) {
  constexpr int kThreads = 4;
  WorkerPool pool(kThreads);
  std::vector<std::atomic<int>> hits(kThreads);
  pool.run([&](int w) { hits[static_cast<std::size_t>(w)].fetch_add(1); });
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_EQ(hits[static_cast<std::size_t>(w)].load(), 1) << "worker " << w;
  }
}

TEST(WorkerPool, BackToBackRegions) {
  WorkerPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.run([&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 4 * 200);
}

TEST(WorkerPool, RunPublishesJobWrites) {
  // Plain (non-atomic) per-worker writes must be visible to the caller
  // after run() — this is the memory-ordering contract the simulator's
  // merge phase relies on (and what TSan checks in the sanitize=thread CI
  // job).
  WorkerPool pool(4);
  std::vector<std::uint64_t> slot(4, 0);
  for (std::uint64_t round = 1; round <= 50; ++round) {
    pool.run([&](int w) { slot[static_cast<std::size_t>(w)] = round; });
    for (int w = 0; w < 4; ++w) {
      ASSERT_EQ(slot[static_cast<std::size_t>(w)], round);
    }
  }
}

TEST(WorkerPool, ParallelForCoversEveryIndexOnce) {
  WorkerPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPool, ParallelForEmptyAndSingle) {
  WorkerPool pool(2);
  int calls = 0;
  pool.parallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> one{0};
  pool.parallelFor(1, [&](std::size_t i) { one.fetch_add(i == 0 ? 1 : 100); });
  EXPECT_EQ(one.load(), 1);
}

TEST(WorkerPool, DestructionWithoutEverRunning) {
  WorkerPool pool(8);
  // Destructor must cleanly stop workers that never saw a region.
}

TEST(WorkerPool, PinnedPoolRunsEveryWorkerAndReportsPinned) {
  const AffinityRestore restore;
  WorkerPool pool(3, /*pinThreads=*/true);
  EXPECT_TRUE(pool.pinned());
  std::vector<std::atomic<int>> hits(3);
  for (int round = 0; round < 20; ++round) {
    pool.run([&](int w) { hits[static_cast<std::size_t>(w)].fetch_add(1); });
  }
  for (int w = 0; w < 3; ++w) {
    EXPECT_EQ(hits[static_cast<std::size_t>(w)].load(), 20) << "worker " << w;
  }
}

#if defined(__linux__)
TEST(WorkerPool, PinnedWorkersHaveSingleCoreAffinity) {
  const AffinityRestore restore;
  WorkerPool pool(2, /*pinThreads=*/true);
  std::vector<int> cpusInMask(2, 0);
  pool.run([&](int w) {
    cpu_set_t set;
    CPU_ZERO(&set);
    if (pthread_getaffinity_np(pthread_self(), sizeof(set), &set) == 0) {
      cpusInMask[static_cast<std::size_t>(w)] = CPU_COUNT(&set);
    }
  });
  // Best-effort: pinning may be refused under restricted cpusets, in which
  // case the mask stays wider. When it took effect it must be exactly one.
  for (int w = 0; w < 2; ++w) {
    EXPECT_GE(cpusInMask[w], 1) << "affinity unreadable for worker " << w;
    if (cpusInMask[w] > 1) {
      GTEST_LOG_(INFO) << "pinning not applied for worker " << w
                       << " (restricted environment?)";
    }
  }
}
#endif

TEST(WorkerPool, UnpinnedIsTheDefault) {
  WorkerPool pool(2);
  EXPECT_FALSE(pool.pinned());
}

TEST(WorkerPool, MorePoolThreadsThanIndices) {
  WorkerPool pool(8);
  std::atomic<int> sum{0};
  pool.parallelFor(3, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i) + 1);
  });
  EXPECT_EQ(sum.load(), 1 + 2 + 3);
}

}  // namespace
}  // namespace pleroma::util
