#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace pleroma::util {
namespace {

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStat, MergeMatchesCombined) {
  RunningStat a, b, all;
  for (double v : {1.0, 2.0, 3.0}) {
    a.add(v);
    all.add(v);
  }
  for (double v : {10.0, 20.0}) {
    b.add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  RunningStat b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 5.0);
}

// Regression: an empty side's default min_/max_ of 0.0 must never leak
// into the merged extrema. With all-positive samples a leaked 0 would
// drag min down; with all-negative samples it would drag max up.
TEST(RunningStat, MergeWithEmptyPreservesExtrema) {
  RunningStat positive;
  positive.add(4.0);
  positive.add(9.0);
  RunningStat empty;
  positive.merge(empty);
  EXPECT_EQ(positive.min(), 4.0);
  EXPECT_EQ(positive.max(), 9.0);

  RunningStat intoEmpty;
  intoEmpty.merge(positive);
  EXPECT_EQ(intoEmpty.min(), 4.0);
  EXPECT_EQ(intoEmpty.max(), 9.0);

  RunningStat negative;
  negative.add(-7.0);
  negative.add(-2.0);
  RunningStat target;
  target.merge(negative);
  target.merge(RunningStat{});
  EXPECT_EQ(target.min(), -7.0);
  EXPECT_EQ(target.max(), -2.0);
  EXPECT_EQ(target.count(), 2u);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.percentile(0.5), 50.0);
  EXPECT_EQ(s.percentile(0.99), 99.0);
  EXPECT_EQ(s.percentile(1.0), 100.0);
  EXPECT_EQ(s.percentile(0.0), 1.0);
}

TEST(Samples, MeanAndClear) {
  Samples s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(0.5), 0.0);
}

TEST(Counters, IncrementAndRead) {
  Counters c;
  EXPECT_EQ(c.get("x"), 0u);
  c.inc("x");
  c.inc("x", 4);
  c.inc("y");
  EXPECT_EQ(c.get("x"), 5u);
  EXPECT_EQ(c.get("y"), 1u);
  EXPECT_EQ(c.all().size(), 2u);
  c.clear();
  EXPECT_EQ(c.get("x"), 0u);
}

}  // namespace
}  // namespace pleroma::util
