#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <map>

namespace pleroma::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniformInt(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniformInt(42, 42), 42u);
}

TEST(Rng, UniformIntHitsAllValues) {
  Rng rng(3);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 3000; ++i) ++counts[rng.uniformInt(0, 9)];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, 150) << v;  // roughly uniform (expected 300)
    EXPECT_LT(c, 450) << v;
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniformReal();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRealRange) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniformReal(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, ReseedReproduces) {
  Rng rng(123);
  const auto first = rng();
  rng.reseed(123);
  EXPECT_EQ(rng(), first);
}

TEST(ZipfSampler, RankZeroMostPopular) {
  Rng rng(21);
  ZipfSampler zipf(7, 1.0);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[3]);
  EXPECT_GT(counts[0], counts[6]);
  // All ranks in range.
  for (const auto& [rank, c] : counts) EXPECT_LT(rank, 7u);
}

TEST(ZipfSampler, AlphaZeroIsUniform) {
  Rng rng(23);
  ZipfSampler zipf(4, 0.0);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  for (const auto& [rank, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c), 5000.0, 500.0) << rank;
  }
}

TEST(ZipfSampler, HighAlphaConcentrates) {
  Rng rng(29);
  ZipfSampler zipf(10, 3.0);
  int rankZero = 0;
  for (int i = 0; i < 1000; ++i) rankZero += zipf.sample(rng) == 0 ? 1 : 0;
  EXPECT_GT(rankZero, 700);
}

TEST(ZipfSampler, SingleElement) {
  Rng rng(31);
  ZipfSampler zipf(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

}  // namespace
}  // namespace pleroma::util
