#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <unordered_set>

#include "core/pleroma.hpp"

namespace pleroma::obs {
namespace {

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  const SpanId s = t.begin(1, kNoSpan, "op", 0);
  EXPECT_EQ(s, kNoSpan);
  t.end(s, 10);
  EXPECT_EQ(t.instant(1, kNoSpan, "i", 5), kNoSpan);
  t.annotate(s, "k", "v");
  EXPECT_TRUE(t.records().empty());
}

TEST(Tracer, SpanTreeLinksParentsAndTraceIds) {
  Tracer t;
  t.setEnabled(true);
  const std::uint64_t trace = t.newTraceId();
  const SpanId root = t.begin(trace, kNoSpan, "root", 100, 3);
  const SpanId child = t.begin(trace, root, "hop", 110, 4);
  const SpanId leaf = t.instant(trace, child, "deliver", 120, 5);
  t.annotate(leaf, "false_positive", "false");
  t.end(child, 130);
  t.end(root, 140);

  ASSERT_EQ(t.records().size(), 3u);
  const TraceRecord& r0 = t.records()[0];
  const TraceRecord& r1 = t.records()[1];
  const TraceRecord& r2 = t.records()[2];
  EXPECT_EQ(r0.name, "root");
  EXPECT_EQ(r0.parent, kNoSpan);
  EXPECT_EQ(r0.start, 100);
  EXPECT_EQ(r0.end, 140);
  EXPECT_EQ(r0.node, 3);
  EXPECT_FALSE(r0.isInstant());
  EXPECT_EQ(r1.parent, root);
  EXPECT_EQ(r2.parent, child);
  EXPECT_TRUE(r2.isInstant());
  ASSERT_EQ(r2.args.size(), 1u);
  EXPECT_EQ(r2.args[0].first, "false_positive");
  for (const TraceRecord& r : t.records()) EXPECT_EQ(r.traceId, trace);
  EXPECT_EQ(t.traceIdOf(child), trace);
  EXPECT_EQ(t.traceIdOf(999999), 0u);
}

TEST(Tracer, ContextStackProvidesAmbientParent) {
  Tracer t;
  t.setEnabled(true);
  EXPECT_EQ(t.currentContext(), kNoSpan);
  const SpanId op = t.begin(t.newTraceId(), kNoSpan, "op", 0);
  t.pushContext(op);
  EXPECT_EQ(t.currentContext(), op);
  const SpanId inner = t.begin(t.traceIdOf(op), t.currentContext(), "mod", 1);
  t.popContext();
  EXPECT_EQ(t.currentContext(), kNoSpan);
  t.popContext();  // empty pop is harmless
  ASSERT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.records()[1].parent, op);
  (void)inner;
}

TEST(Tracer, CapacityEvictsOldestAndCountsDrops) {
  Tracer t;
  t.setEnabled(true);
  t.setCapacity(4);
  const std::uint64_t trace = t.newTraceId();
  for (int i = 0; i < 10; ++i) t.instant(trace, kNoSpan, "e", i);
  EXPECT_EQ(t.records().size(), 4u);
  EXPECT_EQ(t.droppedRecords(), 6u);
  // Survivors are the newest records.
  EXPECT_EQ(t.records().front().start, 6);
  EXPECT_EQ(t.records().back().start, 9);
}

TEST(Tracer, ClearDropsRecordsAndContext) {
  Tracer t;
  t.setEnabled(true);
  const SpanId s = t.begin(t.newTraceId(), kNoSpan, "op", 0);
  t.pushContext(s);
  t.clear();
  EXPECT_TRUE(t.records().empty());
  EXPECT_EQ(t.currentContext(), kNoSpan);
}

TEST(Tracer, JsonlExportParsesLineByLine) {
  Tracer t;
  t.setEnabled(true);
  const std::uint64_t trace = t.newTraceId();
  const SpanId root = t.begin(trace, kNoSpan, "root", 10, 1);
  t.annotate(root, "key", "va\"lue");  // escaping must survive
  t.instant(trace, root, "leaf", 20, 2);
  t.end(root, 30);

  std::istringstream lines(t.toJsonl());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::string err;
    const auto doc = JsonValue::parse(line, &err);
    ASSERT_TRUE(doc.has_value()) << err << " in: " << line;
    EXPECT_TRUE(doc->contains("id"));
    EXPECT_TRUE(doc->contains("name"));
    ++parsed;
  }
  EXPECT_EQ(parsed, 2);
}

TEST(Tracer, ChromeTraceExportHasCompleteAndInstantEvents) {
  Tracer t;
  t.setEnabled(true);
  const std::uint64_t trace = t.newTraceId();
  const SpanId root = t.begin(trace, kNoSpan, "root", 1000, 1);
  t.instant(trace, root, "leaf", 1500, 2);
  t.end(root, 2000);

  std::string err;
  const auto doc = JsonValue::parse(t.toChromeTrace(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const JsonValue* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());
  ASSERT_EQ(events->items().size(), 2u);
  std::set<std::string> phases;
  for (const JsonValue& ev : events->items()) {
    ASSERT_TRUE(ev.contains("ph"));
    // ts is microseconds; the span linkage rides in args.
    EXPECT_TRUE(ev.contains("ts"));
    EXPECT_TRUE(ev.get("args")->contains("span"));
    phases.insert(ev.get("ph")->asString());
  }
  EXPECT_EQ(phases, (std::set<std::string>{"X", "i"}));
  const JsonValue& complete = events->items()[0];
  EXPECT_EQ(complete.get("ph")->asString(), "X");
  EXPECT_DOUBLE_EQ(complete.get("ts")->asDouble(), 1.0);
  EXPECT_DOUBLE_EQ(complete.get("dur")->asDouble(), 1.0);
}

// One publish through the full middleware produces a single connected span
// tree: a "publish" root, per-hop spans parented through Packet::traceSpan,
// and an "app_deliver" instant per delivery — all under the event's trace id.
TEST(Tracer, PublishProducesConnectedSpanTree) {
  core::PleromaOptions o;
  o.numAttributes = 2;
  core::Pleroma p(net::Topology::testbedFatTree(), o);
  p.tracer().setEnabled(true);
  const auto hosts = p.topology().hosts();

  dz::Rectangle all{{dz::Range{0, 1023}, dz::Range{0, 1023}}};
  p.advertise(hosts[0], all);
  p.subscribe(hosts[5], all);
  p.tracer().clear();  // keep only the publish's data-plane trace

  const net::EventId id = p.publish(hosts[0], {100, 100});
  p.settle();

  std::unordered_set<SpanId> ids;
  int publishRoots = 0;
  int delivers = 0;
  for (const TraceRecord& r : p.tracer().records()) {
    if (r.traceId != id) continue;
    ids.insert(r.id);
    if (r.name == "publish") {
      ++publishRoots;
      EXPECT_EQ(r.parent, kNoSpan);
    }
    if (r.name == "app_deliver") ++delivers;
  }
  EXPECT_EQ(publishRoots, 1);
  EXPECT_EQ(delivers, 1);
  // Connectivity: every non-root record's parent is another record of the
  // same trace (nothing dangles; the tree is rooted at the publish).
  for (const TraceRecord& r : p.tracer().records()) {
    if (r.traceId != id || r.parent == kNoSpan) continue;
    EXPECT_TRUE(ids.count(r.parent) == 1)
        << r.name << " has unknown parent " << r.parent;
  }
  EXPECT_GT(ids.size(), 2u);  // root + at least one hop + delivery
}

}  // namespace
}  // namespace pleroma::obs
