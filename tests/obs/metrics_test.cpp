#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pleroma::obs {
namespace {

// ---- Histogram bucket geometry --------------------------------------------

TEST(Histogram, BucketZeroAbsorbsSubUnitAndNonPositive) {
  EXPECT_EQ(Histogram::bucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::bucketIndex(-5.0), 0);
  EXPECT_EQ(Histogram::bucketIndex(0.999), 0);
  EXPECT_EQ(Histogram::bucketIndex(std::nan("")), 0);
  EXPECT_EQ(Histogram::bucketLowerBound(0), 0.0);
  EXPECT_EQ(Histogram::bucketUpperBound(0), 1.0);
}

TEST(Histogram, BucketBoundsBracketTheValue) {
  for (double v : {1.0, 1.5, 2.0, 3.0, 7.9, 100.0, 1e6, 1e12}) {
    const int i = Histogram::bucketIndex(v);
    EXPECT_LE(Histogram::bucketLowerBound(i), v) << "v=" << v;
    EXPECT_LT(v, Histogram::bucketUpperBound(i)) << "v=" << v;
  }
}

TEST(Histogram, BucketIndexIsMonotonicAndContiguous) {
  // Each bucket's upper bound is the next bucket's lower bound, so the
  // geometric grid tiles [1, inf) with no gaps.
  for (int i = 1; i < 64; ++i) {
    EXPECT_EQ(Histogram::bucketUpperBound(i), Histogram::bucketLowerBound(i + 1));
    EXPECT_LT(Histogram::bucketLowerBound(i), Histogram::bucketLowerBound(i + 1));
  }
  // Powers of two start a new octave at the first sub-bucket.
  EXPECT_EQ(Histogram::bucketIndex(1.0), 1);
  EXPECT_EQ(Histogram::bucketIndex(2.0), 1 + Histogram::kSubBuckets);
  EXPECT_EQ(Histogram::bucketIndex(4.0), 1 + 2 * Histogram::kSubBuckets);
}

TEST(Histogram, RelativeResolutionWithinOneSubBucket) {
  // ~12% relative resolution: bucket width / lower bound == 1/kSubBuckets.
  for (double v : {1.0, 3.0, 10.0, 1000.0}) {
    const int i = Histogram::bucketIndex(v);
    const double lo = Histogram::bucketLowerBound(i);
    const double hi = Histogram::bucketUpperBound(i);
    EXPECT_LE((hi - lo) / lo, 1.0 / Histogram::kSubBuckets + 1e-12);
  }
}

// ---- Histogram recording / percentiles ------------------------------------

TEST(Histogram, EmptyHistogramReportsZeros) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t.empty");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, PercentilesApproximateNearestRank) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t.lat");
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 1000.0);
  // Log-bucketed estimates answer with a bucket upper bound, so allow the
  // grid's ~12% relative error.
  EXPECT_NEAR(h.percentile(0.50), 500.0, 500.0 / Histogram::kSubBuckets);
  EXPECT_NEAR(h.percentile(0.90), 900.0, 900.0 / Histogram::kSubBuckets);
  EXPECT_NEAR(h.percentile(0.99), 990.0, 990.0 / Histogram::kSubBuckets);
  // Estimates never escape the observed range.
  EXPECT_GE(h.percentile(0.0), h.min());
  EXPECT_LE(h.percentile(1.0), h.max());
}

TEST(Histogram, SingleValuePercentilesClampToObservation) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("t.one");
  h.record(42.0);
  EXPECT_EQ(h.percentile(0.0), 42.0);
  EXPECT_EQ(h.percentile(0.5), 42.0);
  EXPECT_EQ(h.percentile(1.0), 42.0);
}

TEST(Histogram, MergeAddsBucketwise) {
  MetricsRegistry a, b;
  Histogram& ha = a.histogram("t.h");
  Histogram& hb = b.histogram("t.h");
  for (double v : {1.0, 2.0, 3.0}) ha.record(v);
  for (double v : {100.0, 200.0}) hb.record(v);
  ha.merge(hb);
  EXPECT_EQ(ha.count(), 5u);
  EXPECT_DOUBLE_EQ(ha.sum(), 306.0);
  EXPECT_EQ(ha.min(), 1.0);
  EXPECT_EQ(ha.max(), 200.0);
}

TEST(Histogram, MergeWithEmptySidePreservesExtrema) {
  MetricsRegistry a, b;
  Histogram& full = a.histogram("t.h");
  full.record(5.0);
  full.record(9.0);
  full.merge(b.histogram("t.h"));  // empty other: no-op
  EXPECT_EQ(full.count(), 2u);
  EXPECT_EQ(full.min(), 5.0);
  EXPECT_EQ(full.max(), 9.0);

  Histogram& empty = b.histogram("t.h2");
  empty.merge(full);  // empty self adopts other's extrema
  EXPECT_EQ(empty.min(), 5.0);
  EXPECT_EQ(empty.max(), 9.0);
}

// ---- Counters / gauges / family gating ------------------------------------

TEST(MetricsRegistry, CounterHandlesAreStableAndAccumulate) {
  MetricsRegistry reg;
  Counter& c = reg.counter("ctrl.flow_mods");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(&reg.counter("ctrl.flow_mods"), &c);
}

TEST(MetricsRegistry, FamilyDisableStopsAllUpdatesInFamily) {
  MetricsRegistry reg;
  Counter& c = reg.counter("flow_table.lookups");
  Gauge& g = reg.gauge("flow_table.size");
  Histogram& h = reg.histogram("flow_table.probes");
  reg.setFamilyEnabled("flow_table", false);
  c.inc();
  g.set(7.0);
  h.record(3.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_FALSE(reg.familyEnabled("flow_table"));

  reg.setFamilyEnabled("flow_table", true);
  c.inc();
  g.add(2.5);
  h.record(3.0);
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(g.value(), 2.5);
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsRegistry, FamilyOfSplitsAtFirstDot) {
  EXPECT_EQ(MetricsRegistry::familyOf("flow_table.lookups"), "flow_table");
  EXPECT_EQ(MetricsRegistry::familyOf("a.b.c"), "a");
  EXPECT_EQ(MetricsRegistry::familyOf("bare"), "bare");
}

TEST(MetricsRegistry, FamilyEnabledFlagMirrorsSetFamilyEnabled) {
  MetricsRegistry reg;
  const std::atomic<bool>* flag = reg.familyEnabledFlag("sim");
  ASSERT_NE(flag, nullptr);
  EXPECT_TRUE(flag->load());
  reg.setFamilyEnabled("sim", false);
  EXPECT_FALSE(flag->load());
  // Same flag instance shared with metrics registered later in the family.
  EXPECT_EQ(reg.familyEnabledFlag("sim"), flag);
  Counter& c = reg.counter("sim.events");
  c.inc();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsRegistry, SetAllFamiliesEnabled) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.n");
  Counter& b = reg.counter("y.n");
  reg.setAllFamiliesEnabled(false);
  a.inc();
  b.inc();
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 0u);
  reg.setAllFamiliesEnabled(true);
  a.inc();
  b.inc();
  EXPECT_EQ(a.value(), 1u);
  EXPECT_EQ(b.value(), 1u);
}

// ---- Registry merge / snapshot --------------------------------------------

TEST(MetricsRegistry, MergeCombinesAllKinds) {
  MetricsRegistry a, b;
  a.counter("c.n").inc(2);
  b.counter("c.n").inc(3);
  b.counter("c.only_b").inc(7);
  a.gauge("g.v").set(1.5);
  b.gauge("g.v").set(2.0);
  a.histogram("h.lat").record(10.0);
  b.histogram("h.lat").record(30.0);

  a.merge(b);
  EXPECT_EQ(a.counter("c.n").value(), 5u);
  EXPECT_EQ(a.counter("c.only_b").value(), 7u);  // created on demand
  EXPECT_DOUBLE_EQ(a.gauge("g.v").value(), 3.5);  // gauges add on merge
  EXPECT_EQ(a.histogram("h.lat").count(), 2u);
  EXPECT_EQ(a.histogram("h.lat").min(), 10.0);
  EXPECT_EQ(a.histogram("h.lat").max(), 30.0);
}

TEST(MetricsRegistry, ResetZeroesValuesKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("r.n");
  c.inc(9);
  reg.histogram("r.h").record(4.0);
  reg.setFamilyEnabled("r", true);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.histogram("r.h").count(), 0u);
  EXPECT_EQ(&reg.counter("r.n"), &c);  // handle survived
}

TEST(MetricsRegistry, ToJsonShape) {
  MetricsRegistry reg;
  reg.counter("a.n").inc(3);
  reg.gauge("a.g").set(0.5);
  reg.histogram("a.h").record(2.0);
  const JsonValue doc = reg.toJson();
  ASSERT_TRUE(doc.isObject());
  const JsonValue* counters = doc.get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->get("a.n")->asInt(), 3);
  EXPECT_DOUBLE_EQ(doc.get("gauges")->get("a.g")->asDouble(), 0.5);
  const JsonValue* h = doc.get("histograms")->get("a.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->get("count")->asInt(), 1);
  EXPECT_DOUBLE_EQ(h->get("mean")->asDouble(), 2.0);
  for (const char* key : {"sum", "min", "max", "p50", "p90", "p99"}) {
    EXPECT_TRUE(h->contains(key)) << key;
  }
}

TEST(MetricsRegistry, ToTextListsEveryMetric) {
  MetricsRegistry reg;
  reg.counter("t.n").inc();
  reg.gauge("t.g").set(1.0);
  reg.histogram("t.h").record(5.0);
  const std::string text = reg.toText();
  EXPECT_NE(text.find("t.n 1"), std::string::npos);
  EXPECT_NE(text.find("t.g"), std::string::npos);
  EXPECT_NE(text.find("t.h count=1"), std::string::npos);
}

}  // namespace
}  // namespace pleroma::obs
