#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace pleroma::obs {
namespace {

// Routes BENCH_*.json output into the test's temp dir for the test's
// lifetime (finish() and the reporter destructor both honour it).
struct BenchDirGuard {
  BenchDirGuard() { ::setenv("PLEROMA_BENCH_DIR", ::testing::TempDir().c_str(), 1); }
  ~BenchDirGuard() { ::unsetenv("PLEROMA_BENCH_DIR"); }
};

void setRequiredMeta(BenchReporter& r) {
  r.meta("seed", 42);
  r.meta("topology", "testbed_fat_tree");
  r.meta("workload", "unit_test");
}

TEST(Cell, TextRenderingMatchesTsvConventions) {
  EXPECT_EQ(Cell(12).text, "12");
  EXPECT_EQ(Cell(12).json.asInt(), 12);
  EXPECT_EQ(Cell(3.5).text, "3.5");  // double renders via %g
  EXPECT_EQ(Cell("abc").text, "abc");
  EXPECT_EQ(Cell(true).text, "true");
  EXPECT_EQ(Cell(std::uint64_t{18446744073709551615ULL}).text,
            "18446744073709551615");
  const Cell custom(JsonValue(1.23456), "1.23");
  EXPECT_EQ(custom.text, "1.23");
  EXPECT_DOUBLE_EQ(custom.json.asDouble(), 1.23456);
}

TEST(BenchReporter, ToJsonCarriesSchemaNameMetadataSeries) {
  BenchDirGuard guard;
  BenchReporter r("unit_shape");
  setRequiredMeta(r);
  r.beginSeries("latency", {{"flows", "entries"}, {"delay", "ms"}});
  r.row({1000, Cell(JsonValue(2.5), "2.50")});
  r.row({2000, Cell(JsonValue(2.7), "2.70")});

  const JsonValue doc = r.toJson();
  EXPECT_EQ(doc.get("schema")->asString(), kBenchSchema);
  EXPECT_EQ(doc.get("name")->asString(), "unit_shape");
  EXPECT_EQ(doc.get("metadata")->get("seed")->asInt(), 42);
  EXPECT_TRUE(doc.get("metadata")->contains("git_describe"));  // defaulted
  EXPECT_EQ(doc.get("metadata")->get("threads")->asInt(), 1);  // defaulted
  EXPECT_TRUE(doc.get("metadata")->contains("hardware_concurrency"));
  const JsonValue& series = *doc.get("series");
  ASSERT_EQ(series.items().size(), 1u);
  const JsonValue& s = series.items()[0];
  EXPECT_EQ(s.get("name")->asString(), "latency");
  EXPECT_EQ(s.get("columns")->items().size(), 2u);
  ASSERT_EQ(s.get("rows")->items().size(), 2u);
  EXPECT_EQ(s.get("rows")->items()[0].items()[0].asInt(), 1000);
  EXPECT_DOUBLE_EQ(s.get("rows")->items()[1].items()[1].asDouble(), 2.7);

  std::string err;
  EXPECT_TRUE(BenchReporter::validate(doc, &err)) << err;
  EXPECT_TRUE(r.finish());
}

TEST(BenchReporter, RowWidthMismatchThrows) {
  BenchDirGuard guard;
  BenchReporter r("unit_width");
  setRequiredMeta(r);
  r.beginSeries("s", {{"a", ""}, {"b", ""}});
  EXPECT_THROW(r.row({1}), std::logic_error);
  EXPECT_THROW(r.row({1, 2, 3}), std::logic_error);
  r.row({1, 2});  // correct width still works

  BenchReporter fresh("unit_noseries");
  setRequiredMeta(fresh);
  EXPECT_THROW(fresh.row({1}), std::logic_error);  // row before beginSeries
}

TEST(BenchReporter, FinishWritesValidatableFile) {
  BenchDirGuard guard;
  MetricsRegistry reg;
  reg.counter("sim.events").inc(17);
  std::string path;
  {
    BenchReporter r("unit_file");
    setRequiredMeta(r);
    r.beginSeries("s", {{"x", ""}});
    r.row({5});
    r.attachMetrics(reg);
    path = r.outputPath();
    EXPECT_NE(path.find("BENCH_unit_file.json"), std::string::npos);
    EXPECT_TRUE(r.finish());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  std::string err;
  const auto doc = JsonValue::parse(text.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_TRUE(BenchReporter::validate(*doc, &err)) << err;
  EXPECT_EQ(doc->get("metrics")->get("counters")->get("sim.events")->asInt(), 17);
}

TEST(BenchReporter, DestructorWritesWhenFinishWasNotCalled) {
  BenchDirGuard guard;
  std::string path;
  {
    BenchReporter r("unit_dtor");
    setRequiredMeta(r);
    path = r.outputPath();
  }
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
}

TEST(BenchReporter, ValidateRejectsBrokenDocuments) {
  std::string err;
  EXPECT_FALSE(BenchReporter::validate(JsonValue(3), &err));

  JsonValue doc = JsonValue::object();
  doc.set("schema", "wrong-schema");
  EXPECT_FALSE(BenchReporter::validate(doc, &err));
  EXPECT_NE(err.find("schema"), std::string::npos);

  doc.set("schema", kBenchSchema);
  doc.set("name", "x");
  JsonValue meta = JsonValue::object();
  meta.set("seed", 1);
  meta.set("topology", "t");
  meta.set("workload", "w");
  doc.set("metadata", meta);
  doc.set("series", JsonValue::array());
  EXPECT_FALSE(BenchReporter::validate(doc, &err));  // missing git_describe
  EXPECT_NE(err.find("git_describe"), std::string::npos);

  meta.set("git_describe", "abc123");
  doc.set("metadata", meta);
  EXPECT_FALSE(BenchReporter::validate(doc, &err));  // missing threads
  EXPECT_NE(err.find("threads"), std::string::npos);

  meta.set("threads", 4);
  meta.set("hardware_concurrency", 8);
  doc.set("metadata", meta);
  EXPECT_TRUE(BenchReporter::validate(doc, &err)) << err;

  // A series row narrower than its columns fails.
  JsonValue col = JsonValue::object();
  col.set("name", "a");
  col.set("unit", "");
  JsonValue series = JsonValue::object();
  series.set("name", "s");
  JsonValue cols = JsonValue::array();
  cols.push_back(col);
  series.set("columns", cols);
  JsonValue rows = JsonValue::array();
  rows.push_back(JsonValue::array());  // zero cells for one column
  series.set("rows", rows);
  JsonValue list = JsonValue::array();
  list.push_back(series);
  doc.set("series", list);
  EXPECT_FALSE(BenchReporter::validate(doc, &err));
  EXPECT_NE(err.find("cells"), std::string::npos);
}

}  // namespace
}  // namespace pleroma::obs
