#include "openflow/lldp.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace pleroma::openflow {
namespace {

// Three partitions in a line of 6 switches: {R1,R2} {R3,R4} {R5,R6}.
struct ThreePartitionLine : ::testing::Test {
  ThreePartitionLine() : topo(net::Topology::line(6)) {
    partitionOf.assign(static_cast<std::size_t>(topo.nodeCount()), -1);
    const auto sw = topo.switches();
    for (std::size_t i = 0; i < sw.size(); ++i) {
      partitionOf[static_cast<std::size_t>(sw[i])] = static_cast<PartitionId>(i / 2);
    }
  }
  net::Topology topo;
  std::vector<PartitionId> partitionOf;
};

TEST_F(ThreePartitionLine, SwitchesAssigned) {
  const auto results = discoverPartitions(topo, partitionOf);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].switches.size(), 2u);
  EXPECT_EQ(results[1].switches.size(), 2u);
  EXPECT_EQ(results[2].switches.size(), 2u);
}

TEST_F(ThreePartitionLine, HostsFollowAccessSwitch) {
  const auto results = discoverPartitions(topo, partitionOf);
  EXPECT_EQ(results[0].hosts.size(), 2u);
  EXPECT_EQ(results[1].hosts.size(), 2u);
  EXPECT_EQ(results[2].hosts.size(), 2u);
}

TEST_F(ThreePartitionLine, InternalLinksStayInside) {
  const auto results = discoverPartitions(topo, partitionOf);
  // Each partition has exactly one internal switch-switch link.
  for (const auto& r : results) {
    EXPECT_EQ(r.internalLinks.size(), 1u) << r.partition;
    for (const net::LinkId l : r.internalLinks) {
      const net::Link& link = topo.link(l);
      EXPECT_EQ(partitionOf[static_cast<std::size_t>(link.a.node)], r.partition);
      EXPECT_EQ(partitionOf[static_cast<std::size_t>(link.b.node)], r.partition);
    }
  }
}

TEST_F(ThreePartitionLine, BorderPortsSymmetric) {
  const auto results = discoverPartitions(topo, partitionOf);
  // Middle partition borders both neighbours; outer ones border only it.
  EXPECT_EQ(results[0].borderPorts.size(), 1u);
  EXPECT_EQ(results[1].borderPorts.size(), 2u);
  EXPECT_EQ(results[2].borderPorts.size(), 1u);
  EXPECT_EQ(results[0].borderPorts[0].neighborPartition, 1);
  EXPECT_EQ(results[2].borderPorts[0].neighborPartition, 1);

  // A border port belongs to a switch of its own partition and its link
  // leads into the named neighbour.
  for (const auto& r : results) {
    for (const BorderPort& bp : r.borderPorts) {
      EXPECT_EQ(partitionOf[static_cast<std::size_t>(bp.switchNode)], r.partition);
      const net::LinkEnd peer = topo.peer(bp.switchNode, bp.port);
      EXPECT_EQ(partitionOf[static_cast<std::size_t>(peer.node)],
                bp.neighborPartition);
    }
  }
}

TEST(Lldp, SinglePartitionHasNoBorders) {
  const net::Topology topo = net::Topology::testbedFatTree();
  std::vector<PartitionId> partitionOf(static_cast<std::size_t>(topo.nodeCount()), 0);
  const auto results = discoverPartitions(topo, partitionOf);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].borderPorts.empty());
  EXPECT_EQ(results[0].switches.size(), 10u);
  // All 12 switch-switch links are internal.
  EXPECT_EQ(results[0].internalLinks.size(), 12u);
}

TEST(Lldp, RingPartitioning) {
  const net::Topology topo = net::Topology::ring(8);
  std::vector<PartitionId> partitionOf(static_cast<std::size_t>(topo.nodeCount()), 0);
  const auto sw = topo.switches();
  for (std::size_t i = 0; i < sw.size(); ++i) {
    partitionOf[static_cast<std::size_t>(sw[i])] =
        static_cast<PartitionId>(i / 2);  // 4 partitions of 2
  }
  const auto results = discoverPartitions(topo, partitionOf);
  ASSERT_EQ(results.size(), 4u);
  // On a ring every partition has exactly two neighbours.
  for (const auto& r : results) {
    EXPECT_EQ(r.borderPorts.size(), 2u) << r.partition;
  }
}

TEST(Lldp, DiscoverSinglePartitionConvenience) {
  const net::Topology topo = net::Topology::line(4);
  std::vector<PartitionId> partitionOf(static_cast<std::size_t>(topo.nodeCount()), 0);
  const auto sw = topo.switches();
  partitionOf[static_cast<std::size_t>(sw[2])] = 1;
  partitionOf[static_cast<std::size_t>(sw[3])] = 1;
  const DiscoveryResult r = discoverPartition(topo, partitionOf, 1);
  EXPECT_EQ(r.partition, 1);
  EXPECT_EQ(r.switches.size(), 2u);
  ASSERT_EQ(r.borderPorts.size(), 1u);
  EXPECT_EQ(r.borderPorts[0].neighborPartition, 0);
}

}  // namespace
}  // namespace pleroma::openflow
