#include "openflow/control_channel.hpp"

#include <gtest/gtest.h>

namespace pleroma::openflow {
namespace {

dz::DzExpression dz(std::string_view s) { return *dz::DzExpression::fromString(s); }

net::FlowEntry entry(std::string_view dzStr, net::PortId port) {
  net::FlowEntry e;
  const auto d = dz(dzStr);
  e.match = dz::dzToPrefix(d);
  e.priority = d.length();
  e.actions.push_back(net::FlowAction{port, std::nullopt});
  return e;
}

struct ChannelFixture : ::testing::Test {
  ChannelFixture()
      : topo(net::Topology::line(2)),
        net_(topo, sim, {}),
        channel(net_, 2 * net::kMillisecond) {
    sw = topo.switches()[0];
  }
  net::Topology topo;
  net::Simulator sim;
  net::Network net_;
  ControlChannel channel;
  net::NodeId sw;
};

TEST_F(ChannelFixture, AddInstallsFlow) {
  EXPECT_TRUE(channel.send({FlowModType::kAdd, sw, entry("10", 2)}));
  EXPECT_EQ(net_.flowTable(sw).size(), 1u);
  EXPECT_EQ(channel.stats().flowAdds, 1u);
  EXPECT_EQ(channel.stats().flowModsSent, 1u);
}

TEST_F(ChannelFixture, ModifyRequiresExisting) {
  EXPECT_FALSE(channel.send({FlowModType::kModify, sw, entry("10", 2)}));
  EXPECT_TRUE(channel.send({FlowModType::kAdd, sw, entry("10", 2)}));
  net::FlowEntry updated = entry("10", 2);
  updated.addOutPort(3);
  EXPECT_TRUE(channel.send({FlowModType::kModify, sw, updated}));
  EXPECT_EQ(net_.flowTable(sw).find(updated.match)->outPorts(),
            (std::vector<net::PortId>{2, 3}));
}

TEST_F(ChannelFixture, DeleteRemoves) {
  channel.send({FlowModType::kAdd, sw, entry("10", 2)});
  EXPECT_TRUE(channel.send({FlowModType::kDelete, sw, entry("10", 2)}));
  EXPECT_FALSE(channel.send({FlowModType::kDelete, sw, entry("10", 2)}));
  EXPECT_TRUE(net_.flowTable(sw).empty());
  EXPECT_EQ(channel.stats().flowDeletes, 2u);
}

TEST_F(ChannelFixture, ModeledInstallTimeAccumulates) {
  channel.send({FlowModType::kAdd, sw, entry("0", 1)});
  channel.send({FlowModType::kAdd, sw, entry("1", 1)});
  EXPECT_EQ(channel.modeledInstallTime(), 4 * net::kMillisecond);
  channel.resetModeledInstallTime();
  EXPECT_EQ(channel.modeledInstallTime(), 0);
}

TEST_F(ChannelFixture, FlowsOfReadsSwitchTable) {
  channel.send({FlowModType::kAdd, sw, entry("0", 1)});
  EXPECT_EQ(channel.flowsOf(sw).size(), 1u);
}

TEST_F(ChannelFixture, PacketOutTransmits) {
  net::Packet p;
  p.dst = dz::kControlAddress;
  int punted = 0;
  net_.setPacketInHandler([&](net::NodeId, net::PortId, const net::Packet&) {
    ++punted;
  });
  // Push out of sw's port 1 (towards the other switch); the peer punts it.
  channel.sendPacketOut({sw, 1, p});
  sim.run();
  EXPECT_EQ(punted, 1);
  EXPECT_EQ(channel.stats().packetOuts, 1u);
}

TEST_F(ChannelFixture, AsyncInstallAppliesAfterLatency) {
  channel.enableAsyncInstall();
  EXPECT_TRUE(channel.send({FlowModType::kAdd, sw, entry("10", 2)}));
  // Not yet applied.
  EXPECT_TRUE(net_.flowTable(sw).empty());
  sim.runUntil(1 * net::kMillisecond);
  EXPECT_TRUE(net_.flowTable(sw).empty());
  sim.runUntil(2 * net::kMillisecond);  // flowModLatency is 2 ms here
  EXPECT_EQ(net_.flowTable(sw).size(), 1u);
}

TEST_F(ChannelFixture, AsyncInstallPreservesSendOrder) {
  channel.enableAsyncInstall();
  // Add then delete the same entry in one burst: after settling the entry
  // must be gone (delete applied last), taking 2 x latency sequentially.
  channel.send({FlowModType::kAdd, sw, entry("10", 2)});
  channel.send({FlowModType::kDelete, sw, entry("10", 2)});
  sim.runUntil(3 * net::kMillisecond);
  EXPECT_EQ(net_.flowTable(sw).size(), 1u);  // add applied, delete pending
  sim.run();
  EXPECT_TRUE(net_.flowTable(sw).empty());
}

TEST_F(ChannelFixture, AsyncBurstsSerialise) {
  channel.enableAsyncInstall();
  for (int i = 0; i < 5; ++i) {
    channel.send({FlowModType::kAdd, sw,
                  entry(std::string(static_cast<std::size_t>(i + 1), '1'), 2)});
  }
  // Mods apply one per 2 ms, back to back.
  sim.runUntil(6 * net::kMillisecond);
  EXPECT_EQ(net_.flowTable(sw).size(), 3u);
  sim.run();
  EXPECT_EQ(net_.flowTable(sw).size(), 5u);
}

TEST_F(ChannelFixture, AddRejectedWhenTableFull) {
  net::NetworkConfig cfg;
  cfg.flowTableCapacity = 1;
  net::Simulator sim2;
  net::Network small(topo, sim2, cfg);
  ControlChannel ch(small);
  EXPECT_TRUE(ch.send({FlowModType::kAdd, sw, entry("0", 1)}));
  EXPECT_FALSE(ch.send({FlowModType::kAdd, sw, entry("1", 1)}));
}

}  // namespace
}  // namespace pleroma::openflow
