#include "openflow/control_channel.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace pleroma::openflow {
namespace {

dz::DzExpression dz(std::string_view s) { return *dz::DzExpression::fromString(s); }

net::FlowEntry entry(std::string_view dzStr, net::PortId port) {
  net::FlowEntry e;
  const auto d = dz(dzStr);
  e.match = dz::dzToPrefix(d);
  e.priority = d.length();
  e.actions.push_back(net::FlowAction{port, std::nullopt});
  return e;
}

struct ChannelFixture : ::testing::Test {
  ChannelFixture()
      : topo(net::Topology::line(2)),
        net_(topo, sim, {}),
        channel(net_, 2 * net::kMillisecond) {
    sw = topo.switches()[0];
  }
  net::Topology topo;
  net::Simulator sim;
  net::Network net_;
  ControlChannel channel;
  net::NodeId sw;
};

TEST_F(ChannelFixture, AddInstallsFlow) {
  EXPECT_TRUE(channel.send({FlowModType::kAdd, sw, entry("10", 2)}));
  EXPECT_EQ(net_.flowTable(sw).size(), 1u);
  EXPECT_EQ(channel.stats().flowAdds, 1u);
  EXPECT_EQ(channel.stats().flowModsSent, 1u);
}

TEST_F(ChannelFixture, ModifyRequiresExisting) {
  EXPECT_FALSE(channel.send({FlowModType::kModify, sw, entry("10", 2)}));
  EXPECT_TRUE(channel.send({FlowModType::kAdd, sw, entry("10", 2)}));
  net::FlowEntry updated = entry("10", 2);
  updated.addOutPort(3);
  EXPECT_TRUE(channel.send({FlowModType::kModify, sw, updated}));
  EXPECT_EQ(net_.flowTable(sw).find(updated.match)->outPorts(),
            (std::vector<net::PortId>{2, 3}));
}

TEST_F(ChannelFixture, DeleteRemoves) {
  channel.send({FlowModType::kAdd, sw, entry("10", 2)});
  EXPECT_TRUE(channel.send({FlowModType::kDelete, sw, entry("10", 2)}));
  EXPECT_FALSE(channel.send({FlowModType::kDelete, sw, entry("10", 2)}));
  EXPECT_TRUE(net_.flowTable(sw).empty());
  EXPECT_EQ(channel.stats().flowDeletes, 2u);
}

TEST_F(ChannelFixture, ModeledInstallTimeAccumulates) {
  channel.send({FlowModType::kAdd, sw, entry("0", 1)});
  channel.send({FlowModType::kAdd, sw, entry("1", 1)});
  EXPECT_EQ(channel.modeledInstallTime(), 4 * net::kMillisecond);
  channel.resetModeledInstallTime();
  EXPECT_EQ(channel.modeledInstallTime(), 0);
}

TEST_F(ChannelFixture, FlowsOfReadsSwitchTable) {
  channel.send({FlowModType::kAdd, sw, entry("0", 1)});
  EXPECT_EQ(channel.flowsOf(sw).size(), 1u);
}

TEST_F(ChannelFixture, PacketOutTransmits) {
  net::Packet p;
  p.dst = dz::kControlAddress;
  int punted = 0;
  net_.setPacketInHandler([&](net::NodeId, net::PortId, const net::Packet&) {
    ++punted;
  });
  // Push out of sw's port 1 (towards the other switch); the peer punts it.
  channel.sendPacketOut({sw, 1, p});
  sim.run();
  EXPECT_EQ(punted, 1);
  EXPECT_EQ(channel.stats().packetOuts, 1u);
}

TEST_F(ChannelFixture, AsyncInstallAppliesAfterLatency) {
  channel.enableAsyncInstall();
  EXPECT_TRUE(channel.send({FlowModType::kAdd, sw, entry("10", 2)}));
  // Not yet applied.
  EXPECT_TRUE(net_.flowTable(sw).empty());
  sim.runUntil(1 * net::kMillisecond);
  EXPECT_TRUE(net_.flowTable(sw).empty());
  sim.runUntil(2 * net::kMillisecond);  // flowModLatency is 2 ms here
  EXPECT_EQ(net_.flowTable(sw).size(), 1u);
}

TEST_F(ChannelFixture, AsyncInstallPreservesSendOrder) {
  channel.enableAsyncInstall();
  // Add then delete the same entry in one burst: after settling the entry
  // must be gone (delete applied last), taking 2 x latency sequentially.
  channel.send({FlowModType::kAdd, sw, entry("10", 2)});
  channel.send({FlowModType::kDelete, sw, entry("10", 2)});
  sim.runUntil(3 * net::kMillisecond);
  EXPECT_EQ(net_.flowTable(sw).size(), 1u);  // add applied, delete pending
  sim.run();
  EXPECT_TRUE(net_.flowTable(sw).empty());
}

TEST_F(ChannelFixture, AsyncBurstsSerialise) {
  channel.enableAsyncInstall();
  for (int i = 0; i < 5; ++i) {
    channel.send({FlowModType::kAdd, sw,
                  entry(std::string(static_cast<std::size_t>(i + 1), '1'), 2)});
  }
  // Mods apply one per 2 ms, back to back.
  sim.runUntil(6 * net::kMillisecond);
  EXPECT_EQ(net_.flowTable(sw).size(), 3u);
  sim.run();
  EXPECT_EQ(net_.flowTable(sw).size(), 5u);
}

// ---- fault model / reliability layer -----------------------------------

TEST_F(ChannelFixture, SyncDropLosesModAndCounts) {
  ControlFaultModel faults;
  faults.dropProbability = 1.0;
  channel.setFaultModel(faults);
  EXPECT_FALSE(channel.send({FlowModType::kAdd, sw, entry("10", 2)}));
  EXPECT_TRUE(net_.flowTable(sw).empty());
  EXPECT_EQ(channel.stats().flowModsDropped, 1u);
  EXPECT_EQ(channel.stats().flowModsAbandoned, 1u);
  EXPECT_EQ(channel.stats().flowModsSent, 1u);  // attempts still accounted
}

TEST_F(ChannelFixture, AsyncDropWithoutRetryIsAbandoned) {
  channel.enableAsyncInstall();
  ControlFaultModel faults;
  faults.dropProbability = 1.0;
  channel.setFaultModel(faults);
  EXPECT_TRUE(channel.send({FlowModType::kAdd, sw, entry("10", 2)}));
  sim.run();
  EXPECT_TRUE(net_.flowTable(sw).empty());
  EXPECT_EQ(channel.stats().flowModsAbandoned, 1u);
  EXPECT_EQ(channel.outstandingMods(sw), 0u);  // resolved, not leaked
}

TEST_F(ChannelFixture, RetryRecoversFromLossyChannel) {
  channel.enableAsyncInstall();
  ControlFaultModel faults;
  faults.dropProbability = 0.5;
  channel.setFaultModel(faults);
  RetryPolicy retry;
  retry.maxRetries = 16;
  channel.setRetryPolicy(retry);
  channel.reseedFaults(42);
  for (int i = 0; i < 8; ++i) {
    channel.send({FlowModType::kAdd, sw,
                  entry(std::string(static_cast<std::size_t>(i + 1), '1'), 2)});
  }
  sim.run();
  EXPECT_EQ(net_.flowTable(sw).size(), 8u) << "retries must deliver every mod";
  EXPECT_GT(channel.stats().flowModsDropped, 0u) << "channel was not lossy";
  EXPECT_GT(channel.stats().flowModsRetried, 0u);
  EXPECT_EQ(channel.stats().flowModsAbandoned, 0u);
  EXPECT_EQ(channel.outstandingMods(), 0u);
}

TEST_F(ChannelFixture, DuplicateDeliveryIsIdempotent) {
  channel.enableAsyncInstall();
  ControlFaultModel faults;
  faults.duplicateProbability = 1.0;
  channel.setFaultModel(faults);
  channel.send({FlowModType::kAdd, sw, entry("10", 2)});
  channel.send({FlowModType::kDelete, sw, entry("10", 2)});
  sim.run();
  EXPECT_TRUE(net_.flowTable(sw).empty());
  EXPECT_EQ(channel.stats().flowModsDuplicated, 2u);
  // Re-applying an identical add / already-done delete is not a failure.
  EXPECT_EQ(channel.asyncApplyFailures(), 0u);
}

TEST_F(ChannelFixture, AsyncApplyFailureIsCounted) {
  channel.enableAsyncInstall();
  // Modify of a missing entry fails at the switch; the seed silently
  // discarded the deferred result.
  channel.send({FlowModType::kModify, sw, entry("10", 2)});
  sim.run();
  EXPECT_EQ(channel.asyncApplyFailures(), 1u);
}

TEST_F(ChannelFixture, BarrierImmediateWhenQuiescent) {
  int replies = 0;
  bool okSeen = false;
  channel.sendBarrier(sw, [&](bool ok) {
    ++replies;
    okSeen = ok;
  });
  EXPECT_EQ(replies, 1);
  EXPECT_TRUE(okSeen);
  EXPECT_EQ(channel.stats().barrierRequests, 1u);
  EXPECT_EQ(channel.stats().barrierReplies, 1u);
}

TEST_F(ChannelFixture, BarrierWaitsForOutstandingMods) {
  channel.enableAsyncInstall();
  channel.send({FlowModType::kAdd, sw, entry("10", 2)});
  channel.send({FlowModType::kAdd, sw, entry("11", 2)});
  int replies = 0;
  bool okSeen = false;
  channel.sendBarrier(sw, [&](bool ok) {
    ++replies;
    okSeen = ok;
  });
  EXPECT_EQ(replies, 0) << "barrier must not fire before the mods land";
  EXPECT_EQ(channel.outstandingMods(sw), 2u);
  sim.run();
  EXPECT_EQ(replies, 1);
  EXPECT_TRUE(okSeen);
  EXPECT_TRUE(channel.quiescent(sw));
}

TEST_F(ChannelFixture, BarrierReportsAbandonedMods) {
  channel.enableAsyncInstall();
  ControlFaultModel faults;
  faults.dropProbability = 1.0;
  channel.setFaultModel(faults);
  RetryPolicy retry;
  retry.maxRetries = 2;
  retry.initialTimeout = net::kMillisecond;
  channel.setRetryPolicy(retry);
  channel.send({FlowModType::kAdd, sw, entry("10", 2)});
  bool okSeen = true;
  channel.sendBarrier(sw, [&](bool ok) { okSeen = ok; });
  sim.run();
  EXPECT_FALSE(okSeen) << "barrier must report the abandoned mod";
  EXPECT_EQ(channel.stats().flowModsAbandoned, 1u);
  EXPECT_EQ(channel.stats().flowModsRetried, 2u);
}

TEST_F(ChannelFixture, DisconnectedSwitchDropsEverything) {
  channel.setSwitchConnected(sw, false);
  EXPECT_FALSE(channel.switchConnected(sw));
  EXPECT_FALSE(channel.send({FlowModType::kAdd, sw, entry("10", 2)}));
  channel.sendPacketOut({sw, 1, net::Packet{}});
  EXPECT_EQ(channel.stats().flowModsDropped, 1u);
  EXPECT_EQ(channel.stats().packetOutsDropped, 1u);
  channel.setSwitchConnected(sw, true);
  EXPECT_TRUE(channel.send({FlowModType::kAdd, sw, entry("10", 2)}));
  EXPECT_EQ(net_.flowTable(sw).size(), 1u);
}

TEST_F(ChannelFixture, ExtraDelayDefersAsyncApply) {
  channel.enableAsyncInstall();
  ControlFaultModel faults;
  faults.maxExtraDelay = 10 * net::kMillisecond;
  channel.setFaultModel(faults);
  channel.send({FlowModType::kAdd, sw, entry("10", 2)});
  sim.run();
  EXPECT_EQ(net_.flowTable(sw).size(), 1u);
  EXPECT_GE(sim.now(), 2 * net::kMillisecond);  // at least the base latency
}

TEST_F(ChannelFixture, FlowStatsReadSurfacesMatchedPackets) {
  channel.send({FlowModType::kAdd, sw, entry("0", 2)});
  channel.send({FlowModType::kAdd, sw, entry("1", 2)});
  net_.flowTable(sw).lookup(dz::dzToAddress(dz("00")));
  net_.flowTable(sw).lookup(dz::dzToAddress(dz("01")));
  net_.flowTable(sw).lookup(dz::dzToAddress(dz("10")));

  const FlowStatsReply reply = channel.requestFlowStats(sw);
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(reply.switchNode, sw);
  ASSERT_EQ(reply.entries.size(), 2u);
  std::uint64_t matched = 0;
  for (const net::FlowEntry& e : reply.entries) matched += e.matchedPackets;
  EXPECT_EQ(matched, 3u);
  EXPECT_EQ(channel.stats().flowStatsRequests, 1u);
  EXPECT_EQ(channel.stats().flowStatsReplies, 1u);
}

TEST_F(ChannelFixture, FlowStatsFromDisconnectedSwitchFails) {
  obs::MetricsRegistry reg;
  channel.attachObservability(reg);
  channel.send({FlowModType::kAdd, sw, entry("0", 2)});
  channel.setSwitchConnected(sw, false);

  const FlowStatsReply reply = channel.requestFlowStats(sw);
  EXPECT_FALSE(reply.ok);
  EXPECT_TRUE(reply.entries.empty());
  // The attempt is counted (request metric too) but no reply arrives.
  EXPECT_EQ(channel.stats().flowStatsRequests, 1u);
  EXPECT_EQ(channel.stats().flowStatsReplies, 0u);
  EXPECT_EQ(reg.counter("ctrl_channel.flow_stats_requests").value(), 1u);
}

TEST_F(ChannelFixture, AddRejectedWhenTableFull) {
  net::NetworkConfig cfg;
  cfg.flowTableCapacity = 1;
  net::Simulator sim2;
  net::Network small(topo, sim2, cfg);
  ControlChannel ch(small);
  EXPECT_TRUE(ch.send({FlowModType::kAdd, sw, entry("0", 1)}));
  EXPECT_FALSE(ch.send({FlowModType::kAdd, sw, entry("1", 1)}));
}


// ---- flow-mod batching ----------------------------------------------------

TEST_F(ChannelFixture, SendBatchDisabledDegeneratesToSingles) {
  const std::vector<FlowMod> mods = {{FlowModType::kAdd, sw, entry("0", 1)},
                                     {FlowModType::kAdd, sw, entry("1", 2)}};
  EXPECT_EQ(channel.sendBatch(mods), 2u);
  EXPECT_EQ(channel.stats().flowModsSent, 2u);
  EXPECT_EQ(channel.stats().flowModBatches, 0u);
  EXPECT_EQ(channel.stats().batchedMods, 0u);
  EXPECT_EQ(channel.stats().flowModMessages(), 2u);
  EXPECT_EQ(net_.flowTable(sw).size(), 2u);
}

TEST_F(ChannelFixture, SendBatchCoalescesIntoOneMessage) {
  channel.enableBatching();
  const std::vector<FlowMod> mods = {{FlowModType::kAdd, sw, entry("0", 1)},
                                     {FlowModType::kAdd, sw, entry("1", 2)},
                                     {FlowModType::kAdd, sw, entry("10", 2)}};
  EXPECT_EQ(channel.sendBatch(mods), 3u);
  EXPECT_EQ(channel.stats().flowModsSent, 3u);
  EXPECT_EQ(channel.stats().flowModBatches, 1u);
  EXPECT_EQ(channel.stats().batchedMods, 3u);
  EXPECT_EQ(channel.stats().flowModMessages(), 1u);
  EXPECT_EQ(net_.flowTable(sw).size(), 3u);
}

TEST_F(ChannelFixture, SendBatchGroupsBySwitch) {
  channel.enableBatching();
  const net::NodeId sw2 = topo.switches()[1];
  const std::vector<FlowMod> mods = {{FlowModType::kAdd, sw, entry("0", 1)},
                                     {FlowModType::kAdd, sw2, entry("0", 1)},
                                     {FlowModType::kAdd, sw, entry("1", 2)}};
  EXPECT_EQ(channel.sendBatch(mods), 3u);
  EXPECT_EQ(channel.stats().flowModBatches, 2u);
  EXPECT_EQ(channel.stats().flowModMessages(), 2u);
  EXPECT_EQ(net_.flowTable(sw).size(), 2u);
  EXPECT_EQ(net_.flowTable(sw2).size(), 1u);
}

TEST_F(ChannelFixture, SendBatchPreservesOrderWithinSwitch) {
  channel.enableBatching();
  // Add then modify the same match inside one batch: order matters.
  net::FlowEntry updated = entry("10", 2);
  updated.addOutPort(3);
  const std::vector<FlowMod> mods = {{FlowModType::kAdd, sw, entry("10", 2)},
                                     {FlowModType::kModify, sw, updated}};
  EXPECT_EQ(channel.sendBatch(mods), 2u);
  EXPECT_EQ(net_.flowTable(sw).find(updated.match)->outPorts(),
            (std::vector<net::PortId>{2, 3}));
}

TEST_F(ChannelFixture, AsyncBatchUsesOneXidAndAcksOnce) {
  channel.enableBatching();
  channel.enableAsyncInstall();
  const std::vector<FlowMod> mods = {{FlowModType::kAdd, sw, entry("0", 1)},
                                     {FlowModType::kAdd, sw, entry("1", 2)}};
  EXPECT_EQ(channel.sendBatch(mods), 2u);
  // One xid tracks the whole batch.
  EXPECT_EQ(channel.outstandingMods(sw), 1u);
  bool barrierOk = false;
  bool barrierFired = false;
  channel.sendBarrier(sw, [&](bool ok) {
    barrierFired = true;
    barrierOk = ok;
  });
  EXPECT_FALSE(barrierFired);  // waiting on the batch
  sim.run();
  EXPECT_TRUE(barrierFired);
  EXPECT_TRUE(barrierOk);
  EXPECT_EQ(channel.outstandingMods(sw), 0u);
  EXPECT_EQ(net_.flowTable(sw).size(), 2u);
}

TEST_F(ChannelFixture, AsyncBatchInstallTimeIsPerMod) {
  channel.enableBatching();
  channel.enableAsyncInstall();
  const std::vector<FlowMod> mods = {{FlowModType::kAdd, sw, entry("0", 1)},
                                     {FlowModType::kAdd, sw, entry("1", 2)}};
  channel.sendBatch(mods);
  // The batch saves messages, not TCAM writes: it completes after
  // 2 * flowModLatency (2ms each).
  sim.runUntil(3 * net::kMillisecond);
  EXPECT_EQ(net_.flowTable(sw).size(), 0u);
  sim.runUntil(4 * net::kMillisecond);
  EXPECT_EQ(net_.flowTable(sw).size(), 2u);
}

TEST_F(ChannelFixture, AsyncBatchRetriesAsAUnit) {
  channel.enableBatching();
  channel.enableAsyncInstall();
  RetryPolicy retry;
  retry.maxRetries = 8;
  channel.setRetryPolicy(retry);
  ControlFaultModel faults;
  faults.dropProbability = 0.5;
  channel.setFaultModel(faults);
  channel.reseedFaults(42);
  const std::vector<FlowMod> mods = {{FlowModType::kAdd, sw, entry("0", 1)},
                                     {FlowModType::kAdd, sw, entry("1", 2)}};
  channel.sendBatch(mods);
  sim.run();
  // Either the batch got through on the first try or was retransmitted as
  // one unit; both mods always land together.
  EXPECT_EQ(net_.flowTable(sw).size(), 2u);
  EXPECT_EQ(channel.stats().flowModsAbandoned, 0u);
  EXPECT_EQ(channel.outstandingMods(sw), 0u);
}

TEST_F(ChannelFixture, SyncBatchDropLosesWholeMessage) {
  channel.enableBatching();
  ControlFaultModel faults;
  faults.dropProbability = 1.0;
  channel.setFaultModel(faults);
  const std::vector<FlowMod> mods = {{FlowModType::kAdd, sw, entry("0", 1)},
                                     {FlowModType::kAdd, sw, entry("1", 2)}};
  EXPECT_EQ(channel.sendBatch(mods), 0u);
  EXPECT_TRUE(net_.flowTable(sw).empty());
  EXPECT_EQ(channel.stats().flowModsDropped, 2u);
  EXPECT_EQ(channel.stats().flowModsAbandoned, 2u);
}

}  // namespace
}  // namespace pleroma::openflow
