#include "baseline/broker_overlay.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pleroma::baseline {
namespace {

dz::Rectangle rect(dz::AttributeValue aLo, dz::AttributeValue aHi,
                   dz::AttributeValue bLo, dz::AttributeValue bHi) {
  return dz::Rectangle{{dz::Range{aLo, aHi}, dz::Range{bLo, bHi}}};
}

std::set<net::NodeId> deliveredHosts(const BrokerOverlay::PublishResult& r) {
  std::set<net::NodeId> out;
  for (const auto& d : r.deliveries) out.insert(d.host);
  return out;
}

struct OverlayFixture : ::testing::Test {
  OverlayFixture()
      : topo(net::Topology::testbedFatTree()), overlay(topo) {
    hosts = topo.hosts();
  }
  net::Topology topo;
  BrokerOverlay overlay;
  std::vector<net::NodeId> hosts;
};

TEST_F(OverlayFixture, DeliversToMatchingSubscriberOnly) {
  overlay.subscribe(hosts[5], rect(0, 511, 0, 1023));
  overlay.subscribe(hosts[6], rect(512, 1023, 0, 1023));
  const auto r = overlay.publish(hosts[0], {100, 100});
  EXPECT_EQ(deliveredHosts(r), (std::set<net::NodeId>{hosts[5]}));
}

TEST_F(OverlayFixture, ExactMatchingHasNoFalsePositives) {
  overlay.subscribe(hosts[5], rect(0, 100, 0, 100));
  // Inside the same coarse region but outside the exact rectangle.
  const auto r = overlay.publish(hosts[0], {150, 150});
  EXPECT_TRUE(r.deliveries.empty());
}

TEST_F(OverlayFixture, NoSubscribersNoForwarding) {
  const auto r = overlay.publish(hosts[0], {1, 1});
  EXPECT_TRUE(r.deliveries.empty());
  // Only the publisher's access link is crossed.
  EXPECT_EQ(r.linkCrossings, 1u);
}

TEST_F(OverlayFixture, DelayIncludesBrokerProcessing) {
  overlay.subscribe(hosts[7], rect(0, 1023, 0, 1023));
  const auto r = overlay.publish(hosts[0], {5, 5});
  ASSERT_EQ(r.deliveries.size(), 1u);
  // At minimum: 2 access links + 1 broker base delay.
  EXPECT_GT(r.deliveries[0].delay, 2 * 50 * net::kMicrosecond);
  EXPECT_GT(r.matchOperations, 0u);
}

TEST_F(OverlayFixture, MoreFiltersMeanMoreDelay) {
  overlay.subscribe(hosts[7], rect(0, 1023, 0, 1023));
  const auto before = overlay.publish(hosts[0], {5, 5});
  // Load the brokers with many additional filters.
  for (int i = 0; i < 200; ++i) {
    overlay.subscribe(hosts[6], rect(0, 1023, 0, 1023));
  }
  const auto after = overlay.publish(hosts[0], {5, 5});
  net::SimTime dBefore = 0, dAfter = 0;
  for (const auto& d : before.deliveries) {
    if (d.host == hosts[7]) dBefore = d.delay;
  }
  for (const auto& d : after.deliveries) {
    if (d.host == hosts[7]) dAfter = d.delay;
  }
  EXPECT_GT(dAfter, dBefore);  // software matching cost grows with state
}

TEST_F(OverlayFixture, UnsubscribeStopsDelivery) {
  const SubscriptionId s = overlay.subscribe(hosts[5], rect(0, 1023, 0, 1023));
  ASSERT_FALSE(overlay.publish(hosts[0], {1, 1}).deliveries.empty());
  overlay.unsubscribe(s);
  EXPECT_TRUE(overlay.publish(hosts[0], {1, 1}).deliveries.empty());
  EXPECT_EQ(overlay.totalRoutingEntries(), 0u);
}

TEST_F(OverlayFixture, CoveringSuppressesPropagation) {
  overlay.subscribe(hosts[5], rect(0, 1023, 0, 1023));
  const auto msgsBefore = overlay.subscriptionMessages();
  const auto entriesBefore = overlay.totalRoutingEntries();
  // A covered subscription from the same host propagates at most one hop
  // pattern fewer — suppression must reduce message count versus the first.
  overlay.subscribe(hosts[5], rect(0, 100, 0, 100));
  const auto newMsgs = overlay.subscriptionMessages() - msgsBefore;
  EXPECT_EQ(newMsgs, 0u);  // fully covered at the access broker
  EXPECT_EQ(overlay.totalRoutingEntries(), entriesBefore + 1);
}

TEST_F(OverlayFixture, PublisherNotEchoed) {
  overlay.subscribe(hosts[0], rect(0, 1023, 0, 1023));
  overlay.subscribe(hosts[1], rect(0, 1023, 0, 1023));
  const auto r = overlay.publish(hosts[0], {1, 1});
  // hosts[0] published; only hosts[1] receives.
  EXPECT_EQ(deliveredHosts(r), (std::set<net::NodeId>{hosts[1]}));
}

TEST_F(OverlayFixture, BandwidthAccounting) {
  overlay.subscribe(hosts[7], rect(0, 1023, 0, 1023));
  const auto r = overlay.publish(hosts[0], {1, 1}, /*packetBytes=*/100);
  EXPECT_EQ(r.bytesOnLinks, r.linkCrossings * 100u);
  EXPECT_GE(r.linkCrossings, 2u);
}

TEST(BrokerOverlay, RingTopology) {
  const net::Topology topo = net::Topology::ring(8);
  BrokerOverlay overlay(topo);
  const auto hosts = topo.hosts();
  overlay.subscribe(hosts[4], rect(0, 1023, 0, 1023));
  const auto r = overlay.publish(hosts[0], {1, 1});
  ASSERT_EQ(r.deliveries.size(), 1u);
  EXPECT_EQ(r.deliveries[0].host, hosts[4]);
}

}  // namespace
}  // namespace pleroma::baseline
