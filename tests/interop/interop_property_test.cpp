// Property test of multi-domain interoperability (Sec 4): under random
// advertise/subscribe sequences spread over three chained partitions, every
// event must reach exactly the dz-matching subscribers, wherever publisher
// and subscriber reside — interop must add no false negatives and no
// spurious deliveries beyond dz truncation.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "interop/multi_domain.hpp"
#include "workload/workload.hpp"

namespace pleroma::interop {
namespace {

class InteropPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InteropPropertyTest, CrossDomainDeliveryInvariant) {
  net::Topology topo = net::Topology::line(6);
  std::vector<PartitionId> partitionOf(
      static_cast<std::size_t>(topo.nodeCount()), 0);
  const auto sw = topo.switches();
  for (std::size_t i = 0; i < sw.size(); ++i) {
    partitionOf[static_cast<std::size_t>(sw[i])] =
        static_cast<PartitionId>(i / 2);
  }
  const auto hosts = topo.hosts();

  ctrl::ControllerConfig ccfg;
  ccfg.maxDzLength = 8;
  ccfg.maxCellsPerRequest = 6;
  MultiDomain domain(std::move(topo), std::move(partitionOf),
                     dz::EventSpace(2, 10), ccfg);

  std::set<std::pair<net::NodeId, net::EventId>> got;
  domain.network().setDeliverHandler(
      [&](net::NodeId h, const net::Packet& pkt) {
        // No duplicate deliveries per (host, event).
        EXPECT_TRUE(got.insert({h, pkt.eventId()}).second)
            << "duplicate delivery to " << h;
      });

  workload::WorkloadConfig wcfg;
  wcfg.numAttributes = 2;
  wcfg.subscriptionSelectivity = 0.3;
  wcfg.seed = GetParam();
  workload::WorkloadGenerator gen(wcfg);
  util::Rng& rng = gen.rng();

  struct LiveSub {
    net::NodeId host;
    dz::DzSet dz;
  };
  struct LivePub {
    net::NodeId host;
    dz::DzSet dz;
  };
  std::vector<LiveSub> subs;
  std::vector<LivePub> pubs;
  net::EventId nextEvent = 1;

  for (int step = 0; step < 40; ++step) {
    const net::NodeId h = hosts[rng.uniformInt(0, hosts.size() - 1)];
    if (rng.chance(0.45) || pubs.empty()) {
      const GlobalPublisherId id = domain.advertise(h, gen.makeAdvertisement());
      pubs.push_back(LivePub{
          h, domain.controller(id.partition).advertisementDz(id.local)});
    } else {
      const GlobalSubscriptionId id = domain.subscribe(h, gen.makeSubscription());
      subs.push_back(LiveSub{
          h, domain.controller(id.partition).subscriptionDz(id.local)});
    }

    // Publish a few events from random publishers and check the invariant.
    for (int k = 0; k < 2 && !pubs.empty(); ++k) {
      const LivePub& pub = pubs[rng.uniformInt(0, pubs.size() - 1)];
      const dz::Event e = gen.makeEvent();
      const dz::DzExpression eDz =
          domain.controller(domain.partitionOfHost(pub.host)).stampEvent(e);
      got.clear();
      domain.publish(pub.host, e, nextEvent);
      domain.settle();

      const bool pubCovers = pub.dz.overlaps(eDz);
      std::set<net::NodeId> gotHosts;
      for (const auto& [gh, ge] : got) gotHosts.insert(gh);
      for (const LiveSub& s : subs) {
        if (s.dz.overlaps(eDz) && pubCovers && s.host != pub.host) {
          EXPECT_TRUE(gotHosts.contains(s.host))
              << "false negative at step " << step << ": host " << s.host
              << " event " << eDz.toString();
        }
      }
      for (const net::NodeId gh : gotHosts) {
        bool anySub = false;
        for (const LiveSub& s : subs) {
          if (s.host == gh && s.dz.overlaps(eDz)) {
            anySub = true;
            break;
          }
        }
        EXPECT_TRUE(anySub) << "spurious delivery to " << gh << " at step "
                            << step;
      }
      ++nextEvent;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InteropPropertyTest,
                         ::testing::Values(3u, 33u, 333u, 3333u));

}  // namespace
}  // namespace pleroma::interop
