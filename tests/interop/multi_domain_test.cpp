// Tests of multi-partition interoperability (Sec 4): discovery wiring,
// virtual hosts, cross-partition delivery, and covering-based suppression.
#include "interop/multi_domain.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace pleroma::interop {
namespace {

dz::Rectangle rect(dz::AttributeValue aLo, dz::AttributeValue aHi,
                   dz::AttributeValue bLo, dz::AttributeValue bHi) {
  return dz::Rectangle{{dz::Range{aLo, aHi}, dz::Range{bLo, bHi}}};
}

/// Line of 6 switches split into 3 partitions of 2 (like Fig 5's chain
/// N_c1 - N_c2 - N_c3), one host per switch.
struct ThreeDomainFixture : ::testing::Test {
  ThreeDomainFixture() {
    net::Topology topo = net::Topology::line(6);
    std::vector<PartitionId> partitionOf(
        static_cast<std::size_t>(topo.nodeCount()), 0);
    const auto sw = topo.switches();
    for (std::size_t i = 0; i < sw.size(); ++i) {
      partitionOf[static_cast<std::size_t>(sw[i])] =
          static_cast<PartitionId>(i / 2);
    }
    hosts = topo.hosts();
    domain = std::make_unique<MultiDomain>(std::move(topo),
                                           std::move(partitionOf),
                                           dz::EventSpace(2, 10));
    domain->network().setDeliverHandler(
        [this](net::NodeId host, const net::Packet& pkt) {
          delivered.emplace_back(host, pkt.eventId());
        });
  }

  std::set<net::NodeId> publishAndCollect(net::NodeId host, const dz::Event& e) {
    delivered.clear();
    domain->publish(host, e, 99);
    domain->settle();
    std::set<net::NodeId> got;
    for (const auto& [h, id] : delivered) got.insert(h);
    return got;
  }

  std::unique_ptr<MultiDomain> domain;
  std::vector<net::NodeId> hosts;
  std::vector<std::pair<net::NodeId, net::EventId>> delivered;
};

TEST_F(ThreeDomainFixture, PartitionsDiscovered) {
  EXPECT_EQ(domain->partitionCount(), 3u);
  EXPECT_EQ(domain->discovery(0).switches.size(), 2u);
  EXPECT_EQ(domain->discovery(1).borderPorts.size(), 2u);
  EXPECT_EQ(domain->partitionOfHost(hosts[0]), 0);
  EXPECT_EQ(domain->partitionOfHost(hosts[5]), 2);
}

TEST_F(ThreeDomainFixture, AdvertisementFloodsToAllPartitions) {
  domain->advertise(hosts[0], rect(0, 511, 0, 1023));
  // Partition 1 and 2 each received the external advertisement and
  // registered a virtual-host publisher.
  EXPECT_EQ(domain->stats(1).externalRequests, 1u);
  EXPECT_EQ(domain->stats(2).externalRequests, 1u);
  EXPECT_EQ(domain->controller(1).advertisementCount(), 1u);
  EXPECT_EQ(domain->controller(2).advertisementCount(), 1u);
  // Trees exist in every partition for the advertised subspace.
  EXPECT_GE(domain->controller(1).treeCount(), 1u);
  EXPECT_GE(domain->controller(2).treeCount(), 1u);
}

TEST_F(ThreeDomainFixture, CrossPartitionDelivery) {
  // Publisher in partition 0, subscriber in partition 2 (Fig 5's scenario):
  // the subscription follows the advertisement's reverse path and events
  // flow across both border links.
  domain->advertise(hosts[0], rect(0, 1023, 0, 1023));
  domain->subscribe(hosts[5], rect(0, 511, 0, 1023));
  EXPECT_EQ(publishAndCollect(hosts[0], {100, 100}),
            (std::set<net::NodeId>{hosts[5]}));
  // Non-matching events filtered before crossing partitions.
  EXPECT_TRUE(publishAndCollect(hosts[0], {900, 100}).empty());
}

TEST_F(ThreeDomainFixture, LocalAndRemoteSubscribersBothServed) {
  domain->advertise(hosts[0], rect(0, 1023, 0, 1023));
  domain->subscribe(hosts[1], rect(0, 511, 0, 1023));  // same partition
  domain->subscribe(hosts[3], rect(0, 511, 0, 1023));  // middle partition
  domain->subscribe(hosts[5], rect(0, 511, 0, 1023));  // far partition
  EXPECT_EQ(publishAndCollect(hosts[0], {50, 50}),
            (std::set<net::NodeId>{hosts[1], hosts[3], hosts[5]}));
}

TEST_F(ThreeDomainFixture, SubscriptionBeforeAdvertisementAcrossDomains) {
  // Interest exists before the remote advertisement arrives; when it does,
  // the pending interest must be forwarded toward the origin.
  domain->subscribe(hosts[5], rect(0, 511, 0, 1023));
  domain->advertise(hosts[0], rect(0, 1023, 0, 1023));
  EXPECT_EQ(publishAndCollect(hosts[0], {100, 100}),
            (std::set<net::NodeId>{hosts[5]}));
}

TEST_F(ThreeDomainFixture, CoveringSuppressionOnSubscriptions) {
  // Fig 5's worked example: s1 subscribes {00}; a later covered
  // subscription {000} from the same partition is NOT forwarded again.
  domain->advertise(hosts[0], rect(0, 1023, 0, 1023));
  domain->subscribe(hosts[5], rect(0, 511, 0, 511));
  const auto sentBefore = domain->stats(2).messagesSent;
  domain->subscribe(hosts[4], rect(0, 255, 0, 255));  // covered by previous
  EXPECT_EQ(domain->stats(2).messagesSent, sentBefore);
  EXPECT_GT(domain->stats(2).subsSuppressed, 0u);
  // Both subscribers still get matching events.
  EXPECT_EQ(publishAndCollect(hosts[0], {100, 100}),
            (std::set<net::NodeId>{hosts[4], hosts[5]}));
}

TEST_F(ThreeDomainFixture, CoveringSuppressionOnAdvertisements) {
  domain->advertise(hosts[0], rect(0, 511, 0, 1023));
  const auto p1Before = domain->stats(0).messagesSent;
  // Second advertisement covered by the first: not re-flooded.
  domain->advertise(hosts[1], rect(0, 255, 0, 1023));
  EXPECT_EQ(domain->stats(0).messagesSent, p1Before);
  EXPECT_GT(domain->stats(0).advsSuppressed, 0u);
}

TEST_F(ThreeDomainFixture, UncoveredAdvertisementIsForwarded) {
  domain->advertise(hosts[0], rect(0, 511, 0, 1023));
  const auto before = domain->stats(0).messagesSent;
  domain->advertise(hosts[1], rect(512, 1023, 0, 1023));  // disjoint
  EXPECT_GT(domain->stats(0).messagesSent, before);
}

TEST_F(ThreeDomainFixture, EventsDoNotEchoBackToOriginPartition) {
  domain->advertise(hosts[0], rect(0, 1023, 0, 1023));
  domain->subscribe(hosts[1], rect(0, 1023, 0, 1023));
  domain->subscribe(hosts[5], rect(0, 1023, 0, 1023));
  // Each host receives the event exactly once despite the relay chain.
  delivered.clear();
  domain->publish(hosts[0], {10, 10}, 5);
  domain->settle();
  std::multiset<net::NodeId> all;
  for (const auto& [h, id] : delivered) all.insert(h);
  EXPECT_EQ(all.count(hosts[1]), 1u);
  EXPECT_EQ(all.count(hosts[5]), 1u);
  EXPECT_EQ(all.size(), 2u);
}

TEST_F(ThreeDomainFixture, ControlTrafficAccounting) {
  domain->advertise(hosts[0], rect(0, 511, 0, 1023));
  domain->subscribe(hosts[5], rect(0, 255, 0, 1023));
  const std::uint64_t total = domain->totalControlMessages();
  // 2 internal requests + at least 2 adv relays + at least 2 sub relays.
  EXPECT_GE(total, 6u);
  std::uint64_t internal = 0;
  for (PartitionId p = 0; p < 3; ++p) {
    internal += domain->stats(p).internalRequests;
  }
  EXPECT_EQ(internal, 2u);
}

TEST_F(ThreeDomainFixture, UnsubscribeStopsCrossDomainDelivery) {
  domain->advertise(hosts[0], rect(0, 1023, 0, 1023));
  const GlobalSubscriptionId s =
      domain->subscribe(hosts[5], rect(0, 511, 0, 1023));
  ASSERT_EQ(publishAndCollect(hosts[0], {100, 100}),
            (std::set<net::NodeId>{hosts[5]}));
  domain->unsubscribe(s);
  // Never a false delivery after retraction (remote relays may linger and
  // waste bandwidth, but events must not reach the unsubscribed host).
  EXPECT_TRUE(publishAndCollect(hosts[0], {100, 100}).empty());
}

TEST_F(ThreeDomainFixture, UnsubscribeKeepsOtherRemoteSubscriber) {
  domain->advertise(hosts[0], rect(0, 1023, 0, 1023));
  const GlobalSubscriptionId s1 =
      domain->subscribe(hosts[5], rect(0, 511, 0, 1023));
  domain->subscribe(hosts[4], rect(0, 511, 0, 1023));
  domain->unsubscribe(s1);
  EXPECT_EQ(publishAndCollect(hosts[0], {100, 100}),
            (std::set<net::NodeId>{hosts[4]}));
}

TEST_F(ThreeDomainFixture, UnadvertiseStopsLocalTreeOnly) {
  const GlobalPublisherId p = domain->advertise(hosts[0], rect(0, 1023, 0, 1023));
  domain->subscribe(hosts[5], rect(0, 511, 0, 1023));
  domain->unadvertise(p);
  // The retired publisher's events find no flows at its access switch.
  EXPECT_TRUE(publishAndCollect(hosts[0], {100, 100}).empty());
}

TEST(MultiDomain, SinglePartitionBehavesLikePlainController) {
  net::Topology topo = net::Topology::testbedFatTree();
  std::vector<PartitionId> partitionOf(
      static_cast<std::size_t>(topo.nodeCount()), 0);
  const auto hosts = topo.hosts();
  MultiDomain domain(std::move(topo), std::move(partitionOf),
                     dz::EventSpace(2, 10));
  std::set<net::NodeId> got;
  domain.network().setDeliverHandler(
      [&](net::NodeId h, const net::Packet&) { got.insert(h); });
  domain.advertise(hosts[0], rect(0, 1023, 0, 1023));
  domain.subscribe(hosts[7], rect(0, 511, 0, 1023));
  EXPECT_EQ(domain.stats(0).messagesSent, 0u);  // nobody to talk to
  domain.publish(hosts[0], {100, 100});
  domain.settle();
  EXPECT_EQ(got, (std::set<net::NodeId>{hosts[7]}));
}

TEST_F(ThreeDomainFixture, BorderLinkFailureIsolatesButLocalDeliveryContinues) {
  // Fail the physical border link between partitions 1 and 2 (without any
  // repair protocol — the paper has none for inter-partition links). The
  // far partition stops receiving; delivery inside and across the intact
  // border keeps working; nothing crashes.
  domain->advertise(hosts[0], rect(0, 1023, 0, 1023));
  domain->subscribe(hosts[1], rect(0, 511, 0, 1023));  // partition 0
  domain->subscribe(hosts[3], rect(0, 511, 0, 1023));  // partition 1
  domain->subscribe(hosts[5], rect(0, 511, 0, 1023));  // partition 2
  ASSERT_EQ(publishAndCollect(hosts[0], {100, 100}),
            (std::set<net::NodeId>{hosts[1], hosts[3], hosts[5]}));

  // The border between partitions 1 and 2 is the unique switch-switch link
  // whose ends lie in different partitions 1 and 2.
  const auto& topo = domain->network().topology();
  net::LinkId border = net::kInvalidLink;
  const auto sw = topo.switches();
  for (net::LinkId l = 0; l < topo.linkCount(); ++l) {
    const net::Link& link = topo.link(l);
    if (!topo.isSwitch(link.a.node) || !topo.isSwitch(link.b.node)) continue;
    // Partition = switch index / 2 in this fixture.
    auto part = [&](net::NodeId n) {
      return static_cast<int>(std::find(sw.begin(), sw.end(), n) - sw.begin()) / 2;
    };
    if ((part(link.a.node) == 1 && part(link.b.node) == 2) ||
        (part(link.a.node) == 2 && part(link.b.node) == 1)) {
      border = l;
    }
  }
  ASSERT_NE(border, net::kInvalidLink);
  domain->network().setLinkUp(border, false);

  EXPECT_EQ(publishAndCollect(hosts[0], {100, 100}),
            (std::set<net::NodeId>{hosts[1], hosts[3]}));
  EXPECT_GT(domain->network().counters().dropped(net::DropReason::kLinkDown), 0u);

  // Restoring the physical link restores cross-border delivery (flows were
  // never removed).
  domain->network().setLinkUp(border, true);
  EXPECT_EQ(publishAndCollect(hosts[0], {100, 100}),
            (std::set<net::NodeId>{hosts[1], hosts[3], hosts[5]}));
}

TEST(MultiDomain, PodPartitionedFatTreeDelivers) {
  // k=4 fat-tree (the paper's 20-switch Mininet scale) partitioned by pod:
  // cores + pod 0 form partition 0; pods 1-3 are partitions 1-3. Each pod
  // partition has multiple physical border links into partition 0 (one per
  // aggregation switch uplink) — the gateway selection must cope.
  net::Topology topo = net::Topology::kAryFatTree(4);
  std::vector<PartitionId> partitionOf(
      static_cast<std::size_t>(topo.nodeCount()), 0);
  const auto sw = topo.switches();
  // Layout from the builder: 4 cores, then per pod 2 agg + 2 edge.
  for (std::size_t i = 4; i < sw.size(); ++i) {
    partitionOf[static_cast<std::size_t>(sw[i])] =
        static_cast<PartitionId>((i - 4) / 4);  // pod index
  }
  const auto hosts = topo.hosts();
  MultiDomain domain(std::move(topo), std::move(partitionOf),
                     dz::EventSpace(2, 10));
  ASSERT_EQ(domain.partitionCount(), 4u);
  // Pod partitions 1..3 border only partition 0 (via the cores), through
  // several physical links.
  EXPECT_GE(domain.discovery(1).borderPorts.size(), 2u);

  std::set<net::NodeId> got;
  domain.network().setDeliverHandler(
      [&](net::NodeId h, const net::Packet&) { got.insert(h); });

  // Publisher in pod 1, subscribers in pod 0, pod 3 and locally.
  domain.advertise(hosts[4], rect(0, 1023, 0, 1023));
  domain.subscribe(hosts[0], rect(0, 511, 0, 1023));   // pod 0
  domain.subscribe(hosts[12], rect(0, 511, 0, 1023));  // pod 3
  domain.subscribe(hosts[7], rect(0, 511, 0, 1023));   // pod 1 (local)
  domain.publish(hosts[4], {100, 100});
  domain.settle();
  EXPECT_EQ(got, (std::set<net::NodeId>{hosts[0], hosts[7], hosts[12]}));

  got.clear();
  domain.publish(hosts[4], {900, 100});
  domain.settle();
  EXPECT_TRUE(got.empty());
}

TEST(MultiDomain, RingOfPartitionsDelivers) {
  // 8-switch ring, 4 partitions: events must traverse multiple borders.
  net::Topology topo = net::Topology::ring(8);
  std::vector<PartitionId> partitionOf(
      static_cast<std::size_t>(topo.nodeCount()), 0);
  const auto sw = topo.switches();
  for (std::size_t i = 0; i < sw.size(); ++i) {
    partitionOf[static_cast<std::size_t>(sw[i])] =
        static_cast<PartitionId>(i / 2);
  }
  const auto hosts = topo.hosts();
  MultiDomain domain(std::move(topo), std::move(partitionOf),
                     dz::EventSpace(2, 10));
  std::set<net::NodeId> got;
  domain.network().setDeliverHandler(
      [&](net::NodeId h, const net::Packet&) { got.insert(h); });
  domain.advertise(hosts[0], rect(0, 1023, 0, 1023));
  domain.subscribe(hosts[4], rect(0, 511, 0, 1023));  // opposite side
  domain.publish(hosts[0], {100, 100});
  domain.settle();
  EXPECT_EQ(got, (std::set<net::NodeId>{hosts[4]}));
}

}  // namespace
}  // namespace pleroma::interop
