#include "controller/path_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/packet.hpp"

namespace pleroma::ctrl {
namespace {

dz::DzExpression dz(std::string_view s) { return *dz::DzExpression::fromString(s); }
dz::DzSet set(std::string_view s) { return *dz::DzSet::fromString(s); }

InstalledPath makePath(PublisherId p, SubscriptionId s, int tree,
                       std::string_view dzs,
                       std::vector<std::pair<net::NodeId, net::PortId>> hops,
                       std::optional<dz::Ipv6Address> terminalRewrite = {}) {
  InstalledPath path;
  path.publisher = p;
  path.subscription = s;
  path.treeId = tree;
  path.dz = set(dzs);
  for (std::size_t i = 0; i < hops.size(); ++i) {
    path.hops.push_back(RouteHop{
        hops[i].first, hops[i].second,
        i + 1 == hops.size() ? terminalRewrite : std::nullopt});
  }
  return path;
}

/// Finds the required entry whose match equals the dz, or nullptr.
const net::FlowEntry* findFlow(const std::vector<net::FlowEntry>& flows,
                               std::string_view dzs) {
  const auto match = dz::dzToPrefix(dz(dzs));
  for (const auto& f : flows) {
    if (f.match == match) return &f;
  }
  return nullptr;
}

TEST(PathRegistry, AddRemoveAndIndexes) {
  PathRegistry reg;
  const PathId a = reg.add(makePath(1, 10, 0, "10", {{5, 1}, {6, 2}}));
  const PathId b = reg.add(makePath(1, 11, 0, "11", {{5, 1}}));
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_TRUE(reg.contains(a));
  EXPECT_EQ(reg.pathsOfSubscription(10), std::vector<PathId>{a});
  EXPECT_EQ(reg.pathsOfPublisher(1), (std::vector<PathId>{a, b}));
  EXPECT_EQ(reg.pathsOfTree(0), (std::vector<PathId>{a, b}));
  EXPECT_EQ(reg.switchesOf({a, b}), (std::vector<net::NodeId>{5, 6}));

  reg.remove(a);
  EXPECT_FALSE(reg.contains(a));
  EXPECT_TRUE(reg.pathsOfSubscription(10).empty());
  EXPECT_EQ(reg.allSwitches(), std::vector<net::NodeId>{5});
}

TEST(PathRegistry, AlreadyCovered) {
  PathRegistry reg;
  reg.add(makePath(1, 10, 0, "1", {{5, 1}}));
  EXPECT_TRUE(reg.alreadyCovered(1, 10, 0, set("10")));
  EXPECT_TRUE(reg.alreadyCovered(1, 10, 0, set("1")));
  EXPECT_FALSE(reg.alreadyCovered(1, 10, 0, set("0")));
  EXPECT_FALSE(reg.alreadyCovered(2, 10, 0, set("10")));  // other publisher
  EXPECT_FALSE(reg.alreadyCovered(1, 10, 1, set("10")));  // other tree
}

TEST(PathRegistry, RequiredFlowsSinglePath) {
  PathRegistry reg;
  const auto rewrite = net::hostAddress(42);
  reg.add(makePath(1, 10, 0, "10", {{5, 1}, {6, 2}}, rewrite));
  const auto flows5 = reg.requiredFlows(5);
  ASSERT_EQ(flows5.size(), 1u);
  EXPECT_EQ(flows5[0].match, dz::dzToPrefix(dz("10")));
  EXPECT_EQ(flows5[0].outPorts(), std::vector<net::PortId>{1});
  EXPECT_FALSE(flows5[0].actions[0].setDestination.has_value());
  const auto flows6 = reg.requiredFlows(6);
  ASSERT_EQ(flows6.size(), 1u);
  ASSERT_TRUE(flows6[0].actions[0].setDestination.has_value());
  EXPECT_EQ(*flows6[0].actions[0].setDestination, rewrite);
  EXPECT_TRUE(reg.requiredFlows(7).empty());
}

TEST(PathRegistry, FinerFlowInheritsCoarserPorts) {
  // Fig 4 shape at one switch: dz=100 -> port 2 and dz=10 -> port 3 means
  // the finer flow is the one that wins for its subspace... here dz=10 is
  // the coarser one; the finer (100) flow must forward to both ports.
  PathRegistry reg;
  reg.add(makePath(1, 10, 0, "10", {{5, 3}}));
  reg.add(makePath(1, 11, 0, "100", {{5, 2}}));
  const auto flows = reg.requiredFlows(5);
  ASSERT_EQ(flows.size(), 2u);
  const auto* coarse = findFlow(flows, "10");
  const auto* fine = findFlow(flows, "100");
  ASSERT_NE(coarse, nullptr);
  ASSERT_NE(fine, nullptr);
  EXPECT_EQ(coarse->outPorts(), std::vector<net::PortId>{3});
  auto finePorts = fine->outPorts();
  std::sort(finePorts.begin(), finePorts.end());
  EXPECT_EQ(finePorts, (std::vector<net::PortId>{2, 3}));
  // Priorities: longer dz ranks higher.
  EXPECT_GT(fine->priority, coarse->priority);
}

TEST(PathRegistry, RedundantFinerFlowDropped) {
  // A finer dz whose port is already served by a covering coarser flow
  // needs no flow of its own (paper's downgrade scenario, Sec 3.3.3).
  PathRegistry reg;
  reg.add(makePath(1, 10, 0, "10", {{5, 2}}));
  reg.add(makePath(1, 11, 0, "100", {{5, 2}}));
  const auto flows = reg.requiredFlows(5);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].match, dz::dzToPrefix(dz("10")));
}

TEST(PathRegistry, UnsubscribeDowngradesFlows) {
  // Paper Fig 4 / Sec 3.3.3: with s3 (dz=10) and s2 (dz=100) installed,
  // removing s3's paths leaves the switches needing only dz=100.
  PathRegistry reg;
  const PathId s3a = reg.add(makePath(1, 3, 0, "10", {{5, 2}}));
  reg.add(makePath(1, 2, 0, "100", {{5, 2}}));
  {
    const auto flows = reg.requiredFlows(5);
    ASSERT_EQ(flows.size(), 1u);
    EXPECT_EQ(flows[0].match, dz::dzToPrefix(dz("10")));  // coarser covers
  }
  reg.remove(s3a);
  const auto flows = reg.requiredFlows(5);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].match, dz::dzToPrefix(dz("100")));  // downgraded
}

TEST(PathRegistry, SameDzDifferentPortsUnion) {
  PathRegistry reg;
  reg.add(makePath(1, 10, 0, "10", {{5, 1}}));
  reg.add(makePath(1, 11, 0, "10", {{5, 2}}));
  const auto flows = reg.requiredFlows(5);
  ASSERT_EQ(flows.size(), 1u);
  auto ports = flows[0].outPorts();
  std::sort(ports.begin(), ports.end());
  EXPECT_EQ(ports, (std::vector<net::PortId>{1, 2}));
}

TEST(PathRegistry, MultiLevelInheritanceChain) {
  PathRegistry reg;
  reg.add(makePath(1, 10, 0, "1", {{5, 1}}));
  reg.add(makePath(1, 11, 0, "10", {{5, 2}}));
  reg.add(makePath(1, 12, 0, "101", {{5, 3}}));
  const auto flows = reg.requiredFlows(5);
  ASSERT_EQ(flows.size(), 3u);
  auto portsOf = [&](std::string_view d) {
    auto p = findFlow(flows, d)->outPorts();
    std::sort(p.begin(), p.end());
    return p;
  };
  EXPECT_EQ(portsOf("1"), (std::vector<net::PortId>{1}));
  EXPECT_EQ(portsOf("10"), (std::vector<net::PortId>{1, 2}));
  EXPECT_EQ(portsOf("101"), (std::vector<net::PortId>{1, 2, 3}));
}

TEST(PathRegistry, DisjointSubspacesIndependent) {
  PathRegistry reg;
  reg.add(makePath(1, 10, 0, "0", {{5, 1}}));
  reg.add(makePath(2, 11, 1, "1", {{5, 2}}));
  const auto flows = reg.requiredFlows(5);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(findFlow(flows, "0")->outPorts(), std::vector<net::PortId>{1});
  EXPECT_EQ(findFlow(flows, "1")->outPorts(), std::vector<net::PortId>{2});
}

TEST(PathRegistry, MultiDzPathContributesAllMembers) {
  PathRegistry reg;
  reg.add(makePath(1, 10, 0, "00,01", {{5, 1}}));
  const auto flows = reg.requiredFlows(5);
  // {00,01} canonicalises to {0} inside a DzSet.
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].match, dz::dzToPrefix(dz("0")));
}

TEST(PathRegistry, ClearEmptiesEverything) {
  PathRegistry reg;
  reg.add(makePath(1, 10, 0, "0", {{5, 1}}));
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_TRUE(reg.allSwitches().empty());
  EXPECT_TRUE(reg.requiredFlows(5).empty());
}

}  // namespace
}  // namespace pleroma::ctrl
