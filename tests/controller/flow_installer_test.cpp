// Tests of Algorithm 1's flowAddition cases 1-5 (Sec 3.3.2) against the
// worked example of Fig 4, plus reconcile-based removal.
#include "controller/flow_installer.hpp"

#include <gtest/gtest.h>

#include "net/packet.hpp"

#include <algorithm>

namespace pleroma::ctrl {
namespace {

dz::DzExpression dz(std::string_view s) { return *dz::DzExpression::fromString(s); }
dz::DzSet set(std::string_view s) { return *dz::DzSet::fromString(s); }

struct InstallerFixture : ::testing::Test {
  InstallerFixture()
      : topo(net::Topology::line(2)),
        network(topo, sim, {}),
        channel(network),
        installer(channel) {
    sw = topo.switches()[0];
  }

  std::vector<net::PortId> portsAt(std::string_view dzStr) {
    const auto* e = network.flowTable(sw).find(dz::dzToPrefix(dz(dzStr)));
    if (e == nullptr) return {};
    auto p = e->outPorts();
    std::sort(p.begin(), p.end());
    return p;
  }
  bool hasFlow(std::string_view dzStr) {
    return network.flowTable(sw).find(dz::dzToPrefix(dz(dzStr))) != nullptr;
  }

  net::Topology topo;
  net::Simulator sim;
  net::Network network;
  openflow::ControlChannel channel;
  FlowInstaller installer;
  net::NodeId sw;
};

TEST_F(InstallerFixture, Case1AddToEmptyTable) {
  installer.installPath(set("10"), {RouteHop{sw, 2, std::nullopt}});
  EXPECT_EQ(portsAt("10"), std::vector<net::PortId>{2});
  EXPECT_EQ(channel.stats().flowAdds, 1u);
}

TEST_F(InstallerFixture, Case2CoveredByExistingDoesNothing) {
  installer.installPath(set("1"), {RouteHop{sw, 2, std::nullopt}});
  const auto before = channel.stats().flowModsSent;
  // New finer flow to the same port is already covered.
  installer.installPath(set("100"), {RouteHop{sw, 2, std::nullopt}});
  EXPECT_EQ(channel.stats().flowModsSent, before);
  EXPECT_FALSE(hasFlow("100"));
}

TEST_F(InstallerFixture, Case3NewCoarserFlowReplacesFiner) {
  // Fig 4 at R3/R4: existing dz=100 -> {2,3}; new dz=10 -> same ports
  // replaces it.
  installer.installPath(set("100"), {RouteHop{sw, 2, std::nullopt}});
  installer.installPath(set("100"), {RouteHop{sw, 3, std::nullopt}});
  installer.installPath(set("10"), {RouteHop{sw, 2, std::nullopt}});
  installer.installPath(set("10"), {RouteHop{sw, 3, std::nullopt}});
  EXPECT_FALSE(hasFlow("100"));
  EXPECT_EQ(portsAt("10"), (std::vector<net::PortId>{2, 3}));
}

TEST_F(InstallerFixture, Case4NewFinerFlowInheritsCoarserPorts) {
  // Existing coarser flow 1* -> 2; new finer flow 10 -> 3 must also carry
  // port 2 and rank higher (Fig 4 at R5's mirror case).
  installer.installPath(set("1"), {RouteHop{sw, 2, std::nullopt}});
  installer.installPath(set("10"), {RouteHop{sw, 3, std::nullopt}});
  EXPECT_EQ(portsAt("10"), (std::vector<net::PortId>{2, 3}));
  EXPECT_EQ(portsAt("1"), std::vector<net::PortId>{2});
  // Lookup for a dz=10 event applies the finer flow.
  const auto* hit = network.flowTable(sw).lookup(dz::dzToAddress(dz("101")));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->match, dz::dzToPrefix(dz("10")));
}

TEST_F(InstallerFixture, Case5ExistingFinerFlowGainsNewPorts) {
  // Fig 4 at R5: existing 100 -> 2; adding 10 -> 3 must update the finer
  // flow to {2,3} and add the new flow.
  installer.installPath(set("100"), {RouteHop{sw, 2, std::nullopt}});
  installer.installPath(set("10"), {RouteHop{sw, 3, std::nullopt}});
  EXPECT_EQ(portsAt("100"), (std::vector<net::PortId>{2, 3}));
  EXPECT_EQ(portsAt("10"), std::vector<net::PortId>{3});
  // Events in 100 follow the finer flow and reach both subscribers.
  const auto* hit = network.flowTable(sw).lookup(dz::dzToAddress(dz("1000")));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->match, dz::dzToPrefix(dz("100")));
}

TEST_F(InstallerFixture, ExactDzMergesPorts) {
  installer.installPath(set("10"), {RouteHop{sw, 2, std::nullopt}});
  installer.installPath(set("10"), {RouteHop{sw, 3, std::nullopt}});
  EXPECT_EQ(portsAt("10"), (std::vector<net::PortId>{2, 3}));
  EXPECT_EQ(channel.stats().flowAdds, 1u);
  EXPECT_EQ(channel.stats().flowModifies, 1u);
}

TEST_F(InstallerFixture, ExactDzSamePortNoOp) {
  installer.installPath(set("10"), {RouteHop{sw, 2, std::nullopt}});
  const auto before = channel.stats().flowModsSent;
  installer.installPath(set("10"), {RouteHop{sw, 2, std::nullopt}});
  EXPECT_EQ(channel.stats().flowModsSent, before);
}

TEST_F(InstallerFixture, TerminalRewritePreserved) {
  const auto addr = net::hostAddress(9);
  installer.installPath(set("11"), {RouteHop{sw, 4, addr}});
  const auto* e = network.flowTable(sw).find(dz::dzToPrefix(dz("11")));
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->actions.size(), 1u);
  EXPECT_EQ(e->actions[0].setDestination, addr);
}

TEST_F(InstallerFixture, RewriteDifferenceIsNotCovered) {
  // Same dz, same port, but one action rewrites: they are distinct actions,
  // so the install must modify rather than no-op.
  const auto addr = net::hostAddress(9);
  installer.installPath(set("11"), {RouteHop{sw, 4, std::nullopt}});
  installer.installPath(set("11"), {RouteHop{sw, 4, addr}});
  const auto* e = network.flowTable(sw).find(dz::dzToPrefix(dz("11")));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->actions[0].setDestination, addr);
}

TEST_F(InstallerFixture, MultiHopInstallsAlongRoute) {
  const net::NodeId sw2 = topo.switches()[1];
  installer.installPath(
      set("01"), {RouteHop{sw, 1, std::nullopt}, RouteHop{sw2, 2, std::nullopt}});
  EXPECT_TRUE(hasFlow("01"));
  EXPECT_NE(network.flowTable(sw2).find(dz::dzToPrefix(dz("01"))), nullptr);
}

TEST_F(InstallerFixture, MultiDzSetInstallsEachMember) {
  installer.installPath(set("00,11"), {RouteHop{sw, 2, std::nullopt}});
  EXPECT_TRUE(hasFlow("00"));
  EXPECT_TRUE(hasFlow("11"));
}

TEST_F(InstallerFixture, MirrorTracksTable) {
  installer.installPath(set("10"), {RouteHop{sw, 2, std::nullopt}});
  installer.installPath(set("1"), {RouteHop{sw, 2, std::nullopt}});
  const auto& mirror = installer.mirror(sw);
  EXPECT_EQ(mirror.size(), network.flowTable(sw).size());
  for (const auto& [d, entry] : mirror) {
    const auto* actual = network.flowTable(sw).find(entry.match);
    ASSERT_NE(actual, nullptr);
    EXPECT_EQ(*actual, entry);
  }
}

TEST_F(InstallerFixture, ReconcileAddsModifiesDeletes) {
  installer.installPath(set("10"), {RouteHop{sw, 2, std::nullopt}});
  installer.installPath(set("01"), {RouteHop{sw, 3, std::nullopt}});

  // Target: 10 -> {2,4} (modify), 11 -> {5} (add); 01 gone (delete).
  std::vector<net::FlowEntry> required;
  net::FlowEntry f1;
  f1.match = dz::dzToPrefix(dz("10"));
  f1.priority = 2;
  f1.actions = {net::FlowAction{2, std::nullopt}, net::FlowAction{4, std::nullopt}};
  net::FlowEntry f2;
  f2.match = dz::dzToPrefix(dz("11"));
  f2.priority = 2;
  f2.actions = {net::FlowAction{5, std::nullopt}};
  required.push_back(f1);
  required.push_back(f2);

  installer.reconcileSwitch(sw, required);
  EXPECT_EQ(portsAt("10"), (std::vector<net::PortId>{2, 4}));
  EXPECT_EQ(portsAt("11"), std::vector<net::PortId>{5});
  EXPECT_FALSE(hasFlow("01"));
  EXPECT_EQ(network.flowTable(sw).size(), 2u);
  EXPECT_EQ(installer.mirror(sw).size(), 2u);
}

TEST_F(InstallerFixture, ReconcileToEmptyClearsSwitch) {
  installer.installPath(set("10"), {RouteHop{sw, 2, std::nullopt}});
  installer.reconcileSwitch(sw, {});
  EXPECT_TRUE(network.flowTable(sw).empty());
  EXPECT_TRUE(installer.mirror(sw).empty());
}

TEST_F(InstallerFixture, ReconcileNoChangesSendsNothing) {
  installer.installPath(set("10"), {RouteHop{sw, 2, std::nullopt}});
  const auto required = network.flowTable(sw).entries();
  const auto before = channel.stats().flowModsSent;
  installer.reconcileSwitch(sw, required);
  EXPECT_EQ(channel.stats().flowModsSent, before);
}

}  // namespace
}  // namespace pleroma::ctrl
