// Tests for the overload-detection/reaction extension (Sec 8 future work):
// re-rooting trees and the LoadMonitor sampling + rebalancing loop.
#include "controller/load_monitor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "net/congestion.hpp"
#include "net/packet.hpp"

namespace pleroma::ctrl {
namespace {

dz::Rectangle rect(dz::AttributeValue aLo, dz::AttributeValue aHi) {
  return dz::Rectangle{{dz::Range{aLo, aHi}, dz::Range{0, 1023}}};
}

struct MonitorFixture : ::testing::Test {
  MonitorFixture()
      : topo(net::Topology::ring(8)),
        network(topo, sim, {}),
        controller(dz::EventSpace(2, 10), network, Scope::wholeTopology(topo), {}) {
    hosts = topo.hosts();
    network.setDeliverHandler([this](net::NodeId h, const net::Packet&) {
      delivered.insert(h);
    });
  }

  std::set<net::NodeId> publish(net::NodeId host, const dz::Event& e) {
    delivered.clear();
    network.sendFromHost(host, controller.makeEventPacket(host, e, 1));
    sim.run();
    return delivered;
  }

  net::Topology topo;
  net::Simulator sim;
  net::Network network;
  Controller controller;
  std::vector<net::NodeId> hosts;
  std::set<net::NodeId> delivered;
};

TEST_F(MonitorFixture, RerootPreservesDelivery) {
  controller.advertise(hosts[0], rect(0, 1023));
  controller.subscribe(hosts[3], rect(0, 511));
  controller.subscribe(hosts[6], rect(0, 511));
  ASSERT_EQ(publish(hosts[0], {100, 100}),
            (std::set<net::NodeId>{hosts[3], hosts[6]}));

  const int treeId = controller.trees()[0]->id();
  const net::NodeId oldRoot = controller.trees()[0]->root();
  // Re-root at the diametrically opposite switch.
  net::NodeId newRoot = net::kInvalidNode;
  for (const net::NodeId sw : topo.switches()) {
    if (sw != oldRoot) newRoot = sw;
  }
  ASSERT_TRUE(controller.rerootTree(treeId, newRoot));
  EXPECT_EQ(controller.trees()[0]->root(), newRoot);
  EXPECT_NE(controller.trees()[0]->id(), treeId);  // rebuilt as a new tree

  // Same DZ, same publishers, delivery unchanged.
  EXPECT_EQ(publish(hosts[0], {100, 100}),
            (std::set<net::NodeId>{hosts[3], hosts[6]}));
  EXPECT_TRUE(publish(hosts[0], {900, 100}).empty());
}

TEST_F(MonitorFixture, RerootRejectsUnknownTreeOrRoot) {
  controller.advertise(hosts[0], rect(0, 1023));
  EXPECT_FALSE(controller.rerootTree(9999, topo.switches()[0]));
  EXPECT_FALSE(controller.rerootTree(controller.trees()[0]->id(), hosts[0]));
}

TEST_F(MonitorFixture, SampleMeasuresWindowDeltas) {
  controller.advertise(hosts[0], rect(0, 1023));
  controller.subscribe(hosts[4], rect(0, 1023));

  LoadMonitor monitor(controller);
  // Nothing has flowed yet.
  EXPECT_TRUE(monitor.sample().links.empty());

  for (int i = 0; i < 10; ++i) publish(hosts[0], {10, 10});
  const LoadReport report = monitor.sample();
  EXPECT_FALSE(report.links.empty());
  std::uint64_t total = 0;
  for (const auto& l : report.links) total += l.packetsInWindow;
  EXPECT_GE(total, 10u);
  // Second sample with no traffic: empty window again.
  EXPECT_TRUE(monitor.sample().links.empty());
}

TEST_F(MonitorFixture, HotLinkFlagsOverload) {
  controller.advertise(hosts[0], rect(0, 1023));
  controller.subscribe(hosts[1], rect(0, 1023));  // adjacent: 1-hop hot arc

  LoadMonitorConfig cfg;
  cfg.hotLinkThreshold = 0.5;  // any traffic counts as hot
  LoadMonitor monitor(controller, cfg);
  for (int i = 0; i < 5; ++i) publish(hosts[0], {10, 10});
  const LoadReport report = monitor.sample();
  EXPECT_TRUE(report.overloaded);
  EXPECT_FALSE(report.links.empty());
}

TEST_F(MonitorFixture, RebalanceRerootsBusiestTree) {
  controller.advertise(hosts[0], rect(0, 1023));
  controller.subscribe(hosts[3], rect(0, 1023));
  controller.subscribe(hosts[5], rect(0, 1023));

  LoadMonitorConfig cfg;
  cfg.hotLinkThreshold = 0.0;  // always consider the top link hot
  LoadMonitor monitor(controller, cfg);
  for (int i = 0; i < 20; ++i) publish(hosts[0], {10, 10});
  const LoadReport report = monitor.sample();
  ASSERT_TRUE(report.overloaded);

  const int oldTreeId = controller.trees()[0]->id();
  EXPECT_TRUE(monitor.rebalanceOnce());
  EXPECT_NE(controller.trees()[0]->id(), oldTreeId);

  // Delivery is intact after rebalancing.
  EXPECT_EQ(publish(hosts[0], {100, 100}),
            (std::set<net::NodeId>{hosts[3], hosts[5]}));
}

// Congestion-attached loop (DESIGN.md §15): finite 1 Mbps links (512us
// per 64-byte packet) on an 8-ring, with one interior link given a tiny
// queue so a single burst overloads exactly that link. Every other link
// keeps the legacy contention-free model, so raw packet rates stay
// balanced and only the CongestionMonitor's EWMA can flag the hotspot.
struct CongestedMonitorFixture : ::testing::Test {
  CongestedMonitorFixture()
      : topo(net::Topology::ring(8, 100 * net::kMicrosecond, 1.0e6)),
        network(topo, sim, {}),
        controller(dz::EventSpace(2, 10), network, Scope::wholeTopology(topo),
                   {}),
        congestion(network) {
    hosts = topo.hosts();
    network.setDeliverHandler([this](net::NodeId h, const net::Packet&) {
      delivered.insert(h);
    });
    controller.advertise(hosts[0], rect(0, 1023));
    controller.subscribe(hosts[3], rect(0, 1023));
    // The embedded path runs the short arc s0-s1-s2-s3; cap its last hop.
    const auto sw = topo.switches();
    hot = linkBetween(sw[2], sw[3]);
    network.setLinkQueueCapacity(hot, 2);
  }

  net::LinkId linkBetween(net::NodeId a, net::NodeId b) const {
    for (net::LinkId l = 0; l < topo.linkCount(); ++l) {
      const net::Link& link = topo.link(l);
      if ((link.a.node == a && link.b.node == b) ||
          (link.a.node == b && link.b.node == a)) {
        return l;
      }
    }
    return net::kInvalidLink;
  }

  /// Ten copies cross the contention-free arc as a block and hit the hot
  /// link together: 2 queue, 8 drop with DropReason::kLinkQueue.
  void congestHotLink() {
    for (int i = 0; i < 10; ++i) {
      network.sendFromHost(hosts[0],
                           controller.makeEventPacket(hosts[0], {10, 10}, i + 1));
    }
    sim.run();
    ASSERT_EQ(network.counters().dropped(net::DropReason::kLinkQueue), 8u);
  }

  std::set<net::NodeId> publish(net::NodeId host, const dz::Event& e) {
    delivered.clear();
    network.sendFromHost(host, controller.makeEventPacket(host, e, 1));
    sim.run();
    return delivered;
  }

  LoadMonitorConfig congestionOnlyConfig() const {
    LoadMonitorConfig cfg;
    cfg.hotLinkThreshold = 1.0e9;  // the packet-rate detector can never fire
    cfg.congestionScoreThreshold = 5.0;
    return cfg;
  }

  net::Topology topo;
  net::Simulator sim;
  net::Network network;
  Controller controller;
  net::CongestionMonitor congestion;
  std::vector<net::NodeId> hosts;
  net::LinkId hot = net::kInvalidLink;
  std::set<net::NodeId> delivered;
};

TEST_F(CongestedMonitorFixture, CongestionFlagsOverloadDespiteBalancedRates) {
  LoadMonitor withCongestion(controller, congestionOnlyConfig());
  withCongestion.attachCongestion(&congestion);
  LoadMonitor ratesOnly(controller, congestionOnlyConfig());

  congestHotLink();
  congestion.sampleOnce();

  // Raw rates are balanced (one burst everywhere), so the rate-only view
  // sees nothing; the congestion-attached view pins the scored link.
  EXPECT_FALSE(ratesOnly.sample().overloaded);
  const LoadReport report = withCongestion.sample();
  EXPECT_TRUE(report.overloaded);
  ASSERT_FALSE(report.links.empty());
  EXPECT_EQ(report.links.front().link, hot);
}

TEST_F(CongestedMonitorFixture, CongestionRerootSteersTreeOffHotLink) {
  LoadMonitor monitor(controller, congestionOnlyConfig());
  monitor.attachCongestion(&congestion);

  congestHotLink();
  congestion.sampleOnce();
  ASSERT_TRUE(monitor.sample().overloaded);

  const int oldTreeId = controller.trees()[0]->id();
  EXPECT_TRUE(monitor.rebalanceOnce());
  EXPECT_EQ(monitor.rebalances(), 1u);
  EXPECT_NE(controller.trees()[0]->id(), oldTreeId);

  // The congestion-weighted rebuild (latency x ~9 on the hot link) must
  // route around it: on a ring the tree omits exactly one link, and with
  // the inflation that is the hot one.
  const auto edges = controller.trees()[0]->edges();
  EXPECT_EQ(std::find(edges.begin(), edges.end(), hot), edges.end());
  EXPECT_EQ(publish(hosts[0], {100, 100}), (std::set<net::NodeId>{hosts[3]}));
}

TEST_F(CongestedMonitorFixture, CooldownPreventsRerootPingPong) {
  LoadMonitorConfig cfg = congestionOnlyConfig();
  cfg.rebalanceCooldown = 2;
  LoadMonitor monitor(controller, cfg);
  monitor.attachCongestion(&congestion);

  congestHotLink();
  congestion.sampleOnce();
  ASSERT_TRUE(monitor.sample().overloaded);
  ASSERT_TRUE(monitor.rebalanceOnce());

  // The vacated link's EWMA stays above threshold for several windows;
  // the cooldown declines to react to that stale score.
  EXPECT_FALSE(monitor.rebalanceOnce());
  EXPECT_TRUE(monitor.sample().overloaded);
  EXPECT_FALSE(monitor.rebalanceOnce());
  monitor.sample();

  // Cooldown expired, the link still scores hot — but no tree crosses it
  // any more, so the loop has converged instead of ping-ponging.
  EXPECT_FALSE(monitor.rebalanceOnce());
  EXPECT_EQ(monitor.rebalances(), 1u);
}

TEST_F(MonitorFixture, RebalanceNoOpWithoutOverload) {
  controller.advertise(hosts[0], rect(0, 1023));
  LoadMonitor monitor(controller);
  monitor.sample();  // empty window, not overloaded
  EXPECT_FALSE(monitor.rebalanceOnce());
}

}  // namespace
}  // namespace pleroma::ctrl
