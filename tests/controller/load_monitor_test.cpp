// Tests for the overload-detection/reaction extension (Sec 8 future work):
// re-rooting trees and the LoadMonitor sampling + rebalancing loop.
#include "controller/load_monitor.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/packet.hpp"

namespace pleroma::ctrl {
namespace {

dz::Rectangle rect(dz::AttributeValue aLo, dz::AttributeValue aHi) {
  return dz::Rectangle{{dz::Range{aLo, aHi}, dz::Range{0, 1023}}};
}

struct MonitorFixture : ::testing::Test {
  MonitorFixture()
      : topo(net::Topology::ring(8)),
        network(topo, sim, {}),
        controller(dz::EventSpace(2, 10), network, Scope::wholeTopology(topo), {}) {
    hosts = topo.hosts();
    network.setDeliverHandler([this](net::NodeId h, const net::Packet&) {
      delivered.insert(h);
    });
  }

  std::set<net::NodeId> publish(net::NodeId host, const dz::Event& e) {
    delivered.clear();
    network.sendFromHost(host, controller.makeEventPacket(host, e, 1));
    sim.run();
    return delivered;
  }

  net::Topology topo;
  net::Simulator sim;
  net::Network network;
  Controller controller;
  std::vector<net::NodeId> hosts;
  std::set<net::NodeId> delivered;
};

TEST_F(MonitorFixture, RerootPreservesDelivery) {
  controller.advertise(hosts[0], rect(0, 1023));
  controller.subscribe(hosts[3], rect(0, 511));
  controller.subscribe(hosts[6], rect(0, 511));
  ASSERT_EQ(publish(hosts[0], {100, 100}),
            (std::set<net::NodeId>{hosts[3], hosts[6]}));

  const int treeId = controller.trees()[0]->id();
  const net::NodeId oldRoot = controller.trees()[0]->root();
  // Re-root at the diametrically opposite switch.
  net::NodeId newRoot = net::kInvalidNode;
  for (const net::NodeId sw : topo.switches()) {
    if (sw != oldRoot) newRoot = sw;
  }
  ASSERT_TRUE(controller.rerootTree(treeId, newRoot));
  EXPECT_EQ(controller.trees()[0]->root(), newRoot);
  EXPECT_NE(controller.trees()[0]->id(), treeId);  // rebuilt as a new tree

  // Same DZ, same publishers, delivery unchanged.
  EXPECT_EQ(publish(hosts[0], {100, 100}),
            (std::set<net::NodeId>{hosts[3], hosts[6]}));
  EXPECT_TRUE(publish(hosts[0], {900, 100}).empty());
}

TEST_F(MonitorFixture, RerootRejectsUnknownTreeOrRoot) {
  controller.advertise(hosts[0], rect(0, 1023));
  EXPECT_FALSE(controller.rerootTree(9999, topo.switches()[0]));
  EXPECT_FALSE(controller.rerootTree(controller.trees()[0]->id(), hosts[0]));
}

TEST_F(MonitorFixture, SampleMeasuresWindowDeltas) {
  controller.advertise(hosts[0], rect(0, 1023));
  controller.subscribe(hosts[4], rect(0, 1023));

  LoadMonitor monitor(controller);
  // Nothing has flowed yet.
  EXPECT_TRUE(monitor.sample().links.empty());

  for (int i = 0; i < 10; ++i) publish(hosts[0], {10, 10});
  const LoadReport report = monitor.sample();
  EXPECT_FALSE(report.links.empty());
  std::uint64_t total = 0;
  for (const auto& l : report.links) total += l.packetsInWindow;
  EXPECT_GE(total, 10u);
  // Second sample with no traffic: empty window again.
  EXPECT_TRUE(monitor.sample().links.empty());
}

TEST_F(MonitorFixture, HotLinkFlagsOverload) {
  controller.advertise(hosts[0], rect(0, 1023));
  controller.subscribe(hosts[1], rect(0, 1023));  // adjacent: 1-hop hot arc

  LoadMonitorConfig cfg;
  cfg.hotLinkThreshold = 0.5;  // any traffic counts as hot
  LoadMonitor monitor(controller, cfg);
  for (int i = 0; i < 5; ++i) publish(hosts[0], {10, 10});
  const LoadReport report = monitor.sample();
  EXPECT_TRUE(report.overloaded);
  EXPECT_FALSE(report.links.empty());
}

TEST_F(MonitorFixture, RebalanceRerootsBusiestTree) {
  controller.advertise(hosts[0], rect(0, 1023));
  controller.subscribe(hosts[3], rect(0, 1023));
  controller.subscribe(hosts[5], rect(0, 1023));

  LoadMonitorConfig cfg;
  cfg.hotLinkThreshold = 0.0;  // always consider the top link hot
  LoadMonitor monitor(controller, cfg);
  for (int i = 0; i < 20; ++i) publish(hosts[0], {10, 10});
  const LoadReport report = monitor.sample();
  ASSERT_TRUE(report.overloaded);

  const int oldTreeId = controller.trees()[0]->id();
  EXPECT_TRUE(monitor.rebalanceOnce());
  EXPECT_NE(controller.trees()[0]->id(), oldTreeId);

  // Delivery is intact after rebalancing.
  EXPECT_EQ(publish(hosts[0], {100, 100}),
            (std::set<net::NodeId>{hosts[3], hosts[5]}));
}

TEST_F(MonitorFixture, RebalanceNoOpWithoutOverload) {
  controller.advertise(hosts[0], rect(0, 1023));
  LoadMonitor monitor(controller);
  monitor.sample();  // empty window, not overloaded
  EXPECT_FALSE(monitor.rebalanceOnce());
}

}  // namespace
}  // namespace pleroma::ctrl
