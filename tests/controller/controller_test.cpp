// Scenario tests of the PLEROMA controller: Algorithm 1 end to end against
// the simulated data plane.
#include "controller/controller.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace pleroma::ctrl {
namespace {

dz::DzSet set(std::string_view s) { return *dz::DzSet::fromString(s); }

struct ControllerFixture : ::testing::Test {
  explicit ControllerFixture(net::Topology t = net::Topology::testbedFatTree())
      : topo(std::move(t)), network(topo, sim, {}) {
    network.setDeliverHandler([this](net::NodeId host, const net::Packet& pkt) {
      delivered.emplace_back(host, pkt.eventId());
    });
  }

  Controller makeController(ControllerConfig cfg = {}) {
    return Controller(dz::EventSpace(2, 10), network,
                      Scope::wholeTopology(network.topology()), cfg);
  }

  /// Publishes and settles; returns the set of hosts that received it.
  std::set<net::NodeId> publish(Controller& c, net::NodeId host,
                                const dz::Event& e) {
    delivered.clear();
    network.sendFromHost(host, c.makeEventPacket(host, e, 1));
    sim.run();
    std::set<net::NodeId> hosts;
    for (const auto& [h, id] : delivered) hosts.insert(h);
    return hosts;
  }

  dz::Rectangle rect(dz::AttributeValue aLo, dz::AttributeValue aHi,
                     dz::AttributeValue bLo, dz::AttributeValue bHi) {
    return dz::Rectangle{{dz::Range{aLo, aHi}, dz::Range{bLo, bHi}}};
  }

  net::Topology topo;
  net::Simulator sim;
  net::Network network;
  std::vector<std::pair<net::NodeId, net::EventId>> delivered;
};

TEST_F(ControllerFixture, AdvertiseCreatesTree) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  c.advertise(hosts[0], rect(0, 511, 0, 1023));
  EXPECT_EQ(c.treeCount(), 1u);
  EXPECT_EQ(c.trees()[0]->dzSet(), set("0"));
  EXPECT_EQ(c.lastOpStats().treesCreated, 1);
}

TEST_F(ControllerFixture, EventDeliveredToMatchingSubscriber) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  c.advertise(hosts[0], rect(0, 1023, 0, 1023));
  c.subscribe(hosts[5], rect(0, 511, 0, 1023));

  EXPECT_EQ(publish(c, hosts[0], {100, 100}),
            (std::set<net::NodeId>{hosts[5]}));
  // Non-matching event is not delivered.
  EXPECT_TRUE(publish(c, hosts[0], {900, 100}).empty());
}

TEST_F(ControllerFixture, MultipleSubscribersShareEvent) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  c.advertise(hosts[0], rect(0, 1023, 0, 1023));
  c.subscribe(hosts[3], rect(0, 511, 0, 1023));
  c.subscribe(hosts[6], rect(0, 511, 0, 1023));
  c.subscribe(hosts[7], rect(512, 1023, 0, 1023));

  EXPECT_EQ(publish(c, hosts[0], {10, 10}),
            (std::set<net::NodeId>{hosts[3], hosts[6]}));
  EXPECT_EQ(publish(c, hosts[0], {800, 10}),
            (std::set<net::NodeId>{hosts[7]}));
}

TEST_F(ControllerFixture, SubscriptionBeforeAdvertisementIsStored) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  // Subscription arrives first: no trees exist, it is only stored.
  c.subscribe(hosts[4], rect(0, 511, 0, 1023));
  EXPECT_EQ(c.treeCount(), 0u);
  EXPECT_EQ(c.registry().size(), 0u);
  // The advertisement connects it retroactively (addFlowMultSub).
  c.advertise(hosts[1], rect(0, 1023, 0, 1023));
  EXPECT_GT(c.registry().size(), 0u);
  EXPECT_EQ(publish(c, hosts[1], {100, 100}),
            (std::set<net::NodeId>{hosts[4]}));
}

TEST_F(ControllerFixture, PublisherJoinsExistingTreeWhenCovered) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  c.advertise(hosts[0], rect(0, 1023, 0, 1023));  // whole space: DZ {*}
  ASSERT_EQ(c.treeCount(), 1u);
  // Second advertisement fully covered by the existing tree's DZ: join, no
  // new tree (Algorithm 1 case 1).
  c.advertise(hosts[1], rect(0, 511, 0, 1023));
  EXPECT_EQ(c.treeCount(), 1u);
  EXPECT_EQ(c.lastOpStats().treesJoined, 1);
  EXPECT_EQ(c.lastOpStats().treesCreated, 0);
  // Both publishers reach a subscriber.
  c.subscribe(hosts[6], rect(0, 1023, 0, 1023));
  EXPECT_EQ(publish(c, hosts[0], {700, 3}), (std::set<net::NodeId>{hosts[6]}));
  EXPECT_EQ(publish(c, hosts[1], {100, 3}), (std::set<net::NodeId>{hosts[6]}));
}

TEST_F(ControllerFixture, UncoveredPartCreatesNewTree) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  // First tree carries only the lower half of dim 0 (dz 0).
  c.advertise(hosts[0], rect(0, 511, 0, 1023));
  ASSERT_EQ(c.treeCount(), 1u);
  // New advertisement covers the whole space: joins tree 0 for dz 0 and
  // creates a new tree for the uncovered dz 1 (Algorithm 1 case 2).
  c.advertise(hosts[1], rect(0, 1023, 0, 1023));
  EXPECT_EQ(c.treeCount(), 2u);
  EXPECT_EQ(c.lastOpStats().treesJoined, 1);
  EXPECT_EQ(c.lastOpStats().treesCreated, 1);
}

TEST_F(ControllerFixture, TreeDzSetsAlwaysDisjoint) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  c.advertise(hosts[0], rect(0, 511, 0, 511));
  c.advertise(hosts[1], rect(256, 767, 0, 1023));
  c.advertise(hosts[2], rect(0, 1023, 512, 1023));
  c.advertise(hosts[3], rect(100, 900, 100, 900));
  const auto trees = c.trees();
  for (std::size_t i = 0; i < trees.size(); ++i) {
    for (std::size_t j = i + 1; j < trees.size(); ++j) {
      EXPECT_FALSE(trees[i]->dzSet().overlaps(trees[j]->dzSet()))
          << trees[i]->dzSet().toString() << " vs "
          << trees[j]->dzSet().toString();
    }
  }
}

TEST_F(ControllerFixture, UnsubscribeStopsDelivery) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  c.advertise(hosts[0], rect(0, 1023, 0, 1023));
  const SubscriptionId s = c.subscribe(hosts[5], rect(0, 511, 0, 1023));
  ASSERT_EQ(publish(c, hosts[0], {100, 100}),
            (std::set<net::NodeId>{hosts[5]}));
  c.unsubscribe(s);
  EXPECT_TRUE(publish(c, hosts[0], {100, 100}).empty());
  EXPECT_EQ(c.registry().size(), 0u);
}

TEST_F(ControllerFixture, UnsubscribeKeepsOtherSubscribers) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  c.advertise(hosts[0], rect(0, 1023, 0, 1023));
  const SubscriptionId s1 = c.subscribe(hosts[5], rect(0, 511, 0, 1023));
  c.subscribe(hosts[6], rect(0, 255, 0, 1023));
  c.unsubscribe(s1);
  EXPECT_EQ(publish(c, hosts[0], {100, 100}),
            (std::set<net::NodeId>{hosts[6]}));
}

TEST_F(ControllerFixture, UnadvertiseRemovesTreesAndFlows) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  const PublisherId p = c.advertise(hosts[0], rect(0, 1023, 0, 1023));
  c.subscribe(hosts[5], rect(0, 511, 0, 1023));
  c.unadvertise(p);
  EXPECT_EQ(c.treeCount(), 0u);
  EXPECT_EQ(c.registry().size(), 0u);
  EXPECT_TRUE(publish(c, hosts[0], {100, 100}).empty());
  // All switch tables empty again.
  for (const net::NodeId sw : topo.switches()) {
    EXPECT_TRUE(network.flowTable(sw).empty()) << sw;
  }
}

TEST_F(ControllerFixture, UnadvertiseKeepsSharedTreeForOtherPublisher) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  const PublisherId p1 = c.advertise(hosts[0], rect(0, 1023, 0, 1023));
  c.advertise(hosts[1], rect(0, 511, 0, 1023));  // joins p1's tree
  c.subscribe(hosts[6], rect(0, 511, 0, 1023));
  c.unadvertise(p1);
  EXPECT_EQ(c.treeCount(), 1u);
  EXPECT_EQ(publish(c, hosts[1], {100, 100}),
            (std::set<net::NodeId>{hosts[6]}));
}

TEST_F(ControllerFixture, TreeMergeRespectsMaxTrees) {
  ControllerConfig cfg;
  cfg.maxTrees = 2;
  Controller c = makeController(cfg);
  const auto hosts = topo.hosts();
  // Disjoint quarter advertisements would create 4 trees without merging.
  c.advertise(hosts[0], rect(0, 255, 0, 1023));
  c.advertise(hosts[1], rect(256, 511, 0, 1023));
  c.advertise(hosts[2], rect(512, 767, 0, 1023));
  c.advertise(hosts[3], rect(768, 1023, 0, 1023));
  EXPECT_LE(c.treeCount(), 2u);
  // Deliveries still work after merging.
  c.subscribe(hosts[7], rect(0, 1023, 0, 1023));
  for (const int i : {0, 1, 2, 3}) {
    const dz::AttributeValue a = static_cast<dz::AttributeValue>(i * 256 + 10);
    EXPECT_EQ(publish(c, hosts[static_cast<std::size_t>(i)], {a, 50}),
              (std::set<net::NodeId>{hosts[7]}))
        << i;
  }
}

TEST_F(ControllerFixture, MergePreservesDisjointness) {
  ControllerConfig cfg;
  cfg.maxTrees = 3;
  Controller c = makeController(cfg);
  const auto hosts = topo.hosts();
  for (int i = 0; i < 8; ++i) {
    const auto lo = static_cast<dz::AttributeValue>(i * 128);
    c.advertise(hosts[static_cast<std::size_t>(i)],
                rect(lo, lo + 127, 0, 1023));
  }
  EXPECT_LE(c.treeCount(), 3u);
  const auto trees = c.trees();
  for (std::size_t i = 0; i < trees.size(); ++i) {
    for (std::size_t j = i + 1; j < trees.size(); ++j) {
      EXPECT_FALSE(trees[i]->dzSet().overlaps(trees[j]->dzSet()));
    }
  }
}

TEST_F(ControllerFixture, MergeWithoutCoarseningKeepsExactUnion) {
  ControllerConfig cfg;
  cfg.maxTrees = 1;
  cfg.coarsenOnMerge = false;
  Controller c = makeController(cfg);
  const auto hosts = topo.hosts();
  // Two disjoint dim0 quarters; with interleaved bits (dz[0], dz[2] from
  // dim0, dz[1] from dim1) they decompose to {000,010} and {100,110}. The
  // merged tree must carry exactly their union — no inflation.
  c.advertise(hosts[0], rect(0, 255, 0, 1023));    // DZ {000, 010}
  c.advertise(hosts[1], rect(512, 767, 0, 1023));  // DZ {100, 110}
  ASSERT_EQ(c.treeCount(), 1u);
  EXPECT_EQ(c.trees()[0]->dzSet().toString(), "000,010,100,110");
}

TEST_F(ControllerFixture, MergeWithCoarseningMayEnlarge) {
  ControllerConfig cfg;
  cfg.maxTrees = 1;
  cfg.coarsenOnMerge = true;
  Controller c = makeController(cfg);
  const auto hosts = topo.hosts();
  c.advertise(hosts[0], rect(0, 255, 0, 1023));
  c.advertise(hosts[1], rect(512, 767, 0, 1023));
  ASSERT_EQ(c.treeCount(), 1u);
  // With one tree there is nothing to clash with: coarsening may grow the
  // DZ up to the whole space, but it must remain a covering superset of
  // the advertised union.
  EXPECT_TRUE(c.trees()[0]->dzSet().coversSet(
      *dz::DzSet::fromString("000,010,100,110")));
  // Either way, delivery semantics are unchanged.
  c.subscribe(hosts[6], rect(0, 1023, 0, 1023));
  EXPECT_EQ(publish(c, hosts[0], {100, 5}), (std::set<net::NodeId>{hosts[6]}));
  EXPECT_EQ(publish(c, hosts[1], {600, 5}), (std::set<net::NodeId>{hosts[6]}));
  // Publishers do not gain subspaces they never advertised: an event from
  // hosts[0] outside its advertisement is not guaranteed delivery, but it
  // must never crash or loop.
  publish(c, hosts[0], {900, 5});
}

TEST_F(ControllerFixture, UnsubscribeOpStatsCountDeletes) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  c.advertise(hosts[0], rect(0, 1023, 0, 1023));
  const SubscriptionId s = c.subscribe(hosts[5], rect(0, 511, 0, 1023));
  c.unsubscribe(s);
  const OpStats& op = c.lastOpStats();
  EXPECT_GT(op.flowDeletes, 0u);
  EXPECT_EQ(op.totalFlowMods(), op.flowAdds + op.flowModifies + op.flowDeletes);
}

TEST_F(ControllerFixture, OpStatsCountFlowMods) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  c.advertise(hosts[0], rect(0, 1023, 0, 1023));
  c.subscribe(hosts[5], rect(0, 511, 0, 1023));
  const OpStats& op = c.lastOpStats();
  EXPECT_GT(op.flowAdds, 0u);
  EXPECT_GT(op.totalFlowMods(), 0u);
  EXPECT_GT(op.modeledInstallTime, 0);
}

TEST_F(ControllerFixture, StampEventTruncatesAtMaxDzLength) {
  ControllerConfig cfg;
  cfg.maxDzLength = 6;
  Controller c = makeController(cfg);
  EXPECT_EQ(c.stampEvent({1023, 1023}).length(), 6);
  EXPECT_EQ(c.effectiveMaxDzLength(), 6);
}

TEST_F(ControllerFixture, FalsePositivesOnlyFromTruncation) {
  // With a very short L_dz, non-matching events inside the same coarse cell
  // are delivered (false positives) but matching events always arrive.
  ControllerConfig cfg;
  cfg.maxDzLength = 2;
  Controller c = makeController(cfg);
  const auto hosts = topo.hosts();
  c.advertise(hosts[0], rect(0, 1023, 0, 1023));
  c.subscribe(hosts[5], rect(0, 100, 0, 100));
  // Matching event delivered.
  EXPECT_EQ(publish(c, hosts[0], {50, 50}), (std::set<net::NodeId>{hosts[5]}));
  // Event in the same dz-2 cell but outside the subscription: delivered as
  // a false positive (cannot be filtered at this granularity).
  EXPECT_EQ(publish(c, hosts[0], {400, 400}),
            (std::set<net::NodeId>{hosts[5]}));
  // Event in a different coarse cell: filtered in the network.
  EXPECT_TRUE(publish(c, hosts[0], {900, 900}).empty());
}

TEST_F(ControllerFixture, ReindexReroutesDelivery) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  c.advertise(hosts[0], rect(0, 1023, 0, 1023));
  c.subscribe(hosts[5], rect(0, 511, 0, 1023));  // constrains dim 0 only
  ASSERT_EQ(publish(c, hosts[0], {100, 700}),
            (std::set<net::NodeId>{hosts[5]}));
  // Re-index on dimension 0 only: delivery must still work.
  c.reindex({0});
  EXPECT_EQ(c.space().indexedDimensions(), std::vector<int>{0});
  EXPECT_EQ(publish(c, hosts[0], {100, 700}),
            (std::set<net::NodeId>{hosts[5]}));
  EXPECT_TRUE(publish(c, hosts[0], {900, 700}).empty());
}

TEST_F(ControllerFixture, ReindexOnUselessDimensionCausesFalsePositives) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  c.advertise(hosts[0], rect(0, 1023, 0, 1023));
  c.subscribe(hosts[5], rect(0, 511, 0, 1023));  // selective on dim 0
  // Indexing only dim 1 discards the subscription's selectivity.
  c.reindex({1});
  EXPECT_EQ(publish(c, hosts[0], {900, 100}),
            (std::set<net::NodeId>{hosts[5]}));  // false positive by design
}

TEST_F(ControllerFixture, PublisherDoesNotReceiveOwnEvents) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  c.advertise(hosts[0], rect(0, 1023, 0, 1023));
  c.subscribe(hosts[0], rect(0, 1023, 0, 1023));  // self-subscription
  c.subscribe(hosts[4], rect(0, 1023, 0, 1023));
  EXPECT_EQ(publish(c, hosts[0], {5, 5}), (std::set<net::NodeId>{hosts[4]}));
}

TEST_F(ControllerFixture, SubscribersOnSameEdgeSwitch) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  // testbedFatTree: h1,h2 share an edge switch.
  c.advertise(hosts[4], rect(0, 1023, 0, 1023));
  c.subscribe(hosts[0], rect(0, 1023, 0, 1023));
  c.subscribe(hosts[1], rect(0, 1023, 0, 1023));
  EXPECT_EQ(publish(c, hosts[4], {7, 7}),
            (std::set<net::NodeId>{hosts[0], hosts[1]}));
}

TEST_F(ControllerFixture, MultiPieceAdvertisementJoinsAndCreates) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  // First tree carries dz 0 only.
  c.advertise(hosts[0], rect(0, 511, 0, 1023));
  // An advertisement decomposing into pieces on both sides of the split
  // (interleaving gives DZ = {001, 011, 100, 110}): the 0-side pieces join
  // the existing tree; Algorithm 1 creates one tree per uncovered dz_i, so
  // the two 1-side pieces start a tree each.
  c.advertise(hosts[1], rect(256, 767, 0, 1023));
  EXPECT_EQ(c.treeCount(), 3u);
  EXPECT_EQ(c.lastOpStats().treesJoined, 2);
  EXPECT_EQ(c.lastOpStats().treesCreated, 2);
  c.subscribe(hosts[6], rect(0, 1023, 0, 1023));
  EXPECT_EQ(publish(c, hosts[1], {300, 9}), (std::set<net::NodeId>{hosts[6]}));
  EXPECT_EQ(publish(c, hosts[1], {700, 9}), (std::set<net::NodeId>{hosts[6]}));
}

TEST_F(ControllerFixture, SubscriptionUnionAccumulates) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  EXPECT_TRUE(c.subscriptionUnion().empty());
  c.subscribe(hosts[1], rect(0, 511, 0, 1023));
  c.subscribe(hosts[2], rect(512, 1023, 0, 1023));
  // {0} ∪ {1} = whole space.
  ASSERT_EQ(c.subscriptionUnion().size(), 1u);
  EXPECT_TRUE(c.subscriptionUnion().items()[0].isWholeSpace());
}

TEST_F(ControllerFixture, EndpointForHostMatchesAttachment) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  const Endpoint ep = c.endpointForHost(hosts[3]);
  const auto att = topo.hostAttachment(hosts[3]);
  EXPECT_EQ(ep.attachSwitch, att.switchNode);
  EXPECT_EQ(ep.port, att.switchPort);
  EXPECT_EQ(ep.host, hosts[3]);
  ASSERT_TRUE(ep.rewrite.has_value());
  EXPECT_EQ(*ep.rewrite, net::hostAddress(hosts[3]));
}

TEST(ControllerCapacity, TcamExhaustionDegradesGracefully) {
  // Requirement 3 (Sec 1): switch TCAMs hold a bounded number of flows.
  // When the bound is hit, adds are rejected; the controller keeps running
  // (best effort) and already-installed subscriptions keep working.
  net::Topology topo = net::Topology::testbedFatTree();
  net::Simulator sim;
  net::NetworkConfig ncfg;
  ncfg.flowTableCapacity = 6;  // tiny TCAMs
  net::Network network(topo, sim, ncfg);
  ControllerConfig cfg;
  cfg.maxDzLength = 12;
  cfg.maxCellsPerRequest = 4;
  Controller c(dz::EventSpace(2, 10), network, Scope::wholeTopology(topo), cfg);
  const auto hosts = topo.hosts();

  std::set<net::NodeId> got;
  network.setDeliverHandler(
      [&](net::NodeId h, const net::Packet&) { got.insert(h); });

  c.advertise(hosts[0], dz::Rectangle{{dz::Range{0, 1023}, dz::Range{0, 1023}}});
  c.subscribe(hosts[5], dz::Rectangle{{dz::Range{0, 511}, dz::Range{0, 1023}}});
  got.clear();
  network.sendFromHost(hosts[0], c.makeEventPacket(hosts[0], {100, 100}, 1));
  sim.run();
  ASSERT_EQ(got, (std::set<net::NodeId>{hosts[5]}));

  // Flood the tables far past capacity; no crash, rejections are counted.
  for (int i = 0; i < 40; ++i) {
    const auto lo = static_cast<dz::AttributeValue>((i * 97) % 900);
    c.subscribe(hosts[static_cast<std::size_t>(1 + i % 7)],
                dz::Rectangle{{dz::Range{lo, lo + 40},
                               dz::Range{1023 - lo - 40, 1023 - lo}}});
  }
  std::uint64_t rejected = 0;
  for (const net::NodeId sw : topo.switches()) {
    EXPECT_LE(network.flowTable(sw).size(), 6u);
    rejected += network.flowTable(sw).stats().rejectedCapacity;
  }
  EXPECT_GT(rejected, 0u);
  // The original subscription still receives (its flows were first in).
  got.clear();
  network.sendFromHost(hosts[0], c.makeEventPacket(hosts[0], {100, 100}, 2));
  sim.run();
  EXPECT_TRUE(got.contains(hosts[5]));
}

TEST_F(ControllerFixture, SwitchTablesMatchRegistryRequirements) {
  Controller c = makeController();
  const auto hosts = topo.hosts();
  c.advertise(hosts[0], rect(0, 700, 0, 1023));
  c.advertise(hosts[2], rect(300, 1023, 0, 600));
  c.subscribe(hosts[5], rect(0, 511, 0, 1023));
  c.subscribe(hosts[6], rect(200, 800, 100, 900));
  const SubscriptionId s = c.subscribe(hosts[7], rect(0, 1023, 0, 1023));
  c.unsubscribe(s);

  // After arbitrary operations, every switch's table must be semantically
  // equivalent to the registry's required flows: same winning action set
  // for every address the registry knows about.
  for (const net::NodeId sw : topo.switches()) {
    const auto required = c.registry().requiredFlows(sw);
    net::FlowTable expected;
    for (const auto& e : required) ASSERT_TRUE(expected.insert(e));
    // Probe with every installed match address extended to max length.
    for (const auto& entry : network.flowTable(sw).entries()) {
      const auto probe = entry.match.address;
      const net::FlowEntry* a = network.flowTable(sw).lookup(probe);
      const net::FlowEntry* b = expected.lookup(probe);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      auto pa = a->outPorts();
      auto pb = b->outPorts();
      std::sort(pa.begin(), pa.end());
      std::sort(pb.begin(), pb.end());
      EXPECT_EQ(pa, pb) << "switch " << sw;
    }
  }
}

}  // namespace
}  // namespace pleroma::ctrl
